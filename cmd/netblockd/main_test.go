package main

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"srccache/internal/cluster"
	"srccache/internal/netblock"
)

func TestServeAndShutdown(t *testing.T) {
	var out bytes.Buffer
	stop := make(chan struct{})
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-size", "1048576",
			"-idle-timeout", "30s", "-drain", "100ms"}, &out, stop, ready)
	}()
	addr := <-ready

	cli, err := netblock.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if cli.Size() != 1<<20 {
		t.Fatalf("size %d", cli.Size())
	}
	if _, err := cli.WriteAt([]byte("daemon"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if _, err := cli.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "daemon" {
		t.Fatalf("read %q", got)
	}
	cli.Close()

	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "serving") || !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// TestServeEngineMode serves through the sharded engine and exercises the
// full client surface — size, write, read, trim, flush — over the wire.
func TestServeEngineMode(t *testing.T) {
	var out bytes.Buffer
	stop := make(chan struct{})
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-size", "16777216",
			"-shards", "4", "-drain", "100ms"}, &out, stop, ready)
	}()
	addr := <-ready

	cli, err := netblock.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if cli.Size() != 16<<20 {
		t.Fatalf("size %d", cli.Size())
	}
	// A write spanning the 1 MiB shard-stripe boundary must round-trip.
	span := make([]byte, 8192)
	for i := range span {
		span[i] = byte(i)
	}
	boundary := int64(1<<20 - 4096)
	if _, err := cli.WriteAt(span, boundary); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(span))
	if _, err := cli.ReadAt(got, boundary); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, span) {
		t.Fatal("stripe-crossing write diverges on readback")
	}
	if err := cli.Trim(boundary, int64(len(span))); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.ReadAt(got, boundary); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, len(span))) {
		t.Fatal("trimmed range not zeroed")
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "engine, 4 shards") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// TestServeFleetMode boots a two-daemon fleet on loopback and checks that a
// write to one node chain-forwards to the other: reading the same offset
// from either daemon returns the same bytes.
func TestServeFleetMode(t *testing.T) {
	const (
		size = int64(1 << 20)
		rb   = "65536"
	)
	// Reserve two loopback ports so the ring spec can be written before
	// either daemon starts (the bootstrap a config file provides in a real
	// deployment).
	var addrs [2]string
	for i := range addrs {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = lis.Addr().String()
		lis.Close()
	}
	ring := "a=" + addrs[0] + ",b=" + addrs[1]

	stops := [2]chan struct{}{make(chan struct{}), make(chan struct{})}
	dones := [2]chan error{make(chan error, 1), make(chan error, 1)}
	var outs [2]bytes.Buffer
	for i, id := range []string{"a", "b"} {
		i, id := i, id
		ready := make(chan net.Addr, 1)
		go func() {
			dones[i] <- run([]string{"-addr", addrs[i], "-size", "1048576",
				"-node", id, "-ring", ring, "-replicas", "2", "-range-bytes", rb,
				"-drain", "100ms"}, &outs[i], stops[i], ready)
		}()
		<-ready
	}

	// Forwarding is positional — only a chain head pushes down-chain — so
	// address the write to range 0's head and read it back from the tail.
	placement, err := cluster.NewRing(2, int(size)/65536, 65536, []cluster.Member{
		{ID: "a", Addr: addrs[0]}, {ID: "b", Addr: addrs[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	owners := placement.Owners(0)
	head, _ := placement.Member(owners[0])
	tail, _ := placement.Member(owners[1])

	cliHead, err := netblock.Dial(head.Addr)
	if err != nil {
		t.Fatal(err)
	}
	if cliHead.Size() != size {
		t.Fatalf("size %d", cliHead.Size())
	}
	if _, err := cliHead.WriteAt([]byte("replicated"), 4096); err != nil {
		t.Fatal(err)
	}
	cliTail, err := netblock.Dial(tail.Addr)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	if _, err := cliTail.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if string(got) != "replicated" {
		t.Fatalf("replica read %q", got)
	}
	// Fleet mode advertises a nonzero ring epoch in the ping handshake.
	info, err := cliTail.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 1 {
		t.Fatalf("epoch %d, want 1", info.Epoch)
	}
	cliHead.Close()
	cliTail.Close()

	for i := range stops {
		close(stops[i])
		if err := <-dones[i]; err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(outs[i].String(), "fleet node") {
			t.Fatalf("daemon %d output:\n%s", i, outs[i].String())
		}
	}
}

// TestFleetModeDrainsBeforeExit is the planned-restart regression test: a
// SIGTERM'd fleet daemon must deregister — keep serving for the drain
// window while pings advertise the drain flag — before its listener
// closes, so a supervisor classifies the restart as a departure instead of
// a fail-stop.
func TestFleetModeDrainsBeforeExit(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()

	var out bytes.Buffer
	stop := make(chan struct{})
	done := make(chan error, 1)
	ready := make(chan net.Addr, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-size", "1048576",
			"-node", "a", "-ring", "a=" + addr, "-replicas", "1",
			"-range-bytes", "65536", "-drain", "400ms"}, &out, stop, ready)
	}()
	<-ready

	cli, err := netblock.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	info, err := cli.Ping()
	if err != nil || info.Draining {
		t.Fatalf("pre-shutdown ping %+v, %v", info, err)
	}

	close(stop)
	// During the drain window the daemon must still answer, now with the
	// drain flag up — the deregistration a supervisor watches for.
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, err = cli.Ping()
		if err != nil {
			t.Fatalf("ping during drain window failed before flag observed: %v", err)
		}
		if info.Draining {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("drain flag never advertised")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Data service stays up through the same window.
	if _, err := cli.WriteAt([]byte("drain"), 0); err != nil {
		t.Fatalf("write during drain window: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "draining (fleet deregister)") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "0"}, &out, nil, nil); err == nil {
		t.Fatal("zero size accepted")
	}
	if err := run([]string{"-bogus"}, &out, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "999.999.999.999:99999"}, &out, nil, nil); err == nil {
		t.Fatal("bad address accepted")
	}
	if err := run([]string{"-size", "1048576", "-shards", "3"}, &out, nil, nil); err == nil {
		t.Fatal("indivisible shard split accepted")
	}
}
