package main

import (
	"bytes"
	"net"
	"strings"
	"testing"

	"srccache/internal/netblock"
)

func TestServeAndShutdown(t *testing.T) {
	var out bytes.Buffer
	stop := make(chan struct{})
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-size", "1048576",
			"-idle-timeout", "30s", "-drain", "100ms"}, &out, stop, ready)
	}()
	addr := <-ready

	cli, err := netblock.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if cli.Size() != 1<<20 {
		t.Fatalf("size %d", cli.Size())
	}
	if _, err := cli.WriteAt([]byte("daemon"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if _, err := cli.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "daemon" {
		t.Fatalf("read %q", got)
	}
	cli.Close()

	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "serving") || !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("output:\n%s", out.String())
	}
}

// TestServeEngineMode serves through the sharded engine and exercises the
// full client surface — size, write, read, trim, flush — over the wire.
func TestServeEngineMode(t *testing.T) {
	var out bytes.Buffer
	stop := make(chan struct{})
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-size", "16777216",
			"-shards", "4", "-drain", "100ms"}, &out, stop, ready)
	}()
	addr := <-ready

	cli, err := netblock.Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	if cli.Size() != 16<<20 {
		t.Fatalf("size %d", cli.Size())
	}
	// A write spanning the 1 MiB shard-stripe boundary must round-trip.
	span := make([]byte, 8192)
	for i := range span {
		span[i] = byte(i)
	}
	boundary := int64(1<<20 - 4096)
	if _, err := cli.WriteAt(span, boundary); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(span))
	if _, err := cli.ReadAt(got, boundary); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, span) {
		t.Fatal("stripe-crossing write diverges on readback")
	}
	if err := cli.Trim(boundary, int64(len(span))); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.ReadAt(got, boundary); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, make([]byte, len(span))) {
		t.Fatal("trimmed range not zeroed")
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
	cli.Close()

	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "engine, 4 shards") {
		t.Fatalf("output:\n%s", out.String())
	}
}

func TestBadArgs(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-size", "0"}, &out, nil, nil); err == nil {
		t.Fatal("zero size accepted")
	}
	if err := run([]string{"-bogus"}, &out, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "999.999.999.999:99999"}, &out, nil, nil); err == nil {
		t.Fatal("bad address accepted")
	}
	if err := run([]string{"-size", "1048576", "-shards", "3"}, &out, nil, nil); err == nil {
		t.Fatal("indivisible shard split accepted")
	}
}
