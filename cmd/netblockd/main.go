// Command netblockd serves an in-memory volume over the netblock protocol
// — the repository's miniature iSCSI-target stand-in, used by the netstore
// example and usable as a shared scratch block device.
//
// Usage:
//
//	netblockd -addr 127.0.0.1:8700 -size 268435456
//	netblockd -addr 127.0.0.1:8700 -size 268435456 -shards 8
//
// With -shards N the volume is served by the concurrent engine: the LBA
// space is partitioned across N src.Cache shards with per-shard request
// queues, instead of one flat in-memory volume behind a lock. -shards 0
// (the default) keeps the flat volume.
//
// SIGINT or SIGTERM drains gracefully: the listener closes, in-flight
// requests get -drain to finish, and idle connections are dropped.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"srccache/internal/engine"
	"srccache/internal/netblock"
)

func main() {
	stop := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "netblockd:", err)
		os.Exit(1)
	}
}

// run serves until stop closes; the bound address is sent on ready (if
// non-nil) once listening.
func run(args []string, stdout io.Writer, stop <-chan struct{}, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("netblockd", flag.ContinueOnError)
	var (
		addr   = fs.String("addr", "127.0.0.1:8700", "listen address")
		size   = fs.Int64("size", 256<<20, "volume size in bytes")
		shards = fs.Int("shards", 0, "serve through the concurrent engine with this many cache shards (0 = flat volume)")
		idle   = fs.Duration("idle-timeout", 2*time.Minute, "drop connections idle this long (0 = never)")
		drain  = fs.Duration("drain", time.Second, "shutdown grace for in-flight requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var (
		srv     *netblock.Server
		backing string
		eng     *engine.Engine
	)
	if *shards > 0 {
		if *size%int64(*shards) != 0 {
			return fmt.Errorf("size %d does not divide into %d shards", *size, *shards)
		}
		build, err := engine.MemShardBuilder(engine.ShardSpec{
			ShardBytes: *size / int64(*shards),
		})
		if err != nil {
			return err
		}
		// 1 MiB routing stripes: coarse enough that client-sized requests
		// rarely straddle shards, fine enough that small volumes still
		// split. Requires size/shards to be a 1 MiB multiple.
		eng, err = engine.New(engine.Options{Shards: *shards, StripePages: 256, Payload: true}, build)
		if err != nil {
			return err
		}
		if err := eng.Start(); err != nil {
			return err
		}
		srv, err = netblock.NewServerWith(eng)
		if err != nil {
			eng.Close()
			return err
		}
		backing = fmt.Sprintf("engine, %d shards", *shards)
	} else {
		var err error
		srv, err = netblock.NewServer(*size)
		if err != nil {
			return err
		}
		backing = "flat volume"
	}
	srv.IdleTimeout = *idle
	srv.DrainGrace = *drain
	bound, err := srv.Listen(*addr)
	if err != nil {
		if eng != nil {
			eng.Close()
		}
		return err
	}
	fmt.Fprintf(stdout, "netblockd: serving %d bytes (%s) on %s\n", *size, backing, bound)
	if ready != nil {
		ready <- bound
	}
	<-stop
	fmt.Fprintln(stdout, "netblockd: shutting down")
	err = srv.Close()
	if eng != nil {
		if cerr := eng.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
