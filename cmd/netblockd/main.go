// Command netblockd serves an in-memory volume over the netblock protocol
// — the repository's miniature iSCSI-target stand-in, used by the netstore
// example and usable as a shared scratch block device.
//
// Usage:
//
//	netblockd -addr 127.0.0.1:8700 -size 268435456
//	netblockd -addr 127.0.0.1:8700 -size 268435456 -shards 8
//	netblockd -addr 127.0.0.1:8700 -size 16777216 \
//	    -node a -ring "a=127.0.0.1:8700,b=127.0.0.1:8701,c=127.0.0.1:8702" \
//	    -replicas 2 -range-bytes 1048576
//
// With -shards N the volume is served by the concurrent engine: the LBA
// space is partitioned across N src.Cache shards with per-shard request
// queues, instead of one flat in-memory volume behind a lock. -shards 0
// (the default) keeps the flat volume.
//
// With -ring the daemon joins a replicated fleet: the volume is placed on a
// consistent-hash ring shared by every listed node, and each write this
// node serves is chain-forwarded to the next owner of its range before the
// reply — so a fleet client writing to a range's head lands the data on
// every reachable replica. -node names this daemon's ring identity; -epoch
// is the ring version advertised to pinging clients.
//
// SIGINT or SIGTERM drains gracefully: the listener closes, in-flight
// requests get -drain to finish, and idle connections are dropped. In
// fleet mode the daemon first deregisters: for one -drain window it keeps
// serving while pings advertise the drain flag (and epoch pushes are
// refused), so a supervisor classifies the planned restart as a departure
// rather than a fail-stop.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"srccache/internal/cluster"
	"srccache/internal/cluster/fleet"
	"srccache/internal/engine"
	"srccache/internal/netblock"
)

func main() {
	stop := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "netblockd:", err)
		os.Exit(1)
	}
}

// parseRing turns "id=addr,id=addr,..." into a member list.
func parseRing(spec string) ([]cluster.Member, error) {
	var members []cluster.Member
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, addr, ok := strings.Cut(part, "=")
		if !ok || id == "" || addr == "" {
			return nil, fmt.Errorf("ring entry %q is not id=addr", part)
		}
		members = append(members, cluster.Member{ID: id, Addr: addr})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("ring spec %q lists no members", spec)
	}
	return members, nil
}

// run serves until stop closes; the bound address is sent on ready (if
// non-nil) once listening.
func run(args []string, stdout io.Writer, stop <-chan struct{}, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("netblockd", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "127.0.0.1:8700", "listen address")
		size    = fs.Int64("size", 256<<20, "volume size in bytes")
		shards  = fs.Int("shards", 0, "serve through the concurrent engine with this many cache shards (0 = flat volume)")
		idle    = fs.Duration("idle-timeout", 2*time.Minute, "drop connections idle this long (0 = never)")
		drain   = fs.Duration("drain", time.Second, "shutdown grace for in-flight requests")
		node    = fs.String("node", "", "this node's ring identity (requires -ring)")
		ringStr = fs.String("ring", "", `fleet membership as "id=addr,id=addr,..." (requires -node)`)
		reps    = fs.Int("replicas", 2, "fleet replication factor")
		rb      = fs.Int64("range-bytes", 1<<20, "fleet placement-range size in bytes")
		epoch   = fs.Uint64("epoch", 0, "ring epoch advertised to pinging clients (fleet mode defaults to 1)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*node == "") != (*ringStr == "") {
		return fmt.Errorf("-node and -ring must be given together")
	}

	var (
		backend netblock.Backend
		backing string
		eng     *engine.Engine
	)
	if *shards > 0 {
		if *size%int64(*shards) != 0 {
			return fmt.Errorf("size %d does not divide into %d shards", *size, *shards)
		}
		build, err := engine.MemShardBuilder(engine.ShardSpec{
			ShardBytes: *size / int64(*shards),
		})
		if err != nil {
			return err
		}
		// 1 MiB routing stripes: coarse enough that client-sized requests
		// rarely straddle shards, fine enough that small volumes still
		// split. Requires size/shards to be a 1 MiB multiple.
		eng, err = engine.New(engine.Options{Shards: *shards, StripePages: 256, Payload: true}, build)
		if err != nil {
			return err
		}
		if err := eng.Start(); err != nil {
			return err
		}
		backend = eng
		backing = fmt.Sprintf("engine, %d shards", *shards)
	} else {
		var err error
		backend, err = netblock.MemBackend(*size)
		if err != nil {
			return err
		}
		backing = "flat volume"
	}
	cleanup := func() {
		if eng != nil {
			eng.Close()
		}
	}

	var chain *fleet.ChainBackend
	if *ringStr != "" {
		members, err := parseRing(*ringStr)
		if err != nil {
			cleanup()
			return err
		}
		if *rb <= 0 || *size%*rb != 0 {
			cleanup()
			return fmt.Errorf("size %d does not divide into %d-byte ranges", *size, *rb)
		}
		ring, err := cluster.NewRing(*reps, int(*size / *rb), *rb, members)
		if err != nil {
			cleanup()
			return err
		}
		if _, ok := ring.Member(*node); !ok {
			cleanup()
			return fmt.Errorf("node %q is not in the ring", *node)
		}
		chain, err = fleet.NewChainBackend(backend, *node, ring, netblock.ClientOptions{
			DialTimeout: 2 * time.Second,
			Timeout:     10 * time.Second,
		})
		if err != nil {
			cleanup()
			return err
		}
		backend = chain
		backing = fmt.Sprintf("%s; fleet node %s of %d, %d-way", backing, *node, len(members), *reps)
		if *epoch == 0 {
			*epoch = 1
		}
	}

	srv, err := netblock.NewServerWith(backend)
	if err != nil {
		cleanup()
		return err
	}
	srv.SetEpoch(*epoch)
	srv.IdleTimeout = *idle
	srv.DrainGrace = *drain
	bound, err := srv.Listen(*addr)
	if err != nil {
		cleanup()
		return err
	}
	fmt.Fprintf(stdout, "netblockd: serving %d bytes (%s) on %s\n", *size, backing, bound)
	if ready != nil {
		ready <- bound
	}
	<-stop
	if chain != nil {
		// Fleet mode deregisters before it disappears: BeginDrain makes
		// every ping advertise the drain flag (and refuses new epochs), and
		// the grace window keeps serving long enough for a pinging
		// supervisor to observe it — so a planned restart is classified as
		// a departure, not a fail-stop, and triggers no quarantine/repair
		// cycle. Standalone servers have no supervisor to notify.
		fmt.Fprintln(stdout, "netblockd: draining (fleet deregister)")
		srv.BeginDrain()
		time.Sleep(*drain)
	}
	fmt.Fprintln(stdout, "netblockd: shutting down")
	err = srv.Close()
	if chain != nil {
		if cerr := chain.Close(); err == nil {
			err = cerr
		}
	}
	if eng != nil {
		if cerr := eng.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
