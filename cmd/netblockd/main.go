// Command netblockd serves an in-memory volume over the netblock protocol
// — the repository's miniature iSCSI-target stand-in, used by the netstore
// example and usable as a shared scratch block device.
//
// Usage:
//
//	netblockd -addr 127.0.0.1:8700 -size 268435456
//
// SIGINT or SIGTERM drains gracefully: the listener closes, in-flight
// requests get -drain to finish, and idle connections are dropped.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"srccache/internal/netblock"
)

func main() {
	stop := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		close(stop)
	}()
	if err := run(os.Args[1:], os.Stdout, stop, nil); err != nil {
		fmt.Fprintln(os.Stderr, "netblockd:", err)
		os.Exit(1)
	}
}

// run serves until stop closes; the bound address is sent on ready (if
// non-nil) once listening.
func run(args []string, stdout io.Writer, stop <-chan struct{}, ready chan<- net.Addr) error {
	fs := flag.NewFlagSet("netblockd", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", "127.0.0.1:8700", "listen address")
		size  = fs.Int64("size", 256<<20, "volume size in bytes")
		idle  = fs.Duration("idle-timeout", 2*time.Minute, "drop connections idle this long (0 = never)")
		drain = fs.Duration("drain", time.Second, "shutdown grace for in-flight requests")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	srv, err := netblock.NewServer(*size)
	if err != nil {
		return err
	}
	srv.IdleTimeout = *idle
	srv.DrainGrace = *drain
	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "netblockd: serving %d bytes on %s\n", *size, bound)
	if ready != nil {
		ready <- bound
	}
	<-stop
	fmt.Fprintln(stdout, "netblockd: shutting down")
	return srv.Close()
}
