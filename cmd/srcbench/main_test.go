package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

var osReadFile = os.ReadFile

func TestListPrintsRegistry(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table2", "fig7", "ablation-degraded"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table3", "-scale", "16", "-requests", "20000"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 3") || !strings.Contains(out.String(), "Sequential") {
		t.Fatalf("missing table output:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "nope"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunWritesOutputFile(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	path := dir + "/res.txt"
	if err := run([]string{"-exp", "table12", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 12") {
		t.Fatal("stdout missing table")
	}
	// The file mirrors stdout.
	data, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "Table 12") {
		t.Fatal("output file missing table")
	}
}

// stripTimings drops the wall-clock "[exp completed in ...]" lines, the
// only part of stdout that varies between runs.
func stripTimings(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "[") && strings.Contains(line, "completed in") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

func TestParallelOutputMatchesSerial(t *testing.T) {
	var serial, parallel bytes.Buffer
	args := []string{"-exp", "table3", "-scale", "16", "-requests", "20000"}
	if err := run(append(args, "-parallel", "1"), &serial); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-parallel", "4"), &parallel); err != nil {
		t.Fatal(err)
	}
	s, p := stripTimings(serial.String()), stripTimings(parallel.String())
	if s != p {
		t.Fatalf("parallel tables differ from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", s, p)
	}
	if !strings.Contains(s, "Table 3") {
		t.Fatalf("missing table output:\n%s", s)
	}
}

func TestBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("bad flag accepted")
	}
}

// readFile is a tiny helper avoiding an os import dance in assertions.
func readFile(path string) (string, error) {
	data, err := osReadFile(path)
	return string(data), err
}
