// Command srcbench regenerates the paper's evaluation tables and figures
// on the simulated substrate.
//
// Usage:
//
//	srcbench -list
//	srcbench -exp fig7
//	srcbench -exp all -scale 16 -requests 200000 -o results.txt
//	srcbench -exp all -parallel 8 -v
//
// Every experiment decomposes into independent virtual-time simulation
// cells; -parallel fans them out over worker goroutines (default:
// GOMAXPROCS). Tables are assembled in canonical order, so the output is
// byte-identical at any parallelism. -v traces per-cell timing on stderr.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"

	"srccache/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "srcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("srcbench", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available experiments and exit")
		exp      = fs.String("exp", "all", "experiment to run (name or \"all\")")
		scale    = fs.Int64("scale", 0, "size divisor vs the paper (default 16, power of two)")
		requests = fs.Int64("requests", 0, "request budget per measured run (default 200000)")
		seed     = fs.Int64("seed", 0, "workload seed")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulation cells (1 = serial; output is identical at any value)")
		verbose  = fs.Bool("v", false, "trace per-cell progress and timing on stderr")
		out      = fs.String("o", "", "also write results to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s  %s\n", e.Name, e.Paper)
		}
		return nil
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	opts := experiments.Options{
		Scale:    *scale,
		Requests: *requests,
		Seed:     *seed,
		Parallel: *parallel,
	}
	if *verbose {
		opts.Progress = progressPrinter(os.Stderr)
	}
	var todo []experiments.Experiment
	if *exp == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.Lookup(*exp)
		if err != nil {
			return err
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		for _, t := range tables {
			t.Fprint(w)
		}
		fmt.Fprintf(w, "[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// progressPrinter returns a concurrency-safe per-cell progress callback.
// Completion order varies with scheduling, so this output goes to stderr
// only — the tables on stdout stay deterministic.
func progressPrinter(w io.Writer) func(experiments.CellEvent) {
	var mu sync.Mutex
	done := make(map[string]int)
	return func(ev experiments.CellEvent) {
		mu.Lock()
		defer mu.Unlock()
		done[ev.Experiment]++
		status := ""
		if ev.Err != nil {
			status = " ERROR: " + ev.Err.Error()
		}
		fmt.Fprintf(w, "[%s %d/%d] %s %v%s\n",
			ev.Experiment, done[ev.Experiment], ev.Total, ev.Label,
			ev.Elapsed.Round(time.Millisecond), status)
	}
}
