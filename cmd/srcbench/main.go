// Command srcbench regenerates the paper's evaluation tables and figures
// on the simulated substrate.
//
// Usage:
//
//	srcbench -list
//	srcbench -exp fig7
//	srcbench -exp all -scale 16 -requests 200000 -o results.txt
//	srcbench -exp all -parallel 8 -v
//
// Every experiment decomposes into independent virtual-time simulation
// cells; -parallel fans them out over worker goroutines (default:
// GOMAXPROCS). Tables are assembled in canonical order, so the output is
// byte-identical at any parallelism. -v traces per-cell timing on stderr.
//
// A separate mode measures the concurrent engine against the wall clock —
// the one part of the repo that is about real elapsed time, not virtual
// time — and records the tracked BENCH_<n>.json trajectory point:
//
//	srcbench -bench -bench-out BENCH_1.json
//	srcbench -bench -bench-requests 1000000 -bench-shards 1,2,4,8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"srccache/internal/engine/wallbench"
	"srccache/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "srcbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("srcbench", flag.ContinueOnError)
	var (
		list     = fs.Bool("list", false, "list available experiments and exit")
		exp      = fs.String("exp", "all", "experiment to run (name or \"all\")")
		scale    = fs.Int64("scale", 0, "size divisor vs the paper (default 16, power of two)")
		requests = fs.Int64("requests", 0, "request budget per measured run (default 200000)")
		seed     = fs.Int64("seed", 0, "workload seed")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent simulation cells (1 = serial; output is identical at any value)")
		verbose  = fs.Bool("v", false, "trace per-cell progress and timing on stderr")
		out      = fs.String("o", "", "also write results to this file")

		bench       = fs.Bool("bench", false, "run the wall-clock engine benchmark suite instead of simulation tables")
		benchOut    = fs.String("bench-out", "", "write the benchmark JSON to this file (default stdout)")
		benchReqs   = fs.Int("bench-requests", 0, "total requests per benchmark point (default 400000)")
		benchCli    = fs.Int("bench-clients", 0, "client goroutines (default 8)")
		benchBatch  = fs.Int("bench-batch", 0, "closed-loop submission window per client (default 256)")
		benchSpan   = fs.Int64("bench-span", 0, "volume bytes (default 256 MiB)")
		benchShards = fs.String("bench-shards", "", "comma-separated engine shard counts (default 1,2,4,8)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench {
		return runBench(stdout, benchFlags{
			out: *benchOut, requests: *benchReqs, clients: *benchCli,
			batch: *benchBatch, span: *benchSpan, shards: *benchShards,
			seed: *seed, verbose: *verbose,
		})
	}
	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-8s  %s\n", e.Name, e.Paper)
		}
		return nil
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = io.MultiWriter(stdout, f)
	}

	opts := experiments.Options{
		Scale:    *scale,
		Requests: *requests,
		Seed:     *seed,
		Parallel: *parallel,
	}
	if *verbose {
		opts.Progress = progressPrinter(os.Stderr)
	}
	var todo []experiments.Experiment
	if *exp == "all" {
		todo = experiments.All()
	} else {
		e, err := experiments.Lookup(*exp)
		if err != nil {
			return err
		}
		todo = []experiments.Experiment{e}
	}
	for _, e := range todo {
		start := time.Now()
		tables, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		for _, t := range tables {
			t.Fprint(w)
		}
		fmt.Fprintf(w, "[%s completed in %v]\n\n", e.Name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

type benchFlags struct {
	out      string
	requests int
	clients  int
	batch    int
	span     int64
	shards   string
	seed     int64
	verbose  bool
}

// runBench executes the wall-clock engine suite and emits one
// BENCH_<n>.json trajectory point.
func runBench(stdout io.Writer, f benchFlags) error {
	cfg := wallbench.BenchConfig{
		Span:     f.span,
		Requests: f.requests,
		Clients:  f.clients,
		Batch:    f.batch,
		Seed:     f.seed,
	}
	if f.shards != "" {
		for _, s := range strings.Split(f.shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				return fmt.Errorf("-bench-shards: bad shard count %q", s)
			}
			cfg.ShardCounts = append(cfg.ShardCounts, n)
		}
	}
	progress := func(line string) { fmt.Fprintln(os.Stderr, line) }
	if !f.verbose {
		progress = nil
	}
	res, err := wallbench.RunBenchSuite(cfg, progress)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if f.out == "" {
		_, err = stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(f.out, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s: engine %.2fx single-shard dispatch baseline at %d shards\n",
		f.out, res.Speedup, res.Points[len(res.Points)-1].Shards)
	return nil
}

// progressPrinter returns a concurrency-safe per-cell progress callback.
// Completion order varies with scheduling, so this output goes to stderr
// only — the tables on stdout stay deterministic.
func progressPrinter(w io.Writer) func(experiments.CellEvent) {
	var mu sync.Mutex
	done := make(map[string]int)
	return func(ev experiments.CellEvent) {
		mu.Lock()
		defer mu.Unlock()
		done[ev.Experiment]++
		status := ""
		if ev.Err != nil {
			status = " ERROR: " + ev.Err.Error()
		}
		fmt.Fprintf(w, "[%s %d/%d] %s %v%s\n",
			ev.Experiment, done[ev.Experiment], ev.Total, ev.Label,
			ev.Elapsed.Round(time.Millisecond), status)
	}
}
