// Command srccluster runs the cluster-layer churn harness from the command
// line: per seed, a replicated netblock fleet is driven through a guarded
// membership-chaos schedule — kills, restarts, disk wipes, fail-slow links,
// partitions, and join/leave rebalances overlapping live traffic — while
// the model volume checks that no acknowledged write is ever lost and no
// request fails while a healthy replica of its range exists.
//
// Usage:
//
//	srccluster                 # seeds 1..50
//	srccluster -seeds 500      # wider sweep
//	srccluster -seed 11 -v     # one seed, full counter detail
//	srccluster -json           # violations as NDJSON (CI annotations)
//	srccluster -supervised     # lifecycle via the crashable supervisor actor
//
// With -supervised the rebalance lifecycle runs through the journaling
// supervisor actor instead of the harness, and each seed class composes
// one control-plane fault on top of the data-plane chaos: supervisor
// death mid-commit, node crash during repair during rebalance, or a
// fail-slow head during a join.
//
// The default report is one summary line per seed plus aggregate latency
// digests; exit status is 1 if any invariant was violated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"srccache/internal/cluster"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srccluster:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// violationJSON is the NDJSON shape -json emits, one line per violated
// seed — stable fields for jq-driven CI annotations.
type violationJSON struct {
	Seed       int64    `json:"seed"`
	Violations []string `json:"violations"`
	FailedOps  int      `json:"failed_ops"`
	VerifyErrs int      `json:"verify_errors"`
	Signature  string   `json:"signature"`
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("srccluster", flag.ContinueOnError)
	var (
		seeds    = fs.Int64("seeds", 50, "run seeds 1..N")
		seed     = fs.Int64("seed", 0, "run this single seed instead of -seeds")
		ops      = fs.Int("ops", 0, "client operations per seed (default 400)")
		nodes    = fs.Int("nodes", 0, "initial fleet size (default 5)")
		replicas = fs.Int("replicas", 0, "replication factor (default 3)")
		asJSON   = fs.Bool("json", false, "emit violations as NDJSON instead of the report")
		verbose  = fs.Bool("v", false, "full per-seed counters")
		suprv    = fs.Bool("supervised", false, "drive the lifecycle through the crashable supervisor actor")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	var list []int64
	if *seed != 0 {
		list = []int64{*seed}
	} else {
		for s := int64(1); s <= *seeds; s++ {
			list = append(list, s)
		}
	}

	enc := json.NewEncoder(stdout)
	violated := 0
	totalOps := 0
	for _, s := range list {
		res, err := cluster.Sim(cluster.SimConfig{
			Seed: s, Ops: *ops, Nodes: *nodes, Replicas: *replicas,
			Supervised: *suprv,
		})
		if err != nil {
			return 2, err
		}
		totalOps += res.Ops
		v := res.Violations()
		if len(v) > 0 {
			violated++
		}
		switch {
		case *asJSON:
			if len(v) > 0 {
				if err := enc.Encode(violationJSON{
					Seed: s, Violations: v, FailedOps: res.FailedOps,
					VerifyErrs: res.VerifyErrors, Signature: res.Signature(),
				}); err != nil {
					return 2, err
				}
			}
		case *verbose:
			fmt.Fprintf(stdout, "seed %3d: %+v\n", s, res)
		default:
			line := fmt.Sprintf(
				"seed %3d: ops %4d kills %d wipes %d cuts %d joins %d leaves %d commits %d aborts %d repaired %3d",
				s, res.Ops, res.Kills, res.Wipes, res.Partitions, res.Joins, res.Leaves,
				res.Commits, res.Aborts, res.RangesRepaired)
			if *suprv {
				line += fmt.Sprintf(" supkills %d midcommit %d resumes %d",
					res.SupKills, res.MidCommitCrashes, res.SupResumes)
			}
			fmt.Fprintf(stdout, "%s  read p99 %-10v write p99 %-10v %s\n",
				line, res.ReadLat.P99, res.WriteLat.P99, status(v))
		}
	}
	if !*asJSON {
		fmt.Fprintf(stdout, "\n%d seeds, %d client ops, %d violated\n", len(list), totalOps, violated)
	}
	if violated > 0 {
		return 1, nil
	}
	return 0, nil
}

func status(v []string) string {
	if len(v) == 0 {
		return "ok"
	}
	return fmt.Sprintf("VIOLATED: %v", v)
}
