package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefaultReport(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-seeds", "2", "-ops", "200"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d with output:\n%s", code, out.String())
	}
	report := out.String()
	if !strings.Contains(report, "seed   1:") || !strings.Contains(report, "seed   2:") {
		t.Fatalf("missing per-seed lines:\n%s", report)
	}
	if !strings.Contains(report, "2 seeds") || !strings.Contains(report, "0 violated") {
		t.Fatalf("missing summary:\n%s", report)
	}
}

func TestRunSingleSeedVerbose(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-seed", "7", "-ops", "200", "-v"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "seed   7") || !strings.Contains(out.String(), "Kills:") {
		t.Fatalf("verbose detail missing:\n%s", out.String())
	}
}

func TestRunJSONQuietWhenClean(t *testing.T) {
	// NDJSON mode emits one line per violated seed; a clean sweep emits
	// nothing, which is what CI greps for.
	var out bytes.Buffer
	code, err := run([]string{"-seeds", "2", "-ops", "200", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean sweep emitted NDJSON:\n%s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out bytes.Buffer
	if code, err := run([]string{"-bogus"}, &out); err == nil || code != 2 {
		t.Fatalf("bad flag: code %d err %v", code, err)
	}
}

func TestRunSupervisedReport(t *testing.T) {
	var out bytes.Buffer
	code, err := run([]string{"-seeds", "3", "-ops", "300", "-supervised"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit %d with output:\n%s", code, out.String())
	}
	report := out.String()
	if !strings.Contains(report, "supkills") || !strings.Contains(report, "midcommit") {
		t.Fatalf("supervised columns missing:\n%s", report)
	}
	if !strings.Contains(report, "0 violated") {
		t.Fatalf("supervised sweep violated invariants:\n%s", report)
	}
}
