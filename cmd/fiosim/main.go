// Command fiosim is the FIO-like load driver for the simulated storage
// stack: it assembles a target (raw SSD, RAID volume, SRC cache, or the
// baseline caches) and runs a synthetic workload or an MSR-format trace
// against it, printing virtual-time throughput, latency, and cache
// metrics.
//
// Usage:
//
//	fiosim -target src -pattern randwrite -bs 4096 -iodepth 32 -threads 4 -requests 100000
//	fiosim -target raid5 -pattern randread -requests 50000
//	fiosim -target src -replay trace.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"srccache/internal/bcachesim"
	"srccache/internal/bench"
	"srccache/internal/blockdev"
	"srccache/internal/flashcachesim"
	"srccache/internal/primary"
	"srccache/internal/raid"
	"srccache/internal/src"
	"srccache/internal/ssd"
	"srccache/internal/trace"
	"srccache/internal/vtime"
	"srccache/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fiosim:", err)
		os.Exit(1)
	}
}

type config struct {
	target   string
	pattern  string
	bs       int64
	iodepth  int
	threads  int
	requests int64
	span     int64
	ssdCap   int64
	replay   string
	openLoop bool
	speedup  float64
	seed     int64
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fiosim", flag.ContinueOnError)
	var c config
	fs.StringVar(&c.target, "target", "src", "target: ssd | raid0 | raid5 | src | bcache5 | flashcache5")
	fs.StringVar(&c.pattern, "pattern", "randwrite", "randwrite | randread | randrw | write | read | zipf")
	fs.Int64Var(&c.bs, "bs", 4096, "request size in bytes (page multiple)")
	fs.IntVar(&c.iodepth, "iodepth", 32, "outstanding requests per thread")
	fs.IntVar(&c.threads, "threads", 4, "workload threads")
	fs.Int64Var(&c.requests, "requests", 100_000, "total requests")
	fs.Int64Var(&c.span, "span", 0, "addressed span in bytes (default: half the target)")
	fs.Int64Var(&c.ssdCap, "ssdcap", 256<<20, "per-SSD capacity in bytes")
	fs.StringVar(&c.replay, "replay", "", "replay an MSR-format CSV trace instead of a synthetic pattern")
	fs.BoolVar(&c.openLoop, "openloop", false, "honour trace timestamps (open-loop) instead of closed-loop replay")
	fs.Float64Var(&c.speedup, "speedup", 1, "open-loop timestamp acceleration factor")
	fs.Int64Var(&c.seed, "seed", 0, "workload seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sys, devs, cache, volume, err := buildTarget(c)
	if err != nil {
		return err
	}
	if c.span == 0 {
		c.span = volume / 2
		c.span -= c.span % blockdev.PageSize
	}

	before := bench.SnapshotDevices(devs)
	var res *bench.Result
	if c.openLoop {
		if c.replay == "" {
			return fmt.Errorf("-openloop requires -replay (timestamps come from the trace)")
		}
		arrivals, err := loadArrivals(c.replay)
		if err != nil {
			return err
		}
		res, err = bench.RunOpenLoop(sys, arrivals, bench.OpenLoopOptions{Speedup: c.speedup})
		if err != nil {
			return err
		}
	} else {
		sources, err := buildSources(c)
		if err != nil {
			return err
		}
		res, err = bench.Run(sys, sources, bench.Options{
			Slots:       c.iodepth * c.threads,
			MaxRequests: c.requests,
		})
		if err != nil {
			return err
		}
	}

	fmt.Fprintf(stdout, "target=%s pattern=%s bs=%d iodepth=%d threads=%d\n",
		c.target, c.pattern, c.bs, c.iodepth, c.threads)
	fmt.Fprintf(stdout, "requests=%d bytes=%d makespan=%v\n", res.Requests, res.Bytes, res.Makespan())
	fmt.Fprintf(stdout, "throughput=%.1f MB/s iops=%.0f\n", res.MBps(), res.IOPS())
	fmt.Fprintf(stdout, "latency mean=%v p50=%v p99=%v max=%v\n",
		res.Latency.Mean(), res.Latency.Percentile(50), res.Latency.Percentile(99), res.Latency.Max())
	devBytes := bench.DeltaBytes(devs, before)
	fmt.Fprintf(stdout, "device bytes=%d amplification=%.2f\n", devBytes, bench.IOAmplification(res.Bytes, devBytes))
	if cache != nil {
		ctr := cache.Counters()
		fmt.Fprintf(stdout, "hit ratio=%.3f destaged=%d MiB gc copies=%d MiB metadata=%d MiB parity=%d MiB flushes=%d\n",
			ctr.HitRatio(), ctr.DestageBytes>>20, ctr.GCCopyBytes>>20, ctr.MetadataBytes>>20, ctr.ParityBytes>>20, ctr.SSDFlushes)
	}
	return nil
}

// buildTarget assembles the chosen system. It returns the system to drive,
// the devices to account traffic against, the cache (nil for raw targets),
// and the host-visible volume size.
func buildTarget(c config) (bench.System, []blockdev.Device, bench.Cache, int64, error) {
	mkSSDs := func(n int) ([]blockdev.Device, error) {
		devs := make([]blockdev.Device, n)
		for i := range devs {
			cfg := ssd.SATAMLCConfig(fmt.Sprintf("ssd%d", i), c.ssdCap)
			cfg.EraseGroupSize = 16 << 20
			cfg.WriteCacheBytes = 4 << 20
			d, err := ssd.New(cfg)
			if err != nil {
				return nil, err
			}
			devs[i] = d
		}
		return devs, nil
	}
	mkPrimary := func(span int64) (*primary.Storage, error) {
		perDisk := span/4 + (64 << 20)
		perDisk -= perDisk % (64 << 10)
		return primary.New(primary.Config{DiskCapacity: perDisk})
	}

	switch c.target {
	case "ssd":
		devs, err := mkSSDs(1)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		return devs[0], devs, nil, devs[0].Capacity(), nil
	case "raid0", "raid5":
		level := raid.Level0
		if c.target == "raid5" {
			level = raid.Level5
		}
		devs, err := mkSSDs(4)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		arr, err := raid.New(level, blockdev.PageSize, devs)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		return arr, devs, nil, arr.Capacity(), nil
	case "src":
		devs, err := mkSSDs(4)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		prim, err := mkPrimary(4 * c.ssdCap)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		cache, err := src.New(src.Config{
			SSDs: devs, Primary: prim,
			EraseGroupSize: 16 << 20, SegmentColumn: 128 << 10,
		})
		if err != nil {
			return nil, nil, nil, 0, err
		}
		return cache, devs, cache, prim.Capacity(), nil
	case "bcache5", "flashcache5":
		devs, err := mkSSDs(4)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		arr, err := raid.New(raid.Level5, blockdev.PageSize, devs)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		prim, err := mkPrimary(4 * c.ssdCap)
		if err != nil {
			return nil, nil, nil, 0, err
		}
		var cache bench.Cache
		if c.target == "bcache5" {
			cache, err = bcachesim.New(bcachesim.Config{
				Cache: arr, SSDs: devs, Primary: prim, BucketBytes: 2 << 20, WritebackPercent: 90,
			})
		} else {
			cache, err = flashcachesim.New(flashcachesim.Config{
				Cache: arr, SSDs: devs, Primary: prim, SetBytes: 2 << 20, DirtyThreshPct: 90,
			})
		}
		if err != nil {
			return nil, nil, nil, 0, err
		}
		return cache, devs, cache, prim.Capacity(), nil
	default:
		return nil, nil, nil, 0, fmt.Errorf("unknown target %q", c.target)
	}
}

// buildSources creates the workload sources: either the synthetic pattern
// split across threads, or a trace replay.
func buildSources(c config) ([]workload.Source, error) {
	if c.replay != "" {
		f, err := os.Open(c.replay)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		recs, err := trace.ReadCSV(f)
		if err != nil {
			return nil, err
		}
		return []workload.Source{trace.NewReplay(recs)}, nil
	}
	var pattern workload.Pattern
	var readFrac float64
	switch c.pattern {
	case "randwrite":
		pattern = workload.UniformRandom
	case "randread":
		pattern, readFrac = workload.UniformRandom, 1
	case "randrw":
		pattern, readFrac = workload.UniformRandom, 0.5
	case "write":
		pattern = workload.Sequential
	case "read":
		pattern, readFrac = workload.Sequential, 1
	case "zipf":
		pattern, readFrac = workload.Zipf, 0.5
	default:
		return nil, fmt.Errorf("unknown pattern %q", c.pattern)
	}
	sources := make([]workload.Source, c.threads)
	for i := range sources {
		gen, err := workload.NewGenerator(workload.Config{
			Pattern:      pattern,
			Span:         c.span,
			RequestBytes: c.bs,
			ReadFraction: readFrac,
			Seed:         c.seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		sources[i] = gen
	}
	return sources, nil
}

// loadArrivals reads an MSR-format trace as timestamped arrivals.
func loadArrivals(path string) ([]bench.TimedRequest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := trace.ReadCSV(f)
	if err != nil {
		return nil, err
	}
	arrivals := make([]bench.TimedRequest, len(recs))
	for i, r := range recs {
		arrivals[i] = bench.TimedRequest{
			At:  vtime.Time(r.Timestamp),
			Req: blockdev.Request{Op: r.Op, Off: r.Off, Len: r.Len},
		}
	}
	return arrivals, nil
}
