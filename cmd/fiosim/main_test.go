package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

func TestTargetsRun(t *testing.T) {
	for _, target := range []string{"ssd", "raid0", "raid5", "src", "bcache5", "flashcache5"} {
		t.Run(target, func(t *testing.T) {
			var out bytes.Buffer
			err := run([]string{
				"-target", target, "-requests", "2000", "-ssdcap", "67108864",
			}, &out)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out.String(), "throughput=") {
				t.Fatalf("no throughput line:\n%s", out.String())
			}
			if target == "src" && !strings.Contains(out.String(), "hit ratio=") {
				t.Fatal("cache metrics missing for src target")
			}
		})
	}
}

func TestPatterns(t *testing.T) {
	for _, pattern := range []string{"randwrite", "randread", "randrw", "write", "read", "zipf"} {
		var out bytes.Buffer
		err := run([]string{
			"-target", "ssd", "-pattern", pattern, "-requests", "500", "-ssdcap", "67108864",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", pattern, err)
		}
	}
}

func TestReplayTrace(t *testing.T) {
	// Generate a tiny trace inline.
	path := t.TempDir() + "/t.csv"
	lines := []string{
		"1,h,0,Write,0,4096,0",
		"2,h,0,Write,4096,4096,0",
		"3,h,0,Read,0,4096,0",
	}
	if err := writeFile(path, strings.Join(lines, "\n")+"\n"); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-target", "src", "-replay", path, "-ssdcap", "67108864"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "requests=3") {
		t.Fatalf("replay did not issue 3 requests:\n%s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-target", "nope"}, &out); err == nil {
		t.Fatal("unknown target accepted")
	}
	if err := run([]string{"-pattern", "nope", "-requests", "10"}, &out); err == nil {
		t.Fatal("unknown pattern accepted")
	}
	if err := run([]string{"-replay", "/does/not/exist"}, &out); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestOpenLoopReplay(t *testing.T) {
	path := t.TempDir() + "/t.csv"
	var lines []string
	for i := 0; i < 20; i++ {
		// 100 µs apart in FILETIME ticks (1000 x 100 ns).
		lines = append(lines, fmt.Sprintf("%d,h,0,Write,%d,4096,0", i*1000, i*4096))
	}
	if err := writeFile(path, strings.Join(lines, "\n")+"\n"); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-target", "ssd", "-replay", path, "-openloop", "-ssdcap", "67108864"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "requests=20") {
		t.Fatalf("open-loop replay output:\n%s", out.String())
	}
	// Open-loop requires a trace.
	if err := run([]string{"-target", "ssd", "-openloop"}, &out); err == nil {
		t.Fatal("openloop without replay accepted")
	}
}
