package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/trace"
)

func TestGenerateSingleTrace(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-trace", "prxy0", "-n", "500", "-scale", "0.001"}, &out); err != nil {
		t.Fatal(err)
	}
	recs, err := trace.ReadCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 500 {
		t.Fatalf("%d records", len(recs))
	}
	// prxy0 is 3% reads: the stream must be write-dominated.
	reads := 0
	for _, r := range recs {
		if r.Op == blockdev.OpRead {
			reads++
		}
		if r.Host != "prxy0" {
			t.Fatalf("host %q", r.Host)
		}
	}
	if reads > 50 {
		t.Fatalf("%d reads of 500 for a 3%%-read trace", reads)
	}
}

func TestGenerateGroupToFile(t *testing.T) {
	path := t.TempDir() + "/write.csv"
	var out bytes.Buffer
	if err := run([]string{"-group", "Write", "-n", "20", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 20*10 { // 10 traces in the Write group
		t.Fatalf("%d records", len(recs))
	}
	hosts := map[string]bool{}
	for _, r := range recs {
		hosts[r.Host] = true
	}
	if len(hosts) != 10 {
		t.Fatalf("%d distinct traces", len(hosts))
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil || !strings.Contains(err.Error(), "required") {
		t.Fatalf("missing selector err = %v", err)
	}
	if err := run([]string{"-trace", "nope"}, &out); err == nil {
		t.Fatal("unknown trace accepted")
	}
	if err := run([]string{"-group", "nope"}, &out); err == nil {
		t.Fatal("unknown group accepted")
	}
}
