// Command tracegen synthesizes MSR-format block traces from the paper's
// Table 6 statistics, for replay by fiosim or external tools.
//
// Usage:
//
//	tracegen -trace prxy0 -n 100000 -scale 0.0625 -o prxy0.csv
//	tracegen -group Write -n 50000 -o write-group.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"srccache/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		name  = fs.String("trace", "", "trace name from Table 6 (e.g. prxy0)")
		group = fs.String("group", "", "emit every trace of a group (Write|Mixed|Read)")
		n     = fs.Int64("n", 100_000, "records per trace")
		scale = fs.Float64("scale", 1.0/16, "footprint scale vs the paper")
		seed  = fs.Int64("seed", 0, "generator seed")
		out   = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var specs []trace.Spec
	switch {
	case *group != "":
		g, err := trace.Group(*group)
		if err != nil {
			return err
		}
		specs = g
	case *name != "":
		for _, gname := range trace.GroupNames() {
			g, err := trace.Group(gname)
			if err != nil {
				return err
			}
			for _, s := range g {
				if s.Name == *name {
					specs = append(specs, s)
				}
			}
		}
		if len(specs) == 0 {
			return fmt.Errorf("unknown trace %q (see Table 6 names, e.g. prxy0)", *name)
		}
	default:
		return fmt.Errorf("one of -trace or -group is required")
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	var offset int64
	for _, spec := range specs {
		synth, err := trace.NewSynth(trace.SynthConfig{
			Spec: spec, Scale: *scale, Offset: offset, Seed: *seed,
		})
		if err != nil {
			return err
		}
		offset += synth.Span()
		recs := make([]trace.Record, *n)
		for i := range recs {
			recs[i] = synth.NextRecord()
		}
		if err := trace.WriteCSV(w, recs); err != nil {
			return err
		}
	}
	return nil
}
