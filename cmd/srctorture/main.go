// Command srctorture runs the crash-consistency torture engine from the
// command line: a seeded workload per configuration cell, systematic
// partial-persistence crash schedules at every flush epoch, and recovery
// invariant checks over each crashed state.
//
// Usage:
//
//	srctorture                 # seeds 1..4 over the full matrix
//	srctorture -seeds 32       # wider sweep
//	srctorture -seed 7 -v      # one seed, per-cell detail
//	srctorture -json           # violations as NDJSON (CI annotations)
//
// The default report is a per-cell table of trial counts and realized
// data-loss windows (the flush-policy exposure the paper's §4.1 trades
// against flush traffic), followed by any invariant violations with their
// shrunk schedules. The exit status is 1 if any violation was found.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"srccache/internal/torture"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srctorture:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// violationJSON is the NDJSON shape -json emits, one line per violation —
// stable fields for jq-driven CI annotations.
type violationJSON struct {
	Cell      string `json:"cell"`
	Seed      int64  `json:"seed"`
	Epoch     int    `json:"epoch"`
	Op        int    `json:"op"`
	Tier      string `json:"tier"`
	Invariant string `json:"invariant"`
	Detail    string `json:"detail"`
	// Kept counts the persisted writes per SSD in the shrunk schedule; the
	// full schedule is replayable from the seed.
	Kept []int `json:"kept"`
}

func run(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("srctorture", flag.ContinueOnError)
	var (
		seeds     = fs.Int64("seeds", 4, "run seeds 1..N")
		seed      = fs.Int64("seed", 0, "run this single seed instead of -seeds")
		ops       = fs.Int("ops", 0, "workload operations per cell (default 600)")
		schedules = fs.Int("k", 0, "seeded schedules per tier per epoch (default 4)")
		epochs    = fs.Int("epochs", 0, "flush-epoch snapshots retained per cell (default 6)")
		asJSON    = fs.Bool("json", false, "emit violations as NDJSON instead of the table")
		verbose   = fs.Bool("v", false, "per-seed cell detail instead of the aggregate table")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	var list []int64
	if *seed != 0 {
		list = []int64{*seed}
	} else {
		for s := int64(1); s <= *seeds; s++ {
			list = append(list, s)
		}
	}

	// Aggregate across seeds: trials summed, loss windows maxed.
	type agg struct {
		trials int
		loss   int
	}
	cells := make(map[torture.Cell]*agg)
	var order []torture.Cell
	var violations []torture.Violation
	trials := 0
	for _, s := range list {
		rep, err := torture.Run(torture.Options{
			Seed:              s,
			Ops:               *ops,
			SchedulesPerEpoch: *schedules,
			MaxEpochs:         *epochs,
		})
		if err != nil {
			return 2, err
		}
		trials += rep.Trials
		violations = append(violations, rep.Violations...)
		for _, cs := range rep.Cells {
			a, ok := cells[cs.Cell]
			if !ok {
				a = &agg{}
				cells[cs.Cell] = a
				order = append(order, cs.Cell)
			}
			a.trials += cs.Trials
			if cs.MaxLossWindow > a.loss {
				a.loss = cs.MaxLossWindow
			}
			if *verbose && !*asJSON {
				fmt.Fprintf(stdout, "seed %d %-28v epochs %2d trials %4d loss %4d\n",
					s, cs.Cell, cs.Epochs, cs.Trials, cs.MaxLossWindow)
			}
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		for _, v := range violations {
			kept := make([]int, len(v.Schedules))
			for i, sch := range v.Schedules {
				for _, k := range sch.Keep {
					if k {
						kept[i]++
					}
				}
			}
			if err := enc.Encode(violationJSON{
				Cell: v.Cell.String(), Seed: v.Seed, Epoch: v.Epoch, Op: v.Op,
				Tier: v.Tier, Invariant: v.Invariant, Detail: v.Detail, Kept: kept,
			}); err != nil {
				return 2, err
			}
		}
		if len(violations) > 0 {
			return 1, nil
		}
		return 0, nil
	}

	sort.Slice(order, func(i, j int) bool { return order[i].String() < order[j].String() })
	fmt.Fprintf(stdout, "%d seeds, %d crash trials\n\n", len(list), trials)
	fmt.Fprintf(stdout, "%-28s %8s %12s\n", "cell", "trials", "loss window")
	for _, c := range order {
		fmt.Fprintf(stdout, "%-28v %8d %12d\n", c, cells[c].trials, cells[c].loss)
	}
	if len(violations) == 0 {
		fmt.Fprintf(stdout, "\nno invariant violations\n")
		return 0, nil
	}
	fmt.Fprintf(stdout, "\n%d violation(s):\n", len(violations))
	for _, v := range violations {
		fmt.Fprintf(stdout, "  %s\n", v)
	}
	return 1, nil
}
