// Command srclint checks this repository's determinism and I/O-error
// contracts (DESIGN.md, "Determinism contract"):
//
//	wallclock   simulation packages must use internal/vtime, never the host clock
//	seededrand  randomness comes from injected seeded *rand.Rand values only
//	maprange    map iteration order must not reach slices or writers unsorted
//	ioerr       blockdev/raid I/O errors must never be discarded
//
// Run standalone (srclint ./...) or as a vet tool:
//
//	go build -o bin/srclint ./cmd/srclint
//	go vet -vettool=$PWD/bin/srclint ./...
//
// Suppress an individual finding with //srclint:allow <check> [reason] on
// or directly above the offending line.
package main

import (
	"os"

	"srccache/internal/analysis"
	"srccache/internal/analysis/driver"
	"srccache/internal/analysis/ioerr"
	"srccache/internal/analysis/maprange"
	"srccache/internal/analysis/seededrand"
	"srccache/internal/analysis/wallclock"
)

func main() {
	os.Exit(driver.Main([]*analysis.Analyzer{
		wallclock.Analyzer,
		seededrand.Analyzer,
		maprange.Analyzer,
		ioerr.Analyzer,
	}))
}
