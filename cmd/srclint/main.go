// Command srclint checks this repository's determinism, I/O-error,
// flush-epoch and concurrency contracts (DESIGN.md §8):
//
//	wallclock    simulation packages must use internal/vtime, never the host clock
//	seededrand   randomness comes from injected seeded *rand.Rand values only
//	maprange     map iteration order must not reach slices or writers unsorted
//	ioerr        blockdev/raid I/O errors must never be discarded
//	errpath      an error bound from a blockdev/raid call must be read on every path
//	lockheld     no sync.Mutex/RWMutex held across blockdev/raid/netblock I/O
//	flushepoch   //srclint:contract flush functions drain/flush on every success path
//	confined     //srclint:confined fields reached only from their owner goroutine
//	             or behind a //srclint:handoff guard
//	atomicfreeze values published via atomic.Pointer/atomic.Value are frozen
//	chandisc     no send after close, close only from the //srclint:owns owner,
//	             no receive on a self-closed channel
//	staleepoch   cluster-layer calls that can surface netblock.ErrStaleEpoch
//	             must guard with errors.Is and reach a refetch/refresh
//	             handler, or declare //srclint:surfaces staleepoch
//	boundedretry retry/reconnect loops must consult a budget, limit, or
//	             deadline on every back edge
//	hotpath      //srclint:hotpath functions (and everything they call, in
//	             any package) must not heap-allocate composite literals,
//	             call fmt/reflect, iterate maps, or defer in loops; prune
//	             with //srclint:coldpath at a boundary
//
// errpath, lockheld and flushepoch are path-sensitive: they run over
// per-function control-flow graphs (internal/analysis/cfg). confined,
// atomicfreeze and chandisc are additionally interprocedural: they run
// over the package call graph (internal/analysis/callgraph — static call,
// go and defer edges with function-value flow and per-function effect
// summaries). staleepoch, boundedretry and hotpath are modular: each
// package's analysis emits serialized fact summaries
// (internal/analysis/modfacts — exported contracts, cross-package call
// edges, hot-path safety), and the driver loads dependency facts so the
// contracts propagate across package boundaries.
//
// Run standalone (srclint ./...), with -json for machine-readable NDJSON
// findings on stdout, or as a vet tool:
//
//	go build -o bin/srclint ./cmd/srclint
//	go vet -vettool=$PWD/bin/srclint ./...
//
// Select or drop checks with -checks=<name>,... and -exclude=<name>,...
// (unknown names are errors).
//
// Suppress an individual finding with //srclint:allow <check>[,<check>...]
// [reason] on or directly above the offending line; a directive that
// suppresses nothing is itself reported (staleallow). The annotation
// grammar for the contracts (//srclint:contract flush, //srclint:confined,
// //srclint:handoff, //srclint:owns, //srclint:contracterr,
// //srclint:surfaces, //srclint:handles, //srclint:hotpath,
// //srclint:coldpath) is documented in DESIGN.md §8.
package main

import (
	"os"

	"srccache/internal/analysis"
	"srccache/internal/analysis/atomicfreeze"
	"srccache/internal/analysis/boundedretry"
	"srccache/internal/analysis/chandisc"
	"srccache/internal/analysis/confined"
	"srccache/internal/analysis/driver"
	"srccache/internal/analysis/errpath"
	"srccache/internal/analysis/flushepoch"
	"srccache/internal/analysis/hotpath"
	"srccache/internal/analysis/ioerr"
	"srccache/internal/analysis/lockheld"
	"srccache/internal/analysis/maprange"
	"srccache/internal/analysis/seededrand"
	"srccache/internal/analysis/staleepoch"
	"srccache/internal/analysis/wallclock"
)

func main() {
	os.Exit(driver.Main([]*analysis.Analyzer{
		wallclock.Analyzer,
		seededrand.Analyzer,
		maprange.Analyzer,
		ioerr.Analyzer,
		errpath.Analyzer,
		lockheld.Analyzer,
		flushepoch.Analyzer,
		confined.Analyzer,
		atomicfreeze.Analyzer,
		chandisc.Analyzer,
		staleepoch.Analyzer,
		boundedretry.Analyzer,
		hotpath.Analyzer,
	}))
}
