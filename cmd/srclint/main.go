// Command srclint checks this repository's determinism, I/O-error and
// flush-epoch contracts (DESIGN.md §8):
//
//	wallclock   simulation packages must use internal/vtime, never the host clock
//	seededrand  randomness comes from injected seeded *rand.Rand values only
//	maprange    map iteration order must not reach slices or writers unsorted
//	ioerr       blockdev/raid I/O errors must never be discarded
//	errpath     an error bound from a blockdev/raid call must be read on every path
//	lockheld    no sync.Mutex/RWMutex held across blockdev/raid/netblock I/O
//	flushepoch  //srclint:contract flush functions drain/flush on every success path
//
// The last three are path-sensitive: they run over per-function control-flow
// graphs (internal/analysis/cfg) rather than the bare syntax tree.
//
// Run standalone (srclint ./...), with -json for machine-readable NDJSON
// findings on stdout, or as a vet tool:
//
//	go build -o bin/srclint ./cmd/srclint
//	go vet -vettool=$PWD/bin/srclint ./...
//
// Suppress an individual finding with //srclint:allow <check>[,<check>...]
// [reason] on or directly above the offending line; a directive that
// suppresses nothing is itself reported (staleallow). Mark a function whose
// success paths must reach a drain/flush call — summary commits, group
// reuse, rebuild completion — with //srclint:contract flush in its doc
// comment; flushepoch then enforces the flush-epoch invariant statically.
package main

import (
	"os"

	"srccache/internal/analysis"
	"srccache/internal/analysis/driver"
	"srccache/internal/analysis/errpath"
	"srccache/internal/analysis/flushepoch"
	"srccache/internal/analysis/ioerr"
	"srccache/internal/analysis/lockheld"
	"srccache/internal/analysis/maprange"
	"srccache/internal/analysis/seededrand"
	"srccache/internal/analysis/wallclock"
)

func main() {
	os.Exit(driver.Main([]*analysis.Analyzer{
		wallclock.Analyzer,
		seededrand.Analyzer,
		maprange.Analyzer,
		ioerr.Analyzer,
		errpath.Analyzer,
		lockheld.Analyzer,
		flushepoch.Analyzer,
	}))
}
