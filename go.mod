module srccache

go 1.22
