package srccache

import (
	"fmt"
	"math/rand"

	"srccache/internal/bench"
	"srccache/internal/blockdev"
	"srccache/internal/hdd"
	"srccache/internal/primary"
	"srccache/internal/src"
	"srccache/internal/ssd"
	"srccache/internal/trace"
	"srccache/internal/vtime"
	"srccache/internal/workload"
)

// Virtual-time primitives. All devices and caches operate in virtual time;
// runs are deterministic and independent of host hardware.
type (
	// Time is an instant of virtual time (nanoseconds from simulation
	// start).
	Time = vtime.Time
	// Duration is a span of virtual time.
	Duration = vtime.Duration
)

// Block-device vocabulary.
type (
	// Request is one block I/O (page-aligned byte offset and length).
	Request = blockdev.Request
	// Op identifies a request kind.
	Op = blockdev.Op
	// Device is a block device operating in virtual time.
	Device = blockdev.Device
	// DeviceStats carries per-device traffic counters.
	DeviceStats = blockdev.Stats
)

// Request operations.
const (
	OpRead  = blockdev.OpRead
	OpWrite = blockdev.OpWrite
	OpTrim  = blockdev.OpTrim
)

// PageSize is the caching and addressing unit (4 KiB).
const PageSize = blockdev.PageSize

// Faulty wraps any Device with fail-stop fault injection (Fail/Repair) for
// failure-handling scenarios.
type Faulty = blockdev.Faulty

// NewFaulty wraps a device for fail-stop fault injection.
func NewFaulty(dev Device) *Faulty { return blockdev.NewFaulty(dev) }

// FaultPlan wraps any Device with the full fault taxonomy — latent sector
// errors (ErrUnreadable), transient errors, fail-slow, probabilistic silent
// corruption, and scheduled fail-stop — driven by an injected seeded
// *rand.Rand so fault sequences are reproducible.
type FaultPlan = blockdev.FaultPlan

// NewFaultPlan wraps a device with seeded fault injection; rng may be nil
// when only explicit injections are used.
func NewFaultPlan(dev Device, rng *rand.Rand) *FaultPlan {
	return blockdev.NewFaultPlan(dev, rng)
}

// Tag is the 16-byte content fingerprint of one page; DataTag derives the
// canonical tag for a (logical block, version) pair.
type Tag = blockdev.Tag

// DataTag derives the content tag for version v of logical block lba.
func DataTag(lba int64, version uint64) Tag { return blockdev.DataTag(lba, version) }

// The SRC cache (the paper's contribution).
type (
	// Cache is an SRC instance.
	Cache = src.Cache
	// CacheConfig assembles a Cache; zero fields take the paper's
	// defaults (Table 7).
	CacheConfig = src.Config
	// GCPolicy selects S2D or SelGC free-space reclamation.
	GCPolicy = src.GCPolicy
	// VictimPolicy selects FIFO or Greedy victim groups.
	VictimPolicy = src.VictimPolicy
	// ParityMode selects PC or NPC clean-data redundancy.
	ParityMode = src.ParityMode
	// CacheRAIDLevel selects the cache-level striping.
	CacheRAIDLevel = src.RAIDLevel
	// FlushPolicy selects the flush-command cadence.
	FlushPolicy = src.FlushPolicy
)

// SRC design-space values (paper Table 7; defaults in bold there are the
// zero-value defaults here).
const (
	S2D         = src.S2D
	SelGC       = src.SelGC
	FIFO        = src.FIFO
	Greedy      = src.Greedy
	CostBenefit = src.CostBenefit
	PC          = src.PC
	NPC         = src.NPC
	RAID0       = src.RAID0
	RAID4       = src.RAID4
	RAID5       = src.RAID5

	FlushPerSegment      = src.FlushPerSegment
	FlushPerSegmentGroup = src.FlushPerSegmentGroup
	FlushPerMetadata     = src.FlushPerMetadata
	FlushNever           = src.FlushNever
)

// NewCache assembles an SRC cache from cfg.
func NewCache(cfg CacheConfig) (*Cache, error) { return src.New(cfg) }

// Simulated devices.
type (
	// SSD is a simulated flash drive (hybrid FTL, write cache, TRIM,
	// wear accounting).
	SSD = ssd.SSD
	// SSDConfig parameterizes an SSD.
	SSDConfig = ssd.Config
	// HDD is a simulated rotating disk.
	HDD = hdd.HDD
	// HDDConfig parameterizes an HDD.
	HDDConfig = hdd.Config
	// Primary is the networked HDD-RAID-10 backing store.
	Primary = primary.Storage
	// PrimaryConfig parameterizes the backing store.
	PrimaryConfig = primary.Config
)

// SSD product presets (paper Tables 4 and 12).
var (
	SATAMLCConfig = ssd.SATAMLCConfig
	SATATLCConfig = ssd.SATATLCConfig
	NVMeMLCConfig = ssd.NVMeMLCConfig
)

// NewSSD builds a simulated flash drive.
func NewSSD(cfg SSDConfig) (*SSD, error) { return ssd.New(cfg) }

// NewHDD builds a simulated rotating disk.
func NewHDD(cfg HDDConfig) (*HDD, error) { return hdd.New(cfg) }

// NewPrimary builds the networked backing store.
func NewPrimary(cfg PrimaryConfig) (*Primary, error) { return primary.New(cfg) }

// Workloads and benchmarking.
type (
	// WorkloadSource yields requests for the benchmark runner.
	WorkloadSource = workload.Source
	// WorkloadConfig parameterizes the FIO-like generator.
	WorkloadConfig = workload.Config
	// TraceSpec describes a trace by its published statistics (Table 6).
	TraceSpec = trace.Spec
	// TraceSynthConfig parameterizes synthetic trace generation.
	TraceSynthConfig = trace.SynthConfig
	// BenchOptions configures a closed-loop run.
	BenchOptions = bench.Options
	// BenchResult summarizes a run.
	BenchResult = bench.Result
	// CacheCounters carries cache-level accounting (hits, destages,
	// copies, overheads).
	CacheCounters = bench.Counters
)

// Workload access patterns.
const (
	UniformRandom = workload.UniformRandom
	Sequential    = workload.Sequential
	Zipf          = workload.Zipf
	Hotspot       = workload.Hotspot
)

// NewWorkload builds an FIO-like request generator.
func NewWorkload(cfg WorkloadConfig) (*workload.Generator, error) {
	return workload.NewGenerator(cfg)
}

// NewTraceSynth builds a synthetic trace source from published statistics.
func NewTraceSynth(cfg TraceSynthConfig) (*trace.Synth, error) {
	return trace.NewSynth(cfg)
}

// TraceGroup returns the paper's Table 6 trace set with the given name
// ("Write", "Mixed", or "Read").
func TraceGroup(name string) ([]TraceSpec, error) { return trace.Group(name) }

// RunBench drives a system (cache or raw device) with the sources in a
// closed loop and reports throughput and latency.
func RunBench(sys bench.System, sources []WorkloadSource, opt BenchOptions) (*BenchResult, error) {
	return bench.Run(sys, sources, opt)
}

// SystemConfig assembles a complete simulated deployment: an SSD array
// fronting networked primary storage, wired into an SRC cache. Zero fields
// take sensible laptop-scale defaults.
type SystemConfig struct {
	// SSDs is the number of cache drives (default 4).
	SSDs int
	// SSDCapacity is the per-drive cache region in bytes (default
	// 256 MiB; must be a multiple of EraseGroupSize).
	SSDCapacity int64
	// EraseGroupSize is the SSD erase group and SRC segment-group column
	// size (default 16 MiB — 1/16 of the paper's 256 MB).
	EraseGroupSize int64
	// PrimaryCapacity is the backing volume size (default 2 GiB).
	PrimaryCapacity int64
	// Cache overrides SRC parameters other than SSDs/Primary (GC policy,
	// parity mode, and so on).
	Cache CacheConfig
	// TrackContent enables content tags for integrity/recovery APIs.
	TrackContent bool
}

// System is an assembled deployment.
type System struct {
	Cache   *Cache
	SSDs    []*SSD
	Primary *Primary
}

// NewSystem builds a complete simulated deployment.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.SSDs == 0 {
		cfg.SSDs = 4
	}
	if cfg.EraseGroupSize == 0 {
		cfg.EraseGroupSize = 16 << 20
	}
	if cfg.SSDCapacity == 0 {
		cfg.SSDCapacity = 256 << 20
	}
	if cfg.PrimaryCapacity == 0 {
		cfg.PrimaryCapacity = 2 << 30
	}
	drives := make([]*SSD, cfg.SSDs)
	devs := make([]Device, cfg.SSDs)
	for i := range drives {
		c := SATAMLCConfig(fmt.Sprintf("ssd%d", i), cfg.SSDCapacity)
		c.EraseGroupSize = cfg.EraseGroupSize
		c.WriteCacheBytes = 4 << 20
		d, err := NewSSD(c)
		if err != nil {
			return nil, err
		}
		drives[i] = d
		devs[i] = d
	}
	perDisk := cfg.PrimaryCapacity / 4
	perDisk -= perDisk % (64 << 10)
	prim, err := NewPrimary(PrimaryConfig{DiskCapacity: perDisk})
	if err != nil {
		return nil, err
	}
	cacheCfg := cfg.Cache
	cacheCfg.SSDs = devs
	cacheCfg.Primary = prim
	if cacheCfg.EraseGroupSize == 0 {
		cacheCfg.EraseGroupSize = cfg.EraseGroupSize
	}
	if cacheCfg.SegmentColumn == 0 {
		cacheCfg.SegmentColumn = 128 << 10
	}
	cacheCfg.TrackContent = cacheCfg.TrackContent || cfg.TrackContent
	cache, err := NewCache(cacheCfg)
	if err != nil {
		return nil, err
	}
	return &System{Cache: cache, SSDs: drives, Primary: prim}, nil
}
