package srccache_test

// The benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation, each regenerating the result at a reduced request
// budget and reporting the headline virtual-time metric via ReportMetric
// (wall-clock ns/op measures simulation speed, not storage performance).
//
// Full-budget runs with complete tables: go run ./cmd/srcbench -exp all

import (
	"runtime"
	"strconv"
	"strings"
	"testing"

	"srccache/internal/experiments"
)

func benchOpts() experiments.Options {
	return experiments.Options{Scale: 16, Requests: 120_000}
}

// tableCell parses the leading float of a table cell ("123.4(1.56)" forms
// included).
func tableCell(b *testing.B, tbl *experiments.Table, row, col int) float64 {
	b.Helper()
	s := tbl.Rows[row][col]
	if i := strings.IndexByte(s, '('); i >= 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", tbl.Rows[row][col], err)
	}
	return v
}

// runExperiment executes the experiment b.N times and returns the last
// result set.
func runExperiment(b *testing.B, f func(experiments.Options) ([]*experiments.Table, error)) []*experiments.Table {
	return runExperimentOpts(b, benchOpts(), f)
}

// runExperimentOpts is runExperiment with explicit options.
func runExperimentOpts(b *testing.B, opts experiments.Options, f func(experiments.Options) ([]*experiments.Table, error)) []*experiments.Table {
	b.Helper()
	var tables []*experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tables, err = f(opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	return tables
}

func BenchmarkTable2WriteBackVsWriteThrough(b *testing.B) {
	t := runExperiment(b, experiments.Table2)
	b.ReportMetric(tableCell(b, t[0], 0, 2), "bcacheWB_MB/s")
	b.ReportMetric(tableCell(b, t[0], 1, 2), "flashcacheWB_MB/s")
}

func BenchmarkTable3FlushImpact(b *testing.B) {
	t := runExperiment(b, experiments.Table3)
	b.ReportMetric(tableCell(b, t[0], 0, 3), "seqReduction_x")
	b.ReportMetric(tableCell(b, t[0], 1, 3), "randReduction_x")
}

func BenchmarkFigure1BaselinesOverRAID(b *testing.B) {
	t := runExperiment(b, experiments.Figure1)
	b.ReportMetric(tableCell(b, t[0], 0, 4), "bcache5_MB/s")
	b.ReportMetric(tableCell(b, t[0], 1, 4), "flashcache5_MB/s")
}

func BenchmarkFigure2EraseGroupExtraction(b *testing.B) {
	t := runExperiment(b, experiments.Figure2)
	rows := len(t[0].Rows)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "smallest_ops0_MB/s")
	b.ReportMetric(tableCell(b, t[0], rows-2, 1), "eraseGroup_ops0_MB/s")
}

func BenchmarkFigure4EraseGroupSweep(b *testing.B) {
	t := runExperiment(b, experiments.Figure4)
	rows := len(t[0].Rows)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "egs2MB_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], rows-2, 1), "egs256MB_write_MB/s")
}

func BenchmarkTable8FreeSpaceManagement(b *testing.B) {
	t := runExperiment(b, experiments.Table8)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "s2dFIFO_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], 0, 3), "selGCFIFO_write_MB/s")
}

func BenchmarkFigure5UMaxSweep(b *testing.B) {
	t := runExperiment(b, experiments.Figure5)
	rows := len(t[0].Rows)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "umax30_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], rows-2, 1), "umax90_write_MB/s")
}

func BenchmarkTable9ParityMode(b *testing.B) {
	t := runExperiment(b, experiments.Table9)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "pc_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], 0, 2), "npc_write_MB/s")
}

func BenchmarkTable10RAIDLevel(b *testing.B) {
	t := runExperiment(b, experiments.Table10)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "raid0_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], 0, 3), "raid5_write_MB/s")
}

func BenchmarkTable11FlushCadence(b *testing.B) {
	t := runExperiment(b, experiments.Table11)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "perSegment_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], 0, 2), "perSG_write_MB/s")
}

func BenchmarkFigure6CostEffectiveness(b *testing.B) {
	t := runExperiment(b, experiments.Figure6)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "aMLC_write_MB/s")
	b.ReportMetric(tableCell(b, t[2], 3, 1), "bTLC_write_MBps_per_usd")
	b.ReportMetric(tableCell(b, t[3], 0, 1), "aMLC_lifetimeDays_per_usd")
}

func BenchmarkFigure7HeadToHead(b *testing.B) {
	t := runExperiment(b, experiments.Figure7)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "src_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], 2, 1), "bcache5_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], 3, 1), "flashcache5_write_MB/s")
	b.ReportMetric(tableCell(b, t[2], 0, 1), "src_write_hitRatio")
}

// BenchmarkFigure7HeadToHeadParallel is BenchmarkFigure7HeadToHead with
// the experiment's 12 cells fanned out over GOMAXPROCS workers; comparing
// the two ns/op measures the scheduler's wall-clock speedup (the reported
// virtual-time metrics are identical by construction).
func BenchmarkFigure7HeadToHeadParallel(b *testing.B) {
	opts := benchOpts()
	opts.Parallel = runtime.GOMAXPROCS(0)
	t := runExperimentOpts(b, opts, experiments.Figure7)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "src_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], 2, 1), "bcache5_write_MB/s")
}

func BenchmarkAblationVictimPolicies(b *testing.B) {
	t := runExperiment(b, experiments.AblationVictim)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "fifo_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], 0, 3), "costBenefit_write_MB/s")
}

func BenchmarkAblationGCSplit(b *testing.B) {
	t := runExperiment(b, experiments.AblationGCSplit)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "mixedBuffer_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], 0, 2), "separateGCBuffer_write_MB/s")
}

func BenchmarkAblationSegmentSize(b *testing.B) {
	t := runExperiment(b, experiments.AblationSegmentSize)
	b.ReportMetric(tableCell(b, t[0], 0, 1), "seg512KB_write_MB/s")
	b.ReportMetric(tableCell(b, t[0], 1, 1), "seg2MB_write_MB/s")
}
