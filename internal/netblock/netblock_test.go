package netblock

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// startPair runs a server over TCP on localhost and returns a connected
// client.
func startPair(t *testing.T, size int64) (*Server, *Client) {
	t.Helper()
	srv, err := NewServer(size)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(0); err == nil {
		t.Fatal("accepted empty volume")
	}
}

func TestRoundTripOverTCP(t *testing.T) {
	_, cli := startPair(t, 1<<20)
	if cli.Size() != 1<<20 {
		t.Fatalf("size %d", cli.Size())
	}
	want := []byte("hello remote block device")
	if _, err := cli.WriteAt(want, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if _, err := cli.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
	if err := cli.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTrimZeroes(t *testing.T) {
	_, cli := startPair(t, 1<<20)
	if _, err := cli.WriteAt([]byte{1, 2, 3, 4}, 100); err != nil {
		t.Fatal(err)
	}
	if err := cli.Trim(100, 4); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := cli.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0, 0, 0, 0}) {
		t.Fatalf("trimmed data %v", got)
	}
}

func TestOutOfRangeRejected(t *testing.T) {
	_, cli := startPair(t, 4096)
	if _, err := cli.WriteAt([]byte{1}, 4096); err == nil {
		t.Fatal("write past end accepted")
	}
	if _, err := cli.ReadAt(make([]byte, 2), 4095); err == nil {
		t.Fatal("read past end accepted")
	}
	if _, err := cli.ReadAt(make([]byte, 1), -1); err == nil {
		t.Fatal("negative offset accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, err := NewServer(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cli, err := Dial(addr.String())
			if err != nil {
				errs[id] = err
				return
			}
			defer cli.Close()
			buf := bytes.Repeat([]byte{byte(id + 1)}, 512)
			off := int64(id) * 512
			for rep := 0; rep < 50; rep++ {
				if _, err := cli.WriteAt(buf, off); err != nil {
					errs[id] = err
					return
				}
				got := make([]byte, 512)
				if _, err := cli.ReadAt(got, off); err != nil {
					errs[id] = err
					return
				}
				if !bytes.Equal(got, buf) {
					errs[id] = fmt.Errorf("client %d: corrupted read", id)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestServeConnOverPipe(t *testing.T) {
	srv, err := NewServer(8192)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.ServeConn(a)
	}()
	cli, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.WriteAt([]byte("pipe"), 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if _, err := cli.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "pipe" {
		t.Fatalf("got %q", got)
	}
	cli.Close()
	<-done
}

func TestPingHandshake(t *testing.T) {
	srv, cli := startPair(t, 1<<20)
	srv.SetEpoch(7)
	info, err := cli.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 1<<20 || info.Epoch != 7 || info.Draining {
		t.Fatalf("ping info %+v, want size %d epoch 7 not draining", info, 1<<20)
	}
	if srv.Epoch() != 7 {
		t.Fatalf("Epoch() = %d", srv.Epoch())
	}
}

func TestPingReportsDraining(t *testing.T) {
	// Close an unlistened server (a no-op drain with no connections) and
	// then drive handle directly: the one ping must answer with the drain
	// flag set.
	srv, err := NewServer(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	req, err := readRequest(bytes.NewReader(frame(opPing, 0, 0, nil)))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.handle(&out, req); err != nil {
		t.Fatal(err)
	}
	status, payload, err := readResponse(&out)
	if err != nil || status != statusOK {
		t.Fatalf("ping during drain: status %d err %v", status, err)
	}
	if len(payload) != 17 || payload[16]&pingDraining == 0 {
		t.Fatalf("ping payload %v does not advertise draining", payload)
	}
}

func TestBeginDrainKeepsServingAndRefusesEpochs(t *testing.T) {
	// BeginDrain is the planned-shutdown announcement: the server must
	// keep answering (clients finish their work, supervisors observe the
	// flag) while refusing routing-epoch updates — a deregistered member
	// must not advertise a placement it will never serve.
	srv, cli := startPair(t, 1<<20)
	srv.SetEpoch(3)
	srv.BeginDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after BeginDrain")
	}
	info, err := cli.Ping()
	if err != nil {
		t.Fatalf("ping during planned drain: %v", err)
	}
	if !info.Draining || info.Epoch != 3 {
		t.Fatalf("ping info %+v, want draining at epoch 3", info)
	}
	srv.SetEpoch(9)
	if got := srv.Epoch(); got != 3 {
		t.Fatalf("draining server accepted epoch update: %d", got)
	}
	// Data service continues through the drain window.
	if _, err := cli.WriteAt([]byte("still served"), 0); err != nil {
		t.Fatalf("write during planned drain: %v", err)
	}
	p := make([]byte, 12)
	if _, err := cli.ReadAt(p, 0); err != nil || string(p) != "still served" {
		t.Fatalf("read during planned drain: %q, %v", p, err)
	}
}

func TestOpStatsCountServiceAndErrors(t *testing.T) {
	srv, cli := startPair(t, 4096)
	if _, err := cli.WriteAt([]byte("abcd"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.ReadAt(make([]byte, 4), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Ping(); err != nil {
		t.Fatal(err)
	}
	// An out-of-range read is answered with statusErr and must land in the
	// error column, not vanish. roundTrip is used directly because the
	// client-side range check would reject the request before the wire.
	if _, err := cli.roundTrip(opRead, 1<<40, 1, nil); err == nil {
		t.Fatal("out-of-range read succeeded")
	}
	stats := make(map[string]OpStats)
	for _, s := range srv.OpStats() {
		stats[s.Op] = s
	}
	if s := stats["read"]; s.Count != 2 || s.Errors != 1 {
		t.Fatalf("read stats %+v, want count 2 errors 1", s)
	}
	if s := stats["write"]; s.Count != 1 || s.Errors != 0 {
		t.Fatalf("write stats %+v", s)
	}
	if s := stats["ping"]; s.Count != 1 || s.Errors != 0 || s.Max < 0 || s.Total < s.Max {
		t.Fatalf("ping stats %+v", s)
	}
	// The dial handshake issued one size op.
	if s := stats["size"]; s.Count != 1 {
		t.Fatalf("size stats %+v", s)
	}
}

func TestProtocolRejectsGarbage(t *testing.T) {
	if _, err := readRequest(bytes.NewReader([]byte("notthemagicnumber"))); !errors.Is(err, ErrProtocol) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := readResponse(bytes.NewReader([]byte("garbagegarbage"))); !errors.Is(err, ErrProtocol) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v", err)
	}
	// Oversized length field.
	var buf bytes.Buffer
	if err := writeRequest(&buf, opRead, 0, MaxPayload+1, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := readRequest(&buf); !errors.Is(err, ErrProtocol) {
		t.Fatalf("oversized err = %v", err)
	}
}

func TestIdleConnectionDropped(t *testing.T) {
	srv, err := NewServer(4096)
	if err != nil {
		t.Fatal(err)
	}
	srv.IdleTimeout = 50 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Sit idle past the timeout: the server must hang up, so the next
	// request fails rather than blocking.
	time.Sleep(5 * srv.IdleTimeout)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := cli.ReadAt(make([]byte, 1), 0); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle connection still served after timeout")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCloseDrainsIdleConnections(t *testing.T) {
	srv, err := NewServer(4096)
	if err != nil {
		t.Fatal(err)
	}
	srv.DrainGrace = 50 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A connected-but-silent client must not block shutdown: without a
	// drain deadline, Close would wait on its read forever.
	cli, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an idle connection")
	}
}

func TestServerCloseIsIdempotent(t *testing.T) {
	srv, err := NewServer(4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}
