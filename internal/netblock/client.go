package netblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"strings"
	"sync"
	"time"
)

// ErrRetryBudget reports that an operation gave up because its
// ClientOptions.RetryBudget elapsed, with retry attempts still available.
var ErrRetryBudget = errors.New("netblock: retry budget exhausted")

// StaleEpochText is the substring a server-side refusal carries across the
// wire to signal a stale-epoch condition; attempt maps refusal payloads
// containing it to ErrStaleEpoch.
const StaleEpochText = "stale routing epoch"

// ErrStaleEpoch reports that the server refused a request because it was
// routed with an outdated placement table: the server is a ring member
// that no longer owns the requested range. The caller must refetch its
// routing table and retry against the current owner — see the staleepoch
// contract in DESIGN.md §8. Reads, writes, and trims can all surface it;
// the refusal mirrors the simulation's epoch check, where serving (or
// applying) under rules the routing no longer grants would strand data on
// a non-owner.
//
//srclint:contracterr staleepoch
var ErrStaleEpoch = errors.New("netblock: " + StaleEpochText)

// ClientOptions tune the client's failure behavior. The zero value keeps
// the original semantics: block forever on a dead peer, fail on the first
// error.
type ClientOptions struct {
	// DialTimeout bounds the TCP connect (0 = no bound).
	DialTimeout time.Duration
	// Timeout bounds each request round trip: the request write and the
	// response read each get this deadline (0 = no bound). Applied only to
	// connections that expose deadlines (net.Conn, net.Pipe).
	Timeout time.Duration
	// RetryLimit is how many times a transient failure — a timeout, a
	// dropped connection — is retried after reconnecting. Remote errors
	// (the server answered) are never retried. Dial-created clients
	// reconnect between attempts; wrapped connections (NewClient) cannot,
	// so their ops fail on the first transport error regardless.
	RetryLimit int
	// RetryBudget bounds the total elapsed time one operation may spend
	// across all its attempts (0 = unbounded). RetryLimit alone bounds the
	// attempt count, not the wall clock: with a slow Timeout each retry
	// can burn the full deadline and a modest limit stalls the caller for
	// minutes. When the budget is exhausted the operation fails with
	// ErrRetryBudget wrapping the last transport error, instead of
	// starting another attempt. Measured via Now, so tests pairing Now
	// with Sleep stay wallclock-free.
	RetryBudget time.Duration
	// RetryDelay is the backoff base: attempt i sleeps RetryDelay<<i plus
	// seeded jitter. Defaults to 10ms when RetryLimit is set.
	RetryDelay time.Duration
	// Seed makes the retry jitter deterministic for tests.
	Seed int64
	// Sleep replaces time.Sleep for the backoff, keeping tests
	// wallclock-free. Nil means time.Sleep.
	Sleep func(time.Duration)
	// Now replaces time.Now for the RetryBudget accounting; tests inject a
	// fake clock advanced by their Sleep. Nil means time.Now.
	Now func() time.Time
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.RetryLimit > 0 && o.RetryDelay <= 0 {
		o.RetryDelay = 10 * time.Millisecond
	}
	if o.Sleep == nil {
		o.Sleep = time.Sleep
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Client is a synchronous remote block device over one connection. Methods
// are safe for concurrent use (requests serialize on the connection).
type Client struct {
	mu   sync.Mutex
	conn io.ReadWriteCloser
	size int64
	opts ClientOptions
	addr string // non-empty when the client can reconnect
	rng  *rand.Rand
}

// Dial connects to a server and fetches the volume size.
func Dial(addr string) (*Client, error) {
	return DialOptions(addr, ClientOptions{})
}

// DialOptions is Dial with explicit timeout and retry behavior. The
// initial connect (and its size handshake) participates in the retry
// budget like any other operation.
func DialOptions(addr string, o ClientOptions) (*Client, error) {
	c := &Client{opts: o.withDefaults(), addr: addr}
	c.rng = rand.New(rand.NewSource(c.opts.Seed))
	start := c.opts.Now()
	for attempt := 0; ; attempt++ {
		conn, err := c.dial()
		if err == nil {
			c.conn = conn
			payload, herr := c.attempt(opSize, 0, 0, nil)
			if herr == nil {
				if len(payload) != 8 {
					conn.Close()
					return nil, fmt.Errorf("%w: size payload %d bytes", ErrProtocol, len(payload))
				}
				c.size = int64(binary.BigEndian.Uint64(payload))
				return c, nil
			}
			conn.Close()
			c.conn = nil
			err = herr
			if !transient(err) {
				return nil, err
			}
		}
		if attempt >= c.opts.RetryLimit {
			return nil, err
		}
		if berr := c.overBudget(start, err); berr != nil {
			return nil, berr
		}
		c.backoff(attempt)
	}
}

// NewClient wraps an established connection (e.g. one side of net.Pipe).
func NewClient(conn io.ReadWriteCloser) (*Client, error) {
	c := &Client{conn: conn, opts: ClientOptions{}.withDefaults()}
	c.rng = rand.New(rand.NewSource(0))
	payload, err := c.attempt(opSize, 0, 0, nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if len(payload) != 8 {
		conn.Close()
		return nil, fmt.Errorf("%w: size payload %d bytes", ErrProtocol, len(payload))
	}
	c.size = int64(binary.BigEndian.Uint64(payload))
	return c, nil
}

// Size reports the remote volume size in bytes.
func (c *Client) Size() int64 { return c.size }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) dial() (net.Conn, error) {
	if c.opts.DialTimeout > 0 {
		return net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
	}
	return net.Dial("tcp", c.addr)
}

// transient reports whether an error is worth a reconnect-and-retry: any
// transport-level failure qualifies; a remote error means the server
// received and answered the request, so retrying would repeat the refusal.
func transient(err error) bool {
	return err != nil && !errors.Is(err, ErrRemote)
}

// overBudget enforces RetryBudget: called before committing to another
// attempt, it returns ErrRetryBudget (wrapping the attempt's error) once
// the elapsed time since start has consumed the budget.
func (c *Client) overBudget(start time.Time, lastErr error) error {
	if c.opts.RetryBudget <= 0 {
		return nil
	}
	if elapsed := c.opts.Now().Sub(start); elapsed >= c.opts.RetryBudget {
		return fmt.Errorf("%w (%v elapsed of %v): %w",
			ErrRetryBudget, elapsed, c.opts.RetryBudget, lastErr)
	}
	return nil
}

// backoff sleeps RetryDelay<<attempt plus up to 50% seeded jitter.
func (c *Client) backoff(attempt int) {
	d := c.opts.RetryDelay << attempt
	if d <= 0 {
		return
	}
	d += time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.opts.Sleep(d)
}

// roundTrip performs one operation, reconnecting and retrying transient
// transport failures up to RetryLimit times. All protocol operations are
// idempotent (same bytes at the same offset; barrier; size), so retrying
// after an ambiguous failure is safe.
func (c *Client) roundTrip(op uint8, off uint64, length uint32, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := c.opts.Now()
	for attempt := 0; ; attempt++ {
		resp, err := c.attempt(op, off, length, payload)
		if err == nil {
			return resp, nil
		}
		if !transient(err) || c.addr == "" || attempt >= c.opts.RetryLimit {
			return nil, err
		}
		if berr := c.overBudget(start, err); berr != nil {
			return nil, berr
		}
		c.backoff(attempt)
		conn, derr := c.dial()
		if derr != nil {
			return nil, fmt.Errorf("reconnect after %v: %w", err, derr)
		}
		c.conn.Close()
		c.conn = conn
	}
}

// attempt sends one request and reads its response on the current
// connection, applying the per-request deadlines when the transport
// supports them. Callers hold c.mu (or have exclusive access during
// setup).
func (c *Client) attempt(op uint8, off uint64, length uint32, payload []byte) ([]byte, error) {
	dc, _ := c.conn.(deadliner)
	if dc != nil && c.opts.Timeout > 0 {
		_ = dc.SetWriteDeadline(time.Now().Add(c.opts.Timeout))
	}
	if err := writeRequest(c.conn, op, off, length, payload); err != nil {
		return nil, err
	}
	if dc != nil && c.opts.Timeout > 0 {
		_ = dc.SetReadDeadline(time.Now().Add(c.opts.Timeout))
	}
	status, resp, err := readResponse(c.conn)
	if err != nil {
		return nil, err
	}
	if status != statusOK {
		// A stale-epoch refusal is still a remote answer (ErrRemote keeps
		// the retry logic from pointlessly repeating the refusal), but it
		// additionally carries the routing contract for callers to handle.
		if strings.Contains(string(resp), StaleEpochText) {
			return nil, fmt.Errorf("%w (%w): %s", ErrStaleEpoch, ErrRemote, resp)
		}
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp)
	}
	return resp, nil
}

func (c *Client) check(off int64, n int) error {
	switch {
	case off < 0 || n < 0:
		return fmt.Errorf("%w: negative range", ErrProtocol)
	case n > MaxPayload:
		return fmt.Errorf("%w: transfer %d exceeds limit %d", ErrProtocol, n, MaxPayload)
	case off+int64(n) > c.size:
		return fmt.Errorf("%w: [%d,%d) outside volume of %d", ErrRemote, off, off+int64(n), c.size)
	}
	return nil
}

// ReadAt fills p from the volume at off. It implements io.ReaderAt. When
// the remote refuses the read because the caller's routing table is stale
// (a ring member that no longer owns the range), the error wraps
// ErrStaleEpoch: the caller must refetch its table and retry against the
// current owner.
//
//srclint:surfaces staleepoch
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	if err := c.check(off, len(p)); err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(opRead, uint64(off), uint32(len(p)), nil)
	if err != nil {
		return 0, err
	}
	if len(resp) != len(p) {
		return 0, fmt.Errorf("%w: short read %d of %d", ErrProtocol, len(resp), len(p))
	}
	return copy(p, resp), nil
}

// WriteAt stores p at off. It implements io.WriterAt. A stale-routed
// write is refused with ErrStaleEpoch just like a read: accepting it
// would strand the bytes on a member the current chain no longer reads.
//
//srclint:surfaces staleepoch
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	if err := c.check(off, len(p)); err != nil {
		return 0, err
	}
	if _, err := c.roundTrip(opWrite, uint64(off), uint32(len(p)), p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Trim zeroes [off, off+n). Like WriteAt it is a mutation, so a stale
// route is refused with ErrStaleEpoch.
//
//srclint:surfaces staleepoch
func (c *Client) Trim(off, n int64) error {
	if err := c.check(off, int(n)); err != nil {
		return err
	}
	_, err := c.roundTrip(opTrim, uint64(off), uint32(n), nil)
	return err
}

// Flush is a durability barrier.
func (c *Client) Flush() error {
	_, err := c.roundTrip(opFlush, 0, 0, nil)
	return err
}

// PingInfo is a ping response: the server's volume size, its advertised
// ring epoch, and whether it is draining for shutdown.
type PingInfo struct {
	Size     int64
	Epoch    uint64
	Draining bool
}

// Ping probes the server's health: a successful round trip proves
// liveness, and the payload carries the routing handshake (size, ring
// epoch, drain state). Failure detectors also time this call.
func (c *Client) Ping() (PingInfo, error) {
	resp, err := c.roundTrip(opPing, 0, 0, nil)
	if err != nil {
		return PingInfo{}, err
	}
	if len(resp) != 17 {
		return PingInfo{}, fmt.Errorf("%w: ping payload %d bytes", ErrProtocol, len(resp))
	}
	return PingInfo{
		Size:     int64(binary.BigEndian.Uint64(resp[0:])),
		Epoch:    binary.BigEndian.Uint64(resp[8:]),
		Draining: resp[16]&pingDraining != 0,
	}, nil
}
