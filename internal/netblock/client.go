package netblock

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// Client is a synchronous remote block device over one connection. Methods
// are safe for concurrent use (requests serialize on the connection).
type Client struct {
	mu   sync.Mutex
	conn io.ReadWriteCloser
	size int64
}

// Dial connects to a server and fetches the volume size.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn)
}

// NewClient wraps an established connection (e.g. one side of net.Pipe).
func NewClient(conn io.ReadWriteCloser) (*Client, error) {
	c := &Client{conn: conn}
	payload, err := c.roundTrip(opSize, 0, 0, nil)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if len(payload) != 8 {
		conn.Close()
		return nil, fmt.Errorf("%w: size payload %d bytes", ErrProtocol, len(payload))
	}
	c.size = int64(binary.BigEndian.Uint64(payload))
	return c, nil
}

// Size reports the remote volume size in bytes.
func (c *Client) Size() int64 { return c.size }

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(op uint8, off uint64, length uint32, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeRequest(c.conn, op, off, length, payload); err != nil {
		return nil, err
	}
	status, resp, err := readResponse(c.conn)
	if err != nil {
		return nil, err
	}
	if status != statusOK {
		return nil, fmt.Errorf("%w: %s", ErrRemote, resp)
	}
	return resp, nil
}

func (c *Client) check(off int64, n int) error {
	switch {
	case off < 0 || n < 0:
		return fmt.Errorf("%w: negative range", ErrProtocol)
	case n > MaxPayload:
		return fmt.Errorf("%w: transfer %d exceeds limit %d", ErrProtocol, n, MaxPayload)
	case off+int64(n) > c.size:
		return fmt.Errorf("%w: [%d,%d) outside volume of %d", ErrRemote, off, off+int64(n), c.size)
	}
	return nil
}

// ReadAt fills p from the volume at off. It implements io.ReaderAt.
func (c *Client) ReadAt(p []byte, off int64) (int, error) {
	if err := c.check(off, len(p)); err != nil {
		return 0, err
	}
	resp, err := c.roundTrip(opRead, uint64(off), uint32(len(p)), nil)
	if err != nil {
		return 0, err
	}
	if len(resp) != len(p) {
		return 0, fmt.Errorf("%w: short read %d of %d", ErrProtocol, len(resp), len(p))
	}
	return copy(p, resp), nil
}

// WriteAt stores p at off. It implements io.WriterAt.
func (c *Client) WriteAt(p []byte, off int64) (int, error) {
	if err := c.check(off, len(p)); err != nil {
		return 0, err
	}
	if _, err := c.roundTrip(opWrite, uint64(off), uint32(len(p)), p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Trim zeroes [off, off+n).
func (c *Client) Trim(off, n int64) error {
	if err := c.check(off, int(n)); err != nil {
		return err
	}
	_, err := c.roundTrip(opTrim, uint64(off), uint32(n), nil)
	return err
}

// Flush is a durability barrier.
func (c *Client) Flush() error {
	_, err := c.roundTrip(opFlush, 0, 0, nil)
	return err
}
