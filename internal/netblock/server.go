package netblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Server exports one in-memory volume to any number of concurrent clients.
type Server struct {
	// IdleTimeout, when positive, bounds how long a connection may sit
	// between requests (and how long one response write may take) before
	// the server drops it. Without it a hung or vanished client pins its
	// goroutine forever and blocks Close. Set before Listen.
	IdleTimeout time.Duration
	// DrainGrace is how long Close lets in-flight requests finish before
	// interrupting their connections. Zero interrupts immediately. Set
	// before Listen.
	DrainGrace time.Duration

	mu   sync.RWMutex
	data []byte

	lis      net.Listener
	wg       sync.WaitGroup
	shutdown chan struct{}
	once     sync.Once

	cmu   sync.Mutex
	conns map[net.Conn]struct{}
}

// NewServer creates a server exporting a zeroed volume of size bytes.
func NewServer(size int64) (*Server, error) {
	if size <= 0 {
		return nil, fmt.Errorf("netblock: volume size %d must be positive", size)
	}
	return &Server{
		data:     make([]byte, size),
		shutdown: make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Size reports the exported volume size.
func (s *Server) Size() int64 { return int64(len(s.data)) }

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop(lis)
	return lis.Addr(), nil
}

func (s *Server) acceptLoop(lis net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			select {
			case <-s.shutdown:
				return
			default:
				return // listener failed
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.track(conn)
			defer s.untrack(conn)
			_ = s.ServeConn(conn)
		}()
	}
}

func (s *Server) track(conn net.Conn) {
	s.cmu.Lock()
	s.conns[conn] = struct{}{}
	s.cmu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.cmu.Lock()
	delete(s.conns, conn)
	s.cmu.Unlock()
}

// Close stops the listener and waits for in-flight connections to drain: a
// connection mid-request gets DrainGrace to finish; one idle between
// requests is interrupted at the same deadline and exits cleanly.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		close(s.shutdown)
		if s.lis != nil {
			err = s.lis.Close()
		}
		deadline := time.Now().Add(s.DrainGrace)
		s.cmu.Lock()
		for c := range s.conns {
			_ = c.SetReadDeadline(deadline)
		}
		s.cmu.Unlock()
	})
	s.wg.Wait()
	return err
}

// deadliner is the deadline surface of net.Conn; ServeConn applies
// IdleTimeout only to connections that expose it.
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// ServeConn handles one client connection until EOF or error. It can be
// used directly (e.g. over net.Pipe in tests) without Listen. If conn
// supports deadlines and IdleTimeout is set, each request must arrive — and
// each response must be written — within IdleTimeout. During shutdown a
// deadline interruption is a clean exit, not an error.
func (s *Server) ServeConn(conn io.ReadWriter) error {
	dc, _ := conn.(deadliner)
	for {
		if s.draining() {
			return nil
		}
		if dc != nil && s.IdleTimeout > 0 {
			_ = dc.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		req, err := readRequest(conn)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || s.draining() {
				return nil
			}
			return err
		}
		if dc != nil && s.IdleTimeout > 0 {
			_ = dc.SetWriteDeadline(time.Now().Add(s.IdleTimeout))
		}
		if err := s.handle(conn, req); err != nil {
			if s.draining() {
				return nil
			}
			return err
		}
	}
}

func (s *Server) draining() bool {
	select {
	case <-s.shutdown:
		return true
	default:
		return false
	}
}

func (s *Server) handle(conn io.Writer, req *request) error {
	end := int64(req.off) + int64(req.length)
	if req.op != opSize && req.op != opFlush {
		if int64(req.off) > s.Size() || end > s.Size() || end < int64(req.off) {
			return writeResponse(conn, statusErr, []byte("out of range"))
		}
	}
	switch req.op {
	case opRead:
		buf := make([]byte, req.length)
		s.mu.RLock()
		copy(buf, s.data[req.off:end])
		s.mu.RUnlock()
		return writeResponse(conn, statusOK, buf)
	case opWrite:
		s.mu.Lock()
		copy(s.data[req.off:end], req.payload)
		s.mu.Unlock()
		return writeResponse(conn, statusOK, nil)
	case opTrim:
		s.mu.Lock()
		zero(s.data[req.off:end])
		s.mu.Unlock()
		return writeResponse(conn, statusOK, nil)
	case opFlush:
		// The volume is memory-backed: flush is a barrier only.
		return writeResponse(conn, statusOK, nil)
	case opSize:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(s.Size()))
		return writeResponse(conn, statusOK, buf[:])
	default:
		return writeResponse(conn, statusErr, []byte("unknown op"))
	}
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
