package netblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Backend is the storage a Server exports. The flat in-memory volume
// (NewServer) is the simplest implementation; cmd/netblockd can instead
// serve a sharded engine volume. Implementations must be safe for
// concurrent use: the server calls them from one goroutine per connection.
type Backend interface {
	// ReadAt fills p from [off, off+len(p)). The range is validated by the
	// server before the call.
	ReadAt(p []byte, off int64) error
	// WriteAt stores p at [off, off+len(p)).
	WriteAt(p []byte, off int64) error
	// Trim zeroes (discards) [off, off+n).
	Trim(off, n int64) error
	// Flush makes acknowledged writes durable (a barrier for in-memory
	// backends).
	Flush() error
	// Size reports the volume size in bytes.
	Size() int64
}

// memBackend is the default flat in-memory volume behind one RWMutex — the
// serialized single-shard path the engine benchmark uses as its baseline.
type memBackend struct {
	mu   sync.RWMutex
	data []byte
}

func (b *memBackend) ReadAt(p []byte, off int64) error {
	b.mu.RLock()
	copy(p, b.data[off:off+int64(len(p))])
	b.mu.RUnlock()
	return nil
}

func (b *memBackend) WriteAt(p []byte, off int64) error {
	b.mu.Lock()
	copy(b.data[off:off+int64(len(p))], p)
	b.mu.Unlock()
	return nil
}

func (b *memBackend) Trim(off, n int64) error {
	b.mu.Lock()
	zero(b.data[off : off+n])
	b.mu.Unlock()
	return nil
}

func (b *memBackend) Flush() error { return nil }

func (b *memBackend) Size() int64 { return int64(len(b.data)) }

// Server exports one volume to any number of concurrent clients.
type Server struct {
	// IdleTimeout, when positive, bounds how long a connection may sit
	// between requests (and how long one response write may take) before
	// the server drops it. Without it a hung or vanished client pins its
	// goroutine forever and blocks Close. Set before Listen.
	IdleTimeout time.Duration
	// DrainGrace is how long Close lets in-flight requests finish before
	// interrupting their connections. Zero interrupts immediately. Set
	// before Listen.
	DrainGrace time.Duration

	backend Backend

	// epoch is the ring epoch the server advertises in ping responses —
	// the cluster layer's routing-table version. Standalone servers leave
	// it zero.
	epoch atomic.Uint64

	// drainFlag marks a planned shutdown announced by BeginDrain: ping
	// responses advertise it and SetEpoch refuses updates, while the
	// listener keeps serving so supervisors and clients observe the
	// handoff before the process exits.
	drainFlag atomic.Bool

	// ops tallies per-op counts, errors, and wall-clock service latency,
	// indexed by op code. The failure detector reads these through OpStats;
	// the array is sized one past the largest op so hostile codes still
	// land in a bucket (the zero slot).
	ops [opPing + 1]opCounter

	lis      net.Listener
	wg       sync.WaitGroup
	shutdown chan struct{} //srclint:owns Close (signal channel: closed once, never sent on)
	once     sync.Once

	cmu   sync.Mutex
	conns map[net.Conn]struct{}

	emu       sync.Mutex
	listenErr error // terminal accept-loop failure, surfaced by Close
}

// MemBackend returns the flat in-memory volume NewServer serves, for
// callers that wrap it — the cluster fleet's chain backend interposes on
// this before handing it to NewServerWith.
func MemBackend(size int64) (Backend, error) {
	if size <= 0 {
		return nil, fmt.Errorf("netblock: volume size %d must be positive", size)
	}
	return &memBackend{data: make([]byte, size)}, nil
}

// NewServer creates a server exporting a zeroed in-memory volume of size
// bytes.
func NewServer(size int64) (*Server, error) {
	b, err := MemBackend(size)
	if err != nil {
		return nil, err
	}
	return NewServerWith(b)
}

// NewServerWith creates a server exporting an arbitrary backend.
func NewServerWith(b Backend) (*Server, error) {
	if b == nil || b.Size() <= 0 {
		return nil, errors.New("netblock: backend required with positive size")
	}
	return &Server{
		backend:  b,
		shutdown: make(chan struct{}),
		conns:    make(map[net.Conn]struct{}),
	}, nil
}

// Size reports the exported volume size.
func (s *Server) Size() int64 { return s.backend.Size() }

// SetEpoch sets the ring epoch advertised in ping responses. The cluster
// layer bumps it on membership changes; a client holding a routing table
// older than the epoch it observes refetches before retrying. A draining
// server (BeginDrain or Close) drops the update: it has deregistered from
// the control plane, and accepting a new epoch mid-drain would advertise a
// placement it will never serve.
func (s *Server) SetEpoch(e uint64) {
	if s.Draining() {
		return
	}
	s.epoch.Store(e)
}

// Epoch reports the advertised ring epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// BeginDrain announces a planned shutdown without stopping service: ping
// responses start advertising the drain flag and SetEpoch refuses new
// epochs, but connections keep being accepted and served. A supervisor
// that observes the flag reclassifies the member as departing instead of
// fail-stop, so a planned restart never triggers quarantine and repair.
// Close completes the shutdown; BeginDrain is idempotent and optional.
func (s *Server) BeginDrain() { s.drainFlag.Store(true) }

// Draining reports whether the server has announced a planned shutdown
// (BeginDrain) or is already closing (Close).
func (s *Server) Draining() bool { return s.drainFlag.Load() || s.draining() }

// opCounter is one op's running tally. Fields are atomics so per-connection
// goroutines record without a shared lock; Max uses a CAS loop.
type opCounter struct {
	count   atomic.Int64
	errors  atomic.Int64
	totalNs atomic.Int64
	maxNs   atomic.Int64
}

func (c *opCounter) observe(d time.Duration, failed bool) {
	c.count.Add(1)
	if failed {
		c.errors.Add(1)
	}
	ns := d.Nanoseconds()
	c.totalNs.Add(ns)
	for {
		cur := c.maxNs.Load()
		if ns <= cur || c.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// OpStats is one op's cumulative service record: how many requests, how
// many answered with statusErr, and the wall-clock time spent in the
// backend — the raw material a failure detector scores fail-stop (errors)
// and fail-slow (latency) from.
type OpStats struct {
	Op     string
	Count  int64
	Errors int64
	Total  time.Duration
	Max    time.Duration
}

// opNames maps op codes to their stats labels; the zero slot collects
// unknown codes.
var opNames = [opPing + 1]string{"unknown", "read", "write", "trim", "flush", "size", "ping"}

// OpStats reports the per-op counters for every op observed so far, in
// fixed op-code order. Safe to call concurrently with serving.
func (s *Server) OpStats() []OpStats {
	var out []OpStats
	for op := range s.ops {
		c := &s.ops[op]
		n := c.count.Load()
		if n == 0 {
			continue
		}
		out = append(out, OpStats{
			Op:     opNames[op],
			Count:  n,
			Errors: c.errors.Load(),
			Total:  time.Duration(c.totalNs.Load()),
			Max:    time.Duration(c.maxNs.Load()),
		})
	}
	return out
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:0") and
// returns the bound address. Serving happens on background goroutines until
// Close.
func (s *Server) Listen(addr string) (net.Addr, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.lis = lis
	s.wg.Add(1)
	go s.acceptLoop(lis)
	return lis.Addr(), nil
}

// acceptBackoffMax caps the retry delay after temporary Accept failures.
const acceptBackoffMax = time.Second

// acceptLoop accepts until shutdown. Temporary failures (file-descriptor
// exhaustion, aborted handshakes) are retried with exponential backoff
// capped at acceptBackoffMax; any other failure is terminal and recorded
// for Close to report — a silently dead listener must not look healthy.
func (s *Server) acceptLoop(lis net.Listener) {
	defer s.wg.Done()
	var delay time.Duration
	// A successful Accept is productive work, not a retry: this loop is
	// meant to run for the server's lifetime, so its success back edge
	// consults no budget. The failure paths back off via time.After and
	// watch the shutdown channel.
	//srclint:allow boundedretry accept loop lives as long as the server
	for {
		conn, err := lis.Accept()
		if err != nil {
			if s.draining() {
				return
			}
			if temporaryAcceptError(err) {
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else {
					delay *= 2
					if delay > acceptBackoffMax {
						delay = acceptBackoffMax
					}
				}
				select {
				case <-time.After(delay):
					continue
				case <-s.shutdown:
					return
				}
			}
			s.emu.Lock()
			s.listenErr = fmt.Errorf("netblock: accept loop terminated: %w", err)
			s.emu.Unlock()
			return
		}
		delay = 0
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			s.track(conn)
			defer s.untrack(conn)
			_ = s.ServeConn(conn)
		}()
	}
}

// temporaryAcceptError reports whether an Accept failure is worth retrying:
// resource exhaustion and connection aborts pass transiently; anything else
// (listener closed, fatal socket state) is terminal.
func temporaryAcceptError(err error) bool {
	if errors.Is(err, syscall.EMFILE) || errors.Is(err, syscall.ENFILE) ||
		errors.Is(err, syscall.ECONNABORTED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EINTR) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) track(conn net.Conn) {
	s.cmu.Lock()
	s.conns[conn] = struct{}{}
	s.cmu.Unlock()
}

func (s *Server) untrack(conn net.Conn) {
	s.cmu.Lock()
	delete(s.conns, conn)
	s.cmu.Unlock()
}

// Close stops the listener and waits for in-flight connections to drain: a
// connection mid-request gets DrainGrace to finish; one idle between
// requests is interrupted at the same deadline and exits cleanly. If the
// accept loop died earlier on a non-temporary error, Close reports it.
func (s *Server) Close() error {
	var err error
	s.once.Do(func() {
		close(s.shutdown)
		if s.lis != nil {
			err = s.lis.Close()
		}
		deadline := time.Now().Add(s.DrainGrace)
		s.cmu.Lock()
		for c := range s.conns {
			_ = c.SetReadDeadline(deadline)
		}
		s.cmu.Unlock()
	})
	s.wg.Wait()
	s.emu.Lock()
	defer s.emu.Unlock()
	return errors.Join(err, s.listenErr)
}

// deadliner is the deadline surface of net.Conn; ServeConn applies
// IdleTimeout only to connections that expose it.
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// ServeConn handles one client connection until EOF or error. It can be
// used directly (e.g. over net.Pipe in tests) without Listen. If conn
// supports deadlines and IdleTimeout is set, each request must arrive — and
// each response must be written — within IdleTimeout. During shutdown a
// deadline interruption is a clean exit, not an error.
func (s *Server) ServeConn(conn io.ReadWriter) error {
	dc, _ := conn.(deadliner)
	for {
		if s.draining() {
			return nil
		}
		if dc != nil && s.IdleTimeout > 0 {
			_ = dc.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		req, err := readRequest(conn)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || s.draining() {
				return nil
			}
			return err
		}
		if dc != nil && s.IdleTimeout > 0 {
			_ = dc.SetWriteDeadline(time.Now().Add(s.IdleTimeout))
		}
		if err := s.handle(conn, req); err != nil {
			if s.draining() {
				return nil
			}
			return err
		}
	}
}

func (s *Server) draining() bool {
	select {
	case <-s.shutdown:
		return true
	default:
		return false
	}
}

// handle times and executes one request, records its op counter, and
// writes the response.
func (s *Server) handle(conn io.Writer, req *request) error {
	start := time.Now()
	status, payload := s.execute(req)
	idx := int(req.op)
	if idx >= len(s.ops) {
		idx = 0 // hostile/unknown op codes share the zero bucket
	}
	s.ops[idx].observe(time.Since(start), status != statusOK)
	return writeResponse(conn, status, payload)
}

// execute runs one request against the backend. Range validation happens
// entirely in uint64 space: off and length are client-controlled, and
// converting to int64 first lets an offset above 2^63 go negative, pass an
// int64 comparison, and panic the slice expression — one hostile frame
// killing the whole process. `off > size || length > size-off` cannot
// overflow (off <= size holds before the subtraction) and rejects every
// out-of-range request, including off+length wrapping uint64.
func (s *Server) execute(req *request) (status uint8, payload []byte) {
	if req.op != opSize && req.op != opFlush && req.op != opPing {
		size := uint64(s.backend.Size())
		if req.off > size || uint64(req.length) > size-req.off {
			return statusErr, []byte("out of range")
		}
	}
	switch req.op {
	case opRead:
		buf := make([]byte, req.length)
		if err := s.backend.ReadAt(buf, int64(req.off)); err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, buf
	case opWrite:
		if err := s.backend.WriteAt(req.payload, int64(req.off)); err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, nil
	case opTrim:
		if err := s.backend.Trim(int64(req.off), int64(req.length)); err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, nil
	case opFlush:
		if err := s.backend.Flush(); err != nil {
			return statusErr, []byte(err.Error())
		}
		return statusOK, nil
	case opSize:
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(s.backend.Size()))
		return statusOK, buf[:]
	case opPing:
		// Health/handshake: size, ring epoch, drain state. Like opSize it
		// ignores the offset and length fields entirely, so a probe can
		// never be rejected for range reasons.
		var buf [17]byte
		binary.BigEndian.PutUint64(buf[0:], uint64(s.backend.Size()))
		binary.BigEndian.PutUint64(buf[8:], s.epoch.Load())
		if s.Draining() {
			buf[16] |= pingDraining
		}
		return statusOK, buf[:]
	default:
		return statusErr, []byte("unknown op")
	}
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}
