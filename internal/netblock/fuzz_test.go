package netblock

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// header assembles a 17-byte request header from its fields; the fuzz
// corpora below seed the interesting boundary frames and the engine mutates
// from there.
func header(magic uint32, op uint8, off uint64, length uint32) []byte {
	var hdr [17]byte
	binary.BigEndian.PutUint32(hdr[0:], magic)
	hdr[4] = op
	binary.BigEndian.PutUint64(hdr[5:], off)
	binary.BigEndian.PutUint32(hdr[13:], length)
	return hdr[:]
}

// FuzzReadRequest throws arbitrary byte streams at the frame decoder. The
// decoder must never panic, and an accepted frame must satisfy the
// invariants the server relies on: bounded length, payload fully read for
// writes, nil payload otherwise.
func FuzzReadRequest(f *testing.F) {
	f.Add(header(reqMagic, opRead, 0, 4096))
	f.Add(header(reqMagic, opRead, 1<<63, 4096))          // the remote-panic seed
	f.Add(header(reqMagic, opWrite, ^uint64(0)-100, 200)) // off+length uint64 wrap
	f.Add(header(reqMagic, opTrim, 1<<62, MaxPayload))
	f.Add(header(reqMagic, opPing, ^uint64(0), 1))
	f.Add(header(reqMagic, opWrite, 0, MaxPayload+1)) // oversized length
	f.Add(append(header(reqMagic, opWrite, 8, 4), 'd', 'a', 't', 'a'))
	f.Add(header(0xdeadbeef, opRead, 0, 0)) // bad magic
	f.Add([]byte("short"))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := readRequest(bytes.NewReader(data))
		if err != nil {
			if req != nil {
				t.Fatalf("error %v returned non-nil request", err)
			}
			return
		}
		if req.length > MaxPayload {
			t.Fatalf("accepted length %d over MaxPayload", req.length)
		}
		if req.op == opWrite && uint32(len(req.payload)) != req.length {
			t.Fatalf("write payload %d bytes, header said %d", len(req.payload), req.length)
		}
		if req.op != opWrite && req.payload != nil {
			t.Fatalf("non-write op %d carried payload", req.op)
		}
	})
}

// FuzzHandle drives the full server request loop with arbitrary frames,
// proving no 17-byte header — hostile offsets, wrapped lengths, unknown
// ops — can panic the server or corrupt its framing: every byte the server
// emits must parse as well-formed responses.
func FuzzHandle(f *testing.F) {
	f.Add(header(reqMagic, opRead, 0, 4096))
	f.Add(header(reqMagic, opRead, 1<<63, 4096)) // the remote-panic regression seed
	f.Add(header(reqMagic, opWrite, ^uint64(0)-4095, 4096))
	f.Add(header(reqMagic, opTrim, ^uint64(0), ^uint32(0)&(MaxPayload-1)))
	f.Add(header(reqMagic, opSize, 1<<63, 0))
	f.Add(header(reqMagic, opPing, 0, 0))                // health probe
	f.Add(header(reqMagic, opPing, 1<<63, MaxPayload-1)) // hostile ping: off/len must be ignored
	f.Add(header(reqMagic, 0xff, 123, 1))                // unknown op
	f.Add(append(header(reqMagic, opWrite, 0, 8), []byte("payload!")...))
	f.Add(append(header(reqMagic, opRead, 4096, 16), header(reqMagic, opRead, 1<<63, 1)...))
	f.Fuzz(func(t *testing.T, data []byte) {
		srv, err := NewServer(64 << 10)
		if err != nil {
			t.Fatal(err)
		}
		var out bytes.Buffer
		// ServeConn returns an error only for protocol violations; it must
		// never panic regardless of input.
		_ = srv.ServeConn(rwPair{bytes.NewReader(data), &out})
		for {
			status, _, err := readResponse(&out)
			if err != nil {
				if err == io.EOF {
					break
				}
				t.Fatalf("server emitted unparseable response bytes: %v", err)
			}
			if status != statusOK && status != statusErr {
				t.Fatalf("server emitted unknown status %d", status)
			}
		}
	})
}
