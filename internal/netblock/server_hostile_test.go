package netblock

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// rwPair glues a request stream and a response sink into the io.ReadWriter
// ServeConn wants, with no network involved.
type rwPair struct {
	io.Reader
	io.Writer
}

// frame encodes one request header (+ payload) exactly as a client would,
// but with no client-side validation — the hostile path.
func frame(op uint8, off uint64, length uint32, payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeRequest(&buf, op, off, length, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// readStatuses decodes every response in buf and returns the status bytes.
func readStatuses(t *testing.T, r io.Reader) []uint8 {
	t.Helper()
	var out []uint8
	for {
		status, _, err := readResponse(r)
		if errors.Is(err, io.EOF) {
			return out
		}
		if err != nil {
			t.Fatalf("decoding response %d: %v", len(out), err)
		}
		out = append(out, status)
	}
}

// TestHostileOffsetOverflowRejected is the regression test for the
// remote-panic bug: an offset with the top bit set went negative in int64,
// passed the old range check, and panicked the data-slice expression —
// one corrupt frame killing the server. The same applies to off+length
// wrapping uint64. Both must now produce statusErr and leave the
// connection serving.
func TestHostileOffsetOverflowRejected(t *testing.T) {
	srv, err := NewServer(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	var in bytes.Buffer
	in.Write(frame(opRead, 1<<63, 4096, nil))                      // off > 2^63: old check saw a negative int64
	in.Write(frame(opRead, ^uint64(0)-100, 200, nil))              // off+length wraps uint64
	in.Write(frame(opWrite, 1<<63, 8, []byte("hostile!")))         // write flavor of the same
	in.Write(frame(opTrim, uint64(1<<20), 1, nil))                 // off == size, length 1: one past the end
	in.Write(frame(opRead, uint64(1<<20)-4, 4, nil))               // still-valid tail read
	in.Write(frame(opPing, 1<<63, ^uint32(0)&(MaxPayload-1), nil)) // hostile ping: off/len ignored, must answer OK
	in.Write(frame(opWrite, 0, 4, []byte("good")))                 // server must still serve
	var out bytes.Buffer
	if err := srv.ServeConn(rwPair{&in, &out}); err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	got := readStatuses(t, &out)
	want := []uint8{statusErr, statusErr, statusErr, statusErr, statusOK, statusOK, statusOK}
	if len(got) != len(want) {
		t.Fatalf("got %d responses %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("response %d: status %d, want %d (all: %v)", i, got[i], want[i], got)
		}
	}
}

// scriptedListener returns the scripted errors first, then delegates to the
// real listener (or blocks forever when nil until Close).
type scriptedListener struct {
	mu     sync.Mutex
	errs   []error
	real   net.Listener
	closed chan struct{}
	once   sync.Once
}

func (l *scriptedListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if len(l.errs) > 0 {
		err := l.errs[0]
		l.errs = l.errs[1:]
		l.mu.Unlock()
		return nil, err
	}
	l.mu.Unlock()
	if l.real != nil {
		return l.real.Accept()
	}
	<-l.closed
	return nil, net.ErrClosed
}

func (l *scriptedListener) Close() error {
	l.once.Do(func() { close(l.closed) })
	if l.real != nil {
		return l.real.Close()
	}
	return nil
}

func (l *scriptedListener) Addr() net.Addr {
	if l.real != nil {
		return l.real.Addr()
	}
	return &net.TCPAddr{}
}

// wrapErrno mirrors how the net package surfaces accept(2) errnos.
func wrapErrno(errno syscall.Errno) error {
	return &net.OpError{Op: "accept", Net: "tcp", Err: os.NewSyscallError("accept", errno)}
}

// TestAcceptLoopRetriesTemporaryErrors proves a burst of EMFILE/ECONNABORTED
// no longer kills the listener: after the scripted failures drain, a real
// client connects and round-trips, and Close reports success.
func TestAcceptLoopRetriesTemporaryErrors(t *testing.T) {
	real, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := &scriptedListener{
		errs: []error{
			wrapErrno(syscall.EMFILE),
			wrapErrno(syscall.ECONNABORTED),
			wrapErrno(syscall.ENFILE),
		},
		real:   real,
		closed: make(chan struct{}),
	}
	srv, err := NewServer(4096)
	if err != nil {
		t.Fatal(err)
	}
	srv.lis = lis
	srv.wg.Add(1)
	go srv.acceptLoop(lis)

	cli, err := Dial(real.Addr().String())
	if err != nil {
		t.Fatalf("dial after transient accept errors: %v", err)
	}
	if _, err := cli.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after recovered accept loop: %v", err)
	}
}

// TestAcceptLoopTerminalErrorSurfacedFromClose proves a non-temporary
// accept failure is recorded: the loop exits, and Close — which previously
// reported nil while the listener was long dead — returns the failure.
func TestAcceptLoopTerminalErrorSurfacedFromClose(t *testing.T) {
	boom := errors.New("permanent socket failure")
	lis := &scriptedListener{errs: []error{boom}, closed: make(chan struct{})}
	srv, err := NewServer(4096)
	if err != nil {
		t.Fatal(err)
	}
	srv.lis = lis
	srv.wg.Add(1)
	go srv.acceptLoop(lis)

	deadline := time.Now().Add(5 * time.Second)
	for {
		srv.emu.Lock()
		recorded := srv.listenErr
		srv.emu.Unlock()
		if recorded != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("terminal accept error never recorded")
		}
		time.Sleep(time.Millisecond)
	}
	err = srv.Close()
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want wrapped %v", err, boom)
	}
	if !strings.Contains(err.Error(), "accept loop terminated") {
		t.Fatalf("Close error %q lacks accept-loop context", err)
	}
}

// TestBackendServerRejectsNil pins NewServerWith's validation.
func TestBackendServerRejectsNil(t *testing.T) {
	if _, err := NewServerWith(nil); err == nil {
		t.Fatal("nil backend accepted")
	}
}
