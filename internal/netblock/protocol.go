// Package netblock implements a minimal remote block-device protocol over
// TCP — the repository's stand-in for the iSCSI transport the paper's
// testbed used between host and primary storage (Table 1). Unlike the
// virtual-time simulation, this is a real network service moving real
// bytes: Server exports an in-memory volume, Client gives random-access
// reads/writes/trims/flushes over a connection.
//
// Wire format (all integers big-endian):
//
//	request:  magic u32 | op u8 | offset u64 | length u32 | payload (writes)
//	response: magic u32 | status u8 | length u32 | payload (reads)
//
// The opPing health op ignores offset and length and answers with a
// 17-byte payload — size u64 | epoch u64 | flags u8 — the cluster layer's
// health probe and handshake: volume size, the server's ring epoch, and
// whether it is draining for shutdown.
package netblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	reqMagic  uint32 = 0x53524351 // "SRCQ"
	respMagic uint32 = 0x53524352 // "SRCR"

	opRead  uint8 = 1
	opWrite uint8 = 2
	opTrim  uint8 = 3
	opFlush uint8 = 4
	opSize  uint8 = 5
	opPing  uint8 = 6

	statusOK  uint8 = 0
	statusErr uint8 = 1

	// pingDraining is the flag bit set in a ping response while the server
	// is shutting down — a routing hint, not an error: in-flight requests
	// still complete under DrainGrace.
	pingDraining uint8 = 1 << 0

	// MaxPayload bounds one transfer.
	MaxPayload = 4 << 20
)

// Errors.
var (
	// ErrProtocol reports a malformed frame.
	ErrProtocol = errors.New("netblock: protocol error")
	// ErrRemote reports a server-side failure.
	ErrRemote = errors.New("netblock: remote error")
)

// request is one decoded command frame.
type request struct {
	op      uint8
	off     uint64
	length  uint32
	payload []byte
}

// readRequest decodes one command frame from r.
func readRequest(r io.Reader) (*request, error) {
	var hdr [17]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:]) != reqMagic {
		return nil, fmt.Errorf("%w: bad request magic", ErrProtocol)
	}
	req := &request{
		op:     hdr[4],
		off:    binary.BigEndian.Uint64(hdr[5:]),
		length: binary.BigEndian.Uint32(hdr[13:]),
	}
	if req.length > MaxPayload {
		return nil, fmt.Errorf("%w: length %d exceeds limit", ErrProtocol, req.length)
	}
	if req.op == opWrite {
		req.payload = make([]byte, req.length)
		if _, err := io.ReadFull(r, req.payload); err != nil {
			return nil, err
		}
	}
	return req, nil
}

// writeRequest encodes one command frame to w.
func writeRequest(w io.Writer, op uint8, off uint64, length uint32, payload []byte) error {
	var hdr [17]byte
	binary.BigEndian.PutUint32(hdr[0:], reqMagic)
	hdr[4] = op
	binary.BigEndian.PutUint64(hdr[5:], off)
	binary.BigEndian.PutUint32(hdr[13:], length)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// writeResponse encodes one response frame to w.
func writeResponse(w io.Writer, status uint8, payload []byte) error {
	var hdr [9]byte
	binary.BigEndian.PutUint32(hdr[0:], respMagic)
	hdr[4] = status
	binary.BigEndian.PutUint32(hdr[5:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// readResponse decodes one response frame from r.
func readResponse(r io.Reader) (status uint8, payload []byte, err error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if binary.BigEndian.Uint32(hdr[0:]) != respMagic {
		return 0, nil, fmt.Errorf("%w: bad response magic", ErrProtocol)
	}
	n := binary.BigEndian.Uint32(hdr[5:])
	if n > MaxPayload {
		return 0, nil, fmt.Errorf("%w: length %d exceeds limit", ErrProtocol, n)
	}
	if n > 0 {
		payload = make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return 0, nil, err
		}
	}
	return hdr[4], payload, nil
}
