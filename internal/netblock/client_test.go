package netblock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// silentListener accepts connections and never answers, simulating a hung
// peer.
func silentListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()
	return ln
}

func TestClientTimeoutOnSilentPeer(t *testing.T) {
	ln := silentListener(t)
	start := time.Now()
	_, err := DialOptions(ln.Addr().String(), ClientOptions{
		DialTimeout: time.Second,
		Timeout:     50 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("handshake against a silent peer succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want a timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timed out only after %v", elapsed)
	}
}

func TestClientRequestTimeout(t *testing.T) {
	// A served handshake followed by silence: the per-request deadline must
	// unblock the read instead of hanging forever.
	srv, err := NewServer(4096)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialOptions(addr.String(), ClientOptions{Timeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv.Close() // server gone; the next request gets no response
	_, err = cli.ReadAt(make([]byte, 1), 0)
	if err == nil {
		t.Fatal("request against a dead server succeeded")
	}
}

func TestClientReconnectsAfterDrop(t *testing.T) {
	srv, err := NewServer(4096)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var slept []time.Duration
	cli, err := DialOptions(addr.String(), ClientOptions{
		RetryLimit: 2,
		RetryDelay: time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.WriteAt([]byte("persist"), 0); err != nil {
		t.Fatal(err)
	}
	// Kill the connection out from under the client: the next request hits
	// a transport error, reconnects, and retries transparently.
	cli.conn.Close()
	got := make([]byte, 7)
	if _, err := cli.ReadAt(got, 0); err != nil {
		t.Fatalf("read after drop: %v", err)
	}
	if string(got) != "persist" {
		t.Fatalf("read %q after reconnect", got)
	}
	if len(slept) == 0 {
		t.Fatal("retry path did not back off")
	}
}

func TestClientNoRetryWithoutLimit(t *testing.T) {
	srv, cli := startPair(t, 4096)
	defer srv.Close()
	cli.conn.Close()
	if _, err := cli.ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("read on a closed connection succeeded with RetryLimit 0")
	}
}

func TestWrappedClientFailsFast(t *testing.T) {
	// NewClient has no address to redial, so even with a retry budget a
	// transport error surfaces immediately.
	srv, err := NewServer(4096)
	if err != nil {
		t.Fatal(err)
	}
	a, b := net.Pipe()
	go func() { _ = srv.ServeConn(a) }()
	cli, err := NewClient(b)
	if err != nil {
		t.Fatal(err)
	}
	cli.opts.RetryLimit = 3
	cli.opts.Sleep = func(time.Duration) { t.Error("wrapped client slept for a retry") }
	cli.conn.Close()
	if _, err := cli.ReadAt(make([]byte, 1), 0); err == nil {
		t.Fatal("read on a closed pipe succeeded")
	}
}

func TestDialRetryExhaustionDeterministic(t *testing.T) {
	// A freed port: every dial is refused, so the retry budget is consumed
	// entirely by backoff sleeps. Same seed, same schedule; a different
	// seed jitters differently.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	schedule := func(seed int64) []time.Duration {
		var slept []time.Duration
		_, err := DialOptions(addr, ClientOptions{
			DialTimeout: time.Second,
			RetryLimit:  4,
			RetryDelay:  time.Millisecond,
			Seed:        seed,
			Sleep:       func(d time.Duration) { slept = append(slept, d) },
		})
		if err == nil {
			t.Fatal("dial of a closed port succeeded")
		}
		return slept
	}
	a, b, c := schedule(1), schedule(1), schedule(2)
	if len(a) != 4 {
		t.Fatalf("%d backoffs for RetryLimit 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
		if a[i] < time.Millisecond<<i {
			t.Fatalf("backoff %d = %v below base %v", i, a[i], time.Millisecond<<i)
		}
	}
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Fatalf("different seeds produced identical jitter: %v", a)
	}
}

// fakeClock pairs ClientOptions.Now and Sleep: sleeping advances the
// clock, so retry-budget accounting runs entirely on injected time.
type fakeClock struct {
	t      time.Time
	sleeps int
}

func (c *fakeClock) Now() time.Time { return c.t }
func (c *fakeClock) Sleep(d time.Duration) {
	c.t = c.t.Add(d)
	c.sleeps++
}

func TestRetryBudgetBoundsElapsedTime(t *testing.T) {
	// A freed port: every dial is refused instantly, so with RetryLimit
	// 1000 the old behavior would grind through a thousand backoffs. The
	// budget must cut the operation off once the injected clock has
	// consumed it — attempts stop on elapsed time, not attempt count.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	clk := &fakeClock{}
	_, err = DialOptions(addr, ClientOptions{
		DialTimeout: time.Second,
		RetryLimit:  1000,
		RetryDelay:  10 * time.Millisecond,
		RetryBudget: 200 * time.Millisecond,
		Sleep:       clk.Sleep,
		Now:         clk.Now,
	})
	if err == nil {
		t.Fatal("dial of a closed port succeeded")
	}
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	// Exponential backoff: 10+20+40+80+160ms crosses 200ms after at most 5
	// sleeps; nowhere near the 1000 the limit alone would permit.
	if clk.sleeps == 0 || clk.sleeps > 6 {
		t.Fatalf("%d backoff sleeps under a 200ms budget", clk.sleeps)
	}
}

// handshakeOnlyListener serves the opSize handshake on every connection
// and then swallows all further requests without answering — the fail-slow
// peer whose timeouts chain: every reconnect succeeds, every data request
// burns the full Timeout.
func handshakeOnlyListener(t *testing.T) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				for {
					req, err := readRequest(c)
					if err != nil {
						return
					}
					if req.op != opSize {
						continue // swallow: the client's deadline must fire
					}
					var buf [8]byte
					binary.BigEndian.PutUint64(buf[:], 4096)
					if err := writeResponse(c, statusOK, buf[:]); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr()
}

func TestRetryBudgetBoundsRequestRetries(t *testing.T) {
	// The satellite bug in miniature: a peer that accepts reconnects but
	// never answers data requests. RetryLimit 1000 alone would chain a
	// thousand timeouts; the budget must cut the operation off.
	addr := handshakeOnlyListener(t)
	clk := &fakeClock{}
	cli, err := DialOptions(addr.String(), ClientOptions{
		DialTimeout: time.Second,
		Timeout:     20 * time.Millisecond,
		RetryLimit:  1000,
		RetryDelay:  10 * time.Millisecond,
		RetryBudget: 100 * time.Millisecond,
		Sleep:       clk.Sleep,
		Now:         clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.ReadAt(make([]byte, 1), 0)
	if err == nil {
		t.Fatal("read against a silent server succeeded")
	}
	if !errors.Is(err, ErrRetryBudget) {
		t.Fatalf("err = %v, want ErrRetryBudget", err)
	}
	// Backoffs 10+20+40+80ms cross the 100ms budget after at most 4
	// sleeps; without the budget this loop would take 1000.
	if clk.sleeps == 0 || clk.sleeps > 5 {
		t.Fatalf("%d backoff sleeps under a 100ms budget", clk.sleeps)
	}
}

func TestRemoteErrorNotTransient(t *testing.T) {
	if transient(ErrRemote) {
		t.Fatal("remote errors must not be retried")
	}
	if !transient(errors.New("connection reset")) {
		t.Fatal("transport errors must be retryable")
	}
	if transient(nil) {
		t.Fatal("nil error classified transient")
	}
}

// staleBackend plays the server side of the staleepoch contract: a ring
// member that no longer owns the extent, refusing every read and write
// with the wire marker a ChainBackend would use.
type staleBackend struct {
	Backend
	reads atomic.Int32
}

func (b *staleBackend) ReadAt(p []byte, off int64) error {
	b.reads.Add(1)
	return fmt.Errorf("backend: %s: read [%d,%d) not owned here", StaleEpochText, off, off+int64(len(p)))
}

func (b *staleBackend) WriteAt(p []byte, off int64) error {
	return fmt.Errorf("backend: %s: write [%d,%d) not owned here", StaleEpochText, off, off+int64(len(p)))
}

// TestClientClassifiesStaleEpochRefusal pins the wire classification: a
// refusal payload carrying StaleEpochText must come back as ErrStaleEpoch,
// must still read as a remote answer (ErrRemote) so the transport retry
// loop does not repeat the refusal, and must not consume retry attempts.
func TestClientClassifiesStaleEpochRefusal(t *testing.T) {
	mem, err := MemBackend(4096)
	if err != nil {
		t.Fatal(err)
	}
	sb := &staleBackend{Backend: mem}
	srv, err := NewServerWith(sb)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialOptions(addr.String(), ClientOptions{
		RetryLimit: 3,
		RetryDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	_, err = cli.ReadAt(make([]byte, 8), 0)
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("read refusal = %v, want ErrStaleEpoch", err)
	}
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("stale refusal must remain a remote answer, got %v", err)
	}
	if n := sb.reads.Load(); n != 1 {
		t.Errorf("refused read reached the backend %d times; remote refusals must not be retried", n)
	}

	if _, err := cli.WriteAt([]byte("x"), 0); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("write refusal = %v, want ErrStaleEpoch", err)
	}
}

// TestClientOrdinaryRefusalIsNotStale guards the classifier's precision:
// a remote refusal without the marker stays a plain ErrRemote.
func TestClientOrdinaryRefusalIsNotStale(t *testing.T) {
	srv, cli := startPair(t, 4096)
	defer srv.Close()
	defer cli.Close()
	// Reads beyond the volume are refused remotely by check().
	_, err := cli.ReadAt(make([]byte, 16), 4096-8)
	if err == nil {
		t.Fatal("out-of-volume read succeeded")
	}
	if errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("ordinary refusal misclassified as stale epoch: %v", err)
	}
}
