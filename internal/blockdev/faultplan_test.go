package blockdev

import (
	"errors"
	"math/rand"
	"testing"

	"srccache/internal/vtime"
)

func newPlan(t *testing.T, seed int64) (*FaultPlan, *MemDevice) {
	t.Helper()
	dev := NewMemDevice(1<<20, 10*vtime.Microsecond)
	var rng *rand.Rand
	if seed != 0 {
		rng = rand.New(rand.NewSource(seed))
	}
	return NewFaultPlan(dev, rng), dev
}

func TestFaultPlanUnreadable(t *testing.T) {
	f, _ := newPlan(t, 0)
	write := Request{OpWrite, 0, 4 * PageSize}
	if _, err := f.Submit(0, write); err != nil {
		t.Fatal(err)
	}
	f.InjectUnreadable(2)
	if n := f.UnreadablePages(); n != 1 {
		t.Fatalf("UnreadablePages = %d, want 1", n)
	}
	// A read covering the bad page fails; one beside it succeeds.
	if _, err := f.Submit(0, Request{OpRead, 0, 4 * PageSize}); !errors.Is(err, ErrUnreadable) {
		t.Fatalf("read over latent error: err = %v, want ErrUnreadable", err)
	}
	if f.Counts().Unreadable != 1 {
		t.Fatalf("Counts().Unreadable = %d, want 1", f.Counts().Unreadable)
	}
	if _, err := f.Submit(0, Request{OpRead, 0, 2 * PageSize}); err != nil {
		t.Fatalf("read beside latent error: %v", err)
	}
	// Rewriting the page repairs it.
	if _, err := f.Submit(0, Request{OpWrite, 2 * PageSize, PageSize}); err != nil {
		t.Fatal(err)
	}
	if n := f.UnreadablePages(); n != 0 {
		t.Fatalf("UnreadablePages after rewrite = %d, want 0", n)
	}
	if _, err := f.Submit(0, Request{OpRead, 0, 4 * PageSize}); err != nil {
		t.Fatalf("read after repair: %v", err)
	}
	// Trim repairs too.
	f.InjectUnreadable(3)
	if _, err := f.Submit(0, Request{OpTrim, 3 * PageSize, PageSize}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(0, Request{OpRead, 3 * PageSize, PageSize}); err != nil {
		t.Fatalf("read after trim repair: %v", err)
	}
}

func TestFaultPlanTransient(t *testing.T) {
	f, _ := newPlan(t, 0)
	f.InjectTransient(2)
	req := Request{OpRead, 0, PageSize}
	for i := 0; i < 2; i++ {
		if _, err := f.Submit(0, req); !errors.Is(err, ErrTransient) {
			t.Fatalf("attempt %d: err = %v, want ErrTransient", i, err)
		}
	}
	if _, err := f.Submit(0, req); err != nil {
		t.Fatalf("attempt after transient burst: %v", err)
	}
	if f.Counts().Transient != 2 {
		t.Fatalf("Counts().Transient = %d, want 2", f.Counts().Transient)
	}
}

func TestFaultPlanFailSlow(t *testing.T) {
	req := Request{OpRead, 0, PageSize}
	// Fresh device per measurement: MemDevice queues, so back-to-back
	// submissions would shift completions on a shared device.
	healthy, _ := newPlan(t, 0)
	base, err := healthy.Submit(0, req)
	if err != nil {
		t.Fatal(err)
	}
	slowPlan, _ := newPlan(t, 0)
	slowPlan.SetSlowdown(4)
	slow, err := slowPlan.Submit(0, req)
	if err != nil {
		t.Fatal(err)
	}
	if want := vtime.Time(0).Add(4 * base.Sub(0)); slow != want {
		t.Fatalf("fail-slow completion = %v, want %v (4x %v)", slow, want, base)
	}
	// Slowdown below 1 clamps to healthy speed, never a speed-up.
	clamped, _ := newPlan(t, 0)
	clamped.SetSlowdown(0.5)
	fast, err := clamped.Submit(0, req)
	if err != nil {
		t.Fatal(err)
	}
	if fast != base {
		t.Fatalf("clamped slowdown completion = %v, want %v", fast, base)
	}
}

func TestFaultPlanScheduledFailStop(t *testing.T) {
	f, _ := newPlan(t, 0)
	req := Request{OpRead, 0, PageSize}
	f.FailAt(vtime.Time(0).Add(100 * vtime.Microsecond))
	if _, err := f.Submit(0, req); err != nil {
		t.Fatalf("before the scheduled instant: %v", err)
	}
	if f.Failed() {
		t.Fatal("Failed() = true before the scheduled instant")
	}
	at := vtime.Time(0).Add(100 * vtime.Microsecond)
	if _, err := f.Submit(at, req); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("at the scheduled instant: err = %v, want ErrDeviceFailed", err)
	}
	if !f.Failed() {
		t.Fatal("Failed() = false after the scheduled instant")
	}
	if _, err := f.Flush(at); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("flush after fail-stop: err = %v, want ErrDeviceFailed", err)
	}
	f.Repair()
	if _, err := f.Submit(at, req); err != nil {
		t.Fatalf("after repair: %v", err)
	}
}

func TestFaultPlanSilentCorruption(t *testing.T) {
	f, dev := newPlan(t, 7)
	f.SetCorruptProb(1) // corrupt every write
	if err := dev.Content().WriteTag(0, DataTag(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Submit(0, Request{OpWrite, 0, PageSize}); err != nil {
		t.Fatal(err)
	}
	if f.Counts().Corrupted != 1 {
		t.Fatalf("Counts().Corrupted = %d, want 1", f.Counts().Corrupted)
	}
	got, err := dev.Content().ReadTag(0)
	if err != nil {
		t.Fatal(err)
	}
	if got == DataTag(0, 1) {
		t.Fatal("corrupted page read back clean")
	}
	// Probability zero never corrupts.
	f2, dev2 := newPlan(t, 7)
	f2.SetCorruptProb(0)
	if err := dev2.Content().WriteTag(0, DataTag(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Submit(0, Request{OpWrite, 0, PageSize}); err != nil {
		t.Fatal(err)
	}
	if got, err := dev2.Content().ReadTag(0); err != nil || got != DataTag(0, 1) {
		t.Fatalf("uncorrupted page: tag %v err %v", got, err)
	}
}

func TestFaultPlanProbabilisticRequiresRNG(t *testing.T) {
	f, _ := newPlan(t, 0)
	for name, set := range map[string]func(float64){
		"transient": f.SetTransientProb,
		"corrupt":   f.SetCorruptProb,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s prob without rng: no panic", name)
				}
			}()
			set(0.5)
		}()
	}
}

// TestFaultPlanDeterminism is the seeded-fault contract: the same seed and
// submission sequence produce the same fault sequence.
func TestFaultPlanDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		f, _ := newPlan(t, seed)
		f.SetTransientProb(0.3)
		f.SetCorruptProb(0.2)
		var out []string
		for i := 0; i < 200; i++ {
			off := (int64(i) % 16) * PageSize
			op := OpRead
			if i%3 == 0 {
				op = OpWrite
			}
			_, err := f.Submit(vtime.Time(i)*1000, Request{op, off, PageSize})
			switch {
			case err == nil:
				out = append(out, "ok")
			case errors.Is(err, ErrTransient):
				out = append(out, "transient")
			default:
				out = append(out, err.Error())
			}
		}
		c := f.Counts()
		if c.Transient == 0 || c.Corrupted == 0 {
			t.Fatalf("fault mix not exercised: %+v", c)
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at submission %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 200-op fault sequence")
	}
}

// TestFaultPlanInvalidRequestConsumesNoFaultState checks the determinism
// guard: a malformed request is rejected before any rng draw or injected
// fault is consumed.
func TestFaultPlanInvalidRequestConsumesNoFaultState(t *testing.T) {
	f, _ := newPlan(t, 0)
	f.InjectTransient(1)
	if _, err := f.Submit(0, Request{OpRead, 1, PageSize}); !errors.Is(err, ErrUnaligned) {
		t.Fatalf("unaligned request err = %v", err)
	}
	if f.Counts().Transient != 0 {
		t.Fatal("invalid request consumed an injected transient fault")
	}
}
