package blockdev

// Faulty is the original fail-stop-only fault injector, kept as an alias so
// existing call sites (and the public srccache API) keep working. The full
// fault taxonomy — latent sector errors, transient errors, fail-slow,
// probabilistic silent corruption, scheduled fail-stop — lives on FaultPlan.
type Faulty = FaultPlan

// NewFaulty wraps dev with explicit fault injection only (no probabilistic
// faults; see NewFaultPlan for the seeded models).
func NewFaulty(dev Device) *Faulty { return NewFaultPlan(dev, nil) }
