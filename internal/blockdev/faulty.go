package blockdev

import "srccache/internal/vtime"

// Faulty wraps a Device with fail-stop fault injection. While failed, every
// operation returns ErrDeviceFailed; Repair restores service (modelling
// on-the-fly replacement of a failed drive, after which RAID rebuild
// repopulates content).
type Faulty struct {
	inner  Device
	failed bool
}

var _ Device = (*Faulty)(nil)

// NewFaulty wraps dev.
func NewFaulty(dev Device) *Faulty { return &Faulty{inner: dev} }

// Fail makes subsequent operations error with ErrDeviceFailed.
func (f *Faulty) Fail() { f.failed = true }

// Repair restores service. Content of the underlying device is retained;
// callers that model drive replacement should also reset content.
func (f *Faulty) Repair() { f.failed = false }

// Failed reports whether the device is currently failed.
func (f *Faulty) Failed() bool { return f.failed }

// Submit forwards to the wrapped device unless failed.
func (f *Faulty) Submit(at vtime.Time, req Request) (vtime.Time, error) {
	if f.failed {
		return at, ErrDeviceFailed
	}
	return f.inner.Submit(at, req)
}

// Flush forwards to the wrapped device unless failed.
func (f *Faulty) Flush(at vtime.Time) (vtime.Time, error) {
	if f.failed {
		return at, ErrDeviceFailed
	}
	return f.inner.Flush(at)
}

// Capacity reports the wrapped device's capacity.
func (f *Faulty) Capacity() int64 { return f.inner.Capacity() }

// Stats reports the wrapped device's statistics.
func (f *Faulty) Stats() *Stats { return f.inner.Stats() }

// Content exposes the wrapped device's content store.
func (f *Faulty) Content() *Content { return f.inner.Content() }
