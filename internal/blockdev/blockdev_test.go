package blockdev

import (
	"errors"
	"testing"
	"testing/quick"

	"srccache/internal/vtime"
)

// mustTag reads a tag, failing the test on error: content-layer reads in
// these tests address in-range pages, so any error is a test bug.
func mustTag(t *testing.T, c *Content, page int64) Tag {
	t.Helper()
	tag, err := c.ReadTag(page)
	if err != nil {
		t.Fatalf("ReadTag(%d): %v", page, err)
	}
	return tag
}

// mustBlob reads a metadata blob, failing the test on error.
func mustBlob(t *testing.T, c *Content, page int64) []byte {
	t.Helper()
	b, err := c.ReadBlob(page)
	if err != nil {
		t.Fatalf("ReadBlob(%d): %v", page, err)
	}
	return b
}

func TestRequestValidate(t *testing.T) {
	const capacity = 1 << 20
	tests := []struct {
		name    string
		req     Request
		wantErr error
	}{
		{"valid read", Request{OpRead, 0, PageSize}, nil},
		{"valid write end", Request{OpWrite, capacity - PageSize, PageSize}, nil},
		{"valid trim", Request{OpTrim, 0, capacity}, nil},
		{"unknown op", Request{Op(9), 0, PageSize}, ErrBadRequest},
		{"unaligned off", Request{OpRead, 1, PageSize}, ErrUnaligned},
		{"unaligned len", Request{OpRead, 0, PageSize + 1}, ErrUnaligned},
		{"zero len", Request{OpRead, 0, 0}, ErrBadRequest},
		{"negative off", Request{OpRead, -PageSize, PageSize}, ErrOutOfRange},
		{"past end", Request{OpRead, capacity, PageSize}, ErrOutOfRange},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.req.Validate(capacity)
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate(%v) = %v, want %v", tt.req, err, tt.wantErr)
			}
		})
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" || OpTrim.String() != "trim" {
		t.Fatal("op names wrong")
	}
	if Op(42).String() != "op(42)" {
		t.Fatalf("unknown op string = %q", Op(42).String())
	}
}

func TestStatsRecordAndAdd(t *testing.T) {
	var s Stats
	s.Record(Request{OpRead, 0, 2 * PageSize})
	s.Record(Request{OpWrite, 0, PageSize})
	s.Record(Request{OpTrim, 0, 3 * PageSize})
	if s.ReadOps != 1 || s.ReadBytes != 2*PageSize {
		t.Fatalf("read stats %+v", s)
	}
	if s.WriteOps != 1 || s.WriteBytes != PageSize {
		t.Fatalf("write stats %+v", s)
	}
	if s.TrimOps != 1 || s.TrimBytes != 3*PageSize {
		t.Fatalf("trim stats %+v", s)
	}
	var sum Stats
	sum.Add(s)
	sum.Add(s)
	if sum.ReadBytes != 4*PageSize || sum.TotalBytes() != 4*PageSize+2*PageSize {
		t.Fatalf("sum stats %+v", sum)
	}
}

func TestDataTagDeterministicAndDistinct(t *testing.T) {
	a := DataTag(10, 1)
	if a != DataTag(10, 1) {
		t.Fatal("DataTag not deterministic")
	}
	if a == DataTag(10, 2) || a == DataTag(11, 1) {
		t.Fatal("DataTag collision across version/lba")
	}
	if a.IsZero() {
		t.Fatal("real tag is zero")
	}
}

func TestParityTagReconstruction(t *testing.T) {
	d0, d1, d2 := DataTag(1, 1), DataTag(2, 7), DataTag(3, 3)
	p := ParityTag(d0, d1, d2)
	// Losing d1: XOR of parity with survivors reconstructs it.
	if got := ParityTag(p, d0, d2); got != d1 {
		t.Fatalf("reconstructed %v, want %v", got, d1)
	}
}

func TestTagXORProperties(t *testing.T) {
	f := func(aHi, aLo, bHi, bLo uint64) bool {
		a, b := Tag{aHi, aLo}, Tag{bHi, bLo}
		// Commutative, self-inverse, identity with zero.
		return a.XOR(b) == b.XOR(a) && a.XOR(a).IsZero() && a.XOR(ZeroTag) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestContentWriteReadTrim(t *testing.T) {
	c := NewContent(16 * PageSize)
	if err := c.WriteTag(3, DataTag(99, 1)); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadTag(3)
	if err != nil || got != DataTag(99, 1) {
		t.Fatalf("ReadTag = %v, %v", got, err)
	}
	if got := mustTag(t, c, 4); !got.IsZero() {
		t.Fatalf("unwritten page tag = %v", got)
	}
	if err := c.Trim(0, 16); err != nil {
		t.Fatal(err)
	}
	if got := mustTag(t, c, 3); !got.IsZero() {
		t.Fatalf("trimmed page tag = %v", got)
	}
	if err := c.WriteTag(16, DataTag(1, 1)); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("out of range write err = %v", err)
	}
}

func TestContentBlob(t *testing.T) {
	c := NewContent(4 * PageSize)
	blob := []byte("segment summary")
	if err := c.WriteBlob(1, blob); err != nil {
		t.Fatal(err)
	}
	blob[0] = 'X' // caller mutation must not leak in
	got, err := c.ReadBlob(1)
	if err != nil || string(got) != "segment summary" {
		t.Fatalf("ReadBlob = %q, %v", got, err)
	}
	got[0] = 'Y' // returned copy mutation must not leak back
	again := mustBlob(t, c, 1)
	if string(again) != "segment summary" {
		t.Fatalf("blob aliased: %q", again)
	}
	if b := mustBlob(t, c, 2); b != nil {
		t.Fatalf("empty page blob = %v", b)
	}
	if err := c.WriteBlob(0, make([]byte, PageSize+1)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("oversized blob err = %v", err)
	}
}

func TestContentCrashRevertsVolatileWrites(t *testing.T) {
	c := NewContent(8 * PageSize)
	committed := DataTag(5, 1)
	if err := c.WriteTag(5, committed); err != nil {
		t.Fatal(err)
	}
	c.FlushContent()

	// Overwrite page 5 and write fresh page 6, then crash before flushing.
	if err := c.WriteTag(5, DataTag(5, 2)); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteTag(6, DataTag(6, 1)); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteBlob(7, []byte("meta")); err != nil {
		t.Fatal(err)
	}
	if c.DirtyPages() != 3 {
		t.Fatalf("dirty pages = %d, want 3", c.DirtyPages())
	}
	c.Crash()

	if got := mustTag(t, c, 5); got != committed {
		t.Fatalf("page 5 after crash = %v, want committed %v", got, committed)
	}
	if got := mustTag(t, c, 6); !got.IsZero() {
		t.Fatalf("page 6 after crash = %v, want zero", got)
	}
	if b := mustBlob(t, c, 7); b != nil {
		t.Fatalf("page 7 blob after crash = %q, want nil", b)
	}
}

func TestContentCrashPreservesCommitted(t *testing.T) {
	c := NewContent(8 * PageSize)
	if err := c.WriteBlob(2, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	c.FlushContent()
	c.Crash() // nothing volatile: no-op
	if b := mustBlob(t, c, 2); string(b) != "hello" {
		t.Fatalf("committed blob lost: %q", b)
	}
}

func TestContentCorruption(t *testing.T) {
	c := NewContent(4 * PageSize)
	want := DataTag(1, 1)
	if err := c.WriteTag(1, want); err != nil {
		t.Fatal(err)
	}
	if err := c.Corrupt(1); err != nil {
		t.Fatal(err)
	}
	if got := mustTag(t, c, 1); got == want {
		t.Fatal("corrupted page read back clean")
	}
	// Rewriting clears the corruption.
	if err := c.WriteTag(1, want); err != nil {
		t.Fatal(err)
	}
	if got := mustTag(t, c, 1); got != want {
		t.Fatalf("rewrite did not clear corruption: %v", got)
	}
}

func TestMemDeviceTiming(t *testing.T) {
	d := NewMemDevice(1<<20, vtime.Millisecond)
	done1, err := d.Submit(0, Request{OpWrite, 0, PageSize})
	if err != nil {
		t.Fatal(err)
	}
	if done1 != vtime.Time(vtime.Millisecond) {
		t.Fatalf("first op done at %v", done1)
	}
	// Second op submitted at t=0 queues behind the first.
	done2, err := d.Submit(0, Request{OpRead, 0, PageSize})
	if err != nil {
		t.Fatal(err)
	}
	if done2 != vtime.Time(2*vtime.Millisecond) {
		t.Fatalf("queued op done at %v", done2)
	}
	fd, err := d.Flush(0)
	if err != nil {
		t.Fatal(err)
	}
	if fd != done2 {
		t.Fatalf("flush done at %v, want %v", fd, done2)
	}
	if d.Stats().WriteOps != 1 || d.Stats().ReadOps != 1 || d.Stats().Flushes != 1 {
		t.Fatalf("stats %+v", d.Stats())
	}
}

func TestFaultyDevice(t *testing.T) {
	d := NewMemDevice(1<<20, 0)
	f := NewFaulty(d)
	if _, err := f.Submit(0, Request{OpWrite, 0, PageSize}); err != nil {
		t.Fatal(err)
	}
	f.Fail()
	if !f.Failed() {
		t.Fatal("Failed() = false after Fail")
	}
	if _, err := f.Submit(0, Request{OpRead, 0, PageSize}); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("submit on failed device err = %v", err)
	}
	if _, err := f.Flush(0); !errors.Is(err, ErrDeviceFailed) {
		t.Fatalf("flush on failed device err = %v", err)
	}
	f.Repair()
	if _, err := f.Submit(0, Request{OpRead, 0, PageSize}); err != nil {
		t.Fatalf("submit after repair err = %v", err)
	}
	if f.Capacity() != d.Capacity() || f.Content() != d.Content() || f.Stats() != d.Stats() {
		t.Fatal("faulty wrapper does not forward accessors")
	}
}
