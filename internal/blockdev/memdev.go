package blockdev

import "srccache/internal/vtime"

// MemDevice is a minimal Device with a fixed per-operation latency and a
// single FIFO service queue. It exists for tests and as the simplest
// substrate on which the cache layers can be exercised without the full SSD
// or HDD models.
type MemDevice struct {
	capacity int64
	latency  vtime.Duration

	busy    vtime.Time
	stats   Stats
	content *Content
}

var _ Device = (*MemDevice)(nil)

// NewMemDevice creates a MemDevice of the given capacity whose every
// operation takes latency.
func NewMemDevice(capacity int64, latency vtime.Duration) *MemDevice {
	return &MemDevice{
		capacity: capacity,
		latency:  latency,
		content:  NewContent(capacity),
	}
}

// NewMemDeviceWithContent creates a MemDevice backed by an existing content
// store — typically a crashed Clone of a live device, handed to a fresh
// cache for a recovery trial.
func NewMemDeviceWithContent(content *Content, latency vtime.Duration) *MemDevice {
	return &MemDevice{
		capacity: content.Pages() * PageSize,
		latency:  latency,
		content:  content,
	}
}

// Submit serves the request after any earlier work completes.
func (d *MemDevice) Submit(at vtime.Time, req Request) (vtime.Time, error) {
	if err := req.Validate(d.capacity); err != nil {
		return at, err
	}
	d.stats.Record(req)
	if req.Op == OpTrim {
		if err := d.content.Trim(req.Off/PageSize, req.Pages()); err != nil {
			return at, err
		}
		return vtime.Max(at, d.busy), nil
	}
	start := vtime.Max(at, d.busy)
	done := start.Add(d.latency)
	d.busy = done
	return done, nil
}

// Flush completes once all prior operations have drained and commits
// content.
func (d *MemDevice) Flush(at vtime.Time) (vtime.Time, error) {
	d.stats.Flushes++
	d.content.FlushContent()
	return vtime.Max(at, d.busy), nil
}

// Capacity reports the device size in bytes.
func (d *MemDevice) Capacity() int64 { return d.capacity }

// Stats reports accumulated counters.
func (d *MemDevice) Stats() *Stats { return &d.stats }

// Content exposes the content store.
func (d *MemDevice) Content() *Content { return d.content }
