package blockdev

import (
	"fmt"
	"math/rand"
)

// CrashSchedule selects which entries of a Content write log persist across
// a crash. Keep[i] persists log entry i; Torn optionally truncates a kept
// blob entry to its first k bytes (merged over the committed page tail).
//
// Schedules come in two tiers, and recovery invariants differ between them:
//
//   - Barrier tier (PrefixSchedule, optionally torn at the cut): each device
//     persists a FIFO prefix of its write log, modelling a drive that honors
//     internal write ordering but loses its volatile tail on power failure.
//     Under this tier the MS/ME summary sandwich is a sound completeness
//     proof and the strict durability invariants must hold.
//
//   - Reorder tier (SubsetSchedule, OmitOneSchedule): arbitrary subsets, the
//     weakest hardware model (no ordering between cached writes at all). No
//     metadata-only recovery scan can guarantee strict durability here; the
//     checkable contract weakens to detection — recovery must still succeed
//     deterministically and never silently serve wrong bytes.
type CrashSchedule struct {
	Keep []bool
	Torn map[int]int
}

func (s CrashSchedule) validate(n int) error {
	if len(s.Keep) != n {
		return fmt.Errorf("%w: schedule covers %d writes, log has %d", ErrBadRequest, len(s.Keep), n)
	}
	for i := range s.Torn {
		if i < 0 || i >= n {
			return fmt.Errorf("%w: torn write %d outside log of %d", ErrBadRequest, i, n)
		}
		if !s.Keep[i] {
			return fmt.Errorf("%w: torn write %d not kept", ErrBadRequest, i)
		}
	}
	return nil
}

// Kept reports how many log entries the schedule persists.
func (s CrashSchedule) Kept() int {
	n := 0
	for _, k := range s.Keep {
		if k {
			n++
		}
	}
	return n
}

// Clone returns an independent copy of the schedule.
func (s CrashSchedule) Clone() CrashSchedule {
	cp := CrashSchedule{Keep: make([]bool, len(s.Keep))}
	copy(cp.Keep, s.Keep)
	if len(s.Torn) > 0 {
		cp.Torn = make(map[int]int, len(s.Torn))
		for i, k := range s.Torn {
			cp.Torn[i] = k
		}
	}
	return cp
}

// DropAllSchedule persists nothing: the Crash() special case.
func DropAllSchedule(n int) CrashSchedule {
	return CrashSchedule{Keep: make([]bool, n)}
}

// KeepAllSchedule persists the whole log: a crash immediately after a
// completed flush.
func KeepAllSchedule(n int) CrashSchedule {
	s := CrashSchedule{Keep: make([]bool, n)}
	for i := range s.Keep {
		s.Keep[i] = true
	}
	return s
}

// PrefixSchedule persists the first cut entries of an n-entry log.
func PrefixSchedule(n, cut int) CrashSchedule {
	s := CrashSchedule{Keep: make([]bool, n)}
	for i := 0; i < cut && i < n; i++ {
		s.Keep[i] = true
	}
	return s
}

// SubsetSchedule persists each of n entries independently with probability
// pKeep, drawn from rng.
func SubsetSchedule(n int, rng *rand.Rand, pKeep float64) CrashSchedule {
	s := CrashSchedule{Keep: make([]bool, n)}
	for i := range s.Keep {
		s.Keep[i] = rng.Float64() < pKeep
	}
	return s
}

// OmitOneSchedule persists everything except entry i.
func OmitOneSchedule(n, i int) CrashSchedule {
	s := KeepAllSchedule(n)
	if i >= 0 && i < n {
		s.Keep[i] = false
	}
	return s
}

// Tear marks kept blob entry i as persisted only through byte k-1. It
// returns the schedule for chaining.
func (s CrashSchedule) Tear(i, k int) CrashSchedule {
	if s.Torn == nil {
		s.Torn = make(map[int]int)
	}
	s.Torn[i] = k
	return s
}
