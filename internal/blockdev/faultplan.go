package blockdev

import (
	"fmt"
	"math/rand"

	"srccache/internal/vtime"
)

// FaultPlan wraps a Device with the fault models commodity SSD arrays
// actually exhibit, beyond the original fail-stop Faulty wrapper:
//
//   - fail-stop: immediate (Fail) or scheduled at a virtual-time instant
//     (FailAt); every operation then returns ErrDeviceFailed until Repair.
//   - latent sector errors: individual pages marked unreadable
//     (InjectUnreadable) make any read covering them return ErrUnreadable.
//     Rewriting or trimming the page clears the mark, which is how a
//     parity-repair write-back "reallocates" the sector.
//   - transient errors: the next N submissions fail with ErrTransient
//     (InjectTransient) and then succeed — the retryable hiccups an error
//     budget counts. A seeded probability (SetTransientProb) injects them
//     randomly.
//   - fail-slow: a latency multiplier on Submit and Flush (SetSlowdown)
//     models a degraded-but-working drive.
//   - silent corruption: a seeded probability (SetCorruptProb) corrupts one
//     page of a completed write via the content store, exercising the
//     checksum/scrub machinery.
//
// Every probabilistic decision draws from the injected *rand.Rand, so a
// fault sequence is a pure function of the seed and the submission order —
// the same determinism contract the rest of the simulation obeys. A nil rng
// disables the probabilistic features; the explicit injections still work.
type FaultPlan struct {
	inner Device
	rng   *rand.Rand

	failed    bool
	failAt    vtime.Time
	failAtSet bool

	slowdown      float64
	transientLeft int
	transientProb float64
	corruptProb   float64
	unreadable    map[int64]struct{}

	counts FaultCounts
}

// FaultCounts tallies the faults a FaultPlan has injected.
type FaultCounts struct {
	Transient  int64 // submissions failed with ErrTransient
	Unreadable int64 // reads failed with ErrUnreadable
	Corrupted  int64 // pages silently corrupted after a write
}

var _ Device = (*FaultPlan)(nil)

// NewFaultPlan wraps dev. rng drives the probabilistic fault models and may
// be nil when only explicit injections (Fail, FailAt, InjectUnreadable,
// InjectTransient, SetSlowdown) are used.
func NewFaultPlan(dev Device, rng *rand.Rand) *FaultPlan {
	return &FaultPlan{inner: dev, rng: rng, unreadable: make(map[int64]struct{})}
}

// Fail makes subsequent operations error with ErrDeviceFailed.
func (f *FaultPlan) Fail() { f.failed = true }

// FailAt schedules a fail-stop: the first operation arriving at or after t
// fails the device.
func (f *FaultPlan) FailAt(t vtime.Time) {
	f.failAt = t
	f.failAtSet = true
}

// Repair restores service after a fail-stop (explicit or scheduled).
// Content of the underlying device is retained; callers that model drive
// replacement should also reset content.
func (f *FaultPlan) Repair() {
	f.failed = false
	f.failAtSet = false
}

// Failed reports whether the device is currently failed.
func (f *FaultPlan) Failed() bool { return f.failed }

// SetSlowdown sets the fail-slow latency multiplier applied to Submit and
// Flush service times (values below 1 mean healthy speed).
func (f *FaultPlan) SetSlowdown(factor float64) {
	if factor < 1 {
		factor = 1
	}
	f.slowdown = factor
}

// InjectUnreadable marks pages (by page index) as latent sector errors:
// reads covering them fail with ErrUnreadable until they are rewritten or
// trimmed.
func (f *FaultPlan) InjectUnreadable(pages ...int64) {
	for _, p := range pages {
		f.unreadable[p] = struct{}{}
	}
}

// UnreadablePages reports how many latent sector errors remain outstanding.
func (f *FaultPlan) UnreadablePages() int { return len(f.unreadable) }

// InjectTransient makes the next n submissions fail with ErrTransient.
func (f *FaultPlan) InjectTransient(n int) { f.transientLeft += n }

// PendingTransient reports how many explicitly injected transient faults
// have not yet been consumed by submissions.
func (f *FaultPlan) PendingTransient() int { return f.transientLeft }

// Unreadable reports whether the page currently carries a latent sector
// error.
func (f *FaultPlan) Unreadable(page int64) bool {
	_, bad := f.unreadable[page]
	return bad
}

// SetTransientProb makes each submission fail with ErrTransient with
// probability p. Requires an injected rng.
func (f *FaultPlan) SetTransientProb(p float64) {
	if p > 0 && f.rng == nil {
		panic("blockdev: FaultPlan.SetTransientProb requires a seeded rng")
	}
	f.transientProb = p
}

// SetCorruptProb makes each completed write silently corrupt one random
// page it covered with probability p. Requires an injected rng.
func (f *FaultPlan) SetCorruptProb(p float64) {
	if p > 0 && f.rng == nil {
		panic("blockdev: FaultPlan.SetCorruptProb requires a seeded rng")
	}
	f.corruptProb = p
}

// Counts reports the faults injected so far.
func (f *FaultPlan) Counts() FaultCounts { return f.counts }

// stretch applies the fail-slow multiplier to a service interval.
func (f *FaultPlan) stretch(at, done vtime.Time) vtime.Time {
	if f.slowdown <= 1 || done <= at {
		return done
	}
	return at.Add(vtime.Duration(float64(done.Sub(at)) * f.slowdown))
}

// Submit forwards to the wrapped device, applying the fault plan. A
// malformed request is rejected before any fault state is consumed, so an
// invalid call cannot perturb the deterministic fault sequence.
func (f *FaultPlan) Submit(at vtime.Time, req Request) (vtime.Time, error) {
	if err := req.Validate(f.inner.Capacity()); err != nil {
		return at, err
	}
	if f.failAtSet && at >= f.failAt {
		f.failed = true
		f.failAtSet = false
	}
	if f.failed {
		return at, ErrDeviceFailed
	}
	if f.transientLeft > 0 {
		f.transientLeft--
		f.counts.Transient++
		return at, fmt.Errorf("%w: injected (%v)", ErrTransient, req.Op)
	}
	if f.transientProb > 0 && f.rng.Float64() < f.transientProb {
		f.counts.Transient++
		return at, fmt.Errorf("%w: probabilistic (%v)", ErrTransient, req.Op)
	}
	first := req.Off / PageSize
	switch req.Op {
	case OpRead:
		if len(f.unreadable) > 0 {
			for p := first; p < first+req.Pages(); p++ {
				if _, bad := f.unreadable[p]; bad {
					f.counts.Unreadable++
					return at, fmt.Errorf("%w: page %d", ErrUnreadable, p)
				}
			}
		}
	case OpWrite, OpTrim:
		// Rewriting (or erasing) a latent-error sector reallocates it.
		if len(f.unreadable) > 0 {
			for p := first; p < first+req.Pages(); p++ {
				delete(f.unreadable, p)
			}
		}
	}
	done, err := f.inner.Submit(at, req)
	if err != nil {
		return done, err
	}
	if req.Op == OpWrite && f.corruptProb > 0 && f.rng.Float64() < f.corruptProb {
		page := first + f.rng.Int63n(req.Pages())
		if cerr := f.inner.Content().Corrupt(page); cerr != nil {
			return done, cerr
		}
		f.counts.Corrupted++
	}
	return f.stretch(at, done), nil
}

// Flush forwards to the wrapped device unless failed, applying the
// fail-slow multiplier.
func (f *FaultPlan) Flush(at vtime.Time) (vtime.Time, error) {
	if f.failAtSet && at >= f.failAt {
		f.failed = true
		f.failAtSet = false
	}
	if f.failed {
		return at, ErrDeviceFailed
	}
	done, err := f.inner.Flush(at)
	if err != nil {
		return done, err
	}
	return f.stretch(at, done), nil
}

// Capacity reports the wrapped device's capacity.
func (f *FaultPlan) Capacity() int64 { return f.inner.Capacity() }

// Stats reports the wrapped device's statistics.
func (f *FaultPlan) Stats() *Stats { return f.inner.Stats() }

// Content exposes the wrapped device's content store.
func (f *FaultPlan) Content() *Content { return f.inner.Content() }
