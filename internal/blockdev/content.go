package blockdev

import (
	"fmt"
	"sort"
)

// Content models what a device durably stores, independent of timing. Pages
// are addressed by index (byte offset / PageSize). Each page holds a Tag;
// pages that carry real serialized metadata (the SRC segment summaries) may
// additionally hold a blob of bytes.
//
// Writes land in a volatile region first. FlushContent commits everything
// written so far; Crash discards the volatile region, reverting each dirty
// page to its last committed value — the simulation's model of a power
// failure with a volatile device write cache.
type Content struct {
	pages int64

	tags  map[int64]Tag
	blobs map[int64][]byte

	// shadow* hold the committed value of pages dirtied since the last
	// flush, so Crash can revert them. A missing entry with presence in
	// dirty means the page was previously unwritten.
	shadowTags  map[int64]Tag
	shadowBlobs map[int64][]byte
	dirty       map[int64]struct{}

	// shadowCorrupt records, for each dirtied page, whether the committed
	// copy carried a corruption mark: a crash reverts to that copy, so the
	// mark must come back with it, while corruption struck after the dirtying
	// write hit data that never committed and vanishes with it.
	shadowCorrupt map[int64]bool

	corrupted map[int64]struct{}

	// log is the ordered sequence of volatile writes since the last flush.
	// CrashPartial replays an arbitrary subset of it over the committed
	// state; FlushContent (and so Crash) resets it.
	log []writeEntry
}

// WriteKind labels one entry of the volatile write log.
type WriteKind uint8

const (
	// WriteTagKind is a single-page tag write.
	WriteTagKind WriteKind = iota + 1
	// WriteBlobKind is a single-page metadata blob write.
	WriteBlobKind
	// WriteTrimKind is a multi-page trim.
	WriteTrimKind
)

func (k WriteKind) String() string {
	switch k {
	case WriteTagKind:
		return "tag"
	case WriteBlobKind:
		return "blob"
	case WriteTrimKind:
		return "trim"
	}
	return "unknown"
}

// writeEntry is one volatile write. Blob slices are the same immutable
// backing arrays stored in the blobs map, so the log adds no copies.
type writeEntry struct {
	kind  WriteKind
	page  int64
	tag   Tag
	blob  []byte
	count int64 // trim page count
}

// WriteRecord describes one write-log entry for schedule construction and
// violation reports.
type WriteRecord struct {
	Kind  WriteKind
	Page  int64
	Count int64 // pages trimmed (WriteTrimKind only)
	Len   int   // blob length in bytes (WriteBlobKind only)
}

// NewContent creates a content store for a device with the given capacity in
// bytes.
func NewContent(capacity int64) *Content {
	return &Content{
		pages:         capacity / PageSize,
		tags:          make(map[int64]Tag),
		blobs:         make(map[int64][]byte),
		shadowTags:    make(map[int64]Tag),
		shadowBlobs:   make(map[int64][]byte),
		dirty:         make(map[int64]struct{}),
		shadowCorrupt: make(map[int64]bool),
		corrupted:     make(map[int64]struct{}),
	}
}

// Clone returns an independent copy of the store, including its volatile
// region and write log. Blob backing arrays are shared: they are immutable
// (every write installs a fresh slice), so the clone is cheap and safe.
func (c *Content) Clone() *Content {
	cp := &Content{
		pages:         c.pages,
		tags:          make(map[int64]Tag, len(c.tags)),
		blobs:         make(map[int64][]byte, len(c.blobs)),
		shadowTags:    make(map[int64]Tag, len(c.shadowTags)),
		shadowBlobs:   make(map[int64][]byte, len(c.shadowBlobs)),
		dirty:         make(map[int64]struct{}, len(c.dirty)),
		shadowCorrupt: make(map[int64]bool, len(c.shadowCorrupt)),
		corrupted:     make(map[int64]struct{}, len(c.corrupted)),
		log:           make([]writeEntry, len(c.log)),
	}
	for p, t := range c.tags {
		cp.tags[p] = t
	}
	for p, b := range c.blobs {
		cp.blobs[p] = b
	}
	for p, t := range c.shadowTags {
		cp.shadowTags[p] = t
	}
	for p, b := range c.shadowBlobs {
		cp.shadowBlobs[p] = b
	}
	for p := range c.dirty {
		cp.dirty[p] = struct{}{}
	}
	for p, was := range c.shadowCorrupt {
		cp.shadowCorrupt[p] = was
	}
	for p := range c.corrupted {
		cp.corrupted[p] = struct{}{}
	}
	copy(cp.log, c.log)
	return cp
}

// Pages reports the number of pages the store covers.
func (c *Content) Pages() int64 { return c.pages }

func (c *Content) check(page int64) error {
	if page < 0 || page >= c.pages {
		return fmt.Errorf("%w: page %d of %d", ErrOutOfRange, page, c.pages)
	}
	return nil
}

// remember snapshots the committed state of page before its first
// modification since the last flush.
func (c *Content) remember(page int64) {
	if _, ok := c.dirty[page]; ok {
		return
	}
	c.dirty[page] = struct{}{}
	if t, ok := c.tags[page]; ok {
		c.shadowTags[page] = t
	}
	if b, ok := c.blobs[page]; ok {
		c.shadowBlobs[page] = b
	}
	_, bad := c.corrupted[page]
	c.shadowCorrupt[page] = bad
}

// WriteTag records the tag for a page (volatile until FlushContent).
func (c *Content) WriteTag(page int64, t Tag) error {
	if err := c.check(page); err != nil {
		return err
	}
	c.remember(page)
	c.log = append(c.log, writeEntry{kind: WriteTagKind, page: page, tag: t})
	delete(c.corrupted, page)
	if t.IsZero() {
		delete(c.tags, page)
	} else {
		c.tags[page] = t
	}
	delete(c.blobs, page)
	return nil
}

// WriteBlob records serialized metadata bytes for a page (volatile until
// FlushContent). The blob is copied.
func (c *Content) WriteBlob(page int64, b []byte) error {
	if err := c.check(page); err != nil {
		return err
	}
	if int64(len(b)) > PageSize {
		return fmt.Errorf("%w: blob of %d bytes exceeds page size", ErrBadRequest, len(b))
	}
	c.remember(page)
	delete(c.corrupted, page)
	cp := make([]byte, len(b))
	copy(cp, b)
	c.log = append(c.log, writeEntry{kind: WriteBlobKind, page: page, blob: cp})
	c.blobs[page] = cp
	delete(c.tags, page)
	return nil
}

// ReadTag returns the tag stored at page. Corrupted pages return a perturbed
// tag, modelling silent data corruption the checksum layer must catch.
func (c *Content) ReadTag(page int64) (Tag, error) {
	if err := c.check(page); err != nil {
		return ZeroTag, err
	}
	t := c.tags[page]
	if _, bad := c.corrupted[page]; bad {
		t.Lo ^= 0xdeadbeef
		t.Hi ^= 1
	}
	return t, nil
}

// ReadBlob returns the metadata blob stored at page, or nil if the page
// holds no blob. Corrupted blobs have their first byte flipped.
func (c *Content) ReadBlob(page int64) ([]byte, error) {
	if err := c.check(page); err != nil {
		return nil, err
	}
	b, ok := c.blobs[page]
	if !ok {
		return nil, nil
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	if _, bad := c.corrupted[page]; bad && len(cp) > 0 {
		cp[0] ^= 0xff
	}
	return cp, nil
}

// Trim erases a range of pages (volatile until FlushContent).
func (c *Content) Trim(page, count int64) error {
	if err := c.check(page); err != nil {
		return err
	}
	if count < 0 || page+count > c.pages {
		return fmt.Errorf("%w: trim [%d,%d)", ErrOutOfRange, page, page+count)
	}
	c.log = append(c.log, writeEntry{kind: WriteTrimKind, page: page, count: count})
	for p := page; p < page+count; p++ {
		c.remember(p)
		delete(c.tags, p)
		delete(c.blobs, p)
		delete(c.corrupted, p)
	}
	return nil
}

// FlushContent commits all volatile writes; after it returns, Crash no
// longer reverts them and the write log starts over.
func (c *Content) FlushContent() {
	clear(c.dirty)
	clear(c.shadowTags)
	clear(c.shadowBlobs)
	clear(c.shadowCorrupt)
	c.log = c.log[:0]
}

// Crash discards all volatile writes, reverting dirtied pages to their last
// committed contents (corruption marks included: a mark on the committed
// copy returns with it, one acquired after dirtying vanishes). It models
// power failure with a volatile write cache. Pages revert in ascending order
// so the walk is reproducible under a debugger even though the reverts
// commute.
func (c *Content) Crash() {
	pages := make([]int64, 0, len(c.dirty))
	for page := range c.dirty {
		pages = append(pages, page)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, page := range pages {
		if t, ok := c.shadowTags[page]; ok {
			c.tags[page] = t
		} else {
			delete(c.tags, page)
		}
		if b, ok := c.shadowBlobs[page]; ok {
			c.blobs[page] = b
		} else {
			delete(c.blobs, page)
		}
		if c.shadowCorrupt[page] {
			c.corrupted[page] = struct{}{}
		} else {
			delete(c.corrupted, page)
		}
	}
	c.FlushContent()
}

// WriteLogLen reports the number of volatile writes since the last flush.
func (c *Content) WriteLogLen() int { return len(c.log) }

// WriteLog describes the volatile write log, oldest first, for schedule
// construction and violation reports.
func (c *Content) WriteLog() []WriteRecord {
	recs := make([]WriteRecord, len(c.log))
	for i, e := range c.log {
		recs[i] = WriteRecord{Kind: e.kind, Page: e.page, Count: e.count, Len: len(e.blob)}
	}
	return recs
}

// CrashPartial models a power failure in which only a subset of the volatile
// write log reached media: it reverts to the committed state, then replays
// the scheduled entries in log order and commits the result. A torn blob
// write persists only its first k bytes, with the rest of the page still
// holding whatever the committed copy had there — the partially-programmed
// summary page whose CRC the recovery scan must catch. Crash is equivalent
// to CrashPartial of the empty schedule.
func (c *Content) CrashPartial(s CrashSchedule) error {
	if err := s.validate(len(c.log)); err != nil {
		return err
	}
	kept := make([]writeEntry, 0, len(c.log))
	for i, e := range c.log {
		if !s.Keep[i] {
			continue
		}
		if k, torn := s.Torn[i]; torn {
			if e.kind != WriteBlobKind {
				return fmt.Errorf("%w: torn write %d is %s, not a blob", ErrBadRequest, i, e.kind)
			}
			if k < 0 || k >= len(e.blob) {
				return fmt.Errorf("%w: torn write %d at byte %d of %d", ErrBadRequest, i, k, len(e.blob))
			}
			e.blob = e.blob[:k]
		}
		kept = append(kept, e)
	}
	c.Crash()
	for _, e := range kept {
		var err error
		switch e.kind {
		case WriteTagKind:
			err = c.WriteTag(e.page, e.tag)
		case WriteBlobKind:
			err = c.writeTornBlob(e.page, e.blob)
		case WriteTrimKind:
			err = c.Trim(e.page, e.count)
		}
		if err != nil {
			return err
		}
	}
	c.FlushContent()
	return nil
}

// writeTornBlob persists prefix over the committed blob at page, keeping the
// committed bytes beyond len(prefix) if the old blob was longer. For untorn
// entries prefix is the full blob and this is a plain WriteBlob.
func (c *Content) writeTornBlob(page int64, prefix []byte) error {
	old := c.blobs[page]
	if len(old) <= len(prefix) {
		return c.WriteBlob(page, prefix)
	}
	merged := make([]byte, len(old))
	copy(merged, prefix)
	copy(merged[len(prefix):], old[len(prefix):])
	return c.WriteBlob(page, merged)
}

// Corrupt marks a page as silently corrupted: subsequent reads return
// perturbed content until the page is rewritten or trimmed.
func (c *Content) Corrupt(page int64) error {
	if err := c.check(page); err != nil {
		return err
	}
	c.corrupted[page] = struct{}{}
	return nil
}

// DirtyPages reports how many pages have uncommitted writes.
func (c *Content) DirtyPages() int { return len(c.dirty) }
