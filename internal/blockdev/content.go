package blockdev

import (
	"fmt"
	"sort"
)

// Content models what a device durably stores, independent of timing. Pages
// are addressed by index (byte offset / PageSize). Each page holds a Tag;
// pages that carry real serialized metadata (the SRC segment summaries) may
// additionally hold a blob of bytes.
//
// Writes land in a volatile region first. FlushContent commits everything
// written so far; Crash discards the volatile region, reverting each dirty
// page to its last committed value — the simulation's model of a power
// failure with a volatile device write cache.
type Content struct {
	pages int64

	tags  map[int64]Tag
	blobs map[int64][]byte

	// shadow* hold the committed value of pages dirtied since the last
	// flush, so Crash can revert them. A missing entry with presence in
	// dirty means the page was previously unwritten.
	shadowTags  map[int64]Tag
	shadowBlobs map[int64][]byte
	dirty       map[int64]struct{}

	corrupted map[int64]struct{}
}

// NewContent creates a content store for a device with the given capacity in
// bytes.
func NewContent(capacity int64) *Content {
	return &Content{
		pages:       capacity / PageSize,
		tags:        make(map[int64]Tag),
		blobs:       make(map[int64][]byte),
		shadowTags:  make(map[int64]Tag),
		shadowBlobs: make(map[int64][]byte),
		dirty:       make(map[int64]struct{}),
		corrupted:   make(map[int64]struct{}),
	}
}

// Pages reports the number of pages the store covers.
func (c *Content) Pages() int64 { return c.pages }

func (c *Content) check(page int64) error {
	if page < 0 || page >= c.pages {
		return fmt.Errorf("%w: page %d of %d", ErrOutOfRange, page, c.pages)
	}
	return nil
}

// remember snapshots the committed state of page before its first
// modification since the last flush.
func (c *Content) remember(page int64) {
	if _, ok := c.dirty[page]; ok {
		return
	}
	c.dirty[page] = struct{}{}
	if t, ok := c.tags[page]; ok {
		c.shadowTags[page] = t
	}
	if b, ok := c.blobs[page]; ok {
		c.shadowBlobs[page] = b
	}
}

// WriteTag records the tag for a page (volatile until FlushContent).
func (c *Content) WriteTag(page int64, t Tag) error {
	if err := c.check(page); err != nil {
		return err
	}
	c.remember(page)
	delete(c.corrupted, page)
	if t.IsZero() {
		delete(c.tags, page)
	} else {
		c.tags[page] = t
	}
	delete(c.blobs, page)
	return nil
}

// WriteBlob records serialized metadata bytes for a page (volatile until
// FlushContent). The blob is copied.
func (c *Content) WriteBlob(page int64, b []byte) error {
	if err := c.check(page); err != nil {
		return err
	}
	if int64(len(b)) > PageSize {
		return fmt.Errorf("%w: blob of %d bytes exceeds page size", ErrBadRequest, len(b))
	}
	c.remember(page)
	delete(c.corrupted, page)
	cp := make([]byte, len(b))
	copy(cp, b)
	c.blobs[page] = cp
	delete(c.tags, page)
	return nil
}

// ReadTag returns the tag stored at page. Corrupted pages return a perturbed
// tag, modelling silent data corruption the checksum layer must catch.
func (c *Content) ReadTag(page int64) (Tag, error) {
	if err := c.check(page); err != nil {
		return ZeroTag, err
	}
	t := c.tags[page]
	if _, bad := c.corrupted[page]; bad {
		t.Lo ^= 0xdeadbeef
		t.Hi ^= 1
	}
	return t, nil
}

// ReadBlob returns the metadata blob stored at page, or nil if the page
// holds no blob. Corrupted blobs have their first byte flipped.
func (c *Content) ReadBlob(page int64) ([]byte, error) {
	if err := c.check(page); err != nil {
		return nil, err
	}
	b, ok := c.blobs[page]
	if !ok {
		return nil, nil
	}
	cp := make([]byte, len(b))
	copy(cp, b)
	if _, bad := c.corrupted[page]; bad && len(cp) > 0 {
		cp[0] ^= 0xff
	}
	return cp, nil
}

// Trim erases a range of pages (volatile until FlushContent).
func (c *Content) Trim(page, count int64) error {
	if err := c.check(page); err != nil {
		return err
	}
	if count < 0 || page+count > c.pages {
		return fmt.Errorf("%w: trim [%d,%d)", ErrOutOfRange, page, page+count)
	}
	for p := page; p < page+count; p++ {
		c.remember(p)
		delete(c.tags, p)
		delete(c.blobs, p)
		delete(c.corrupted, p)
	}
	return nil
}

// FlushContent commits all volatile writes; after it returns, Crash no
// longer reverts them.
func (c *Content) FlushContent() {
	clear(c.dirty)
	clear(c.shadowTags)
	clear(c.shadowBlobs)
}

// Crash discards all volatile writes, reverting dirtied pages to their last
// committed contents. It models power failure with a volatile write cache.
// Pages revert in ascending order so the walk is reproducible under a
// debugger even though the reverts commute.
func (c *Content) Crash() {
	pages := make([]int64, 0, len(c.dirty))
	for page := range c.dirty {
		pages = append(pages, page)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	for _, page := range pages {
		if t, ok := c.shadowTags[page]; ok {
			c.tags[page] = t
		} else {
			delete(c.tags, page)
		}
		if b, ok := c.shadowBlobs[page]; ok {
			c.blobs[page] = b
		} else {
			delete(c.blobs, page)
		}
	}
	c.FlushContent()
}

// Corrupt marks a page as silently corrupted: subsequent reads return
// perturbed content until the page is rewritten or trimmed.
func (c *Content) Corrupt(page int64) error {
	if err := c.check(page); err != nil {
		return err
	}
	c.corrupted[page] = struct{}{}
	return nil
}

// DirtyPages reports how many pages have uncommitted writes.
func (c *Content) DirtyPages() int { return len(c.dirty) }
