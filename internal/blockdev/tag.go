package blockdev

import "fmt"

// Tag is a 16-byte stand-in for the content of one 4 KB page. The simulation
// stores tags instead of payload bytes: a tag identifies the logical block
// and version a page holds plus a checksum of the (synthetic) content, which
// is enough to verify mappings, detect silent corruption, and — because tags
// XOR component-wise — to compute and verify RAID parity reconstruction.
type Tag struct {
	Hi uint64
	Lo uint64
}

// ZeroTag is the content of a never-written or trimmed page.
var ZeroTag = Tag{}

// IsZero reports whether the tag is the erased/never-written value.
func (t Tag) IsZero() bool { return t == ZeroTag }

// XOR combines two tags field-wise, mirroring byte-wise XOR of page
// contents. XOR of data tags yields the parity tag; XOR-ing the parity with
// all surviving data tags reconstructs a lost tag.
func (t Tag) XOR(o Tag) Tag { return Tag{Hi: t.Hi ^ o.Hi, Lo: t.Lo ^ o.Lo} }

// String renders the tag compactly for test failures.
func (t Tag) String() string { return fmt.Sprintf("tag(%016x%016x)", t.Hi, t.Lo) }

// mix64 is SplitMix64's finalizer; it gives tags checksum-quality diffusion
// so that distinct (lba, version) pairs virtually never collide.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// DataTag deterministically derives the content tag for version v of logical
// block lba. The same (lba, version) always produces the same tag, which is
// how tests and the recovery path verify that a read returned the content
// that was written.
func DataTag(lba int64, version uint64) Tag {
	return Tag{
		Hi: mix64(uint64(lba)*0x100000001b3 + version),
		Lo: mix64(version*0x9e3779b97f4a7c15 ^ uint64(lba)),
	}
}

// ParityTag folds a set of tags into their parity.
func ParityTag(tags ...Tag) Tag {
	var p Tag
	for _, t := range tags {
		p = p.XOR(t)
	}
	return p
}
