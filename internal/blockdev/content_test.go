package blockdev

import (
	"bytes"
	"math/rand"
	"testing"
)

func newTestContent(t *testing.T) *Content {
	t.Helper()
	return NewContent(64 * PageSize)
}

func writeTag(t *testing.T, c *Content, page int64, tag Tag) {
	t.Helper()
	if err := c.WriteTag(page, tag); err != nil {
		t.Fatalf("WriteTag(%d): %v", page, err)
	}
}

func writeBlob(t *testing.T, c *Content, page int64, b []byte) {
	t.Helper()
	if err := c.WriteBlob(page, b); err != nil {
		t.Fatalf("WriteBlob(%d): %v", page, err)
	}
}

func readTag(t *testing.T, c *Content, page int64) Tag {
	t.Helper()
	tag, err := c.ReadTag(page)
	if err != nil {
		t.Fatalf("ReadTag(%d): %v", page, err)
	}
	return tag
}

func readBlob(t *testing.T, c *Content, page int64) []byte {
	t.Helper()
	b, err := c.ReadBlob(page)
	if err != nil {
		t.Fatalf("ReadBlob(%d): %v", page, err)
	}
	return b
}

// TestCrashPartialPrefix checks that prefix schedules persist exactly the
// first k writes, in order, and that the drop-all and keep-all extremes
// match Crash() and FlushContent() respectively.
func TestCrashPartialPrefix(t *testing.T) {
	mk := func() *Content {
		c := newTestContent(t)
		writeTag(t, c, 0, Tag{Hi: 9, Lo: 9})
		c.FlushContent()
		// Volatile window: tag 1, tag 2, blob 3, trim of [0,2).
		writeTag(t, c, 1, Tag{Hi: 1, Lo: 1})
		writeTag(t, c, 2, Tag{Hi: 2, Lo: 2})
		writeBlob(t, c, 3, []byte("summary-blob"))
		if err := c.Trim(0, 2); err != nil {
			t.Fatalf("Trim: %v", err)
		}
		return c
	}

	c := mk()
	if got := c.WriteLogLen(); got != 4 {
		t.Fatalf("WriteLogLen = %d, want 4", got)
	}

	// Drop-all equals Crash.
	if err := c.CrashPartial(DropAllSchedule(4)); err != nil {
		t.Fatalf("CrashPartial(drop-all): %v", err)
	}
	if got := readTag(t, c, 0); got != (Tag{Hi: 9, Lo: 9}) {
		t.Fatalf("page 0 after drop-all = %v, want committed tag", got)
	}
	if got := readTag(t, c, 1); !got.IsZero() {
		t.Fatalf("page 1 after drop-all = %v, want zero", got)
	}
	if readBlob(t, c, 3) != nil {
		t.Fatal("page 3 blob survived drop-all crash")
	}

	// Keep-all equals a completed flush: trim wins over page 0's old tag.
	c = mk()
	if err := c.CrashPartial(KeepAllSchedule(4)); err != nil {
		t.Fatalf("CrashPartial(keep-all): %v", err)
	}
	if got := readTag(t, c, 0); !got.IsZero() {
		t.Fatalf("page 0 after keep-all = %v, want trimmed", got)
	}
	if got := readTag(t, c, 2); got != (Tag{Hi: 2, Lo: 2}) {
		t.Fatalf("page 2 after keep-all = %v", got)
	}
	if got := readBlob(t, c, 3); !bytes.Equal(got, []byte("summary-blob")) {
		t.Fatalf("page 3 blob after keep-all = %q", got)
	}
	if c.WriteLogLen() != 0 || c.DirtyPages() != 0 {
		t.Fatal("CrashPartial must leave the store committed with an empty log")
	}

	// Prefix of 3: the trim never happened, page 0 keeps its committed tag.
	c = mk()
	if err := c.CrashPartial(PrefixSchedule(4, 3)); err != nil {
		t.Fatalf("CrashPartial(prefix 3): %v", err)
	}
	if got := readTag(t, c, 0); got != (Tag{Hi: 9, Lo: 9}) {
		t.Fatalf("page 0 after prefix-3 = %v, want committed tag", got)
	}
	if got := readTag(t, c, 1); got != (Tag{Hi: 1, Lo: 1}) {
		t.Fatalf("page 1 after prefix-3 = %v", got)
	}
	if got := readBlob(t, c, 3); !bytes.Equal(got, []byte("summary-blob")) {
		t.Fatalf("page 3 blob after prefix-3 = %q", got)
	}
}

// TestCrashPartialOmitOne drops a single mid-log write while later writes
// persist — the reorder-tier hazard a pure prefix model cannot express.
func TestCrashPartialOmitOne(t *testing.T) {
	c := newTestContent(t)
	writeTag(t, c, 1, Tag{Hi: 1, Lo: 1})
	writeTag(t, c, 2, Tag{Hi: 2, Lo: 2})
	writeTag(t, c, 3, Tag{Hi: 3, Lo: 3})
	if err := c.CrashPartial(OmitOneSchedule(3, 1)); err != nil {
		t.Fatalf("CrashPartial: %v", err)
	}
	if got := readTag(t, c, 1); got != (Tag{Hi: 1, Lo: 1}) {
		t.Fatalf("page 1 = %v, want kept", got)
	}
	if got := readTag(t, c, 2); !got.IsZero() {
		t.Fatalf("page 2 = %v, want omitted", got)
	}
	if got := readTag(t, c, 3); got != (Tag{Hi: 3, Lo: 3}) {
		t.Fatalf("page 3 = %v, want kept", got)
	}
}

// TestCrashPartialTornBlob persists a blob only through byte k-1: the tail
// keeps the committed copy's bytes, or is absent when the page held none.
func TestCrashPartialTornBlob(t *testing.T) {
	c := newTestContent(t)
	writeBlob(t, c, 5, []byte("OLD-OLD-OLD"))
	c.FlushContent()
	writeBlob(t, c, 5, []byte("new-new-new-long"))
	writeBlob(t, c, 6, []byte("fresh"))

	s := KeepAllSchedule(2).Tear(0, 4).Tear(1, 2)
	if err := c.CrashPartial(s); err != nil {
		t.Fatalf("CrashPartial: %v", err)
	}
	// Page 5: first 4 new bytes, then the committed copy's bytes 4..11; the
	// new write's bytes beyond the old length never reached media.
	if got := readBlob(t, c, 5); !bytes.Equal(got, []byte("new-OLD-OLD")) {
		t.Fatalf("torn blob over old = %q, want %q", got, "new-OLD-OLD")
	}
	// Page 6 had no committed blob: only the torn prefix exists.
	if got := readBlob(t, c, 6); !bytes.Equal(got, []byte("fr")) {
		t.Fatalf("torn blob over empty = %q, want %q", got, "fr")
	}
}

// TestCrashPartialSameSeedSameState pins determinism: two identical stores
// crashed with schedules drawn from equal seeds end up identical.
func TestCrashPartialSameSeedSameState(t *testing.T) {
	build := func() *Content {
		c := newTestContent(t)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 40; i++ {
			page := int64(rng.Intn(60))
			switch rng.Intn(3) {
			case 0:
				writeTag(t, c, page, Tag{Hi: uint64(i), Lo: rng.Uint64()})
			case 1:
				b := make([]byte, 8+rng.Intn(24))
				rng.Read(b)
				writeBlob(t, c, page, b)
			case 2:
				if err := c.Trim(page, int64(1+rng.Intn(3))); err != nil {
					t.Fatalf("Trim: %v", err)
				}
			}
		}
		return c
	}
	crash := func(c *Content) {
		s := SubsetSchedule(c.WriteLogLen(), rand.New(rand.NewSource(11)), 0.5)
		if err := c.CrashPartial(s); err != nil {
			t.Fatalf("CrashPartial: %v", err)
		}
	}
	a, b := build(), build()
	crash(a)
	crash(b)
	for p := int64(0); p < a.Pages(); p++ {
		ta, tb := readTag(t, a, p), readTag(t, b, p)
		if ta != tb {
			t.Fatalf("page %d: tags diverge (%v vs %v)", p, ta, tb)
		}
		if !bytes.Equal(readBlob(t, a, p), readBlob(t, b, p)) {
			t.Fatalf("page %d: blobs diverge", p)
		}
	}
}

// TestCloneIndependence checks a Clone neither sees nor causes subsequent
// mutation of the original, volatile log included.
func TestCloneIndependence(t *testing.T) {
	c := newTestContent(t)
	writeTag(t, c, 1, Tag{Hi: 1, Lo: 1})
	writeBlob(t, c, 2, []byte("blob"))
	cp := c.Clone()

	writeTag(t, c, 1, Tag{Hi: 99, Lo: 99})
	writeTag(t, c, 4, Tag{Hi: 4, Lo: 4})
	if got := readTag(t, cp, 1); got != (Tag{Hi: 1, Lo: 1}) {
		t.Fatalf("clone page 1 = %v after original mutated", got)
	}
	if cp.WriteLogLen() != 2 {
		t.Fatalf("clone log len = %d, want 2", cp.WriteLogLen())
	}
	// Crash the clone: it reverts its own volatile writes only.
	cp.Crash()
	if got := readTag(t, cp, 1); !got.IsZero() {
		t.Fatalf("clone page 1 after crash = %v, want zero", got)
	}
	if got := readTag(t, c, 1); got != (Tag{Hi: 99, Lo: 99}) {
		t.Fatalf("original page 1 = %v after clone crash", got)
	}
}

// TestCorruptCrashInteraction pins the satellite contract: a crash restores
// the corruption mark if and only if the corruption struck the committed
// copy the crash reverts to. Corruption of data that never committed
// vanishes with it.
func TestCorruptCrashInteraction(t *testing.T) {
	// Corrupt before dirtying: the committed copy is the corrupted one, so
	// crash brings the mark back even though the overwrite cleared it.
	c := newTestContent(t)
	writeTag(t, c, 3, Tag{Hi: 3, Lo: 3})
	c.FlushContent()
	if err := c.Corrupt(3); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	writeTag(t, c, 3, Tag{Hi: 30, Lo: 30}) // clears the mark, volatile
	if got := readTag(t, c, 3); got != (Tag{Hi: 30, Lo: 30}) {
		t.Fatalf("overwrite did not clear corruption: %v", got)
	}
	c.Crash()
	want := Tag{Hi: 3, Lo: 3}
	want.Lo ^= 0xdeadbeef
	want.Hi ^= 1
	if got := readTag(t, c, 3); got != want {
		t.Fatalf("crash lost the committed copy's corruption mark: got %v, want perturbed %v", got, want)
	}

	// Corrupt after dirtying: the corruption hit data that never committed,
	// so crash reverts to the clean committed copy, mark cleared.
	c = newTestContent(t)
	writeTag(t, c, 3, Tag{Hi: 3, Lo: 3})
	c.FlushContent()
	writeTag(t, c, 3, Tag{Hi: 30, Lo: 30})
	if err := c.Corrupt(3); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	c.Crash()
	if got := readTag(t, c, 3); got != (Tag{Hi: 3, Lo: 3}) {
		t.Fatalf("crash kept a corruption mark for never-committed data: %v", got)
	}

	// A write persisted by a partial crash is fresh media data: the mark
	// from the committed copy does not survive onto it.
	c = newTestContent(t)
	writeTag(t, c, 3, Tag{Hi: 3, Lo: 3})
	c.FlushContent()
	if err := c.Corrupt(3); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	writeTag(t, c, 3, Tag{Hi: 30, Lo: 30})
	if err := c.CrashPartial(KeepAllSchedule(1)); err != nil {
		t.Fatalf("CrashPartial: %v", err)
	}
	if got := readTag(t, c, 3); got != (Tag{Hi: 30, Lo: 30}) {
		t.Fatalf("persisted overwrite should read clean, got %v", got)
	}
}

// TestCrashScheduleValidate rejects schedules that disagree with the log.
func TestCrashScheduleValidate(t *testing.T) {
	c := newTestContent(t)
	writeTag(t, c, 1, Tag{Hi: 1, Lo: 1})
	writeBlob(t, c, 2, []byte("blob"))
	if err := c.CrashPartial(DropAllSchedule(5)); err == nil {
		t.Fatal("length-mismatched schedule accepted")
	}
	if err := c.CrashPartial(KeepAllSchedule(2).Tear(0, 1)); err == nil {
		t.Fatal("torn tag write accepted")
	}
	c = newTestContent(t)
	writeBlob(t, c, 2, []byte("blob"))
	if err := c.CrashPartial(KeepAllSchedule(1).Tear(0, 9)); err == nil {
		t.Fatal("torn point beyond blob accepted")
	}
	c = newTestContent(t)
	writeBlob(t, c, 2, []byte("blob"))
	s := DropAllSchedule(1).Tear(0, 1)
	if err := c.CrashPartial(s); err == nil {
		t.Fatal("torn mark on dropped write accepted")
	}
}
