// Package blockdev defines the block-device abstraction shared by every
// storage model in the repository: the request vocabulary, the virtual-time
// Device interface, per-device statistics, and a content layer (page tags and
// metadata blobs) with flush/crash semantics used for durability and
// integrity experiments.
//
// Timing and content are deliberately separated. Submit/Flush model *when*
// an operation completes in virtual time; the Content store models *what* is
// durably recorded. This split lets the simulation track correctness
// (mapping tables, parity reconstruction, crash recovery) without holding
// gigabytes of payload bytes in memory.
package blockdev

import (
	"errors"
	"fmt"

	"srccache/internal/vtime"
)

// PageSize is the unit of caching and addressing used throughout the system,
// matching the 4 KB block size used by the paper's prototype.
const PageSize int64 = 4096

// Op identifies the kind of a block request.
type Op uint8

// Supported operations.
const (
	OpRead Op = iota + 1
	OpWrite
	OpTrim
)

// String returns the conventional lower-case name of the operation.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTrim:
		return "trim"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Request is a single block-level I/O: an operation over [Off, Off+Len) in
// bytes. Offsets and lengths are expected to be PageSize-aligned; devices
// validate alignment and return ErrUnaligned otherwise.
type Request struct {
	Op  Op
	Off int64
	Len int64
}

// Pages reports the number of PageSize pages the request spans.
func (r Request) Pages() int64 { return r.Len / PageSize }

// String renders the request for logs and test failures.
func (r Request) String() string {
	return fmt.Sprintf("%s off=%d len=%d", r.Op, r.Off, r.Len)
}

// Validate checks alignment and bounds against a device of the given
// capacity.
func (r Request) Validate(capacity int64) error {
	switch {
	case r.Op != OpRead && r.Op != OpWrite && r.Op != OpTrim:
		return fmt.Errorf("%w: %v", ErrBadRequest, r.Op)
	case r.Off%PageSize != 0 || r.Len%PageSize != 0:
		return fmt.Errorf("%w: %v", ErrUnaligned, r)
	case r.Len <= 0:
		return fmt.Errorf("%w: non-positive length %d", ErrBadRequest, r.Len)
	case r.Off < 0 || r.Off+r.Len > capacity:
		return fmt.Errorf("%w: [%d,%d) outside capacity %d", ErrOutOfRange, r.Off, r.Off+r.Len, capacity)
	}
	return nil
}

// Errors shared by all device implementations.
var (
	// ErrBadRequest reports a malformed request (unknown op, bad length).
	ErrBadRequest = errors.New("blockdev: bad request")
	// ErrUnaligned reports an offset or length not aligned to PageSize.
	ErrUnaligned = errors.New("blockdev: unaligned request")
	// ErrOutOfRange reports a request outside the device capacity.
	ErrOutOfRange = errors.New("blockdev: request out of range")
	// ErrDeviceFailed reports that the device has been failed by fault
	// injection and cannot serve I/O.
	ErrDeviceFailed = errors.New("blockdev: device failed")
	// ErrUnreadable reports a latent sector error: the addressed range
	// covers a page that cannot be read until it is rewritten. Upper layers
	// repair it from redundancy and write it back.
	ErrUnreadable = errors.New("blockdev: unreadable page")
	// ErrTransient reports a transient device error; retrying the same
	// request (after a short delay) may succeed.
	ErrTransient = errors.New("blockdev: transient device error")
)

// Device is a block device operating in virtual time.
//
// Submit schedules the request as arriving at time at and returns the
// virtual time at which the device acknowledges completion. For writes the
// acknowledgement may precede durability (volatile write caches); Flush
// returns the time at which everything acknowledged so far is durable.
//
// Implementations must tolerate non-decreasing at values across calls; the
// closed-loop engine guarantees this ordering.
type Device interface {
	Submit(at vtime.Time, req Request) (vtime.Time, error)
	Flush(at vtime.Time) (vtime.Time, error)
	Capacity() int64
	Stats() *Stats
	Content() *Content
}

// Stats accumulates traffic counters for one device. All byte counts are
// host-visible (pre-FTL); device-internal amplification is tracked by the
// device models themselves.
type Stats struct {
	ReadOps    int64
	ReadBytes  int64
	WriteOps   int64
	WriteBytes int64
	TrimOps    int64
	TrimBytes  int64
	Flushes    int64
}

// Record tallies one request.
func (s *Stats) Record(req Request) {
	switch req.Op {
	case OpRead:
		s.ReadOps++
		s.ReadBytes += req.Len
	case OpWrite:
		s.WriteOps++
		s.WriteBytes += req.Len
	case OpTrim:
		s.TrimOps++
		s.TrimBytes += req.Len
	}
}

// Add accumulates o into s.
func (s *Stats) Add(o Stats) {
	s.ReadOps += o.ReadOps
	s.ReadBytes += o.ReadBytes
	s.WriteOps += o.WriteOps
	s.WriteBytes += o.WriteBytes
	s.TrimOps += o.TrimOps
	s.TrimBytes += o.TrimBytes
	s.Flushes += o.Flushes
}

// TotalBytes reports read plus write traffic.
func (s *Stats) TotalBytes() int64 { return s.ReadBytes + s.WriteBytes }
