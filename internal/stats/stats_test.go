package stats

import (
	"math/rand"
	"sort"
	"testing"

	"srccache/internal/vtime"
)

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Percentile(50) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not zero")
	}
}

func TestMeanAndMax(t *testing.T) {
	var h Histogram
	h.Observe(10 * vtime.Microsecond)
	h.Observe(30 * vtime.Microsecond)
	if h.Mean() != 20*vtime.Microsecond {
		t.Fatalf("mean %v", h.Mean())
	}
	if h.Max() != 30*vtime.Microsecond {
		t.Fatalf("max %v", h.Max())
	}
	if h.Count() != 2 {
		t.Fatalf("count %d", h.Count())
	}
}

func TestNegativeClampedToZero(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Percentile(100) != 0 {
		t.Fatalf("p100 %v", h.Percentile(100))
	}
}

func TestPercentileApproximation(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(7))
	samples := make([]vtime.Duration, 0, 10000)
	for i := 0; i < 10000; i++ {
		d := vtime.Duration(rng.Int63n(int64(50 * vtime.Millisecond)))
		samples = append(samples, d)
		h.Observe(d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{50, 90, 99} {
		exact := samples[int(p/100*float64(len(samples)))-1]
		got := h.Percentile(p)
		ratio := float64(got) / float64(exact)
		if ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("p%.0f = %v, exact %v (ratio %.3f)", p, got, exact, ratio)
		}
	}
	// Clamping of out-of-range percentiles.
	if h.Percentile(-5) == 0 && h.Count() > 0 {
		// p0 clamps to the first observation's bucket; just ensure ordering:
		if h.Percentile(-5) > h.Percentile(200) {
			t.Fatal("percentiles not monotone under clamping")
		}
	}
}

func TestPercentile100EqualsMax(t *testing.T) {
	// Adversarial inputs: observations far above their bucket's lower
	// bound, where the pre-fix Percentile(100) under-reported Max().
	cases := [][]vtime.Duration{
		{1<<40 + 12345},
		{1, 1<<30 + 7},
		{3, 5, 7, 1<<50 - 1},
		{1 << 20, 1<<20 + 1},
	}
	for _, vs := range cases {
		var h Histogram
		for _, v := range vs {
			h.Observe(v)
		}
		if got := h.Percentile(100); got != h.Max() {
			t.Fatalf("inputs %v: p100 = %v, max %v", vs, got, h.Max())
		}
		// Over-range percentiles clamp to the same exact maximum.
		if got := h.Percentile(200); got != h.Max() {
			t.Fatalf("inputs %v: p200 = %v, max %v", vs, got, h.Max())
		}
	}
	// The invariant holds at every prefix of a random stream.
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(vtime.Duration(rng.Int63()))
		if got := h.Percentile(100); got != h.Max() {
			t.Fatalf("after %d observations: p100 = %v, max %v", i+1, got, h.Max())
		}
	}
	// Sub-terminal percentiles still never exceed the maximum.
	if h.Percentile(99.9) > h.Max() {
		t.Fatal("p99.9 above max")
	}
}

func TestMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(vtime.Millisecond)
	b.Observe(3 * vtime.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("merged count %d", a.Count())
	}
	if a.Mean() != 2*vtime.Millisecond {
		t.Fatalf("merged mean %v", a.Mean())
	}
	if a.Max() != 3*vtime.Millisecond {
		t.Fatalf("merged max %v", a.Max())
	}
}

func TestBucketBoundsMonotone(t *testing.T) {
	prev := vtime.Duration(-1)
	for i := 0; i < 64*subBuckets; i++ {
		lb := lowerBound(i)
		if lb < prev {
			t.Fatalf("bucket %d lower bound %v < previous %v", i, lb, prev)
		}
		prev = lb
	}
	// Round trip: a value maps to a bucket whose bound does not exceed it.
	for _, d := range []vtime.Duration{0, 1, 15, 16, 17, 1000, 123456789} {
		b := bucketOf(d)
		if lowerBound(b) > d {
			t.Fatalf("value %v in bucket %d with lower bound %v", d, b, lowerBound(b))
		}
	}
}
