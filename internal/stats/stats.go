// Package stats provides a log-bucketed latency histogram with approximate
// percentiles, used by the benchmark runner for per-request latency
// reporting.
package stats

import (
	"math"
	"math/bits"

	"srccache/internal/vtime"
)

// subBuckets is the linear resolution within each power-of-two bucket;
// 16 sub-buckets bound the relative quantile error at ~6%.
const subBuckets = 16

// Histogram accumulates durations.
type Histogram struct {
	counts [64 * subBuckets]int64
	n      int64
	sum    vtime.Duration
	max    vtime.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d vtime.Duration) int {
	if d < 0 {
		d = 0
	}
	v := uint64(d)
	if v < subBuckets {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // floor(log2 v), >= 4 here
	shift := exp - 4         // high 4 bits after the leading 1
	sub := int((v >> uint(shift)) & (subBuckets - 1))
	return (exp-3)*subBuckets + sub
}

// lowerBound reports the smallest duration mapping to bucket i.
func lowerBound(i int) vtime.Duration {
	if i < subBuckets {
		return vtime.Duration(i)
	}
	exp := i/subBuckets + 3
	if exp >= 63 {
		return vtime.Duration(math.MaxInt64)
	}
	sub := i % subBuckets
	return vtime.Duration((1 << uint(exp)) | (uint64(sub) << uint(exp-4)))
}

// Observe records one duration.
func (h *Histogram) Observe(d vtime.Duration) {
	h.counts[bucketOf(d)]++
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Mean reports the average observation, or zero when empty.
func (h *Histogram) Mean() vtime.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / vtime.Duration(h.n)
}

// Max reports the largest observation.
func (h *Histogram) Max() vtime.Duration { return h.max }

// Percentile reports the approximate p-th percentile (p in [0,100]).
func (h *Histogram) Percentile(p float64) vtime.Duration {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(math.Ceil(p / 100 * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.n {
		// The terminal rank is the largest observation, which is tracked
		// exactly; a bucket lower bound would under-report it.
		return h.max
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i]
		if seen >= rank {
			return lowerBound(i)
		}
	}
	return h.max
}

// Summary is the fixed quantile digest the benchmark trajectory records:
// the latency shape of one run in six numbers.
type Summary struct {
	Count int64
	Mean  vtime.Duration
	P50   vtime.Duration
	P99   vtime.Duration
	P999  vtime.Duration
	Max   vtime.Duration
}

// Summarize extracts the digest.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Percentile(50),
		P99:   h.Percentile(99),
		P999:  h.Percentile(99.9),
		Max:   h.Max(),
	}
}

// Merge adds o's observations into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}
