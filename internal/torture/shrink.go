package torture

import "srccache/internal/blockdev"

// shrink minimizes a failing schedule tuple while it still provokes any
// violation at the same epoch and tier. Three passes, all deterministic:
// torn writes are first simplified to plain drops, then halves of each
// device's kept set are dropped ddmin-style, then single kept writes are
// dropped greedily to a fixed point. The result is the smallest persisted
// subset the checker still rejects — the debugging artifact a Violation
// reports.
func (r *cellRun) shrink(ep *epoch, scheds tuple, strict bool) (tuple, error) {
	fails := func(t tuple) (bool, error) {
		v, err := r.trialOnce(ep, t, strict, false)
		return v != nil, err
	}
	cur := cloneTuple(scheds)

	// Pass 1: a torn write that can become a plain drop is noise.
	for d := range cur {
		for idx := range cur[d].Torn {
			try := cloneTuple(cur)
			try[d].Keep[idx] = false
			delete(try[d].Torn, idx)
			if bad, err := fails(try); err != nil {
				return cur, err
			} else if bad {
				cur = try
			}
		}
	}

	// Pass 2: drop contiguous halves of each device's kept set while the
	// failure survives — cheap large-step reduction before the greedy pass.
	for d := range cur {
		for size := keptCount(cur[d]); size >= 2; size = keptCount(cur[d]) {
			reduced := false
			for half := 0; half < 2; half++ {
				try := cloneTuple(cur)
				dropKeptRange(&try[d], half*(size/2), size/2+half*(size%2))
				if bad, err := fails(try); err != nil {
					return cur, err
				} else if bad {
					cur = try
					reduced = true
					break
				}
			}
			if !reduced {
				break
			}
		}
	}

	// Pass 3: greedy single-write drops to a fixed point, bounded.
	for round := 0; round < 6; round++ {
		changed := false
		for d := range cur {
			for i := range cur[d].Keep {
				if !cur[d].Keep[i] {
					continue
				}
				try := cloneTuple(cur)
				try[d].Keep[i] = false
				delete(try[d].Torn, i)
				if bad, err := fails(try); err != nil {
					return cur, err
				} else if bad {
					cur = try
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return cur, nil
}

func keptCount(s blockdev.CrashSchedule) int {
	n := 0
	for _, k := range s.Keep {
		if k {
			n++
		}
	}
	return n
}

// dropKeptRange clears kept entries [from, from+n) counted over the kept
// subsequence only.
func dropKeptRange(s *blockdev.CrashSchedule, from, n int) {
	seen := 0
	for i, k := range s.Keep {
		if !k {
			continue
		}
		if seen >= from && seen < from+n {
			s.Keep[i] = false
			delete(s.Torn, i)
		}
		seen++
	}
}
