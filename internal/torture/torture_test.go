package torture

import (
	"fmt"
	"os"
	"reflect"
	"strconv"
	"testing"

	"srccache/internal/src"
)

// TestTortureMatrixClean is the headline check: the full configuration
// matrix — all four flush policies x PC/NPC x FIFO/Greedy — survives every
// enumerated crash schedule with zero invariant violations. Recovery on the
// real code discards torn state, keeps flush-durable state, and never
// resurrects or invents data.
func TestTortureMatrixClean(t *testing.T) {
	rep, err := Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if len(rep.Cells) != len(DefaultMatrix()) {
		t.Fatalf("ran %d cells, want %d", len(rep.Cells), len(DefaultMatrix()))
	}
	if rep.Trials < 500 {
		t.Fatalf("only %d trials over the matrix; enumeration looks broken", rep.Trials)
	}
	// The realized data-loss window must reflect the flush-policy tradeoff
	// (paper §4.1): never-flushing leaves a strictly wider window than
	// per-segment flushing under the same parity and victim policy.
	loss := make(map[Cell]int)
	for _, cs := range rep.Cells {
		loss[cs.Cell] = cs.MaxLossWindow
	}
	for _, p := range []src.ParityMode{src.PC, src.NPC} {
		for _, v := range []src.VictimPolicy{src.FIFO, src.Greedy} {
			seg := loss[Cell{Flush: src.FlushPerSegment, Parity: p, Victim: v}]
			nev := loss[Cell{Flush: src.FlushNever, Parity: p, Victim: v}]
			if nev <= seg {
				t.Errorf("%v/%v: FlushNever loss window %d not wider than FlushPerSegment's %d",
					p, v, nev, seg)
			}
		}
	}
}

// TestTortureSeeds widens the schedule sweep over extra seeds against the
// full matrix. TORTURE_SEEDS raises the count (CI's dedicated torture job
// sets it); the default keeps the tier-1 run fast. Seed 1 is covered by
// TestTortureMatrixClean, so the sweep starts at 2.
func TestTortureSeeds(t *testing.T) {
	seeds := int64(3)
	if v := os.Getenv("TORTURE_SEEDS"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("bad TORTURE_SEEDS %q", v)
		}
		seeds = n
	}
	for seed := int64(2); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			rep, err := Run(Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range rep.Violations {
				t.Errorf("violation: %s", v)
			}
		})
	}
}

// TestTortureDeterministic re-runs identical options and demands identical
// reports: same trials, same stats, same verdicts. The engine is a pure
// function of its seed, so any failure it ever reports is replayable.
func TestTortureDeterministic(t *testing.T) {
	o := Options{
		Seed: 42,
		Cells: []Cell{
			{Flush: src.FlushPerSegmentGroup, Parity: src.PC, Victim: src.FIFO},
			{Flush: src.FlushNever, Parity: src.NPC, Victim: src.Greedy},
		},
	}
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two runs with identical options diverged:\n%+v\n%+v", a, b)
	}
}

// TestTortureBitesOldestWins plants a recovery bug — the OldestWins hook
// inverts §4.1's newest-wins replay order, a silent-staleness bug no
// downstream safeguard catches — and asserts the checker reports exactly
// that violation, shrunk to the minimal schedule. The same cell and seed
// without the hook must be clean, so the bite is attributable to the
// planted bug alone.
func TestTortureBitesOldestWins(t *testing.T) {
	cell := Cell{Flush: src.FlushPerSegmentGroup, Parity: src.PC, Victim: src.FIFO}
	o := Options{Seed: 1, Cells: []Cell{cell}}

	clean, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Violations) != 0 {
		t.Fatalf("control run without hooks is not clean: %v", clean.Violations)
	}

	o.Hooks = src.RecoveryHooks{OldestWins: true}
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 1 {
		t.Fatalf("want exactly one violation for the planted bug, got %d: %v",
			len(rep.Violations), rep.Violations)
	}
	v := rep.Violations[0]
	if v.Cell != cell || v.Seed != 1 {
		t.Errorf("violation attributed to %v seed %d, want %v seed 1", v.Cell, v.Seed, cell)
	}
	if v.Tier != tierBarrier {
		t.Errorf("tier %q, want %q: stale mappings must already fail under FIFO-legal crashes", v.Tier, tierBarrier)
	}
	// The stale mapping claims the newest version but points at an old
	// generation's slot, so verification of the recovered map fails loudly.
	if v.Invariant != "torn-discarded" {
		t.Errorf("invariant %q, want torn-discarded: %s", v.Invariant, v)
	}
	if len(v.Schedules) != numSSD {
		t.Fatalf("violation carries %d schedules, want %d", len(v.Schedules), numSSD)
	}
	// The bug corrupts recovery of committed state, so the shrinker must
	// reduce all the way to the empty (drop-everything) schedule: the
	// minimal reproduction needs no surviving volatile writes at all.
	for i, s := range v.Schedules {
		if keptCount(s) != 0 {
			t.Errorf("ssd %d shrunk schedule still keeps %d writes, want 0", i, keptCount(s))
		}
	}
}

// TestTortureParseHooksAbsorbed documents defense in depth: weakening the
// summary parse (no CRC, no generation pairing) does NOT produce checker
// violations, because two independent safeguards absorb every
// misapplication those hooks allow. Entries are applied from the MS
// summary only, and barrier-tier (FIFO-prefix) crashes cannot forge a
// generation-matching hybrid — the trim that would expose an old summary
// always precedes the reuse writes in the same device's log. Whatever the
// lenient parse does accept is then caught loudly by per-page tag
// verification or superseded by newest-wins replay. If this test ever
// starts failing, one of those second-line safeguards has been weakened.
func TestTortureParseHooksAbsorbed(t *testing.T) {
	o := Options{
		Seed: 1,
		Cells: []Cell{
			{Flush: src.FlushPerSegmentGroup, Parity: src.NPC, Victim: src.FIFO},
			{Flush: src.FlushPerSegment, Parity: src.PC, Victim: src.Greedy},
			{Flush: src.FlushNever, Parity: src.PC, Victim: src.FIFO},
		},
		Hooks: src.RecoveryHooks{SkipSummaryCRC: true, SkipGenerationCheck: true},
	}
	rep, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("parse hooks escaped the second-line safeguards: %s", v)
	}
}
