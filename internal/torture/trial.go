package torture

import (
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/src"
)

// Tier labels for Violation reporting.
const (
	tierBarrier = "barrier"
	tierReorder = "reorder"
)

// tuple is one crash schedule per SSD, applied simultaneously.
type tuple []blockdev.CrashSchedule

func cloneTuple(t tuple) tuple {
	out := make(tuple, len(t))
	for i, s := range t {
		out[i] = s.Clone()
	}
	return out
}

// trials enumerates and runs crash trials over every retained epoch, in
// epoch order. The first violation (shrunk) is returned along with the
// number of trials executed.
func (r *cellRun) trials() (*Violation, int, error) {
	total := 0
	for ei := range r.epochs {
		ep := &r.epochs[ei]
		for _, tr := range r.enumerate(ep) {
			total++
			viol, err := r.trialOnce(ep, tr.scheds, tr.strict, total%3 == 0)
			if err != nil {
				return nil, total, err
			}
			if viol == nil {
				continue
			}
			viol.Tier = tr.tier
			shrunk, err := r.shrink(ep, tr.scheds, tr.strict)
			if err != nil {
				return nil, total, err
			}
			viol.Schedules = shrunk
			return viol, total, nil
		}
	}
	return nil, total, nil
}

// plannedTrial pairs a schedule tuple with its obligation tier.
type plannedTrial struct {
	scheds tuple
	strict bool
	tier   string
}

// enumerate builds the epoch's trial plan: structured barrier-tier
// schedules (drop-all, keep-all, staggered, seeded prefixes, one torn
// tail), then reorder-tier subsets and single-write omissions. FlushNever
// epochs run every schedule at detection grade only — the policy makes no
// durability promise to be strict about.
func (r *cellRun) enumerate(ep *epoch) []plannedTrial {
	strictOK := r.cell.Flush != src.FlushNever
	lens := make([]int, numSSD)
	for i, c := range ep.ssds {
		lens[i] = c.WriteLogLen()
	}
	var plan []plannedTrial
	addBarrier := func(t tuple) {
		plan = append(plan, plannedTrial{scheds: t, strict: strictOK, tier: tierBarrier})
	}
	addReorder := func(t tuple) {
		plan = append(plan, plannedTrial{scheds: t, strict: false, tier: tierReorder})
	}

	all := func(mk func(i int) blockdev.CrashSchedule) tuple {
		t := make(tuple, numSSD)
		for i := range t {
			t[i] = mk(i)
		}
		return t
	}
	// The two boundary schedules: a classic drop-everything crash and a
	// crash that lost nothing (power cut after the caches drained).
	addBarrier(all(func(i int) blockdev.CrashSchedule { return blockdev.DropAllSchedule(lens[i]) }))
	addBarrier(all(func(i int) blockdev.CrashSchedule { return blockdev.KeepAllSchedule(lens[i]) }))
	// Staggered: one column's cache drained fully, the rest lost all —
	// the worst skew a set of independent FIFO caches can produce.
	for _, keep := range []int{0, numSSD - 1} {
		keep := keep
		addBarrier(all(func(i int) blockdev.CrashSchedule {
			if i == keep {
				return blockdev.KeepAllSchedule(lens[i])
			}
			return blockdev.DropAllSchedule(lens[i])
		}))
	}
	// K seeded per-device prefix tuples.
	for k := 0; k < r.opts.SchedulesPerEpoch; k++ {
		addBarrier(all(func(i int) blockdev.CrashSchedule {
			return blockdev.PrefixSchedule(lens[i], r.rng.Intn(lens[i]+1))
		}))
	}
	// One torn-tail tuple: a prefix cut whose last persisted write is a
	// blob, truncated mid-blob — the torn summary parseSummary's CRC must
	// reject. Reused pages are preferred: tearing over an old committed
	// blob splices stale bytes onto a fresh header, the nastiest input.
	if t, ok := r.tornTuple(ep, lens); ok {
		addBarrier(t)
	}
	// Reorder tier: seeded subsets at two densities, then single-write
	// omissions at seeded positions.
	for k := 0; k < r.opts.SchedulesPerEpoch; k++ {
		p := 0.5 + 0.3*float64(k%2)
		addReorder(all(func(i int) blockdev.CrashSchedule {
			return blockdev.SubsetSchedule(lens[i], r.rng, p)
		}))
	}
	for k := 0; k < r.opts.SchedulesPerEpoch/2+1; k++ {
		t := all(func(i int) blockdev.CrashSchedule { return blockdev.KeepAllSchedule(lens[i]) })
		d := r.rng.Intn(numSSD)
		if lens[d] > 0 {
			t[d] = blockdev.OmitOneSchedule(lens[d], r.rng.Intn(lens[d]))
		}
		addReorder(t)
	}
	return plan
}

// tornTuple builds a barrier-tier tuple tearing one device's log at a blob
// write: that device persists a prefix ending in a truncated blob, the
// others persist seeded prefixes of their own.
func (r *cellRun) tornTuple(ep *epoch, lens []int) (tuple, bool) {
	// Prefer a blob written over an old committed blob (page reuse).
	bestDev, bestIdx, bestLen := -1, -1, 0
	reuse := false
	for d, c := range ep.ssds {
		committed := c.Clone()
		committed.Crash()
		for i, rec := range c.WriteLog() {
			if rec.Kind != blockdev.WriteBlobKind || rec.Len < 2 {
				continue
			}
			old, err := committed.ReadBlob(rec.Page)
			hasOld := err == nil && old != nil
			if bestDev < 0 || (hasOld && !reuse) {
				bestDev, bestIdx, bestLen, reuse = d, i, rec.Len, hasOld
			}
		}
	}
	if bestDev < 0 {
		return nil, false
	}
	t := make(tuple, numSSD)
	for i := range t {
		if i == bestDev {
			t[i] = blockdev.PrefixSchedule(lens[i], bestIdx+1).
				Tear(bestIdx, 1+r.rng.Intn(bestLen-1))
			continue
		}
		t[i] = blockdev.PrefixSchedule(lens[i], r.rng.Intn(lens[i]+1))
	}
	return t, true
}

// recoverTrial clones the epoch's device state, applies the schedule tuple
// and recovers a fresh cache over the crashed contents.
func (r *cellRun) recoverTrial(ep *epoch, scheds tuple) (*src.Cache, *blockdev.MemDevice, error) {
	devs := make([]blockdev.Device, numSSD)
	for i := range devs {
		cc := ep.ssds[i].Clone()
		if err := cc.CrashPartial(scheds[i]); err != nil {
			return nil, nil, fmt.Errorf("schedule for ssd %d: %w", i, err)
		}
		devs[i] = blockdev.NewMemDeviceWithContent(cc, 0)
	}
	prim := blockdev.NewMemDeviceWithContent(ep.prim.Clone(), 0)
	cache, err := src.New(src.Config{
		SSDs:           devs,
		Primary:        prim,
		EraseGroupSize: egs,
		SegmentColumn:  segCol,
		GC:             src.SelGC,
		Victim:         r.cell.Victim,
		Parity:         r.cell.Parity,
		Flush:          r.cell.Flush,
		TrackContent:   true,
		ErrorBudget:    1 << 30,
		Recovery:       r.opts.Hooks,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("assembling trial cache: %w", err)
	}
	if _, err := cache.Recover(); err != nil {
		// Recovery must degrade by discarding, never by failing: any
		// crash state a schedule can produce is a state a real power
		// failure can produce.
		return nil, nil, nil
	}
	return cache, prim, nil
}

// trialOnce runs one crash trial and checks the tier's invariants. It
// returns a Violation (without Tier/Schedules, the caller fills those), or
// nil if the state checks out. deep additionally runs the determinism and
// generation-monotonicity probes.
func (r *cellRun) trialOnce(ep *epoch, scheds tuple, strict bool, deep bool) (*Violation, error) {
	viol := func(inv, detail string) *Violation {
		return &Violation{
			Cell: r.cell, Seed: r.opts.Seed, Epoch: ep.idx, Op: ep.op,
			Invariant: inv, Detail: detail,
		}
	}
	cache, prim, err := r.recoverTrial(ep, scheds)
	if err != nil {
		return nil, err
	}
	if cache == nil {
		return viol("recovery-succeeds", "Recover returned an error on a crashed state"), nil
	}
	at := ep.at

	inSpan := 0
	for lba := int64(0); lba < span; lba++ {
		lv := ep.latest[lba]
		dv := ep.durable[lba]
		rv, cached := cache.CachedVersion(lba)
		if cached {
			inSpan++
		}
		if cached && rv > 0 {
			if rv > lv {
				return viol("no-phantom-data",
					fmt.Sprintf("page %d recovered at version %d, newer than acknowledged %d", lba, rv, lv)), nil
			}
			if strict && rv < dv {
				return viol("durable-after-flush",
					fmt.Sprintf("page %d recovered at version %d, below flush-durable %d", lba, rv, dv)), nil
			}
			tag, _, rerr := cache.ReadCheck(at, lba)
			if rerr != nil {
				if strict {
					// Barrier-tier recovery must discard torn segments
					// cleanly: whatever it chose to map has to verify.
					return viol("torn-discarded",
						fmt.Sprintf("page %d mapped but unreadable after recovery: %v", lba, rerr)), nil
				}
				continue // reorder tier: loud failure is acceptable
			}
			if tag != blockdev.DataTag(lba, rv) {
				return viol("no-wrong-bytes",
					fmt.Sprintf("page %d serves %v for claimed version %d", lba, tag, rv)), nil
			}
			continue
		}
		// Not recovered with a known version: a flush-durable version must
		// survive on primary storage. Clean durable pages always do (their
		// content came from or was destaged to primary), so this is also
		// the NPC rule — clean loss is acceptable, dirty loss is not.
		if strict && dv > 0 {
			pt, perr := prim.Content().ReadTag(lba)
			if perr != nil {
				return nil, perr
			}
			found := false
			for v := lv; v >= dv; v-- {
				if pt == blockdev.DataTag(lba, v) {
					found = true
					break
				}
			}
			if !found {
				return viol("durable-after-flush",
					fmt.Sprintf("page %d flush-durable at version %d neither recovered nor on primary", lba, dv)), nil
			}
		}
	}
	if got := cache.CachedPages(); got > inSpan {
		return viol("no-phantom-data",
			fmt.Sprintf("%d pages mapped but only %d lie in the workload span — stale or garbage records applied", got, inSpan)), nil
	}

	if deep {
		if v, err := r.determinismProbe(ep, scheds, cache); err != nil || v != nil {
			return v, err
		}
		if strict {
			if v, err := r.generationProbe(ep, scheds, cache); err != nil || v != nil {
				return v, err
			}
		}
	}
	return nil, nil
}

// determinismProbe re-runs the identical crash + recovery and compares the
// recovered version map: recovery must be a pure function of the crashed
// state.
func (r *cellRun) determinismProbe(ep *epoch, scheds tuple, first *src.Cache) (*Violation, error) {
	second, _, err := r.recoverTrial(ep, scheds)
	if err != nil {
		return nil, err
	}
	if second == nil {
		return &Violation{
			Cell: r.cell, Seed: r.opts.Seed, Epoch: ep.idx, Op: ep.op,
			Invariant: "deterministic-recovery",
			Detail:    "second recovery of the identical crashed state errored",
		}, nil
	}
	for lba := int64(0); lba < span; lba++ {
		v1, c1 := first.CachedVersion(lba)
		v2, c2 := second.CachedVersion(lba)
		if v1 != v2 || c1 != c2 {
			return &Violation{
				Cell: r.cell, Seed: r.opts.Seed, Epoch: ep.idx, Op: ep.op,
				Invariant: "deterministic-recovery",
				Detail: fmt.Sprintf("page %d recovered as (v%d,%v) then (v%d,%v) from the same state",
					lba, v1, c1, v2, c2),
			}, nil
		}
	}
	return nil, nil
}

// generationProbe checks generation monotonicity end to end: a write
// acknowledged and flushed after recovery must win over every resurrected
// generation across a second, total crash.
func (r *cellRun) generationProbe(ep *epoch, scheds tuple, cache *src.Cache) (*Violation, error) {
	viol := func(detail string) *Violation {
		return &Violation{
			Cell: r.cell, Seed: r.opts.Seed, Epoch: ep.idx, Op: ep.op,
			Invariant: "generation-monotonicity", Detail: detail,
		}
	}
	var probe int64 = -1
	var prev uint64
	for lba := int64(0); lba < span; lba++ {
		if v, ok := cache.CachedVersion(lba); ok && v > 0 {
			probe, prev = lba, v
			break
		}
	}
	if probe < 0 {
		return nil, nil // nothing recovered to contend with
	}
	at := ep.at
	if _, err := cache.Submit(at, blockdev.Request{
		Op: blockdev.OpWrite, Off: probe * blockdev.PageSize, Len: blockdev.PageSize,
	}); err != nil {
		return nil, fmt.Errorf("generation probe write: %w", err)
	}
	if _, err := cache.Flush(at); err != nil {
		return nil, fmt.Errorf("generation probe flush: %w", err)
	}
	for _, d := range cache.CacheDevices() {
		d.Content().Crash()
	}
	if _, err := cache.Recover(); err != nil {
		return viol(fmt.Sprintf("re-recovery after probe flush errored: %v", err)), nil
	}
	want := prev + 1
	if nv, ok := cache.CachedVersion(probe); ok && nv > 0 {
		if nv < want {
			return viol(fmt.Sprintf(
				"page %d flushed at version %d but recovered at %d — an older generation won", probe, want, nv)), nil
		}
		return nil, nil
	}
	pt, err := cache.Primary().Content().ReadTag(probe)
	if err != nil {
		return nil, err
	}
	if pt != blockdev.DataTag(probe, want) {
		return viol(fmt.Sprintf(
			"page %d flushed at version %d lost across a clean-barrier crash", probe, want)), nil
	}
	return nil, nil
}
