// Package torture is the crash-consistency torture engine for the SRC
// cache. It drives a seeded workload against a live cache, snapshots the
// devices' write logs at every flush epoch, and then replays systematically
// chosen partial-persistence crash schedules (blockdev.CrashSchedule)
// against each snapshot: every trial clones the epoch's device contents,
// applies one schedule per SSD, recovers a fresh cache instance over the
// crashed state, and checks declarative invariants against a model of what
// the cache had acknowledged.
//
// Schedules come in two tiers with different obligations (see
// blockdev.CrashSchedule):
//
//   - barrier tier — each device persists a FIFO prefix of its volatile
//     write log, optionally torn mid-blob at the cut. This models real
//     drive write caches, and the strict invariants must hold:
//     durable-after-acknowledged-flush, no phantom or future versions,
//     torn segments discarded (everything recovered verifies), and dirty
//     loss is a violation even where clean loss is acceptable (NPC).
//   - reorder tier — arbitrary subsets and single-write omissions. Firmware
//     does not promise this, so only detection-grade invariants apply:
//     recovery never errors, never silently serves wrong bytes, and never
//     surfaces a version newer than acknowledged.
//
// A failing trial is re-run through a greedy shrinker that minimizes the
// persisted subset before it is reported, so a Violation carries the
// smallest schedule the checker still rejects at the earliest sampled
// epoch. Runs are a pure function of Options: same seed, same trials, same
// verdicts.
package torture

import (
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/src"
)

// Cell is one point of the configuration matrix a torture run covers.
type Cell struct {
	Flush  src.FlushPolicy
	Parity src.ParityMode
	Victim src.VictimPolicy
}

// String names the cell like "per-segment/NPC/FIFO".
func (c Cell) String() string {
	return fmt.Sprintf("%v/%v/%v", c.Flush, c.Parity, c.Victim)
}

// DefaultMatrix enumerates the full design-space slice the torture engine
// covers: all four flush policies x PC/NPC x FIFO/Greedy victims.
func DefaultMatrix() []Cell {
	var cells []Cell
	for _, f := range []src.FlushPolicy{
		src.FlushPerSegment, src.FlushPerSegmentGroup, src.FlushPerMetadata, src.FlushNever,
	} {
		for _, p := range []src.ParityMode{src.PC, src.NPC} {
			for _, v := range []src.VictimPolicy{src.FIFO, src.Greedy} {
				cells = append(cells, Cell{Flush: f, Parity: p, Victim: v})
			}
		}
	}
	return cells
}

// Options seeds one torture run. Runs with equal Options are identical.
type Options struct {
	// Seed selects the workload and the sampled crash schedules.
	Seed int64
	// Ops is the number of workload steps per cell (default 600).
	Ops int
	// SchedulesPerEpoch is K, the count of seeded random schedules per tier
	// enumerated at each epoch, on top of the structured ones (default 4).
	SchedulesPerEpoch int
	// MaxEpochs bounds the flush-epoch snapshots retained per cell; when
	// more epochs occur, every other retained one is dropped so the kept
	// set stays spread over the run (default 6).
	MaxEpochs int
	// Cells is the configuration matrix (default DefaultMatrix()).
	Cells []Cell
	// Hooks weakens recovery safeguards (torture-only). The planted-
	// violation regression tests set these to prove the checker bites;
	// production runs leave them zero.
	Hooks src.RecoveryHooks
}

// Violation is one invariant failure, reported with the shrunk schedule
// that still reproduces it.
type Violation struct {
	Cell      Cell
	Seed      int64
	Epoch     int // epoch index within the cell's run
	Op        int // workload op after which the epoch was snapshotted
	Tier      string
	Invariant string
	Detail    string
	// Schedules is the shrunk per-SSD crash schedule tuple.
	Schedules []blockdev.CrashSchedule
}

func (v Violation) String() string {
	return fmt.Sprintf("%v seed %d epoch %d (op %d, %s tier): %s: %s",
		v.Cell, v.Seed, v.Epoch, v.Op, v.Tier, v.Invariant, v.Detail)
}

// CellStats summarizes one cell's run.
type CellStats struct {
	Cell   Cell
	Epochs int // epochs snapshotted (retained for trials)
	Trials int
	// MaxLossWindow is the largest realized data-loss window over the
	// retained epochs: pages a total crash at that instant would regress
	// below their newest acknowledged version — the exposure the cell's
	// flush policy leaves open.
	MaxLossWindow int
}

// Report is the outcome of one torture run.
type Report struct {
	Seed       int64
	Cells      []CellStats
	Trials     int
	Violations []Violation
}

// Run executes one seeded torture run over the configured matrix. It
// returns an error only for harness-level failures (the workload itself
// erroring); invariant violations are collected in the Report. At most one
// violation is reported per cell — the first failing trial of the earliest
// retained epoch, shrunk.
func Run(o Options) (Report, error) {
	if o.Ops <= 0 {
		o.Ops = 600
	}
	if o.SchedulesPerEpoch <= 0 {
		o.SchedulesPerEpoch = 4
	}
	if o.MaxEpochs <= 0 {
		o.MaxEpochs = 6
	}
	if o.Cells == nil {
		o.Cells = DefaultMatrix()
	}
	rep := Report{Seed: o.Seed}
	for _, cell := range o.Cells {
		r, err := newCellRun(o, cell)
		if err != nil {
			return rep, fmt.Errorf("torture: cell %v: %w", cell, err)
		}
		if err := r.workload(); err != nil {
			return rep, fmt.Errorf("torture: cell %v workload: %w", cell, err)
		}
		viol, trials, err := r.trials()
		if err != nil {
			return rep, fmt.Errorf("torture: cell %v trials: %w", cell, err)
		}
		if viol != nil {
			rep.Violations = append(rep.Violations, *viol)
		}
		rep.Trials += trials
		rep.Cells = append(rep.Cells, CellStats{
			Cell:          cell,
			Epochs:        len(r.epochs),
			Trials:        trials,
			MaxLossWindow: r.maxLoss,
		})
	}
	return rep, nil
}
