package torture

import (
	"fmt"
	"math/rand"

	"srccache/internal/blockdev"
	"srccache/internal/src"
	"srccache/internal/vtime"
)

// Geometry: deliberately tiny so a few hundred operations wrap the log and
// engage GC, the crash-ordering-critical path. 4 SSDs of 2 MiB with 256 KiB
// erase groups gives 8 segment groups per drive; 16 KiB segment columns are
// 4 pages — MS, two payload pages, ME.
const (
	numSSD  = 4
	ssdCap  = 2 << 20
	primCap = 16 << 20
	egs     = 256 << 10
	segCol  = 16 << 10
	span    = 256 // logical pages the workload touches
)

// epoch is one flush-epoch snapshot: the devices' contents (committed state
// plus the volatile write log) and the model of what the cache had
// acknowledged at that point.
type epoch struct {
	idx int // epoch sequence number within the cell run
	op  int // workload op after which the snapshot was taken
	at  vtime.Time
	// ssds are Content clones with their volatile write logs intact; prim
	// is a committed clone (primary storage is durable by fiat, as in the
	// paper's battery-backed HDD RAID setting).
	ssds []*blockdev.Content
	prim *blockdev.Content
	// latest maps lba -> newest acknowledged version; durable maps
	// lba -> newest version covered by an explicit Flush that completed a
	// device barrier — the only point where acknowledged data is provably
	// drained from the RAM buffers and committed past the drive caches.
	latest  map[int64]uint64
	durable map[int64]uint64
}

// burstTracker watches per-device flush completions and counts full bursts:
// a burst ends when every column has flushed at least once, which is how
// the cache's flushSSDs barrier presents at the device boundary.
type burstTracker struct {
	flushed []bool
	bursts  int
}

func (b *burstTracker) note(idx int) {
	b.flushed[idx] = true
	for _, f := range b.flushed {
		if !f {
			return
		}
	}
	for i := range b.flushed {
		b.flushed[i] = false
	}
	b.bursts++
}

// flushTap wraps a device to observe its flushes; all other behavior is the
// inner device's.
type flushTap struct {
	inner blockdev.Device
	burst *burstTracker
	idx   int
}

func (f *flushTap) Submit(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	return f.inner.Submit(at, req)
}

func (f *flushTap) Flush(at vtime.Time) (vtime.Time, error) {
	t, err := f.inner.Flush(at)
	if err == nil {
		f.burst.note(f.idx)
	}
	return t, err
}

func (f *flushTap) Capacity() int64            { return f.inner.Capacity() }
func (f *flushTap) Stats() *blockdev.Stats     { return f.inner.Stats() }
func (f *flushTap) Content() *blockdev.Content { return f.inner.Content() }

// cellRun drives one configuration cell: workload, epoch snapshots, trials.
type cellRun struct {
	opts  Options
	cell  Cell
	rng   *rand.Rand
	cache *src.Cache
	ssds  []*blockdev.MemDevice
	burst *burstTracker
	prim  *blockdev.MemDevice
	at    vtime.Time

	latest  map[int64]uint64
	durable map[int64]uint64

	epochs   []epoch
	stride   int // epoch retention stride (doubles when MaxEpochs overflows)
	epochSeq int
	maxLoss  int
}

func newCellRun(o Options, cell Cell) (*cellRun, error) {
	r := &cellRun{
		opts:    o,
		cell:    cell,
		rng:     rand.New(rand.NewSource(o.Seed*1000003 + cellSalt(cell))),
		burst:   &burstTracker{flushed: make([]bool, numSSD)},
		latest:  make(map[int64]uint64),
		durable: make(map[int64]uint64),
		stride:  1,
	}
	devs := make([]blockdev.Device, numSSD)
	r.ssds = make([]*blockdev.MemDevice, numSSD)
	for i := range devs {
		m := blockdev.NewMemDevice(ssdCap, 10*vtime.Microsecond)
		r.ssds[i] = m
		devs[i] = &flushTap{inner: m, burst: r.burst, idx: i}
	}
	r.prim = blockdev.NewMemDevice(primCap, vtime.Millisecond)
	cache, err := src.New(src.Config{
		SSDs:           devs,
		Primary:        r.prim,
		EraseGroupSize: egs,
		SegmentColumn:  segCol,
		GC:             src.SelGC,
		Victim:         cell.Victim,
		Parity:         cell.Parity,
		Flush:          cell.Flush,
		TrackContent:   true,
		ErrorBudget:    1 << 30,
	})
	if err != nil {
		return nil, err
	}
	r.cache = cache
	return r, nil
}

// cellSalt folds a cell into the rng seed so each cell gets an independent
// but reproducible workload.
func cellSalt(c Cell) int64 {
	return int64(c.Flush)*100 + int64(c.Parity)*10 + int64(c.Victim)
}

// workload runs the seeded operation mix, advancing the durability model at
// every observed flush barrier and snapshotting epochs.
func (r *cellRun) workload() error {
	// FlushNever produces no barriers, so epochs are sampled on a fixed
	// cadence instead; durable stays empty and trials check only the
	// detection-grade invariants.
	neverCadence := r.opts.Ops / r.opts.MaxEpochs
	if neverCadence < 1 {
		neverCadence = 1
	}
	for op := 0; op < r.opts.Ops; op++ {
		r.burst.bursts = 0
		explicitFlush := false
		switch p := r.rng.Float64(); {
		case p < 0.62:
			lba := r.rng.Int63n(span - 4)
			n := 1 + r.rng.Int63n(4)
			done, err := r.cache.Submit(r.at, blockdev.Request{
				Op: blockdev.OpWrite, Off: lba * blockdev.PageSize, Len: n * blockdev.PageSize,
			})
			if err != nil {
				return fmt.Errorf("op %d write [%d,%d): %w", op, lba, lba+n, err)
			}
			r.at = vtime.Max(r.at, done)
			for p := lba; p < lba+n; p++ {
				r.latest[p]++
			}
		case p < 0.82:
			lba := r.rng.Int63n(span - 4)
			n := 1 + r.rng.Int63n(4)
			done, err := r.cache.Submit(r.at, blockdev.Request{
				Op: blockdev.OpRead, Off: lba * blockdev.PageSize, Len: n * blockdev.PageSize,
			})
			if err != nil {
				return fmt.Errorf("op %d read [%d,%d): %w", op, lba, lba+n, err)
			}
			r.at = vtime.Max(r.at, done)
		default:
			done, err := r.cache.Flush(r.at)
			if err != nil {
				return fmt.Errorf("op %d flush: %w", op, err)
			}
			r.at = vtime.Max(r.at, done)
			explicitFlush = true
		}
		if r.burst.bursts > 0 {
			// A full device barrier completed during this operation.
			// Durability only advances on an explicit Flush: that is the
			// call that drains the RAM segment buffers before the barrier,
			// so everything acknowledged beforehand is on media and
			// flushed. A barrier inside a write (segment-driven flush)
			// proves nothing about pages still sitting in the buffers —
			// acknowledged, in RAM, not durable.
			if explicitFlush {
				r.durable = copyVersions(r.latest)
			}
			r.snapshot(op)
		} else if r.cell.Flush == src.FlushNever && op%neverCadence == neverCadence-1 {
			r.snapshot(op)
		}
		if op%16 == 15 {
			// Sample the realized data-loss window on a fixed cadence, not
			// at epoch instants: epochs sit right after barriers, where
			// every policy looks artificially tight.
			w, err := r.lossProbe()
			if err != nil {
				return fmt.Errorf("op %d loss probe: %w", op, err)
			}
			if w > r.maxLoss {
				r.maxLoss = w
			}
		}
	}
	return nil
}

// lossProbe measures how many pages a total crash at this instant would
// regress below their newest acknowledged version — the exposure the flush
// policy trades against flush traffic.
func (r *cellRun) lossProbe() (int, error) {
	devs := make([]blockdev.Device, numSSD)
	for i, d := range r.ssds {
		cc := d.Content().Clone()
		cc.Crash()
		devs[i] = blockdev.NewMemDeviceWithContent(cc, 0)
	}
	pc := r.prim.Content().Clone()
	pc.FlushContent()
	prim := blockdev.NewMemDeviceWithContent(pc, 0)
	cache, err := src.New(src.Config{
		SSDs:           devs,
		Primary:        prim,
		EraseGroupSize: egs,
		SegmentColumn:  segCol,
		GC:             src.SelGC,
		Victim:         r.cell.Victim,
		Parity:         r.cell.Parity,
		Flush:          r.cell.Flush,
		TrackContent:   true,
		ErrorBudget:    1 << 30,
	})
	if err != nil {
		return 0, err
	}
	if _, err := cache.Recover(); err != nil {
		return 0, err
	}
	lost := 0
	for lba := int64(0); lba < span; lba++ {
		lv := r.latest[lba]
		if lv == 0 {
			continue
		}
		if rv, ok := cache.CachedVersion(lba); ok && rv >= lv {
			continue
		}
		if pt, perr := pc.ReadTag(lba); perr == nil && pt == blockdev.DataTag(lba, lv) {
			continue
		}
		lost++
	}
	return lost, nil
}

// snapshot captures the current epoch, thinning retained epochs to
// MaxEpochs by doubling the keep stride — deterministic and spread over
// the whole run rather than clustered at the end.
func (r *cellRun) snapshot(op int) {
	idx := r.epochSeq
	r.epochSeq++
	if idx%r.stride != 0 {
		return
	}
	ep := epoch{
		idx:     idx,
		op:      op,
		at:      r.at,
		ssds:    make([]*blockdev.Content, numSSD),
		latest:  copyVersions(r.latest),
		durable: copyVersions(r.durable),
	}
	for i, d := range r.ssds {
		ep.ssds[i] = d.Content().Clone()
	}
	ep.prim = r.prim.Content().Clone()
	ep.prim.FlushContent() // primary storage is durable by fiat
	r.epochs = append(r.epochs, ep)
	if len(r.epochs) > r.opts.MaxEpochs {
		r.stride *= 2
		kept := r.epochs[:0]
		for _, e := range r.epochs {
			if e.idx%r.stride == 0 {
				kept = append(kept, e)
			}
		}
		r.epochs = kept
	}
}

func copyVersions(m map[int64]uint64) map[int64]uint64 {
	out := make(map[int64]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
