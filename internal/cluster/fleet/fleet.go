// Package fleet is the real-TCP counterpart of the cluster simulation: the
// same consistent-hash ring and chained replication, carried over live
// netblock servers instead of virtual-time pipes. A ChainBackend wraps a
// node's storage so every write it serves is forwarded down the replica
// chain before the node replies, and a Fleet client routes volume requests
// onto the ring with owner-order failover, direct-write repair, and
// range streaming for membership changes.
//
// The package is deliberately wallclock: it exists to prove the simulated
// protocol runs over the real transport. The invariants it relies on —
// clean-head writes, owner-order chains, "no clean source is not never
// written" — are established and churn-tested by package cluster; fleet
// keeps the mapping one-to-one (Ring.Owners is the chain order in both).
package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"srccache/internal/cluster"
	"srccache/internal/netblock"
	"srccache/internal/vtime"
)

// repairChunk bounds one repair/stream transfer, comfortably under the
// protocol's MaxPayload so a large RangeBytes still streams.
const repairChunk = 256 << 10

// ChainBackend wraps a node's local storage with chain forwarding: a write
// (or trim) is applied locally and then pushed to the next owner after this
// node's own position in the range's replica chain, which forwards onward in
// turn — so a client write to the chain head replicates through the whole
// chain before the head's reply. The node derives its chain position from
// the ring and its own ID, so the wire protocol needs no chain field and any
// plain netblock client can address any replica.
//
// Forwarding failures are counted, not fatal: a dead successor must not fail
// the write (the head's copy is the acknowledged one), and anti-entropy
// repair heals the gap — exactly the simulation's partial-write path.
type ChainBackend struct {
	local netblock.Backend
	self  string
	opts  netblock.ClientOptions

	mu    sync.Mutex
	ring  *cluster.Ring
	conns map[string]*netblock.Client

	forwards    atomic.Int64
	forwardErrs atomic.Int64
}

// NewChainBackend wraps local storage for ring member self. The local
// volume must span the ring's full logical volume: every node addresses
// global offsets, so replicas hold their ranges at identical offsets and a
// failover needs no translation. self may be absent from the ring (a spare
// waiting to join serves locally without forwarding).
func NewChainBackend(local netblock.Backend, self string, ring *cluster.Ring, opts netblock.ClientOptions) (*ChainBackend, error) {
	if local == nil {
		return nil, fmt.Errorf("fleet: nil backend")
	}
	if self == "" {
		return nil, fmt.Errorf("fleet: empty node ID")
	}
	if ring == nil {
		return nil, fmt.Errorf("fleet: nil ring")
	}
	if local.Size() != ring.Size() {
		return nil, fmt.Errorf("fleet: backend size %d != ring volume %d", local.Size(), ring.Size())
	}
	return &ChainBackend{
		local: local,
		self:  self,
		opts:  opts,
		ring:  ring,
		conns: make(map[string]*netblock.Client),
	}, nil
}

// Ring returns the placement the backend currently forwards by.
func (b *ChainBackend) Ring() *cluster.Ring {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ring
}

// SetRing installs a new placement (a committed membership change). The
// volume geometry must not change; only ownership may move.
func (b *ChainBackend) SetRing(ring *cluster.Ring) error {
	if ring == nil {
		return fmt.Errorf("fleet: nil ring")
	}
	if ring.Size() != b.local.Size() {
		return fmt.Errorf("fleet: ring volume %d != backend size %d", ring.Size(), b.local.Size())
	}
	b.mu.Lock()
	b.ring = ring
	b.mu.Unlock()
	return nil
}

// Forwards reports how many chain forwards succeeded and how many pieces
// found no reachable successor.
func (b *ChainBackend) Forwards() (ok, failed int64) {
	return b.forwards.Load(), b.forwardErrs.Load()
}

// ReadAt serves locally — reads never traverse the chain — but only when
// this node may: a ring member that does not own the requested extent
// refuses with the stale-epoch marker, so a client routed by an outdated
// table refetches instead of consuming bytes the current chain no longer
// maintains here. Spares (nodes absent from the ring) serve everything:
// rebalance bootstrap and repair traffic address them directly before any
// committed ring includes them.
func (b *ChainBackend) ReadAt(p []byte, off int64) error {
	if err := b.refuseStale("read", off, int64(len(p))); err != nil {
		return err
	}
	return b.local.ReadAt(p, off)
}

// refuseStale rejects an operation addressed to a ring member that does
// not own the extent — the server side of the staleepoch contract, the
// real-transport twin of the simulation's Node.checkEpoch. Only members
// refuse: a spare (absent from the ring) must keep serving rebalance
// bootstrap and repair traffic addressed to it directly.
func (b *ChainBackend) refuseStale(verb string, off, n int64) error {
	ring := b.Ring()
	if _, member := ring.Member(b.self); member && !b.ownsExtent(ring, off, n) {
		return fmt.Errorf("fleet: %s: %s [%d,%d) not owned by %s",
			netblock.StaleEpochText, verb, off, off+n, b.self)
	}
	return nil
}

// ownsExtent reports whether self is in the replica chain of every range
// the extent touches.
func (b *ChainBackend) ownsExtent(ring *cluster.Ring, off, n int64) bool {
	end := off + n
	for off < end {
		rng := ring.RangeOf(off)
		if !ring.OwnedBy(rng, b.self) {
			return false
		}
		off = (int64(rng) + 1) * ring.RangeBytes
	}
	return true
}

// Size reports the local volume size.
func (b *ChainBackend) Size() int64 { return b.local.Size() }

// Flush is a local barrier. The Fleet client fans its Flush out to every
// member, so chain-forwarding the barrier would only duplicate it.
func (b *ChainBackend) Flush() error { return b.local.Flush() }

// WriteAt applies locally, then forwards each per-range piece down the
// chain. The local apply is the acknowledged copy; forward failures are
// recorded for repair, never surfaced to the writer. A member that no
// longer owns the extent refuses instead of applying: forwardPiece only
// pushes from a node's own chain position, so a stale-headed write would
// strand on this replica while the current chain never sees it — the
// simulation refuses the same way (handleWrite's epoch check).
func (b *ChainBackend) WriteAt(p []byte, off int64) error {
	if err := b.refuseStale("write", off, int64(len(p))); err != nil {
		return err
	}
	if err := b.local.WriteAt(p, off); err != nil {
		return err
	}
	base := off
	b.forward(off, int64(len(p)), func(c *netblock.Client, pieceOff, n int64) error {
		// A successor's stale-epoch refusal (epoch skew mid-ring-push) is a
		// forward failure like any other: counted for repair, never
		// refetched here — servers converge by the control plane's pushes,
		// not by chasing each other's tables.
		//srclint:allow staleepoch forward failures are repair's problem, not the writer's
		_, err := c.WriteAt(p[pieceOff-base:pieceOff-base+n], pieceOff)
		return err
	})
	return nil
}

// Trim applies locally and forwards, mirroring WriteAt: a trim is a
// mutation, and replicas that miss it would answer reads with deleted
// data. Stale routes are refused for the same reason writes are.
func (b *ChainBackend) Trim(off, n int64) error {
	if err := b.refuseStale("trim", off, n); err != nil {
		return err
	}
	if err := b.local.Trim(off, n); err != nil {
		return err
	}
	b.forward(off, n, func(c *netblock.Client, off, n int64) error {
		// Same sanctioned drop as WriteAt's forward: repair reconciles
		// replicas that missed the trim.
		//srclint:allow staleepoch forward failures are repair's problem, not the writer's
		return c.Trim(off, n)
	})
	return nil
}

// forward splits [off, off+n) on range boundaries and pushes each piece to
// the next owner after this node's own chain position. send performs the
// piece-shaped operation on a successor's connection.
func (b *ChainBackend) forward(off, n int64, send func(c *netblock.Client, off, n int64) error) {
	ring := b.Ring()
	end := off + n
	for off < end {
		rng := ring.RangeOf(off)
		stop := (int64(rng) + 1) * ring.RangeBytes
		if stop > end {
			stop = end
		}
		b.forwardPiece(ring, rng, off, stop-off, send)
		off = stop
	}
}

// forwardPiece sends one in-range piece to the first reachable successor in
// the chain. Skipping a dead successor and trying the next mirrors the
// simulation's handleWrite: the chain routes around fail-stop members and
// the skipped copy is repair's problem.
func (b *ChainBackend) forwardPiece(ring *cluster.Ring, rng int, off, n int64, send func(c *netblock.Client, off, n int64) error) {
	owners := ring.Owners(rng)
	pos := -1
	for i, id := range owners {
		if id == b.self {
			pos = i
			break
		}
	}
	if pos < 0 || pos+1 >= len(owners) {
		// Not an owner (a direct write outside our chain — repair traffic,
		// or a spare warming up) or the tail: nothing to forward.
		return
	}
	for _, id := range owners[pos+1:] {
		c, err := b.conn(ring, id)
		if err != nil {
			continue
		}
		if err := send(c, off, n); err != nil {
			b.drop(id, c)
			continue
		}
		b.forwards.Add(1)
		return
	}
	b.forwardErrs.Add(1)
}

// conn returns the cached connection to a peer, dialing on first use.
func (b *ChainBackend) conn(ring *cluster.Ring, id string) (*netblock.Client, error) {
	b.mu.Lock()
	c := b.conns[id]
	b.mu.Unlock()
	if c != nil {
		return c, nil
	}
	m, ok := ring.Member(id)
	if !ok {
		return nil, fmt.Errorf("fleet: no address for member %q", id)
	}
	c, err := netblock.DialOptions(m.Addr, b.opts)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	if prev := b.conns[id]; prev != nil {
		b.mu.Unlock()
		c.Close()
		return prev, nil
	}
	b.conns[id] = c
	b.mu.Unlock()
	return c, nil
}

// drop discards a connection after a transport failure so the next forward
// redials — a restarted peer gets a fresh connection instead of the stale
// one failing forever.
func (b *ChainBackend) drop(id string, c *netblock.Client) {
	b.mu.Lock()
	if b.conns[id] == c {
		delete(b.conns, id)
	}
	b.mu.Unlock()
	c.Close()
}

// Close closes the forwarding connections. The local backend belongs to the
// caller.
func (b *ChainBackend) Close() error {
	b.mu.Lock()
	conns := b.conns
	b.conns = make(map[string]*netblock.Client)
	b.mu.Unlock()
	var err error
	for _, c := range conns {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Stats counts what the Fleet client did. Health carries the failure
// detector's current per-member classification (nil when no detector is
// installed via SetDetector).
type Stats struct {
	Reads, Writes int64
	Failovers     int64 // attempts that moved past a dead or erroring owner
	Repairs       int64 // ranges streamed by RepairRange or Rebalance
	Refetches     int64 // routing-table refetches after stale-epoch refusals
	Health        map[string]cluster.Health
}

// Fleet is the host-side initiator over real netblock servers: it splits
// volume requests on range boundaries, addresses each piece's replica chain
// head-first, and fails over across owners when one does not answer. When a
// member refuses a read with netblock.ErrStaleEpoch, the fleet refetches
// its routing table through the SetRefetch source and retries against the
// current owners — the staleepoch contract, DESIGN.md §8 rule 11.
type Fleet struct {
	opts netblock.ClientOptions

	mu      sync.Mutex
	ring    *cluster.Ring
	conns   map[string]*netblock.Client
	refetch func() *cluster.Ring
	det     *cluster.Detector

	reads, writes, failovers, repairs, refetches atomic.Int64
}

// New builds a fleet client over a ring whose members carry dialable
// addresses.
func New(ring *cluster.Ring, opts netblock.ClientOptions) (*Fleet, error) {
	if ring == nil {
		return nil, fmt.Errorf("fleet: nil ring")
	}
	return &Fleet{opts: opts, ring: ring, conns: make(map[string]*netblock.Client)}, nil
}

// Ring returns the placement the client currently routes by.
func (f *Fleet) Ring() *cluster.Ring {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ring
}

// SetRing installs a new placement after a committed membership change.
func (f *Fleet) SetRing(ring *cluster.Ring) error {
	if ring == nil {
		return fmt.Errorf("fleet: nil ring")
	}
	f.mu.Lock()
	if ring.Size() != f.ring.Size() {
		f.mu.Unlock()
		return fmt.Errorf("fleet: ring volume %d != current %d", ring.Size(), f.ring.Size())
	}
	f.ring = ring
	f.mu.Unlock()
	return nil
}

// Stats returns the client's counters, including per-member health when a
// detector is installed.
func (f *Fleet) Stats() Stats {
	s := Stats{
		Reads:     f.reads.Load(),
		Writes:    f.writes.Load(),
		Failovers: f.failovers.Load(),
		Repairs:   f.repairs.Load(),
		Refetches: f.refetches.Load(),
	}
	f.mu.Lock()
	det, ring := f.det, f.ring
	f.mu.Unlock()
	if det != nil {
		s.Health = make(map[string]cluster.Health)
		for _, m := range ring.Members() {
			s.Health[m.ID] = det.State(m.ID)
		}
	}
	return s
}

// SetDetector installs a failure detector scored by this client's
// traffic: Ping feeds round-trip latency (the fail-slow EWMA signal), and
// the data path feeds success/failure observations (data ops carry no
// useful latency — their duration scales with payload, not health). The
// same detector instance may be shared with a supervisor, so every call
// into it serializes on the fleet's lock.
func (f *Fleet) SetDetector(d *cluster.Detector) {
	f.mu.Lock()
	f.det = d
	f.mu.Unlock()
}

// observe feeds the detector one interaction, if one is installed.
// lat <= 0 means "no useful latency signal": failures count toward the
// fail-stop run either way, successes reset it without touching the EWMA.
func (f *Fleet) observe(id string, lat time.Duration, failed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.det == nil {
		return
	}
	switch {
	case failed:
		f.det.Observe(id, vtime.FromStd(lat), true)
	case lat > 0:
		f.det.Observe(id, vtime.FromStd(lat), false)
	default:
		f.det.ObserveOK(id)
	}
}

// SetRefetch installs the routing-table source consulted after a
// stale-epoch refusal: when a member answers a read with
// netblock.ErrStaleEpoch, tryOwners calls fn and retries under the ring it
// returns. In production fn asks the membership coordinator for the
// committed placement; tests hand back the post-churn ring directly. With
// no source installed a refusal stays fatal.
func (f *Fleet) SetRefetch(fn func() *cluster.Ring) {
	f.mu.Lock()
	f.refetch = fn
	f.mu.Unlock()
}

// refetchRing pulls a fresh placement from the SetRefetch source and
// installs it, reporting whether the routing actually changed. The
// stale-epoch retry loop stops when it did not, so a source that cannot
// advance the ring cannot spin the client.
func (f *Fleet) refetchRing() bool {
	f.mu.Lock()
	fn := f.refetch
	old := f.ring
	f.mu.Unlock()
	if fn == nil {
		return false
	}
	next := fn()
	if next == nil || next == old || next.Size() != old.Size() {
		return false
	}
	f.mu.Lock()
	if f.ring == old {
		f.ring = next
	}
	f.mu.Unlock()
	return true
}

// conn returns the cached connection to a member, dialing on first use.
func (f *Fleet) conn(ring *cluster.Ring, id string) (*netblock.Client, error) {
	f.mu.Lock()
	c := f.conns[id]
	f.mu.Unlock()
	if c != nil {
		return c, nil
	}
	m, ok := ring.Member(id)
	if !ok {
		return nil, fmt.Errorf("fleet: no address for member %q", id)
	}
	c, err := netblock.DialOptions(m.Addr, f.opts)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if prev := f.conns[id]; prev != nil {
		f.mu.Unlock()
		c.Close()
		return prev, nil
	}
	f.conns[id] = c
	f.mu.Unlock()
	return c, nil
}

// drop discards a member's connection after a transport failure so the next
// attempt redials.
func (f *Fleet) drop(id string, c *netblock.Client) {
	f.mu.Lock()
	if f.conns[id] == c {
		delete(f.conns, id)
	}
	f.mu.Unlock()
	c.Close()
}

// Close closes every member connection.
func (f *Fleet) Close() error {
	f.mu.Lock()
	conns := f.conns
	f.conns = make(map[string]*netblock.Client)
	f.mu.Unlock()
	var err error
	for _, c := range conns {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// WriteAt stores p at volume offset off. Each per-range piece goes to the
// first owner that accepts it; that head's ChainBackend replicates down the
// chain before its reply, so a successful return means the piece is on every
// reachable replica.
func (f *Fleet) WriteAt(p []byte, off int64) error {
	return f.split(p, off, func(rng int, piece []byte, off int64) error {
		return f.tryOwners(rng, func(c *netblock.Client) error {
			_, err := c.WriteAt(piece, off)
			return err
		})
	}, &f.writes)
}

// ReadAt fills p from volume offset off, failing each piece over across its
// replica chain until one owner answers.
func (f *Fleet) ReadAt(p []byte, off int64) error {
	return f.split(p, off, func(rng int, piece []byte, off int64) error {
		return f.tryOwners(rng, func(c *netblock.Client) error {
			_, err := c.ReadAt(piece, off)
			return err
		})
	}, &f.reads)
}

// Flush barriers every member. Chain heads do not forward barriers, so the
// client issues one per node; a member that does not answer fails the call
// (a barrier that silently skipped a replica is not a barrier).
func (f *Fleet) Flush() error {
	ring := f.Ring()
	for _, m := range ring.Members() {
		c, err := f.conn(ring, m.ID)
		if err != nil {
			return fmt.Errorf("fleet: flush %s: %w", m.ID, err)
		}
		if err := c.Flush(); err != nil {
			f.drop(m.ID, c)
			return fmt.Errorf("fleet: flush %s: %w", m.ID, err)
		}
	}
	return nil
}

// split carves [off, off+len(p)) into per-range pieces.
func (f *Fleet) split(p []byte, off int64, op func(rng int, piece []byte, off int64) error, counter *atomic.Int64) error {
	ring := f.Ring()
	if off < 0 || off+int64(len(p)) > ring.Size() {
		return fmt.Errorf("fleet: extent [%d,%d) outside volume of %d bytes", off, off+int64(len(p)), ring.Size())
	}
	for len(p) > 0 {
		rng := ring.RangeOf(off)
		stop := (int64(rng) + 1) * ring.RangeBytes
		n := stop - off
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		if err := op(rng, p[:n], off); err != nil {
			return err
		}
		counter.Add(1)
		off += n
		p = p[n:]
	}
	return nil
}

// maxStaleRetries bounds how many routing-table refetches one operation
// may consume after stale-epoch refusals. Each retry additionally requires
// the refetched ring to differ from the one just tried, so the bound only
// bites when the placement keeps moving under the operation.
const maxStaleRetries = 3

// tryOwners runs op against range rng's owners in chain order until one
// serves, dropping connections that fail at the transport so later attempts
// redial. Remote errors (the server answered and refused) also fail over:
// a replica mid-restart may refuse briefly while its sibling serves. A
// stale-epoch refusal (netblock.ErrStaleEpoch) is different — every member
// of an outdated chain refuses the same way — so instead of burning the
// failover pass the client refetches its routing table through the
// SetRefetch source and retries against the current owners, bounded by
// maxStaleRetries and by the requirement that each refetch actually
// advance the ring.
//
//srclint:handles staleepoch
func (f *Fleet) tryOwners(rng int, op func(c *netblock.Client) error) error {
	var last error
	for attempt := 0; attempt <= maxStaleRetries; attempt++ {
		ring := f.Ring()
		stale := false
		for _, id := range ring.Owners(rng) {
			c, err := f.conn(ring, id)
			if err != nil {
				last = err
				f.failovers.Add(1)
				f.observe(id, 0, true)
				continue
			}
			if err := op(c); err != nil {
				if errors.Is(err, netblock.ErrStaleEpoch) {
					// The refusal is an answer, not a dead peer: keep the
					// connection, stop addressing this chain, and refetch —
					// the rest of the stale chain would refuse identically.
					// An answer also proves liveness for the detector.
					f.observe(id, 0, false)
					last = err
					stale = true
					break
				}
				f.drop(id, c)
				last = err
				f.failovers.Add(1)
				// A remote refusal proves the member answered; only a
				// transport failure counts toward its fail-stop run.
				f.observe(id, 0, !errors.Is(err, netblock.ErrRemote))
				continue
			}
			f.observe(id, 0, false)
			return nil
		}
		if stale && f.refetchRing() {
			f.refetches.Add(1)
			continue
		}
		break
	}
	return fmt.Errorf("fleet: range %d: no replica served: %w", rng, last)
}

// RepairRange streams range rng onto node id from the first other owner
// that answers, then reads it back and verifies byte identity — the real
// path's anti-entropy step after a wipe or missed write. The write goes
// straight to the target (which forwards nothing useful: repair traffic is
// addressed below its chain position or outside the chain entirely). Repair
// reads address one specific replica, so a stale-epoch refusal propagates
// to the caller instead of being refetched away: it means the operator's
// ring no longer matches the cluster, and repairing under it would copy
// the wrong placement.
//
//srclint:surfaces staleepoch
func (f *Fleet) RepairRange(id string, rng int) error {
	ring := f.Ring()
	var src *netblock.Client
	var srcID string
	for _, o := range ring.Owners(rng) {
		if o == id {
			continue
		}
		c, err := f.conn(ring, o)
		if err != nil {
			continue
		}
		src, srcID = c, o
		break
	}
	if src == nil {
		return fmt.Errorf("fleet: repair range %d on %s: no source replica", rng, id)
	}
	tgt, err := f.conn(ring, id)
	if err != nil {
		return fmt.Errorf("fleet: repair range %d on %s: %w", rng, id, err)
	}
	base := int64(rng) * ring.RangeBytes
	if err := f.stream(src, tgt, base, ring.RangeBytes); err != nil {
		return fmt.Errorf("fleet: repair range %d (%s -> %s): %w", rng, srcID, id, err)
	}
	if err := f.verify(src, tgt, base, ring.RangeBytes); err != nil {
		return fmt.Errorf("fleet: repair range %d (%s -> %s): %w", rng, srcID, id, err)
	}
	f.repairs.Add(1)
	return nil
}

// Rebalance streams every range the new placement adds an owner for, from
// an old owner to the new one — the graceful part of join/leave. The caller
// swaps rings (client and every node) only after Rebalance returns, so old
// owners keep serving throughout; writes landing during the stream reach
// the target through the old chain's forwards or a later RepairRange. Like
// RepairRange, a stale-epoch refusal surfaces: it proves the old ring the
// caller passed is not the one the members route by.
//
//srclint:surfaces staleepoch
func (f *Fleet) Rebalance(old, next *cluster.Ring) error {
	if old.Size() != next.Size() {
		return fmt.Errorf("fleet: rebalance changes volume size %d -> %d", old.Size(), next.Size())
	}
	for _, mv := range cluster.Moves(old, next) {
		if err := f.StreamMove(old, next, mv); err != nil {
			return err
		}
	}
	return nil
}

// StreamMove streams one pending move — range mv.Range from a serving old
// owner to mv.Target, which may be a fresh member only the next ring can
// address. It is the single step a supervisor journals around: after each
// StreamMove the pending set shrinks by one, so a supervisor crash between
// steps re-streams at most the move in flight (idempotent — same bytes at
// the same offsets). Stale-epoch refusals surface for the same reason
// Rebalance's do.
//
//srclint:surfaces staleepoch
func (f *Fleet) StreamMove(old, next *cluster.Ring, mv cluster.Move) error {
	var src *netblock.Client
	var srcID string
	for _, o := range old.Owners(mv.Range) {
		if o == mv.Target {
			continue
		}
		c, err := f.conn(old, o)
		if err != nil {
			continue
		}
		src, srcID = c, o
		break
	}
	if src == nil {
		return fmt.Errorf("fleet: rebalance range %d: no source among old owners", mv.Range)
	}
	tgt, err := f.conn(next, mv.Target)
	if err != nil {
		return fmt.Errorf("fleet: rebalance range %d to %s: %w", mv.Range, mv.Target, err)
	}
	base := int64(mv.Range) * old.RangeBytes
	if err := f.stream(src, tgt, base, old.RangeBytes); err != nil {
		return fmt.Errorf("fleet: rebalance range %d (%s -> %s): %w", mv.Range, srcID, mv.Target, err)
	}
	f.repairs.Add(1)
	return nil
}

// stream copies [base, base+n) from src to tgt in bounded chunks. Reads
// address the chosen source replica directly, so a stale-epoch refusal
// surfaces to the repair caller rather than triggering a refetch.
//
//srclint:surfaces staleepoch
func (f *Fleet) stream(src, tgt *netblock.Client, base, n int64) error {
	buf := make([]byte, repairChunk)
	for done := int64(0); done < n; {
		chunk := n - done
		if chunk > repairChunk {
			chunk = repairChunk
		}
		if _, err := src.ReadAt(buf[:chunk], base+done); err != nil {
			return fmt.Errorf("stream read: %w", err)
		}
		if _, err := tgt.WriteAt(buf[:chunk], base+done); err != nil {
			return fmt.Errorf("stream write: %w", err)
		}
		done += chunk
	}
	return nil
}

// verify reads [base, base+n) from both sides and compares — repair's
// byte-identity check. Surfaces the stale-epoch contract for the same
// reason stream does: its reads pin specific replicas.
//
//srclint:surfaces staleepoch
func (f *Fleet) verify(src, tgt *netblock.Client, base, n int64) error {
	want := make([]byte, repairChunk)
	got := make([]byte, repairChunk)
	for done := int64(0); done < n; {
		chunk := n - done
		if chunk > repairChunk {
			chunk = repairChunk
		}
		if _, err := src.ReadAt(want[:chunk], base+done); err != nil {
			return fmt.Errorf("verify read source: %w", err)
		}
		if _, err := tgt.ReadAt(got[:chunk], base+done); err != nil {
			return fmt.Errorf("verify read target: %w", err)
		}
		if !bytes.Equal(want[:chunk], got[:chunk]) {
			return fmt.Errorf("verify mismatch at offset %d", base+done)
		}
		done += chunk
	}
	return nil
}

// Ping probes one member, returning the server's health handshake (size,
// advertised ring epoch, drain state). The round-trip latency feeds the
// installed detector — pings are the fixed-size probe whose duration
// reflects node health rather than payload size, so they are the fail-slow
// EWMA's only input on the real path.
func (f *Fleet) Ping(id string) (netblock.PingInfo, error) {
	ring := f.Ring()
	start := time.Now()
	c, err := f.conn(ring, id)
	if err != nil {
		f.observe(id, time.Since(start), true)
		return netblock.PingInfo{}, err
	}
	info, err := c.Ping()
	lat := time.Since(start)
	if err != nil {
		f.drop(id, c)
		f.observe(id, lat, true)
		return netblock.PingInfo{}, err
	}
	f.observe(id, lat, false)
	return info, nil
}

// PingAll sweeps a probe over every ring member, feeding the detector,
// and returns the handshake of each member that answered — the background
// heartbeat a supervisor (or any wallclock health loop) runs per tick.
func (f *Fleet) PingAll() map[string]netblock.PingInfo {
	infos := make(map[string]netblock.PingInfo)
	for _, m := range f.Ring().Members() {
		if info, err := f.Ping(m.ID); err == nil {
			infos[m.ID] = info
		}
	}
	return infos
}
