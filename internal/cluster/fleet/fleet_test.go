package fleet_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"srccache/internal/cluster"
	"srccache/internal/cluster/fleet"
	"srccache/internal/netblock"
)

// The fleet tests run the chain protocol over real TCP on loopback: every
// node is a live netblock server whose backend is a ChainBackend, and the
// Fleet client drives it exactly as an initiator would. Backends are held
// in-process so replica contents can be checked without trusting the
// network path under test.

const (
	tRanges     = 8
	tRangeBytes = int64(4096)
)

func dialOpts() netblock.ClientOptions {
	return netblock.ClientOptions{DialTimeout: time.Second, Timeout: 2 * time.Second}
}

type tnode struct {
	id    string
	addr  string
	back  netblock.Backend
	chain *fleet.ChainBackend
	srv   *netblock.Server
}

func mkRing(t *testing.T, replicas int, members []cluster.Member) *cluster.Ring {
	t.Helper()
	r, err := cluster.NewRing(replicas, tRanges, tRangeBytes, members)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func startNode(t *testing.T, id string, ring *cluster.Ring) *tnode {
	t.Helper()
	back, err := netblock.MemBackend(ring.Size())
	if err != nil {
		t.Fatal(err)
	}
	chain, err := fleet.NewChainBackend(back, id, ring, dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netblock.NewServerWith(chain)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &tnode{id: id, addr: addr.String(), back: back, chain: chain, srv: srv}
	t.Cleanup(func() {
		n.srv.Close()
		n.chain.Close()
	})
	return n
}

// startFleet boots ids as live servers, then rebuilds the ring with their
// bound addresses and installs it everywhere — the bootstrap two-step a real
// deployment does with a config file instead.
func startFleet(t *testing.T, ids []string, replicas int) (map[string]*tnode, *cluster.Ring, *fleet.Fleet) {
	t.Helper()
	var boot []cluster.Member
	for _, id := range ids {
		boot = append(boot, cluster.Member{ID: id})
	}
	bootRing := mkRing(t, replicas, boot)
	nodes := make(map[string]*tnode, len(ids))
	var members []cluster.Member
	for _, id := range ids {
		nodes[id] = startNode(t, id, bootRing)
		members = append(members, cluster.Member{ID: id, Addr: nodes[id].addr})
	}
	ring := mkRing(t, replicas, members)
	for _, n := range nodes {
		if err := n.chain.SetRing(ring); err != nil {
			t.Fatal(err)
		}
	}
	fl, err := fleet.New(ring, dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fl.Close() })
	return nodes, ring, fl
}

// restartNode brings a killed node back on its old address, optionally with
// a wiped (fresh) backend.
func restartNode(t *testing.T, n *tnode, ring *cluster.Ring, wipe bool) {
	t.Helper()
	n.srv.Close()
	n.chain.Close()
	if wipe {
		back, err := netblock.MemBackend(ring.Size())
		if err != nil {
			t.Fatal(err)
		}
		n.back = back
	}
	chain, err := fleet.NewChainBackend(n.back, n.id, ring, dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netblock.NewServerWith(chain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen(n.addr); err != nil {
		t.Fatalf("rebind %s: %v", n.addr, err)
	}
	n.chain, n.srv = chain, srv
	t.Cleanup(func() {
		srv.Close()
		chain.Close()
	})
}

// fill writes a seeded pattern over the whole volume through the fleet and
// returns the model bytes.
func fill(t *testing.T, fl *fleet.Fleet, ring *cluster.Ring, seed int64) []byte {
	t.Helper()
	model := make([]byte, ring.Size())
	rand.New(rand.NewSource(seed)).Read(model)
	if err := fl.WriteAt(model, 0); err != nil {
		t.Fatal(err)
	}
	return model
}

// rangeSlice cuts range rng out of a model volume.
func rangeSlice(model []byte, rng int) []byte {
	return model[int64(rng)*tRangeBytes : (int64(rng)+1)*tRangeBytes]
}

// backendRange reads range rng straight off a node's in-process backend.
func backendRange(t *testing.T, n *tnode, rng int) []byte {
	t.Helper()
	buf := make([]byte, tRangeBytes)
	if err := n.back.ReadAt(buf, int64(rng)*tRangeBytes); err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestChainReplicatesToEveryOwner(t *testing.T) {
	nodes, ring, fl := startFleet(t, []string{"a", "b", "c", "d"}, 2)
	model := fill(t, fl, ring, 1)

	for rng := 0; rng < tRanges; rng++ {
		owners := ring.Owners(rng)
		if len(owners) != 2 {
			t.Fatalf("range %d: %d owners", rng, len(owners))
		}
		isOwner := map[string]bool{}
		for _, id := range owners {
			isOwner[id] = true
			if got := backendRange(t, nodes[id], rng); !bytes.Equal(got, rangeSlice(model, rng)) {
				t.Fatalf("range %d: replica %s diverges from model", rng, id)
			}
		}
		zero := make([]byte, tRangeBytes)
		for id, n := range nodes {
			if !isOwner[id] && !bytes.Equal(backendRange(t, n, rng), zero) {
				t.Fatalf("range %d: non-owner %s holds data", rng, id)
			}
		}
	}

	got := make([]byte, ring.Size())
	if err := fl.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("fleet read diverges from model")
	}

	var forwards, errs int64
	for _, n := range nodes {
		ok, failed := n.chain.Forwards()
		forwards += ok
		errs += failed
	}
	if forwards == 0 {
		t.Fatal("no chain forwards recorded")
	}
	if errs != 0 {
		t.Fatalf("%d forward failures on a healthy fleet", errs)
	}
}

func TestFleetFailsOverWhenHeadDies(t *testing.T) {
	nodes, ring, fl := startFleet(t, []string{"a", "b", "c", "d"}, 2)
	model := fill(t, fl, fl.Ring(), 2)

	victim := ring.Owners(0)[0]
	nodes[victim].srv.Close()

	// Reads of every range still serve: ranges headed by the victim fail
	// over to their surviving replica.
	got := make([]byte, ring.Size())
	if err := fl.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("post-kill read diverges from model")
	}

	// Writes, too: the survivor becomes the chain head.
	patch := bytes.Repeat([]byte{0xEE}, 512)
	if err := fl.WriteAt(patch, 0); err != nil {
		t.Fatal(err)
	}
	var alive *tnode
	for _, id := range ring.Owners(0) {
		if id != victim {
			alive = nodes[id]
		}
	}
	if !bytes.Equal(backendRange(t, alive, 0)[:512], patch) {
		t.Fatal("failover write missed the surviving replica")
	}
	if fl.Stats().Failovers == 0 {
		t.Fatal("no failovers recorded")
	}
}

func TestFleetRepairAfterWipeRestart(t *testing.T) {
	nodes, ring, fl := startFleet(t, []string{"a", "b", "c"}, 2)
	fill(t, fl, ring, 3)

	// Kill b, keep writing (chains that include b miss it), then bring b
	// back with an empty disk — the wipe-restart the simulation quarantines.
	nodes["b"].srv.Close()
	model := fill(t, fl, fl.Ring(), 4)
	restartNode(t, nodes["b"], ring, true)

	for rng := 0; rng < tRanges; rng++ {
		if !ring.OwnedBy(rng, "b") {
			continue
		}
		if err := fl.RepairRange("b", rng); err != nil {
			t.Fatalf("repair range %d: %v", rng, err)
		}
		if got := backendRange(t, nodes["b"], rng); !bytes.Equal(got, rangeSlice(model, rng)) {
			t.Fatalf("range %d on b not byte-identical after repair", rng)
		}
	}
	if fl.Stats().Repairs == 0 {
		t.Fatal("no repairs recorded")
	}

	// The healed node serves forwards again: a fresh write reaches it
	// through the redialed chain.
	patch := bytes.Repeat([]byte{0x5A}, 256)
	var headed int
	for rng := 0; rng < tRanges; rng++ {
		if owners := ring.Owners(rng); len(owners) == 2 && owners[1] == "b" {
			if err := fl.WriteAt(patch, int64(rng)*tRangeBytes); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(backendRange(t, nodes["b"], rng)[:256], patch) {
				t.Fatalf("range %d: post-restart forward missed b", rng)
			}
			headed++
		}
	}
	if headed == 0 {
		t.Skip("no range places b as tail; ring layout makes this pass vacuous")
	}
}

func TestFleetRebalanceJoinAndRingSwap(t *testing.T) {
	nodes, ring, fl := startFleet(t, []string{"a", "b", "c"}, 2)
	model := fill(t, fl, ring, 5)

	// Boot the joiner as a spare: it serves (and forwards nothing) under the
	// old ring, which does not list it.
	spare := startNode(t, "d", ring)
	nodes["d"] = spare
	next, err := ring.WithJoin(cluster.Member{ID: "d", Addr: spare.addr})
	if err != nil {
		t.Fatal(err)
	}

	moves := cluster.Moves(ring, next)
	if len(moves) == 0 {
		t.Fatal("join moved nothing; ring layout makes this pass vacuous")
	}
	if err := fl.Rebalance(ring, next); err != nil {
		t.Fatal(err)
	}
	for _, mv := range moves {
		if got := backendRange(t, nodes[mv.Target], mv.Range); !bytes.Equal(got, rangeSlice(model, mv.Range)) {
			t.Fatalf("range %d not streamed to %s", mv.Range, mv.Target)
		}
	}

	// Commit: swap the ring on every node and the client; bump the epoch
	// the servers advertise.
	for _, n := range nodes {
		if err := n.chain.SetRing(next); err != nil {
			t.Fatal(err)
		}
		n.srv.SetEpoch(2)
	}
	if err := fl.SetRing(next); err != nil {
		t.Fatal(err)
	}

	got := make([]byte, next.Size())
	if err := fl.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("post-join read diverges from model")
	}
	info, err := fl.Ping("d")
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 2 {
		t.Fatalf("joiner advertises epoch %d, want 2", info.Epoch)
	}

	// Writes now replicate on the new placement.
	patch := bytes.Repeat([]byte{0x77}, 128)
	for _, mv := range moves {
		off := int64(mv.Range) * tRangeBytes
		if err := fl.WriteAt(patch, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(backendRange(t, nodes[mv.Target], mv.Range)[:128], patch) {
			t.Fatalf("range %d: post-commit write missed new owner %s", mv.Range, mv.Target)
		}
	}
	if err := fl.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestChainBackendValidation(t *testing.T) {
	back, err := netblock.MemBackend(int64(tRanges) * tRangeBytes)
	if err != nil {
		t.Fatal(err)
	}
	ring := mkRing(t, 2, []cluster.Member{{ID: "a"}, {ID: "b"}})
	if _, err := fleet.NewChainBackend(nil, "a", ring, dialOpts()); err == nil {
		t.Fatal("nil backend accepted")
	}
	if _, err := fleet.NewChainBackend(back, "", ring, dialOpts()); err == nil {
		t.Fatal("empty ID accepted")
	}
	if _, err := fleet.NewChainBackend(back, "a", nil, dialOpts()); err == nil {
		t.Fatal("nil ring accepted")
	}
	small, err := netblock.MemBackend(tRangeBytes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fleet.NewChainBackend(small, "a", ring, dialOpts()); err == nil {
		t.Fatal("size mismatch accepted")
	}
	cb, err := fleet.NewChainBackend(back, "a", ring, dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	wrong := mkRing(t, 2, []cluster.Member{{ID: "a"}})
	if err := cb.SetRing(wrong); err != nil {
		t.Fatal(err) // same geometry, fewer members: fine
	}
	bad, err := cluster.NewRing(2, tRanges*2, tRangeBytes, []cluster.Member{{ID: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := cb.SetRing(bad); err == nil {
		t.Fatal("geometry change accepted")
	}
	if _, err := fleet.New(nil, dialOpts()); err == nil {
		t.Fatal("nil ring fleet accepted")
	}
	fl, err := fleet.New(ring, dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := fl.WriteAt(make([]byte, 8), ring.Size()); err == nil {
		t.Fatal("out-of-volume write accepted")
	}
}

func TestFleetErrorWhenAllReplicasDead(t *testing.T) {
	nodes, ring, fl := startFleet(t, []string{"a", "b", "c"}, 2)
	fill(t, fl, ring, 6)
	for _, id := range ring.Owners(0) {
		nodes[id].srv.Close()
	}
	buf := make([]byte, 64)
	err := fl.ReadAt(buf, 0)
	if err == nil {
		t.Fatal("read served with every replica dead")
	}
	if want := fmt.Sprintf("range %d", 0); !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not name the range", err)
	}
}

// TestFleetStaleEpochRefetch drives the staleepoch contract end to end
// over real TCP: a membership change the client never heard about makes
// its routing table stale, the old owner (still a ring member) refuses
// with netblock.ErrStaleEpoch, and the fleet either surfaces the contract
// error (no refetch source) or refetches the committed ring and retries
// against the current owners (SetRefetch installed).
// TestFleetDetectorHealth checks the wallclock detector path: Ping
// latency samples feed the EWMA, transport failures accumulate toward
// Down, and Stats exports the per-member classification.
func TestFleetDetectorHealth(t *testing.T) {
	nodes, ring, fl := startFleet(t, []string{"a", "b", "c"}, 2)
	det := cluster.NewDetector(cluster.DetectorConfig{FailAfter: 2})
	fl.SetDetector(det)
	fill(t, fl, ring, 5)

	infos := fl.PingAll()
	if len(infos) != 3 {
		t.Fatalf("PingAll answered %d of 3", len(infos))
	}
	st := fl.Stats()
	if st.Health == nil {
		t.Fatal("Stats.Health nil with detector installed")
	}
	for id, h := range st.Health {
		if h != cluster.Healthy {
			t.Fatalf("member %s classified %v before any failure", id, h)
		}
	}
	if det.EWMA("a") <= 0 {
		t.Fatal("ping latency did not feed the EWMA")
	}

	// Kill one node: consecutive ping failures must classify it Down.
	nodes["b"].srv.Close()
	nodes["b"].chain.Close()
	for i := 0; i < 2; i++ {
		fl.PingAll()
	}
	if got := fl.Stats().Health["b"]; got != cluster.Down {
		t.Fatalf("killed member classified %v, want down", got)
	}
	if got := fl.Stats().Health["a"]; got != cluster.Healthy {
		t.Fatalf("surviving member classified %v, want healthy", got)
	}

	// Data-path successes reset the run: a read served by the survivors
	// must not disturb their health, and the dead member's reads fail over.
	p := make([]byte, 512)
	if err := fl.ReadAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if got := fl.Stats().Health["a"]; got != cluster.Healthy {
		t.Fatalf("member a classified %v after served read", got)
	}
}

func TestFleetStaleEpochRefetch(t *testing.T) {
	nodes, ring1, fl := startFleet(t, []string{"a", "b"}, 1)
	model := fill(t, fl, ring1, 77)

	// Commit a join behind the client's back: node c comes up as a spare,
	// the moved ranges are streamed to it, and every server (but not the
	// client) swaps to the new ring.
	spare := startNode(t, "c", ring1)
	ring2, err := ring1.WithJoin(cluster.Member{ID: "c", Addr: spare.addr})
	if err != nil {
		t.Fatal(err)
	}
	moves := cluster.Moves(ring1, ring2)
	if len(moves) == 0 {
		t.Fatal("join moved no ranges; pick different member IDs")
	}
	if err := fl.Rebalance(ring1, ring2); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := n.chain.SetRing(ring2); err != nil {
			t.Fatal(err)
		}
	}
	if err := spare.chain.SetRing(ring2); err != nil {
		t.Fatal(err)
	}

	mv := moves[0]
	off := int64(mv.Range) * tRangeBytes
	buf := make([]byte, tRangeBytes)

	// Without a refetch source the refusal must surface as the contract
	// error — not as a generic failure, and not as a hang.
	if err := fl.ReadAt(buf, off); !errors.Is(err, netblock.ErrStaleEpoch) {
		t.Fatalf("stale read err = %v, want netblock.ErrStaleEpoch", err)
	}
	if err := fl.WriteAt(model[off:off+8], off); !errors.Is(err, netblock.ErrStaleEpoch) {
		t.Fatalf("stale write err = %v, want netblock.ErrStaleEpoch", err)
	}

	// A refetch source that cannot advance the ring must not spin: the
	// bounded retry gives up and the contract error still surfaces.
	fl.SetRefetch(func() *cluster.Ring { return fl.Ring() })
	if err := fl.ReadAt(buf, off); !errors.Is(err, netblock.ErrStaleEpoch) {
		t.Fatalf("non-advancing refetch err = %v, want netblock.ErrStaleEpoch", err)
	}
	if n := fl.Stats().Refetches; n != 0 {
		t.Fatalf("non-advancing refetch counted %d refetches", n)
	}

	// With the committed ring available, the same read self-heals: the
	// fleet refetches, installs ring2, and serves from the new owner.
	fl.SetRefetch(func() *cluster.Ring { return ring2 })
	if err := fl.ReadAt(buf, off); err != nil {
		t.Fatalf("read after refetch: %v", err)
	}
	if !bytes.Equal(buf, rangeSlice(model, mv.Range)) {
		t.Fatal("refetched read returned wrong bytes")
	}
	if n := fl.Stats().Refetches; n != 1 {
		t.Errorf("refetches = %d, want 1", n)
	}

	// The fleet now routes by ring2: the whole volume reads back, and a
	// write to the moved range lands on the new owner's chain.
	whole := make([]byte, ring2.Size())
	if err := fl.ReadAt(whole, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole, model) {
		t.Fatal("full volume mismatch after ring swap")
	}
	patch := bytes.Repeat([]byte{0xEE}, 64)
	if err := fl.WriteAt(patch, off); err != nil {
		t.Fatalf("write after refetch: %v", err)
	}
	owner := ring2.Owners(mv.Range)[0]
	var got []byte
	if owner == "c" {
		got = make([]byte, tRangeBytes)
		if err := spare.back.ReadAt(got, off); err != nil {
			t.Fatal(err)
		}
	} else {
		got = backendRange(t, nodes[owner], mv.Range)
	}
	if !bytes.Equal(got[:64], patch) {
		t.Fatalf("write after refetch missed new owner %s", owner)
	}
}
