package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// SupPhase is the supervisor's journaled lifecycle phase. The journal is
// written before the state it records takes effect on any node, so a
// supervisor restart can always tell which side of a transition boundary
// the crash landed on.
type SupPhase int

const (
	// SupStable: Cur at Epoch is the committed placement. Recovery
	// re-pushes it (idempotent) and resumes normal supervision.
	SupStable SupPhase = iota
	// SupTransition: a rebalance is in flight; the table carries Cur and
	// Next, and Pending lists the moves not yet streamed. Recovery resumes
	// streaming — or aborts cleanly — without violating the clean-head
	// invariant, because no node ever saw an epoch the journal does not.
	SupTransition
	// SupPush: a commit or abort has been decided and journaled, but its
	// epoch push may have reached only some nodes. Recovery re-pushes Cur
	// at Epoch to every node and rewrites the journal as SupStable —
	// finishing the interrupted push rather than re-deciding it. A commit's
	// push record also carries the moved ranges as Pending: recovery
	// re-quarantines each moved copy for catch-up verification, so a crash
	// between decide and push cannot skip the delta-window repair.
	SupPush
)

func (p SupPhase) String() string {
	switch p {
	case SupStable:
		return "stable"
	case SupTransition:
		return "transition"
	case SupPush:
		return "push"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// supJournalMagic versions the serialized format; a decoder refuses
// anything else rather than guessing.
const supJournalMagic = "srccache-supervisor-journal/v1"

// SupJournal is the supervisor's durable state: the epoch-versioned
// placement and the pending moves of an in-flight rebalance — everything a
// restarted supervisor needs to resume or cleanly abort. The encoding is a
// deterministic line format so the same state always serializes to the
// same bytes (journal writes are comparable across runs of a seeded
// schedule).
type SupJournal struct {
	Phase      SupPhase
	Epoch      uint64
	Replicas   int
	Ranges     int
	RangeBytes int64
	Cur        []Member
	Next       []Member // non-nil only while Phase == SupTransition
	Pending    []Move   // transition: unstreamed moves; push: moved copies to re-quarantine
}

// SnapshotSupJournal captures a routing table and its pending moves as a
// journal record. The phase is taken from the table shape unless the
// caller overrides it (SupPush records a stable-shaped table whose push is
// not yet complete).
func SnapshotSupJournal(t *Table, pending []Move, phase SupPhase) SupJournal {
	j := SupJournal{
		Phase:      phase,
		Epoch:      t.Epoch,
		Replicas:   t.Cur.Replicas,
		Ranges:     t.Cur.Ranges,
		RangeBytes: t.Cur.RangeBytes,
		Cur:        t.Cur.Members(),
		Pending:    append([]Move(nil), pending...),
	}
	if t.Next != nil {
		j.Next = t.Next.Members()
	}
	return j
}

// Table rebuilds the routing table (and pending moves) the journal
// records. The rings are reconstructed from the member lists, so the
// placement is bit-identical to the one journaled — Ring is a pure
// function of (geometry, member set).
func (j SupJournal) Table() (*Table, []Move, error) {
	cur, err := NewRing(j.Replicas, j.Ranges, j.RangeBytes, j.Cur)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: journal cur ring: %w", err)
	}
	t := &Table{Epoch: j.Epoch, Cur: cur}
	if j.Next != nil {
		next, err := NewRing(j.Replicas, j.Ranges, j.RangeBytes, j.Next)
		if err != nil {
			return nil, nil, fmt.Errorf("cluster: journal next ring: %w", err)
		}
		t.Next = next
	}
	return t, append([]Move(nil), j.Pending...), nil
}

// Encode serializes the journal. Member IDs and addresses must be free of
// the separators the line format uses; the supervisor validates its
// membership once here instead of trusting every caller.
func (j SupJournal) Encode() ([]byte, error) {
	if j.Phase == SupTransition && j.Next == nil {
		return nil, fmt.Errorf("cluster: transition journal without next membership")
	}
	if j.Phase != SupTransition && j.Next != nil {
		return nil, fmt.Errorf("cluster: %v journal carries transition state", j.Phase)
	}
	if j.Phase == SupStable && len(j.Pending) > 0 {
		return nil, fmt.Errorf("cluster: %v journal carries transition state", j.Phase)
	}
	var b strings.Builder
	b.WriteString(supJournalMagic)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "phase %s\n", j.Phase)
	fmt.Fprintf(&b, "epoch %d\n", j.Epoch)
	fmt.Fprintf(&b, "geometry %d %d %d\n", j.Replicas, j.Ranges, j.RangeBytes)
	if err := writeMembers(&b, "cur", j.Cur); err != nil {
		return nil, err
	}
	if j.Next != nil {
		if err := writeMembers(&b, "next", j.Next); err != nil {
			return nil, err
		}
	}
	if len(j.Pending) > 0 {
		b.WriteString("pending")
		for _, mv := range j.Pending {
			if strings.ContainsAny(mv.Target, " =\n") || mv.Target == "" {
				return nil, fmt.Errorf("cluster: move target %q not journalable", mv.Target)
			}
			fmt.Fprintf(&b, " %d=%s", mv.Range, mv.Target)
		}
		b.WriteByte('\n')
	}
	return []byte(b.String()), nil
}

func writeMembers(b *strings.Builder, key string, members []Member) error {
	b.WriteString(key)
	for _, m := range members {
		if m.ID == "" || strings.ContainsAny(m.ID, " =\n") {
			return fmt.Errorf("cluster: member ID %q not journalable", m.ID)
		}
		if strings.ContainsAny(m.Addr, " \n") {
			return fmt.Errorf("cluster: member address %q not journalable", m.Addr)
		}
		fmt.Fprintf(b, " %s=%s", m.ID, m.Addr)
	}
	b.WriteByte('\n')
	return nil
}

// DecodeSupJournal parses an encoded journal, validating structure and
// phase/shape consistency — a truncated or hand-damaged journal must fail
// loudly, not resurrect a half-written table.
func DecodeSupJournal(data []byte) (SupJournal, error) {
	var j SupJournal
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) == 0 || lines[0] != supJournalMagic {
		return j, fmt.Errorf("cluster: journal magic missing or unsupported")
	}
	seen := make(map[string]bool)
	for _, line := range lines[1:] {
		key, rest, _ := strings.Cut(line, " ")
		if seen[key] {
			return j, fmt.Errorf("cluster: duplicate journal key %q", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "phase":
			switch rest {
			case "stable":
				j.Phase = SupStable
			case "transition":
				j.Phase = SupTransition
			case "push":
				j.Phase = SupPush
			default:
				return j, fmt.Errorf("cluster: unknown journal phase %q", rest)
			}
		case "epoch":
			j.Epoch, err = strconv.ParseUint(rest, 10, 64)
		case "geometry":
			_, err = fmt.Sscanf(rest, "%d %d %d", &j.Replicas, &j.Ranges, &j.RangeBytes)
		case "cur":
			j.Cur, err = parseMembers(rest)
		case "next":
			j.Next, err = parseMembers(rest)
		case "pending":
			j.Pending, err = parseMoves(rest)
		default:
			return j, fmt.Errorf("cluster: unknown journal key %q", key)
		}
		if err != nil {
			return j, fmt.Errorf("cluster: journal %s: %w", key, err)
		}
	}
	for _, req := range []string{"phase", "epoch", "geometry", "cur"} {
		if !seen[req] {
			return j, fmt.Errorf("cluster: journal missing %q", req)
		}
	}
	if j.Phase == SupTransition && j.Next == nil {
		return j, fmt.Errorf("cluster: transition journal without next membership")
	}
	if j.Phase != SupTransition && j.Next != nil {
		return j, fmt.Errorf("cluster: %v journal carries transition state", j.Phase)
	}
	if j.Phase == SupStable && len(j.Pending) > 0 {
		return j, fmt.Errorf("cluster: %v journal carries transition state", j.Phase)
	}
	return j, nil
}

func parseMembers(rest string) ([]Member, error) {
	var members []Member
	for _, field := range strings.Fields(rest) {
		id, addr, ok := strings.Cut(field, "=")
		if !ok || id == "" {
			return nil, fmt.Errorf("member entry %q is not id=addr", field)
		}
		members = append(members, Member{ID: id, Addr: addr})
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("empty member list")
	}
	return members, nil
}

func parseMoves(rest string) ([]Move, error) {
	var moves []Move
	for _, field := range strings.Fields(rest) {
		rngStr, target, ok := strings.Cut(field, "=")
		if !ok || target == "" {
			return nil, fmt.Errorf("move entry %q is not range=target", field)
		}
		rng, err := strconv.Atoi(rngStr)
		if err != nil {
			return nil, fmt.Errorf("move entry %q: %w", field, err)
		}
		moves = append(moves, Move{Range: rng, Target: target})
	}
	return moves, nil
}
