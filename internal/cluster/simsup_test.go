package cluster

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// TestSupervisedChurn is the composed-failure acceptance harness: the same
// churn schedules as TestClusterChurn, but the rebalance lifecycle runs
// through the crashable, journaling supervisor actor, and each seed class
// forces one composed scenario (supervisor death mid-commit, node crash
// during repair during rebalance, fail-slow head during join) on top of
// background supervisor kills. Zero acknowledged-write loss and zero
// failed ops stay absolute. SUPERVISOR_SEEDS widens the sweep (CI's
// supervisor job sets it).
func TestSupervisedChurn(t *testing.T) {
	seeds := int64(50)
	if v := os.Getenv("SUPERVISOR_SEEDS"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("bad SUPERVISOR_SEEDS %q", v)
		}
		seeds = n
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := Sim(SimConfig{Seed: seed, Supervised: true})
			if err != nil {
				t.Fatal(err)
			}
			if v := res.Violations(); len(v) != 0 {
				t.Fatalf("invariants violated: %v\n%+v", v, res)
			}
			if res.Reads == 0 || res.Writes == 0 {
				t.Fatalf("schedule exercised too little: %+v", res)
			}
		})
	}
}

// TestSupervisedChurnDeterministic: a supervised run is still a pure
// function of its config — supervisor crashes, journal recoveries and all.
func TestSupervisedChurnDeterministic(t *testing.T) {
	cfg := SimConfig{Seed: 9, Ops: 600, Supervised: true}
	a, err := Sim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a.Signature() != b.Signature() {
		t.Fatalf("same seed, different supervised runs:\n  %+v\n  %+v", a, b)
	}
	// Supervision must change the schedule (the actor consumes randomness
	// and redirects the lifecycle), not just relabel it.
	c, err := Sim(SimConfig{Seed: 9, Ops: 600})
	if err != nil {
		t.Fatal(err)
	}
	if c.Signature() == a.Signature() {
		t.Fatal("supervised and unsupervised runs produced identical signatures")
	}
}

// TestSupervisedChurnCoverage sweeps every seed class and requires the
// composed matrix to actually fire: supervisor kills and recoveries,
// mid-commit crashes that a successor finishes from the journal, node
// crashes layered on repair layered on rebalance, and fail-slow heads
// during joins. A matrix that never composes proves nothing.
func TestSupervisedChurnCoverage(t *testing.T) {
	var total Result
	for seed := int64(1); seed <= 18; seed++ {
		res, err := Sim(SimConfig{Seed: seed, Ops: 800, Supervised: true})
		if err != nil {
			t.Fatal(err)
		}
		if v := res.Violations(); len(v) != 0 {
			t.Fatalf("seed %d: invariants violated: %v", seed, v)
		}
		total.SupKills += res.SupKills
		total.SupRestarts += res.SupRestarts
		total.SupResumes += res.SupResumes
		total.SupRecoverPushes += res.SupRecoverPushes
		total.MidCommitCrashes += res.MidCommitCrashes
		total.RepairRebalanceCrashes += res.RepairRebalanceCrashes
		total.SlowJoinHeads += res.SlowJoinHeads
		total.Commits += res.Commits
		total.Joins += res.Joins
		total.Leaves += res.Leaves
	}
	if total.SupKills == 0 || total.SupRestarts == 0 {
		t.Fatalf("supervisor lifecycle faults never fired: %+v", total)
	}
	if total.MidCommitCrashes == 0 || total.SupRecoverPushes == 0 {
		t.Fatalf("mid-commit crash/recovery never composed: %+v", total)
	}
	if total.SupResumes == 0 {
		t.Fatalf("supervisor never resumed a journaled transition: %+v", total)
	}
	if total.RepairRebalanceCrashes == 0 {
		t.Fatalf("crash-during-repair-during-rebalance never composed: %+v", total)
	}
	if total.SlowJoinHeads == 0 {
		t.Fatalf("fail-slow head during join never composed: %+v", total)
	}
	if total.Commits == 0 || total.Joins == 0 || total.Leaves == 0 {
		t.Fatalf("supervised membership churn not exercised: %+v", total)
	}
}
