package cluster

import (
	"sort"

	"srccache/internal/vtime"
)

// Health is a member's classification, mirroring blockdev.FaultPlan's
// fault taxonomy one level up: Down is fail-stop (the node errors or does
// not answer), Slow is fail-slow (it answers, but at a latency that would
// stall every chain routed through it).
type Health int

const (
	Healthy Health = iota
	Slow
	Down
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Slow:
		return "slow"
	default:
		return "down"
	}
}

// DetectorConfig tunes the failure detector's thresholds.
type DetectorConfig struct {
	// Baseline is the expected healthy per-op round-trip latency; the
	// fail-slow test compares the observed EWMA against it.
	Baseline vtime.Duration
	// SlowFactor classifies a member as Slow once its latency EWMA exceeds
	// SlowFactor×Baseline (default 4).
	SlowFactor float64
	// FailAfter classifies a member as Down after this many consecutive
	// failed observations (default 3) — transient hiccups below the run
	// length stay Healthy, matching the error-budget spirit of the repair
	// escalation in internal/src.
	FailAfter int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.Baseline <= 0 {
		c.Baseline = vtime.Millisecond
	}
	if c.SlowFactor <= 1 {
		c.SlowFactor = 4
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	return c
}

// score is one member's running observation state.
type score struct {
	consecFails int
	ewmaNs      float64
	samples     int
}

// Detector turns per-op latency/error observations into member health.
// It is a pure accumulator: feed it the same observation sequence and it
// classifies identically, which keeps the churn harness deterministic.
// Callers (the routing client, the ping sweep) own when to observe.
type Detector struct {
	cfg DetectorConfig
	m   map[string]*score
}

// NewDetector builds a detector.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{cfg: cfg.withDefaults(), m: make(map[string]*score)}
}

// ewmaAlpha weights the latest latency sample; 0.3 reacts to a developing
// fail-slow within a few observations without flapping on one outlier.
const ewmaAlpha = 0.3

// Observe records one interaction with a member: its round-trip latency
// and whether it failed (error, timeout, unreachable).
func (d *Detector) Observe(id string, lat vtime.Duration, failed bool) {
	s := d.m[id]
	if s == nil {
		s = &score{}
		d.m[id] = s
	}
	if failed {
		s.consecFails++
		return
	}
	s.consecFails = 0
	s.samples++
	if s.samples == 1 {
		s.ewmaNs = float64(lat)
		return
	}
	s.ewmaNs = ewmaAlpha*float64(lat) + (1-ewmaAlpha)*s.ewmaNs
}

// ObserveOK records a successful interaction with no useful latency signal
// (data ops, whose duration scales with payload size rather than node
// health): it resets the consecutive-failure run so a recovered member
// climbs back to Healthy, but leaves the ping-driven latency EWMA alone.
func (d *Detector) ObserveOK(id string) {
	s := d.m[id]
	if s == nil {
		s = &score{}
		d.m[id] = s
	}
	s.consecFails = 0
}

// Forget drops a member's history — used when a member leaves the ring so
// a later rejoin starts fresh.
func (d *Detector) Forget(id string) { delete(d.m, id) }

// State classifies a member. Members never observed are Healthy: the
// detector must not block routing to a node it simply has not met.
func (d *Detector) State(id string) Health {
	s := d.m[id]
	if s == nil {
		return Healthy
	}
	if s.consecFails >= d.cfg.FailAfter {
		return Down
	}
	if s.samples >= 3 && s.ewmaNs > d.cfg.SlowFactor*float64(d.cfg.Baseline) {
		return Slow
	}
	return Healthy
}

// EWMA reports a member's smoothed latency (0 if never observed
// successfully).
func (d *Detector) EWMA(id string) vtime.Duration {
	if s := d.m[id]; s != nil {
		return vtime.Duration(s.ewmaNs)
	}
	return 0
}

// Classified returns the IDs currently in each non-healthy state, sorted —
// the harness's coverage counters read these.
func (d *Detector) Classified() (down, slow []string) {
	for id := range d.m {
		switch d.State(id) {
		case Down:
			down = append(down, id)
		case Slow:
			slow = append(slow, id)
		}
	}
	sort.Strings(down)
	sort.Strings(slow)
	return down, slow
}
