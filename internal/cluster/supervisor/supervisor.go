// Package supervisor is the autonomous control plane for a real-TCP
// netblock fleet: a long-running daemon that owns the authoritative
// epoch-versioned routing table and drives the full failure lifecycle the
// simulation's harness used to drive by hand — periodic pings feeding the
// cluster failure detector (wall-clock latencies scored against the same
// EWMA thresholds), quarantine of replicas that missed writes while down,
// hash-verified repair scheduling with bounded concurrency and
// retry/backoff, and the three-epoch join/leave rebalance executed with
// fleet.StreamMove against live servers.
//
// The supervisor is crash-safe: every placement transition is journaled
// (cluster.SupJournal) before any node observes it, so a restart
// mid-rebalance resumes the stream — or finishes an interrupted commit
// push — without violating the clean-head invariant. When it cannot act
// safely (no clean source, a move target down, the detector disagreeing
// with a live ping) it holds state and surfaces a typed Hold instead of
// wedging or guessing.
//
// Epoch distribution reuses the existing ping/SetEpoch channel: nodes
// advertise their epoch in every ping answer, and the supervisor re-pushes
// the committed table to any healthy member advertising a stale epoch —
// there is deliberately no management op in the wire protocol.
package supervisor

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"srccache/internal/cluster"
	"srccache/internal/cluster/fleet"
	"srccache/internal/netblock"
	"srccache/internal/vtime"
)

// Node registers one fleet member (or spare) with the supervisor: its ring
// identity/address plus the management push the supervisor installs
// committed placements through. Push is in-process (SetRing + SetEpoch on
// the node's chain backend and server); the data/ping plane is real TCP.
type Node struct {
	Member cluster.Member
	Push   func(ring *cluster.Ring, epoch uint64) error
}

// Config parameterizes a supervisor.
type Config struct {
	// Ring is the initial committed placement (epoch 1) when no journal
	// exists; with a journal present, the journal wins.
	Ring *cluster.Ring
	// Nodes registers every dialable node, including spares that may join
	// later. More can be added with Register.
	Nodes []Node
	// JournalPath persists the supervisor's state ("" keeps it in memory —
	// crash-safe only across Tick boundaries, not process restarts).
	JournalPath string
	// Detector tunes fail-stop/fail-slow classification; zero values take
	// the cluster defaults.
	Detector cluster.DetectorConfig
	// Client sets the dial/request timeouts for pings and repair streams.
	Client netblock.ClientOptions
	// RepairConcurrency bounds simultaneous repair streams (default 2).
	RepairConcurrency int
	// RepairAttempts bounds retries of one repair per tick (default 3).
	RepairAttempts int
	// RepairBackoff is the base backoff between repair retries, doubling
	// per attempt (default 25ms).
	RepairBackoff time.Duration
	// StepsPerTick bounds rebalance moves streamed per tick (default 2).
	StepsPerTick int
	// MaxRepairsPerTick bounds repairs started per tick (default 8).
	MaxRepairsPerTick int
	// AbortAfter is how many consecutive held ticks an in-flight
	// transition survives before the supervisor aborts it (default 16).
	AbortAfter int
	// Sleep replaces time.Sleep for repair backoff (tests inject a no-op).
	Sleep func(time.Duration)
}

func (c Config) withDefaults() Config {
	if c.RepairConcurrency <= 0 {
		c.RepairConcurrency = 2
	}
	if c.RepairAttempts <= 0 {
		c.RepairAttempts = 3
	}
	if c.RepairBackoff <= 0 {
		c.RepairBackoff = 25 * time.Millisecond
	}
	if c.StepsPerTick <= 0 {
		c.StepsPerTick = 2
	}
	if c.MaxRepairsPerTick <= 0 {
		c.MaxRepairsPerTick = 8
	}
	if c.AbortAfter <= 0 {
		c.AbortAfter = 16
	}
	if c.Client.DialTimeout <= 0 {
		c.Client.DialTimeout = 500 * time.Millisecond
	}
	if c.Client.Timeout <= 0 {
		c.Client.Timeout = 2 * time.Second
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// HoldReason is the typed cause of a supervision action deliberately not
// taken this tick. Holds are the graceful-degradation surface: state is
// kept, the reason is reported, and the action is retried when conditions
// change.
type HoldReason string

const (
	// HoldTargetDown: a move's target is not healthy; the move is
	// re-queued rather than streamed at a dead node.
	HoldTargetDown HoldReason = "target-down"
	// HoldNoCleanSource: a stream or repair found no serving source
	// replica. "No clean source" must not be read as "never written" —
	// the work is retried once a copy recovers.
	HoldNoCleanSource HoldReason = "no-clean-source"
	// HoldCommitUnsafe: every move streamed, but a target regressed; the
	// commit waits rather than strand a range on degraded copies.
	HoldCommitUnsafe HoldReason = "commit-unsafe"
	// HoldDetectorDisagree: the detector classifies a member Down, but its
	// latest ping answered — the supervisor defers quarantine until the
	// signals agree instead of acting on a flapping classification.
	HoldDetectorDisagree HoldReason = "detector-disagree"
	// HoldRepairFailed: a repair exhausted its per-tick retry budget; the
	// quarantine stays and the repair re-runs next tick.
	HoldRepairFailed HoldReason = "repair-failed"
)

// Hold records one deferred action. Range is -1 for node-scoped holds.
type Hold struct {
	Reason HoldReason
	Node   string
	Range  int
}

// Status is a point-in-time snapshot of the supervisor's world view and
// lifetime counters.
type Status struct {
	Epoch       uint64
	Phase       cluster.SupPhase
	Pending     int
	Quarantined []cluster.DegKey
	Down, Slow  []string
	Departing   []string // members that announced a planned shutdown
	Holds       []Hold

	Detections, Repairs, Commits, Aborts int
	Resumes, RecoveredPushes             int

	// DetectLatency is the last observed kill→classified-Down interval;
	// RepairLatency the last Down→quarantine-empty interval (MTTR).
	DetectLatency, RepairLatency time.Duration
}

// errCrashed is returned by Tick after a test failpoint killed the
// supervisor mid-transition; a real deployment never sees it.
var errCrashed = errors.New("supervisor: crashed at failpoint")

// Supervisor is the control-plane daemon. All public methods are safe for
// concurrent use; Tick is the single supervision round Start runs
// periodically.
type Supervisor struct {
	cfg Config
	fl  *fleet.Fleet
	det *cluster.Detector

	mu          sync.Mutex
	nodes       map[string]Node
	conns       map[string]*netblock.Client // ping connections
	table       *cluster.Table
	pending     []cluster.Move
	phase       cluster.SupPhase
	pushed      uint64 // last stable epoch pushed to nodes
	quar        map[cluster.DegKey]int
	departing   map[string]bool
	wasDown     map[string]bool
	firstFail   map[string]time.Time
	downSince   map[string]time.Time
	holds       []Hold
	heldTicks   int
	dead        bool
	lastJournal []byte // in-memory journal when JournalPath is ""

	detections, repairs, commits, aborts int
	resumes, recoveredPushes             int
	detectLat, repairLat                 time.Duration

	// failpoint lets crash tests kill the supervisor at a named point
	// (set only from in-package tests; nil in production).
	failpoint func(point string) bool

	stop chan struct{} //srclint:owns Close (signal channel: closed once, never sent on)
	once sync.Once
	wg   sync.WaitGroup
}

// New builds a supervisor. If cfg.JournalPath names an existing journal,
// the supervisor recovers from it — resuming an in-flight transition or
// finishing an interrupted commit push — instead of starting from
// cfg.Ring.
func New(cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	s := &Supervisor{
		cfg:       cfg,
		det:       cluster.NewDetector(cfg.Detector),
		nodes:     make(map[string]Node),
		conns:     make(map[string]*netblock.Client),
		quar:      make(map[cluster.DegKey]int),
		departing: make(map[string]bool),
		wasDown:   make(map[string]bool),
		firstFail: make(map[string]time.Time),
		downSince: make(map[string]time.Time),
		stop:      make(chan struct{}),
	}
	for _, n := range cfg.Nodes {
		if n.Member.ID == "" || n.Push == nil {
			return nil, fmt.Errorf("supervisor: node %+v needs an ID and a push", n.Member)
		}
		s.nodes[n.Member.ID] = n
	}

	journal, err := s.loadJournal()
	if err != nil {
		return nil, err
	}
	switch {
	case journal != nil:
		if err := s.recover(*journal); err != nil {
			return nil, err
		}
	case cfg.Ring != nil:
		s.table = &cluster.Table{Epoch: 1, Cur: cfg.Ring}
		s.phase = cluster.SupStable
		s.pushed = s.table.Epoch
		if err := s.persistLocked(cluster.SnapshotSupJournal(s.table, nil, cluster.SupStable)); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("supervisor: no initial ring and no journal at %q", cfg.JournalPath)
	}

	fl, err := fleet.New(s.table.Cur, cfg.Client)
	if err != nil {
		return nil, err
	}
	s.fl = fl
	s.pushAllLocked()
	return s, nil
}

// loadJournal reads the persisted journal, if any.
func (s *Supervisor) loadJournal() (*cluster.SupJournal, error) {
	if s.cfg.JournalPath == "" {
		return nil, nil
	}
	data, err := os.ReadFile(s.cfg.JournalPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("supervisor: read journal: %w", err)
	}
	j, err := cluster.DecodeSupJournal(data)
	if err != nil {
		return nil, err
	}
	return &j, nil
}

// recover adopts journaled state. Resume-vs-abort rules:
//   - stable: adopt and re-push lazily (epoch self-heal).
//   - push: a commit/abort was decided but its push may be partial —
//     finish it (re-push is idempotent) and journal stable.
//   - transition: resume streaming if every member of the target
//     placement is registered; otherwise abort at a fresh epoch. Nothing
//     was committed, so aborting only discards streamed garbage.
func (s *Supervisor) recover(j cluster.SupJournal) error {
	table, pending, err := j.Table()
	if err != nil {
		return err
	}
	s.table, s.pending, s.phase = table, pending, j.Phase
	switch j.Phase {
	case cluster.SupStable:
		s.pushed = table.Epoch
	case cluster.SupPush:
		// The decided table is stable-shaped; the pushes happen below in
		// New (pushAllLocked), after which the journal records stable. The
		// record's pending moves are the commit's moved copies: re-adopt
		// their quarantine so the crash cannot skip catch-up verification.
		for _, mv := range pending {
			s.quar[cluster.DegKey{Node: mv.Target, Range: mv.Range}] = 0
		}
		s.pending = nil
		s.pushed = table.Epoch
		s.phase = cluster.SupStable
		if err := s.persistLocked(cluster.SnapshotSupJournal(s.table, nil, cluster.SupStable)); err != nil {
			return err
		}
		s.recoveredPushes++
	case cluster.SupTransition:
		s.pushed = table.Epoch - 1 // nodes never saw the transition epoch
		for _, m := range table.Next.Members() {
			if _, ok := s.nodes[m.ID]; !ok {
				// The target placement names a node this supervisor cannot
				// manage: resuming could stream at an address nobody
				// registered. Abort cleanly instead.
				s.table = &cluster.Table{Epoch: table.Epoch + 1, Cur: table.Cur}
				s.pending = nil
				s.phase = cluster.SupStable
				s.pushed = s.table.Epoch
				s.aborts++
				return s.persistLocked(cluster.SnapshotSupJournal(s.table, nil, cluster.SupStable))
			}
		}
		s.resumes++
	}
	return nil
}

// Register adds a node (typically a spare that will join later).
func (s *Supervisor) Register(n Node) error {
	if n.Member.ID == "" || n.Push == nil {
		return fmt.Errorf("supervisor: node %+v needs an ID and a push", n.Member)
	}
	s.mu.Lock()
	s.nodes[n.Member.ID] = n
	s.mu.Unlock()
	return nil
}

// Ring returns the committed placement — the refetch source fleet clients
// install with SetRefetch.
func (s *Supervisor) Ring() *cluster.Ring {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Cur
}

// Epoch returns the authoritative table epoch.
func (s *Supervisor) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Epoch
}

// Start runs Tick every interval until Close.
func (s *Supervisor) Start(every time.Duration) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				_, _ = s.Tick()
			case <-s.stop:
				return
			}
		}
	}()
}

// Close stops the tick loop and closes the supervisor's connections.
func (s *Supervisor) Close() error {
	s.once.Do(func() { close(s.stop) })
	s.wg.Wait()
	s.mu.Lock()
	conns := s.conns
	s.conns = make(map[string]*netblock.Client)
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	return s.fl.Close()
}

// pingResult is one node's probe outcome this tick.
type pingResult struct {
	info netblock.PingInfo
	lat  time.Duration
	err  error
}

// Tick runs one supervision round: ping sweep, classification and
// quarantine, stale-epoch re-push, rebalance progress, and repair. It
// returns the post-tick status; tests drive it directly for determinism,
// Start drives it on a timer.
func (s *Supervisor) Tick() (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead {
		return s.statusLocked(), errCrashed
	}
	s.holds = s.holds[:0]
	infos := s.pingSweepLocked()
	s.classifyLocked(infos)
	s.repushLocked(infos)
	if err := s.advanceLocked(infos); err != nil {
		return s.statusLocked(), err
	}
	s.repairLocked(infos)
	return s.statusLocked(), nil
}

// registeredIDs returns every registered node ID, sorted for
// deterministic sweep order.
func (s *Supervisor) registeredIDs() []string {
	ids := make([]string, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// pingSweepLocked probes every registered node over TCP, timing each
// round trip for the detector.
func (s *Supervisor) pingSweepLocked(ids ...string) map[string]pingResult {
	if len(ids) == 0 {
		ids = s.registeredIDs()
	}
	out := make(map[string]pingResult, len(ids))
	for _, id := range ids {
		start := time.Now()
		info, err := s.pingLocked(id)
		out[id] = pingResult{info: info, lat: time.Since(start), err: err}
	}
	return out
}

// pingLocked probes one node on a cached connection, redialing on first
// use or after a failure drop.
func (s *Supervisor) pingLocked(id string) (netblock.PingInfo, error) {
	c := s.conns[id]
	if c == nil {
		n, ok := s.nodes[id]
		if !ok {
			return netblock.PingInfo{}, fmt.Errorf("supervisor: unknown node %q", id)
		}
		var err error
		c, err = netblock.DialOptions(n.Member.Addr, s.cfg.Client)
		if err != nil {
			return netblock.PingInfo{}, err
		}
		s.conns[id] = c
	}
	info, err := c.Ping()
	if err != nil {
		delete(s.conns, id)
		c.Close()
	}
	return info, err
}

// classifyLocked feeds the sweep into the detector and quarantines newly
// Down members. A member that announced a planned drain is reclassified as
// departing: its later silence is a scheduled departure, not a fail-stop,
// so it accumulates no failure run and triggers no quarantine.
func (s *Supervisor) classifyLocked(infos map[string]pingResult) {
	now := time.Now()
	for _, id := range s.registeredIDs() {
		r, ok := infos[id]
		if !ok {
			continue
		}
		switch {
		case r.err == nil && r.info.Draining:
			if !s.departing[id] {
				s.departing[id] = true
				s.det.Forget(id)
				s.firstFail[id] = time.Time{}
			}
		case s.departing[id]:
			if r.err == nil {
				// Back without the drain flag: the planned restart
				// completed; observe it fresh.
				delete(s.departing, id)
				s.det.ObserveOK(id)
			}
			// Still silent: scheduled departure, not a failure — observe
			// nothing.
		case r.err != nil:
			if s.firstFail[id].IsZero() {
				s.firstFail[id] = now
			}
			s.det.Observe(id, vtime.FromStd(s.cfg.Client.Timeout), true)
		default:
			s.det.Observe(id, vtime.FromStd(r.lat), false)
		}
	}
	for id, st := range s.memberStatesLocked(infos) {
		switch st {
		case cluster.Down:
			if s.wasDown[id] {
				continue
			}
			if r, ok := infos[id]; ok && r.err == nil {
				// The detector says Down but the node just answered:
				// signals disagree — hold instead of quarantining a member
				// that is visibly serving.
				s.holdLocked(HoldDetectorDisagree, id, -1)
				continue
			}
			s.wasDown[id] = true
			s.detections++
			s.downSince[id] = now
			if !s.firstFail[id].IsZero() {
				s.detectLat = now.Sub(s.firstFail[id])
			}
			s.quarantineNodeLocked(id)
		default:
			if s.wasDown[id] {
				delete(s.wasDown, id)
				s.firstFail[id] = time.Time{}
			}
		}
	}
}

// memberStatesLocked classifies every member of the current (and pending)
// placement, in deterministic order.
func (s *Supervisor) memberStatesLocked(map[string]pingResult) map[string]cluster.Health {
	out := make(map[string]cluster.Health)
	for _, m := range s.table.Cur.Members() {
		out[m.ID] = s.det.State(m.ID)
	}
	if s.table.Next != nil {
		for _, m := range s.table.Next.Members() {
			out[m.ID] = s.det.State(m.ID)
		}
	}
	return out
}

// quarantineNodeLocked marks every range the downed member serves as
// degraded on that member: while it was away it missed every write, so
// until a hash-verified repair confirms its copies they must not serve.
func (s *Supervisor) quarantineNodeLocked(id string) {
	for rng := 0; rng < s.table.Cur.Ranges; rng++ {
		if s.table.Cur.OwnedBy(rng, id) {
			if _, ok := s.quar[cluster.DegKey{Node: id, Range: rng}]; !ok {
				s.quar[cluster.DegKey{Node: id, Range: rng}] = 0
			}
		}
	}
}

// repushLocked heals stale epochs through the ping channel: any healthy,
// non-departing member advertising an epoch older than the last committed
// push gets the committed table re-installed — how a restarted node
// rejoins the routing without a management protocol.
func (s *Supervisor) repushLocked(infos map[string]pingResult) {
	for _, m := range s.table.Cur.Members() {
		r, ok := infos[m.ID]
		if !ok || r.err != nil || r.info.Draining || r.info.Epoch >= s.pushed {
			continue
		}
		if n, ok := s.nodes[m.ID]; ok {
			_ = n.Push(s.table.Cur, s.pushed)
		}
	}
}

// pushAllLocked installs the committed table on every registered member of
// the current placement. Failures are left to the per-tick re-push.
func (s *Supervisor) pushAllLocked() {
	for _, m := range s.table.Cur.Members() {
		if n, ok := s.nodes[m.ID]; ok {
			_ = n.Push(s.table.Cur, s.pushed)
		}
	}
	if s.fl != nil {
		_ = s.fl.SetRing(s.table.Cur)
	}
}

// holdLocked records a typed deferred action.
func (s *Supervisor) holdLocked(reason HoldReason, node string, rng int) {
	s.holds = append(s.holds, Hold{Reason: reason, Node: node, Range: rng})
}

// refreshFleet re-syncs the data-path client to the given authoritative
// placement after a node refused an op at a stale epoch. The supervisor is
// the epoch authority, so a refusal means its own client view lagged a
// push (e.g. a node restarted into a newer epoch from a prior
// incarnation); the table itself never moves in response. Safe without
// s.mu — the fleet locks internally — so repair workers can call it while
// the ticking goroutine holds the supervisor lock.
func (s *Supervisor) refreshFleet(cur *cluster.Ring) {
	_ = s.fl.SetRing(cur)
}

// persistLocked writes the journal durably (temp file + rename) before the
// state it records takes effect anywhere.
func (s *Supervisor) persistLocked(j cluster.SupJournal) error {
	data, err := j.Encode()
	if err != nil {
		return err
	}
	if s.cfg.JournalPath == "" {
		s.lastJournal = data
		return nil
	}
	tmp := s.cfg.JournalPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.cfg.JournalPath)
}

// healthyLocked reports whether a node can be an actor in a transition
// step right now.
func (s *Supervisor) healthyLocked(id string, infos map[string]pingResult) bool {
	if s.departing[id] {
		return false
	}
	if r, ok := infos[id]; !ok || r.err != nil {
		return false
	}
	return s.det.State(id) != cluster.Down
}

// advanceLocked pushes an in-flight transition forward: stream up to
// StepsPerTick pending moves, commit when the pending set is empty and
// every target is healthy, abort when held too long.
func (s *Supervisor) advanceLocked(infos map[string]pingResult) error {
	if s.phase != cluster.SupTransition {
		return nil
	}
	progressed := false
	for i := 0; i < s.cfg.StepsPerTick && len(s.pending) > 0; i++ {
		mv := s.pending[0]
		if !s.healthyLocked(mv.Target, infos) {
			s.holdLocked(HoldTargetDown, mv.Target, mv.Range)
			s.pending = append(s.pending[1:], mv)
			break
		}
		if err := s.fl.StreamMove(s.table.Cur, s.table.Next, mv); err != nil {
			if errors.Is(err, netblock.ErrStaleEpoch) {
				s.refreshFleet(s.table.Cur)
			}
			s.holdLocked(HoldNoCleanSource, mv.Target, mv.Range)
			s.pending = append(s.pending[1:], mv)
			continue
		}
		s.pending = s.pending[1:]
		progressed = true
		if err := s.persistLocked(cluster.SnapshotSupJournal(s.table, s.pending, cluster.SupTransition)); err != nil {
			return err
		}
	}
	if len(s.pending) == 0 {
		if s.commitSafeLocked(infos) {
			return s.commitLocked()
		}
		s.holdLocked(HoldCommitUnsafe, "", -1)
	}
	if progressed {
		s.heldTicks = 0
	} else {
		s.heldTicks++
		if s.heldTicks > s.cfg.AbortAfter {
			return s.abortLocked()
		}
	}
	return nil
}

// commitSafeLocked: every member of the new placement must be healthy and
// staying — committing at a dead or departing target would strand its
// ranges on copies nobody verified.
func (s *Supervisor) commitSafeLocked(infos map[string]pingResult) bool {
	for _, m := range s.table.Next.Members() {
		if !s.healthyLocked(m.ID, infos) {
			return false
		}
	}
	return true
}

// commitLocked finishes the transition. Ordering is the crash-safety
// contract: journal the decided table first (phase push), then swap and
// push — a crash between the two re-pushes on recovery instead of
// re-deciding, so no node ever observes an epoch the journal does not.
func (s *Supervisor) commitLocked() error {
	newT := &cluster.Table{Epoch: s.table.Epoch + 1, Cur: s.table.Next}
	moved := cluster.Moves(s.table.Cur, newT.Cur)
	if err := s.persistLocked(cluster.SnapshotSupJournal(newT, moved, cluster.SupPush)); err != nil {
		return err
	}
	if s.failpoint != nil && s.failpoint("commit-push") {
		s.dead = true
		return errCrashed
	}
	departed := s.table.Cur.Members()
	s.table = newT
	s.pending = nil
	s.phase = cluster.SupStable
	s.pushed = newT.Epoch
	s.pushAllLocked()
	// Members that left the placement stop being supervised.
	for _, m := range departed {
		if _, still := newT.Cur.Member(m.ID); !still {
			s.det.Forget(m.ID)
			delete(s.departing, m.ID)
		}
	}
	// Writes that landed between a move's stream and this push reached the
	// old chain only: quarantine each moved copy until a hash-verified
	// repair from a surviving replica confirms (or heals) it.
	for _, mv := range moved {
		if _, ok := s.quar[cluster.DegKey{Node: mv.Target, Range: mv.Range}]; !ok {
			s.quar[cluster.DegKey{Node: mv.Target, Range: mv.Range}] = 0
		}
	}
	if err := s.persistLocked(cluster.SnapshotSupJournal(s.table, nil, cluster.SupStable)); err != nil {
		return err
	}
	s.commits++
	s.heldTicks = 0
	return nil
}

// abortLocked cancels the transition at a fresh epoch with the old
// placement — streamed ranges stay on their targets as unrouted garbage.
func (s *Supervisor) abortLocked() error {
	newT := &cluster.Table{Epoch: s.table.Epoch + 1, Cur: s.table.Cur}
	if err := s.persistLocked(cluster.SnapshotSupJournal(newT, nil, cluster.SupPush)); err != nil {
		return err
	}
	if s.failpoint != nil && s.failpoint("abort-push") {
		s.dead = true
		return errCrashed
	}
	s.table = newT
	s.pending = nil
	s.phase = cluster.SupStable
	s.pushed = newT.Epoch
	s.pushAllLocked()
	if err := s.persistLocked(cluster.SnapshotSupJournal(s.table, nil, cluster.SupStable)); err != nil {
		return err
	}
	s.aborts++
	s.heldTicks = 0
	return nil
}

// BeginJoin starts pulling a registered node into the placement. The
// transition is journaled before any stream runs.
func (s *Supervisor) BeginJoin(m cluster.Member) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.phase != cluster.SupStable {
		return fmt.Errorf("supervisor: rebalance already in flight")
	}
	if _, ok := s.nodes[m.ID]; !ok {
		return fmt.Errorf("supervisor: joining node %q not registered", m.ID)
	}
	next, err := s.table.Cur.WithJoin(m)
	if err != nil {
		return err
	}
	return s.beginLocked(next)
}

// BeginLeave starts a graceful departure: the member keeps serving while
// its ranges stream to their new owners.
func (s *Supervisor) BeginLeave(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.phase != cluster.SupStable {
		return fmt.Errorf("supervisor: rebalance already in flight")
	}
	next, err := s.table.Cur.WithLeave(id)
	if err != nil {
		return err
	}
	return s.beginLocked(next)
}

func (s *Supervisor) beginLocked(next *cluster.Ring) error {
	table := &cluster.Table{Epoch: s.table.Epoch + 1, Cur: s.table.Cur, Next: next}
	pending := cluster.Moves(s.table.Cur, next)
	if err := s.persistLocked(cluster.SnapshotSupJournal(table, pending, cluster.SupTransition)); err != nil {
		return err
	}
	s.table, s.pending, s.phase = table, pending, cluster.SupTransition
	s.heldTicks = 0
	return nil
}

// repairLocked schedules hash-verified repairs for quarantined copies
// whose node answers pings, with bounded concurrency and per-repair
// retry/backoff. A node that no longer owns the range sheds its mark
// without traffic (membership moved on).
func (s *Supervisor) repairLocked(infos map[string]pingResult) {
	keys := make([]cluster.DegKey, 0, len(s.quar))
	for k := range s.quar {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		return keys[i].Range < keys[j].Range
	})

	var eligible []cluster.DegKey
	for _, k := range keys {
		if !s.table.Cur.OwnedBy(k.Range, k.Node) {
			delete(s.quar, k)
			continue
		}
		if !s.healthyLocked(k.Node, infos) {
			continue // still down or departing; repair when it answers
		}
		eligible = append(eligible, k)
		if len(eligible) >= s.cfg.MaxRepairsPerTick {
			break
		}
	}
	if len(eligible) == 0 {
		return
	}

	type result struct {
		key cluster.DegKey
		err error
	}
	cur := s.table.Cur // captured under s.mu; workers must not take it
	results := make([]result, len(eligible))
	sem := make(chan struct{}, s.cfg.RepairConcurrency)
	var wg sync.WaitGroup
	for i, k := range eligible {
		wg.Add(1)
		go func(i int, k cluster.DegKey) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			var err error
			for attempt := 0; attempt < s.cfg.RepairAttempts; attempt++ {
				if err = s.fl.RepairRange(k.Node, k.Range); err == nil {
					break
				}
				if errors.Is(err, netblock.ErrStaleEpoch) {
					s.refreshFleet(cur)
				}
				s.cfg.Sleep(s.cfg.RepairBackoff << attempt)
			}
			results[i] = result{key: k, err: err}
		}(i, k)
	}
	wg.Wait()

	now := time.Now()
	for _, r := range results {
		if r.err != nil {
			s.quar[r.key]++
			reason := HoldRepairFailed
			if strings.Contains(r.err.Error(), "no source replica") {
				reason = HoldNoCleanSource
			}
			s.holdLocked(reason, r.key.Node, r.key.Range)
			continue
		}
		delete(s.quar, r.key)
		s.repairs++
		if since, ok := s.downSince[r.key.Node]; ok && s.nodeClearLocked(r.key.Node) {
			s.repairLat = now.Sub(since)
			delete(s.downSince, r.key.Node)
		}
	}
}

// nodeClearLocked reports whether a node has no quarantined copies left.
func (s *Supervisor) nodeClearLocked(id string) bool {
	for k := range s.quar {
		if k.Node == id {
			return false
		}
	}
	return true
}

// Quarantined reports whether a copy is currently quarantined — the
// read-path veto a routing client can consult.
func (s *Supervisor) Quarantined(node string, rng int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.quar[cluster.DegKey{Node: node, Range: rng}]
	return ok
}

// Status snapshots the supervisor's current view.
func (s *Supervisor) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statusLocked()
}

func (s *Supervisor) statusLocked() Status {
	st := Status{
		Epoch:           s.table.Epoch,
		Phase:           s.phase,
		Pending:         len(s.pending),
		Detections:      s.detections,
		Repairs:         s.repairs,
		Commits:         s.commits,
		Aborts:          s.aborts,
		Resumes:         s.resumes,
		RecoveredPushes: s.recoveredPushes,
		DetectLatency:   s.detectLat,
		RepairLatency:   s.repairLat,
		Holds:           append([]Hold(nil), s.holds...),
	}
	for k := range s.quar {
		st.Quarantined = append(st.Quarantined, k)
	}
	sort.Slice(st.Quarantined, func(i, j int) bool {
		if st.Quarantined[i].Node != st.Quarantined[j].Node {
			return st.Quarantined[i].Node < st.Quarantined[j].Node
		}
		return st.Quarantined[i].Range < st.Quarantined[j].Range
	})
	for id := range s.departing {
		st.Departing = append(st.Departing, id)
	}
	sort.Strings(st.Departing)
	down, slow := s.det.Classified()
	st.Down, st.Slow = down, slow
	return st
}
