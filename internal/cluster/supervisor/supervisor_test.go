package supervisor

// The supervisor tests run the full control loop against live netblock
// servers on loopback TCP: real dials, real pings, real repair streams.
// Tests drive Tick directly instead of Start's timer so every schedule is
// deterministic; nothing here sleeps to "let the supervisor notice".
//
// The headline property, asserted end to end in the lifecycle test: after
// a node fail-stops, the supervisor alone — no client-side orchestration —
// detects it, quarantines its copies, repairs them hash-verified once the
// node returns, and later rebalances a join through the three-epoch
// protocol, with every acked write still readable at the end.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"srccache/internal/cluster"
	"srccache/internal/cluster/fleet"
	"srccache/internal/netblock"
)

const (
	tRanges     = 8
	tRangeBytes = int64(4096)
)

// Short timeouts keep detection fast on loopback without flaking: a dead
// listener refuses instantly, it never actually waits out DialTimeout.
func dialOpts() netblock.ClientOptions {
	return netblock.ClientOptions{DialTimeout: 500 * time.Millisecond, Timeout: time.Second}
}

// supNode is one live fleet member plus the in-process management push the
// supervisor installs placements through. The data/ping plane is TCP; only
// Push is in-process, standing in for the config channel a deployment
// would use.
type supNode struct {
	id   string
	addr string

	mu    sync.Mutex
	back  netblock.Backend
	chain *fleet.ChainBackend
	srv   *netblock.Server
	alive bool
}

func (n *supNode) push(ring *cluster.Ring, epoch uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return fmt.Errorf("node %s: down", n.id)
	}
	if n.srv.Draining() {
		return fmt.Errorf("node %s: draining", n.id)
	}
	if err := n.chain.SetRing(ring); err != nil {
		return err
	}
	n.srv.SetEpoch(epoch)
	return nil
}

func (n *supNode) node() Node {
	return Node{Member: cluster.Member{ID: n.id, Addr: n.addr}, Push: n.push}
}

// kill fail-stops the node: listener gone, no drain, no goodbye.
func (n *supNode) kill(t *testing.T) {
	t.Helper()
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	n.alive = false
	if err := n.srv.Close(); err != nil {
		t.Fatal(err)
	}
	n.chain.Close()
}

// restart brings the node back on its old address; wipe loses its data
// (fresh disk), otherwise it returns with the possibly stale copy it held
// at the kill. The ring is the node's boot config — its epoch starts at 0
// and only a supervisor push advances it.
func (n *supNode) restart(t *testing.T, ring *cluster.Ring, wipe bool) {
	t.Helper()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.alive {
		t.Fatalf("node %s restarted while alive", n.id)
	}
	if wipe {
		back, err := netblock.MemBackend(ring.Size())
		if err != nil {
			t.Fatal(err)
		}
		n.back = back
	}
	chain, err := fleet.NewChainBackend(n.back, n.id, ring, dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netblock.NewServerWith(chain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Listen(n.addr); err != nil {
		t.Fatalf("rebind %s: %v", n.addr, err)
	}
	n.chain, n.srv, n.alive = chain, srv, true
	t.Cleanup(func() {
		srv.Close()
		chain.Close()
	})
}

func mkRing(t *testing.T, replicas int, members []cluster.Member) *cluster.Ring {
	t.Helper()
	r, err := cluster.NewRing(replicas, tRanges, tRangeBytes, members)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func startNode(t *testing.T, id string, ring *cluster.Ring) *supNode {
	t.Helper()
	back, err := netblock.MemBackend(ring.Size())
	if err != nil {
		t.Fatal(err)
	}
	chain, err := fleet.NewChainBackend(back, id, ring, dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netblock.NewServerWith(chain)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &supNode{id: id, addr: addr.String(), back: back, chain: chain, srv: srv, alive: true}
	t.Cleanup(func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if n.alive {
			n.srv.Close()
			n.chain.Close()
		}
	})
	return n
}

// startCluster boots members as live servers (spares too), installs the
// bound-address ring, and builds a supervisor over all of them with a
// journal in dir. ringIDs names the initial placement; the rest register
// as spares.
func startCluster(t *testing.T, ringIDs, spareIDs []string, replicas int, cfg Config) (map[string]*supNode, *Supervisor) {
	t.Helper()
	var boot []cluster.Member
	for _, id := range append(append([]string{}, ringIDs...), spareIDs...) {
		boot = append(boot, cluster.Member{ID: id})
	}
	bootRing := mkRing(t, replicas, boot)
	nodes := make(map[string]*supNode)
	var members []cluster.Member
	for _, id := range ringIDs {
		n := startNode(t, id, bootRing)
		nodes[id] = n
		members = append(members, cluster.Member{ID: id, Addr: n.addr})
	}
	ring := mkRing(t, replicas, members)
	for _, id := range ringIDs {
		if err := nodes[id].chain.SetRing(ring); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range spareIDs {
		n := startNode(t, id, ring) // spares boot with the live ring config
		nodes[id] = n
	}

	cfg.Ring = ring
	if cfg.JournalPath == "" {
		cfg.JournalPath = filepath.Join(t.TempDir(), "supervisor.journal")
	}
	if cfg.Client.DialTimeout == 0 {
		cfg.Client = dialOpts()
	}
	if cfg.Detector.FailAfter == 0 {
		cfg.Detector.FailAfter = 2
	}
	if cfg.Sleep == nil {
		cfg.Sleep = func(time.Duration) {} // no real backoff sleeps in tests
	}
	for _, id := range append(append([]string{}, ringIDs...), spareIDs...) {
		cfg.Nodes = append(cfg.Nodes, nodes[id].node())
	}
	sup, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sup.Close() })
	return nodes, sup
}

// dataFleet is the client-side data path: a fleet whose routing refetches
// from the supervisor's committed table, as a deployment's initiators
// would.
func dataFleet(t *testing.T, sup *Supervisor) *fleet.Fleet {
	t.Helper()
	fl, err := fleet.New(sup.Ring(), dialOpts())
	if err != nil {
		t.Fatal(err)
	}
	fl.SetRefetch(sup.Ring)
	t.Cleanup(func() { fl.Close() })
	return fl
}

func fill(t *testing.T, fl *fleet.Fleet, seed int64) []byte {
	t.Helper()
	model := make([]byte, fl.Ring().Size())
	rand.New(rand.NewSource(seed)).Read(model)
	if err := fl.WriteAt(model, 0); err != nil {
		t.Fatal(err)
	}
	return model
}

func rangeSlice(model []byte, rng int) []byte {
	return model[int64(rng)*tRangeBytes : (int64(rng)+1)*tRangeBytes]
}

func backendRange(t *testing.T, n *supNode, rng int) []byte {
	t.Helper()
	n.mu.Lock()
	defer n.mu.Unlock()
	buf := make([]byte, tRangeBytes)
	if err := n.back.ReadAt(buf, int64(rng)*tRangeBytes); err != nil {
		t.Fatal(err)
	}
	return buf
}

// tickUntil drives the supervisor until cond holds, bounding the schedule
// so a wedged state fails fast with the last status in the message.
func tickUntil(t *testing.T, sup *Supervisor, max int, what string, cond func(Status) bool) Status {
	t.Helper()
	var st Status
	for i := 0; i < max; i++ {
		var err error
		st, err = sup.Tick()
		if err != nil {
			t.Fatalf("tick %d (%s): %v", i, what, err)
		}
		if cond(st) {
			return st
		}
	}
	t.Fatalf("%s not reached in %d ticks; last status %+v", what, max, st)
	return st
}

func contains(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// TestSupervisorAutonomousLifecycle is the acceptance test: kill → detect
// → quarantine → repair → join → commit, all supervisor-driven. The test
// never calls SetRing/SetEpoch on a node; only node boot config and the
// supervisor touch routing.
func TestSupervisorAutonomousLifecycle(t *testing.T) {
	nodes, sup := startCluster(t, []string{"a", "b", "c"}, []string{"d"}, 2, Config{})
	fl := dataFleet(t, sup)
	model := fill(t, fl, 42)

	// Steady state: everyone healthy, nothing quarantined.
	st := tickUntil(t, sup, 3, "steady state", func(st Status) bool {
		return len(st.Down) == 0 && len(st.Quarantined) == 0
	})
	if st.Epoch != 1 || st.Phase != cluster.SupStable {
		t.Fatalf("steady state %+v", st)
	}

	// Fail-stop b. The supervisor must classify it Down off its own pings
	// (FailAfter=2) and quarantine every range b serves.
	nodes["b"].kill(t)
	st = tickUntil(t, sup, 6, "detection", func(st Status) bool {
		return contains(st.Down, "b")
	})
	if len(st.Quarantined) == 0 {
		t.Fatal("down node quarantined nothing")
	}
	for _, k := range st.Quarantined {
		if k.Node != "b" || !sup.Ring().OwnedBy(k.Range, "b") {
			t.Fatalf("bogus quarantine %+v", k)
		}
	}
	if st.Detections == 0 || st.DetectLatency <= 0 {
		t.Fatalf("detection metrics %+v", st)
	}
	quarCount := len(st.Quarantined)

	// The data plane rides through on the surviving replicas.
	got := make([]byte, int64(tRanges)*tRangeBytes)
	if err := fl.ReadAt(got, 0); err != nil {
		t.Fatalf("read with b down: %v", err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("read with b down diverges from model")
	}

	// b returns with a wiped disk. The supervisor must stream every
	// quarantined range back from the surviving replica, hash-verified,
	// before b's copies count again.
	nodes["b"].restart(t, sup.Ring(), true)
	st = tickUntil(t, sup, 12, "repair", func(st Status) bool {
		return len(st.Quarantined) == 0 && !contains(st.Down, "b")
	})
	if st.Repairs < quarCount {
		t.Fatalf("repairs %d < quarantined %d", st.Repairs, quarCount)
	}
	if st.RepairLatency <= 0 {
		t.Fatalf("MTTR not measured: %+v", st)
	}
	for rng := 0; rng < tRanges; rng++ {
		if sup.Ring().OwnedBy(rng, "b") {
			if !bytes.Equal(backendRange(t, nodes["b"], rng), rangeSlice(model, rng)) {
				t.Fatalf("range %d not healed on b", rng)
			}
		}
	}

	// Join the spare. The supervisor streams the moves, commits two epochs
	// up, pushes the new table, and catch-up-verifies every moved copy.
	if err := sup.BeginJoin(cluster.Member{ID: "d", Addr: nodes["d"].addr}); err != nil {
		t.Fatal(err)
	}
	moves := cluster.Moves(sup.Ring(), mustJoin(t, sup.Ring(), cluster.Member{ID: "d", Addr: nodes["d"].addr}))
	if len(moves) == 0 {
		t.Fatal("join moved nothing; layout makes this pass vacuous")
	}
	st = tickUntil(t, sup, 20, "join commit", func(st Status) bool {
		return st.Phase == cluster.SupStable && st.Epoch == 3 && len(st.Quarantined) == 0
	})
	if st.Commits != 1 {
		t.Fatalf("commits %d", st.Commits)
	}
	for _, mv := range moves {
		if !bytes.Equal(backendRange(t, nodes[mv.Target], mv.Range), rangeSlice(model, mv.Range)) {
			t.Fatalf("range %d not on new owner %s after commit", mv.Range, mv.Target)
		}
	}

	// The committed epoch reached the nodes through the ping/SetEpoch
	// channel — including the joiner.
	cli, err := netblock.Dial(nodes["d"].addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	info, err := cli.Ping()
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 3 {
		t.Fatalf("joiner advertises epoch %d, want 3", info.Epoch)
	}

	// Every byte acked before the failure is still readable on the new
	// placement (client refetches routing from the supervisor).
	if err := fl.SetRing(sup.Ring()); err != nil {
		t.Fatal(err)
	}
	if err := fl.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("post-lifecycle read diverges from model")
	}
}

func mustJoin(t *testing.T, r *cluster.Ring, m cluster.Member) *cluster.Ring {
	t.Helper()
	next, err := r.WithJoin(m)
	if err != nil {
		t.Fatal(err)
	}
	return next
}

// TestSupervisorCrashMidCommitTCP kills the supervisor between journaling
// a commit and pushing it — the worst spot — and proves a fresh supervisor
// over the same journal finishes the push, re-quarantines the moved
// copies, and converges with nothing lost.
func TestSupervisorCrashMidCommitTCP(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "supervisor.journal")
	nodes, sup := startCluster(t, []string{"a", "b", "c"}, []string{"d"}, 2, Config{JournalPath: journal})
	fl := dataFleet(t, sup)
	model := fill(t, fl, 7)

	tickUntil(t, sup, 3, "steady state", func(st Status) bool { return len(st.Down) == 0 })
	if err := sup.BeginJoin(cluster.Member{ID: "d", Addr: nodes["d"].addr}); err != nil {
		t.Fatal(err)
	}
	sup.failpoint = func(point string) bool { return point == "commit-push" }

	// Drive until the failpoint fires. The tick that decides the commit
	// journals it and then dies.
	var crashed bool
	for i := 0; i < 20; i++ {
		if _, err := sup.Tick(); err != nil {
			if !errors.Is(err, errCrashed) {
				t.Fatal(err)
			}
			crashed = true
			break
		}
	}
	if !crashed {
		t.Fatal("failpoint never fired")
	}

	// The journal is in the push phase with the decided epoch and the
	// moved set; no node has seen the new epoch yet.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	j, err := cluster.DecodeSupJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if j.Phase != cluster.SupPush || j.Epoch != 3 || len(j.Pending) == 0 {
		t.Fatalf("crash journal %+v", j)
	}
	for _, id := range []string{"a", "b", "c"} {
		cli, err := netblock.Dial(nodes[id].addr)
		if err != nil {
			t.Fatal(err)
		}
		info, err := cli.Ping()
		cli.Close()
		if err != nil {
			t.Fatal(err)
		}
		if info.Epoch >= 3 {
			t.Fatalf("node %s saw epoch %d before the journal's push completed", id, info.Epoch)
		}
	}
	sup.Close()

	// Recovery: a new supervisor over the same journal (no initial ring —
	// the journal is authoritative) finishes the interrupted push.
	var cfg2 Config
	cfg2.JournalPath = journal
	cfg2.Client = dialOpts()
	cfg2.Detector.FailAfter = 2
	cfg2.Sleep = func(time.Duration) {}
	for _, id := range []string{"a", "b", "c", "d"} {
		cfg2.Nodes = append(cfg2.Nodes, nodes[id].node())
	}
	sup2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer sup2.Close()
	st := sup2.Status()
	if st.RecoveredPushes != 1 || st.Epoch != 3 || st.Phase != cluster.SupStable {
		t.Fatalf("recovery status %+v", st)
	}
	if len(st.Quarantined) == 0 {
		t.Fatal("recovered commit re-quarantined no moved copies")
	}

	// Catch-up repairs drain; the epoch lands everywhere; all data reads
	// back on the new placement.
	tickUntil(t, sup2, 12, "catch-up", func(st Status) bool {
		return len(st.Quarantined) == 0
	})
	cli, err := netblock.Dial(nodes["d"].addr)
	if err != nil {
		t.Fatal(err)
	}
	info, err := cli.Ping()
	cli.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Epoch != 3 {
		t.Fatalf("joiner advertises epoch %d after recovery, want 3", info.Epoch)
	}
	fl2 := dataFleet(t, sup2)
	got := make([]byte, int64(tRanges)*tRangeBytes)
	if err := fl2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("post-recovery read diverges from model")
	}
}

// TestSupervisorResumeMidTransition stops a supervisor with moves still
// pending; its successor must resume the stream from the journal rather
// than restart or abort it.
func TestSupervisorResumeMidTransition(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "supervisor.journal")
	nodes, sup := startCluster(t, []string{"a", "b", "c"}, []string{"d"}, 2, Config{
		JournalPath:  journal,
		StepsPerTick: 1, // one move per tick so the midpoint is reachable
	})
	fl := dataFleet(t, sup)
	model := fill(t, fl, 11)

	tickUntil(t, sup, 3, "steady state", func(st Status) bool { return len(st.Down) == 0 })
	if err := sup.BeginJoin(cluster.Member{ID: "d", Addr: nodes["d"].addr}); err != nil {
		t.Fatal(err)
	}
	total := sup.Status().Pending
	if total < 2 {
		t.Skipf("join yields %d moves; need 2+ for a midpoint", total)
	}
	st := tickUntil(t, sup, 5, "partial stream", func(st Status) bool {
		return st.Pending > 0 && st.Pending < total
	})
	sup.Close()

	var cfg2 Config
	cfg2.JournalPath = journal
	cfg2.Client = dialOpts()
	cfg2.Detector.FailAfter = 2
	cfg2.Sleep = func(time.Duration) {}
	for _, id := range []string{"a", "b", "c", "d"} {
		cfg2.Nodes = append(cfg2.Nodes, nodes[id].node())
	}
	sup2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer sup2.Close()
	rst := sup2.Status()
	if rst.Resumes != 1 || rst.Phase != cluster.SupTransition || rst.Pending != st.Pending {
		t.Fatalf("resume status %+v (want pending %d)", rst, st.Pending)
	}

	tickUntil(t, sup2, 20, "resumed commit", func(st Status) bool {
		return st.Phase == cluster.SupStable && st.Epoch == 3 && len(st.Quarantined) == 0
	})
	fl2 := dataFleet(t, sup2)
	got := make([]byte, int64(tRanges)*tRangeBytes)
	if err := fl2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("post-resume read diverges from model")
	}
}

// TestChainForwardFailureRepair: a down-chain replica dies mid-stream of
// writes. The head keeps acking, the supervisor quarantines the dead tail,
// and once it returns — stale, not wiped — hash-verified repair converges
// it onto the bytes written while it was away.
func TestChainForwardFailureRepair(t *testing.T) {
	nodes, sup := startCluster(t, []string{"a", "b", "c"}, nil, 2, Config{})
	fl := dataFleet(t, sup)
	model := fill(t, fl, 23)

	tickUntil(t, sup, 3, "steady state", func(st Status) bool { return len(st.Down) == 0 })

	// Pick a range and kill its tail (the down-chain replica).
	const rng = 0
	owners := sup.Ring().Owners(rng)
	if len(owners) != 2 {
		t.Fatalf("owners %v", owners)
	}
	head, tail := owners[0], owners[1]
	nodes[tail].kill(t)

	// Writes to the head still ack — forward failure is tolerated, not
	// propagated to the client.
	patch := bytes.Repeat([]byte{0xEE}, 512)
	off := int64(rng) * tRangeBytes
	if err := fl.WriteAt(patch, off); err != nil {
		t.Fatalf("write with dead tail: %v", err)
	}
	copy(model[off:], patch)
	if !bytes.Equal(backendRange(t, nodes[head], rng)[:512], patch) {
		t.Fatal("head missed the acked write")
	}

	// The supervisor notices the dead tail and quarantines its copies.
	st := tickUntil(t, sup, 6, "tail detection", func(st Status) bool {
		return contains(st.Down, tail)
	})
	quarantined := false
	for _, k := range st.Quarantined {
		if k.Node == tail && k.Range == rng {
			quarantined = true
		}
	}
	if !quarantined {
		t.Fatalf("tail %s range %d not quarantined: %+v", tail, rng, st.Quarantined)
	}

	// The tail returns with its stale pre-kill copy. Repair must detect
	// the divergence by hash and overwrite it with the acked bytes.
	nodes[tail].restart(t, sup.Ring(), false)
	tickUntil(t, sup, 12, "tail repair", func(st Status) bool {
		return len(st.Quarantined) == 0 && !contains(st.Down, tail)
	})
	if !bytes.Equal(backendRange(t, nodes[tail], rng), rangeSlice(model, rng)) {
		t.Fatal("tail not converged onto acked writes after repair")
	}
	// Whole-volume readback still matches the model.
	got := make([]byte, int64(tRanges)*tRangeBytes)
	if err := fl.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model) {
		t.Fatal("post-repair read diverges from model")
	}
}

// TestSupervisorDrainingIsNotFailure: a member announcing a planned drain
// must be classified as departing — no Down, no quarantine, no repair
// churn — and reclassified healthy when it returns.
func TestSupervisorDrainingIsNotFailure(t *testing.T) {
	nodes, sup := startCluster(t, []string{"a", "b", "c"}, nil, 2, Config{})
	tickUntil(t, sup, 3, "steady state", func(st Status) bool { return len(st.Down) == 0 })

	// b deregisters the way a SIGTERM'd netblockd does, then goes away.
	nodes["b"].srv.BeginDrain()
	st := tickUntil(t, sup, 4, "departing", func(st Status) bool {
		return contains(st.Departing, "b")
	})
	if contains(st.Down, "b") || len(st.Quarantined) != 0 {
		t.Fatalf("draining member treated as failed: %+v", st)
	}
	nodes["b"].kill(t)

	// Silence after a drain announcement is a scheduled departure: many
	// ticks past FailAfter, still no quarantine.
	for i := 0; i < 5; i++ {
		var err error
		if st, err = sup.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if contains(st.Down, "b") || len(st.Quarantined) != 0 {
		t.Fatalf("departed member quarantined: %+v", st)
	}

	// The planned restart completes; b pings clean and resumes as a
	// healthy member, no repair cycle triggered.
	nodes["b"].restart(t, sup.Ring(), false)
	st = tickUntil(t, sup, 6, "rejoin", func(st Status) bool {
		return !contains(st.Departing, "b") && !contains(st.Down, "b")
	})
	if len(st.Quarantined) != 0 {
		t.Fatalf("planned restart triggered repairs: %+v", st)
	}
}

// TestSupervisorAbortsUnresumableTransition: a journaled transition whose
// target placement names a node nobody registered cannot be resumed; the
// recovering supervisor must abort it at a fresh epoch, not guess.
func TestSupervisorAbortsUnresumableTransition(t *testing.T) {
	nodes, sup := startCluster(t, []string{"a", "b", "c"}, []string{"d"}, 2, Config{})
	journal := sup.cfg.JournalPath
	tickUntil(t, sup, 3, "steady state", func(st Status) bool { return len(st.Down) == 0 })
	if err := sup.BeginJoin(cluster.Member{ID: "d", Addr: nodes["d"].addr}); err != nil {
		t.Fatal(err)
	}
	sup.Close()

	// The successor doesn't know d (its registration was lost with the old
	// supervisor's config).
	var cfg2 Config
	cfg2.JournalPath = journal
	cfg2.Client = dialOpts()
	cfg2.Detector.FailAfter = 2
	cfg2.Sleep = func(time.Duration) {}
	for _, id := range []string{"a", "b", "c"} {
		cfg2.Nodes = append(cfg2.Nodes, nodes[id].node())
	}
	sup2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	defer sup2.Close()
	st := sup2.Status()
	if st.Aborts != 1 || st.Phase != cluster.SupStable || st.Pending != 0 {
		t.Fatalf("recovery status %+v", st)
	}
	if st.Epoch != 3 {
		t.Fatalf("abort epoch %d, want fresh epoch 3", st.Epoch)
	}
	if _, ok := sup2.Ring().Member("d"); ok {
		t.Fatal("aborted join left d in the placement")
	}
}
