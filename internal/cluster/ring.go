// Package cluster is the replicated multi-node layer over the netblock
// protocol: a consistent-hash ring maps fixed-size LBA ranges of one
// logical volume onto N cache nodes with R-way chained replication, a
// client-side routing table versioned by ring epoch routes requests and
// fails over to surviving replicas, a seeded failure detector classifies
// fail-stop and fail-slow members from per-op latency/error scores, and
// node join/leave triggers a graceful rebalance that streams ranges while
// both source and target serve — the paper's "node loss = column loss writ
// large" story one level above the SSD array.
//
// The package itself is deterministic and wallclock-free: nodes, links and
// the churn harness (Sim) run in virtual time over in-memory pipes, so
// every membership-chaos schedule is a pure function of its seed. The real
// TCP path lives in the cluster/fleet subpackage.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Member is one cache node in the ring: a stable identity plus the address
// the real transport dials (unused by the in-memory simulation).
type Member struct {
	ID   string
	Addr string
}

// vnodes is how many points each member contributes to the hash ring.
// More points smooth the range distribution; 64 keeps every member owning
// a reasonable share for small fleets without bloating the table.
const vnodes = 64

// point is one position on the hash circle.
type point struct {
	hash uint64
	id   string
}

// Ring places ranges onto members: range r is owned by the first Replicas
// distinct members clockwise of hash(r). A Ring is immutable; membership
// changes build a new one via WithJoin/WithLeave so the control plane can
// hold the old and new placement side by side during a rebalance.
type Ring struct {
	Replicas   int
	Ranges     int
	RangeBytes int64

	members []Member // sorted by ID
	points  []point  // sorted by (hash, id)
}

// NewRing builds a ring. Replicas is clamped to the member count per range
// at lookup time, so a fleet smaller than R still serves (with reduced
// redundancy) rather than failing.
func NewRing(replicas, ranges int, rangeBytes int64, members []Member) (*Ring, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("cluster: replicas %d < 1", replicas)
	}
	if ranges < 1 {
		return nil, fmt.Errorf("cluster: ranges %d < 1", ranges)
	}
	if rangeBytes < 1 {
		return nil, fmt.Errorf("cluster: range bytes %d < 1", rangeBytes)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: empty member set")
	}
	r := &Ring{Replicas: replicas, Ranges: ranges, RangeBytes: rangeBytes}
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: member with empty ID")
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("cluster: duplicate member %q", m.ID)
		}
		seen[m.ID] = true
		r.members = append(r.members, m)
	}
	sort.Slice(r.members, func(i, j int) bool { return r.members[i].ID < r.members[j].ID })
	for _, m := range r.members {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", m.ID, v)), id: m.ID})
		}
	}
	// Ties broken by ID so the circle order is a pure function of the
	// member set, independent of insertion order.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// hash64 hashes a key onto the circle. FNV-1a alone has poor avalanche on
// short keys differing only in a trailing digit ("n0#1" vs "n0#2" land
// adjacent), which clusters a member's vnodes instead of scattering them —
// the murmur-style finalizer restores uniformity.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Size reports the logical volume size the ring serves.
func (r *Ring) Size() int64 { return int64(r.Ranges) * r.RangeBytes }

// RangeOf maps a byte offset to its placement range.
func (r *Ring) RangeOf(off int64) int { return int(off / r.RangeBytes) }

// Members returns the member set sorted by ID.
func (r *Ring) Members() []Member { return append([]Member(nil), r.members...) }

// Member looks a member up by ID.
func (r *Ring) Member(id string) (Member, bool) {
	i := sort.Search(len(r.members), func(i int) bool { return r.members[i].ID >= id })
	if i < len(r.members) && r.members[i].ID == id {
		return r.members[i], true
	}
	return Member{}, false
}

// Owners returns range rng's replica chain: the first min(Replicas, N)
// distinct members clockwise of the range's hash point. The order is the
// chain order — index 0 is the head a client addresses, the last entry the
// tail whose apply completes the chain.
func (r *Ring) Owners(rng int) []string {
	key := hash64(fmt.Sprintf("range:%d", rng))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	want := r.Replicas
	if want > len(r.members) {
		want = len(r.members)
	}
	owners := make([]string, 0, want)
	seen := make(map[string]bool, want)
	for k := 0; len(owners) < want; k++ {
		p := r.points[(i+k)%len(r.points)]
		if !seen[p.id] {
			seen[p.id] = true
			owners = append(owners, p.id)
		}
	}
	return owners
}

// OwnedBy reports whether id owns range rng.
func (r *Ring) OwnedBy(rng int, id string) bool {
	for _, o := range r.Owners(rng) {
		if o == id {
			return true
		}
	}
	return false
}

// WithJoin returns a new ring with m added.
func (r *Ring) WithJoin(m Member) (*Ring, error) {
	return NewRing(r.Replicas, r.Ranges, r.RangeBytes, append(r.Members(), m))
}

// WithLeave returns a new ring with id removed.
func (r *Ring) WithLeave(id string) (*Ring, error) {
	var rest []Member
	for _, m := range r.members {
		if m.ID != id {
			rest = append(rest, m)
		}
	}
	if len(rest) == len(r.members) {
		return nil, fmt.Errorf("cluster: member %q not in ring", id)
	}
	return NewRing(r.Replicas, r.Ranges, r.RangeBytes, rest)
}

// Move is one range transfer a rebalance must perform: Target is a new
// owner of Range that the old placement did not replicate to. The source
// is chosen at stream time from the old owners still healthy.
type Move struct {
	Range  int
	Target string
}

// Moves computes the range transfers from old's placement to new's, in
// deterministic (range, target) order.
func Moves(old, new *Ring) []Move {
	var moves []Move
	for rng := 0; rng < new.Ranges; rng++ {
		was := make(map[string]bool)
		for _, id := range old.Owners(rng) {
			was[id] = true
		}
		for _, id := range new.Owners(rng) {
			if !was[id] {
				moves = append(moves, Move{Range: rng, Target: id})
			}
		}
	}
	return moves
}
