package cluster

import (
	"fmt"
)

// Control is the (deliberately simple) control plane: it owns the
// authoritative routing table, pushes epochs to nodes over an out-of-band
// management path, and drives membership changes as explicit state-machine
// steps so a chaos schedule can interleave failures with an in-flight
// rebalance.
//
// A rebalance is a three-epoch transition. From stable epoch E:
//
//	E+1  transition — table carries Cur and Next; writes replicate to the
//	     union, reads stay on Cur. Control streams each moved range from a
//	     clean Cur owner to its new owner while both keep serving.
//	E+2  commit — Cur becomes Next; nodes drop ranges they no longer own.
//
// Stale is the control plane's view of which (node, range) copies must not
// be used as stream sources — wired to the client's degraded tracking by
// the harness. OnMoved fires after each range lands on its target with a
// clean copy, letting the client clear the target's degraded mark.
type Control struct {
	net     *Net
	nodes   map[string]*Node
	table   *Table
	pending []Move

	// Stale reports whether a copy is unfit as a rebalance source. Nil
	// means trust every copy.
	Stale func(node string, rng int) bool
	// OnMoved is called after a range is streamed to its target.
	OnMoved func(m Move)
}

// NewControl builds a control plane with an initial stable ring at epoch 1.
// Every ring member must already be registered as a node.
func NewControl(n *Net, ring *Ring) (*Control, error) {
	c := &Control{net: n, nodes: make(map[string]*Node)}
	for _, m := range ring.Members() {
		nd := n.nodes[m.ID]
		if nd == nil {
			return nil, fmt.Errorf("cluster: ring member %q has no node", m.ID)
		}
		c.nodes[m.ID] = nd
	}
	c.table = &Table{Epoch: 1, Cur: ring}
	c.push()
	return c, nil
}

// Table returns the current routing table — what clients fetch, including
// after an ErrStaleEpoch rejection.
func (c *Control) Table() *Table { return c.table }

// Adopt registers a spare node with the control plane so a later Join can
// pull it into the ring (and so Restart can re-push tables to it).
func (c *Control) Adopt(nd *Node) {
	c.nodes[nd.id] = nd
	nd.SetTable(c.table)
}

// push installs the current table on every alive node. Dead nodes miss the
// epoch; Restart re-pushes before they serve again, and their stale epoch
// rejects any request in between.
func (c *Control) push() {
	for _, nd := range c.nodes {
		if nd.alive {
			nd.SetTable(c.table)
		}
	}
}

// Restart revives a killed node and resynchronizes its routing table —
// the node rejoins at the current epoch, with whatever data it kept.
func (c *Control) Restart(id string) error {
	nd := c.nodes[id]
	if nd == nil {
		return fmt.Errorf("cluster: unknown node %q", id)
	}
	nd.Restart()
	nd.SetTable(c.table)
	return nil
}

// Rebalancing reports whether a membership transition is in flight.
func (c *Control) Rebalancing() bool { return !c.table.Stable() }

// PendingMoves returns the transfers the in-flight rebalance still owes.
func (c *Control) PendingMoves() []Move { return append([]Move(nil), c.pending...) }

// BeginJoin starts pulling member m into the ring. The node must already
// be adopted and alive.
func (c *Control) BeginJoin(m Member) error {
	next, err := c.table.Cur.WithJoin(m)
	if err != nil {
		return err
	}
	return c.begin(next, m.ID)
}

// BeginLeave starts a graceful departure: id keeps serving while its
// ranges stream to their new owners, and drains only after commit.
func (c *Control) BeginLeave(id string) error {
	next, err := c.table.Cur.WithLeave(id)
	if err != nil {
		return err
	}
	return c.begin(next, "")
}

func (c *Control) begin(next *Ring, joining string) error {
	if c.Rebalancing() {
		return fmt.Errorf("cluster: rebalance already in flight")
	}
	if joining != "" {
		nd := c.nodes[joining]
		if nd == nil {
			return fmt.Errorf("cluster: joining node %q not adopted", joining)
		}
		if !nd.alive {
			return fmt.Errorf("cluster: joining node %q is down", joining)
		}
	}
	c.table = &Table{Epoch: c.table.Epoch + 1, Cur: c.table.Cur, Next: next}
	c.pending = Moves(c.table.Cur, next)
	c.push()
	return nil
}

// RebalanceStep streams the next pending range to its new owner, charging
// the data path (source link out, target link in) for the full range. A
// step whose target is unreachable re-queues the move at the back and
// reports the failure so the schedule can heal or abort; a range with no
// data anywhere (never written) completes trivially.
func (c *Control) RebalanceStep() error {
	if len(c.pending) == 0 {
		return fmt.Errorf("cluster: no pending moves")
	}
	mv := c.pending[0]
	c.pending = c.pending[1:]

	// Pick the stream source: a live, reachable Cur owner holding a copy
	// the client has not quarantined. Streaming from a degraded copy would
	// install stale bytes on the target while OnMoved marks it clean — the
	// exact corruption anti-entropy exists to prevent.
	var src *Node
	hasData := false
	for _, id := range c.table.Cur.Owners(mv.Range) {
		nd := c.nodes[id]
		if nd == nil {
			continue
		}
		if _, ok := nd.HashRange(mv.Range); !ok {
			continue
		}
		hasData = true
		if !nd.alive || !c.net.Reachable(mv.Target, id) {
			continue
		}
		if c.Stale != nil && c.Stale(id, mv.Range) {
			continue
		}
		src = nd
		break
	}
	tgt := c.nodes[mv.Target]
	if tgt == nil || !tgt.alive {
		c.pending = append(c.pending, mv)
		return fmt.Errorf("cluster: move target %q down", mv.Target)
	}
	if src == nil {
		if hasData {
			// The range is written but every copy is dead, unreachable, or
			// quarantined right now. "No clean source" must not be read as
			// "never written" — requeue and stream once a copy recovers.
			c.pending = append(c.pending, mv)
			return fmt.Errorf("cluster: no clean source for range %d", mv.Range)
		}
		// No owner holds data: the range was never written, so there is
		// nothing to stream and the target is trivially complete.
		if c.OnMoved != nil {
			c.OnMoved(mv)
		}
		return nil
	}
	data := src.rangeCopy(mv.Range)
	c.net.reply(src.id, int64(len(data)))
	if _, err := c.net.hop(src.id, mv.Target, int64(len(data))); err != nil {
		c.pending = append(c.pending, mv)
		return fmt.Errorf("cluster: streaming range %d to %q: %w", mv.Range, mv.Target, err)
	}
	tgt.ApplyRange(mv.Range, data)
	if c.OnMoved != nil {
		c.OnMoved(mv)
	}
	return nil
}

// Commit finishes the rebalance: every move must have streamed. The new
// placement becomes Cur and nodes drop ranges they no longer own.
func (c *Control) Commit() error {
	if !c.Rebalancing() {
		return fmt.Errorf("cluster: no rebalance to commit")
	}
	if len(c.pending) > 0 {
		return fmt.Errorf("cluster: %d moves still pending", len(c.pending))
	}
	c.table = &Table{Epoch: c.table.Epoch + 1, Cur: c.table.Next}
	c.pending = nil
	c.push()
	return nil
}

// Abort cancels an in-flight rebalance, returning to the old placement at
// a fresh epoch. Ranges already streamed stay on their targets as garbage
// until some later transition or drop — harmless, since the old ring never
// routes to them.
func (c *Control) Abort() error {
	if !c.Rebalancing() {
		return fmt.Errorf("cluster: no rebalance to abort")
	}
	c.table = &Table{Epoch: c.table.Epoch + 1, Cur: c.table.Cur}
	c.pending = nil
	c.push()
	return nil
}

// Node returns a registered node by ID (nil if unknown) — the harness uses
// it to drive kills and restarts.
func (c *Control) Node(id string) *Node { return c.nodes[id] }
