package cluster

import (
	"reflect"
	"testing"

	"srccache/internal/vtime"
)

func TestDetectorFailStop(t *testing.T) {
	d := NewDetector(DetectorConfig{FailAfter: 3})
	if d.State("a") != Healthy {
		t.Fatal("unknown member not Healthy")
	}
	d.Observe("a", 0, true)
	d.Observe("a", 0, true)
	if d.State("a") != Healthy {
		t.Fatal("two failures already classified Down")
	}
	d.Observe("a", 0, true)
	if d.State("a") != Down {
		t.Fatal("three consecutive failures not Down")
	}
	// One success resets the run: transient blips never accumulate.
	d.Observe("a", vtime.Millisecond, false)
	if d.State("a") != Healthy {
		t.Fatal("success did not clear the failure run")
	}
}

func TestDetectorObserveOKClearsFailuresOnly(t *testing.T) {
	d := NewDetector(DetectorConfig{Baseline: vtime.Millisecond, SlowFactor: 4, FailAfter: 2})
	for i := 0; i < 5; i++ {
		d.Observe("a", 10*vtime.Millisecond, false) // well past slow threshold
	}
	if d.State("a") != Slow {
		t.Fatalf("State = %v after sustained 10ms pings, want Slow", d.State("a"))
	}
	d.Observe("a", 0, true)
	d.Observe("a", 0, true)
	if d.State("a") != Down {
		t.Fatal("failures on a slow member not Down")
	}
	// A data-op success proves liveness but must not feed the EWMA.
	before := d.EWMA("a")
	d.ObserveOK("a")
	if d.State("a") != Slow {
		t.Fatalf("State = %v after ObserveOK, want Slow again", d.State("a"))
	}
	if d.EWMA("a") != before {
		t.Fatal("ObserveOK moved the latency EWMA")
	}
}

func TestDetectorFailSlowThreshold(t *testing.T) {
	d := NewDetector(DetectorConfig{Baseline: vtime.Millisecond, SlowFactor: 4})
	for i := 0; i < 10; i++ {
		d.Observe("fast", 2*vtime.Millisecond, false) // 2x baseline: within factor
		d.Observe("slow", 20*vtime.Millisecond, false)
	}
	if d.State("fast") != Healthy {
		t.Fatalf("fast member = %v", d.State("fast"))
	}
	if d.State("slow") != Slow {
		t.Fatalf("slow member = %v", d.State("slow"))
	}
	// EWMA recovers once the member speeds back up.
	for i := 0; i < 30; i++ {
		d.Observe("slow", vtime.Millisecond, false)
	}
	if d.State("slow") != Healthy {
		t.Fatalf("recovered member still %v at EWMA %v", d.State("slow"), d.EWMA("slow"))
	}
}

func TestDetectorNeedsSamplesBeforeSlow(t *testing.T) {
	// A single outlier must not classify: cold caches and first contacts
	// are always slow.
	d := NewDetector(DetectorConfig{Baseline: vtime.Millisecond, SlowFactor: 4})
	d.Observe("a", 100*vtime.Millisecond, false)
	if d.State("a") != Healthy {
		t.Fatal("one outlier classified Slow")
	}
}

func TestDetectorClassifiedSortedAndForget(t *testing.T) {
	d := NewDetector(DetectorConfig{Baseline: vtime.Millisecond, SlowFactor: 2, FailAfter: 1})
	d.Observe("z", 0, true)
	d.Observe("a", 0, true)
	for i := 0; i < 5; i++ {
		d.Observe("m", 50*vtime.Millisecond, false)
	}
	down, slow := d.Classified()
	if !reflect.DeepEqual(down, []string{"a", "z"}) || !reflect.DeepEqual(slow, []string{"m"}) {
		t.Fatalf("Classified = %v / %v", down, slow)
	}
	d.Forget("a")
	d.Forget("m")
	down, slow = d.Classified()
	if !reflect.DeepEqual(down, []string{"z"}) || len(slow) != 0 {
		t.Fatalf("after Forget: %v / %v", down, slow)
	}
	if d.State("a") != Healthy {
		t.Fatal("forgotten member not Healthy")
	}
}

func TestDetectorDefaults(t *testing.T) {
	cfg := DetectorConfig{}.withDefaults()
	if cfg.Baseline <= 0 || cfg.SlowFactor <= 1 || cfg.FailAfter <= 0 {
		t.Fatalf("defaults unfilled: %+v", cfg)
	}
}
