package cluster

import (
	"strings"
	"testing"
)

func journalRings(t *testing.T) (*Ring, *Ring) {
	t.Helper()
	cur, err := NewRing(2, 8, 4096, []Member{
		{ID: "a", Addr: "127.0.0.1:9001"},
		{ID: "b", Addr: "127.0.0.1:9002"},
		{ID: "c", Addr: "127.0.0.1:9003"},
	})
	if err != nil {
		t.Fatal(err)
	}
	next, err := cur.WithJoin(Member{ID: "d", Addr: "127.0.0.1:9004"})
	if err != nil {
		t.Fatal(err)
	}
	return cur, next
}

func TestSupJournalRoundTrip(t *testing.T) {
	cur, next := journalRings(t)
	table := &Table{Epoch: 7, Cur: cur, Next: next}
	pending := Moves(cur, next)
	if len(pending) == 0 {
		t.Fatal("join produced no moves")
	}

	j := SnapshotSupJournal(table, pending, SupTransition)
	data, err := j.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Determinism: the same state must serialize identically.
	again, err := SnapshotSupJournal(table, pending, SupTransition).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(again) {
		t.Fatalf("encoding not deterministic:\n%s\nvs\n%s", data, again)
	}

	got, err := DecodeSupJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	rt, rp, err := got.Table()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Epoch != 7 || rt.Next == nil {
		t.Fatalf("rebuilt table = %+v", rt)
	}
	if len(rp) != len(pending) {
		t.Fatalf("pending %d != %d", len(rp), len(pending))
	}
	for i := range pending {
		if rp[i] != pending[i] {
			t.Fatalf("move %d: %+v != %+v", i, rp[i], pending[i])
		}
	}
	// The rebuilt rings must place identically: Ring is a pure function of
	// its member set, so every range's chain must match.
	for rng := 0; rng < cur.Ranges; rng++ {
		if a, b := cur.Owners(rng), rt.Cur.Owners(rng); strings.Join(a, ",") != strings.Join(b, ",") {
			t.Fatalf("range %d owners %v != %v", rng, a, b)
		}
	}
	// A member lookup must preserve addresses (the wallclock supervisor
	// dials them back out of the journal).
	if m, ok := rt.Cur.Member("b"); !ok || m.Addr != "127.0.0.1:9002" {
		t.Fatalf("member b = %+v, %v", m, ok)
	}
}

func TestSupJournalStableAndPush(t *testing.T) {
	cur, _ := journalRings(t)
	for _, phase := range []SupPhase{SupStable, SupPush} {
		j := SnapshotSupJournal(&Table{Epoch: 3, Cur: cur}, nil, phase)
		data, err := j.Encode()
		if err != nil {
			t.Fatalf("%v: %v", phase, err)
		}
		got, err := DecodeSupJournal(data)
		if err != nil {
			t.Fatalf("%v: %v", phase, err)
		}
		if got.Phase != phase || got.Epoch != 3 || got.Next != nil || len(got.Pending) != 0 {
			t.Fatalf("%v round trip = %+v", phase, got)
		}
	}

	// A commit's push record carries the moved copies so a recovering
	// supervisor can re-quarantine them for catch-up verification.
	moved := []Move{{Range: 2, Target: "c"}, {Range: 5, Target: "a"}}
	data, err := SnapshotSupJournal(&Table{Epoch: 4, Cur: cur}, moved, SupPush).Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSupJournal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Phase != SupPush || len(got.Pending) != 2 || got.Pending[0] != moved[0] || got.Pending[1] != moved[1] {
		t.Fatalf("push-with-moves round trip = %+v", got)
	}
}

func TestSupJournalRejectsDamage(t *testing.T) {
	cur, next := journalRings(t)
	table := &Table{Epoch: 7, Cur: cur, Next: next}
	good, err := SnapshotSupJournal(table, Moves(cur, next), SupTransition).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          nil,
		"bad magic":      []byte("not-a-journal\nphase stable\n"),
		"truncated":      good[:len(good)/2],
		"missing phase":  []byte(supJournalMagic + "\nepoch 1\ngeometry 2 8 4096\ncur a=x\n"),
		"unknown phase":  []byte(supJournalMagic + "\nphase maybe\nepoch 1\ngeometry 2 8 4096\ncur a=x\n"),
		"stable pending": []byte(supJournalMagic + "\nphase stable\nepoch 1\ngeometry 2 8 4096\ncur a=x\npending 1=a\n"),
		"duplicate key":  []byte(supJournalMagic + "\nphase stable\nphase stable\nepoch 1\ngeometry 2 8 4096\ncur a=x\n"),
	}
	for name, data := range cases {
		if _, err := DecodeSupJournal(data); err == nil {
			t.Errorf("%s: decode accepted damaged journal", name)
		}
	}
	// Encode must refuse unjournalable state rather than writing a record
	// decode would reject.
	bad := SnapshotSupJournal(table, nil, SupTransition)
	bad.Cur = []Member{{ID: "a b", Addr: "x"}}
	if _, err := bad.Encode(); err == nil {
		t.Error("encode accepted member ID with a space")
	}
	if _, err := SnapshotSupJournal(&Table{Epoch: 1, Cur: cur}, []Move{{1, "z"}}, SupStable).Encode(); err == nil {
		t.Error("encode accepted stable journal with pending moves")
	}
}
