package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// pingBytes approximates the opPing wire cost (17-byte header + 17-byte
// payload) so the detector's latency samples ride the same degraded links
// as data traffic.
const pingBytes = 34

// Node is one cache node: a slice of the logical volume held as
// range-indexed byte buffers, served under an epoch-stamped routing table.
// Nodes are invoked through Net (which charges link time and enforces
// partitions), never directly — except by the control plane, which is
// modeled as an out-of-band management network.
type Node struct {
	id    string
	net   *Net
	table *Table
	alive bool
	drain bool
	data  map[int][]byte

	// Per-op counters, the in-memory twin of netblock's Server.OpStats.
	reads, writes, forwards, applies int64
}

// NewNode creates a node and attaches it to the network, alive but with no
// routing table until the control plane pushes one.
func NewNode(n *Net, id string) (*Node, error) {
	if id == "" || id == "client" || id == "control" {
		return nil, fmt.Errorf("cluster: invalid node id %q", id)
	}
	nd := &Node{id: id, net: n, alive: true, data: make(map[int][]byte)}
	if err := n.register(nd); err != nil {
		return nil, err
	}
	return nd, nil
}

// ID returns the node's identity.
func (nd *Node) ID() string { return nd.id }

// Alive reports whether the node's process is up.
func (nd *Node) Alive() bool { return nd.alive }

// Kill crashes the process. Data survives (it is a cache device, not RAM);
// what rots while the node is down is freshness, which the client tracks
// as degraded ranges.
func (nd *Node) Kill() { nd.alive = false }

// Restart brings a killed node back with its data intact. The control
// plane must re-push the current table before the node serves again.
func (nd *Node) Restart() { nd.alive = true }

// Wipe discards all data — the disk-replacement restart. The caller is
// responsible for marking every range the node owns as degraded until
// anti-entropy repair refills it.
func (nd *Node) Wipe() { nd.data = make(map[int][]byte) }

// SetTable installs a routing table. On a stable table the node drops
// ranges it no longer owns (the rebalance commit) and enters drain when it
// has left the ring entirely.
func (nd *Node) SetTable(t *Table) {
	nd.table = t
	if !t.Stable() {
		return
	}
	for rng := range nd.data {
		if !t.Cur.OwnedBy(rng, nd.id) {
			delete(nd.data, rng)
		}
	}
	_, in := t.Cur.Member(nd.id)
	nd.drain = !in
}

// Epoch reports the node's current table epoch (0 before the first push).
func (nd *Node) Epoch() uint64 {
	if nd.table == nil {
		return 0
	}
	return nd.table.Epoch
}

// Draining reports whether the node has left the ring.
func (nd *Node) Draining() bool { return nd.drain }

// checkEpoch rejects requests stamped with a different epoch than the
// node's table. Both directions are stale: a behind client must refetch,
// and an ahead client means this node missed a push (it was down) and must
// not serve under rules it does not know.
func (nd *Node) checkEpoch(epoch uint64) error {
	if nd.table == nil || nd.table.Epoch != epoch {
		return fmt.Errorf("%w: node %s at %d, request at %d", ErrStaleEpoch, nd.id, nd.Epoch(), epoch)
	}
	return nil
}

// handleWrite applies a write and forwards it down the chain. chain is the
// range's full write-owner list in forwarding order and pos the node's own
// position in it; the node applies locally, then forwards to the next
// reachable successor (skipping dead ones, which the client will mark
// degraded). It returns the IDs that applied, in chain order. The server
// side of the staleepoch contract: an epoch mismatch is surfaced to the
// remote client, whose writeRange refetches and retries.
//
//srclint:surfaces staleepoch
func (nd *Node) handleWrite(epoch uint64, rng int, off int64, p []byte, chain []string, pos int) ([]string, error) {
	if err := nd.checkEpoch(epoch); err != nil {
		return nil, err
	}
	if !nd.table.writeOwned(rng, nd.id) {
		return nil, fmt.Errorf("%w: %s, range %d", ErrNotOwner, nd.id, rng)
	}
	if off < 0 || off+int64(len(p)) > nd.table.Cur.RangeBytes {
		return nil, fmt.Errorf("cluster: write [%d,%d) outside range of %d bytes", off, off+int64(len(p)), nd.table.Cur.RangeBytes)
	}
	buf := nd.data[rng]
	if buf == nil {
		buf = make([]byte, nd.table.Cur.RangeBytes)
		nd.data[rng] = buf
	}
	copy(buf[off:], p)
	nd.writes++
	applied := []string{nd.id}

	// Forward to the next live successor. A failed forward is skipped, not
	// fatal: the write stays acknowledged as long as one replica applied,
	// and the client quarantines the replicas that missed it.
	for next := pos + 1; next < len(chain); next++ {
		peer, err := nd.net.hop(nd.id, chain[next], int64(len(p))+64)
		if err != nil {
			continue
		}
		nd.forwards++
		down, err := peer.handleWrite(epoch, rng, off, p, chain, next)
		nd.net.reply(chain[next], 64)
		if err == nil {
			applied = append(applied, down...)
		}
		break
	}
	return applied, nil
}

// handleRead serves a read from local data. Like handleWrite it surfaces
// an epoch mismatch to the remote client (readRange), which refetches.
//
//srclint:surfaces staleepoch
func (nd *Node) handleRead(epoch uint64, rng int, off, length int64) ([]byte, error) {
	if err := nd.checkEpoch(epoch); err != nil {
		return nil, err
	}
	buf := nd.data[rng]
	if buf == nil {
		return nil, fmt.Errorf("%w: %s, range %d", ErrMissing, nd.id, rng)
	}
	if off < 0 || length < 0 || off+length > int64(len(buf)) {
		return nil, fmt.Errorf("cluster: read [%d,%d) outside range of %d bytes", off, off+length, len(buf))
	}
	nd.reads++
	out := make([]byte, length)
	copy(out, buf[off:])
	return out, nil
}

// handlePing is the health probe: cheap, epoch-free (a stale client must
// still be able to measure liveness), reporting the node's view.
func (nd *Node) handlePing() (epoch uint64, draining bool) {
	return nd.Epoch(), nd.drain
}

// ApplyRange installs a full clean copy of a range — the receive side of
// rebalance streaming and anti-entropy repair.
func (nd *Node) ApplyRange(rng int, data []byte) {
	buf := make([]byte, len(data))
	copy(buf, data)
	nd.data[rng] = buf
	nd.applies++
}

// HashRange fingerprints a range's contents for anti-entropy comparison.
// ok is false when the node holds no data for the range.
func (nd *Node) HashRange(rng int) (sum uint64, ok bool) {
	buf := nd.data[rng]
	if buf == nil {
		return 0, false
	}
	h := fnv.New64a()
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], uint64(rng))
	h.Write(key[:])
	h.Write(buf)
	return h.Sum64(), true
}

// rangeCopy returns a copy of a range's bytes (nil when absent) — the send
// side of rebalance streaming.
func (nd *Node) rangeCopy(rng int) []byte {
	buf := nd.data[rng]
	if buf == nil {
		return nil
	}
	out := make([]byte, len(buf))
	copy(out, buf)
	return out
}

// Stats reports the node's op counters.
func (nd *Node) Stats() (reads, writes, forwards, applies int64) {
	return nd.reads, nd.writes, nd.forwards, nd.applies
}
