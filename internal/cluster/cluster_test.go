package cluster

import (
	"bytes"
	"errors"
	"testing"

	"srccache/internal/netlink"
	"srccache/internal/vtime"
)

// testCluster wires a small fleet for scenario tests.
type testCluster struct {
	net    *Net
	ctrl   *Control
	client *Client
}

func newTestCluster(t *testing.T, nodes, replicas, ranges int) *testCluster {
	t.Helper()
	n, err := NewNet(netlink.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var ms []Member
	for i := 0; i < nodes; i++ {
		id := string(rune('a' + i))
		if _, err := NewNode(n, id); err != nil {
			t.Fatal(err)
		}
		ms = append(ms, Member{ID: id})
	}
	ring, err := NewRing(replicas, ranges, 4096, ms)
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := NewControl(n, ring)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(n, ctrl.Table, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctrl.Stale = cli.Degraded
	ctrl.OnMoved = func(m Move) { delete(cli.degraded, DegKey{m.Target, m.Range}) }
	return &testCluster{net: n, ctrl: ctrl, client: cli}
}

func (tc *testCluster) write(t *testing.T, off int64, p []byte) {
	t.Helper()
	if err := tc.client.WriteAt(p, off); err != nil {
		t.Fatalf("WriteAt(%d): %v", off, err)
	}
}

func (tc *testCluster) readBack(t *testing.T, off int64, want []byte) {
	t.Helper()
	got := make([]byte, len(want))
	if err := tc.client.ReadAt(got, off); err != nil {
		t.Fatalf("ReadAt(%d): %v", off, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ReadAt(%d) = %q, want %q", off, got[:16], want[:16])
	}
}

func TestClusterWriteReadAcrossRanges(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 8)
	p := bytes.Repeat([]byte("0123456789abcdef"), 512) // 8 KiB: spans 2 ranges
	tc.write(t, 2048, p)
	tc.readBack(t, 2048, p)
	// Every write owner applied: no partial writes, nothing quarantined.
	if s := tc.client.Stats(); s.PartialWrites != 0 || tc.client.DegradedCount() != 0 {
		t.Fatalf("healthy write was partial: %+v, %d degraded", s, tc.client.DegradedCount())
	}
	if err := tc.client.ReadAt(make([]byte, 1), tc.ctrl.Table().Cur.Size()); err == nil {
		t.Fatal("read past end of volume accepted")
	}
}

func TestClusterReplicasByteIdentical(t *testing.T) {
	tc := newTestCluster(t, 3, 3, 4)
	p := bytes.Repeat([]byte{0xAB}, 4096)
	tc.write(t, 0, p)
	owners := tc.ctrl.Table().Cur.Owners(0)
	if len(owners) != 3 {
		t.Fatalf("owners = %v", owners)
	}
	want, ok := tc.ctrl.Node(owners[0]).HashRange(0)
	if !ok {
		t.Fatal("head holds no data")
	}
	for _, id := range owners[1:] {
		got, ok := tc.ctrl.Node(id).HashRange(0)
		if !ok || got != want {
			t.Fatalf("replica %s diverges after chain write", id)
		}
	}
}

func TestClusterReadFailsOverWhenHeadDies(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 4)
	p := bytes.Repeat([]byte{7}, 1024)
	tc.write(t, 0, p)
	head := tc.ctrl.Table().Cur.Owners(0)[0]
	tc.ctrl.Node(head).Kill()
	tc.readBack(t, 0, p)
	if s := tc.client.Stats(); s.Failovers == 0 {
		t.Fatal("read served without recorded failover despite a dead head")
	}
}

func TestClusterWriteSkipsDeadReplicaAndRepairHeals(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 4)
	owners := tc.ctrl.Table().Cur.Owners(0)
	tail := owners[1]
	tc.ctrl.Node(tail).Kill()

	p := bytes.Repeat([]byte{9}, 2048)
	tc.write(t, 0, p) // acks on the head alone
	if !tc.client.Degraded(tail, 0) {
		t.Fatal("replica that missed the write not quarantined")
	}
	if s := tc.client.Stats(); s.PartialWrites != 1 {
		t.Fatalf("PartialWrites = %d", s.PartialWrites)
	}
	tc.readBack(t, 0, p)

	// Rejoin: restart resyncs the table; anti-entropy streams the range
	// back until byte-identical, then lifts the quarantine.
	if err := tc.ctrl.Restart(tail); err != nil {
		t.Fatal(err)
	}
	healed, err := tc.client.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if healed != 1 || tc.client.DegradedCount() != 0 {
		t.Fatalf("Repair healed %d, %d still degraded", healed, tc.client.DegradedCount())
	}
	a, _ := tc.ctrl.Node(owners[0]).HashRange(0)
	b, ok := tc.ctrl.Node(tail).HashRange(0)
	if !ok || a != b {
		t.Fatal("rejoined replica not byte-identical after repair")
	}
}

func TestClusterNoReplicaIsHardError(t *testing.T) {
	tc := newTestCluster(t, 2, 2, 2)
	p := []byte("xx")
	tc.write(t, 0, p)
	for _, id := range tc.ctrl.Table().Cur.Owners(0) {
		tc.ctrl.Node(id).Kill()
	}
	if err := tc.client.ReadAt(make([]byte, 2), 0); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("read with all replicas dead = %v, want ErrNoReplica", err)
	}
	if err := tc.client.WriteAt(p, 0); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("write with all replicas dead = %v, want ErrNoReplica", err)
	}
}

func TestClusterStaleEpochTriggersRefetch(t *testing.T) {
	tc := newTestCluster(t, 4, 2, 8)
	p := []byte("epoch")
	tc.write(t, 0, p)

	// Bump the epoch behind the client's back: the next op is rejected with
	// ErrStaleEpoch, refetches, and succeeds at the new epoch.
	if err := tc.ctrl.BeginLeave(tc.ctrl.Table().Cur.Members()[3].ID); err != nil {
		t.Fatal(err)
	}
	for len(tc.ctrl.PendingMoves()) > 0 {
		if err := tc.ctrl.RebalanceStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tc.ctrl.Commit(); err != nil {
		t.Fatal(err)
	}
	before := tc.client.Stats().Refetches
	tc.readBack(t, 0, p)
	if tc.client.Stats().Refetches != before+1 {
		t.Fatalf("Refetches went %d -> %d across an epoch bump", before, tc.client.Stats().Refetches)
	}
	if tc.client.Table().Epoch != tc.ctrl.Table().Epoch {
		t.Fatal("client table still stale after refetch")
	}
}

func TestClusterReadsRouteAroundFailSlow(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 1)
	p := bytes.Repeat([]byte{3}, 512)
	tc.write(t, 0, p)
	owners := tc.ctrl.Table().Cur.Owners(0)
	head := owners[0]

	// Make the head fail-slow and let the detector see it via ping sweeps.
	tc.net.Link(head).Degrade(50)
	for i := 0; i < 6; i++ {
		tc.client.PingAll()
	}
	if st := tc.client.Detector().State(head); st != Slow {
		t.Fatalf("detector sees head as %v after degrade", st)
	}
	_, slow := tc.client.Detector().Classified()
	if len(slow) != 1 || slow[0] != head {
		t.Fatalf("Classified slow = %v", slow)
	}

	r0, _, _, _ := tc.ctrl.Node(owners[1]).Stats()
	tc.readBack(t, 0, p)
	r1, _, _, _ := tc.ctrl.Node(owners[1]).Stats()
	if r1 != r0+1 {
		t.Fatal("read did not route around the fail-slow head")
	}
}

func TestClusterJoinRebalanceServesThroughout(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 8)
	nd, err := NewNode(tc.net, "x")
	if err != nil {
		t.Fatal(err)
	}
	tc.ctrl.Adopt(nd)

	payload := func(b byte) []byte { return bytes.Repeat([]byte{b}, 4096) }
	for rng := 0; rng < 8; rng++ {
		tc.write(t, int64(rng)*4096, payload(byte(rng+1)))
	}
	if err := tc.ctrl.BeginJoin(Member{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	// Quarantine the join target for every acknowledged range it now
	// write-owns, exactly as the harness does, until each range streams.
	for _, mv := range tc.ctrl.PendingMoves() {
		tc.client.MarkDegraded(mv.Target, mv.Range)
	}
	moved := len(tc.ctrl.PendingMoves())
	if moved == 0 {
		t.Fatal("join moved nothing")
	}
	// Serve while streaming: writes go to the union, reads stay on Cur.
	step := 0
	for len(tc.ctrl.PendingMoves()) > 0 {
		if err := tc.ctrl.RebalanceStep(); err != nil {
			t.Fatal(err)
		}
		rng := step % 8
		tc.write(t, int64(rng)*4096, payload(byte(0x80+step)))
		tc.readBack(t, int64(rng)*4096, payload(byte(0x80+step)))
		step++
	}
	if err := tc.ctrl.Commit(); err != nil {
		t.Fatal(err)
	}
	if tc.client.DegradedCount() != 0 {
		t.Fatalf("%d copies still quarantined after commit", tc.client.DegradedCount())
	}
	// The new node now serves reads for the ranges it owns, byte-identical.
	for rng := 0; rng < 8; rng++ {
		owners := tc.ctrl.Table().Cur.Owners(rng)
		want, _ := tc.ctrl.Node(owners[0]).HashRange(rng)
		for _, id := range owners[1:] {
			got, ok := tc.ctrl.Node(id).HashRange(rng)
			if !ok || got != want {
				t.Fatalf("range %d replica %s diverges after join", rng, id)
			}
		}
	}
}

func TestClusterLeaveDrainsNode(t *testing.T) {
	tc := newTestCluster(t, 4, 2, 8)
	p := bytes.Repeat([]byte{5}, 4096)
	for rng := 0; rng < 8; rng++ {
		tc.write(t, int64(rng)*4096, p)
	}
	leaver := tc.ctrl.Table().Cur.Members()[0].ID
	if err := tc.ctrl.BeginLeave(leaver); err != nil {
		t.Fatal(err)
	}
	for _, mv := range tc.ctrl.PendingMoves() {
		tc.client.MarkDegraded(mv.Target, mv.Range)
	}
	for len(tc.ctrl.PendingMoves()) > 0 {
		if err := tc.ctrl.RebalanceStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tc.ctrl.Commit(); err != nil {
		t.Fatal(err)
	}
	nd := tc.ctrl.Node(leaver)
	if !nd.Draining() {
		t.Fatal("left node not draining")
	}
	if len(nd.data) != 0 {
		t.Fatalf("left node still holds %d ranges", len(nd.data))
	}
	for rng := 0; rng < 8; rng++ {
		tc.readBack(t, int64(rng)*4096, p)
		if tc.ctrl.Table().Cur.OwnedBy(rng, leaver) {
			t.Fatalf("range %d still owned by leaver", rng)
		}
	}
}

func TestClusterWipeRestartRoundTripsThroughRepair(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 4)
	var payloads [4][]byte
	for rng := 0; rng < 4; rng++ {
		payloads[rng] = bytes.Repeat([]byte{byte(0x10 + rng)}, 4096)
		tc.write(t, int64(rng)*4096, payloads[rng])
	}
	victim := tc.ctrl.Table().Cur.Members()[1].ID
	tc.ctrl.Node(victim).Wipe()
	for rng := 0; rng < 4; rng++ {
		if tc.ctrl.Table().writeOwned(rng, victim) {
			tc.client.MarkDegraded(victim, rng)
		}
	}
	// Reads never touch the wiped copies, and repair restores them to
	// byte-identical contents.
	for rng := 0; rng < 4; rng++ {
		tc.readBack(t, int64(rng)*4096, payloads[rng])
	}
	if _, err := tc.client.Repair(); err != nil {
		t.Fatal(err)
	}
	if tc.client.DegradedCount() != 0 {
		t.Fatalf("%d copies quarantined after repair", tc.client.DegradedCount())
	}
	for rng := 0; rng < 4; rng++ {
		owners := tc.ctrl.Table().Cur.Owners(rng)
		want, _ := tc.ctrl.Node(owners[0]).HashRange(rng)
		for _, id := range owners[1:] {
			got, ok := tc.ctrl.Node(id).HashRange(rng)
			if !ok || got != want {
				t.Fatalf("range %d replica %s diverges after wipe+repair", rng, id)
			}
		}
	}
}

func TestClusterPartitionedReplicaQuarantinedOnWrite(t *testing.T) {
	tc := newTestCluster(t, 3, 2, 1)
	owners := tc.ctrl.Table().Cur.Owners(0)
	head, tail := owners[0], owners[1]
	tc.net.Partition(head, tail) // chain forward path cut, client fine

	p := bytes.Repeat([]byte{1}, 512)
	tc.write(t, 0, p)
	if !tc.client.Degraded(tail, 0) {
		t.Fatal("replica behind a partition not quarantined after missed write")
	}
	tc.readBack(t, 0, p)
	tc.net.Heal(head, tail)
	if _, err := tc.client.Repair(); err != nil {
		t.Fatal(err)
	}
	if tc.client.Degraded(tail, 0) {
		t.Fatal("quarantine survived repair")
	}
	tc.readBack(t, 0, p)
}

func TestClusterUnreachableCostsVirtualTime(t *testing.T) {
	tc := newTestCluster(t, 2, 2, 1)
	tc.write(t, 0, []byte("t"))
	head := tc.ctrl.Table().Cur.Owners(0)[0]
	tc.ctrl.Node(head).Kill()
	before := tc.net.Now()
	tc.readBack(t, 0, []byte("t"))
	if elapsed := tc.net.Now().Sub(before); elapsed < unreachableTimeout {
		t.Fatalf("failover read took %v, less than one unreachable timeout %v", elapsed, unreachableTimeout)
	}
	if vtime.Duration(tc.net.Now()) == 0 {
		t.Fatal("virtual clock never advanced")
	}
}
