package cluster

import (
	"reflect"
	"testing"
)

func members(ids ...string) []Member {
	var ms []Member
	for _, id := range ids {
		ms = append(ms, Member{ID: id})
	}
	return ms
}

func mustRing(t *testing.T, replicas, ranges int, ids ...string) *Ring {
	t.Helper()
	r, err := NewRing(replicas, ranges, 4096, members(ids...))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRingValidation(t *testing.T) {
	cases := []struct {
		name     string
		replicas int
		ranges   int
		bytes    int64
		members  []Member
	}{
		{"zero replicas", 0, 4, 4096, members("a")},
		{"zero ranges", 2, 0, 4096, members("a")},
		{"zero bytes", 2, 4, 0, members("a")},
		{"no members", 2, 4, 4096, nil},
		{"empty id", 2, 4, 4096, members("a", "")},
		{"duplicate id", 2, 4, 4096, members("a", "a")},
	}
	for _, tc := range cases {
		if _, err := NewRing(tc.replicas, tc.ranges, tc.bytes, tc.members); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestRingOwnersDeterministicAndDistinct(t *testing.T) {
	// Member order at construction must not matter, and the same range must
	// map to the same chain every time.
	a := mustRing(t, 3, 64, "n0", "n1", "n2", "n3", "n4")
	b, err := NewRing(3, 64, 4096, members("n4", "n2", "n0", "n3", "n1"))
	if err != nil {
		t.Fatal(err)
	}
	for rng := 0; rng < 64; rng++ {
		oa, ob := a.Owners(rng), b.Owners(rng)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("range %d: owners differ by construction order: %v vs %v", rng, oa, ob)
		}
		if len(oa) != 3 {
			t.Fatalf("range %d: %d owners, want 3", rng, len(oa))
		}
		seen := map[string]bool{}
		for _, id := range oa {
			if seen[id] {
				t.Fatalf("range %d: duplicate owner %s in %v", rng, id, oa)
			}
			seen[id] = true
			if !a.OwnedBy(rng, id) {
				t.Fatalf("range %d: OwnedBy(%s) false despite membership in %v", rng, id, oa)
			}
		}
		if a.OwnedBy(rng, "nope") {
			t.Fatalf("range %d owned by a stranger", rng)
		}
	}
}

func TestRingClampsReplicasToMembers(t *testing.T) {
	r := mustRing(t, 3, 8, "a", "b")
	for rng := 0; rng < 8; rng++ {
		if got := len(r.Owners(rng)); got != 2 {
			t.Fatalf("range %d: %d owners from a 2-node ring", rng, got)
		}
	}
}

func TestRingDistributionRoughlyBalanced(t *testing.T) {
	// With 16 vnodes per member the head-ownership counts should not be
	// pathologically skewed: no member should own more than ~3x its share.
	r := mustRing(t, 1, 256, "n0", "n1", "n2", "n3")
	counts := map[string]int{}
	for rng := 0; rng < 256; rng++ {
		counts[r.Owners(rng)[0]]++
	}
	for id, c := range counts {
		if c == 0 {
			t.Fatalf("%s owns nothing", id)
		}
		if c > 3*256/4 {
			t.Fatalf("%s heads %d/256 ranges", id, c)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d members head ranges: %v", len(counts), counts)
	}
}

func TestRingJoinLeaveRoundTrip(t *testing.T) {
	r := mustRing(t, 2, 32, "a", "b", "c")
	grown, err := r.WithJoin(Member{ID: "d"})
	if err != nil {
		t.Fatal(err)
	}
	if len(grown.Members()) != 4 {
		t.Fatalf("join yielded %d members", len(grown.Members()))
	}
	if _, err := r.WithJoin(Member{ID: "a"}); err == nil {
		t.Fatal("duplicate join accepted")
	}
	back, err := grown.WithLeave("d")
	if err != nil {
		t.Fatal(err)
	}
	for rng := 0; rng < 32; rng++ {
		if !reflect.DeepEqual(r.Owners(rng), back.Owners(rng)) {
			t.Fatalf("range %d: join+leave changed placement", rng)
		}
	}
	if _, err := grown.WithLeave("zz"); err == nil {
		t.Fatal("leave of a stranger accepted")
	}
}

func TestRingMovesMinimal(t *testing.T) {
	// Consistent hashing's point: a join only moves ranges onto the new
	// node, never between survivors.
	old := mustRing(t, 2, 64, "a", "b", "c")
	grown, err := old.WithJoin(Member{ID: "d"})
	if err != nil {
		t.Fatal(err)
	}
	moves := Moves(old, grown)
	if len(moves) == 0 {
		t.Fatal("join moved nothing — new node owns no ranges")
	}
	for _, mv := range moves {
		if mv.Target != "d" {
			t.Fatalf("join moved range %d to survivor %s", mv.Range, mv.Target)
		}
		if !grown.OwnedBy(mv.Range, "d") {
			t.Fatalf("move target does not own range %d", mv.Range)
		}
		if old.OwnedBy(mv.Range, "d") {
			t.Fatalf("range %d already on d before the join", mv.Range)
		}
	}
	// Moves must be deterministic.
	again := Moves(old, grown)
	if !reflect.DeepEqual(moves, again) {
		t.Fatal("Moves not deterministic")
	}
}

func TestRingRangeOfAndSize(t *testing.T) {
	r := mustRing(t, 2, 8, "a", "b")
	if r.Size() != 8*4096 {
		t.Fatalf("Size = %d", r.Size())
	}
	if r.RangeOf(0) != 0 || r.RangeOf(4095) != 0 || r.RangeOf(4096) != 1 || r.RangeOf(8*4096-1) != 7 {
		t.Fatal("RangeOf misassigns boundaries")
	}
	if _, ok := r.Member("a"); !ok {
		t.Fatal("Member(a) not found")
	}
	if _, ok := r.Member("zz"); ok {
		t.Fatal("Member(zz) found")
	}
}
