package cluster

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math/rand"

	"srccache/internal/netlink"
	"srccache/internal/stats"
	"srccache/internal/vtime"
)

// SimConfig parameterizes one churn run. Everything is derived from Seed,
// so a run is a pure function of its config.
type SimConfig struct {
	Seed       int64
	Nodes      int   // initial ring size (default 5)
	Spares     int   // nodes standing by to join (default 1)
	Replicas   int   // replication factor (default 3)
	Ranges     int   // placement ranges (default 16)
	RangeBytes int64 // bytes per range (default 64 KiB)
	Ops        int   // client operations to issue (default 400)
	ChurnEvery int   // chaos tick every this many ops (default 20)
	Link       netlink.Config
	Detector   DetectorConfig
	// Supervised hands the rebalance lifecycle to a supervisor actor that
	// journals every transition and can itself crash and recover — see
	// simsup.go for the composed-failure matrix it runs.
	Supervised bool
}

func (c SimConfig) withDefaults() SimConfig {
	if c.Nodes == 0 {
		c.Nodes = 5
	}
	if c.Spares == 0 {
		c.Spares = 1
	}
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.Ranges == 0 {
		c.Ranges = 16
	}
	if c.RangeBytes == 0 {
		c.RangeBytes = 64 << 10
	}
	if c.Ops == 0 {
		c.Ops = 400
	}
	if c.ChurnEvery == 0 {
		c.ChurnEvery = 20
	}
	if c.Link.RTT == 0 {
		c.Link.RTT = 200 * vtime.Microsecond
	}
	if c.Link.Jitter == 0 {
		c.Link.Jitter = 10 * vtime.Microsecond
	}
	if c.Link.Seed == 0 {
		c.Link.Seed = c.Seed
	}
	if c.Detector.Baseline == 0 {
		c.Detector.Baseline = 2 * c.Link.RTT
	}
	if c.Detector.FailAfter == 0 {
		c.Detector.FailAfter = 2
	}
	return c
}

// Result is one run's evidence: coverage counters for every fault class
// the schedule injected, the invariant violations observed (which must be
// zero), and client-side latency digests.
type Result struct {
	Seed    int64
	Elapsed vtime.Duration

	Ops, Reads, Writes int
	FailedOps          int // ops that failed while a healthy replica existed — must be 0
	VerifyErrors       int // reads or final hashes that mismatched the model — must be 0

	Kills, Restarts, Wipes       int
	Degrades, LinkHeals          int
	Partitions, PartitionHeals   int
	Joins, Leaves, Commits       int
	Aborts, MovesStreamed        int
	StepFailures, GuardSkips     int
	RepairRounds, RangesRepaired int

	// Supervised-mode coverage: supervisor lifecycle faults and the
	// composed scenarios the seed class forced.
	SupKills, SupRestarts        int
	SupResumes, SupRecoverPushes int
	MidCommitCrashes             int
	RepairRebalanceCrashes       int
	SlowJoinHeads                int

	DownDetected, SlowDetected bool

	Client   ClientStats
	ReadLat  stats.Summary
	WriteLat stats.Summary
}

// Signature digests the run for determinism comparisons: two runs of the
// same config must produce identical signatures.
func (r Result) Signature() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", r)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Violations summarizes the hard failures, empty when the run upheld every
// invariant.
func (r Result) Violations() []string {
	var v []string
	if r.FailedOps > 0 {
		v = append(v, fmt.Sprintf("%d client ops failed with a healthy replica available", r.FailedOps))
	}
	if r.VerifyErrors > 0 {
		v = append(v, fmt.Sprintf("%d acknowledged writes lost or misread", r.VerifyErrors))
	}
	return v
}

// sim is one run's mutable state.
type sim struct {
	cfg    SimConfig
	rng    *rand.Rand
	net    *Net
	ctrl   *Control
	client *Client
	res    Result

	model     []byte       // the acknowledged contents of the volume
	acked     map[int]bool // ranges with at least one acknowledged write
	ackedList []int        // same, in append order for seeded picking

	sup *simSup // non-nil when cfg.Supervised

	spares    []string // adopted nodes outside the ring
	downed    []string // killed nodes awaiting restart
	slowed    []string // nodes with degraded links
	cuts      [][2]string
	joining   string // spare being pulled in by the in-flight join
	leaving   string // member being drained by the in-flight leave
	stepFails int    // failed rebalance steps since Begin
	readLat   stats.Histogram
	writeLat  stats.Histogram
}

// Sim runs one seeded churn schedule against a fresh cluster and reports
// what happened. The schedule is guarded: before every destructive action
// it verifies each acknowledged range keeps at least one alive,
// client-reachable, non-degraded current owner — so zero failed operations
// and zero lost writes are absolute invariants, not probabilistic ones.
func Sim(cfg SimConfig) (Result, error) {
	cfg = cfg.withDefaults()
	s := &sim{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		acked: make(map[int]bool),
	}
	s.res.Seed = cfg.Seed
	if err := s.setup(); err != nil {
		return s.res, err
	}
	if cfg.Supervised {
		s.sup = newSimSup(s)
	}
	s.model = make([]byte, s.ctrl.Table().Cur.Size())

	for i := 0; i < cfg.Ops; i++ {
		if i%cfg.ChurnEvery == 0 {
			s.churnTick()
		}
		s.clientOp()
		s.net.Advance(50 * vtime.Microsecond)
	}
	if err := s.drain(); err != nil {
		return s.res, err
	}
	s.finalVerify()

	s.res.Elapsed = s.net.Now().Sub(0)
	s.res.Client = s.client.Stats()
	s.res.ReadLat = s.readLat.Summarize()
	s.res.WriteLat = s.writeLat.Summarize()
	return s.res, nil
}

func (s *sim) setup() error {
	net, err := NewNet(s.cfg.Link)
	if err != nil {
		return err
	}
	s.net = net
	var members []Member
	for i := 0; i < s.cfg.Nodes+s.cfg.Spares; i++ {
		id := fmt.Sprintf("n%02d", i)
		if _, err := NewNode(net, id); err != nil {
			return err
		}
		if i < s.cfg.Nodes {
			members = append(members, Member{ID: id})
		} else {
			s.spares = append(s.spares, id)
		}
	}
	ring, err := NewRing(s.cfg.Replicas, s.cfg.Ranges, s.cfg.RangeBytes, members)
	if err != nil {
		return err
	}
	ctrl, err := NewControl(net, ring)
	if err != nil {
		return err
	}
	s.ctrl = ctrl
	for _, id := range s.spares {
		ctrl.Adopt(net.nodes[id])
	}
	cli, err := NewClient(net, ctrl.Table, NewDetector(s.cfg.Detector))
	if err != nil {
		return err
	}
	s.client = cli
	ctrl.Stale = cli.Degraded
	ctrl.OnMoved = func(m Move) {
		// The target now holds a clean streamed copy; lift its quarantine.
		delete(cli.degraded, DegKey{m.Target, m.Range})
		s.res.MovesStreamed++
	}
	return nil
}

// clientOp issues one read or write against the cluster and mirrors it
// into the model volume.
func (s *sim) clientOp() {
	write := len(s.ackedList) == 0 || s.rng.Intn(100) < 45
	if write {
		off, n := s.pickExtent(true)
		p := make([]byte, n)
		s.rng.Read(p)
		t0 := s.net.Now()
		err := s.client.WriteAt(p, off)
		s.writeLat.Observe(s.net.Now().Sub(t0))
		s.res.Ops++
		if err != nil {
			s.res.FailedOps++
			return
		}
		s.res.Writes++
		copy(s.model[off:], p)
		for rng := int(off / s.cfg.RangeBytes); rng <= int((off+n-1)/s.cfg.RangeBytes); rng++ {
			if !s.acked[rng] {
				s.acked[rng] = true
				s.ackedList = append(s.ackedList, rng)
			}
		}
		return
	}
	off, n := s.pickExtent(false)
	p := make([]byte, n)
	t0 := s.net.Now()
	err := s.client.ReadAt(p, off)
	s.readLat.Observe(s.net.Now().Sub(t0))
	s.res.Ops++
	if err != nil {
		s.res.FailedOps++
		return
	}
	s.res.Reads++
	for i := range p {
		if p[i] != s.model[off+int64(i)] {
			s.res.VerifyErrors++
			break
		}
	}
}

// pickExtent chooses a (possibly range-crossing) extent. Writes roam the
// whole volume; reads stay within acknowledged ranges so an absent range
// is never a legal miss.
func (s *sim) pickExtent(write bool) (off, n int64) {
	rb := s.cfg.RangeBytes
	var rng int
	if write {
		rng = s.rng.Intn(s.cfg.Ranges)
	} else {
		rng = s.ackedList[s.rng.Intn(len(s.ackedList))]
	}
	base := int64(rng) * rb
	maxBlocks := rb / 512
	if maxBlocks > 8 {
		maxBlocks = 8
	}
	n = int64(1+s.rng.Intn(int(maxBlocks))) * 512
	// Occasionally straddle the boundary into the next range to exercise
	// the client's extent splitting (reads only where the next range is
	// also acknowledged, so the miss is never legal).
	cross := rng+1 < s.cfg.Ranges && rb >= 1024 && s.rng.Intn(10) == 0
	if !write && !s.acked[rng+1] {
		cross = false
	}
	if cross {
		return base + rb - 512, 1024
	}
	slots := int((rb - n) / 512)
	if slots <= 0 {
		return base, n
	}
	return base + int64(s.rng.Intn(slots+1))*512, n
}

// cleanOwner reports whether range rng keeps at least one alive,
// client-reachable, non-quarantined current owner holding its data, with
// the hypothetical exclusions applied (nodes about to die or be cut off).
func (s *sim) cleanOwner(rng int, excluded map[string]bool) bool {
	return s.cleanOwnerIn(s.ctrl.Table().Cur, rng, excluded)
}

// cleanOwnerIn is cleanOwner against an explicit placement — the guard
// also protects a journaled-but-unpushed table, whose owners are about to
// become authoritative.
func (s *sim) cleanOwnerIn(ring *Ring, rng int, excluded map[string]bool) bool {
	for _, id := range ring.Owners(rng) {
		if excluded[id] {
			continue
		}
		nd := s.net.nodes[id]
		if nd == nil || !nd.alive || !s.net.Reachable("client", id) {
			continue
		}
		if s.client.Degraded(id, rng) {
			continue
		}
		if s.acked[rng] {
			if _, ok := nd.HashRange(rng); !ok {
				continue
			}
		}
		return true
	}
	return false
}

// writeHeadIn reports whether range rng keeps at least one alive,
// client-reachable owner under the given placement with the hypothetical
// exclusions applied — the minimum for a chain write to find a head.
// Quarantined copies count: the write path falls back to them rather than
// fail, and anti-entropy heals them afterwards.
func (s *sim) writeHeadIn(ring *Ring, rng int, excluded map[string]bool) bool {
	for _, id := range ring.Owners(rng) {
		if excluded[id] {
			continue
		}
		nd := s.net.nodes[id]
		if nd == nil || !nd.alive || !s.net.Reachable("client", id) {
			continue
		}
		return true
	}
	return false
}

// safeWithout is the schedule guard: if these nodes vanished, would every
// acknowledged range still have a clean current owner to read from, and
// would EVERY range — written or not — still have a reachable write head
// under each placement that is or is about to be authoritative? Writes
// roam the whole volume, so a never-written range whose owners are all
// dead fails a write with no healthy replica in sight; worse, a
// boundary-crossing write can land its first half before the headless
// half fails, tearing the op. The guard forbids reaching that state at
// all. While a commit has been journaled but not pushed (the supervisor
// died in between), the decided placement is already law — recovery will
// install it — so its owners are guarded the same way.
func (s *sim) safeWithout(excluded map[string]bool) bool {
	table := s.ctrl.Table()
	var decided *Table
	if s.sup != nil {
		decided = s.sup.decided
	}
	for rng := 0; rng < s.cfg.Ranges; rng++ {
		if !s.writeHeadIn(table.Cur, rng, excluded) {
			return false
		}
		if table.Next != nil && !s.writeHeadIn(table.Next, rng, excluded) {
			return false
		}
		if decided != nil && !s.writeHeadIn(decided.Cur, rng, excluded) {
			return false
		}
	}
	for _, rng := range s.ackedList {
		if !s.cleanOwner(rng, excluded) {
			return false
		}
		if decided != nil && !s.cleanOwnerIn(decided.Cur, rng, excluded) {
			return false
		}
	}
	return true
}

// ringMembers returns the current ring membership IDs.
func (s *sim) ringMembers() []string {
	var ids []string
	for _, m := range s.ctrl.Table().Cur.Members() {
		ids = append(ids, m.ID)
	}
	return ids
}

// churnTick runs the background machinery (ping sweep, detector coverage,
// rebalance progress) and injects one guarded chaos action.
func (s *sim) churnTick() {
	s.client.PingAll()
	down, slow := s.client.Detector().Classified()
	if len(down) > 0 {
		s.res.DownDetected = true
	}
	if len(slow) > 0 {
		s.res.SlowDetected = true
	}
	if s.sup != nil {
		s.sup.tick()
	} else {
		s.advanceRebalance()
	}
	s.chaosAction()
	if s.sup != nil {
		s.sup.chaos()
	}
	s.net.Advance(vtime.Millisecond)
}

// commitSafe reports whether the pending placement keeps the read
// invariant: every acknowledged range must have at least one alive,
// client-reachable, non-quarantined new owner holding its data. Committing
// without this would strand a range on all-degraded copies — the leaver or
// dropper may hold the only clean bytes.
func (s *sim) commitSafe() bool {
	next := s.ctrl.Table().Next
	if next == nil {
		return false
	}
	for _, rng := range s.ackedList {
		ok := false
		for _, id := range next.Owners(rng) {
			nd := s.net.nodes[id]
			if nd == nil || !nd.alive || !s.net.Reachable("client", id) {
				continue
			}
			if s.client.Degraded(id, rng) {
				continue
			}
			if _, has := nd.HashRange(rng); !has {
				continue
			}
			ok = true
			break
		}
		if !ok {
			return false
		}
	}
	return true
}

// advanceRebalance pushes an in-flight transition forward: stream a couple
// of moves, commit when done and safe, abort when stuck.
func (s *sim) advanceRebalance() {
	if !s.ctrl.Rebalancing() {
		return
	}
	for i := 0; i < 2 && len(s.ctrl.PendingMoves()) > 0; i++ {
		if err := s.ctrl.RebalanceStep(); err != nil {
			s.stepFails++
			s.res.StepFailures++
		}
	}
	if len(s.ctrl.PendingMoves()) == 0 {
		if s.commitSafe() {
			if err := s.ctrl.Commit(); err == nil {
				s.res.Commits++
				s.finishTransition(false)
				return
			}
		}
		// A streamed target regressed (killed or re-quarantined after its
		// stream). Try to heal it; give up on the transition if it stays
		// unsafe — the old placement is still fully served.
		s.stepFails++
		s.actRepair()
	}
	if s.stepFails > 16 {
		if err := s.ctrl.Abort(); err == nil {
			s.res.Aborts++
			s.finishTransition(true)
		}
	}
}

// finishTransition books membership changes once a transition ends.
func (s *sim) finishTransition(aborted bool) {
	s.stepFails = 0
	if s.joining != "" {
		if aborted {
			s.spares = append(s.spares, s.joining)
		}
		s.joining = ""
	}
	if s.leaving != "" {
		if !aborted {
			s.spares = append(s.spares, s.leaving)
		}
		s.leaving = ""
	}
}

// chaosAction injects one seeded, guarded fault or recovery.
func (s *sim) chaosAction() {
	switch s.rng.Intn(10) {
	case 0, 1:
		s.actKill()
	case 2:
		s.actRestart()
	case 3:
		s.actWipe()
	case 4:
		s.actDegrade()
	case 5:
		s.actHealLink()
	case 6:
		s.actPartition()
	case 7:
		s.actHealPartition()
	case 8:
		s.actMembership()
	case 9:
		s.actRepair()
	}
}

func (s *sim) actKill() {
	alive := s.aliveMembers()
	if len(alive) == 0 {
		return
	}
	victim := alive[s.rng.Intn(len(alive))]
	if !s.safeWithout(map[string]bool{victim: true}) {
		s.res.GuardSkips++
		return
	}
	s.net.nodes[victim].Kill()
	s.downed = append(s.downed, victim)
	s.res.Kills++
}

func (s *sim) actRestart() {
	if len(s.downed) == 0 {
		return
	}
	i := s.rng.Intn(len(s.downed))
	id := s.downed[i]
	s.downed = append(s.downed[:i], s.downed[i+1:]...)
	if err := s.ctrl.Restart(id); err == nil {
		s.res.Restarts++
	}
}

// actWipe replaces a node's disk: data gone, process up. Every
// acknowledged range the node writes for is quarantined until repair.
func (s *sim) actWipe() {
	alive := s.aliveMembers()
	if len(alive) == 0 {
		return
	}
	victim := alive[s.rng.Intn(len(alive))]
	if !s.safeWithout(map[string]bool{victim: true}) {
		s.res.GuardSkips++
		return
	}
	s.net.nodes[victim].Wipe()
	for _, rng := range s.ackedList {
		if s.ctrl.Table().writeOwned(rng, victim) {
			s.client.MarkDegraded(victim, rng)
		}
	}
	s.res.Wipes++
}

func (s *sim) actDegrade() {
	alive := s.aliveMembers()
	if len(alive) == 0 {
		return
	}
	id := alive[s.rng.Intn(len(alive))]
	s.net.Link(id).Degrade(float64(10 + s.rng.Intn(20)))
	s.slowed = append(s.slowed, id)
	s.res.Degrades++
}

func (s *sim) actHealLink() {
	if len(s.slowed) == 0 {
		return
	}
	i := s.rng.Intn(len(s.slowed))
	s.net.Link(s.slowed[i]).Degrade(1)
	s.slowed = append(s.slowed[:i], s.slowed[i+1:]...)
	s.res.LinkHeals++
}

func (s *sim) actPartition() {
	// Half the cuts isolate the client from a node, half cut node-to-node
	// (breaking chain forwards and rebalance streams instead of routing).
	members := s.ringMembers()
	if len(members) < 2 {
		return
	}
	a := "client"
	b := members[s.rng.Intn(len(members))]
	if s.rng.Intn(2) == 0 {
		a = members[s.rng.Intn(len(members))]
		if a == b {
			return
		}
	} else if !s.safeWithout(map[string]bool{b: true}) {
		// Only the client-facing cut removes b from the read path; the
		// guard need not run for node-to-node cuts (the write head stays
		// clean and reachable).
		s.res.GuardSkips++
		return
	}
	if s.net.Partitioned(a, b) {
		return
	}
	s.net.Partition(a, b)
	s.cuts = append(s.cuts, [2]string{a, b})
	s.res.Partitions++
}

func (s *sim) actHealPartition() {
	if len(s.cuts) == 0 {
		return
	}
	i := s.rng.Intn(len(s.cuts))
	cut := s.cuts[i]
	s.cuts = append(s.cuts[:i], s.cuts[i+1:]...)
	s.net.Heal(cut[0], cut[1])
	s.res.PartitionHeals++
}

// actMembership starts a join or leave when none is in flight, and
// quarantines every move target until its range streams — a new owner
// that has not been streamed yet holds at best a partial copy.
func (s *sim) actMembership() {
	if s.sup != nil && !s.sup.alive {
		return // membership is the supervisor's call; nobody is home
	}
	if s.ctrl.Rebalancing() {
		return
	}
	members := s.ringMembers()
	join := len(s.spares) > 0 && (s.rng.Intn(2) == 0 || len(members) <= s.cfg.Replicas)
	if join {
		id := s.spares[0]
		if !s.net.nodes[id].alive {
			return
		}
		if err := s.ctrl.BeginJoin(Member{ID: id}); err != nil {
			return
		}
		s.spares = s.spares[1:]
		s.joining = id
		s.res.Joins++
	} else {
		if len(members) <= s.cfg.Replicas {
			return
		}
		id := members[s.rng.Intn(len(members))]
		if !s.net.nodes[id].alive || id == s.leaving {
			return
		}
		if err := s.ctrl.BeginLeave(id); err != nil {
			return
		}
		s.leaving = id
		s.res.Leaves++
	}
	for _, mv := range s.ctrl.PendingMoves() {
		if s.acked[mv.Range] {
			s.client.MarkDegraded(mv.Target, mv.Range)
		}
	}
	if s.sup != nil {
		s.sup.snapshot() // the transition is journaled before any move streams
	}
}

func (s *sim) actRepair() {
	if s.sup != nil && !s.sup.alive {
		return // repair scheduling is supervisor-driven in supervised runs
	}
	healed, err := s.client.Repair()
	if err != nil {
		s.res.VerifyErrors++
		return
	}
	s.res.RepairRounds++
	s.res.RangesRepaired += healed
}

func (s *sim) aliveMembers() []string {
	var out []string
	for _, id := range s.ringMembers() {
		if id != s.joining && id != s.leaving && s.net.nodes[id].alive {
			out = append(out, id)
		}
	}
	return out
}

// drain returns the cluster to full health: heal the network, restart the
// dead, finish or abort the transition, and repair until the quarantine
// set is empty.
func (s *sim) drain() error {
	if s.sup != nil {
		// The run may end with the control plane dead, mid-anything. Its
		// successor recovers from the journal first — finishing a decided
		// push — and the standard wind-down below takes it from there,
		// with the failpoint disarmed so the wind-down terminates.
		s.sup.restart()
		s.sup.crashAtCommit = false
	}
	s.net.HealAll()
	s.cuts = nil
	for _, id := range s.slowed {
		s.net.Link(id).Degrade(1)
	}
	s.slowed = nil
	for _, id := range s.downed {
		if err := s.ctrl.Restart(id); err != nil {
			return err
		}
		s.res.Restarts++
	}
	s.downed = nil
	for tries := 0; s.ctrl.Rebalancing(); tries++ {
		if tries > 8*s.cfg.Ranges {
			if s.sup != nil {
				s.sup.abort()
			} else {
				if err := s.ctrl.Abort(); err != nil {
					return err
				}
				s.res.Aborts++
				s.finishTransition(true)
			}
			break
		}
		if len(s.ctrl.PendingMoves()) > 0 {
			if err := s.ctrl.RebalanceStep(); err != nil {
				s.res.StepFailures++
			}
			continue
		}
		if !s.commitSafe() {
			// A streamed target was re-quarantined; with the fleet healed,
			// anti-entropy can restore it before the commit.
			healed, err := s.client.Repair()
			if err != nil {
				return err
			}
			s.res.RepairRounds++
			s.res.RangesRepaired += healed
			continue
		}
		if s.sup != nil {
			s.sup.commit()
		} else {
			if err := s.ctrl.Commit(); err != nil {
				return err
			}
			s.res.Commits++
			s.finishTransition(false)
		}
	}
	for tries := 0; s.client.DegradedCount() > 0; tries++ {
		if tries > s.cfg.Ranges*(s.cfg.Nodes+s.cfg.Spares) {
			return fmt.Errorf("cluster: %d quarantined copies unrepairable after drain", s.client.DegradedCount())
		}
		healed, err := s.client.Repair()
		if err != nil {
			return err
		}
		s.res.RepairRounds++
		s.res.RangesRepaired += healed
	}
	return nil
}

// finalVerify is the no-lost-write acceptance check: every acknowledged
// range must read back byte-identical to the model through the client, and
// every current owner must hold a byte-identical copy (anti-entropy has
// converged the fleet).
func (s *sim) finalVerify() {
	for _, rng := range s.ackedList {
		base := int64(rng) * s.cfg.RangeBytes
		p := make([]byte, s.cfg.RangeBytes)
		if err := s.client.ReadAt(p, base); err != nil {
			s.res.FailedOps++
			continue
		}
		for i := range p {
			if p[i] != s.model[base+int64(i)] {
				s.res.VerifyErrors++
				break
			}
		}
		want := modelRangeHash(rng, s.model[base:base+s.cfg.RangeBytes])
		for _, id := range s.ctrl.Table().Cur.Owners(rng) {
			got, ok := s.net.nodes[id].HashRange(rng)
			if !ok || got != want {
				s.res.VerifyErrors++
			}
		}
	}
}

// modelRangeHash mirrors Node.HashRange over the model volume.
func modelRangeHash(rng int, buf []byte) uint64 {
	h := fnv.New64a()
	var key [8]byte
	binary.BigEndian.PutUint64(key[:], uint64(rng))
	h.Write(key[:])
	h.Write(buf)
	return h.Sum64()
}
