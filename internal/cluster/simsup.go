package cluster

// Supervised simulation: the same deterministic churn schedule, but the
// rebalance lifecycle is driven by a supervisor actor that can itself die
// and restart — including at the worst spot, between journaling a commit
// and pushing it. The actor keeps its durable state as an encoded
// SupJournal in memory (the sim's stand-in for the wallclock supervisor's
// journal file), so a restart recovers exactly what a process restart
// would: resume a transition, or finish an interrupted push.
//
// The composed-failure matrix rides on the seed class (Seed % 3):
//
//	0  supervisor death mid-commit — every commit decision crashes the
//	   supervisor after the journal write, before the push.
//	1  node crash during repair during rebalance — while moves are in
//	   flight and copies are quarantined, members keep fail-stopping.
//	2  fail-slow head during join — range heads degrade while a joiner
//	   is being pulled in.
//
// Background supervisor kills and restarts run in every class on top of
// the forced scenario. All chaos remains guarded, so zero failed ops and
// zero lost writes stay absolute invariants even while the control plane
// is dead.

// simSup is the simulated supervisor actor.
type simSup struct {
	s     *sim
	alive bool

	// journal is the actor's only durable state across its own crashes.
	journal []byte

	// decided is a commit/abort that has been journaled but not pushed —
	// the table recovery must install, never re-decide. While non-nil the
	// chaos guard protects the decided placement's owners like Cur's.
	decided        *Table
	decidedAborted bool

	// crashAtCommit arms the mid-commit failpoint: the next commit
	// decision journals, then dies before pushing.
	crashAtCommit bool
}

func newSimSup(s *sim) *simSup {
	p := &simSup{s: s, alive: true}
	p.snapshot()
	return p
}

// snapshot journals the control plane's current state.
func (p *simSup) snapshot() {
	phase := SupStable
	if p.s.ctrl.Rebalancing() {
		phase = SupTransition
	}
	p.journalRecord(SnapshotSupJournal(p.s.ctrl.table, p.s.ctrl.pending, phase))
}

func (p *simSup) journalRecord(j SupJournal) {
	data, err := j.Encode()
	if err != nil {
		// Unencodable state is a harness bug, not a schedule outcome.
		panic("cluster: sim supervisor journal: " + err.Error())
	}
	p.journal = data
}

// tick is the supervisor's periodic round: finish a recovered push, then
// push the in-flight transition forward — the supervised twin of the
// harness-driven advanceRebalance.
func (p *simSup) tick() {
	if !p.alive {
		return
	}
	if p.decided != nil {
		p.finishPush()
		return
	}
	s := p.s
	if !s.ctrl.Rebalancing() {
		return
	}
	for i := 0; i < 2 && len(s.ctrl.pending) > 0; i++ {
		if err := s.ctrl.RebalanceStep(); err != nil {
			s.stepFails++
			s.res.StepFailures++
		}
		// Journal after the step: re-streaming an already-streamed move is
		// idempotent, so a crash between stream and journal only costs a
		// repeat, never correctness.
		p.snapshot()
	}
	if len(s.ctrl.pending) == 0 {
		if s.commitSafe() {
			p.commit()
			return
		}
		s.stepFails++
		s.actRepair()
	}
	if s.stepFails > 16 {
		p.abort()
	}
}

// commit decides the new placement, journals the decision, and pushes —
// unless the armed failpoint kills the supervisor in between.
func (p *simSup) commit() {
	s := p.s
	decided := &Table{Epoch: s.ctrl.table.Epoch + 1, Cur: s.ctrl.table.Next}
	moved := Moves(s.ctrl.table.Cur, s.ctrl.table.Next)
	p.journalRecord(SnapshotSupJournal(decided, moved, SupPush))
	p.decided, p.decidedAborted = decided, false
	if p.crashAtCommit {
		// Dead between journal and push: nodes stay on the transition
		// epoch (union writes, reads on Cur) until a successor recovers
		// the journal and finishes the push.
		p.crashAtCommit = false
		p.alive = false
		s.res.SupKills++
		s.res.MidCommitCrashes++
		return
	}
	p.finishPush()
}

// abort decides a return to the old placement at a fresh epoch, with the
// same journal-then-push discipline.
func (p *simSup) abort() {
	s := p.s
	decided := &Table{Epoch: s.ctrl.table.Epoch + 1, Cur: s.ctrl.table.Cur}
	p.journalRecord(SnapshotSupJournal(decided, nil, SupPush))
	p.decided, p.decidedAborted = decided, true
	p.finishPush()
}

// finishPush installs a decided table on the control plane and nodes, and
// journals the stable state. Idempotent: recovery calls it for a decision
// made by a dead predecessor.
func (p *simSup) finishPush() {
	s := p.s
	aborted := p.decidedAborted
	s.ctrl.table = p.decided
	s.ctrl.pending = nil
	s.ctrl.push()
	p.journalRecord(SnapshotSupJournal(s.ctrl.table, nil, SupStable))
	p.decided = nil
	if aborted {
		s.res.Aborts++
	} else {
		s.res.Commits++
	}
	s.finishTransition(aborted)
}

// kill fail-stops the supervisor. Its in-memory state dies with it; only
// the journal survives.
func (p *simSup) kill() {
	if !p.alive {
		return
	}
	p.alive = false
	p.decided = nil // lost with the process; recovered from the journal
	p.crashAtCommit = false
	p.s.res.SupKills++
}

// restart recovers a supervisor from the journal, exactly as the wallclock
// daemon does from its file: stable re-adopts, transition resumes, push
// finishes the interrupted install.
func (p *simSup) restart() {
	if p.alive {
		return
	}
	s := p.s
	j, err := DecodeSupJournal(p.journal)
	if err != nil {
		panic("cluster: sim supervisor recovery: " + err.Error())
	}
	table, _, err := j.Table()
	if err != nil {
		panic("cluster: sim supervisor recovery: " + err.Error())
	}
	p.alive = true
	s.res.SupRestarts++
	switch j.Phase {
	case SupStable, SupTransition:
		// The control plane's in-memory table was journaled before it took
		// effect, so it already matches; nothing to rebuild, just resume.
		if j.Phase == SupTransition {
			s.res.SupResumes++
		}
	case SupPush:
		// A decided commit/abort whose push never ran. Whether it was a
		// commit is recoverable from shape: a commit's table is the
		// transition's Next membership, an abort's is its Cur.
		p.decided = table
		p.decidedAborted = s.ctrl.table.Next == nil || !sameMembers(table.Cur, s.ctrl.table.Next)
		s.res.SupRecoverPushes++
		p.finishPush()
	}
}

// chaos runs the supervisor-layer fault injection for this tick: the
// seed-class composed scenario plus background supervisor kills and
// restarts.
func (p *simSup) chaos() {
	s := p.s
	if !p.alive {
		// A dead control plane usually comes back; sometimes it stays down
		// a while longer, leaving the data plane to ride on its own.
		if s.rng.Intn(3) != 0 {
			p.restart()
		}
		return
	}
	switch s.cfg.Seed % 3 {
	case 0: // supervisor death mid-commit
		if s.ctrl.Rebalancing() {
			p.crashAtCommit = true
		}
	case 1: // node crash during repair during rebalance
		if s.ctrl.Rebalancing() && s.client.DegradedCount() > 0 {
			s.composedKill()
		}
	case 2: // fail-slow head during join
		if s.joining != "" {
			s.composedSlowHead()
		}
	}
	if s.rng.Intn(12) == 0 {
		p.kill()
	}
}

// composedKill fail-stops a member specifically while a rebalance and a
// repair are both in flight — the guarded triple-fault of scenario 1.
func (s *sim) composedKill() {
	alive := s.aliveMembers()
	if len(alive) == 0 {
		return
	}
	victim := alive[s.rng.Intn(len(alive))]
	if !s.safeWithout(map[string]bool{victim: true}) {
		s.res.GuardSkips++
		return
	}
	s.net.nodes[victim].Kill()
	s.downed = append(s.downed, victim)
	s.res.Kills++
	s.res.RepairRebalanceCrashes++
}

// composedSlowHead degrades the link of an acknowledged range's head owner
// while a join is pulling data through it — scenario 2's fail-slow.
func (s *sim) composedSlowHead() {
	if len(s.ackedList) == 0 {
		return
	}
	rng := s.ackedList[s.rng.Intn(len(s.ackedList))]
	owners := s.ctrl.Table().Cur.Owners(rng)
	if len(owners) == 0 {
		return
	}
	head := owners[0]
	if nd := s.net.nodes[head]; nd == nil || !nd.alive {
		return
	}
	s.net.Link(head).Degrade(float64(10 + s.rng.Intn(20)))
	s.slowed = append(s.slowed, head)
	s.res.Degrades++
	s.res.SlowJoinHeads++
}

// sameMembers reports whether two rings share a member ID set.
func sameMembers(a, b *Ring) bool {
	am, bm := a.Members(), b.Members()
	if len(am) != len(bm) {
		return false
	}
	set := make(map[string]bool, len(am))
	for _, m := range am {
		set[m.ID] = true
	}
	for _, m := range bm {
		if !set[m.ID] {
			return false
		}
	}
	return true
}
