package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// DegKey names one quarantined copy: node id × range.
type DegKey struct {
	Node  string
	Range int
}

// ClientStats counts what the routing client did — the churn harness's
// coverage evidence.
type ClientStats struct {
	Reads, Writes     int64
	Failovers         int64 // read attempts that moved to another replica
	Refetches         int64 // table refetches triggered by ErrStaleEpoch
	PartialWrites     int64 // acked writes that missed at least one replica
	Repaired          int64 // ranges healed by anti-entropy
	DegradedHighwater int   // most copies quarantined at once
}

// Client routes volume reads and writes onto the fleet: it splits requests
// on range boundaries, addresses the replica chain from its cached routing
// table, refetches the table when a node rejects its epoch, fails reads
// over across replicas, and quarantines copies that miss writes so no read
// is ever served stale. One Client is one host-side initiator; like the
// rest of the package it is single-goroutine and wallclock-free.
type Client struct {
	net   *Net
	fetch func() *Table
	table *Table
	det   *Detector

	degraded map[DegKey]bool
	stats    ClientStats
}

// maxEpochRetries bounds how many table refetches one operation will chase
// before giving up — the control plane would have to burn epochs faster
// than the client can follow.
const maxEpochRetries = 4

// NewClient builds a client. fetch returns the control plane's current
// table (the in-process stand-in for a table-fetch RPC); det scores every
// interaction for failure detection.
func NewClient(n *Net, fetch func() *Table, det *Detector) (*Client, error) {
	if fetch == nil {
		return nil, fmt.Errorf("cluster: nil table fetch")
	}
	if det == nil {
		det = NewDetector(DetectorConfig{})
	}
	return &Client{net: n, fetch: fetch, table: fetch(), det: det, degraded: make(map[DegKey]bool)}, nil
}

// Stats returns a copy of the client's counters.
func (cl *Client) Stats() ClientStats { return cl.stats }

// Detector exposes the client's failure detector.
func (cl *Client) Detector() *Detector { return cl.det }

// Table returns the client's cached routing table.
func (cl *Client) Table() *Table { return cl.table }

// refresh refetches the routing table from the control plane.
func (cl *Client) refresh() {
	cl.table = cl.fetch()
	cl.stats.Refetches++
}

// MarkDegraded quarantines a copy: reads will skip it until repair clears
// it. The harness calls this for operator-visible events (a wiped disk, a
// join target not yet streamed); the client calls it itself for replicas
// that miss writes.
func (cl *Client) MarkDegraded(node string, rng int) {
	cl.degraded[DegKey{node, rng}] = true
	if len(cl.degraded) > cl.stats.DegradedHighwater {
		cl.stats.DegradedHighwater = len(cl.degraded)
	}
}

// Degraded reports whether a copy is quarantined.
func (cl *Client) Degraded(node string, rng int) bool {
	return cl.degraded[DegKey{node, rng}]
}

// DegradedCount reports how many copies are quarantined.
func (cl *Client) DegradedCount() int { return len(cl.degraded) }

// degradedKeys returns the quarantine set in deterministic order.
func (cl *Client) degradedKeys() []DegKey {
	keys := make([]DegKey, 0, len(cl.degraded))
	for k := range cl.degraded {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Node != keys[j].Node {
			return keys[i].Node < keys[j].Node
		}
		return keys[i].Range < keys[j].Range
	})
	return keys
}

// WriteAt writes p at volume offset off, splitting on range boundaries.
// Every piece must acknowledge on at least one replica or the whole call
// fails (no partial acks are reported as success at the volume level —
// pieces that did land stay durable and later reads of them are valid).
func (cl *Client) WriteAt(p []byte, off int64) error {
	return cl.split(p, off, cl.writeRange)
}

// ReadAt fills p from volume offset off.
func (cl *Client) ReadAt(p []byte, off int64) error {
	return cl.split(p, off, cl.readRange)
}

// split carves a volume extent into per-range pieces.
func (cl *Client) split(p []byte, off int64, op func(rng int, off int64, p []byte) error) error {
	if off < 0 || off+int64(len(p)) > cl.table.Cur.Size() {
		return fmt.Errorf("cluster: extent [%d,%d) outside volume of %d bytes", off, off+int64(len(p)), cl.table.Cur.Size())
	}
	rb := cl.table.Cur.RangeBytes
	for len(p) > 0 {
		rng := int(off / rb)
		in := off % rb
		n := rb - in
		if n > int64(len(p)) {
			n = int64(len(p))
		}
		if err := op(rng, in, p[:n]); err != nil {
			return err
		}
		off += n
		p = p[n:]
	}
	return nil
}

// writeRange replicates one in-range write through the owner chain. The
// head is the first live, reachable, non-quarantined owner — a clean head
// guarantees every acknowledged write leaves at least one clean copy, the
// invariant reads rely on. Owners the chain could not reach are
// quarantined.
func (cl *Client) writeRange(rng int, off int64, p []byte) error {
	for attempt := 0; attempt <= maxEpochRetries; attempt++ {
		owners := cl.table.WriteOwners(rng)
		applied, err := cl.chainWrite(rng, off, p, owners)
		if errors.Is(err, ErrStaleEpoch) {
			cl.refresh()
			continue
		}
		if err != nil {
			return err
		}
		ok := make(map[string]bool, len(applied))
		for _, id := range applied {
			ok[id] = true
		}
		missed := 0
		for _, id := range owners {
			if !ok[id] {
				cl.MarkDegraded(id, rng)
				missed++
			}
		}
		if missed > 0 {
			cl.stats.PartialWrites++
		}
		cl.stats.Writes++
		return nil
	}
	return fmt.Errorf("cluster: write range %d: epochs kept moving after %d refetches", rng, maxEpochRetries)
}

// chainWrite tries successive candidate heads until one serves. Clean
// candidates are tried before quarantined ones: a quarantined head keeps
// the write durable but cannot restore the clean-copy invariant, so it is
// strictly a last resort (and unreachable under the harness's guarded
// schedules). A stale-epoch refusal from the head propagates unchanged:
// writeRange owns the refetch-and-retry loop.
//
//srclint:surfaces staleepoch
func (cl *Client) chainWrite(rng int, off int64, p []byte, owners []string) ([]string, error) {
	try := func(quarantined bool) ([]string, error) {
		for pos, id := range owners {
			if cl.Degraded(id, rng) != quarantined {
				continue
			}
			nd, err := cl.net.hop("client", id, int64(len(p))+64)
			if err != nil {
				cl.det.Observe(id, unreachableTimeout, true)
				continue
			}
			applied, err := nd.handleWrite(cl.table.Epoch, rng, off, p, owners, pos)
			cl.net.reply(id, 64)
			cl.det.ObserveOK(id) // it answered; even an error reply proves liveness
			if err != nil {
				return nil, err
			}
			return applied, nil
		}
		return nil, nil
	}
	for _, quarantined := range []bool{false, true} {
		applied, err := try(quarantined)
		if err != nil || applied != nil {
			return applied, err
		}
	}
	return nil, fmt.Errorf("%w: write range %d", ErrNoReplica, rng)
}

// readRange serves one in-range read from the healthiest clean replica,
// failing over across the chain. Quarantined copies are never read — a
// stale copy answers with the wrong bytes, not an error, so correctness
// depends on skipping them outright.
func (cl *Client) readRange(rng int, off int64, p []byte) error {
	for attempt := 0; attempt <= maxEpochRetries; attempt++ {
		owners := cl.table.ReadOwners(rng)
		// Route around fail-slow: healthy replicas first, Slow ones as
		// fallback, Down ones last (the detector may be wrong — a "down"
		// node that answers is better than no answer).
		sort.SliceStable(owners, func(i, j int) bool {
			return cl.det.State(owners[i]) < cl.det.State(owners[j])
		})
		stale := false
		tried := 0
		for _, id := range owners {
			if cl.Degraded(id, rng) {
				continue
			}
			tried++
			nd, err := cl.net.hop("client", id, 64)
			if err != nil {
				cl.det.Observe(id, unreachableTimeout, true)
				cl.stats.Failovers++
				continue
			}
			data, err := nd.handleRead(cl.table.Epoch, rng, off, int64(len(p)))
			cl.net.reply(id, int64(len(data))+16)
			cl.det.ObserveOK(id)
			if errors.Is(err, ErrStaleEpoch) {
				stale = true
				break
			}
			if err != nil {
				cl.stats.Failovers++
				continue
			}
			copy(p, data)
			cl.stats.Reads++
			return nil
		}
		if stale {
			cl.refresh()
			continue
		}
		return fmt.Errorf("%w: read range %d (%d clean replicas tried)", ErrNoReplica, rng, tried)
	}
	return fmt.Errorf("cluster: read range %d: epochs kept moving after %d refetches", rng, maxEpochRetries)
}

// PingAll sweeps a health probe over every table member, feeding the
// failure detector — the background heartbeat that classifies fail-stop
// (no answer) and fail-slow (answers, slowly) members.
func (cl *Client) PingAll() {
	for _, id := range cl.table.members() {
		start := cl.net.Now()
		nd, err := cl.net.hop("client", id, pingBytes)
		if err != nil {
			cl.det.Observe(id, unreachableTimeout, true)
			continue
		}
		epoch, _ := nd.handlePing()
		cl.net.reply(id, pingBytes)
		cl.det.Observe(id, cl.net.Now().Sub(start), false)
		if epoch > cl.table.Epoch {
			cl.refresh()
		}
	}
}

// Repair runs anti-entropy over the quarantine set: for every degraded
// copy whose node is alive and still an owner, fetch a fingerprint from a
// clean replica, stream the bytes across, verify, and lift the quarantine.
// Marks for nodes that no longer own the range (membership moved on) or
// whose data was dropped are lifted without traffic.
func (cl *Client) Repair() (healed int, err error) {
	for _, k := range cl.degradedKeys() {
		owners := cl.table.WriteOwners(k.Range)
		owned := false
		for _, id := range owners {
			if id == k.Node {
				owned = true
			}
		}
		if !owned {
			delete(cl.degraded, k)
			continue
		}
		if !cl.net.Reachable("client", k.Node) {
			continue // still down or cut off; repair again later
		}
		var src *Node
		hasData := false
		for _, id := range owners {
			nd := cl.net.nodes[id]
			if nd == nil {
				continue
			}
			if _, ok := nd.HashRange(k.Range); !ok {
				continue
			}
			hasData = true
			if id == k.Node || cl.Degraded(id, k.Range) || !cl.net.Reachable(k.Node, id) {
				continue
			}
			src = nd
			break
		}
		if src == nil {
			// Lift the mark only when no write owner holds any data — the
			// range was never written, so the quarantine guards nothing.
			// Data held solely by degraded or unreachable copies keeps the
			// mark; a later pass repairs once a clean source is available.
			if !hasData {
				delete(cl.degraded, k)
			}
			continue
		}
		data := src.rangeCopy(k.Range)
		cl.net.reply(src.id, int64(len(data)))
		tgt, herr := cl.net.hop(src.id, k.Node, int64(len(data)))
		if herr != nil {
			continue
		}
		tgt.ApplyRange(k.Range, data)
		want, _ := src.HashRange(k.Range)
		got, ok := tgt.HashRange(k.Range)
		if !ok || got != want {
			return healed, fmt.Errorf("cluster: repair of range %d on %s verified mismatched", k.Range, k.Node)
		}
		delete(cl.degraded, k)
		healed++
		cl.stats.Repaired++
	}
	return healed, nil
}
