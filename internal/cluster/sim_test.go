package cluster

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// TestClusterChurn is the acceptance harness: every seeded membership-churn
// schedule — kills, restarts, wipes, fail-slow links, partitions, joins and
// leaves overlapping in-flight rebalances — must complete with zero
// acknowledged-write loss and zero failed requests while a healthy replica
// existed. CLUSTER_SEEDS widens the sweep (CI's cluster job sets it); the
// default keeps the tier-1 run fast.
func TestClusterChurn(t *testing.T) {
	seeds := int64(50)
	if v := os.Getenv("CLUSTER_SEEDS"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("bad CLUSTER_SEEDS %q", v)
		}
		seeds = n
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%03d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := Sim(SimConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if v := res.Violations(); len(v) != 0 {
				t.Fatalf("invariants violated: %v\n%+v", v, res)
			}
			if res.Reads == 0 || res.Writes == 0 {
				t.Fatalf("schedule exercised too little: %+v", res)
			}
		})
	}
}

// TestClusterChurnDeterministic replays one schedule and requires an
// identical Result, signature included — the property every debugging
// session depends on.
func TestClusterChurnDeterministic(t *testing.T) {
	cfg := SimConfig{Seed: 11, Ops: 600}
	a, err := Sim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Sim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || a.Signature() != b.Signature() {
		t.Fatalf("same seed, different runs:\n  %+v\n  %+v", a, b)
	}
	c, err := Sim(SimConfig{Seed: 12, Ops: 600})
	if err != nil {
		t.Fatal(err)
	}
	if c.Signature() == a.Signature() {
		t.Fatal("different seeds produced identical signatures")
	}
}

// TestClusterChurnCoverage checks that, across a seed sweep, every fault
// class actually fires and both failure modes are detected — a schedule
// that never kills or partitions anything proves nothing.
func TestClusterChurnCoverage(t *testing.T) {
	var total Result
	for seed := int64(1); seed <= 16; seed++ {
		res, err := Sim(SimConfig{Seed: seed, Ops: 800})
		if err != nil {
			t.Fatal(err)
		}
		total.Kills += res.Kills
		total.Restarts += res.Restarts
		total.Wipes += res.Wipes
		total.Degrades += res.Degrades
		total.Partitions += res.Partitions
		total.PartitionHeals += res.PartitionHeals
		total.Joins += res.Joins
		total.Leaves += res.Leaves
		total.Commits += res.Commits
		total.MovesStreamed += res.MovesStreamed
		total.RangesRepaired += res.RangesRepaired
		total.Client.Failovers += res.Client.Failovers
		total.Client.Refetches += res.Client.Refetches
		total.Client.PartialWrites += res.Client.PartialWrites
		total.DownDetected = total.DownDetected || res.DownDetected
		total.SlowDetected = total.SlowDetected || res.SlowDetected
	}
	if total.Kills == 0 || total.Restarts == 0 || total.Wipes == 0 ||
		total.Degrades == 0 || total.Partitions == 0 || total.PartitionHeals == 0 {
		t.Fatalf("fault kinds not all exercised: %+v", total)
	}
	if total.Joins == 0 || total.Leaves == 0 || total.Commits == 0 || total.MovesStreamed == 0 {
		t.Fatalf("membership churn not exercised: %+v", total)
	}
	if total.RangesRepaired == 0 {
		t.Fatalf("anti-entropy never repaired anything: %+v", total)
	}
	if total.Client.Failovers == 0 || total.Client.Refetches == 0 || total.Client.PartialWrites == 0 {
		t.Fatalf("client resilience paths not exercised: %+v", total)
	}
	if !total.DownDetected || !total.SlowDetected {
		t.Fatalf("detector never classified both failure modes: %+v", total)
	}
}

// TestClusterChurnLatencyObserved pins that the harness produces usable
// latency digests — the EXPERIMENTS table row is built from these.
func TestClusterChurnLatencyObserved(t *testing.T) {
	res, err := Sim(SimConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReadLat.Count == 0 || res.WriteLat.Count == 0 {
		t.Fatalf("no latency observations: %+v", res)
	}
	if res.ReadLat.P99 < res.ReadLat.P50 || res.WriteLat.P99 < res.WriteLat.P50 {
		t.Fatalf("inconsistent percentiles: %+v %+v", res.ReadLat, res.WriteLat)
	}
	if res.Elapsed <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}
