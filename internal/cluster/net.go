package cluster

import (
	"errors"
	"fmt"

	"srccache/internal/netlink"
	"srccache/internal/vtime"
)

// Errors surfaced by the cluster layer.
var (
	// ErrUnreachable means the destination is partitioned away, dead, or
	// unknown; the caller burned the unreachable timeout learning that.
	ErrUnreachable = errors.New("cluster: peer unreachable")
	// ErrStaleEpoch means the caller's routing table epoch does not match
	// the node's — refetch the table and retry. The staleepoch analyzer
	// (DESIGN.md §8 rule 11) holds cluster-layer callers to that protocol.
	//
	//srclint:contracterr staleepoch
	ErrStaleEpoch = errors.New("cluster: stale routing epoch")
	// ErrNotOwner means the node does not own the addressed range under its
	// current table.
	ErrNotOwner = errors.New("cluster: not an owner of range")
	// ErrMissing means the node owns the range but holds no data for it
	// (never written, or wiped).
	ErrMissing = errors.New("cluster: range not present")
	// ErrNoReplica means every replica of the range failed — the cluster
	// lost the range, which the churn harness treats as a hard violation.
	ErrNoReplica = errors.New("cluster: no replica could serve")
)

// unreachableTimeout is the virtual time a caller burns discovering that a
// peer is dead or partitioned — the stand-in for a connect/request timeout.
const unreachableTimeout = 5 * vtime.Millisecond

// pairKey is an unordered endpoint pair, for the partition set.
func pairKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Net is the simulation's network: one netlink.Link per node (its NIC),
// a partition set over endpoint pairs, and the virtual clock every hop
// advances. All traffic to or from a node — client requests, chain
// forwards, rebalance streams — rides that node's link, so degrading the
// link makes the node fail-slow for every caller at once.
//
// Net is single-goroutine like the rest of the simulation; the clock moves
// only when a hop or an explicit Advance moves it.
type Net struct {
	now   vtime.Time
	cfg   netlink.Config
	nodes map[string]*Node
	links map[string]*netlink.Link
	cut   map[string]bool
}

// NewNet builds a network whose node links all use cfg (Seed is offset per
// node so jittered links do not move in lockstep).
func NewNet(cfg netlink.Config) (*Net, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	return &Net{
		cfg:   cfg,
		nodes: make(map[string]*Node),
		links: make(map[string]*netlink.Link),
		cut:   make(map[string]bool),
	}, nil
}

// Now reports the virtual clock.
func (n *Net) Now() vtime.Time { return n.now }

// Advance moves the clock forward d — idle time between operations.
func (n *Net) Advance(d vtime.Duration) {
	if d > 0 {
		n.now = n.now.Add(d)
	}
}

// register attaches a node and provisions its link. Node IDs are also the
// endpoint names partitions refer to; "client" and "control" are implicit
// endpoints with no link of their own.
func (n *Net) register(nd *Node) error {
	if _, ok := n.nodes[nd.id]; ok {
		return fmt.Errorf("cluster: duplicate node %q", nd.id)
	}
	cfg := n.cfg
	cfg.Seed += int64(len(n.links)) + 1
	link, err := netlink.New(cfg)
	if err != nil {
		return err
	}
	n.nodes[nd.id] = nd
	n.links[nd.id] = link
	return nil
}

// Link exposes a node's link so callers can Degrade it (fail-slow).
func (n *Net) Link(id string) *netlink.Link { return n.links[id] }

// Partition cuts both directions between endpoints a and b.
func (n *Net) Partition(a, b string) { n.cut[pairKey(a, b)] = true }

// Heal removes the partition between a and b.
func (n *Net) Heal(a, b string) { delete(n.cut, pairKey(a, b)) }

// HealAll removes every partition.
func (n *Net) HealAll() { n.cut = make(map[string]bool) }

// Partitioned reports whether a and b are cut off from each other.
func (n *Net) Partitioned(a, b string) bool { return n.cut[pairKey(a, b)] }

// Reachable reports whether from can currently talk to node id: it exists,
// is alive, and no partition separates them. This is the guard predicate
// the chaos schedule uses; it does not advance the clock.
func (n *Net) Reachable(from, id string) bool {
	nd := n.nodes[id]
	return nd != nil && nd.alive && !n.Partitioned(from, id)
}

// hop delivers nbytes from endpoint from to node to, advancing the clock
// by the link's transfer time — or by the unreachable timeout when the
// destination is dead, unknown, or partitioned away. It returns the node
// for the caller to invoke.
func (n *Net) hop(from, to string, nbytes int64) (*Node, error) {
	nd := n.nodes[to]
	if nd == nil || !nd.alive || n.Partitioned(from, to) {
		n.now = n.now.Add(unreachableTimeout)
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	n.now = n.links[to].Send(n.now, nbytes)
	return nd, nil
}

// reply models the response leg: nbytes from node from back toward the
// caller, on from's downstream link direction. The node answered the
// request, so only a partition raised mid-flight could cut the reply; the
// simulation applies partitions between operations, making reply
// infallible — it just costs time.
func (n *Net) reply(from string, nbytes int64) {
	n.now = n.links[from].Recv(n.now, nbytes)
}
