package cluster

import "sort"

// Table is the epoch-versioned routing state the control plane pushes to
// nodes and clients fetch. A stable table has Next == nil; during a
// rebalance the table carries both placements: writes replicate to the
// union of Cur and Next owners (so the new placement is current the moment
// it commits), while reads stay on Cur owners (whose copies are known
// complete). Epochs only grow; a node rejects any request stamped with a
// different epoch so a stale client learns to refetch.
type Table struct {
	Epoch uint64
	Cur   *Ring
	Next  *Ring
}

// Stable reports whether no rebalance is in flight.
func (t *Table) Stable() bool { return t.Next == nil }

// ReadOwners returns the replicas a read of rng may be served from.
func (t *Table) ReadOwners(rng int) []string { return t.Cur.Owners(rng) }

// WriteOwners returns the replica chain a write of rng must reach: Cur's
// chain in chain order, extended by any Next-only owners. Index order is
// the forwarding order.
func (t *Table) WriteOwners(rng int) []string {
	owners := t.Cur.Owners(rng)
	if t.Next == nil {
		return owners
	}
	seen := make(map[string]bool, len(owners))
	for _, id := range owners {
		seen[id] = true
	}
	for _, id := range t.Next.Owners(rng) {
		if !seen[id] {
			seen[id] = true
			owners = append(owners, id)
		}
	}
	return owners
}

// writeOwned reports whether id is in rng's write set.
func (t *Table) writeOwned(rng int, id string) bool {
	for _, o := range t.WriteOwners(rng) {
		if o == id {
			return true
		}
	}
	return false
}

// members returns every member id appearing in Cur or Next, sorted — the
// ping sweep's target list.
func (t *Table) members() []string {
	var ids []string
	seen := make(map[string]bool)
	for _, m := range t.Cur.Members() {
		if !seen[m.ID] {
			seen[m.ID] = true
			ids = append(ids, m.ID)
		}
	}
	if t.Next != nil {
		for _, m := range t.Next.Members() {
			if !seen[m.ID] {
				seen[m.ID] = true
				ids = append(ids, m.ID)
			}
		}
	}
	sort.Strings(ids)
	return ids
}
