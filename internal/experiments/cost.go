package experiments

import (
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/costmodel"
	"srccache/internal/src"
	"srccache/internal/ssd"
)

// Section 5.3: cost-effectiveness.

// Table12 renders the device-economics data (Tables 4 and 12).
func Table12(Options) ([]*Table, error) {
	t4 := &Table{
		ID:      "Table 4",
		Title:   "Comparison of storage devices (manufacturer specifications)",
		Columns: []string{"Family", "Interface", "Capacity (GB)", "Price ($)", "SR (MB/s)", "SW (MB/s)", "RR (KIOPS)", "RW (KIOPS)"},
	}
	for _, d := range costmodel.Table4() {
		t4.Rows = append(t4.Rows, []string{
			d.Family, d.Iface.String(),
			fmt.Sprintf("%d", d.CapacityGB), fmt.Sprintf("%.0f", d.PriceUSD),
			fmt.Sprintf("%d", d.SeqReadMB), fmt.Sprintf("%d", d.SeqWriteMB),
			fmt.Sprintf("%d", d.RandReadK), fmt.Sprintf("%d", d.RandWriteK),
		})
	}
	t12 := &Table{
		ID:      "Table 12",
		Title:   "SATA and NVMe SSD configurations",
		Columns: []string{"Product", "Interface", "NAND", "Endurance", "Capacity", "Cost ($)", "GB/$", "Year"},
	}
	for _, p := range costmodel.Catalog() {
		t12.Rows = append(t12.Rows, []string{
			p.Label, p.Iface.String(), p.Cell.String(),
			fmt.Sprintf("%dK", p.Endurance/1000),
			fmt.Sprintf("%dx%dGB", p.Units, p.UnitGB),
			fmt.Sprintf("%.0f", p.PriceUSD),
			f2(p.GBPerDollar()),
			fmt.Sprintf("%d", p.Year),
		})
	}
	return []*Table{t4, t12}, nil
}

// productCache assembles an SRC cache for one Table 12 product: RAID-5 over
// the four SATA drives, or a single parityless NVMe drive.
func productCache(o Options, p costmodel.Product, span int64) (*src.Cache, error) {
	// Per-drive cache region scaled in proportion to the product's real
	// capacity, rounded to erase groups.
	region := o.cachePerSSD() * int64(p.UnitGB) / 128
	region -= region % o.superblock()
	devs := make([]blockdev.Device, p.Units)
	for i := range devs {
		cfg := p.DeviceConfig(fmt.Sprintf("%s-%d", p.Label, i), region)
		cfg.EraseGroupSize = o.superblock()
		cfg.WriteCacheBytes = 64 << 20 / o.Scale
		d, err := ssd.New(cfg)
		if err != nil {
			return nil, err
		}
		devs[i] = d
	}
	prim, err := newPrimary(span)
	if err != nil {
		return nil, err
	}
	cfg := src.Config{
		SSDs:           devs,
		Primary:        prim,
		EraseGroupSize: o.superblock(),
		SegmentColumn:  o.segColumn(),
	}
	if p.Units == 1 {
		cfg.Level = src.RAID0 // single high-end drive: no parity (paper §5.3)
		// The paper's segment is 2 MB in total; with one drive the whole
		// segment is a single column.
		cfg.SegmentColumn = o.segColumn() * 4
	}
	return src.New(cfg)
}

// Figure6 runs the cost-effectiveness study: throughput, MB/s per dollar,
// lifetime days (512 GB/day, measured WAF), and lifetime per dollar for
// each Table 12 product.
func Figure6(opts Options) ([]*Table, error) {
	o := opts.normalize()
	products := costmodel.Catalog()

	mk := func(id, title string) *Table {
		t := &Table{ID: id, Title: title, Columns: []string{"Product"}}
		t.Columns = append(t.Columns, groupNames()...)
		return t
	}
	tPerf := mk("Figure 6(a)", "Throughput (MB/s)")
	tLife := mk("Figure 6(b)", "Lifetime (days), 512 GB/day at measured WAF")
	tPerfD := mk("Figure 6(c)", "Performance per dollar ((MB/s)/$)")
	tLifeD := mk("Figure 6(d)", "Lifetime per dollar (days/$)")
	notes := []string{
		"paper shape: MLC arrays beat TLC on raw performance and lifetime;",
		"TLC arrays win performance/$; MLC arrays win lifetime/$;",
		"the single NVMe drive wins raw performance but loses on lifetime and is fail-stop",
	}
	tPerf.Notes = notes

	groups := groupNames()
	results, err := gridCells(o, "fig6", len(products), len(groups),
		func(r, c int) string { return fmt.Sprintf("%s/%s", products[r].Label, groups[c]) },
		func(r, c int) (GroupRun, error) {
			p, g := products[r], groups[c]
			span, err := groupSpan(g, o)
			if err != nil {
				return GroupRun{}, err
			}
			cache, err := productCache(o, p, span)
			if err != nil {
				return GroupRun{}, fmt.Errorf("figure 6 %s: %w", p.Label, err)
			}
			run, err := runGroup(cache, g, o)
			if err != nil {
				return GroupRun{}, fmt.Errorf("figure 6 %s %s: %w", p.Label, g, err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, p := range products {
		rowPerf := []string{p.Label}
		rowLife := []string{p.Label}
		rowPerfD := []string{p.Label}
		rowLifeD := []string{p.Label}
		for c := range groups {
			run := results[r][c]
			waf := run.WAF
			if waf <= 0 {
				waf = 1
			}
			days := costmodel.LifetimeDays(p.Endurance, p.TotalBytes(), costmodel.DefaultDailyWriteBytes, waf)
			rowPerf = append(rowPerf, f1(run.MBps))
			rowLife = append(rowLife, fmt.Sprintf("%.0f", days))
			rowPerfD = append(rowPerfD, f3(run.MBps/p.PriceUSD))
			rowLifeD = append(rowLifeD, f2(costmodel.LifetimePerDollar(days, p.PriceUSD)))
		}
		tPerf.Rows = append(tPerf.Rows, rowPerf)
		tLife.Rows = append(tLife.Rows, rowLife)
		tPerfD.Rows = append(tPerfD.Rows, rowPerfD)
		tLifeD.Rows = append(tLifeD.Rows, rowLifeD)
	}
	return []*Table{tPerf, tLife, tPerfD, tLifeD}, nil
}
