package experiments

import (
	"sync"
	"sync/atomic"
	"time"
)

// Parallel experiment execution. Every experiment decomposes into
// independent cells — one (scheme × trace group × parameter point)
// simulation, closing over its own devices and workload sources — and a
// deterministic assembly step that reads the cell results back in
// canonical order. Virtual time is per-simulation, so a cell's outcome
// cannot depend on when or where it runs; fanning cells out over
// goroutines is therefore free of result drift by construction, and the
// rendered tables are byte-identical to a serial run at any parallelism.

// Cell is one independent experiment point. Run builds everything the
// simulation needs (devices, caches, workloads) inside the closure and
// stores the outcome into a result slot owned exclusively by this cell.
type Cell struct {
	// Label identifies the cell in progress output, e.g. "Write/Sel-GC/FIFO".
	Label string
	// Run executes the cell's simulation.
	Run func() error
}

// CellEvent reports one completed cell to an Options.Progress callback.
type CellEvent struct {
	Experiment string        // registry name, e.g. "table8"
	Label      string        // the cell's label
	Index      int           // canonical index of the cell within the experiment
	Total      int           // number of cells in the experiment
	Elapsed    time.Duration // wall-clock simulation time for this cell
	Err        error         // nil on success
}

// runCells executes the cells of one experiment under o.Parallel workers
// (1 = serial). Whatever the scheduling, the reported error is that of the
// lowest-indexed failing cell — the same one a serial run would hit first —
// so error output stays deterministic too.
func (o Options) runCells(exp string, cells []Cell) error {
	workers := o.Parallel
	if workers <= 0 {
		workers = 1
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	if workers <= 1 {
		for i := range cells {
			if err := o.runCell(exp, i, len(cells), &cells[i]); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(cells))
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(cells) {
					return
				}
				errs[i] = o.runCell(exp, i, len(cells), &cells[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runCell runs one cell, timing it and reporting to the progress callback.
func (o Options) runCell(exp string, i, total int, c *Cell) error {
	start := time.Now() //srclint:allow wallclock progress timing only, never reaches result tables
	err := c.Run()
	if o.Progress != nil {
		o.Progress(CellEvent{
			Experiment: exp,
			Label:      c.Label,
			Index:      i,
			Total:      total,
			Elapsed:    time.Since(start), //srclint:allow wallclock progress timing only
			Err:        err,
		})
	}
	return err
}

// gridCells runs one cell per (row, col) point of a result grid and
// returns the results indexed [row][col], assembled in canonical order
// regardless of scheduling. run must be self-contained (no shared mutable
// state); label names the cell for progress output.
func gridCells[T any](o Options, exp string, rows, cols int,
	label func(r, c int) string, run func(r, c int) (T, error)) ([][]T, error) {
	results := make([][]T, rows)
	cells := make([]Cell, 0, rows*cols)
	for r := 0; r < rows; r++ {
		results[r] = make([]T, cols)
		for c := 0; c < cols; c++ {
			r, c := r, c
			cells = append(cells, Cell{
				Label: label(r, c),
				Run: func() error {
					v, err := run(r, c)
					if err != nil {
						return err
					}
					results[r][c] = v
					return nil
				},
			})
		}
	}
	if err := o.runCells(exp, cells); err != nil {
		return nil, err
	}
	return results, nil
}
