package experiments

import (
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/raid"
	"srccache/internal/ripqsim"
	"srccache/internal/src"
	"srccache/internal/ssd"
)

// Ablations beyond the paper's published tables (DESIGN.md §5): the design
// choices §4 calls out but the evaluation does not sweep, plus the §6
// future-work features implemented in this reproduction.

// AblationVictim extends Table 8's victim-selection comparison with the
// future-work Cost-Benefit policy.
func AblationVictim(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Ablation A1",
		Title:   "Victim selection under Sel-GC, MB/s (I/O amplification) — includes future-work Cost-Benefit",
		Columns: []string{"Group", "FIFO", "Greedy", "Cost-Benefit"},
		Notes:   []string{"beyond the paper: §6 lists other victim policies as future work"},
	}
	policies := []src.VictimPolicy{src.FIFO, src.Greedy, src.CostBenefit}
	groups := groupNames()
	results, err := gridCells(o, "ablation-victim", len(groups), len(policies),
		func(r, c int) string { return fmt.Sprintf("%s/%v", groups[r], policies[c]) },
		func(r, c int) (GroupRun, error) {
			v := policies[c]
			run, err := srcGroupRun(o, groups[r], func(cfg *src.Config) { cfg.Victim = v })
			if err != nil {
				return GroupRun{}, fmt.Errorf("ablation victim %v %s: %w", v, groups[r], err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, g := range groups {
		row := []string{g}
		for c := range policies {
			row = append(row, fmt.Sprintf("%s(%s)", f1(results[r][c].MBps), f2(results[r][c].IOAmp)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// AblationSegmentSize sweeps the segment size — §4.1 calls 2 MB "an
// implementation choice made as it is the largest unit in which data can
// be transferred"; this quantifies the choice.
func AblationSegmentSize(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Ablation A2",
		Title:   "Segment size sweep (paper-scale; the paper fixes 2 MB), MB/s",
		Columns: []string{"Segment (paper-scale)"},
		Notes:   []string{"smaller segments flush and pad more often; larger ones delay durability"},
	}
	groups := groupNames()
	t.Columns = append(t.Columns, groups...)
	// Paper-scale segment sizes: column = segment/4 for the 4-SSD array.
	segments := []int64{512 << 10, 2 << 20, 8 << 20}
	results, err := gridCells(o, "ablation-segsize", len(segments), len(groups),
		func(r, c int) string { return fmt.Sprintf("%dKB/%s", segments[r]>>10, groups[c]) },
		func(r, c int) (GroupRun, error) {
			segment := segments[r]
			column := segment / 4 / (o.Scale / 4)
			if column < 4*blockdev.PageSize {
				column = 4 * blockdev.PageSize
			}
			run, err := srcGroupRun(o, groups[c], func(cfg *src.Config) { cfg.SegmentColumn = column })
			if err != nil {
				return GroupRun{}, fmt.Errorf("ablation segment %d %s: %w", segment, groups[c], err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, segment := range segments {
		row := []string{fmt.Sprintf("%d KB", segment>>10)}
		for c := range groups {
			row = append(row, f1(results[r][c].MBps))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// AblationGCSplit compares mixing S2S dirty copies into the host dirty
// buffer (the paper's implementation) against the future-work hot/cold
// separation (§6).
func AblationGCSplit(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Ablation A3",
		Title:   "Hot/cold separation of S2S copies (paper §6 future work), MB/s (I/O amplification)",
		Columns: []string{"Group", "Mixed buffer", "Separate GC buffer"},
	}
	splits := []bool{false, true}
	groups := groupNames()
	results, err := gridCells(o, "ablation-gcsplit", len(groups), len(splits),
		func(r, c int) string { return fmt.Sprintf("%s/split=%v", groups[r], splits[c]) },
		func(r, c int) (GroupRun, error) {
			split := splits[c]
			run, err := srcGroupRun(o, groups[r], func(cfg *src.Config) { cfg.SeparateGCBuffer = split })
			if err != nil {
				return GroupRun{}, fmt.Errorf("ablation gcsplit %v %s: %w", split, groups[r], err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, g := range groups {
		row := []string{g}
		for c := range splits {
			row = append(row, fmt.Sprintf("%s(%s)", f1(results[r][c].MBps), f2(results[r][c].IOAmp)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// AblationDegraded measures service with one SSD failed: PC keeps serving
// everything from the array; NPC falls back to primary storage for clean
// data (§4.3's reliability/performance trade, quantified).
func AblationDegraded(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Ablation A4",
		Title:   "Degraded-mode throughput after one SSD failure (MB/s healthy -> degraded)",
		Columns: []string{"Group", "PC", "NPC"},
		Notes:   []string{"§4.3: with PC, caching service is not disrupted by SSD failure; NPC refetches clean data"},
	}
	type pair struct{ healthy, degraded float64 }
	modes := []src.ParityMode{src.PC, src.NPC}
	groups := groupNames()
	results, err := gridCells(o, "ablation-degraded", len(groups), len(modes),
		func(r, c int) string { return fmt.Sprintf("%s/%v", groups[r], modes[c]) },
		func(r, c int) (pair, error) {
			healthy, degraded, err := degradedRun(o, groups[r], modes[c])
			if err != nil {
				return pair{}, fmt.Errorf("ablation degraded %v %s: %w", modes[c], groups[r], err)
			}
			return pair{healthy, degraded}, nil
		})
	if err != nil {
		return nil, err
	}
	for r, g := range groups {
		row := []string{g}
		for c := range modes {
			row = append(row, fmt.Sprintf("%s -> %s", f1(results[r][c].healthy), f1(results[r][c].degraded)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// degradedRun measures a group's throughput healthy, fails one SSD, and
// measures again on the warmed cache.
func degradedRun(o Options, group string, mode src.ParityMode) (healthy, degraded float64, err error) {
	span, err := groupSpan(group, o)
	if err != nil {
		return 0, 0, err
	}
	devs, _, err := newSSDs(4, func(i int) ssd.Config { return o.ssdConfig(fmt.Sprintf("ssd%d", i)) })
	if err != nil {
		return 0, 0, err
	}
	faults := make([]*blockdev.Faulty, len(devs))
	wrapped := make([]blockdev.Device, len(devs))
	for i, d := range devs {
		faults[i] = blockdev.NewFaulty(d)
		wrapped[i] = faults[i]
	}
	prim, err := newPrimary(span)
	if err != nil {
		return 0, 0, err
	}
	cache, err := src.New(src.Config{
		SSDs:           wrapped,
		Primary:        prim,
		EraseGroupSize: o.superblock(),
		SegmentColumn:  o.segColumn(),
		Parity:         mode,
	})
	if err != nil {
		return 0, 0, err
	}
	run1, err := runGroup(cache, group, o)
	if err != nil {
		return 0, 0, err
	}
	faults[0].Fail()
	run2, err := runGroupAt(cache, group, o, run1.End, 1, nil)
	if err != nil {
		return 0, 0, err
	}
	return run1.MBps, run2.MBps, nil
}

// AblationAdvanced compares SRC against a RIPQ-like advanced caching
// scheme (reference [50]) — the comparison the paper plans in §6. The
// RIPQ-like cache runs over RAID-0 of the same drives (it has no RAID
// support — paper Table 5) and is write-through (no write-back support),
// so the expectation is competitiveness on the Read group and collapse on
// the write-dominated groups.
func AblationAdvanced(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Ablation A5",
		Title:   "SRC vs RIPQ-like advanced cache (paper §6 future work), MB/s (hit ratio)",
		Columns: []string{"Group", "SRC (RAID-5, write-back)", "RIPQ-like (RAID-0, write-through)"},
		Notes: []string{
			"RIPQ has no write-back and no RAID support (paper Table 5);",
			"it approximates a priority queue with erase-group-aligned block writes",
		},
	}
	systems := []string{"src", "ripq"}
	groups := groupNames()
	results, err := gridCells(o, "ablation-advanced", len(groups), len(systems),
		func(r, c int) string { return fmt.Sprintf("%s/%s", groups[r], systems[c]) },
		func(r, c int) (GroupRun, error) {
			g := groups[r]
			if c == 0 {
				run, err := srcGroupRun(o, g, nil)
				if err != nil {
					return GroupRun{}, fmt.Errorf("ablation advanced src %s: %w", g, err)
				}
				return run, nil
			}
			span, err := groupSpan(g, o)
			if err != nil {
				return GroupRun{}, err
			}
			arr, ssds, err := buildRAIDVolume(o, raid.Level0, 128<<10)
			if err != nil {
				return GroupRun{}, err
			}
			prim, err := newPrimary(span)
			if err != nil {
				return GroupRun{}, err
			}
			ripq, err := ripqsim.New(ripqsim.Config{
				Cache:      arr,
				SSDs:       ssds,
				Primary:    prim,
				BlockBytes: 4 * o.superblock(), // array-wide erase group
			})
			if err != nil {
				return GroupRun{}, err
			}
			run, err := runGroup(ripq, g, o)
			if err != nil {
				return GroupRun{}, fmt.Errorf("ablation advanced ripq %s: %w", g, err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, g := range groups {
		row := []string{g}
		for c := range systems {
			row = append(row, fmt.Sprintf("%s(%s)", f1(results[r][c].MBps), f2(results[r][c].HitRatio)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}
