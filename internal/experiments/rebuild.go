package experiments

import (
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/src"
	"srccache/internal/ssd"
	"srccache/internal/vtime"
)

// AblationRebuild measures the online rebuild path (§4.3 made operational):
// one SSD fails after a healthy warm-up pass, a fresh device replaces it,
// and a second pass runs with the rebuild walker interleaved one segment per
// completed request. Reported per group: healthy throughput, throughput
// while rebuilding, and MTTR — the virtual time from replacement until the
// last segment column is reconstructed and the completion barrier commits.
func AblationRebuild(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Ablation A6",
		Title:   "Online rebuild after SSD replacement (PC): MB/s healthy -> rebuilding, MTTR",
		Columns: []string{"Group", "Healthy MB/s", "Rebuilding MB/s", "MTTR (s)", "Segments"},
		Notes: []string{
			"one rebuild step per completed foreground request;",
			"MTTR spans replacement to the completion barrier's flush",
		},
	}
	groups := groupNames()
	results, err := gridCells(o, "ablation-rebuild", len(groups), 1,
		func(r, c int) string { return groups[r] },
		func(r, c int) (rebuildRun, error) {
			run, err := rebuildGroupRun(o, groups[r])
			if err != nil {
				return rebuildRun{}, fmt.Errorf("ablation rebuild %s: %w", groups[r], err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, g := range groups {
		res := results[r][0]
		t.Rows = append(t.Rows, []string{
			g, f1(res.healthy), f1(res.rebuilding),
			f2(res.mttr.Seconds()), fmt.Sprintf("%d", res.segments),
		})
	}
	return []*Table{t}, nil
}

type rebuildRun struct {
	healthy, rebuilding float64
	mttr                vtime.Duration
	segments            int64
}

// rebuildGroupRun warms the cache with a healthy pass, fails column 0,
// installs a fresh device, and reruns the group while driving RebuildStep
// after each completed request. If foreground traffic ends before the
// rebuild converges, the remaining steps run back-to-back — both phases
// count toward MTTR.
func rebuildGroupRun(o Options, group string) (rebuildRun, error) {
	span, err := groupSpan(group, o)
	if err != nil {
		return rebuildRun{}, err
	}
	devs, _, err := newSSDs(4, func(i int) ssd.Config { return o.ssdConfig(fmt.Sprintf("ssd%d", i)) })
	if err != nil {
		return rebuildRun{}, err
	}
	faults := make([]*blockdev.Faulty, len(devs))
	wrapped := make([]blockdev.Device, len(devs))
	for i, d := range devs {
		faults[i] = blockdev.NewFaulty(d)
		wrapped[i] = faults[i]
	}
	prim, err := newPrimary(span)
	if err != nil {
		return rebuildRun{}, err
	}
	cache, err := src.New(src.Config{
		SSDs:           wrapped,
		Primary:        prim,
		EraseGroupSize: o.superblock(),
		SegmentColumn:  o.segColumn(),
		Parity:         src.PC,
	})
	if err != nil {
		return rebuildRun{}, err
	}
	run1, err := runGroup(cache, group, o)
	if err != nil {
		return rebuildRun{}, err
	}
	faults[0].Fail()
	fresh, err := ssd.New(o.ssdConfig("ssd0r"))
	if err != nil {
		return rebuildRun{}, err
	}
	replaceStart := run1.End
	start, err := cache.ReplaceSSD(replaceStart, 0, blockdev.NewFaulty(fresh))
	if err != nil {
		return rebuildRun{}, err
	}
	var converged vtime.Time
	step := func(at vtime.Time) (vtime.Time, error) {
		if converged != 0 {
			return at, nil
		}
		t, pending, err := cache.RebuildStep(at)
		if err != nil {
			return at, err
		}
		if !pending {
			converged = t
		}
		return t, nil
	}
	run2, err := runGroupAt(cache, group, o, start, 1, step)
	if err != nil {
		return rebuildRun{}, err
	}
	// Short workloads can finish before the walker does: drain the rest.
	for at := run2.End; converged == 0; {
		t, err := step(at)
		if err != nil {
			return rebuildRun{}, err
		}
		at = t
	}
	return rebuildRun{
		healthy:    run1.MBps,
		rebuilding: run2.MBps,
		mttr:       converged.Sub(replaceStart),
		segments:   cache.RepairStats().RebuiltSegments,
	}, nil
}
