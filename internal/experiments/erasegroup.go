package experiments

import (
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/ssd"
	"srccache/internal/vtime"
	"srccache/internal/workload"
)

// Figure2 reproduces the erase-group-size extraction (Section 3.3): random
// aligned writes of increasing size over a preconditioned SSD, for
// Over-Provisioned Space (OPS) settings from 0% to 50%. Throughput
// saturates once the write size reaches the device's internal erase group
// (scaled: 256 MB / Scale), and the saturation point is independent of
// OPS — the paper's Figure 2 signature.
func Figure2(opts Options) ([]*Table, error) {
	o := opts.normalize()
	sb := o.superblock()
	capacity := 32 * sb
	sizes := []int64{sb / 16, sb / 8, sb / 4, sb / 2, sb, 2 * sb}
	opsPcts := []int{0, 10, 30, 50}

	t := &Table{
		ID:    "Figure 2",
		Title: fmt.Sprintf("SSD throughput (MB/s) vs write request size; internal erase group = %d MiB (scaled from 256 MiB)", sb>>20),
		Notes: []string{
			"paper shape: throughput rises with write size and saturates at the erase group size (~400 MB/s),",
			"small writes suffer most at low OPS (internal GC copies)",
		},
	}
	t.Columns = []string{"Write size"}
	for _, ops := range opsPcts {
		t.Columns = append(t.Columns, fmt.Sprintf("OPS %d%%", ops))
	}

	results, err := gridCells(o, "fig2", len(sizes), len(opsPcts),
		func(r, c int) string { return fmt.Sprintf("%dKiB/ops%d%%", sizes[r]>>10, opsPcts[c]) },
		func(r, c int) (float64, error) {
			return eraseGroupRun(o, capacity, sizes[r], opsPcts[c])
		})
	if err != nil {
		return nil, err
	}
	for r, size := range sizes {
		row := []string{fmt.Sprintf("%d KiB", size>>10)}
		for c := range opsPcts {
			row = append(row, f1(results[r][c]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// eraseGroupRun preconditions one SSD to the given OPS level (TRIM all,
// sequentially fill 1-OPS of the space — the paper's §3.3/§5.1 protocol)
// and measures one pass of random size-aligned writes over the filled
// region.
func eraseGroupRun(o Options, capacity, writeSize int64, opsPct int) (float64, error) {
	cfg := o.ssdConfig("fig2")
	cfg.Capacity = capacity
	dev, err := ssd.New(cfg)
	if err != nil {
		return 0, err
	}
	filled := capacity * int64(100-opsPct) / 100
	filled -= filled % writeSize
	if filled < writeSize {
		filled = writeSize
	}

	// Precondition: trim everything, sequentially fill the usable region.
	at, err := dev.Submit(0, blockdev.Request{Op: blockdev.OpTrim, Off: 0, Len: capacity})
	if err != nil {
		return 0, err
	}
	const fillChunk = 1 << 20
	for off := int64(0); off < filled; off += fillChunk {
		n := fillChunk
		if off+int64(n) > filled {
			n = int(filled - off)
		}
		at, err = dev.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: off, Len: int64(n)})
		if err != nil {
			return 0, err
		}
	}
	at, err = dev.Flush(at)
	if err != nil {
		return 0, err
	}

	// Measure: two passes worth of random aligned writes of writeSize, so
	// the device reaches GC steady state within the run.
	gen, err := workload.NewGenerator(workload.Config{
		Pattern:      workload.UniformRandom,
		Span:         filled,
		RequestBytes: writeSize,
		Seed:         o.Seed + 3,
	})
	if err != nil {
		return 0, err
	}
	start := at
	total := 2 * filled
	var bytes int64
	for bytes < total {
		req, _ := gen.Next()
		at, err = dev.Submit(at, req)
		if err != nil {
			return 0, err
		}
		bytes += req.Len
	}
	// Include the drain: throughput is sustained, not cache-absorbed.
	at, err = dev.Flush(at)
	if err != nil {
		return 0, err
	}
	return vtime.MBPerSec(bytes, at.Sub(start)), nil
}
