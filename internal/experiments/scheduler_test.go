package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunCellsExecutesAll checks that every cell runs exactly once at any
// parallelism, including worker counts above the cell count.
func TestRunCellsExecutesAll(t *testing.T) {
	for _, par := range []int{0, 1, 2, 4, 100} {
		var ran [17]atomic.Int64
		cells := make([]Cell, len(ran))
		for i := range cells {
			i := i
			cells[i] = Cell{Label: fmt.Sprintf("cell%d", i), Run: func() error {
				ran[i].Add(1)
				return nil
			}}
		}
		o := Options{Parallel: par}
		if err := o.runCells("test", cells); err != nil {
			t.Fatalf("parallel %d: %v", par, err)
		}
		for i := range ran {
			if n := ran[i].Load(); n != 1 {
				t.Fatalf("parallel %d: cell %d ran %d times", par, i, n)
			}
		}
	}
}

// TestRunCellsDeterministicError checks that with several failing cells the
// reported error is always the lowest-indexed one — what a serial run
// would hit first — regardless of scheduling.
func TestRunCellsDeterministicError(t *testing.T) {
	errA := errors.New("cell 2 failed")
	errB := errors.New("cell 5 failed")
	for _, par := range []int{1, 4} {
		cells := make([]Cell, 8)
		for i := range cells {
			i := i
			cells[i] = Cell{Run: func() error {
				switch i {
				case 2:
					return errA
				case 5:
					return errB
				}
				return nil
			}}
		}
		o := Options{Parallel: par}
		if err := o.runCells("test", cells); !errors.Is(err, errA) {
			t.Fatalf("parallel %d: got %v, want %v", par, err, errA)
		}
	}
}

// TestRunCellsProgress checks that the progress callback sees every cell
// once with a consistent total, and that errors are reported through it.
func TestRunCellsProgress(t *testing.T) {
	boom := errors.New("boom")
	var mu sync.Mutex
	seen := make(map[int]CellEvent)
	o := Options{Parallel: 3, Progress: func(ev CellEvent) {
		mu.Lock()
		defer mu.Unlock()
		if _, dup := seen[ev.Index]; dup {
			t.Errorf("cell %d reported twice", ev.Index)
		}
		seen[ev.Index] = ev
	}}
	cells := make([]Cell, 6)
	for i := range cells {
		i := i
		cells[i] = Cell{Label: fmt.Sprintf("c%d", i), Run: func() error {
			if i == 4 {
				return boom
			}
			return nil
		}}
	}
	if err := o.runCells("exp", cells); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if len(seen) != len(cells) {
		t.Fatalf("progress saw %d cells, want %d", len(seen), len(cells))
	}
	for i, ev := range seen {
		if ev.Experiment != "exp" || ev.Total != len(cells) {
			t.Fatalf("cell %d event malformed: %+v", i, ev)
		}
		if (ev.Err != nil) != (i == 4) {
			t.Fatalf("cell %d error mismatch: %v", i, ev.Err)
		}
	}
}

// TestGridCellsCanonicalOrder checks that grid results land in [row][col]
// position regardless of completion order.
func TestGridCellsCanonicalOrder(t *testing.T) {
	o := Options{Parallel: 4}
	got, err := gridCells(o, "grid", 3, 5,
		func(r, c int) string { return fmt.Sprintf("%d,%d", r, c) },
		func(r, c int) (int, error) { return 100*r + c, nil })
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		for c := 0; c < 5; c++ {
			if got[r][c] != 100*r+c {
				t.Fatalf("result [%d][%d] = %d", r, c, got[r][c])
			}
		}
	}
}

// renderAll renders a result set the way srcbench does.
func renderAll(tables []*Table) string {
	var buf bytes.Buffer
	for _, tbl := range tables {
		tbl.Fprint(&buf)
	}
	return buf.String()
}

// TestParallelMatchesSerial is the tentpole guarantee: a multi-cell
// experiment fanned out over 4 workers renders byte-identical tables to
// the serial run. Run under -race (CI does) this also exercises the
// scheduler and a full cross-section of the simulation stack — SRC over
// SSDs over NAND, trace synthesis, the bench runner — for data races
// between concurrently simulated cells.
func TestParallelMatchesSerial(t *testing.T) {
	base := Options{Scale: 16, Requests: 15_000}
	for _, exp := range []struct {
		name string
		run  func(Options) ([]*Table, error)
	}{
		{"table8", Table8}, // 12 SRC cells: GC × victim policy × trace group
		{"table2", Table2}, // 4 baseline cells: Bcache/Flashcache × WT/WB
	} {
		serialOpts := base
		serialOpts.Parallel = 1
		serial, err := exp.run(serialOpts)
		if err != nil {
			t.Fatalf("%s serial: %v", exp.name, err)
		}
		parallelOpts := base
		parallelOpts.Parallel = 4
		parallel, err := exp.run(parallelOpts)
		if err != nil {
			t.Fatalf("%s parallel: %v", exp.name, err)
		}
		if s, p := renderAll(serial), renderAll(parallel); s != p {
			t.Errorf("%s: parallel output differs from serial\n--- serial ---\n%s--- parallel ---\n%s", exp.name, s, p)
		}
	}
}
