package experiments

import (
	"fmt"

	"srccache/internal/bcachesim"
	"srccache/internal/bench"
	"srccache/internal/blockdev"
	"srccache/internal/flashcachesim"
	"srccache/internal/raid"
	"srccache/internal/ssd"
	"srccache/internal/vtime"
	"srccache/internal/workload"
)

// Section 3.1: studies of the existing open-source solutions.

// fioWrite4K drives a system with FIO's 4 KB uniform-random-write workload
// (request size 4 KB, iodepth 32, 4 threads — Table 1's setting) and
// reports MB/s.
func fioWrite4K(sys bench.System, span int64, o Options) (float64, error) {
	gen, err := workload.NewGenerator(workload.Config{
		Pattern: workload.UniformRandom,
		Span:    span,
		Seed:    o.Seed + 1,
	})
	if err != nil {
		return 0, err
	}
	res, err := bench.Run(sys, []workload.Source{gen}, bench.Options{
		Slots:       32 * 4,
		MaxRequests: o.Requests / 2,
	})
	if err != nil {
		return 0, err
	}
	return res.MBps(), nil
}

// baselineKind selects which open-source solution to build.
type baselineKind int

const (
	kindBcache baselineKind = iota + 1
	kindFlashcache
)

func (k baselineKind) String() string {
	if k == kindBcache {
		return "Bcache"
	}
	return "Flashcache"
}

// buildBaseline assembles a Bcache- or Flashcache-like cache over the given
// cache volume.
func buildBaseline(k baselineKind, cacheDev blockdev.Device, ssds []blockdev.Device, span int64, writeBack bool) (bench.Cache, error) {
	prim, err := newPrimary(span)
	if err != nil {
		return nil, err
	}
	if k == kindBcache {
		mode := bcachesim.WriteBack
		if !writeBack {
			mode = bcachesim.WriteThrough
		}
		return bcachesim.New(bcachesim.Config{
			Cache:            cacheDev,
			SSDs:             ssds,
			Primary:          prim,
			BucketBytes:      2 << 20,
			WritebackPercent: 90,
			Mode:             mode,
		})
	}
	mode := flashcachesim.WriteBack
	if !writeBack {
		mode = flashcachesim.WriteThrough
	}
	return flashcachesim.New(flashcachesim.Config{
		Cache:          cacheDev,
		SSDs:           ssds,
		Primary:        prim,
		SetBytes:       2 << 20,
		DirtyThreshPct: 90,
		Mode:           mode,
	})
}

// Table2 reproduces the write-through vs write-back comparison on a single
// SSD (FIO 4 KB uniform random writes).
func Table2(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Table 2",
		Title:   "FIO 4KB write performance, write-through vs write-back, single SSD (MB/s)",
		Columns: []string{"Type", "WT", "WB", "Improvement (x)"},
		Notes:   []string{"paper: Bcache 15.3 -> 65.9 (4.3x), Flashcache 5.7 -> 100.3 (17.5x)"},
	}
	kinds := []baselineKind{kindBcache, kindFlashcache}
	modes := []bool{false, true}
	mbps, err := gridCells(o, "table2", len(kinds), len(modes),
		func(r, c int) string { return fmt.Sprintf("%v/wb=%v", kinds[r], modes[c]) },
		func(r, c int) (float64, error) {
			dev, err := ssd.New(o.ssdConfig("ssd0"))
			if err != nil {
				return 0, err
			}
			span := dev.Capacity() / 2
			cache, err := buildBaseline(kinds[r], dev, []blockdev.Device{dev}, span, modes[c])
			if err != nil {
				return 0, err
			}
			return fioWrite4K(cache, span, o)
		})
	if err != nil {
		return nil, err
	}
	for r, kind := range kinds {
		improvement := 0.0
		if mbps[r][0] > 0 {
			improvement = mbps[r][1] / mbps[r][0]
		}
		t.Rows = append(t.Rows, []string{kind.String(), f1(mbps[r][0]), f1(mbps[r][1]), f1(improvement)})
	}
	return []*Table{t}, nil
}

// Table3 reproduces the flush-command impact on a raw SSD: sequential
// 512 KB writes with a flush after each, and random 4 KB writes with a
// flush after every 32 requests.
func Table3(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Table 3",
		Title:   "Impact of the flush command on a raw SSD (MB/s)",
		Columns: []string{"Pattern", "No flush", "flush", "Reduction (x)"},
		Notes:   []string{"paper: sequential 402 -> 96 (4.1x), random 249 -> 30 (8.3x)"},
	}
	type variant struct {
		name       string
		reqBytes   int64
		pattern    workload.Pattern
		flushEvery int   // requests between flushes; 0 disables
		fraction   int64 // measured volume as a fraction of capacity
	}
	run := func(v variant) (float64, error) {
		dev, err := ssd.New(o.ssdConfig("ssd0"))
		if err != nil {
			return 0, err
		}
		gen, err := workload.NewGenerator(workload.Config{
			Pattern:      v.pattern,
			Span:         dev.Capacity(),
			RequestBytes: v.reqBytes,
			Seed:         o.Seed + 2,
		})
		if err != nil {
			return 0, err
		}
		totalBytes := dev.Capacity() / v.fraction
		var at vtime.Time
		var bytes int64
		for i := 0; bytes < totalBytes; i++ {
			req, _ := gen.Next()
			done, err := dev.Submit(at, req)
			if err != nil {
				return 0, err
			}
			at = done
			bytes += req.Len
			if v.flushEvery > 0 && (i+1)%v.flushEvery == 0 {
				at, err = dev.Flush(at)
				if err != nil {
					return 0, err
				}
			}
		}
		return vtime.MBPerSec(bytes, at.Sub(0)), nil
	}
	variants := []struct {
		name    string
		noFlush variant
		flush   variant
	}{
		{
			name:    "Sequential",
			noFlush: variant{reqBytes: 512 << 10, pattern: workload.Sequential, fraction: 1},
			flush:   variant{reqBytes: 512 << 10, pattern: workload.Sequential, flushEvery: 1, fraction: 1},
		},
		{
			// The paper measured a fresh, TRIM-initialized drive; a
			// quarter-capacity random pass keeps the device in that
			// regime rather than FTL-merge steady state.
			name:    "Random",
			noFlush: variant{reqBytes: blockdev.PageSize, pattern: workload.UniformRandom, fraction: 4},
			flush:   variant{reqBytes: blockdev.PageSize, pattern: workload.UniformRandom, flushEvery: 32, fraction: 4},
		},
	}
	settings := []string{"noflush", "flush"}
	mbps, err := gridCells(o, "table3", len(variants), len(settings),
		func(r, c int) string { return fmt.Sprintf("%s/%s", variants[r].name, settings[c]) },
		func(r, c int) (float64, error) {
			if c == 0 {
				return run(variants[r].noFlush)
			}
			return run(variants[r].flush)
		})
	if err != nil {
		return nil, err
	}
	for r, v := range variants {
		noFlush, withFlush := mbps[r][0], mbps[r][1]
		reduction := 0.0
		if withFlush > 0 {
			reduction = noFlush / withFlush
		}
		t.Rows = append(t.Rows, []string{v.name, f1(noFlush), f1(withFlush), f1(reduction)})
	}
	return []*Table{t}, nil
}

// Figure1 reproduces the baseline-over-RAID study: Bcache and Flashcache
// with the underlying SSD cache layer configured as RAID-0/1/4/5 (chunk
// 4 KB, write-back), FIO 4 KB uniform random writes.
func Figure1(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Figure 1",
		Title:   "Bcache/Flashcache over RAID levels, FIO 4KB random write (MB/s)",
		Columns: []string{"Type", "RAID-0", "RAID-1", "RAID-4", "RAID-5"},
		Notes: []string{
			"paper shape: RAID-0 best; Flashcache beats Bcache on RAID-0/1 (flush cost);",
			"Bcache beats Flashcache on RAID-4/5 (log-structure dodges read-modify-write)",
		},
	}
	levels := []raid.Level{raid.Level0, raid.Level1, raid.Level4, raid.Level5}
	kinds := []baselineKind{kindBcache, kindFlashcache}
	mbps, err := gridCells(o, "fig1", len(kinds), len(levels),
		func(r, c int) string { return fmt.Sprintf("%v/%v", kinds[r], levels[c]) },
		func(r, c int) (float64, error) {
			arr, ssds, err := buildRAIDVolume(o, levels[c], blockdev.PageSize)
			if err != nil {
				return 0, err
			}
			span := o.cachePerSSD() / 2 // fits every level's cache capacity
			cache, err := buildBaseline(kinds[r], arr, ssds, span, true)
			if err != nil {
				return 0, err
			}
			return fioWrite4K(cache, span, o)
		})
	if err != nil {
		return nil, err
	}
	for r, kind := range kinds {
		row := []string{kind.String()}
		for c := range levels {
			row = append(row, f1(mbps[r][c]))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// buildRAIDVolume assembles a RAID volume of 4 scaled SSDs.
func buildRAIDVolume(o Options, level raid.Level, chunk int64) (blockdev.Device, []blockdev.Device, error) {
	devs, _, err := newSSDs(4, func(i int) ssd.Config { return o.ssdConfig(fmt.Sprintf("ssd%d", i)) })
	if err != nil {
		return nil, nil, err
	}
	arr, err := raid.New(level, chunk, devs)
	if err != nil {
		return nil, nil, err
	}
	return arr, devs, nil
}
