// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 3 and 5) on the simulated substrate: the motivation
// studies (Tables 2–3, Figures 1–2), the SRC design-space exploration
// (Figure 4, Tables 8–11, Figure 5), the cost-effectiveness study
// (Tables 4/12, Figure 6), and the headline comparison against Bcache5 and
// Flashcache5 (Figure 7).
//
// Sizes default to 1/16 of the paper's (Section "Scaling note" in
// DESIGN.md): what matters for every result is the *ratio* of cache
// capacity to working set and of write units to the erase group, both of
// which are preserved. Absolute MB/s values are those of the simulated
// devices; the reproduction target is the shape of each result.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"srccache/internal/bench"
	"srccache/internal/blockdev"
	"srccache/internal/primary"
	"srccache/internal/src"
	"srccache/internal/ssd"
	"srccache/internal/trace"
	"srccache/internal/vtime"
	"srccache/internal/workload"
)

// Options tunes experiment scale. The zero value gives the defaults.
type Options struct {
	// Scale divides the paper's sizes: SSD erase groups, segment columns,
	// cache regions, and trace footprints (default 16, rounded up to a
	// power of two so every geometry stays aligned).
	Scale int64
	// Requests is the request budget per measured run (default 160000).
	Requests int64
	// Seed perturbs workload generation.
	Seed int64
	// Parallel caps the number of experiment cells simulated concurrently
	// (default 1: serial). Cells are independent virtual-time simulations
	// and results are assembled in canonical order, so any value yields
	// byte-identical tables.
	Parallel int
	// Progress, when non-nil, receives one event per completed cell. With
	// Parallel > 1 it may be invoked from multiple goroutines.
	Progress func(CellEvent)
}

func (o Options) normalize() Options {
	if o.Scale == 0 {
		o.Scale = 16
	}
	for p := int64(1); ; p <<= 1 {
		if p >= o.Scale {
			o.Scale = p
			break
		}
	}
	if o.Requests == 0 {
		o.Requests = 200_000
	}
	return o
}

// Scaled geometry derived from Options.
func (o Options) superblock() int64 { return 256 << 20 / o.Scale } // SSD erase group
func (o Options) segColumn() int64 {
	// Segment columns scale less aggressively than capacities (at most
	// 1/4): the per-segment flush cadence of Table 11 depends on the
	// absolute segment size relative to the flush cost.
	div := o.Scale
	if div > 4 {
		div = 4
	}
	return 512 << 10 / div
}
func (o Options) cachePerSSD() int64  { return 4 << 30 / o.Scale } // paper: ~4.5 GB/SSD of 18 GB total
func (o Options) traceScale() float64 { return 1 / float64(o.Scale) }

// ssdConfig builds the default cache-drive model (SATA MLC of the
// prototype's 840 Pro class) at experiment scale.
func (o Options) ssdConfig(name string) ssd.Config {
	cfg := ssd.SATAMLCConfig(name, o.cachePerSSD())
	cfg.EraseGroupSize = o.superblock()
	cfg.WriteCacheBytes = 64 << 20 / o.Scale
	return cfg
}

// newSSDs builds n cache drives from a base config.
func newSSDs(n int, mk func(i int) ssd.Config) ([]blockdev.Device, []*ssd.SSD, error) {
	devs := make([]blockdev.Device, n)
	raw := make([]*ssd.SSD, n)
	for i := 0; i < n; i++ {
		d, err := ssd.New(mk(i))
		if err != nil {
			return nil, nil, err
		}
		devs[i] = d
		raw[i] = d
	}
	return devs, raw, nil
}

// newPrimary builds the HDD RAID-10 backend sized to cover span bytes.
func newPrimary(span int64) (*primary.Storage, error) {
	perDisk := (span/4 + (64 << 20)) // RAID-10 of 8 disks: 4 data spindles
	perDisk -= perDisk % (64 << 10)
	return primary.New(primary.Config{DiskCapacity: perDisk})
}

// traceSetup builds the synthetic sources for one trace group, laid out
// side by side in the primary volume's address space, plus the volume span
// they cover. seedOffset perturbs the streams (for second passes).
func traceSetup(group string, o Options, seedOffset int64) ([]workload.Source, int64, error) {
	specs, err := trace.Group(group)
	if err != nil {
		return nil, 0, err
	}
	sources := make([]workload.Source, 0, len(specs))
	var offset int64
	for _, spec := range specs {
		s, err := trace.NewSynth(trace.SynthConfig{
			Spec:   spec,
			Scale:  o.traceScale(),
			Offset: offset,
			Seed:   o.Seed + seedOffset,
		})
		if err != nil {
			return nil, 0, err
		}
		offset += s.Span()
		sources = append(sources, s)
	}
	return sources, offset, nil
}

// GroupRun is the measured outcome of driving one system with one trace
// group.
type GroupRun struct {
	Group     string
	MBps      float64
	IOAmp     float64
	HitRatio  float64
	WAF       float64 // combined cache-layer × SSD-internal amplification
	Makespan  vtime.Duration
	End       vtime.Time
	HostBytes int64
}

// runGroup drives cache with the named trace group at the paper's
// 4-threads-per-trace concurrency and derives the evaluation metrics.
func runGroup(cache bench.Cache, group string, o Options) (GroupRun, error) {
	return runGroupAt(cache, group, o, 0, 0, nil)
}

// runGroupAt is runGroup starting at a given virtual time with a perturbed
// seed — used for second passes (e.g. degraded-mode measurement on a
// warmed cache). interleave, when non-nil, rides along with the foreground
// requests (see bench.Options.Interleave).
func runGroupAt(cache bench.Cache, group string, o Options, start vtime.Time, seedOffset int64, interleave func(vtime.Time) (vtime.Time, error)) (GroupRun, error) {
	sources, _, err := traceSetup(group, o, seedOffset)
	if err != nil {
		return GroupRun{}, err
	}
	devs := cache.CacheDevices()
	before := bench.SnapshotDevices(devs)
	res, err := bench.Run(cache, sources, bench.Options{
		SlotsPerSource: 4,
		MaxRequests:    o.Requests,
		Start:          start,
		Interleave:     interleave,
	})
	if err != nil {
		return GroupRun{}, err
	}
	deviceBytes := bench.DeltaBytes(devs, before)
	run := GroupRun{
		Group:     group,
		MBps:      res.MBps(),
		IOAmp:     bench.IOAmplification(res.Bytes, deviceBytes),
		HitRatio:  cache.Counters().HitRatio(),
		Makespan:  res.Makespan(),
		End:       res.End,
		HostBytes: res.Bytes,
	}
	run.WAF = combinedWAF(cache, res.WriteBytes)
	return run, nil
}

// combinedWAF multiplies the cache layer's write amplification (flash-bound
// writes per host write) by the SSD-internal WAF, the quantity the
// lifetime model consumes.
func combinedWAF(cache bench.Cache, hostWriteBytes int64) float64 {
	var ssdWrites int64
	var flashWAF float64
	var nFlash int
	for _, d := range cache.CacheDevices() {
		ssdWrites += d.Stats().WriteBytes
		if s, ok := d.(*ssd.SSD); ok {
			if w := s.WAF(); w > 0 {
				flashWAF += w
				nFlash++
			}
		}
	}
	if hostWriteBytes == 0 {
		return 0
	}
	cacheWAF := float64(ssdWrites) / float64(hostWriteBytes)
	if nFlash > 0 {
		cacheWAF *= flashWAF / float64(nFlash)
	}
	return cacheWAF
}

// buildSRC assembles an SRC cache over fresh scaled SSDs, applying tweak to
// the configuration before validation.
func buildSRC(o Options, span int64, tweak func(*src.Config)) (*src.Cache, error) {
	devs, _, err := newSSDs(4, func(i int) ssd.Config { return o.ssdConfig(fmt.Sprintf("ssd%d", i)) })
	if err != nil {
		return nil, err
	}
	prim, err := newPrimary(span)
	if err != nil {
		return nil, err
	}
	cfg := src.Config{
		SSDs:           devs,
		Primary:        prim,
		EraseGroupSize: o.superblock(),
		SegmentColumn:  o.segColumn(),
	}
	if tweak != nil {
		tweak(&cfg)
	}
	return src.New(cfg)
}

// groupSpan reports the primary-volume span a trace group needs.
func groupSpan(group string, o Options) (int64, error) {
	_, span, err := traceSetup(group, o, 0)
	return span, err
}

// Table is a rendered result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "=== %s: %s ===\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// Experiment is a runnable reproduction of one paper result.
type Experiment struct {
	Name  string // registry key, e.g. "table2"
	Paper string // what it reproduces
	Run   func(Options) ([]*Table, error)
}

// All returns the experiment registry in the paper's presentation order.
func All() []Experiment {
	return []Experiment{
		{"table2", "Table 2: WT vs WB for Bcache/Flashcache on one SSD", Table2},
		{"table3", "Table 3: impact of the flush command on a raw SSD", Table3},
		{"fig1", "Figure 1: Bcache/Flashcache over RAID-0/1/4/5", Figure1},
		{"fig2", "Figure 2: erase-group-size extraction vs OPS", Figure2},
		{"fig4", "Figure 4: SRC erase group size sweep", Figure4},
		{"table8", "Table 8: free space management (S2D vs Sel-GC x FIFO/Greedy)", Table8},
		{"fig5", "Figure 5: U_MAX sweep for Sel-GC", Figure5},
		{"table9", "Table 9: PC vs NPC clean-data redundancy", Table9},
		{"table10", "Table 10: RAID level (0/4/5)", Table10},
		{"table11", "Table 11: flush per segment vs per segment group", Table11},
		{"table12", "Tables 4+12: device catalog", Table12},
		{"fig6", "Figure 6: cost-effectiveness (SATA arrays vs NVMe)", Figure6},
		{"fig7", "Figure 7: SRC vs SRC-S2D vs Bcache5 vs Flashcache5", Figure7},
		{"ablation-victim", "Ablation A1: victim selection incl. future-work Cost-Benefit", AblationVictim},
		{"ablation-segsize", "Ablation A2: segment size sweep (paper fixes 2 MB)", AblationSegmentSize},
		{"ablation-gcsplit", "Ablation A3: hot/cold separation of S2S copies (future work)", AblationGCSplit},
		{"ablation-degraded", "Ablation A4: degraded-mode service, PC vs NPC", AblationDegraded},
		{"ablation-advanced", "Ablation A5: SRC vs RIPQ-like advanced cache (future work)", AblationAdvanced},
		{"ablation-rebuild", "Ablation A6: online rebuild after SSD replacement, throughput and MTTR", AblationRebuild},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", name)
}
