package experiments

import (
	"fmt"

	"srccache/internal/src"
)

// Section 5.2: exploration of the SRC design space (Table 7). Each
// experiment drives the Write, Mixed, and Read trace groups against SRC
// with one parameter varied from the bold defaults.

// srcGroupRun builds a fresh SRC with the tweak applied and runs one trace
// group.
func srcGroupRun(o Options, group string, tweak func(*src.Config)) (GroupRun, error) {
	span, err := groupSpan(group, o)
	if err != nil {
		return GroupRun{}, err
	}
	cache, err := buildSRC(o, span, tweak)
	if err != nil {
		return GroupRun{}, err
	}
	return runGroup(cache, group, o)
}

// Figure4 sweeps SRC's assumed erase group size (the Segment Group column
// size) while the simulated SSD's internal erase group stays fixed,
// reporting throughput and I/O amplification per trace group.
func Figure4(opts Options) ([]*Table, error) {
	o := opts.normalize()
	// Paper sweep: 2..1024 MB around the measured 256 MB. Scaled by
	// o.Scale; labels report the unscaled equivalents.
	sizes := []int64{2 << 20, 8 << 20, 32 << 20, 256 << 20, 1024 << 20}
	tp := &Table{
		ID:      "Figure 4(a)",
		Title:   "SRC throughput (MB/s) vs erase group size (U_MAX 90%)",
		Columns: []string{"Erase group (paper-scale)"},
		Notes:   []string{"paper shape: performance improves with erase group size, ~flat past 256 MB"},
	}
	amp := &Table{
		ID:      "Figure 4(b)",
		Title:   "SRC I/O amplification vs erase group size",
		Columns: []string{"Erase group (paper-scale)"},
		Notes:   []string{"paper shape: amplification is lowest at the smallest size (better fill of small units)"},
	}
	for _, g := range groupNames() {
		tp.Columns = append(tp.Columns, g)
		amp.Columns = append(amp.Columns, g)
	}
	for _, size := range sizes {
		scaled := size / o.Scale
		if scaled < 4*o.segColumn() {
			scaled = 4 * o.segColumn()
		}
		rowT := []string{fmt.Sprintf("%d MB", size>>20)}
		rowA := []string{fmt.Sprintf("%d MB", size>>20)}
		for _, g := range groupNames() {
			run, err := srcGroupRun(o, g, func(c *src.Config) { c.EraseGroupSize = scaled })
			if err != nil {
				return nil, fmt.Errorf("figure 4 size %d group %s: %w", size, g, err)
			}
			rowT = append(rowT, f1(run.MBps))
			rowA = append(rowA, f2(run.IOAmp))
		}
		tp.Rows = append(tp.Rows, rowT)
		amp.Rows = append(amp.Rows, rowA)
	}
	return []*Table{tp, amp}, nil
}

// Table8 compares free-space management: S2D vs Sel-GC crossed with
// FIFO vs Greedy victim selection (U_MAX 90%).
func Table8(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Table 8",
		Title:   "Free space management performance, MB/s (I/O amplification)",
		Columns: []string{"Group", "S2D/FIFO", "S2D/Greedy", "Sel-GC/FIFO", "Sel-GC/Greedy"},
		Notes: []string{
			"paper shape: Sel-GC considerably outperforms S2D; S2D shows lower amplification;",
			"FIFO slightly ahead for Write/Mixed, Greedy ahead for Read",
		},
	}
	type combo struct {
		gc     src.GCPolicy
		victim src.VictimPolicy
	}
	combos := []combo{{src.S2D, src.FIFO}, {src.S2D, src.Greedy}, {src.SelGC, src.FIFO}, {src.SelGC, src.Greedy}}
	for _, g := range groupNames() {
		row := []string{g}
		for _, cb := range combos {
			run, err := srcGroupRun(o, g, func(c *src.Config) { c.GC = cb.gc; c.Victim = cb.victim })
			if err != nil {
				return nil, fmt.Errorf("table 8 %v/%v %s: %w", cb.gc, cb.victim, g, err)
			}
			row = append(row, fmt.Sprintf("%s(%s)", f1(run.MBps), f2(run.IOAmp)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Figure5 sweeps U_MAX for Sel-GC.
func Figure5(opts Options) ([]*Table, error) {
	o := opts.normalize()
	umaxes := []float64{0.30, 0.50, 0.70, 0.90, 0.95}
	tp := &Table{
		ID:      "Figure 5(a)",
		Title:   "SRC throughput (MB/s) vs U_MAX (Sel-GC, erase group 256 MB paper-scale)",
		Columns: []string{"U_MAX"},
		Notes:   []string{"paper shape: throughput peaks at 90%, drops at 95%; amplification rises with U_MAX"},
	}
	amp := &Table{
		ID:      "Figure 5(b)",
		Title:   "SRC I/O amplification vs U_MAX",
		Columns: []string{"U_MAX"},
	}
	for _, g := range groupNames() {
		tp.Columns = append(tp.Columns, g)
		amp.Columns = append(amp.Columns, g)
	}
	for _, u := range umaxes {
		rowT := []string{fmt.Sprintf("%.0f%%", u*100)}
		rowA := []string{fmt.Sprintf("%.0f%%", u*100)}
		for _, g := range groupNames() {
			run, err := srcGroupRun(o, g, func(c *src.Config) { c.UMax = u })
			if err != nil {
				return nil, fmt.Errorf("figure 5 umax %v %s: %w", u, g, err)
			}
			rowT = append(rowT, f1(run.MBps))
			rowA = append(rowA, f2(run.IOAmp))
		}
		tp.Rows = append(tp.Rows, rowT)
		amp.Rows = append(amp.Rows, rowA)
	}
	return []*Table{tp, amp}, nil
}

// Table9 compares Parity-for-Clean against No-Parity-for-Clean.
func Table9(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Table 9",
		Title:   "PC vs NPC mode performance, MB/s (I/O amplification)",
		Columns: []string{"Group", "PC", "NPC"},
		Notes:   []string{"paper: NPC wins everywhere, most for the Write group (~18%)"},
	}
	for _, g := range groupNames() {
		row := []string{g}
		for _, mode := range []src.ParityMode{src.PC, src.NPC} {
			run, err := srcGroupRun(o, g, func(c *src.Config) { c.Parity = mode })
			if err != nil {
				return nil, fmt.Errorf("table 9 %v %s: %w", mode, g, err)
			}
			row = append(row, fmt.Sprintf("%s(%s)", f1(run.MBps), f2(run.IOAmp)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Table10 compares the cache striping levels RAID-0/4/5.
func Table10(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Table 10",
		Title:   "RAID level performance, MB/s (I/O amplification)",
		Columns: []string{"Group", "RAID-0", "RAID-4", "RAID-5"},
		Notes:   []string{"paper shape: RAID-0 best (~20% over RAID-5); RAID-5 slightly ahead of RAID-4"},
	}
	for _, g := range groupNames() {
		row := []string{g}
		for _, lv := range []src.RAIDLevel{src.RAID0, src.RAID4, src.RAID5} {
			run, err := srcGroupRun(o, g, func(c *src.Config) { c.Level = lv })
			if err != nil {
				return nil, fmt.Errorf("table 10 %v %s: %w", lv, g, err)
			}
			row = append(row, fmt.Sprintf("%s(%s)", f1(run.MBps), f2(run.IOAmp)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Table11 compares flush-command cadences: per segment write vs per
// Segment Group write.
func Table11(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Table 11",
		Title:   "Influence of flush command cadence, MB/s (I/O amplification)",
		Columns: []string{"Group", "Per Segment", "Per Segment Group"},
		Notes:   []string{"paper: per-segment flushing costs ~10% on writes and >40% on the Read group"},
	}
	for _, g := range groupNames() {
		row := []string{g}
		for _, fp := range []src.FlushPolicy{src.FlushPerSegment, src.FlushPerSegmentGroup} {
			run, err := srcGroupRun(o, g, func(c *src.Config) { c.Flush = fp })
			if err != nil {
				return nil, fmt.Errorf("table 11 %v %s: %w", fp, g, err)
			}
			row = append(row, fmt.Sprintf("%s(%s)", f1(run.MBps), f2(run.IOAmp)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

func groupNames() []string { return []string{"Write", "Mixed", "Read"} }
