package experiments

import (
	"fmt"

	"srccache/internal/src"
)

// Section 5.2: exploration of the SRC design space (Table 7). Each
// experiment drives the Write, Mixed, and Read trace groups against SRC
// with one parameter varied from the bold defaults. Every (parameter,
// group) point is an independent cell fanned out by runCells.

// srcGroupRun builds a fresh SRC with the tweak applied and runs one trace
// group.
func srcGroupRun(o Options, group string, tweak func(*src.Config)) (GroupRun, error) {
	span, err := groupSpan(group, o)
	if err != nil {
		return GroupRun{}, err
	}
	cache, err := buildSRC(o, span, tweak)
	if err != nil {
		return GroupRun{}, err
	}
	return runGroup(cache, group, o)
}

// Figure4 sweeps SRC's assumed erase group size (the Segment Group column
// size) while the simulated SSD's internal erase group stays fixed,
// reporting throughput and I/O amplification per trace group.
func Figure4(opts Options) ([]*Table, error) {
	o := opts.normalize()
	// Paper sweep: 2..1024 MB around the measured 256 MB. Scaled by
	// o.Scale; labels report the unscaled equivalents.
	sizes := []int64{2 << 20, 8 << 20, 32 << 20, 256 << 20, 1024 << 20}
	groups := groupNames()
	tp := &Table{
		ID:      "Figure 4(a)",
		Title:   "SRC throughput (MB/s) vs erase group size (U_MAX 90%)",
		Columns: []string{"Erase group (paper-scale)"},
		Notes:   []string{"paper shape: performance improves with erase group size, ~flat past 256 MB"},
	}
	amp := &Table{
		ID:      "Figure 4(b)",
		Title:   "SRC I/O amplification vs erase group size",
		Columns: []string{"Erase group (paper-scale)"},
		Notes:   []string{"paper shape: amplification is lowest at the smallest size (better fill of small units)"},
	}
	tp.Columns = append(tp.Columns, groups...)
	amp.Columns = append(amp.Columns, groups...)
	results, err := gridCells(o, "fig4", len(sizes), len(groups),
		func(r, c int) string { return fmt.Sprintf("%dMB/%s", sizes[r]>>20, groups[c]) },
		func(r, c int) (GroupRun, error) {
			size := sizes[r]
			scaled := size / o.Scale
			if scaled < 4*o.segColumn() {
				scaled = 4 * o.segColumn()
			}
			run, err := srcGroupRun(o, groups[c], func(cfg *src.Config) { cfg.EraseGroupSize = scaled })
			if err != nil {
				return GroupRun{}, fmt.Errorf("figure 4 size %d group %s: %w", size, groups[c], err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, size := range sizes {
		rowT := []string{fmt.Sprintf("%d MB", size>>20)}
		rowA := []string{fmt.Sprintf("%d MB", size>>20)}
		for c := range groups {
			rowT = append(rowT, f1(results[r][c].MBps))
			rowA = append(rowA, f2(results[r][c].IOAmp))
		}
		tp.Rows = append(tp.Rows, rowT)
		amp.Rows = append(amp.Rows, rowA)
	}
	return []*Table{tp, amp}, nil
}

// Table8 compares free-space management: S2D vs Sel-GC crossed with
// FIFO vs Greedy victim selection (U_MAX 90%).
func Table8(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Table 8",
		Title:   "Free space management performance, MB/s (I/O amplification)",
		Columns: []string{"Group", "S2D/FIFO", "S2D/Greedy", "Sel-GC/FIFO", "Sel-GC/Greedy"},
		Notes: []string{
			"paper shape: Sel-GC considerably outperforms S2D; S2D shows lower amplification;",
			"FIFO slightly ahead for Write/Mixed, Greedy ahead for Read",
		},
	}
	type combo struct {
		gc     src.GCPolicy
		victim src.VictimPolicy
	}
	combos := []combo{{src.S2D, src.FIFO}, {src.S2D, src.Greedy}, {src.SelGC, src.FIFO}, {src.SelGC, src.Greedy}}
	groups := groupNames()
	results, err := gridCells(o, "table8", len(groups), len(combos),
		func(r, c int) string { return fmt.Sprintf("%s/%v/%v", groups[r], combos[c].gc, combos[c].victim) },
		func(r, c int) (GroupRun, error) {
			cb := combos[c]
			run, err := srcGroupRun(o, groups[r], func(cfg *src.Config) { cfg.GC = cb.gc; cfg.Victim = cb.victim })
			if err != nil {
				return GroupRun{}, fmt.Errorf("table 8 %v/%v %s: %w", cb.gc, cb.victim, groups[r], err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, g := range groups {
		row := []string{g}
		for c := range combos {
			row = append(row, fmt.Sprintf("%s(%s)", f1(results[r][c].MBps), f2(results[r][c].IOAmp)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Figure5 sweeps U_MAX for Sel-GC.
func Figure5(opts Options) ([]*Table, error) {
	o := opts.normalize()
	umaxes := []float64{0.30, 0.50, 0.70, 0.90, 0.95}
	groups := groupNames()
	tp := &Table{
		ID:      "Figure 5(a)",
		Title:   "SRC throughput (MB/s) vs U_MAX (Sel-GC, erase group 256 MB paper-scale)",
		Columns: []string{"U_MAX"},
		Notes:   []string{"paper shape: throughput peaks at 90%, drops at 95%; amplification rises with U_MAX"},
	}
	amp := &Table{
		ID:      "Figure 5(b)",
		Title:   "SRC I/O amplification vs U_MAX",
		Columns: []string{"U_MAX"},
	}
	tp.Columns = append(tp.Columns, groups...)
	amp.Columns = append(amp.Columns, groups...)
	results, err := gridCells(o, "fig5", len(umaxes), len(groups),
		func(r, c int) string { return fmt.Sprintf("umax%.0f%%/%s", umaxes[r]*100, groups[c]) },
		func(r, c int) (GroupRun, error) {
			u := umaxes[r]
			run, err := srcGroupRun(o, groups[c], func(cfg *src.Config) { cfg.UMax = u })
			if err != nil {
				return GroupRun{}, fmt.Errorf("figure 5 umax %v %s: %w", u, groups[c], err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, u := range umaxes {
		rowT := []string{fmt.Sprintf("%.0f%%", u*100)}
		rowA := []string{fmt.Sprintf("%.0f%%", u*100)}
		for c := range groups {
			rowT = append(rowT, f1(results[r][c].MBps))
			rowA = append(rowA, f2(results[r][c].IOAmp))
		}
		tp.Rows = append(tp.Rows, rowT)
		amp.Rows = append(amp.Rows, rowA)
	}
	return []*Table{tp, amp}, nil
}

// Table9 compares Parity-for-Clean against No-Parity-for-Clean.
func Table9(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Table 9",
		Title:   "PC vs NPC mode performance, MB/s (I/O amplification)",
		Columns: []string{"Group", "PC", "NPC"},
		Notes:   []string{"paper: NPC wins everywhere, most for the Write group (~18%)"},
	}
	modes := []src.ParityMode{src.PC, src.NPC}
	groups := groupNames()
	results, err := gridCells(o, "table9", len(groups), len(modes),
		func(r, c int) string { return fmt.Sprintf("%s/%v", groups[r], modes[c]) },
		func(r, c int) (GroupRun, error) {
			mode := modes[c]
			run, err := srcGroupRun(o, groups[r], func(cfg *src.Config) { cfg.Parity = mode })
			if err != nil {
				return GroupRun{}, fmt.Errorf("table 9 %v %s: %w", mode, groups[r], err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, g := range groups {
		row := []string{g}
		for c := range modes {
			row = append(row, fmt.Sprintf("%s(%s)", f1(results[r][c].MBps), f2(results[r][c].IOAmp)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Table10 compares the cache striping levels RAID-0/4/5.
func Table10(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Table 10",
		Title:   "RAID level performance, MB/s (I/O amplification)",
		Columns: []string{"Group", "RAID-0", "RAID-4", "RAID-5"},
		Notes:   []string{"paper shape: RAID-0 best (~20% over RAID-5); RAID-5 slightly ahead of RAID-4"},
	}
	levels := []src.RAIDLevel{src.RAID0, src.RAID4, src.RAID5}
	groups := groupNames()
	results, err := gridCells(o, "table10", len(groups), len(levels),
		func(r, c int) string { return fmt.Sprintf("%s/%v", groups[r], levels[c]) },
		func(r, c int) (GroupRun, error) {
			lv := levels[c]
			run, err := srcGroupRun(o, groups[r], func(cfg *src.Config) { cfg.Level = lv })
			if err != nil {
				return GroupRun{}, fmt.Errorf("table 10 %v %s: %w", lv, groups[r], err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, g := range groups {
		row := []string{g}
		for c := range levels {
			row = append(row, fmt.Sprintf("%s(%s)", f1(results[r][c].MBps), f2(results[r][c].IOAmp)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// Table11 compares flush-command cadences: per segment write vs per
// Segment Group write.
func Table11(opts Options) ([]*Table, error) {
	o := opts.normalize()
	t := &Table{
		ID:      "Table 11",
		Title:   "Influence of flush command cadence, MB/s (I/O amplification)",
		Columns: []string{"Group", "Per Segment", "Per Segment Group"},
		Notes:   []string{"paper: per-segment flushing costs ~10% on writes and >40% on the Read group"},
	}
	policies := []src.FlushPolicy{src.FlushPerSegment, src.FlushPerSegmentGroup}
	groups := groupNames()
	results, err := gridCells(o, "table11", len(groups), len(policies),
		func(r, c int) string { return fmt.Sprintf("%s/%v", groups[r], policies[c]) },
		func(r, c int) (GroupRun, error) {
			fp := policies[c]
			run, err := srcGroupRun(o, groups[r], func(cfg *src.Config) { cfg.Flush = fp })
			if err != nil {
				return GroupRun{}, fmt.Errorf("table 11 %v %s: %w", fp, groups[r], err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, g := range groups {
		row := []string{g}
		for c := range policies {
			row = append(row, fmt.Sprintf("%s(%s)", f1(results[r][c].MBps), f2(results[r][c].IOAmp)))
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

func groupNames() []string { return []string{"Write", "Mixed", "Read"} }
