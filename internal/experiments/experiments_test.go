package experiments

import (
	"bytes"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

// testOpts keeps experiment tests fast; the shapes asserted here are the
// paper's qualitative claims and must hold even at a reduced budget.
// Cells fan out over the host's cores — results are identical to serial
// (TestParallelMatchesSerial pins that), only wall-clock changes.
func testOpts() Options {
	return Options{Scale: 16, Requests: 80_000, Parallel: runtime.GOMAXPROCS(0)}
}

// cell parses a numeric table cell, tolerating the "MB/s(amp)" form.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	s := tbl.Rows[row][col]
	if i := strings.IndexByte(s, '('); i >= 0 {
		s = s[:i]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		t.Fatalf("cell %d,%d of %s: %q: %v", row, col, tbl.ID, tbl.Rows[row][col], err)
	}
	return v
}

// amp parses the parenthesized amplification of a "MB/s(amp)" cell.
func amp(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	s := tbl.Rows[row][col]
	i := strings.IndexByte(s, '(')
	if i < 0 {
		t.Fatalf("cell %q has no amplification", s)
	}
	v, err := strconv.ParseFloat(strings.Trim(s[i:], "()"), 64)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table2", "table3", "fig1", "fig2", "fig4", "table8", "fig5",
		"table9", "table10", "table11", "table12", "fig6", "fig7",
		"ablation-victim", "ablation-segsize", "ablation-gcsplit", "ablation-degraded",
		"ablation-advanced", "ablation-rebuild"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Fatalf("experiment %d = %s, want %s", i, all[i].Name, name)
		}
		if _, err := Lookup(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestOptionsNormalize(t *testing.T) {
	o := Options{}.normalize()
	if o.Scale != 16 || o.Requests != 200_000 {
		t.Fatalf("defaults %+v", o)
	}
	if got := (Options{Scale: 5}).normalize().Scale; got != 8 {
		t.Fatalf("scale 5 rounded to %d, want 8", got)
	}
	if (Options{Scale: 16}).normalize().superblock() != 16<<20 {
		t.Fatal("superblock scaling wrong")
	}
}

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		ID: "T", Title: "title",
		Columns: []string{"A", "BB"},
		Rows:    [][]string{{"x", "y"}},
		Notes:   []string{"note text"},
	}
	var buf bytes.Buffer
	tbl.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"=== T: title ===", "A", "BB", "x", "note: note text"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	tables, err := Table2(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// Write-back beats write-through for both systems (the paper's
	// headline observation in §3.1).
	for row := 0; row < 2; row++ {
		wt, wb := cell(t, tbl, row, 1), cell(t, tbl, row, 2)
		if !(wb > 2*wt) {
			t.Fatalf("%s: WB %.1f not clearly above WT %.1f", tbl.Rows[row][0], wb, wt)
		}
	}
	// Flashcache's write-back outruns Bcache's (flush per journal commit).
	if !(cell(t, tbl, 1, 2) > cell(t, tbl, 0, 2)) {
		t.Fatal("Flashcache WB not above Bcache WB")
	}
}

func TestTable3Shape(t *testing.T) {
	tables, err := Table3(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	for row := 0; row < 2; row++ {
		noFlush, withFlush := cell(t, tbl, row, 1), cell(t, tbl, row, 2)
		if !(noFlush > 2*withFlush) {
			t.Fatalf("%s: flush cost not visible (%.1f vs %.1f)", tbl.Rows[row][0], noFlush, withFlush)
		}
	}
	// Sequential throughput exceeds random at both settings.
	if !(cell(t, tbl, 0, 1) > cell(t, tbl, 1, 1)) {
		t.Fatal("sequential not faster than random")
	}
}

func TestFigure1Shape(t *testing.T) {
	tables, err := Figure1(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0] // rows: Bcache, Flashcache; cols: type, R0, R1, R4, R5
	// RAID-0 is the best level for Flashcache, and parity RAID collapses it.
	fc0, fc5 := cell(t, tbl, 1, 1), cell(t, tbl, 1, 4)
	if !(fc0 > 3*fc5) {
		t.Fatalf("Flashcache RAID-0 %.1f not far above RAID-5 %.1f", fc0, fc5)
	}
	// Bcache's log structure keeps it afloat under parity RAID.
	if !(cell(t, tbl, 0, 4) > fc5) {
		t.Fatal("Bcache not ahead on RAID-5")
	}
}

func TestFigure2Shape(t *testing.T) {
	tables, err := Figure2(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	last := len(tbl.Rows) - 2 // the erase-group-sized row
	// Throughput at the erase group size is far above the smallest size
	// at 0% OPS, and OPS stops mattering at the erase group size.
	smallest0 := cell(t, tbl, 0, 1)
	atEG0, atEG50 := cell(t, tbl, last, 1), cell(t, tbl, last, 4)
	if !(atEG0 > 3*smallest0) {
		t.Fatalf("no erase-group cliff: %.1f vs %.1f", atEG0, smallest0)
	}
	if atEG50/atEG0 > 1.10 || atEG0/atEG50 > 1.10 {
		t.Fatalf("OPS still matters at the erase group size: %.1f vs %.1f", atEG0, atEG50)
	}
	// More OPS helps small writes.
	if !(cell(t, tbl, 0, 4) > smallest0) {
		t.Fatal("OPS does not help small writes")
	}
}

func TestTable8Shape(t *testing.T) {
	tables, err := Table8(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0] // cols: group, S2D/FIFO, S2D/Greedy, Sel/FIFO, Sel/Greedy
	for row := range tbl.Rows {
		s2d, sel := cell(t, tbl, row, 1), cell(t, tbl, row, 3)
		// The Read group exercises GC too little at test budgets for a
		// strict ordering; Write and Mixed must show the win clearly.
		if row < 2 && !(sel > s2d) {
			t.Fatalf("%s: Sel-GC %.1f not above S2D %.1f", tbl.Rows[row][0], sel, s2d)
		}
		if !(sel >= s2d*0.99) {
			t.Fatalf("%s: Sel-GC %.1f below S2D %.1f", tbl.Rows[row][0], sel, s2d)
		}
		if !(amp(t, tbl, row, 1) <= amp(t, tbl, row, 3)) {
			t.Fatalf("%s: S2D amplification not below Sel-GC", tbl.Rows[row][0])
		}
	}
}

func TestTable9Shape(t *testing.T) {
	tables, err := Table9(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	for row := range tbl.Rows {
		pc, npc := cell(t, tbl, row, 1), cell(t, tbl, row, 2)
		if !(npc >= pc*0.99) {
			t.Fatalf("%s: NPC %.1f below PC %.1f", tbl.Rows[row][0], npc, pc)
		}
	}
}

func TestTable10Shape(t *testing.T) {
	tables, err := Table10(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0] // cols: group, RAID-0, RAID-4, RAID-5
	for row := range tbl.Rows {
		r0, r5 := cell(t, tbl, row, 1), cell(t, tbl, row, 3)
		if !(r0 >= r5*0.97) {
			t.Fatalf("%s: RAID-0 %.1f below RAID-5 %.1f", tbl.Rows[row][0], r0, r5)
		}
	}
	// The Write group shows the parity cost most clearly.
	if !(cell(t, tbl, 0, 1) > cell(t, tbl, 0, 3)) {
		t.Fatal("Write group: RAID-0 not above RAID-5")
	}
}

func TestTable11Shape(t *testing.T) {
	tables, err := Table11(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	for row := range tbl.Rows {
		perSeg, perSG := cell(t, tbl, row, 1), cell(t, tbl, row, 2)
		if !(perSG >= perSeg) {
			t.Fatalf("%s: per-SG %.1f below per-segment %.1f", tbl.Rows[row][0], perSG, perSeg)
		}
	}
}

func TestTable12Data(t *testing.T) {
	tables, err := Table12(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 || len(tables[0].Rows) != 7 || len(tables[1].Rows) != 5 {
		t.Fatalf("catalog tables %d/%d rows", len(tables[0].Rows), len(tables[1].Rows))
	}
}

func TestFigure6Shape(t *testing.T) {
	tables, err := Figure6(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	perf, life, perfD, lifeD := tables[0], tables[1], tables[2], tables[3]
	// Row order: A-MLC, A-TLC, B-MLC, B-TLC, C-NVMe. Check the Write column.
	if !(cell(t, perf, 0, 1) > cell(t, perf, 1, 1)) {
		t.Fatal("A-MLC not faster than A-TLC")
	}
	if !(cell(t, life, 0, 1) > 2*cell(t, life, 1, 1)) {
		t.Fatal("MLC lifetime not well above TLC")
	}
	if !(cell(t, perfD, 1, 1) > cell(t, perfD, 0, 1)) {
		t.Fatal("TLC not ahead on performance per dollar")
	}
	if !(cell(t, lifeD, 0, 1) > cell(t, lifeD, 1, 1)) {
		t.Fatal("MLC not ahead on lifetime per dollar")
	}
	// The NVMe drive loses on performance per dollar (Table 4's pricing).
	if !(cell(t, perfD, 4, 1) < cell(t, perfD, 3, 1)) {
		t.Fatal("NVMe not behind TLC array on MB/s/$")
	}
}

func TestFigure7Shape(t *testing.T) {
	tables, err := Figure7(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	perf, ampT, hit := tables[0], tables[1], tables[2]
	// Rows: SRC, SRC-S2D, Bcache5, Flashcache5.
	for col := 1; col <= 3; col++ {
		srcV, s2d := cell(t, perf, 0, col), cell(t, perf, 1, col)
		bc, fc := cell(t, perf, 2, col), cell(t, perf, 3, col)
		// The headline claim: SRC at least 2x over both baselines.
		if !(srcV > 2*bc) || !(srcV > 2*fc) {
			t.Fatalf("col %d: SRC %.1f not 2x over baselines (%.1f, %.1f)", col, srcV, bc, fc)
		}
		if !(srcV >= s2d) {
			t.Fatalf("col %d: SRC %.1f below SRC-S2D %.1f", col, srcV, s2d)
		}
		// Sel-GC costs amplification but buys hit ratio (the Read group
		// garbage collects too little at test budgets to separate).
		if col < 3 && !(cell(t, ampT, 0, col) > cell(t, ampT, 1, col)) {
			t.Fatalf("col %d: SRC amplification not above SRC-S2D", col)
		}
		if !(cell(t, hit, 0, col) >= cell(t, hit, 1, col)) {
			t.Fatalf("col %d: Sel-GC hit ratio below S2D", col)
		}
	}
}

func TestFigure4And5Run(t *testing.T) {
	// Smoke: the sweeps complete and produce full tables (their shapes are
	// scale-sensitive; srcbench output and EXPERIMENTS.md carry the full
	// assessment).
	o := Options{Scale: 16, Requests: 40_000, Parallel: runtime.GOMAXPROCS(0)}
	for _, f := range []func(Options) ([]*Table, error){Figure4, Figure5} {
		tables, err := f(o)
		if err != nil {
			t.Fatal(err)
		}
		for _, tbl := range tables {
			if len(tbl.Rows) == 0 || len(tbl.Columns) != 4 {
				t.Fatalf("%s malformed", tbl.ID)
			}
		}
	}
}

func TestAblationVictimShape(t *testing.T) {
	tables, err := AblationVictim(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	if len(tbl.Rows) != 3 || len(tbl.Columns) != 4 {
		t.Fatalf("table malformed: %dx%d", len(tbl.Rows), len(tbl.Columns))
	}
	// All three policies deliver the same order of magnitude.
	for row := range tbl.Rows {
		fifo := cell(t, tbl, row, 1)
		for col := 2; col <= 3; col++ {
			v := cell(t, tbl, row, col)
			if v < fifo/2 || v > fifo*2 {
				t.Fatalf("%s col %d: %.1f wildly off FIFO %.1f", tbl.Rows[row][0], col, v, fifo)
			}
		}
	}
}

func TestAblationGCSplitShape(t *testing.T) {
	tables, err := AblationGCSplit(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	for row := range tbl.Rows {
		mixed, split := cell(t, tbl, row, 1), cell(t, tbl, row, 2)
		if split < mixed/2 || split > mixed*2 {
			t.Fatalf("%s: separation %.1f wildly off mixed %.1f", tbl.Rows[row][0], split, mixed)
		}
	}
}

func TestAblationDegradedShape(t *testing.T) {
	tables, err := AblationDegraded(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// Every cell renders "healthy -> degraded" with positive numbers.
	for _, row := range tbl.Rows {
		for col := 1; col <= 2; col++ {
			var healthy, degraded float64
			if _, err := fmt.Sscanf(row[col], "%f -> %f", &healthy, &degraded); err != nil {
				t.Fatalf("cell %q: %v", row[col], err)
			}
			if healthy <= 0 || degraded <= 0 {
				t.Fatalf("cell %q has nonpositive throughput", row[col])
			}
		}
	}
}

func TestAblationRebuildShape(t *testing.T) {
	tables, err := AblationRebuild(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	for _, row := range tbl.Rows {
		healthy, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("healthy cell %q: %v", row[1], err)
		}
		rebuilding, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("rebuilding cell %q: %v", row[2], err)
		}
		mttr, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("mttr cell %q: %v", row[3], err)
		}
		segs, err := strconv.ParseInt(row[4], 10, 64)
		if err != nil {
			t.Fatalf("segments cell %q: %v", row[4], err)
		}
		if healthy <= 0 || rebuilding <= 0 {
			t.Fatalf("row %q has nonpositive throughput", row)
		}
		// A warmed cache always leaves data on the failed column, so the
		// walker must have real work and real repair time.
		if mttr <= 0 || segs <= 0 {
			t.Fatalf("row %q shows no rebuild work", row)
		}
	}
}

func TestAblationSegmentSizeShape(t *testing.T) {
	tables, err := AblationSegmentSize(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	// The paper's 2 MB choice must beat much smaller segments on writes.
	if !(cell(t, tbl, 1, 1) > cell(t, tbl, 0, 1)) {
		t.Fatal("2 MB segments not above 512 KB segments for the Write group")
	}
}

func TestAblationAdvancedShape(t *testing.T) {
	tables, err := AblationAdvanced(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	tbl := tables[0]
	for row := range tbl.Rows {
		srcV, ripq := cell(t, tbl, row, 1), cell(t, tbl, row, 2)
		// Write-back + RAID-aware SRC must beat the write-through
		// read cache on every group, most dramatically on writes.
		if !(srcV > ripq) {
			t.Fatalf("%s: SRC %.1f not above RIPQ-like %.1f", tbl.Rows[row][0], srcV, ripq)
		}
	}
	// The RIPQ-like cache still caches: its Read-group hit ratio is real.
	hit := amp(t, tbl, 2, 2)
	if hit < 0.3 {
		t.Fatalf("RIPQ-like read hit ratio %.2f implausibly low", hit)
	}
}
