package experiments

import (
	"fmt"

	"srccache/internal/bench"
	"srccache/internal/blockdev"
	"srccache/internal/raid"
	"srccache/internal/src"
)

// Section 5.4: SRC vs the existing solutions deployed over RAID-5
// ("Bcache5" / "Flashcache5").

// Figure7 compares SRC (defaults), SRC-S2D, Bcache5, and Flashcache5 on the
// three trace groups: throughput, I/O amplification, and hit ratio.
func Figure7(opts Options) ([]*Table, error) {
	o := opts.normalize()
	systems := []struct {
		name  string
		build func(span int64) (bench.Cache, error)
	}{
		{"SRC", func(span int64) (bench.Cache, error) {
			return buildSRC(o, span, nil)
		}},
		{"SRC-S2D", func(span int64) (bench.Cache, error) {
			return buildSRC(o, span, func(c *src.Config) { c.GC = src.S2D })
		}},
		{"Bcache5", func(span int64) (bench.Cache, error) {
			arr, ssds, err := buildRAIDVolume(o, raid.Level5, blockdev.PageSize)
			if err != nil {
				return nil, err
			}
			return buildBaseline(kindBcache, arr, ssds, span, true)
		}},
		{"Flashcache5", func(span int64) (bench.Cache, error) {
			arr, ssds, err := buildRAIDVolume(o, raid.Level5, blockdev.PageSize)
			if err != nil {
				return nil, err
			}
			return buildBaseline(kindFlashcache, arr, ssds, span, true)
		}},
	}

	mk := func(id, title string) *Table {
		t := &Table{ID: id, Title: title, Columns: []string{"System"}}
		t.Columns = append(t.Columns, groupNames()...)
		return t
	}
	tp := mk("Figure 7(a)", "Throughput (MB/s)")
	tp.Notes = []string{
		"paper: SRC beats Bcache5 by 2.8-3.1x and Flashcache5 by 2.3-2.8x;",
		"SRC > SRC-S2D; Bcache5 worst (flush per journal write)",
	}
	amp := mk("Figure 7(b)", "I/O amplification")
	amp.Notes = []string{"paper: SRC amplifies more than SRC-S2D (Sel-GC copies hot data)"}
	hit := mk("Figure 7(c)", "Hit ratio")
	hit.Notes = []string{"paper: Sel-GC's hit ratio exceeds S2D's"}

	groups := groupNames()
	results, err := gridCells(o, "fig7", len(systems), len(groups),
		func(r, c int) string { return fmt.Sprintf("%s/%s", systems[r].name, groups[c]) },
		func(r, c int) (GroupRun, error) {
			sys, g := systems[r], groups[c]
			span, err := groupSpan(g, o)
			if err != nil {
				return GroupRun{}, err
			}
			cache, err := sys.build(span)
			if err != nil {
				return GroupRun{}, fmt.Errorf("figure 7 %s: %w", sys.name, err)
			}
			run, err := runGroup(cache, g, o)
			if err != nil {
				return GroupRun{}, fmt.Errorf("figure 7 %s %s: %w", sys.name, g, err)
			}
			return run, nil
		})
	if err != nil {
		return nil, err
	}
	for r, sys := range systems {
		rowT := []string{sys.name}
		rowA := []string{sys.name}
		rowH := []string{sys.name}
		for c := range groups {
			run := results[r][c]
			rowT = append(rowT, f1(run.MBps))
			rowA = append(rowA, f2(run.IOAmp))
			rowH = append(rowH, f2(run.HitRatio))
		}
		tp.Rows = append(tp.Rows, rowT)
		amp.Rows = append(amp.Rows, rowA)
		hit.Rows = append(hit.Rows, rowH)
	}
	return []*Table{tp, amp, hit}, nil
}
