// Package hdd models a rotating disk: seek time scaled by seek distance,
// rotational latency, media transfer rate, and sequential-access detection.
// Eight of these behind a network link form the paper's primary storage
// (Table 1: RAID-10 of 8× 2 TB 7.2K RPM disks).
package hdd

import (
	"fmt"
	"math"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Config describes one drive. Zero fields default to a 7.2K RPM SATA disk.
type Config struct {
	Name     string
	Capacity int64
	// RPM is the spindle speed (default 7200).
	RPM float64
	// AvgSeek is the average seek time — the seek for a move of one third
	// of the platter (default 8.5 ms).
	AvgSeek vtime.Duration
	// TrackSeek is the minimum (track-to-track) seek (default 600 µs).
	TrackSeek vtime.Duration
	// TransferRate is the media rate in bytes/s (default 150 MB/s).
	TransferRate float64
	// CommandOverhead is per-command controller latency (default 100 µs).
	CommandOverhead vtime.Duration
}

// Validate fills defaults and checks invariants.
func (c Config) Validate() (Config, error) {
	if c.Name == "" {
		c.Name = "hdd"
	}
	if c.Capacity <= 0 {
		return c, fmt.Errorf("hdd %s: capacity %d must be positive", c.Name, c.Capacity)
	}
	if c.Capacity%blockdev.PageSize != 0 {
		return c, fmt.Errorf("hdd %s: capacity %d not page-aligned", c.Name, c.Capacity)
	}
	if c.RPM == 0 {
		c.RPM = 7200
	}
	if c.AvgSeek == 0 {
		c.AvgSeek = 8500 * vtime.Microsecond
	}
	if c.TrackSeek == 0 {
		c.TrackSeek = 600 * vtime.Microsecond
	}
	if c.TransferRate == 0 {
		c.TransferRate = 150e6
	}
	if c.CommandOverhead == 0 {
		c.CommandOverhead = 100 * vtime.Microsecond
	}
	return c, nil
}

// HDD is a simulated rotating disk implementing blockdev.Device.
type HDD struct {
	cfg     Config
	busy    vtime.Time
	headPos int64 // byte offset just past the last transfer
	stats   blockdev.Stats
	cont    *blockdev.Content
}

var _ blockdev.Device = (*HDD)(nil)

// New builds a drive from cfg.
func New(cfg Config) (*HDD, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	return &HDD{cfg: cfg, cont: blockdev.NewContent(cfg.Capacity)}, nil
}

// Config returns the effective configuration.
func (d *HDD) Config() Config { return d.cfg }

// Capacity reports the drive size in bytes.
func (d *HDD) Capacity() int64 { return d.cfg.Capacity }

// Stats reports accumulated counters.
func (d *HDD) Stats() *blockdev.Stats { return &d.stats }

// Content exposes the content store.
func (d *HDD) Content() *blockdev.Content { return d.cont }

// seekTime models seek cost for a head move of dist bytes: track-to-track
// for tiny moves, growing with the square root of distance and calibrated so
// that a one-third-stroke move costs AvgSeek.
func (d *HDD) seekTime(dist int64) vtime.Duration {
	if dist == 0 {
		return 0
	}
	frac := 3 * float64(dist) / float64(d.cfg.Capacity)
	if frac > 3 {
		frac = 3
	}
	extra := float64(d.cfg.AvgSeek-d.cfg.TrackSeek) * math.Sqrt(frac)
	return d.cfg.TrackSeek + vtime.Duration(extra)
}

// rotHalf is the average rotational latency: half a revolution.
func (d *HDD) rotHalf() vtime.Duration {
	return vtime.Duration(30.0 / d.cfg.RPM * float64(vtime.Second))
}

// Submit serves the request FCFS. Sequential continuation (offset exactly
// where the head left off) skips seek and rotational delay.
func (d *HDD) Submit(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	if err := req.Validate(d.cfg.Capacity); err != nil {
		return at, err
	}
	d.stats.Record(req)
	if req.Op == blockdev.OpTrim {
		if err := d.cont.Trim(req.Off/blockdev.PageSize, req.Pages()); err != nil {
			return at, err
		}
		return vtime.Max(at, d.busy), nil
	}
	start := vtime.Max(at, d.busy)
	svc := d.cfg.CommandOverhead
	if req.Off != d.headPos {
		dist := req.Off - d.headPos
		if dist < 0 {
			dist = -dist
		}
		mech := d.seekTime(dist) + d.rotHalf()
		if at < d.busy {
			// The request queued behind others: NCQ/elevator scheduling
			// services sorted batches, cutting mechanical cost under load.
			mech = mech * 35 / 100
		}
		svc += mech
	}
	svc += vtime.TransferTime(req.Len, d.cfg.TransferRate)
	done := start.Add(svc)
	d.busy = done
	d.headPos = req.Off + req.Len
	return done, nil
}

// Flush completes when the queue drains; content becomes durable.
func (d *HDD) Flush(at vtime.Time) (vtime.Time, error) {
	d.stats.Flushes++
	d.cont.FlushContent()
	return vtime.Max(at, d.busy), nil
}
