package hdd

import (
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

func newDisk(t *testing.T) *HDD {
	t.Helper()
	d, err := New(Config{Capacity: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Capacity: 0}); err == nil {
		t.Fatal("accepted zero capacity")
	}
	if _, err := New(Config{Capacity: 4097}); err == nil {
		t.Fatal("accepted unaligned capacity")
	}
	d := newDisk(t)
	cfg := d.Config()
	if cfg.RPM != 7200 || cfg.TransferRate != 150e6 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestRandomReadCostsSeekPlusRotation(t *testing.T) {
	d := newDisk(t)
	// First access from head position 0 to the middle of the disk.
	done, err := d.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 512 << 20, Len: blockdev.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	// Must cost at least the rotational half turn (4.17 ms at 7200 RPM).
	if done < vtime.Time(4*vtime.Millisecond) {
		t.Fatalf("random read done at %v, expected seek+rotation cost", done)
	}
	if done > vtime.Time(25*vtime.Millisecond) {
		t.Fatalf("random read done at %v, unreasonably slow", done)
	}
}

func TestSequentialContinuationIsCheap(t *testing.T) {
	d := newDisk(t)
	done1, err := d.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	// Continuing where the head stopped skips seek and rotation entirely.
	done2, err := d.Submit(done1, blockdev.Request{Op: blockdev.OpWrite, Off: 64 << 10, Len: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	seqCost := done2.Sub(done1)
	want := d.Config().CommandOverhead + vtime.TransferTime(64<<10, d.Config().TransferRate)
	if seqCost != want {
		t.Fatalf("sequential cost %v, want %v", seqCost, want)
	}
}

func TestSeekScalesWithDistance(t *testing.T) {
	near := newDisk(t)
	far := newDisk(t)
	doneNear, _ := near.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 1 << 20, Len: blockdev.PageSize})
	doneFar, _ := far.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 1000 << 20, Len: blockdev.PageSize})
	if doneFar <= doneNear {
		t.Fatalf("far seek (%v) not slower than near seek (%v)", doneFar, doneNear)
	}
}

func TestFIFOQueueing(t *testing.T) {
	d := newDisk(t)
	done1, _ := d.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: blockdev.PageSize})
	done2, _ := d.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 500 << 20, Len: blockdev.PageSize})
	if done2 <= done1 {
		t.Fatal("second queued request finished before first")
	}
}

func TestFlushAndTrim(t *testing.T) {
	d := newDisk(t)
	done, _ := d.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize})
	fd, err := d.Flush(0)
	if err != nil {
		t.Fatal(err)
	}
	if fd != done {
		t.Fatalf("flush at %v, want drain at %v", fd, done)
	}
	if _, err := d.Submit(fd, blockdev.Request{Op: blockdev.OpTrim, Off: 0, Len: blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	if d.Stats().TrimOps != 1 || d.Stats().Flushes != 1 {
		t.Fatalf("stats %+v", d.Stats())
	}
}
