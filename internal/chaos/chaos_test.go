package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// TestChaos runs the seeded fault schedules. Every seed must complete its
// full schedule with all durability and content invariants intact.
// CHAOS_SEEDS widens the sweep (CI's dedicated chaos job sets it); the
// default keeps the tier-1 run fast.
func TestChaos(t *testing.T) {
	seeds := int64(50)
	if v := os.Getenv("CHAOS_SEEDS"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_SEEDS %q", v)
		}
		seeds = n
	}
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel()
			res, err := Run(Options{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			if res.Writes == 0 || res.Reads == 0 || res.Checks == 0 {
				t.Fatalf("schedule exercised too little: %+v", res)
			}
		})
	}
}

// TestChaosDeterministic replays one schedule and requires bit-identical
// results, including the folded final-state signature.
func TestChaosDeterministic(t *testing.T) {
	o := Options{Seed: 7, Ops: 600}
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed, different runs:\n  %+v\n  %+v", a, b)
	}
}

// TestChaosCoverage checks that, across the seed set, every fault kind
// actually fires — a schedule that never crashes or rebuilds proves nothing.
func TestChaosCoverage(t *testing.T) {
	var total Result
	for seed := int64(1); seed <= 12; seed++ {
		res, err := Run(Options{Seed: seed, Ops: 600})
		if err != nil {
			t.Fatal(err)
		}
		total.Crashes += res.Crashes
		total.Rebuilds += res.Rebuilds
		total.Scrubs += res.Scrubs
		total.Transients += res.Transients
		total.Unreadables += res.Unreadables
		total.Corruptions += res.Corruptions
		total.Flushes += res.Flushes
	}
	if total.Crashes == 0 || total.Rebuilds == 0 || total.Scrubs == 0 ||
		total.Transients == 0 || total.Unreadables == 0 ||
		total.Corruptions == 0 || total.Flushes == 0 {
		t.Fatalf("fault kinds not all exercised: %+v", total)
	}
}
