// Package chaos is the seeded fault-injection harness for the SRC cache.
// A Run drives one cache instance with a pseudo-random workload interleaved
// with a pseudo-random fault schedule — transient device errors, latent
// sector errors, silent corruption, fail-stop with hot-spare replacement and
// online rebuild, scrub passes, and crash/recovery cycles — while checking
// the durability contract after every hazard:
//
//   - an acknowledged dirty write (one made durable by Flush) is never lost:
//     after any crash it is recovered at that version or newer, or has been
//     destaged to primary storage at that version or newer;
//   - the cache never serves a version newer than the newest write;
//   - a column rebuild converges and the rebuilt data verifies;
//   - planted silent corruption is detected (and repaired) by the scrub.
//
// Everything is a pure function of the seed: the workload, the fault
// schedule, and the virtual-time interleavings, so any failure replays
// exactly from its Options.
package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand"

	"srccache/internal/blockdev"
	"srccache/internal/src"
	"srccache/internal/vtime"
)

// Geometry mirrors the src package's test environment: 4 SSDs of 16 MiB with
// 1 MiB erase groups and 16 KiB segment columns (4 pages per column), small
// enough that GC, partial segments and recovery all engage within a few
// hundred operations.
const (
	numSSD  = 4
	ssdCap  = 16 << 20
	primCap = 64 << 20
	egs     = 1 << 20
	segCol  = 16 << 10
	span    = 4096 // logical pages the workload touches
)

// Options seeds one chaos run.
type Options struct {
	// Seed selects the workload and fault schedule. Runs with equal
	// Options are identical.
	Seed int64
	// Ops is the number of top-level schedule steps (default 800).
	Ops int
}

// Result counts what one run exercised. Two runs with equal Options produce
// equal Results, including the state Signature.
type Result struct {
	Writes      int
	Reads       int
	Flushes     int
	Crashes     int
	Rebuilds    int
	Scrubs      int
	Transients  int
	Unreadables int
	Corruptions int
	Checks      int // content verifications that passed

	// Signature folds the final cache state (per-page versions and the
	// virtual clock) into one value, so determinism checks can compare
	// entire final states cheaply.
	Signature uint64
}

type harness struct {
	rng   *rand.Rand
	cache *src.Cache
	ssds  []*blockdev.FaultPlan
	prim  *blockdev.MemDevice
	at    vtime.Time

	// latest mirrors the cache's per-page version counter: incremented on
	// every host page write, reset to the recovered version after a crash.
	latest map[int64]uint64
	// durable snapshots latest at each successful Flush: the versions the
	// cache has acknowledged as crash-safe.
	durable map[int64]uint64

	res Result
}

// Run executes one seeded chaos schedule and returns its counters, or the
// first invariant violation as an error.
func Run(o Options) (Result, error) {
	if o.Ops <= 0 {
		o.Ops = 800
	}
	h := &harness{
		rng:     rand.New(rand.NewSource(o.Seed)),
		latest:  make(map[int64]uint64),
		durable: make(map[int64]uint64),
	}
	devs := make([]blockdev.Device, numSSD)
	h.ssds = make([]*blockdev.FaultPlan, numSSD)
	for i := range devs {
		p := blockdev.NewFaultPlan(
			blockdev.NewMemDevice(ssdCap, 10*vtime.Microsecond),
			rand.New(rand.NewSource(o.Seed*997+int64(i)+1)),
		)
		devs[i] = p
		h.ssds[i] = p
	}
	h.prim = blockdev.NewMemDevice(primCap, vtime.Millisecond)
	cache, err := src.New(src.Config{
		SSDs:           devs,
		Primary:        h.prim,
		EraseGroupSize: egs,
		SegmentColumn:  segCol,
		TrackContent:   true,
		// The schedule injects faults far faster than any real device
		// degrades; a huge budget keeps escalation (unit-tested
		// separately) from fail-stopping columns mid-schedule.
		ErrorBudget: 1 << 30,
	})
	if err != nil {
		return h.res, err
	}
	h.cache = cache
	for i := 0; i < o.Ops; i++ {
		if err := h.step(); err != nil {
			return h.res, fmt.Errorf("seed %d op %d: %w", o.Seed, i, err)
		}
	}
	if err := h.verifyAll(); err != nil {
		return h.res, fmt.Errorf("seed %d final verify: %w", o.Seed, err)
	}
	h.res.Signature = h.signature()
	return h.res, nil
}

func (h *harness) step() error {
	switch p := h.rng.Float64(); {
	case p < 0.55:
		return h.doWrite()
	case p < 0.80:
		return h.doRead()
	case p < 0.84:
		return h.doFlush()
	case p < 0.87:
		return h.doInject()
	case p < 0.89:
		return h.doCrash()
	case p < 0.91:
		return h.doRebuild()
	case p < 0.925:
		return h.doScrub()
	default:
		return h.spotCheck()
	}
}

func (h *harness) doWrite() error {
	lba := h.rng.Int63n(span - 8)
	n := 1 + h.rng.Int63n(8)
	done, err := h.cache.Submit(h.at, blockdev.Request{
		Op: blockdev.OpWrite, Off: lba * blockdev.PageSize, Len: n * blockdev.PageSize,
	})
	if err != nil {
		return fmt.Errorf("write [%d,%d): %w", lba, lba+n, err)
	}
	h.at = vtime.Max(h.at, done)
	for p := lba; p < lba+n; p++ {
		h.latest[p]++
	}
	h.res.Writes++
	return nil
}

func (h *harness) doRead() error {
	lba := h.rng.Int63n(span - 8)
	n := 1 + h.rng.Int63n(8)
	done, err := h.cache.Submit(h.at, blockdev.Request{
		Op: blockdev.OpRead, Off: lba * blockdev.PageSize, Len: n * blockdev.PageSize,
	})
	if err != nil {
		return fmt.Errorf("read [%d,%d): %w", lba, lba+n, err)
	}
	h.at = vtime.Max(h.at, done)
	h.res.Reads++
	return nil
}

func (h *harness) doFlush() error {
	done, err := h.cache.Flush(h.at)
	if err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	h.at = vtime.Max(h.at, done)
	// Everything written so far is now acknowledged as durable.
	for lba, v := range h.latest {
		if v > 0 {
			h.durable[lba] = v
		}
	}
	h.res.Flushes++
	return nil
}

// pickCached samples for a page currently on SSD and returns its location;
// ok is false when the sample budget finds none.
func (h *harness) pickCached() (lba int64, col int, page int64, ok bool) {
	for try := 0; try < 32; try++ {
		lba = h.rng.Int63n(span)
		if col, page, ok = h.cache.Locate(lba); ok {
			return lba, col, page, true
		}
	}
	return 0, 0, 0, false
}

func (h *harness) doInject() error {
	switch h.rng.Intn(3) {
	case 0:
		// A burst of 1–3 transient errors, capped so the outstanding
		// stack stays within the cache's retry budget and the next I/O
		// to the device corrects them. A deeper stack would exhaust the
		// retries and (correctly) fail the request — an availability
		// outcome the unit tests cover deterministically; the chaos
		// invariants target durability.
		d := h.rng.Intn(numSSD)
		n := 1 + h.rng.Intn(3)
		if left := h.ssds[d].PendingTransient(); left+n > 3 {
			n = 3 - left
		}
		if n > 0 {
			h.ssds[d].InjectTransient(n)
			h.res.Transients++
		}
		return nil
	case 1:
		// A latent sector error under a cached page. Left outstanding:
		// whichever path touches it next (read, GC, scrub, rebuild
		// gating) must repair or route around it. Marks are kept on one
		// member at a time: latent errors on two members can overlap a
		// reconstruction run, which single-parity RAID cannot survive
		// regardless of implementation.
		lba, col, page, ok := h.pickCached()
		if !ok {
			return h.doRead()
		}
		for i, p := range h.ssds {
			if i != col && p.UnreadablePages() > 0 {
				return h.doRead()
			}
		}
		h.ssds[col].InjectUnreadable(page)
		h.res.Unreadables++
		if h.rng.Float64() < 0.5 {
			// Exercise the repair now via a direct read of the page.
			done, err := h.cache.Submit(h.at, blockdev.Request{
				Op: blockdev.OpRead, Off: lba * blockdev.PageSize, Len: blockdev.PageSize,
			})
			if err != nil {
				return fmt.Errorf("read over latent error at page %d: %w", lba, err)
			}
			h.at = vtime.Max(h.at, done)
		}
		return nil
	default:
		// Silent corruption, then an immediate checked read: the tag
		// mismatch must be detected and repaired in place. (Corruption
		// left outstanding is exercised by the scrub event instead, so a
		// later column failure never XORs corrupt survivor data.)
		lba, col, page, ok := h.pickCached()
		if !ok {
			return h.doRead()
		}
		for i, p := range h.ssds {
			if i != col && p.UnreadablePages() > 0 {
				// Parity repair of the corrupt page reads every survivor;
				// a latent error there would turn a repairable corruption
				// into a double fault.
				return h.doRead()
			}
		}
		if err := h.ssds[col].Content().Corrupt(page); err != nil {
			return err
		}
		before := h.cache.RepairStats().CorruptionsDetected
		tag, done, err := h.cache.ReadCheck(h.at, lba)
		if err != nil {
			return fmt.Errorf("checked read of corrupted page %d: %w", lba, err)
		}
		h.at = vtime.Max(h.at, done)
		if v, cached := h.cache.CachedVersion(lba); cached && v > 0 && tag != blockdev.DataTag(lba, v) {
			return fmt.Errorf("page %d: repaired tag does not match version %d", lba, v)
		}
		if h.cache.RepairStats().CorruptionsDetected == before {
			return fmt.Errorf("page %d: planted corruption not detected", lba)
		}
		h.res.Corruptions++
		return nil
	}
}

func (h *harness) doCrash() error {
	// Primary storage is durable by fiat (it is redundant, battery-backed
	// HDD RAID in the paper's setting); the SSDs lose their volatile write
	// caches. Each SSD independently persists either nothing or a FIFO
	// prefix of its volatile write log — the skew a set of independent
	// drive caches produces — and a prefix ending in a blob write may tear
	// it mid-page, leaving the partially-programmed summary recovery's CRC
	// must reject. All of these are barrier-legal states, so the
	// durability checks below apply unchanged.
	h.prim.Content().FlushContent()
	for _, p := range h.ssds {
		c := p.Content()
		n := c.WriteLogLen()
		if pick := h.rng.Float64(); pick < 0.5 || n == 0 {
			c.Crash()
			continue
		}
		cut := h.rng.Intn(n + 1)
		s := blockdev.PrefixSchedule(n, cut)
		if cut > 0 {
			if rec := c.WriteLog()[cut-1]; rec.Kind == blockdev.WriteBlobKind && rec.Len >= 2 {
				s = s.Tear(cut-1, 1+h.rng.Intn(rec.Len-1))
			}
		}
		if err := c.CrashPartial(s); err != nil {
			return fmt.Errorf("partial crash: %w", err)
		}
	}
	if _, err := h.cache.Recover(); err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	h.res.Crashes++

	// Durability check and model resync, in deterministic page order.
	newLatest := make(map[int64]uint64, len(h.latest))
	for lba := int64(0); lba < span; lba++ {
		lv := h.latest[lba]
		if lv == 0 {
			continue
		}
		dv := h.durable[lba]
		rv, cached := h.cache.CachedVersion(lba)
		if cached && rv > 0 {
			if rv > lv {
				return fmt.Errorf("page %d recovered at version %d, newer than the newest write %d", lba, rv, lv)
			}
			if rv < dv {
				return fmt.Errorf("page %d recovered at version %d, below the durable version %d", lba, rv, dv)
			}
			newLatest[lba] = rv
			continue
		}
		// Not recovered into the cache (or only as a pre-epoch clean
		// fill): a durable version must have been destaged to primary.
		if dv > 0 {
			pt, err := h.prim.Content().ReadTag(lba)
			if err != nil {
				return err
			}
			found := false
			for v := lv; v >= dv; v-- {
				if pt == blockdev.DataTag(lba, v) {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("page %d: durable version %d neither recovered nor on primary", lba, dv)
			}
		}
	}
	// The recovered state is exactly what was committed: it is the new
	// model baseline, and all of it is durable.
	h.latest = newLatest
	h.durable = make(map[int64]uint64, len(newLatest))
	for lba, v := range newLatest {
		h.durable[lba] = v
	}
	return nil
}

func (h *harness) doRebuild() error {
	// A survivor with an outstanding latent error cannot serve as a
	// reconstruction source; real arrays refuse to kick a second member
	// for the same reason. Scrub-style repair paths clear these over time.
	for _, p := range h.ssds {
		if p.UnreadablePages() > 0 {
			return h.doRead()
		}
	}
	col := h.rng.Intn(numSSD)
	h.ssds[col].Fail()
	// Foreground traffic against the failed member: served degraded.
	for k := 0; k < 2; k++ {
		if err := h.doRead(); err != nil {
			return fmt.Errorf("degraded before replace: %w", err)
		}
	}
	fresh := blockdev.NewFaultPlan(
		blockdev.NewMemDevice(ssdCap, 10*vtime.Microsecond),
		rand.New(rand.NewSource(h.rng.Int63())),
	)
	done, err := h.cache.ReplaceSSD(h.at, col, fresh)
	if err != nil {
		return fmt.Errorf("replace ssd %d: %w", col, err)
	}
	h.ssds[col] = fresh
	h.at = vtime.Max(h.at, done)
	// Drive the rebuild interleaved with foreground traffic.
	for steps := 0; h.cache.Rebuilding(); steps++ {
		if steps > 1<<16 {
			return fmt.Errorf("rebuild of ssd %d did not converge", col)
		}
		t, _, err := h.cache.RebuildStep(h.at)
		if err != nil {
			return fmt.Errorf("rebuild step: %w", err)
		}
		h.at = vtime.Max(h.at, t)
		if steps%4 == 3 {
			var ferr error
			if h.rng.Float64() < 0.5 {
				ferr = h.doWrite()
			} else {
				ferr = h.doRead()
			}
			if ferr != nil {
				return fmt.Errorf("foreground during rebuild: %w", ferr)
			}
		}
	}
	h.res.Rebuilds++
	return nil
}

func (h *harness) doScrub() error {
	planted := false
	before := h.cache.RepairStats().CorruptionsDetected
	if h.rng.Float64() < 0.7 {
		if _, col, page, ok := h.pickCached(); ok {
			if err := h.ssds[col].Content().Corrupt(page); err != nil {
				return err
			}
			planted = true
		}
	}
	done, err := h.cache.Scrub(h.at)
	if err != nil {
		return fmt.Errorf("scrub: %w", err)
	}
	h.at = vtime.Max(h.at, done)
	if planted && h.cache.RepairStats().CorruptionsDetected == before {
		return fmt.Errorf("scrub missed a planted corruption")
	}
	h.res.Scrubs++
	return nil
}

// spotCheck verifies a handful of random pages against the model.
func (h *harness) spotCheck() error {
	for k := 0; k < 8; k++ {
		lba := h.rng.Int63n(span)
		lv := h.latest[lba]
		if lv == 0 {
			continue
		}
		rv, cached := h.cache.CachedVersion(lba)
		if !cached {
			continue
		}
		if rv != lv {
			return fmt.Errorf("page %d cached at version %d, model says %d", lba, rv, lv)
		}
		tag, done, err := h.cache.ReadCheck(h.at, lba)
		if err != nil {
			return fmt.Errorf("checked read of page %d: %w", lba, err)
		}
		h.at = vtime.Max(h.at, done)
		if rv > 0 && tag != blockdev.DataTag(lba, rv) {
			return fmt.Errorf("page %d serves the wrong content for version %d", lba, rv)
		}
		h.res.Checks++
	}
	return nil
}

// verifyAll checks every written page at the end of the run: cached pages
// must verify at the model's version, evicted pages must live on primary at
// a version no older than their durable one.
func (h *harness) verifyAll() error {
	for lba := int64(0); lba < span; lba++ {
		lv := h.latest[lba]
		if lv == 0 {
			continue
		}
		dv := h.durable[lba]
		rv, cached := h.cache.CachedVersion(lba)
		if cached && rv > 0 {
			if rv != lv {
				return fmt.Errorf("page %d cached at version %d, model says %d", lba, rv, lv)
			}
			tag, done, err := h.cache.ReadCheck(h.at, lba)
			if err != nil {
				return fmt.Errorf("checked read of page %d: %w", lba, err)
			}
			h.at = vtime.Max(h.at, done)
			if tag != blockdev.DataTag(lba, rv) {
				return fmt.Errorf("page %d serves the wrong content for version %d", lba, rv)
			}
			h.res.Checks++
			continue
		}
		pt, err := h.prim.Content().ReadTag(lba)
		if err != nil {
			return err
		}
		found := false
		for v := lv; v >= 1 && v >= dv; v-- {
			if pt == blockdev.DataTag(lba, v) {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("page %d (latest %d, durable %d) neither cached nor on primary", lba, lv, dv)
		}
		h.res.Checks++
	}
	return nil
}

// signature folds the final per-page versions and the virtual clock into one
// comparable value.
func (h *harness) signature() uint64 {
	f := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		f.Write(buf[:])
	}
	for lba := int64(0); lba < span; lba++ {
		if v := h.latest[lba]; v > 0 {
			put(uint64(lba))
			put(v)
		}
	}
	put(uint64(h.at.Sub(vtime.Time(0))))
	return f.Sum64()
}
