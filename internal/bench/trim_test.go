package bench

import (
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
	"srccache/internal/workload"
)

// mixedSource yields a deterministic read/write/trim rotation.
type mixedSource struct {
	n, max int64
}

func (s *mixedSource) Next() (blockdev.Request, bool) {
	if s.n >= s.max {
		return blockdev.Request{}, false
	}
	ops := [...]blockdev.Op{blockdev.OpRead, blockdev.OpWrite, blockdev.OpTrim}
	req := blockdev.Request{
		Op:  ops[s.n%3],
		Off: (s.n % 8) * blockdev.PageSize,
		Len: blockdev.PageSize * (1 + s.n%2),
	}
	s.n++
	return req, true
}

var _ workload.Source = (*mixedSource)(nil)

// checkBucketsPartition asserts the op buckets sum to the totals — the
// regression for trims landing in Requests/Bytes but in no bucket.
func checkBucketsPartition(t *testing.T, res *Result) {
	t.Helper()
	if got := res.ReadRequests + res.WriteRequests + res.TrimRequests; got != res.Requests {
		t.Fatalf("request buckets %d+%d+%d = %d, total %d",
			res.ReadRequests, res.WriteRequests, res.TrimRequests, got, res.Requests)
	}
	if got := res.ReadBytes + res.WriteBytes + res.TrimBytes; got != res.Bytes {
		t.Fatalf("byte buckets %d+%d+%d = %d, total %d",
			res.ReadBytes, res.WriteBytes, res.TrimBytes, got, res.Bytes)
	}
}

func TestRunCountsTrims(t *testing.T) {
	dev := blockdev.NewMemDevice(1<<20, vtime.Microsecond)
	res, err := Run(dev, []workload.Source{&mixedSource{max: 30}}, Options{Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 30 {
		t.Fatalf("requests %d", res.Requests)
	}
	if res.TrimRequests != 10 {
		t.Fatalf("trim requests %d, want 10", res.TrimRequests)
	}
	if res.TrimBytes == 0 {
		t.Fatal("trim bytes uncounted")
	}
	checkBucketsPartition(t, res)
}

func TestOpenLoopCountsTrims(t *testing.T) {
	dev := blockdev.NewMemDevice(1<<20, vtime.Microsecond)
	src := &mixedSource{max: 30}
	var arrivals []TimedRequest
	for i := 0; ; i++ {
		req, ok := src.Next()
		if !ok {
			break
		}
		arrivals = append(arrivals, TimedRequest{At: vtime.Time(i) * vtime.Time(vtime.Millisecond), Req: req})
	}
	res, err := RunOpenLoop(dev, arrivals, OpenLoopOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrimRequests != 10 || res.Requests != 30 {
		t.Fatalf("trims %d / requests %d", res.TrimRequests, res.Requests)
	}
	checkBucketsPartition(t, res)
}
