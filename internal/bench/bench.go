// Package bench is the experiment runner: it drives a storage system (raw
// device, RAID volume, or cache) with a closed-loop workload in virtual
// time — a fixed number of outstanding request slots, modelling FIO's
// threads × iodepth and the paper's 4-threads-per-trace replayer — and
// reports throughput, latency, and amplification metrics.
package bench

import (
	"container/heap"
	"errors"
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/stats"
	"srccache/internal/vtime"
	"srccache/internal/workload"
)

// System is anything the runner can drive.
type System interface {
	Submit(at vtime.Time, req blockdev.Request) (vtime.Time, error)
	Flush(at vtime.Time) (vtime.Time, error)
}

// Counters is the cache-level accounting every cache implementation
// exposes; the paper's hit-ratio and amplification metrics derive from it.
type Counters struct {
	// Reads/Writes count host requests; ReadHits counts reads served from
	// the cache.
	Reads, Writes int64
	ReadBytes     int64
	WriteBytes    int64
	ReadHits      int64
	ReadHitBytes  int64
	// FillBytes is miss data fetched from primary storage; DestageBytes is
	// dirty data written back to it.
	FillBytes    int64
	DestageBytes int64
	// GCCopyBytes is data moved SSD-to-SSD by cache-level GC (S2S).
	GCCopyBytes int64
	// GCSegments counts segments destaged from the dedicated GC buffer
	// (SeparateGCBuffer mode), i.e. segments holding only GC survivors.
	GCSegments int64
	// MetadataBytes and ParityBytes are cache-layout overhead written to
	// the SSDs.
	MetadataBytes, ParityBytes int64
	// SSDFlushes counts flush commands the cache issued to its SSDs.
	SSDFlushes int64
}

// HitRatio reports read hits over reads, zero when no reads ran.
func (c Counters) HitRatio() float64 {
	if c.Reads == 0 {
		return 0
	}
	return float64(c.ReadHits) / float64(c.Reads)
}

// Cache extends System with the introspection the experiments need.
type Cache interface {
	System
	Counters() Counters
	// CacheDevices returns the SSDs, for device-level traffic accounting.
	CacheDevices() []blockdev.Device
}

// Options configures a run.
type Options struct {
	// Slots is the number of outstanding requests (threads × iodepth);
	// default 4.
	Slots int
	// SlotsPerSource overrides slot allocation when several sources run
	// concurrently: each source gets this many dedicated slots (the
	// paper's "each trace replayed by four threads"). When set, Slots is
	// ignored.
	SlotsPerSource int
	// MaxRequests bounds the total requests issued (0 = until sources
	// end; requires finite sources).
	MaxRequests int64
	// Start is the virtual time the run begins at (preconditioning may
	// have advanced device clocks past zero).
	Start vtime.Time
	// Interleave, when non-nil, runs after each completed request with its
	// completion time — background work (rebuild, scrub) riding along with
	// foreground traffic. A returned time later than the request's
	// completion delays the slot's next request, modeling the background
	// work's device occupancy.
	Interleave func(at vtime.Time) (vtime.Time, error)
}

// Result summarizes a run. The per-op request and byte buckets partition
// the totals: ReadRequests+WriteRequests+TrimRequests == Requests and
// likewise for bytes, so trim-heavy traces can no longer silently
// misattribute throughput to the read/write mix.
type Result struct {
	Requests      int64
	ReadRequests  int64
	WriteRequests int64
	TrimRequests  int64
	Bytes         int64
	ReadBytes     int64
	WriteBytes    int64
	TrimBytes     int64
	Start, End    vtime.Time
	Latency       stats.Histogram
}

// count attributes one submitted request to its op bucket and the totals.
func (r *Result) count(req blockdev.Request) {
	r.Requests++
	r.Bytes += req.Len
	switch req.Op {
	case blockdev.OpRead:
		r.ReadRequests++
		r.ReadBytes += req.Len
	case blockdev.OpWrite:
		r.WriteRequests++
		r.WriteBytes += req.Len
	case blockdev.OpTrim:
		r.TrimRequests++
		r.TrimBytes += req.Len
	}
}

// Makespan is the virtual time the run occupied.
func (r *Result) Makespan() vtime.Duration { return r.End.Sub(r.Start) }

// MBps reports end-to-end throughput in decimal MB/s, the paper's headline
// metric.
func (r *Result) MBps() float64 { return vtime.MBPerSec(r.Bytes, r.Makespan()) }

// IOPS reports requests per second of virtual time.
func (r *Result) IOPS() float64 {
	if r.Makespan() <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Makespan().Seconds()
}

// slotHeap orders outstanding slots by the time they free up.
type slotEvent struct {
	at   vtime.Time
	slot int
}

type slotHeap []slotEvent

func (h slotHeap) Len() int           { return len(h) }
func (h slotHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h slotHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)        { *h = append(*h, x.(slotEvent)) }
func (h *slotHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// Run drives sys with the sources until MaxRequests or exhaustion.
func Run(sys System, sources []workload.Source, opt Options) (*Result, error) {
	if len(sources) == 0 {
		return nil, errors.New("bench: no workload sources")
	}
	perSource := opt.SlotsPerSource
	var slots int
	if perSource > 0 {
		slots = perSource * len(sources)
	} else {
		slots = opt.Slots
		if slots <= 0 {
			slots = 4
		}
		if slots < len(sources) {
			slots = len(sources)
		}
		perSource = slots / len(sources)
		if perSource == 0 {
			perSource = 1
		}
		slots = perSource * len(sources)
	}
	if opt.MaxRequests == 0 {
		// Guard against infinite sources running forever.
		for _, s := range sources {
			if _, inf := s.(*workload.Generator); inf {
				return nil, errors.New("bench: infinite generator requires MaxRequests")
			}
		}
	}

	res := &Result{Start: opt.Start, End: opt.Start}
	h := make(slotHeap, 0, slots)
	for i := 0; i < slots; i++ {
		h = append(h, slotEvent{at: opt.Start, slot: i})
	}
	heap.Init(&h)

	for h.Len() > 0 {
		if opt.MaxRequests > 0 && res.Requests >= opt.MaxRequests {
			break
		}
		ev := heap.Pop(&h).(slotEvent)
		src := sources[ev.slot/perSource]
		req, ok := src.Next()
		if !ok {
			continue // source exhausted: retire the slot
		}
		done, err := sys.Submit(ev.at, req)
		if err != nil {
			return res, fmt.Errorf("bench: %v at %v: %w", req, ev.at, err)
		}
		res.count(req)
		res.Latency.Observe(done.Sub(ev.at))
		if opt.Interleave != nil {
			t, err := opt.Interleave(done)
			if err != nil {
				return res, fmt.Errorf("bench: interleaved work at %v: %w", done, err)
			}
			done = vtime.Max(done, t)
		}
		if done > res.End {
			res.End = done
		}
		heap.Push(&h, slotEvent{at: done, slot: ev.slot})
	}
	return res, nil
}

// SnapshotDevices copies the current stats of each device, for before/after
// traffic deltas.
func SnapshotDevices(devs []blockdev.Device) []blockdev.Stats {
	out := make([]blockdev.Stats, len(devs))
	for i, d := range devs {
		out[i] = *d.Stats()
	}
	return out
}

// DeltaBytes sums read+write traffic accumulated since the snapshot.
func DeltaBytes(devs []blockdev.Device, before []blockdev.Stats) int64 {
	var n int64
	for i, d := range devs {
		s := d.Stats()
		n += s.TotalBytes() - before[i].TotalBytes()
	}
	return n
}

// IOAmplification is device traffic per host byte: the paper's metric of
// "observed I/Os at the cache layer divided by actual I/Os requested".
func IOAmplification(hostBytes, deviceBytes int64) float64 {
	if hostBytes == 0 {
		return 0
	}
	return float64(deviceBytes) / float64(hostBytes)
}
