package bench

import (
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
	"srccache/internal/workload"
)

func mustGen(t *testing.T, cfg workload.Config) *workload.Generator {
	t.Helper()
	g, err := workload.NewGenerator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestRunBasicThroughput(t *testing.T) {
	dev := blockdev.NewMemDevice(1<<20, vtime.Millisecond)
	g := mustGen(t, workload.Config{Span: 1 << 20, Seed: 1})
	res, err := Run(dev, []workload.Source{g}, Options{Slots: 1, MaxRequests: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 100 || res.WriteRequests != 100 {
		t.Fatalf("requests %d/%d", res.Requests, res.WriteRequests)
	}
	// Single slot, 1 ms per op: makespan exactly 100 ms.
	if res.Makespan() != 100*vtime.Millisecond {
		t.Fatalf("makespan %v", res.Makespan())
	}
	wantMBps := float64(100*blockdev.PageSize) / 0.1 / 1e6
	if got := res.MBps(); got != wantMBps {
		t.Fatalf("MBps %v, want %v", got, wantMBps)
	}
	if res.IOPS() != 1000 {
		t.Fatalf("IOPS %v", res.IOPS())
	}
	if res.Latency.Count() != 100 || res.Latency.Mean() != vtime.Millisecond {
		t.Fatalf("latency count %d mean %v", res.Latency.Count(), res.Latency.Mean())
	}
}

func TestRunRequiresBoundOnInfiniteSource(t *testing.T) {
	dev := blockdev.NewMemDevice(1<<20, 0)
	g := mustGen(t, workload.Config{Span: 1 << 20})
	if _, err := Run(dev, []workload.Source{g}, Options{}); err == nil {
		t.Fatal("accepted unbounded infinite source")
	}
	if _, err := Run(dev, nil, Options{MaxRequests: 1}); err == nil {
		t.Fatal("accepted empty sources")
	}
}

func TestRunFiniteSourceEnds(t *testing.T) {
	dev := blockdev.NewMemDevice(1<<20, vtime.Microsecond)
	g := workload.Limit(mustGen(t, workload.Config{Span: 1 << 20, ReadFraction: 1}), 10)
	res, err := Run(dev, []workload.Source{g}, Options{Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 10 || res.ReadRequests != 10 {
		t.Fatalf("requests %d", res.Requests)
	}
}

func TestRunMultiSourceSlotBinding(t *testing.T) {
	dev := blockdev.NewMemDevice(4<<20, vtime.Microsecond)
	a := workload.Limit(mustGen(t, workload.Config{Span: 1 << 20, Seed: 1}), 50)
	b := workload.Limit(mustGen(t, workload.Config{Span: 1 << 20, Offset: 1 << 20, Seed: 2}), 50)
	res, err := Run(dev, []workload.Source{a, b}, Options{SlotsPerSource: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 100 {
		t.Fatalf("requests %d, want both sources drained", res.Requests)
	}
}

func TestRunStartOffset(t *testing.T) {
	dev := blockdev.NewMemDevice(1<<20, vtime.Millisecond)
	g := mustGen(t, workload.Config{Span: 1 << 20})
	start := vtime.Time(5 * vtime.Second)
	res, err := Run(dev, []workload.Source{g}, Options{Slots: 1, MaxRequests: 10, Start: start})
	if err != nil {
		t.Fatal(err)
	}
	if res.Start != start {
		t.Fatalf("start %v", res.Start)
	}
	if res.Makespan() != 10*vtime.Millisecond {
		t.Fatalf("makespan %v", res.Makespan())
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	dev := blockdev.NewMemDevice(1<<20, 0)
	f := blockdev.NewFaulty(dev)
	f.Fail()
	g := mustGen(t, workload.Config{Span: 1 << 20})
	if _, err := Run(f, []workload.Source{g}, Options{MaxRequests: 5}); err == nil {
		t.Fatal("device failure not propagated")
	}
}

func TestParallelSlotsOverlap(t *testing.T) {
	// A device with internal parallelism would overlap; MemDevice is
	// FIFO, so more slots must NOT reduce makespan, proving the closed
	// loop respects device completion times.
	mk := func(slots int) vtime.Duration {
		dev := blockdev.NewMemDevice(1<<20, vtime.Millisecond)
		g := mustGen(t, workload.Config{Span: 1 << 20, Seed: 3})
		res, err := Run(dev, []workload.Source{g}, Options{Slots: slots, MaxRequests: 50})
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan()
	}
	if mk(8) != mk(1) {
		t.Fatal("FIFO device makespan changed with slot count")
	}
}

func TestCountersHitRatio(t *testing.T) {
	c := Counters{Reads: 10, ReadHits: 7}
	if c.HitRatio() != 0.7 {
		t.Fatalf("hit ratio %v", c.HitRatio())
	}
	if (Counters{}).HitRatio() != 0 {
		t.Fatal("empty counters hit ratio")
	}
}

func TestDeviceSnapshotDelta(t *testing.T) {
	devs := []blockdev.Device{
		blockdev.NewMemDevice(1<<20, 0),
		blockdev.NewMemDevice(1<<20, 0),
	}
	before := SnapshotDevices(devs)
	if _, err := devs[0].Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	if _, err := devs[1].Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: 2 * blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	if got := DeltaBytes(devs, before); got != 3*blockdev.PageSize {
		t.Fatalf("delta %d", got)
	}
	if IOAmplification(2*blockdev.PageSize, 3*blockdev.PageSize) != 1.5 {
		t.Fatal("amplification math wrong")
	}
	if IOAmplification(0, 5) != 0 {
		t.Fatal("zero host bytes should yield zero amplification")
	}
}
