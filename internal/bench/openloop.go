package bench

import (
	"errors"
	"fmt"
	"sort"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Open-loop replay: requests arrive at recorded timestamps regardless of
// completions (the arrival process of a real trace), so response time
// includes queueing behind a saturated device. The closed-loop Run models
// FIO and the paper's as-fast-as-possible replayer; this mode models
// timestamp-faithful replay.

// TimedRequest is one arrival.
type TimedRequest struct {
	At  vtime.Time
	Req blockdev.Request
}

// OpenLoopOptions configures a replay.
type OpenLoopOptions struct {
	// Speedup divides inter-arrival gaps (2 = replay twice as fast);
	// default 1.
	Speedup float64
	// Start offsets the first arrival.
	Start vtime.Time
}

// RunOpenLoop replays the arrivals in timestamp order and returns the
// results, with response time measured from each request's (scaled)
// arrival instant.
func RunOpenLoop(sys System, arrivals []TimedRequest, opt OpenLoopOptions) (*Result, error) {
	if len(arrivals) == 0 {
		return nil, errors.New("bench: no arrivals")
	}
	if opt.Speedup == 0 {
		opt.Speedup = 1
	}
	if opt.Speedup < 0 {
		return nil, fmt.Errorf("bench: negative speedup %v", opt.Speedup)
	}
	if !sort.SliceIsSorted(arrivals, func(i, j int) bool { return arrivals[i].At < arrivals[j].At }) {
		return nil, errors.New("bench: arrivals not in timestamp order")
	}

	base := arrivals[0].At
	res := &Result{Start: opt.Start, End: opt.Start}
	for _, a := range arrivals {
		gap := vtime.Duration(float64(a.At.Sub(base)) / opt.Speedup)
		at := opt.Start.Add(gap)
		done, err := sys.Submit(at, a.Req)
		if err != nil {
			return res, fmt.Errorf("bench: %v at %v: %w", a.Req, at, err)
		}
		res.count(a.Req)
		res.Latency.Observe(done.Sub(at))
		if done > res.End {
			res.End = done
		}
	}
	return res, nil
}
