package bench

import (
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

func arrivalsEvery(gap vtime.Duration, n int) []TimedRequest {
	out := make([]TimedRequest, n)
	for i := range out {
		out[i] = TimedRequest{
			At:  vtime.Time(int64(i) * int64(gap)),
			Req: blockdev.Request{Op: blockdev.OpWrite, Off: int64(i%8) * blockdev.PageSize, Len: blockdev.PageSize},
		}
	}
	return out
}

func TestOpenLoopUnderload(t *testing.T) {
	// Device serves in 1 ms; arrivals every 2 ms: no queueing, latency
	// equals service time.
	dev := blockdev.NewMemDevice(1<<20, vtime.Millisecond)
	res, err := RunOpenLoop(dev, arrivalsEvery(2*vtime.Millisecond, 50), OpenLoopOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 50 {
		t.Fatalf("requests %d", res.Requests)
	}
	if res.Latency.Max() != vtime.Millisecond {
		t.Fatalf("underload max latency %v, want service time", res.Latency.Max())
	}
}

func TestOpenLoopOverloadQueues(t *testing.T) {
	// Arrivals every 0.5 ms against a 1 ms device: the queue grows and
	// late requests see latency far above service time — the behaviour
	// closed-loop replay cannot exhibit.
	dev := blockdev.NewMemDevice(1<<20, vtime.Millisecond)
	res, err := RunOpenLoop(dev, arrivalsEvery(500*vtime.Microsecond, 100), OpenLoopOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Max() < 40*vtime.Millisecond {
		t.Fatalf("overload max latency %v, expected a long queue", res.Latency.Max())
	}
	if res.Latency.Percentile(99) <= res.Latency.Percentile(50) {
		t.Fatal("tail not above median under overload")
	}
}

func TestOpenLoopSpeedup(t *testing.T) {
	dev := blockdev.NewMemDevice(1<<20, vtime.Microsecond)
	slow, err := RunOpenLoop(dev, arrivalsEvery(2*vtime.Millisecond, 20), OpenLoopOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dev2 := blockdev.NewMemDevice(1<<20, vtime.Microsecond)
	fast, err := RunOpenLoop(dev2, arrivalsEvery(2*vtime.Millisecond, 20), OpenLoopOptions{Speedup: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(fast.Makespan() < slow.Makespan()/2) {
		t.Fatalf("speedup 4 makespan %v vs %v", fast.Makespan(), slow.Makespan())
	}
	if fast.MBps() <= slow.MBps() {
		t.Fatal("speedup did not raise offered throughput")
	}
}

func TestOpenLoopValidation(t *testing.T) {
	dev := blockdev.NewMemDevice(1<<20, 0)
	if _, err := RunOpenLoop(dev, nil, OpenLoopOptions{}); err == nil {
		t.Fatal("accepted empty arrivals")
	}
	if _, err := RunOpenLoop(dev, arrivalsEvery(vtime.Millisecond, 5), OpenLoopOptions{Speedup: -1}); err == nil {
		t.Fatal("accepted negative speedup")
	}
	unsorted := arrivalsEvery(vtime.Millisecond, 3)
	unsorted[0], unsorted[2] = unsorted[2], unsorted[0]
	if _, err := RunOpenLoop(dev, unsorted, OpenLoopOptions{}); err == nil {
		t.Fatal("accepted unsorted arrivals")
	}
}

func TestOpenLoopStartOffset(t *testing.T) {
	dev := blockdev.NewMemDevice(1<<20, vtime.Millisecond)
	start := vtime.Time(vtime.Second)
	res, err := RunOpenLoop(dev, arrivalsEvery(2*vtime.Millisecond, 5), OpenLoopOptions{Start: start})
	if err != nil {
		t.Fatal(err)
	}
	if res.Start != start || res.End <= start {
		t.Fatalf("start %v end %v", res.Start, res.End)
	}
}
