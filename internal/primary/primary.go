// Package primary models the paper's primary storage (Table 1): a RAID-10
// volume of 7.2K RPM hard disks reached over a 1 Gbps network link (the
// iSCSI path). It is the durable home of all data; the SSD cache layers sit
// in front of it and verify content against its store.
package primary

import (
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/hdd"
	"srccache/internal/netlink"
	"srccache/internal/raid"
	"srccache/internal/vtime"
)

// Config describes the backend volume.
type Config struct {
	// Disks is the number of member drives (default 8, must be even).
	Disks int
	// DiskCapacity is the per-drive size in bytes (default 2 GiB scaled;
	// the paper used 2 TB drives).
	DiskCapacity int64
	// ChunkSize is the RAID-10 stripe chunk (default 64 KiB).
	ChunkSize int64
	// Link describes the network path (default 1 Gbps, 200 µs RTT).
	Link netlink.Config
	// Disk optionally overrides the drive model (Capacity is ignored in
	// favour of DiskCapacity).
	Disk hdd.Config
}

// Validate fills defaults.
func (c Config) Validate() (Config, error) {
	if c.Disks == 0 {
		c.Disks = 8
	}
	if c.Disks < 2 || c.Disks%2 != 0 {
		return c, fmt.Errorf("primary: disk count %d must be even and at least 2", c.Disks)
	}
	if c.DiskCapacity == 0 {
		c.DiskCapacity = 2 << 30
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 64 << 10
	}
	return c, nil
}

// Storage is the network-attached backend volume.
type Storage struct {
	cfg   Config
	link  *netlink.Link
	array *raid.Array
	stats blockdev.Stats
}

var _ blockdev.Device = (*Storage)(nil)

// New builds the backend volume.
func New(cfg Config) (*Storage, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	link, err := netlink.New(cfg.Link)
	if err != nil {
		return nil, err
	}
	devs := make([]blockdev.Device, cfg.Disks)
	for i := range devs {
		diskCfg := cfg.Disk
		diskCfg.Name = fmt.Sprintf("hdd%d", i)
		diskCfg.Capacity = cfg.DiskCapacity
		d, err := hdd.New(diskCfg)
		if err != nil {
			return nil, err
		}
		devs[i] = d
	}
	array, err := raid.New(raid.Level10, cfg.ChunkSize, devs)
	if err != nil {
		return nil, err
	}
	return &Storage{cfg: cfg, link: link, array: array}, nil
}

// Config returns the effective configuration.
func (s *Storage) Config() Config { return s.cfg }

// Capacity reports the usable volume size in bytes.
func (s *Storage) Capacity() int64 { return s.array.Capacity() }

// Stats reports volume-level traffic counters.
func (s *Storage) Stats() *blockdev.Stats { return &s.stats }

// Content exposes the volume's logical content store — the durable oracle
// the cache layers are checked against.
func (s *Storage) Content() *blockdev.Content { return s.array.Content() }

// Array exposes the underlying RAID-10 volume (for rebuild experiments and
// per-disk stats).
func (s *Storage) Array() *raid.Array { return s.array }

// Link exposes the network pipe (for traffic accounting).
func (s *Storage) Link() *netlink.Link { return s.link }

// Submit schedules one request across the network and the disk array.
func (s *Storage) Submit(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	if err := req.Validate(s.Capacity()); err != nil {
		return at, err
	}
	s.stats.Record(req)
	switch req.Op {
	case blockdev.OpWrite:
		// Payload crosses the link, then the array serves it; the
		// acknowledgement is a negligible return message.
		arrive := s.link.Send(at, req.Len)
		done, err := s.array.Submit(arrive, req)
		if err != nil {
			return at, err
		}
		return done.Add(s.link.Config().RTT / 2), nil
	case blockdev.OpRead:
		// Command crosses the link, the array serves it, the payload
		// returns over the receive direction.
		arrive := at.Add(s.link.Config().RTT / 2)
		done, err := s.array.Submit(arrive, req)
		if err != nil {
			return at, err
		}
		return s.link.Recv(done, req.Len), nil
	default: // trim
		arrive := at.Add(s.link.Config().RTT / 2)
		done, err := s.array.Submit(arrive, req)
		if err != nil {
			return at, err
		}
		return done.Add(s.link.Config().RTT / 2), nil
	}
}

// Flush forwards to the disk array.
func (s *Storage) Flush(at vtime.Time) (vtime.Time, error) {
	s.stats.Flushes++
	done, err := s.array.Flush(at.Add(s.link.Config().RTT / 2))
	if err != nil {
		return at, err
	}
	return done.Add(s.link.Config().RTT / 2), nil
}
