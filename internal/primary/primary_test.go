package primary

import (
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

func newStorage(t *testing.T) *Storage {
	t.Helper()
	s, err := New(Config{DiskCapacity: 256 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Disks: 3}); err == nil {
		t.Fatal("accepted odd disk count")
	}
	s := newStorage(t)
	if s.Config().Disks != 8 || s.Config().ChunkSize != 64<<10 {
		t.Fatalf("defaults %+v", s.Config())
	}
	// RAID-10 of 8 disks: usable capacity is half the raw space.
	if s.Capacity() != 4*(256<<20) {
		t.Fatalf("capacity %d", s.Capacity())
	}
}

func TestWriteCrossesLinkThenDisks(t *testing.T) {
	s := newStorage(t)
	n := int64(1 << 20)
	done, err := s.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: n})
	if err != nil {
		t.Fatal(err)
	}
	// At the very least the payload must cross the 125 MB/s link.
	linkTime := vtime.TransferTime(n, s.Link().Config().Bandwidth)
	if done < vtime.Time(linkTime) {
		t.Fatalf("write done %v faster than link alone %v", done, linkTime)
	}
	if s.Link().SentBytes() != n {
		t.Fatalf("link sent %d", s.Link().SentBytes())
	}
	// Mirrored writes: the disks received 2x the payload.
	var diskBytes int64
	for _, d := range s.Array().Devices() {
		diskBytes += d.Stats().WriteBytes
	}
	if diskBytes != 2*n {
		t.Fatalf("disk write bytes %d, want %d", diskBytes, 2*n)
	}
}

func TestReadReturnsOverLink(t *testing.T) {
	s := newStorage(t)
	n := int64(1 << 20)
	done, err := s.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: 0, Len: n})
	if err != nil {
		t.Fatal(err)
	}
	if s.Link().RecvBytes() != n {
		t.Fatalf("link received %d", s.Link().RecvBytes())
	}
	if done <= 0 {
		t.Fatal("read completed instantly")
	}
}

func TestRandomSmallWritesAreSlow(t *testing.T) {
	s := newStorage(t)
	// 64 random 4K writes spread across the volume: seek-bound, so the
	// achieved rate must be far below the link rate.
	var at vtime.Time
	var err error
	n := int64(64)
	stride := s.Capacity() / n
	stride -= stride % blockdev.PageSize
	for i := int64(0); i < n; i++ {
		at, err = s.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: i * stride, Len: blockdev.PageSize})
		if err != nil {
			t.Fatal(err)
		}
	}
	rate := vtime.Rate(n*blockdev.PageSize, at.Sub(0))
	if rate > 30e6 {
		t.Fatalf("random 4K write rate %.1f MB/s, expected seek-bound (<30 MB/s)", rate/1e6)
	}
}

func TestSequentialLargeWritesAreLinkBound(t *testing.T) {
	s := newStorage(t)
	var at vtime.Time
	var err error
	total := int64(64 << 20)
	chunk := int64(1 << 20)
	for off := int64(0); off < total; off += chunk {
		at, err = s.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: off, Len: chunk})
		if err != nil {
			t.Fatal(err)
		}
	}
	rate := vtime.Rate(total, at.Sub(0))
	bw := s.Link().Config().Bandwidth
	if rate > bw*1.05 {
		t.Fatalf("sequential rate %.1f MB/s exceeds link %.1f MB/s", rate/1e6, bw/1e6)
	}
	if rate < bw*0.5 {
		t.Fatalf("sequential rate %.1f MB/s far below link %.1f MB/s", rate/1e6, bw/1e6)
	}
}

func TestFlushForwards(t *testing.T) {
	s := newStorage(t)
	if _, err := s.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(0); err != nil {
		t.Fatal(err)
	}
	if s.Stats().Flushes != 1 {
		t.Fatalf("stats %+v", s.Stats())
	}
}

func TestTrimForwardsToArray(t *testing.T) {
	s := newStorage(t)
	done, err := s.Submit(0, blockdev.Request{Op: blockdev.OpTrim, Off: 0, Len: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("trim completed instantly despite the link RTT")
	}
	var trims int64
	for _, d := range s.Array().Devices() {
		trims += d.Stats().TrimOps
	}
	if trims == 0 {
		t.Fatal("trim not forwarded to disks")
	}
}

func TestRequestValidation(t *testing.T) {
	s := newStorage(t)
	if _, err := s.Submit(0, blockdev.Request{Op: blockdev.OpRead, Off: s.Capacity(), Len: blockdev.PageSize}); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if _, err := s.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 1, Len: blockdev.PageSize}); err == nil {
		t.Fatal("unaligned write accepted")
	}
}

func TestContentIsDurableOracle(t *testing.T) {
	s := newStorage(t)
	tag := blockdev.DataTag(9, 2)
	if err := s.Content().WriteTag(9, tag); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(0); err != nil {
		t.Fatal(err)
	}
	s.Content().Crash()
	got, err := s.Content().ReadTag(9)
	if err != nil {
		t.Fatal(err)
	}
	if got != tag {
		t.Fatal("flushed primary content lost on crash")
	}
}
