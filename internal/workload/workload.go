// Package workload generates block I/O request streams: an FIO-like
// synthetic generator (uniform random, sequential, Zipfian, hotspot
// patterns with configurable read fraction and request size), used by the
// benchmark runner to reproduce the paper's FIO experiments and as the
// substrate for synthetic trace generation.
package workload

import (
	"fmt"
	"math/rand"

	"srccache/internal/blockdev"
)

// Source yields requests for the closed-loop runner. Next returns ok=false
// when the stream is exhausted (synthetic generators are infinite; trace
// replays end).
type Source interface {
	Next() (blockdev.Request, bool)
}

// Pattern selects the access-offset distribution.
type Pattern int

// Supported patterns.
const (
	// UniformRandom picks offsets uniformly over the span (FIO's default
	// "randwrite"/"randread" distribution used in Tables 2 and 3).
	UniformRandom Pattern = iota + 1
	// Sequential walks the span in order, wrapping at the end.
	Sequential
	// Zipf skews accesses with exponent Theta.
	Zipf
	// Hotspot sends HotFraction of accesses to the first HotSpan bytes.
	Hotspot
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case UniformRandom:
		return "uniform"
	case Sequential:
		return "sequential"
	case Zipf:
		return "zipfian"
	case Hotspot:
		return "hotspot"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Config describes a generator.
type Config struct {
	// Pattern is the offset distribution (default UniformRandom).
	Pattern Pattern
	// Span is the addressable byte range (required, page-aligned).
	Span int64
	// Offset shifts the range start (default 0).
	Offset int64
	// RequestBytes is the fixed request size (default 4 KiB).
	RequestBytes int64
	// ReadFraction is the probability a request is a read (default 0).
	ReadFraction float64
	// Theta is the Zipfian exponent (default 0.99).
	Theta float64
	// HotFraction/HotSpanFraction parameterize Hotspot: HotFraction of
	// requests target the first HotSpanFraction of the span (defaults
	// 0.8/0.2).
	HotFraction     float64
	HotSpanFraction float64
	// Seed makes the stream deterministic.
	Seed int64
}

// Validate fills defaults and checks invariants.
func (c Config) Validate() (Config, error) {
	if c.Pattern == 0 {
		c.Pattern = UniformRandom
	}
	if c.RequestBytes == 0 {
		c.RequestBytes = blockdev.PageSize
	}
	if c.RequestBytes%blockdev.PageSize != 0 || c.RequestBytes <= 0 {
		return c, fmt.Errorf("workload: request size %d must be a positive page multiple", c.RequestBytes)
	}
	if c.Span < c.RequestBytes {
		return c, fmt.Errorf("workload: span %d smaller than request size %d", c.Span, c.RequestBytes)
	}
	if c.Span%blockdev.PageSize != 0 || c.Offset%blockdev.PageSize != 0 || c.Offset < 0 {
		return c, fmt.Errorf("workload: span %d / offset %d must be page-aligned", c.Span, c.Offset)
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		return c, fmt.Errorf("workload: read fraction %v out of [0,1]", c.ReadFraction)
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
	if c.HotFraction == 0 {
		c.HotFraction = 0.8
	}
	if c.HotSpanFraction == 0 {
		c.HotSpanFraction = 0.2
	}
	return c, nil
}

// Generator is an infinite Source.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	zipf *Zipfian
	next int64 // sequential cursor, in slots
}

var _ Source = (*Generator)(nil)

// NewGenerator builds a generator from cfg.
func NewGenerator(cfg Config) (*Generator, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	if cfg.Pattern == Zipf {
		g.zipf = NewZipfian(g.rng, g.slots(), cfg.Theta)
	}
	return g, nil
}

// slots reports how many request-aligned positions fit in the span.
func (g *Generator) slots() int64 { return g.cfg.Span / g.cfg.RequestBytes }

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }

// Next yields the next request; a Generator never ends.
func (g *Generator) Next() (blockdev.Request, bool) {
	var slot int64
	switch g.cfg.Pattern {
	case Sequential:
		slot = g.next
		g.next = (g.next + 1) % g.slots()
	case Zipf:
		slot = g.zipf.Next()
	case Hotspot:
		hotSlots := int64(float64(g.slots()) * g.cfg.HotSpanFraction)
		if hotSlots < 1 {
			hotSlots = 1
		}
		if g.rng.Float64() < g.cfg.HotFraction {
			slot = g.rng.Int63n(hotSlots)
		} else if g.slots() > hotSlots {
			slot = hotSlots + g.rng.Int63n(g.slots()-hotSlots)
		}
	default: // UniformRandom
		slot = g.rng.Int63n(g.slots())
	}
	op := blockdev.OpWrite
	if g.cfg.ReadFraction > 0 && g.rng.Float64() < g.cfg.ReadFraction {
		op = blockdev.OpRead
	}
	return blockdev.Request{
		Op:  op,
		Off: g.cfg.Offset + slot*g.cfg.RequestBytes,
		Len: g.cfg.RequestBytes,
	}, true
}

// Limited wraps a Source, ending it after n requests.
type Limited struct {
	src  Source
	left int64
}

var _ Source = (*Limited)(nil)

// Limit returns a Source that ends after n requests from src.
func Limit(src Source, n int64) *Limited { return &Limited{src: src, left: n} }

// Next forwards to the wrapped source until the budget is spent.
func (l *Limited) Next() (blockdev.Request, bool) {
	if l.left <= 0 {
		return blockdev.Request{}, false
	}
	l.left--
	return l.src.Next()
}
