package workload

import (
	"math"
	"math/rand"
	"testing"

	"srccache/internal/blockdev"
)

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero span", Config{Span: 0}},
		{"span below request", Config{Span: blockdev.PageSize, RequestBytes: 2 * blockdev.PageSize}},
		{"unaligned request", Config{Span: 1 << 20, RequestBytes: 100}},
		{"unaligned offset", Config{Span: 1 << 20, Offset: 3}},
		{"bad read fraction", Config{Span: 1 << 20, ReadFraction: 1.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewGenerator(tt.cfg); err == nil {
				t.Fatal("accepted invalid config")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Generator {
		g, err := NewGenerator(Config{Span: 1 << 20, Seed: 42, ReadFraction: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		ra, _ := a.Next()
		rb, _ := b.Next()
		if ra != rb {
			t.Fatalf("streams diverge at %d: %v vs %v", i, ra, rb)
		}
	}
}

func TestSequentialWraps(t *testing.T) {
	g, err := NewGenerator(Config{Pattern: Sequential, Span: 4 * blockdev.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	var offs []int64
	for i := 0; i < 5; i++ {
		r, ok := g.Next()
		if !ok {
			t.Fatal("generator ended")
		}
		offs = append(offs, r.Off)
	}
	want := []int64{0, 4096, 8192, 12288, 0}
	for i := range want {
		if offs[i] != want[i] {
			t.Fatalf("offsets %v, want %v", offs, want)
		}
	}
}

func TestReadFraction(t *testing.T) {
	g, err := NewGenerator(Config{Span: 1 << 20, ReadFraction: 0.7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	reads := 0
	const n = 10000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		if r.Op == blockdev.OpRead {
			reads++
		}
	}
	frac := float64(reads) / n
	if math.Abs(frac-0.7) > 0.03 {
		t.Fatalf("read fraction %.3f, want ~0.7", frac)
	}
}

func TestRequestsStayInRange(t *testing.T) {
	for _, p := range []Pattern{UniformRandom, Sequential, Zipf, Hotspot} {
		g, err := NewGenerator(Config{
			Pattern: p, Span: 1 << 20, Offset: 1 << 20, RequestBytes: 8192, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			r, _ := g.Next()
			if r.Off < 1<<20 || r.Off+r.Len > 2<<20 {
				t.Fatalf("%v: request %v outside [1MiB, 2MiB)", p, r)
			}
			if r.Off%8192 != 0 {
				t.Fatalf("%v: request %v not aligned to request size", p, r)
			}
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := NewZipfian(rng, 100000, 0.99)
	counts := make(map[int64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Top item should receive far more than uniform share (0.001%).
	if counts[0] < n/100 {
		t.Fatalf("rank 0 got %d of %d samples, expected heavy skew", counts[0], n)
	}
	// The top 1% of items should dominate.
	var top int
	for i := int64(0); i < 1000; i++ {
		top += counts[i]
	}
	if float64(top)/n < 0.5 {
		t.Fatalf("top 1%% of items got %.2f of mass, want > 0.5", float64(top)/n)
	}
}

func TestZipfianFallbackTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	z := NewZipfian(rng, 100, 1.5) // invalid theta falls back to 0.99
	if z.theta != 0.99 {
		t.Fatalf("theta %v", z.theta)
	}
	if NewZipfian(rng, 0, 0.5).N() != 1 {
		t.Fatal("n<1 not clamped")
	}
}

func TestZetaTailApproximation(t *testing.T) {
	// Compare the hybrid zeta against the exact sum for a size just above
	// the exact limit.
	n := int64(zetaExactLimit * 2)
	exact := 0.0
	for i := int64(1); i <= n; i++ {
		exact += math.Pow(float64(i), -0.8)
	}
	approx := zeta(n, 0.8)
	if math.Abs(approx-exact)/exact > 0.001 {
		t.Fatalf("zeta approx %.4f vs exact %.4f", approx, exact)
	}
}

func TestHotspotConcentration(t *testing.T) {
	g, err := NewGenerator(Config{Pattern: Hotspot, Span: 1 << 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	span := float64(int64(1 << 20))
	hotLimit := int64(span * 0.2)
	hot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		r, _ := g.Next()
		if r.Off < hotLimit {
			hot++
		}
	}
	frac := float64(hot) / n
	if math.Abs(frac-0.8) > 0.05 {
		t.Fatalf("hot fraction %.3f, want ~0.8", frac)
	}
}

func TestLimit(t *testing.T) {
	g, err := NewGenerator(Config{Span: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	l := Limit(g, 3)
	for i := 0; i < 3; i++ {
		if _, ok := l.Next(); !ok {
			t.Fatalf("ended early at %d", i)
		}
	}
	if _, ok := l.Next(); ok {
		t.Fatal("limited source did not end")
	}
}

func TestPatternStrings(t *testing.T) {
	if UniformRandom.String() != "uniform" || Sequential.String() != "sequential" ||
		Zipf.String() != "zipfian" || Hotspot.String() != "hotspot" {
		t.Fatal("pattern names wrong")
	}
}
