package workload

import (
	"math"
	"math/rand"
)

// Zipfian samples integers in [0, n) with a Zipf distribution of exponent
// theta in (0, 1). It implements the classic Gray et al. / YCSB algorithm,
// which (unlike math/rand.Zipf) supports exponents below one — the range
// real storage-trace skew falls in.
type Zipfian struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // zeta(2, theta)
	rng   *rand.Rand
}

// NewZipfian builds a sampler over [0, n) with exponent theta. Exponents
// outside (0, 1) fall back to the conventional 0.99.
func NewZipfian(rng *rand.Rand, n int64, theta float64) *Zipfian {
	if n < 1 {
		n = 1
	}
	if theta <= 0 || theta >= 1 {
		theta = 0.99
	}
	z := &Zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.half = zeta(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.half/z.zetan)
	return z
}

// N reports the sampler's range.
func (z *Zipfian) N() int64 { return z.n }

// Next draws one sample.
func (z *Zipfian) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// zetaExactLimit bounds the exact harmonic summation; beyond it the tail is
// integrated analytically, which keeps construction O(1) for multi-million
// page footprints with negligible error.
const zetaExactLimit = 10000

func zeta(n int64, theta float64) float64 {
	limit := n
	if limit > zetaExactLimit {
		limit = zetaExactLimit
	}
	var sum float64
	for i := int64(1); i <= limit; i++ {
		sum += math.Pow(float64(i), -theta)
	}
	if n > limit {
		// Tail integral of x^-theta from limit to n (midpoint-shifted).
		om := 1 - theta
		sum += (math.Pow(float64(n)+0.5, om) - math.Pow(float64(limit)+0.5, om)) / om
	}
	return sum
}
