// Package bcachesim reproduces the behaviours of Linux's Bcache that the
// paper measures (Section 3.1): a log-structured cache that collects small
// writes and appends them sequentially into buckets, a B+tree-like index
// whose updates are journaled — with a flush command after every journal
// write (the performance killer the paper identifies) — a writeback_percent
// background destager, and in-memory-only metadata for clean data.
//
// Deployed over a RAID-5 cache volume ("Bcache5"), its sequential bucket
// fills dodge most read-modify-write parity work, but the per-journal-write
// flush dominates (paper Figures 1 and 7).
package bcachesim

import (
	"fmt"

	"srccache/internal/bench"
	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// WriteMode selects write-through or write-back caching.
type WriteMode int

// Write modes.
const (
	WriteBack WriteMode = iota + 1
	WriteThrough
)

// String names the mode.
func (m WriteMode) String() string {
	if m == WriteThrough {
		return "write-through"
	}
	return "write-back"
}

// Config assembles a cache.
type Config struct {
	// Cache is the caching volume (one SSD, or a RAID array of them).
	Cache blockdev.Device
	// SSDs lists the physical devices behind Cache for traffic accounting
	// (defaults to [Cache]).
	SSDs []blockdev.Device
	// Primary is the backing store.
	Primary blockdev.Device
	// BucketBytes is the bucket size (default 2 MiB, the paper's
	// comparison setting; Bcache's default is 4 MiB, range 4 KiB–16 MiB).
	BucketBytes int64
	// JournalBuckets reserves buckets at the start of the volume for the
	// journal (default 8).
	JournalBuckets int
	// WritebackPercent is the dirty fraction (of cache capacity, percent)
	// above which the writeback thread destages immediately (default 10,
	// Bcache's default; the paper's experiments raise it to 90).
	WritebackPercent float64
	// MergeBytes is how much of the sequential bucket-append stream the
	// block layer may merge into one device request (default 512 KiB).
	// Merging is what lets the log-structured layout dodge parity
	// read-modify-write on RAID volumes.
	MergeBytes int64
	// BatchWindow is the journal accumulation window: metadata updates
	// arriving within it of a commit's issue ride in the same journal
	// blocks (default 1 ms).
	BatchWindow vtime.Duration
	// Mode selects write-back (default here, matching the paper's
	// benchmarks) or write-through.
	Mode WriteMode
}

// Validate fills defaults.
func (c Config) Validate() (Config, error) {
	if c.Cache == nil || c.Primary == nil {
		return c, fmt.Errorf("bcachesim: cache and primary devices required")
	}
	if len(c.SSDs) == 0 {
		c.SSDs = []blockdev.Device{c.Cache}
	}
	if c.BucketBytes == 0 {
		c.BucketBytes = 2 << 20
	}
	if c.BucketBytes%blockdev.PageSize != 0 || c.BucketBytes <= 0 {
		return c, fmt.Errorf("bcachesim: bucket size %d must be a positive page multiple", c.BucketBytes)
	}
	if c.Cache.Capacity()%c.BucketBytes != 0 {
		return c, fmt.Errorf("bcachesim: cache capacity %d not a multiple of bucket size %d", c.Cache.Capacity(), c.BucketBytes)
	}
	if c.JournalBuckets == 0 {
		c.JournalBuckets = 8
	}
	if int64(c.JournalBuckets+2)*c.BucketBytes > c.Cache.Capacity() {
		return c, fmt.Errorf("bcachesim: %d journal buckets leave no data space", c.JournalBuckets)
	}
	if c.WritebackPercent == 0 {
		c.WritebackPercent = 10
	}
	if c.WritebackPercent < 0 || c.WritebackPercent > 100 {
		return c, fmt.Errorf("bcachesim: writeback percent %v out of [0,100]", c.WritebackPercent)
	}
	if c.MergeBytes == 0 {
		c.MergeBytes = 512 << 10
	}
	if c.MergeBytes%blockdev.PageSize != 0 || c.MergeBytes < 0 {
		return c, fmt.Errorf("bcachesim: merge size %d must be a non-negative page multiple", c.MergeBytes)
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = vtime.Millisecond
	}
	if c.BatchWindow < 0 {
		return c, fmt.Errorf("bcachesim: negative batch window %v", c.BatchWindow)
	}
	if c.Mode == 0 {
		c.Mode = WriteBack
	}
	return c, nil
}

// bucket tracks occupancy of one data bucket.
type bucket struct {
	used  int64 // pages appended
	valid int64 // pages still referenced
	seq   int64 // fill order
}

// block is the index entry for a cached page.
type block struct {
	off   int64 // byte offset on the cache volume
	dirty bool
}

// Cache is a Bcache-like log-structured cache implementing bench.Cache.
type Cache struct {
	cfg         Config
	bucketPages int64
	numBuckets  int64

	buckets  []bucket
	free     []int64
	open     int64 // bucket being filled, -1 none
	seqCtr   int64
	index    map[int64]block
	rindex   map[int64]int64 // cache page -> lba
	dirty    []int64         // FIFO of dirty lbas for writeback
	dirtyCnt int64

	journalPtr   int64 // next journal page
	commitIssued vtime.Time
	commitDone   vtime.Time

	// pendingOff/pendingLen is the sequential append run not yet submitted
	// to the device (block-layer request merging).
	pendingOff int64
	pendingLen int64

	counters bench.Counters
}

var _ bench.Cache = (*Cache)(nil)

// New builds the cache.
func New(cfg Config) (*Cache, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	numBuckets := cfg.Cache.Capacity()/cfg.BucketBytes - int64(cfg.JournalBuckets)
	c := &Cache{
		cfg:          cfg,
		bucketPages:  cfg.BucketBytes / blockdev.PageSize,
		numBuckets:   numBuckets,
		buckets:      make([]bucket, numBuckets),
		open:         -1,
		index:        make(map[int64]block),
		rindex:       make(map[int64]int64),
		commitIssued: -1,
	}
	for b := numBuckets - 1; b >= 0; b-- {
		c.free = append(c.free, b)
	}
	return c, nil
}

// Config returns the effective configuration.
func (c *Cache) Config() Config { return c.cfg }

// Counters implements bench.Cache.
func (c *Cache) Counters() bench.Counters { return c.counters }

// CacheDevices implements bench.Cache.
func (c *Cache) CacheDevices() []blockdev.Device { return c.cfg.SSDs }

// DirtyPages reports the number of dirty cached pages.
func (c *Cache) DirtyPages() int64 { return c.dirtyCnt }

// dataBase is the byte offset where data buckets start.
func (c *Cache) dataBase() int64 { return int64(c.cfg.JournalBuckets) * c.cfg.BucketBytes }

// bucketOff is the byte offset of page p in data bucket b.
func (c *Cache) bucketOff(b, p int64) int64 {
	return c.dataBase() + b*c.cfg.BucketBytes + p*blockdev.PageSize
}

// capacityPages is the data capacity of the cache in pages.
func (c *Cache) capacityPages() int64 { return c.numBuckets * c.bucketPages }

// journalWriteCost approximates transmitting one journal block; it is
// charged inside the commit rather than queued on the device link, because
// a real journal block batches many entries and coalesces with the
// in-flight commit.
const journalWriteCost = 20 * vtime.Microsecond

// journalCommit makes a metadata update durable: a journal write followed
// by the flush command — Bcache's durability discipline and the bottleneck
// the paper measures (Tables 2 and 3). Commits are group-committed, as in
// the real implementation: updates that arrive before an already-scheduled
// commit is issued ride along with it; later updates wait for the next one.
func (c *Cache) journalCommit(at vtime.Time) (vtime.Time, error) {
	if c.commitIssued >= 0 && at <= c.commitIssued.Add(c.cfg.BatchWindow) {
		return vtime.Max(at, c.commitDone), nil // joins the committing batch
	}
	issueAt := vtime.Max(at, c.commitDone)
	c.journalPtr++
	c.counters.MetadataBytes += blockdev.PageSize
	done, err := c.cfg.Cache.Flush(issueAt.Add(journalWriteCost))
	if err != nil {
		return at, err
	}
	c.counters.SSDFlushes++
	c.commitIssued = issueAt
	c.commitDone = done
	return done, nil
}

// flushPending submits the merged sequential append run, if any.
func (c *Cache) flushPending(at vtime.Time) (vtime.Time, error) {
	if c.pendingLen == 0 {
		return at, nil
	}
	off, n := c.pendingOff, c.pendingLen
	c.pendingOff, c.pendingLen = 0, 0
	return c.cfg.Cache.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: off, Len: n})
}

// inPending reports whether the cache offset lies in the unsubmitted run.
func (c *Cache) inPending(off int64) bool {
	return c.pendingLen > 0 && off >= c.pendingOff && off < c.pendingOff+c.pendingLen
}

// appendPage appends one page into the open bucket, reclaiming a bucket
// when none is open. Consecutive appends are merged into device requests of
// up to MergeBytes (block-layer merging), which is what turns the log
// stream into full-stripe writes on parity RAID. It returns the cache
// offset and completion time.
func (c *Cache) appendPage(at vtime.Time, lba int64, dirty bool) (int64, vtime.Time, error) {
	ready := at
	if c.open < 0 || c.buckets[c.open].used == c.bucketPages {
		t, err := c.flushPending(at) // bucket switch breaks the run
		if err != nil {
			return 0, at, err
		}
		ready = t
		c.open = -1
		if len(c.free) == 0 {
			t, err := c.reclaimBucket(ready)
			if err != nil {
				return 0, at, err
			}
			ready = t
		}
		c.open = c.free[len(c.free)-1]
		c.free = c.free[:len(c.free)-1]
		c.buckets[c.open] = bucket{seq: c.seqCtr}
		c.seqCtr++
	}
	b := &c.buckets[c.open]
	off := c.bucketOff(c.open, b.used)
	b.used++
	b.valid++
	if c.pendingLen > 0 && off == c.pendingOff+c.pendingLen {
		c.pendingLen += blockdev.PageSize
	} else {
		t, err := c.flushPending(ready)
		if err != nil {
			return 0, at, err
		}
		ready = t
		c.pendingOff, c.pendingLen = off, blockdev.PageSize
	}
	done := ready
	if c.pendingLen >= c.cfg.MergeBytes {
		var err error
		done, err = c.flushPending(ready)
		if err != nil {
			return 0, at, err
		}
	}
	// Invalidate any previous copy.
	if old, ok := c.index[lba]; ok {
		c.invalidate(lba, old)
	}
	c.index[lba] = block{off: off, dirty: dirty}
	c.rindex[off/blockdev.PageSize] = lba
	if dirty {
		c.dirtyCnt++
		c.dirty = append(c.dirty, lba)
	}
	return off, done, nil
}

// invalidate drops a cache copy's accounting.
func (c *Cache) invalidate(lba int64, bl block) {
	page := bl.off / blockdev.PageSize
	delete(c.rindex, page)
	b := (bl.off - c.dataBase()) / c.cfg.BucketBytes
	c.buckets[b].valid--
	if bl.dirty {
		c.dirtyCnt--
	}
	delete(c.index, lba)
}

// reclaimBucket invalidates the least-valuable bucket (fewest live pages,
// oldest first), destaging any dirty residents.
func (c *Cache) reclaimBucket(at vtime.Time) (vtime.Time, error) {
	victim := int64(-1)
	for b := int64(0); b < c.numBuckets; b++ {
		if b == c.open || c.buckets[b].used == 0 {
			continue
		}
		if victim < 0 ||
			c.buckets[b].valid < c.buckets[victim].valid ||
			(c.buckets[b].valid == c.buckets[victim].valid && c.buckets[b].seq < c.buckets[victim].seq) {
			victim = b
		}
	}
	if victim < 0 {
		return at, fmt.Errorf("bcachesim: no reclaimable bucket")
	}
	done := at
	for p := int64(0); p < c.buckets[victim].used; p++ {
		off := c.bucketOff(victim, p)
		lba, ok := c.rindex[off/blockdev.PageSize]
		if !ok {
			continue
		}
		bl := c.index[lba]
		if bl.off != off {
			continue
		}
		if bl.dirty {
			t, err := c.destageBlock(at, lba, bl)
			if err != nil {
				return at, err
			}
			done = vtime.Max(done, t)
			bl.dirty = false
		}
		c.invalidate(lba, bl)
	}
	c.buckets[victim] = bucket{}
	c.free = append(c.free, victim)
	return done, nil
}

// destageBlock writes one dirty block back to primary storage.
func (c *Cache) destageBlock(at vtime.Time, lba int64, bl block) (vtime.Time, error) {
	if c.inPending(bl.off) {
		t, err := c.flushPending(at)
		if err != nil {
			return at, err
		}
		at = t
	}
	readDone, err := c.cfg.Cache.Submit(at, blockdev.Request{Op: blockdev.OpRead, Off: bl.off, Len: blockdev.PageSize})
	if err != nil {
		return at, err
	}
	done, err := c.cfg.Primary.Submit(readDone, blockdev.Request{
		Op: blockdev.OpWrite, Off: lba * blockdev.PageSize, Len: blockdev.PageSize,
	})
	if err != nil {
		return at, err
	}
	c.counters.DestageBytes += blockdev.PageSize
	return done, nil
}

// writeback enforces writeback_percent: while the dirty fraction exceeds
// it, the oldest dirty blocks are destaged immediately (paper: "Bcache
// destages dirty data immediately when the dirty data ratio exceeds
// writeback_percent"). The work is charged to the devices, off the
// acknowledgement path.
func (c *Cache) writeback(at vtime.Time) error {
	limit := int64(c.cfg.WritebackPercent / 100 * float64(c.capacityPages()))
	for c.dirtyCnt > limit && len(c.dirty) > 0 {
		lba := c.dirty[0]
		c.dirty = c.dirty[1:]
		bl, ok := c.index[lba]
		if !ok || !bl.dirty {
			continue
		}
		if _, err := c.destageBlock(at, lba, bl); err != nil {
			return err
		}
		bl.dirty = false
		c.index[lba] = bl
		c.dirtyCnt--
	}
	return nil
}

// Submit serves one host request.
func (c *Cache) Submit(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	if err := req.Validate(c.cfg.Primary.Capacity()); err != nil {
		return at, err
	}
	first := req.Off / blockdev.PageSize
	pages := req.Pages()
	done := at
	switch req.Op {
	case blockdev.OpWrite:
		c.counters.Writes += pages
		c.counters.WriteBytes += req.Len
		for p := first; p < first+pages; p++ {
			t, err := c.writePage(at, p)
			if err != nil {
				return done, err
			}
			done = vtime.Max(done, t)
		}
	case blockdev.OpRead:
		c.counters.Reads += pages
		c.counters.ReadBytes += req.Len
		for p := first; p < first+pages; p++ {
			t, err := c.readPage(at, p)
			if err != nil {
				return done, err
			}
			done = vtime.Max(done, t)
		}
	default:
		return c.cfg.Primary.Submit(at, req)
	}
	return done, nil
}

func (c *Cache) writePage(at vtime.Time, lba int64) (vtime.Time, error) {
	if c.cfg.Mode == WriteThrough {
		primDone, err := c.cfg.Primary.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: lba * blockdev.PageSize, Len: blockdev.PageSize})
		if err != nil {
			return at, err
		}
		_, cacheDone, err := c.appendPage(at, lba, false)
		if err != nil {
			return at, err
		}
		jDone, err := c.journalCommit(cacheDone)
		if err != nil {
			return at, err
		}
		return vtime.Max(primDone, jDone), nil
	}
	// Write-back: data lands in a bucket, then the metadata update is
	// journaled with a flush (paper: "Bcache first writes dirty data to
	// the cache, and then logs metadata into the journal area with a
	// flush command").
	_, dataDone, err := c.appendPage(at, lba, true)
	if err != nil {
		return at, err
	}
	done, err := c.journalCommit(dataDone)
	if err != nil {
		return at, err
	}
	if err := c.writeback(done); err != nil {
		return done, err
	}
	return done, nil
}

func (c *Cache) readPage(at vtime.Time, lba int64) (vtime.Time, error) {
	if bl, ok := c.index[lba]; ok {
		c.counters.ReadHits++
		c.counters.ReadHitBytes += blockdev.PageSize
		if c.inPending(bl.off) {
			return at, nil // still in the merged run: served from memory
		}
		return c.cfg.Cache.Submit(at, blockdev.Request{Op: blockdev.OpRead, Off: bl.off, Len: blockdev.PageSize})
	}
	done, err := c.cfg.Primary.Submit(at, blockdev.Request{Op: blockdev.OpRead, Off: lba * blockdev.PageSize, Len: blockdev.PageSize})
	if err != nil {
		return at, err
	}
	c.counters.FillBytes += blockdev.PageSize
	// Clean insert: data appended, metadata in memory only (clean data
	// disappears on power failure — paper Table 5).
	if _, _, err := c.appendPage(done, lba, false); err != nil {
		return done, err
	}
	return done, nil
}

// Flush submits any merged run, then journals and flushes — Bcache honours
// flush commands.
func (c *Cache) Flush(at vtime.Time) (vtime.Time, error) {
	t, err := c.flushPending(at)
	if err != nil {
		return at, err
	}
	return c.journalCommit(t)
}
