package bcachesim

import (
	"math/rand"
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

const (
	cacheCap    = 8 << 20
	primCap     = 64 << 20
	bucketBytes = 64 << 10
)

type env struct {
	cache *Cache
	dev   *blockdev.MemDevice
	prim  *blockdev.MemDevice
	at    vtime.Time
	t     *testing.T
}

func newEnv(t *testing.T, mutate func(*Config)) *env {
	t.Helper()
	dev := blockdev.NewMemDevice(cacheCap, 10*vtime.Microsecond)
	prim := blockdev.NewMemDevice(primCap, vtime.Millisecond)
	// BatchWindow of 1 ns keeps sequential unit tests deterministic (every
	// non-concurrent commit is separate); the group-commit test builds its
	// own cache with the default window.
	cfg := Config{Cache: dev, Primary: prim, BucketBytes: bucketBytes, WritebackPercent: 90, BatchWindow: 1}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &env{cache: c, dev: dev, prim: prim, t: t}
}

func (e *env) submit(op blockdev.Op, lba, pages int64) vtime.Duration {
	e.t.Helper()
	done, err := e.cache.Submit(e.at, blockdev.Request{Op: op, Off: lba * blockdev.PageSize, Len: pages * blockdev.PageSize})
	if err != nil {
		e.t.Fatalf("%v lba %d: %v", op, lba, err)
	}
	lat := done.Sub(e.at)
	e.at = vtime.Max(e.at, done)
	return lat
}

func TestValidation(t *testing.T) {
	dev := blockdev.NewMemDevice(cacheCap, 0)
	prim := blockdev.NewMemDevice(primCap, 0)
	if _, err := New(Config{Primary: prim}); err == nil {
		t.Fatal("accepted missing cache")
	}
	if _, err := New(Config{Cache: dev, Primary: prim, BucketBytes: 100}); err == nil {
		t.Fatal("accepted unaligned bucket")
	}
	if _, err := New(Config{Cache: dev, Primary: prim, BucketBytes: 1 << 20, JournalBuckets: 8}); err == nil {
		t.Fatal("accepted journal eating the cache")
	}
	big := blockdev.NewMemDevice(64<<20, 0)
	c, err := New(Config{Cache: big, Primary: prim})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().BucketBytes != 2<<20 || c.Config().WritebackPercent != 10 {
		t.Fatalf("defaults %+v", c.Config())
	}
}

func TestEveryWriteJournalsWithFlush(t *testing.T) {
	e := newEnv(t, nil)
	e.submit(blockdev.OpWrite, 5, 1)
	if e.dev.Stats().Flushes != 1 {
		t.Fatalf("flushes %d, Bcache flushes per journal commit", e.dev.Stats().Flushes)
	}
	// Data rides in the merged pending run until MergeBytes accumulate;
	// the journal commit is what hits the device immediately.
	if e.dev.Stats().WriteOps != 0 {
		t.Fatalf("cache data writes %d, expected data still merging", e.dev.Stats().WriteOps)
	}
	// Sequential (non-overlapping) writes each commit separately.
	e.submit(blockdev.OpWrite, 6, 1)
	if e.dev.Stats().Flushes != 2 {
		t.Fatal("second write did not flush")
	}
	if e.cache.Counters().SSDFlushes != 2 {
		t.Fatalf("counters %+v", e.cache.Counters())
	}
}

// flushCostDevice wraps MemDevice with an expensive flush, so commit
// batching is observable.
type flushCostDevice struct {
	*blockdev.MemDevice
	cost vtime.Duration
}

func (d *flushCostDevice) Flush(at vtime.Time) (vtime.Time, error) {
	done, err := d.MemDevice.Flush(at)
	return done.Add(d.cost), err
}

func TestJournalGroupCommitBatchesConcurrentWrites(t *testing.T) {
	dev := &flushCostDevice{
		MemDevice: blockdev.NewMemDevice(cacheCap, 10*vtime.Microsecond),
		cost:      2 * vtime.Millisecond,
	}
	prim := blockdev.NewMemDevice(primCap, vtime.Millisecond)
	c, err := New(Config{Cache: dev, Primary: prim, BucketBytes: bucketBytes, WritebackPercent: 90})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().BatchWindow != vtime.Millisecond {
		t.Fatalf("default batch window %v", c.Config().BatchWindow)
	}
	// First write opens a commit window; writes whose data lands before
	// the window's issue point (the previous commit's completion) share
	// one flush.
	done1, err := c.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	flushesAfterFirst := dev.Stats().Flushes
	for i := int64(2); i < 10; i++ {
		if _, err := c.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: i * blockdev.PageSize, Len: blockdev.PageSize}); err != nil {
			t.Fatal(err)
		}
	}
	extra := dev.Stats().Flushes - flushesAfterFirst
	if extra > 2 {
		t.Fatalf("8 concurrent writes issued %d extra flushes, want group commit", extra)
	}
	if done1 < vtime.Time(2*vtime.Millisecond) {
		t.Fatalf("commit done at %v, cheaper than the flush cost", done1)
	}
}

func TestWritesAppendSequentiallyIntoBucket(t *testing.T) {
	e := newEnv(t, nil)
	rng := rand.New(rand.NewSource(1))
	// Random LBAs still land sequentially in the open bucket.
	var offs []int64
	for i := 0; i < 8; i++ {
		lba := rng.Int63n(4096)
		e.submit(blockdev.OpWrite, lba, 1)
		bl := e.cache.index[lba]
		offs = append(offs, bl.off)
	}
	for i := 1; i < len(offs); i++ {
		if offs[i] != offs[i-1]+blockdev.PageSize {
			t.Fatalf("appends not sequential: %v", offs)
		}
	}
}

func TestOverwriteInvalidatesOldCopy(t *testing.T) {
	e := newEnv(t, nil)
	e.submit(blockdev.OpWrite, 5, 1)
	first := e.cache.index[5].off
	e.submit(blockdev.OpWrite, 5, 1)
	second := e.cache.index[5].off
	if first == second {
		t.Fatal("log-structured cache overwrote in place")
	}
	if e.cache.DirtyPages() != 1 {
		t.Fatalf("dirty pages %d after overwrite", e.cache.DirtyPages())
	}
}

func TestReadMissInsertsCleanWithoutJournal(t *testing.T) {
	e := newEnv(t, nil)
	flushes := e.dev.Stats().Flushes
	if lat := e.submit(blockdev.OpRead, 9, 1); lat < vtime.Millisecond {
		t.Fatalf("miss latency %v", lat)
	}
	if e.dev.Stats().Flushes != flushes {
		t.Fatal("clean insert journaled")
	}
	if lat := e.submit(blockdev.OpRead, 9, 1); lat >= vtime.Millisecond {
		t.Fatalf("hit latency %v", lat)
	}
	if e.cache.Counters().ReadHits != 1 {
		t.Fatalf("counters %+v", e.cache.Counters())
	}
}

func TestBucketReclaimDestagesDirty(t *testing.T) {
	e := newEnv(t, nil)
	pages := e.cache.capacityPages()
	// Fill the whole cache with dirty data and keep writing: reclaim must
	// destage.
	for lba := int64(0); lba < pages+e.cache.bucketPages; lba++ {
		e.submit(blockdev.OpWrite, lba, 1)
	}
	if e.cache.Counters().DestageBytes == 0 {
		t.Fatal("reclaim never destaged")
	}
	if e.prim.Stats().WriteOps == 0 {
		t.Fatal("primary saw no destage")
	}
}

func TestWritebackPercentDestagesEagerly(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.WritebackPercent = 5 })
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		e.submit(blockdev.OpWrite, rng.Int63n(8192), 1)
	}
	limit := int64(float64(e.cache.capacityPages()) * 0.05)
	if e.cache.DirtyPages() > limit+1 {
		t.Fatalf("dirty pages %d above writeback_percent limit %d", e.cache.DirtyPages(), limit)
	}
}

func TestFlushJournalsAndFlushes(t *testing.T) {
	e := newEnv(t, nil)
	flushes := e.dev.Stats().Flushes
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	if e.dev.Stats().Flushes != flushes+1 {
		t.Fatal("Flush did not flush the device")
	}
}

func TestWriteThroughSlower(t *testing.T) {
	run := func(mode WriteMode) vtime.Time {
		e := newEnv(t, func(c *Config) { c.Mode = mode })
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 300; i++ {
			e.submit(blockdev.OpWrite, rng.Int63n(1024), 1)
		}
		return e.at
	}
	wb, wt := run(WriteBack), run(WriteThrough)
	if !(wt > wb) {
		t.Fatalf("write-through (%v) not slower than write-back (%v)", wt, wb)
	}
}

func TestModeStrings(t *testing.T) {
	if WriteBack.String() != "write-back" || WriteThrough.String() != "write-through" {
		t.Fatal("mode names")
	}
}

func TestMergeValidation(t *testing.T) {
	dev := blockdev.NewMemDevice(cacheCap, 0)
	prim := blockdev.NewMemDevice(primCap, 0)
	if _, err := New(Config{Cache: dev, Primary: prim, BucketBytes: bucketBytes, MergeBytes: 100}); err == nil {
		t.Fatal("unaligned merge size accepted")
	}
	if _, err := New(Config{Cache: dev, Primary: prim, BucketBytes: bucketBytes, BatchWindow: -1}); err == nil {
		t.Fatal("negative batch window accepted")
	}
}

func TestPendingRunServesReadsFromMemory(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.MergeBytes = 64 << 10 })
	e.submit(blockdev.OpWrite, 5, 1)
	reads := e.dev.Stats().ReadOps
	// The data is still in the merged pending run: a read hit costs no
	// device read.
	if lat := e.submit(blockdev.OpRead, 5, 1); lat != 0 {
		t.Fatalf("pending-run read latency %v", lat)
	}
	if e.dev.Stats().ReadOps != reads {
		t.Fatal("pending-run read touched the device")
	}
}

func TestTrimForwarded(t *testing.T) {
	e := newEnv(t, nil)
	e.submit(blockdev.OpTrim, 0, 4)
	if e.prim.Stats().TrimOps != 1 {
		t.Fatal("trim not forwarded to primary")
	}
}
