// Package src implements SRC (SSD RAID as a Cache), the paper's primary
// contribution: a write-back, log-structured, RAID-protected block cache
// over an array of commodity SSDs (Section 4).
//
// Cache space is organized into Segment Groups (SGs) sized to the array's
// erase group; each SG is divided into segments striped as one column per
// SSD. Dirty and clean data collect in separate in-RAM segment buffers and
// are written as whole segments — data, per-SSD metadata blocks (MS at the
// column start, ME at the end), and parity — into the single active SG, so
// parity never needs read-modify-write. Free space is reclaimed either by
// destaging to primary storage (S2D) or by copying live data between SSDs
// (Sel-GC, chosen by utilization and hotness). Clean data may be striped
// without parity (NPC mode) since it can always be re-fetched from primary
// storage.
package src

import (
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// GCPolicy selects how free Segment Groups are produced (paper §4.2).
type GCPolicy int

// GC policies.
const (
	// S2D destages dirty data to primary storage and drops clean data.
	S2D GCPolicy = iota + 1
	// SelGC copies dirty and hot clean data SSD-to-SSD while utilization
	// is below UMax, falling back to S2D above it.
	SelGC
)

// String names the policy as in the paper.
func (p GCPolicy) String() string {
	switch p {
	case S2D:
		return "S2D"
	case SelGC:
		return "Sel-GC"
	default:
		return fmt.Sprintf("gc(%d)", int(p))
	}
}

// VictimPolicy selects the Segment Group to reclaim.
type VictimPolicy int

// Victim policies.
const (
	// FIFO reclaims groups in the order they were filled.
	FIFO VictimPolicy = iota + 1
	// Greedy reclaims the least-utilized group.
	Greedy
	// CostBenefit weighs free space against age, LFS-style
	// (benefit/cost = age x (1-u) / (1+u)) — one of the "other victim SG
	// selection policies" the paper lists as future work (§6).
	CostBenefit
)

// String names the policy.
func (p VictimPolicy) String() string {
	switch p {
	case FIFO:
		return "FIFO"
	case Greedy:
		return "Greedy"
	case CostBenefit:
		return "Cost-Benefit"
	default:
		return fmt.Sprintf("victim(%d)", int(p))
	}
}

// ParityMode controls redundancy for clean data (paper §4.3).
type ParityMode int

// Parity modes.
const (
	// PC (Parity for Clean) protects clean segments with parity too.
	PC ParityMode = iota + 1
	// NPC (No-Parity for Clean) stripes clean segments without parity;
	// clean data lost to an SSD failure is re-fetched from primary.
	NPC
)

// String names the mode.
func (p ParityMode) String() string {
	switch p {
	case PC:
		return "PC"
	case NPC:
		return "NPC"
	default:
		return fmt.Sprintf("parity(%d)", int(p))
	}
}

// RAIDLevel selects the cache-level striping (paper Table 7: 0, 4, 5).
type RAIDLevel int

// Cache striping levels.
const (
	RAID0 RAIDLevel = iota + 1
	RAID4
	RAID5
)

// String names the level.
func (l RAIDLevel) String() string {
	switch l {
	case RAID0:
		return "RAID-0"
	case RAID4:
		return "RAID-4"
	case RAID5:
		return "RAID-5"
	default:
		return fmt.Sprintf("raid(%d)", int(l))
	}
}

// FlushPolicy controls when SRC issues flush commands to the SSDs
// (paper §4.1, "flush Command Control").
type FlushPolicy int

// Flush policies.
const (
	// FlushPerSegment flushes after every segment write.
	FlushPerSegment FlushPolicy = iota + 1
	// FlushPerSegmentGroup flushes when the active SG fills (default).
	FlushPerSegmentGroup
	// FlushPerMetadata flushes after every metadata (summary) write, the
	// Bcache-style cadence the paper compares against (§4.1). On SRC's
	// layout every segment write carries its MS/ME summaries, so the
	// cadence coincides with per-segment; it is kept distinct so the
	// torture engine measures the policies the paper names.
	FlushPerMetadata
	// FlushNever issues no flush commands at all, the Flashcache-style
	// baseline: crash durability is whatever the drives' volatile caches
	// happen to have retired. Explicit Cache.Flush calls still drain the
	// RAM buffers but do not reach the SSDs' caches.
	FlushNever
)

// String names the policy.
func (p FlushPolicy) String() string {
	switch p {
	case FlushPerSegment:
		return "per-segment"
	case FlushPerSegmentGroup:
		return "per-segment-group"
	case FlushPerMetadata:
		return "per-metadata"
	case FlushNever:
		return "never"
	default:
		return fmt.Sprintf("flush(%d)", int(p))
	}
}

// Config assembles an SRC cache. The defaults are the paper's Table 7
// bold entries: 256 MB erase groups, Sel-GC with U_MAX 90%, FIFO victims,
// NPC, RAID-5, flush per Segment Group.
type Config struct {
	// SSDs is the cache array, one Device per drive (equal capacities).
	SSDs []blockdev.Device
	// Primary is the backing store the cache fronts.
	Primary blockdev.Device
	// CachePerSSD is the byte region used on each SSD (default: whole
	// device). It must be a multiple of EraseGroupSize and leave at
	// least 4 Segment Groups (one superblock + working room).
	CachePerSSD int64
	// EraseGroupSize is the per-SSD column size of one Segment Group
	// (default 256 MiB, matching the paper's measured erase group).
	EraseGroupSize int64
	// SegmentColumn is the per-SSD column size of one segment (default
	// 512 KiB, the largest transfer unit; a segment is M columns).
	SegmentColumn int64
	// GC selects the reclamation policy (default SelGC).
	GC GCPolicy
	// Victim selects the group to reclaim (default FIFO).
	Victim VictimPolicy
	// UMax is the utilization above which Sel-GC falls back to S2D
	// (default 0.90).
	UMax float64
	// Parity selects clean-data redundancy (default NPC).
	Parity ParityMode
	// Level selects cache striping (default RAID5).
	Level RAIDLevel
	// Flush selects the flush-command cadence (default per Segment Group).
	Flush FlushPolicy
	// TWait is the partial-segment timeout: if no write arrives for TWait,
	// Tick flushes the dirty buffer as a partial segment (default 20 µs,
	// the paper's setting).
	TWait vtime.Duration
	// SeparateGCBuffer gives Sel-GC's S2S dirty copies their own segment
	// buffer, segregating aged (GC-survivor) data from fresh host writes
	// — the hot/cold separation the paper lists as future work (§6).
	SeparateGCBuffer bool
	// TrackContent enables page-tag and metadata-blob bookkeeping on the
	// device content stores, which integrity, recovery and failure tests
	// rely on. Benchmarks leave it off.
	TrackContent bool
	// RetryLimit bounds per-request retries of transient device errors
	// (default 3). When a request still fails transiently after the limit,
	// the cache treats the device as failed for that request and falls back
	// to the degraded path.
	RetryLimit int
	// RetryDelay is the virtual-time backoff before the first retry; it
	// doubles on each further attempt (default 100 µs).
	RetryDelay vtime.Duration
	// ErrorBudget is the md-style per-device corrected-error budget: each
	// transient or unreadable event counts against it, and a device that
	// exhausts it is escalated to column fail-stop (default 20; the same
	// order as md's max_corrected_read_errors).
	ErrorBudget int64
	// Recovery weakens recovery-scan safeguards. Production configurations
	// leave it zero; only the torture engine's planted-violation tests set
	// it, to prove each safeguard is load-bearing.
	Recovery RecoveryHooks
}

// RecoveryHooks selectively disables recovery-scan safeguards so the
// torture engine can verify its invariant checker catches the resulting
// corruption. Never set outside tests.
type RecoveryHooks struct {
	// SkipGenerationCheck accepts a column whose MS and ME summaries both
	// parse but disagree on generation — the torn-segment signature the
	// generation sandwich exists to catch.
	SkipGenerationCheck bool
	// SkipSummaryCRC parses summaries leniently: CRC mismatches are
	// ignored and a truncated entry array is clipped instead of rejected,
	// so torn summary blobs are misapplied instead of discarded.
	SkipSummaryCRC bool
	// OldestWins inverts the §4.1 replay order: recovered segments are
	// applied newest-first, so where several surviving generations hold the
	// same LBA the oldest mapping wins. Unlike the parse hooks, nothing
	// downstream catches this — the recovered map silently points at stale
	// slots — which is exactly what the torture checker must detect.
	OldestWins bool
}

// Validate fills defaults and checks invariants.
func (c Config) Validate() (Config, error) {
	m := len(c.SSDs)
	if m < 1 {
		return c, fmt.Errorf("src: need at least one SSD")
	}
	if c.Primary == nil {
		return c, fmt.Errorf("src: primary storage required")
	}
	if c.Level == 0 {
		c.Level = RAID5
	}
	if (c.Level == RAID4 || c.Level == RAID5) && m < 3 {
		return c, fmt.Errorf("src: %v needs at least 3 SSDs, have %d", c.Level, m)
	}
	devCap := c.SSDs[0].Capacity()
	for i, d := range c.SSDs {
		if d.Capacity() != devCap {
			return c, fmt.Errorf("src: ssd %d capacity %d != %d", i, d.Capacity(), devCap)
		}
	}
	if c.EraseGroupSize == 0 {
		c.EraseGroupSize = 256 << 20
	}
	if c.SegmentColumn == 0 {
		c.SegmentColumn = 512 << 10
	}
	if c.SegmentColumn%blockdev.PageSize != 0 || c.SegmentColumn < 3*blockdev.PageSize {
		return c, fmt.Errorf("src: segment column %d must be page-aligned and hold MS+ME+data", c.SegmentColumn)
	}
	if c.EraseGroupSize%c.SegmentColumn != 0 {
		return c, fmt.Errorf("src: erase group %d not a multiple of segment column %d", c.EraseGroupSize, c.SegmentColumn)
	}
	if c.CachePerSSD == 0 {
		c.CachePerSSD = devCap - devCap%c.EraseGroupSize
	}
	if c.CachePerSSD%c.EraseGroupSize != 0 {
		return c, fmt.Errorf("src: cache region %d not a multiple of erase group %d", c.CachePerSSD, c.EraseGroupSize)
	}
	if c.CachePerSSD > devCap {
		return c, fmt.Errorf("src: cache region %d exceeds ssd capacity %d", c.CachePerSSD, devCap)
	}
	if n := c.CachePerSSD / c.EraseGroupSize; n < 4 {
		return c, fmt.Errorf("src: %d segment groups too few (superblock + 3 working minimum)", n)
	}
	if c.GC == 0 {
		c.GC = SelGC
	}
	if c.Victim == 0 {
		c.Victim = FIFO
	}
	if c.UMax == 0 {
		c.UMax = 0.90
	}
	if c.UMax <= 0 || c.UMax > 1 {
		return c, fmt.Errorf("src: UMax %v out of (0,1]", c.UMax)
	}
	if c.Parity == 0 {
		c.Parity = NPC
	}
	if c.Level == RAID0 && c.Parity == PC {
		// No parity exists at RAID-0; PC degenerates to NPC.
		c.Parity = NPC
	}
	if c.Flush == 0 {
		c.Flush = FlushPerSegmentGroup
	}
	if c.TWait == 0 {
		c.TWait = 20 * vtime.Microsecond
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = 3
	}
	if c.RetryDelay == 0 {
		c.RetryDelay = 100 * vtime.Microsecond
	}
	if c.ErrorBudget == 0 {
		c.ErrorBudget = 20
	}
	return c, nil
}
