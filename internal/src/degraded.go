package src

import (
	"errors"
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Failure handling (paper §4.1, §4.3): when an SSD fails, parity-protected
// segments are served by on-the-fly reconstruction from the surviving
// columns; parityless clean segments (NPC mode) lose their data and the
// cache falls back to primary storage, a temporary read-performance
// degradation rather than a correctness problem.

// degradedRead serves a read run whose column device has failed. The run
// lies within a single segment column (the mapping layout guarantees it).
func (c *Cache) degradedRead(at vtime.Time, col int, off, n, firstLBA int64) (vtime.Time, error) {
	sg := off / c.cfg.EraseGroupSize
	seg := (off % c.cfg.EraseGroupSize) / c.cfg.SegmentColumn
	parity := int(c.groups[sg].segParity[seg])
	pages := n / blockdev.PageSize

	if parity < 0 {
		// Parityless segment: dirty data would be gone for good; clean
		// data is re-fetched from primary storage.
		for p := firstLBA; p < firstLBA+pages; p++ {
			e, ok := c.mapping[p]
			if !ok {
				continue
			}
			if e.state == stateSSDDirty {
				return at, fmt.Errorf("%w: dirty page %d on failed ssd %d in parityless segment", ErrDataLoss, p, col)
			}
			c.dropPage(p, e)
		}
		return c.fillFromPrimary(at, firstLBA, pages)
	}

	return c.reconstructColumns(at, col, off, n)
}

// reconstructColumns charges the reads that rebuild a lost column range
// from every surviving column (data plus parity), returning the last
// completion. A second fault on a survivor is unrecoverable for the range.
func (c *Cache) reconstructColumns(at vtime.Time, col int, off, n int64) (vtime.Time, error) {
	done := at
	for other := 0; other < c.lay.m; other++ {
		if other == col {
			continue
		}
		t, err := c.submitSSD(at, other, blockdev.Request{Op: blockdev.OpRead, Off: off, Len: n})
		if err != nil {
			if errors.Is(err, blockdev.ErrDeviceFailed) {
				return at, fmt.Errorf("%w: second ssd failure (%d and %d)", ErrDataLoss, col, other)
			}
			if errors.Is(err, blockdev.ErrUnreadable) {
				return at, fmt.Errorf("%w: survivor ssd %d unreadable while reconstructing ssd %d", ErrDataLoss, other, col)
			}
			return at, err
		}
		done = vtime.Max(done, t)
	}
	return done, nil
}

// ReconstructTag recomputes the content tag of a lost page from the
// surviving columns' tags — the content-level counterpart of degradedRead.
// Requires TrackContent.
func (c *Cache) ReconstructTag(loc int64) (blockdev.Tag, error) {
	sg, seg, col, pic := c.lay.split(loc)
	if int(c.groups[sg].segParity[seg]) < 0 {
		return blockdev.ZeroTag, fmt.Errorf("%w: location %d has no parity", ErrDataLoss, loc)
	}
	var tag blockdev.Tag
	for other := 0; other < c.lay.m; other++ {
		if other == col {
			continue
		}
		otherLoc := c.lay.loc(sg, seg, other, pic)
		_, off := c.lay.devOffset(c.cfg, otherLoc)
		t, err := c.cfg.SSDs[other].Content().ReadTag(off / blockdev.PageSize)
		if err != nil {
			return blockdev.ZeroTag, err
		}
		tag = tag.XOR(t)
	}
	return tag, nil
}

// RebuildSSD reconstructs the cache contents of a failed-and-repaired (or
// replaced-in-place) SSD in one synchronous sweep: parity-protected segments
// are rebuilt from the survivors; data of parityless clean segments is
// dropped from the mapping (it reloads from primary on demand). The paper
// lists fast recovery and drive scaling as SRC goals; this is the recovery
// half. For an online rebuild interleaved with foreground traffic, use
// ReplaceSSD plus RebuildStep.
func (c *Cache) RebuildSSD(at vtime.Time, col int) (vtime.Time, error) {
	if col < 0 || col >= c.lay.m {
		return at, fmt.Errorf("src: rebuild of unknown ssd %d", col)
	}
	if c.rebuild != nil {
		return at, fmt.Errorf("src: rebuild of ssd %d already in progress", c.rebuild.col)
	}
	c.devErrs[col] = 0
	c.colDown[col] = false
	cursor := at
	// Superblock group first.
	if _, err := c.submitSSD(cursor, col, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize}); err != nil {
		return at, err
	}
	c.startRebuild(col)
	for {
		t, pending, err := c.RebuildStep(cursor)
		if err != nil {
			return at, err
		}
		cursor = t
		if !pending {
			return cursor, nil
		}
	}
}

// rebuildColumnContent restores the tags and summary blobs of one rebuilt
// column from the survivors. Reconstructed pages are verified against the
// mapping before being trusted: resurrecting the XOR of a stale stripe
// would serve garbage under a valid summary. (Recovery repairs the parity
// of every recovered segment, so stripes skewed by a partial-persistence
// crash normally verify again by the time a rebuild runs.) A page that
// still fails verification falls back to primary storage when the mapping
// holds it clean; otherwise it is dropped — and a dirty drop, possible
// only under compound faults, is counted in RepairStats.RebuildDirtyLost
// as detected loss. When no other column holds the segment's summary
// (the failed column had the only surviving copy), survivingGeneration
// falls back to the in-memory per-segment generation so the fresh MS/ME
// preserves the newest on-media records instead of sentineling them away.
func (c *Cache) rebuildColumnContent(sg, seg int64, col int) error {
	cont := c.cfg.SSDs[col].Content()
	colBase := c.lay.colOffset(c.cfg, sg, seg)
	basePage := colBase / blockdev.PageSize
	g := &c.groups[sg]
	gen, genErr := c.survivingGeneration(sg, seg, col)
	var entries []summaryEntry
	live := 0
	for pic := int64(1); pic <= c.lay.payloadPages; pic++ {
		loc := c.lay.loc(sg, seg, col, pic)
		// Entries are positional (entry i ↔ payload page i+1), so a freed
		// slot must be held with a sentinel, not skipped: compacting the
		// list would shift every later page onto the wrong slot at the
		// next recovery.
		s := c.lay.localSlot(loc)
		if g.slots[s] == slotFree {
			// Free slots still need their tag restored: on a parity column
			// every slot is free, and the XOR identity over the survivors is
			// exactly the parity tag (for a free data position it yields
			// zero). Skipping them would leave a rebuilt parity column
			// all-zero and poison every later reconstruction through it.
			if genErr == nil {
				if tag, err := c.ReconstructTag(loc); err == nil {
					if werr := cont.WriteTag(basePage+pic, tag); werr != nil {
						return werr
					}
				}
			}
			entries = append(entries, summaryEntry{lba: summaryFreeLBA})
			continue
		}
		lba, dirty := unpackSlot(g.slots[s])
		var version uint64
		if c.versions != nil {
			version = c.versions[lba]
		}
		tag, err := c.ReconstructTag(loc)
		verified := genErr == nil && err == nil &&
			(version == 0 || tag == blockdev.DataTag(lba, version))
		if !verified {
			// Clean pages have a second source: primary storage holds the
			// same version, so restore from there instead of dropping.
			// Writing a free-slot sentinel here would destroy the newest
			// on-media record of the LBA while stale older records may
			// survive in not-yet-reclaimed groups — the next recovery would
			// resurrect one of those (the destruction-ordering rule gc
			// enforces for reclaims applies to rebuilds too).
			if e, ok := c.mapping[lba]; ok && e.loc == loc && e.state == stateSSDClean && genErr == nil {
				pt, perr := c.cfg.Primary.Content().ReadTag(lba)
				if perr == nil {
					if werr := cont.WriteTag(basePage+pic, pt); werr != nil {
						return werr
					}
					entries = append(entries, summaryEntry{lba: lba, version: version, dirty: false})
					continue
				}
			}
			if e, ok := c.mapping[lba]; ok && e.loc == loc {
				c.dropPage(lba, e)
			} else {
				c.invalidateSSD(loc)
			}
			if dirty {
				c.repair.RebuildDirtyLost++
			}
			entries = append(entries, summaryEntry{lba: summaryFreeLBA})
			continue
		}
		if err := cont.WriteTag(basePage+pic, tag); err != nil {
			return err
		}
		entries = append(entries, summaryEntry{lba: lba, version: version, dirty: dirty})
		live++
	}
	// Rebuild the summary blobs from a surviving column's generation.
	if genErr != nil {
		// Nothing recorded: an abandoned, fully invalidated, or
		// unreconstructable segment writes no summary on the new member.
		return nil
	}
	sum := &summary{
		kind: kindMS, gen: gen, sg: sg, seg: seg,
		col: uint8(col), parityCol: g.segParity[seg], entries: entries,
	}
	if err := cont.WriteBlob(basePage, sum.marshal()); err != nil {
		return err
	}
	sum.kind = kindME
	return cont.WriteBlob(basePage+c.lay.pagesPerCol-1, sum.marshal())
}

// survivingGeneration reads the segment generation from any surviving
// column's MS block.
func (c *Cache) survivingGeneration(sg, seg int64, failedCol int) (int64, error) {
	basePage := c.lay.colOffset(c.cfg, sg, seg) / blockdev.PageSize
	for other := 0; other < c.lay.m; other++ {
		if other == failedCol {
			continue
		}
		blob, err := c.cfg.SSDs[other].Content().ReadBlob(basePage)
		if err != nil || blob == nil {
			continue
		}
		s, err := parseSummary(blob)
		if err != nil {
			continue
		}
		return s.gen, nil
	}
	// No other column holds a summary — the failed column had the only
	// surviving copy (the others' were lost to a partial-persistence
	// crash). The in-memory cache still vouches for the segment; fall back
	// to the generation it was sealed or recovered with, so the rebuilt
	// column's fresh MS/ME preserves the newest on-media record instead of
	// silently destroying it.
	if gen := c.groups[sg].segGens[seg]; gen > 0 {
		return gen, nil
	}
	return 0, fmt.Errorf("%w: no surviving summary for group %d segment %d", ErrBadSummary, sg, seg)
}
