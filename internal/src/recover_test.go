package src

import (
	"testing"

	"srccache/internal/blockdev"
)

// recoveryEnv builds a cache with three flushed segments' worth of dirty
// writes and then crashes the devices, leaving only durable state behind —
// the starting point of every recovery scenario.
func recoveryEnv(t *testing.T) *env {
	t.Helper()
	e := newEnv(t, nil)
	capPages := int64(e.cache.dirtyBuf.Cap())
	for lba := int64(0); lba < 3*capPages; lba++ {
		e.write(lba, 1)
	}
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	for _, d := range e.ssds {
		d.Content().Crash()
	}
	return e
}

// metaPages returns the page indices of the MS and ME summary blocks of
// the first sealed segment (group 1, segment 0) — the same offset on every
// SSD — and asserts the MS block really holds a summary blob.
func metaPages(t *testing.T, e *env) (ms, me int64) {
	t.Helper()
	c := e.cache
	ms = c.lay.colOffset(c.cfg, 1, 0) / blockdev.PageSize
	me = ms + c.lay.pagesPerCol - 1
	blob, err := e.ssds[0].Content().ReadBlob(ms)
	if err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no MS summary at group 1 segment 0; geometry assumption broken")
	}
	return ms, me
}

// TestRecoverMetadataFaults table-drives Recover against truncated and
// corrupted MS/ME metadata blocks (paper §4.1): a column whose summary is
// missing, fails its checksum, or disagrees between MS and ME generations
// is dropped while intact columns survive; a segment with no surviving
// column disappears entirely.
func TestRecoverMetadataFaults(t *testing.T) {
	// Intact baseline: segment and page counts every fault case is
	// compared against. The workload is deterministic, so a fresh env
	// reproduces these numbers exactly.
	e := recoveryEnv(t)
	baseSegs, err := e.cache.Recover()
	if err != nil {
		t.Fatal(err)
	}
	basePages := len(e.cache.mapping)
	if baseSegs < 2 || basePages == 0 {
		t.Fatalf("baseline too small to discriminate: %d segments, %d pages", baseSegs, basePages)
	}

	tests := []struct {
		name string
		// mutate damages durable metadata of segment (1,0); ms/me are
		// its summary page indices.
		mutate func(e *env, ms, me int64) error
		// wantSegs is the expected Recover count; wantPagesDrop reports
		// whether mapped pages must shrink versus the intact baseline.
		wantSegs      int
		wantPagesDrop bool
	}{
		{
			name:     "intact metadata recovers everything",
			mutate:   func(e *env, ms, me int64) error { return nil },
			wantSegs: baseSegs,
		},
		{
			name: "MS checksum mismatch drops the column",
			mutate: func(e *env, ms, me int64) error {
				return e.ssds[0].Content().Corrupt(ms)
			},
			wantSegs:      baseSegs,
			wantPagesDrop: true,
		},
		{
			name: "truncated MS drops the column",
			mutate: func(e *env, ms, me int64) error {
				return e.ssds[0].Content().Trim(ms, 1)
			},
			wantSegs:      baseSegs,
			wantPagesDrop: true,
		},
		{
			name: "ME checksum mismatch drops the column",
			mutate: func(e *env, ms, me int64) error {
				return e.ssds[0].Content().Corrupt(me)
			},
			wantSegs:      baseSegs,
			wantPagesDrop: true,
		},
		{
			name: "truncated ME drops the column",
			mutate: func(e *env, ms, me int64) error {
				return e.ssds[0].Content().Trim(me, 1)
			},
			wantSegs:      baseSegs,
			wantPagesDrop: true,
		},
		{
			name: "every column torn drops the whole segment",
			mutate: func(e *env, ms, me int64) error {
				for _, d := range e.ssds {
					if err := d.Content().Corrupt(ms); err != nil {
						return err
					}
				}
				return nil
			},
			wantSegs:      baseSegs - 1,
			wantPagesDrop: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			e := recoveryEnv(t)
			ms, me := metaPages(t, e)
			if err := tt.mutate(e, ms, me); err != nil {
				t.Fatal(err)
			}
			segs, err := e.cache.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if segs != tt.wantSegs {
				t.Fatalf("recovered %d segments, want %d", segs, tt.wantSegs)
			}
			pages := len(e.cache.mapping)
			if tt.wantPagesDrop && pages >= basePages {
				t.Fatalf("recovered %d pages, want fewer than intact %d", pages, basePages)
			}
			if !tt.wantPagesDrop && pages != basePages {
				t.Fatalf("recovered %d pages, want %d", pages, basePages)
			}
			e.checkInvariants()
			// Whatever survived must verify against its checksum.
			for lba := range e.cache.mapping {
				if _, _, err := e.cache.ReadCheck(e.at, lba); err != nil {
					t.Fatalf("ReadCheck(%d) after recovery: %v", lba, err)
				}
			}
		})
	}
}

// TestRecoverCombinedMetadataFaults pairs a torn MS blob with a
// silently-corrupted ME twin on the same column — the two sandwich halves
// failing in different ways at once. The column must contribute nothing
// (neither half can vouch for the other), while the segment still recovers
// from the intact columns' consistent generation; when every column
// carries the compound fault, the segment is discarded whole rather than
// partially resurrected.
func TestRecoverCombinedMetadataFaults(t *testing.T) {
	base := recoveryEnv(t)
	baseSegs, err := base.cache.Recover()
	if err != nil {
		t.Fatal(err)
	}
	basePages := len(base.cache.mapping)

	t.Run("one column", func(t *testing.T) {
		e := recoveryEnv(t)
		ms, me := metaPages(t, e)
		if err := e.ssds[0].Content().Trim(ms, 1); err != nil {
			t.Fatal(err)
		}
		if err := e.ssds[0].Content().Corrupt(me); err != nil {
			t.Fatal(err)
		}
		segs, err := e.cache.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if segs != baseSegs {
			t.Fatalf("recovered %d segments, want %d (survivors' generation wins)", segs, baseSegs)
		}
		if pages := len(e.cache.mapping); pages >= basePages {
			t.Fatalf("recovered %d pages, want fewer than intact %d", pages, basePages)
		}
		e.checkInvariants()
		for lba := range e.cache.mapping {
			if _, _, err := e.cache.ReadCheck(e.at, lba); err != nil {
				t.Fatalf("ReadCheck(%d) after recovery: %v", lba, err)
			}
		}
	})

	t.Run("every column", func(t *testing.T) {
		e := recoveryEnv(t)
		ms, me := metaPages(t, e)
		for _, d := range e.ssds {
			if err := d.Content().Trim(ms, 1); err != nil {
				t.Fatal(err)
			}
			if err := d.Content().Corrupt(me); err != nil {
				t.Fatal(err)
			}
		}
		segs, err := e.cache.Recover()
		if err != nil {
			t.Fatal(err)
		}
		if segs != baseSegs-1 {
			t.Fatalf("recovered %d segments, want %d (faulted segment discarded)", segs, baseSegs-1)
		}
		e.checkInvariants()
		for lba := range e.cache.mapping {
			if _, _, err := e.cache.ReadCheck(e.at, lba); err != nil {
				t.Fatalf("ReadCheck(%d) after recovery: %v", lba, err)
			}
		}
	})
}

// TestRecoverNewestGenerationWins rewrites every page in a second flushed
// epoch: both generations' summaries are durable, and recovery must apply
// them in generation order so the newer version of each LBA wins.
func TestRecoverNewestGenerationWins(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.dirtyBuf.Cap())
	for lba := int64(0); lba < capPages; lba++ {
		e.write(lba, 1) // version 1
	}
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	for lba := int64(0); lba < capPages; lba++ {
		e.write(lba, 1) // version 2 supersedes in a younger segment
	}
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	for _, d := range e.ssds {
		d.Content().Crash()
	}
	if _, err := e.cache.Recover(); err != nil {
		t.Fatal(err)
	}
	e.checkInvariants()
	for lba := int64(0); lba < capPages; lba++ {
		if _, ok := e.cache.mapping[lba]; !ok {
			t.Fatalf("page %d lost", lba)
		}
		got, _, err := e.cache.ReadCheck(e.at, lba)
		if err != nil {
			t.Fatal(err)
		}
		if want := blockdev.DataTag(lba, 2); got != want {
			t.Fatalf("page %d recovered as %v, want newest generation %v", lba, got, want)
		}
	}
}
