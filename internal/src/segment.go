package src

import (
	"errors"
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// allocSegment returns the coordinates of the next unused segment in the
// active Segment Group, rotating groups (and garbage collecting) as needed.
func (c *Cache) allocSegment(at vtime.Time) (sg, seg int64, err error) {
	// A group opened during this call's own GC (whose S2S copies write
	// segments too) may already have room; rotation below re-checks.
	ranGC := false
	for c.active < 0 || c.nextSeg == c.lay.segsPerSG {
		if c.active >= 0 {
			c.groups[c.active].state = groupClosed
			c.fifo = append(c.fifo, c.active)
			c.active = -1
		}
		if !c.inGC && !ranGC && len(c.freeSGs) <= 1 {
			ranGC = true
			if err := c.gc(at); err != nil {
				return 0, 0, err
			}
			if c.active >= 0 {
				continue // GC opened an active group; use it if not full
			}
		}
		if len(c.freeSGs) == 0 {
			return 0, 0, ErrNoFreeGroups
		}
		next := c.freeSGs[0]
		c.freeSGs = c.freeSGs[1:]
		g := &c.groups[next]
		g.ensureTables(c.lay)
		g.state = groupActive
		g.valid = 0
		c.seqCtr++
		g.seq = c.seqCtr
		c.active = next
		c.nextSeg = 0
	}
	seg = c.nextSeg
	c.nextSeg++
	return c.active, seg, nil
}

// writeSegment writes the buffer out as one (possibly partial) segment:
// data columns, MS/ME metadata blocks, and a parity column when the
// segment kind calls for one (Figure 3(b)). It returns the completion time
// of the segment write including any flush the policy requires.
func (c *Cache) writeSegment(at vtime.Time, buf *segBuffer, dirty bool) (vtime.Time, error) {
	if buf.Empty() {
		c.wastedSlots += int64(buf.Len())
		buf.Reset()
		return at, nil
	}
	// Allocate before snapshotting the buffer: allocation may trigger GC,
	// whose trim barrier must see this buffer's pages. A host overwrite of
	// an SSD-resident dirty page has already invalidated the superseded
	// copy's slot, so GC treats the group holding it as reclaimable — if
	// these pages were snapshotted out of the buffer first, the pre-trim
	// drain could not seal and flush them, and a committed trim would
	// destroy the only durable record of an acknowledged page while its
	// replacement was still volatile (found by the chaos harness's
	// partial-persistence schedules). GC's own S2S copies appending to
	// this buffer mid-allocation are equally welcome in this segment.
	sg, seg, err := c.allocSegment(at)
	if err != nil {
		return at, err
	}
	if buf.Empty() {
		// GC ran during allocation and its drain sealed this buffer
		// already; hand the unused segment back.
		c.nextSeg--
		return at, nil
	}
	slots := append(make([]bufSlot, 0, buf.Len()), buf.slots...)
	buf.Reset()
	absSeg := sg*c.lay.segsPerSG + seg
	cols, parity := c.payloadCols(absSeg, dirty)
	g := &c.groups[sg]
	g.segParity[seg] = int8(parity)
	c.segGen++
	gen := c.segGen
	g.segGens[seg] = gen

	// Column-major slot assignment keeps logically consecutive pages
	// physically consecutive within a column, so large reads coalesce.
	// The buffer can transiently hold more than one segment's payload
	// (an abandoned segment write re-buffers its pages on top of later
	// appends); slots beyond this segment's capacity stay buffered.
	perCol := make([][]summaryEntry, c.lay.m)
	colTags := make([][]blockdev.Tag, c.lay.m)
	segCap := int64(len(cols)) * c.lay.payloadPages
	var overflow []bufSlot
	idx := int64(0)
	for _, slot := range slots {
		if !slot.valid {
			continue
		}
		if idx == segCap {
			overflow = append(overflow, slot)
			continue
		}
		col := cols[idx/c.lay.payloadPages]
		pic := 1 + idx%c.lay.payloadPages
		idx++
		loc := c.lay.loc(sg, seg, col, pic)
		g.slots[c.lay.localSlot(loc)] = packSlot(slot.lba, dirty)
		g.valid++
		c.totalValid++
		c.mapping[slot.lba] = entry{state: ssdState(dirty), loc: loc}
		var version uint64
		if c.cfg.TrackContent {
			version = c.versions[slot.lba]
		}
		perCol[col] = append(perCol[col], summaryEntry{lba: slot.lba, version: version, dirty: dirty})
		if c.cfg.TrackContent {
			colTags[col] = append(colTags[col], slot.tag)
		}
	}
	c.rebuffer(buf, overflow, dirty)
	c.wastedSlots += segCap - idx
	g.paycap += segCap
	c.totalPaycap += segCap

	// Device writes: per participating column, [MS..last payload page] and
	// the ME block (one contiguous write when the column is full).
	colBase := c.lay.colOffset(c.cfg, sg, seg)
	done := at
	var failedCols []int
	maxUsed := int64(0)
	for _, col := range cols {
		if n := int64(len(perCol[col])); n > maxUsed {
			maxUsed = n
		}
	}
	writeCols := cols
	if parity >= 0 {
		wc := make([]int, 0, len(cols)+1)
		wc = append(wc, cols...)
		writeCols = append(wc, parity)
	}
	for _, col := range writeCols {
		used := int64(len(perCol[col]))
		if col == parity {
			used = maxUsed
			c.counters.ParityBytes += used * blockdev.PageSize
		}
		t, werr := c.writeColumn(at, col, colBase, used)
		if werr != nil {
			if !errors.Is(werr, blockdev.ErrDeviceFailed) {
				return at, werr
			}
			if c.colDown[col] {
				// Degraded write, md-style: the fail-stopped column's
				// slots stay parity-covered and are restored when the
				// member is rebuilt.
				failedCols = append(failedCols, col)
				continue
			}
			// A live column rejected the write (transient errors past the
			// retry budget, or a failed device not yet escalated). The
			// column will be read raw again, so its stale pages must not
			// carry live data, and its summary blob — the only durable
			// record of its entries — was never written. Abandon the
			// whole segment and return its pages to the buffer; the next
			// destage retries on a fresh segment.
			return c.abandonSegment(at, sg, seg, buf, slots, dirty, werr)
		}
		c.counters.MetadataBytes += 2 * blockdev.PageSize
		done = vtime.Max(done, t)
	}
	if err := c.handleFailedColumns(failedCols, perCol, parity, dirty, sg, seg); err != nil {
		return done, err
	}
	if c.gcBuf != nil && buf == c.gcBuf {
		c.counters.GCSegments++
	}

	if c.cfg.TrackContent {
		if err := c.recordSegmentContent(sg, seg, gen, parity, perCol, colTags, maxUsed, failedCols); err != nil {
			return done, err
		}
	}

	// Flush-command control (paper §4.1): per segment write (which on this
	// layout is also the per-metadata cadence — every segment write carries
	// its MS/ME summaries), or when the active group just filled.
	// Suppressed while GC or a rebuild runs: a flush there would commit the
	// destruction of old durable records — reclaimed groups being reused,
	// rebuilt summaries holding sentinels for slots invalidated since the
	// last flush — before the replacement copies leave RAM. GC drains the
	// dirty buffers before returning and the rebuild completion barrier
	// drains before flushing, so those destructions always commit together
	// with their replacements. FlushNever is handled inside flushSSDs.
	perWrite := c.cfg.Flush == FlushPerSegment || c.cfg.Flush == FlushPerMetadata
	if !c.inGC && c.rebuild == nil && (perWrite || seg == c.lay.segsPerSG-1) {
		t, ferr := c.flushSSDs(done)
		if ferr != nil {
			return done, ferr
		}
		done = vtime.Max(done, t)
	}
	return done, nil
}

func ssdState(dirty bool) pageState {
	if dirty {
		return stateSSDDirty
	}
	return stateSSDClean
}

// errSegmentAbandoned reports a segment write abandoned because a live
// column's device rejected it; the segment's pages were re-buffered and a
// later destage retries them on a fresh segment. The host write and fill
// paths swallow it (the data is safely buffered); Flush bounds its retries
// and surfaces the failure rather than acknowledge durability it cannot
// provide.
var errSegmentAbandoned = errors.New("src: segment write abandoned")

// rebuffer returns slots to their source buffer: pages that did not land
// in a segment, either because the buffer held more than one segment's
// capacity or because the segment write was abandoned.
func (c *Cache) rebuffer(buf *segBuffer, slots []bufSlot, dirty bool) {
	st := stateBufClean
	if dirty {
		if buf == c.gcBuf {
			st = stateBufGC
		} else {
			st = stateBufDirty
		}
	}
	for _, slot := range slots {
		if !slot.valid {
			continue
		}
		i := buf.Append(slot.lba, slot.tag)
		c.mapping[slot.lba] = entry{state: st, loc: int64(i)}
	}
}

// abandonSegment unwinds writeSegment after a column write failed on a
// live (not fail-stopped) member: every slot just assigned to the segment
// is freed and its page returned to the source buffer, so no mapping
// points into a segment whose content and summary never fully reached the
// devices. The segment itself stays allocated and empty; GC reclaims it
// with its group.
func (c *Cache) abandonSegment(at vtime.Time, sg, seg int64, buf *segBuffer, slots []bufSlot, dirty bool, cause error) (vtime.Time, error) {
	var back []bufSlot
	for _, slot := range slots {
		if !slot.valid {
			continue
		}
		e, ok := c.mapping[slot.lba]
		if !ok || (e.state != stateSSDClean && e.state != stateSSDDirty) {
			continue // capacity overflow: already re-buffered above
		}
		c.invalidateSSD(e.loc)
		delete(c.mapping, slot.lba)
		back = append(back, slot)
	}
	c.rebuffer(buf, back, dirty)
	return at, fmt.Errorf("%w: group %d segment %d: %v", errSegmentAbandoned, sg, seg, cause)
}

// writeColumn issues the device writes for one column: MS plus `used`
// payload pages as one run, and the ME block.
func (c *Cache) writeColumn(at vtime.Time, col int, colBase, used int64) (vtime.Time, error) {
	if used >= c.lay.payloadPages {
		// Full column: MS + payload + ME are contiguous.
		return c.submitSSD(at, col, blockdev.Request{Op: blockdev.OpWrite, Off: colBase, Len: c.cfg.SegmentColumn})
	}
	t1, err := c.submitSSD(at, col, blockdev.Request{
		Op: blockdev.OpWrite, Off: colBase, Len: (1 + used) * blockdev.PageSize,
	})
	if err != nil {
		return at, err
	}
	t2, err := c.submitSSD(at, col, blockdev.Request{
		Op: blockdev.OpWrite, Off: colBase + (c.lay.pagesPerCol-1)*blockdev.PageSize, Len: blockdev.PageSize,
	})
	if err != nil {
		return at, err
	}
	return vtime.Max(t1, t2), nil
}

// handleFailedColumns resolves payload slots that landed on failed devices:
// parity-covered slots stay reconstructable; parityless clean slots are
// quietly dropped (refetchable); parityless dirty slots are data loss.
func (c *Cache) handleFailedColumns(failedCols []int, perCol [][]summaryEntry, parity int, dirty bool, sg, seg int64) error {
	parityLost := false
	for _, col := range failedCols {
		if col == parity {
			parityLost = true
		}
	}
	for _, col := range failedCols {
		if col == parity {
			continue // lost parity alone: data columns are intact
		}
		if parity >= 0 && !parityLost {
			continue // parity protects the lost column
		}
		for pic, e := range perCol[col] {
			loc := c.lay.loc(sg, seg, col, int64(pic)+1)
			if dirty {
				return fmt.Errorf("%w: dirty page %d on failed ssd %d without parity", ErrDataLoss, e.lba, col)
			}
			c.invalidateSSD(loc)
			delete(c.mapping, e.lba)
		}
	}
	return nil
}

// recordSegmentContent writes page tags, parity tags, and MS/ME summary
// blobs to the device content stores.
//
//srclint:coldpath content-tracking bookkeeping, only runs under cfg.TrackContent verification mode
func (c *Cache) recordSegmentContent(sg, seg, gen int64, parity int, perCol [][]summaryEntry, colTags [][]blockdev.Tag, maxUsed int64, failedCols []int) error {
	colBase := c.lay.colOffset(c.cfg, sg, seg)
	basePage := colBase / blockdev.PageSize
	failed := make(map[int]bool, len(failedCols))
	for _, col := range failedCols {
		failed[col] = true
	}
	for col := 0; col < c.lay.m; col++ {
		isParity := col == parity
		if len(perCol[col]) == 0 && !isParity {
			continue
		}
		if failed[col] {
			continue
		}
		cont := c.cfg.SSDs[col].Content()
		used := int64(len(perCol[col]))
		if isParity {
			used = maxUsed
		}
		for pic := int64(1); pic <= used; pic++ {
			var tag blockdev.Tag
			if isParity {
				for _, dc := range colTags {
					if int64(len(dc)) >= pic && dc != nil {
						tag = tag.XOR(dc[pic-1])
					}
				}
			} else {
				tag = colTags[col][pic-1]
			}
			if err := cont.WriteTag(basePage+pic, tag); err != nil {
				return err
			}
		}
		s := &summary{
			kind: kindMS, gen: gen, sg: sg, seg: seg,
			col: uint8(col), parityCol: int8(parity), entries: perCol[col],
		}
		if err := cont.WriteBlob(basePage, s.marshal()); err != nil {
			return err
		}
		s.kind = kindME
		if err := cont.WriteBlob(basePage+c.lay.pagesPerCol-1, s.marshal()); err != nil {
			return err
		}
	}
	return nil
}

// writeSuperblock fills Segment Group 0 with the instance superblock; it is
// written once at assembly time (virtual time zero) and is read-only
// thereafter. Each member's superblock is flushed before the next member is
// stamped, so a crash mid-assembly leaves a prefix of recognizable members.
//
//srclint:contract flush
func (c *Cache) writeSuperblock() error {
	sb := &superblock{
		ssds:           uint32(c.lay.m),
		eraseGroupSize: c.cfg.EraseGroupSize,
		segmentColumn:  c.cfg.SegmentColumn,
		numSG:          c.lay.numSG,
	}
	blob := sb.marshal()
	for _, dev := range c.cfg.SSDs {
		if _, err := dev.Submit(0, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize}); err != nil {
			return fmt.Errorf("superblock write: %w", err)
		}
		if c.cfg.TrackContent {
			if err := dev.Content().WriteBlob(0, blob); err != nil {
				return err
			}
		}
		if _, err := dev.Flush(0); err != nil {
			return fmt.Errorf("superblock flush: %w", err)
		}
	}
	// The per-member flush is inside the loop, invisible to flushepoch's
	// must-analysis on the loop's zero-iteration path; Config.Validate
	// guarantees at least one SSD, so the loop always runs.
	//srclint:allow flushepoch per-member flush in loop body; Validate enforces len(SSDs) >= 1
	return nil
}
