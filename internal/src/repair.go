package src

import (
	"errors"
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Retry and escalation (md-style). Every SSD request the cache issues goes
// through submitSSD: transient errors are retried with bounded virtual-time
// backoff, latent sector errors surface as ErrUnreadable for in-place repair
// from redundancy, and each corrected error counts against a per-device
// budget. A device that exhausts the budget is escalated to column
// fail-stop — from then on the cache treats it like a failed drive and serves
// its ranges through the degraded path until it is replaced and rebuilt.

// RepairStats accumulates the cache's self-healing activity.
type RepairStats struct {
	// Retries counts transient-error retries issued.
	Retries int64
	// TransientErrors counts transient device errors observed, including
	// ones that a retry corrected.
	TransientErrors int64
	// UnreadableErrors counts latent-sector-error reads observed.
	UnreadableErrors int64
	// Escalations counts devices fail-stopped by the error budget.
	Escalations int64
	// RepairedPages counts pages repaired in place from redundancy
	// (latent sector errors rewritten from parity reconstruction).
	RepairedPages int64
	// RebuiltSegments counts segment columns reconstructed onto a
	// replacement device.
	RebuiltSegments int64
	// ScrubbedPages counts pages verified by the scrubber.
	ScrubbedPages int64
	// CorruptionsDetected counts tag mismatches found by ReadCheck.
	CorruptionsDetected int64
	// CorruptionsRepaired counts detected corruptions repaired from parity
	// or by primary refetch.
	CorruptionsRepaired int64
	// RebuildDirtyLost counts dirty pages dropped during a rebuild because
	// their stripe could not be reconstructed and verified — compound-fault
	// data loss, detected rather than resurrected as garbage.
	RebuildDirtyLost int64
}

// RepairStats reports accumulated self-healing activity.
func (c *Cache) RepairStats() RepairStats { return c.repair }

// DeviceDown reports whether the cache has escalated the given SSD to
// column fail-stop (error budget exhausted or rebuild pending superseded it).
func (c *Cache) DeviceDown(col int) bool {
	return col >= 0 && col < len(c.colDown) && c.colDown[col]
}

// DeviceErrors reports the corrected-error count charged against col's
// budget since assembly (or its last replacement).
func (c *Cache) DeviceErrors(col int) int64 {
	if col < 0 || col >= len(c.devErrs) {
		return 0
	}
	return c.devErrs[col]
}

// submitSSD is the single funnel for SSD requests: it enforces column
// fail-stop, routes reads of not-yet-rebuilt ranges to the degraded path,
// retries transient errors with exponential virtual-time backoff, and counts
// corrected errors against the device's budget.
func (c *Cache) submitSSD(at vtime.Time, col int, req blockdev.Request) (vtime.Time, error) {
	if c.colDown[col] {
		return at, fmt.Errorf("%w: ssd %d fail-stopped by error budget", blockdev.ErrDeviceFailed, col)
	}
	if req.Op == blockdev.OpRead && c.awaitingRebuild(col, req.Off) {
		// The replacement device holds no data here yet; the degraded
		// fallbacks (reconstruction or primary refetch) serve the read.
		return at, fmt.Errorf("%w: ssd %d range awaiting rebuild", blockdev.ErrDeviceFailed, col)
	}
	dev := c.cfg.SSDs[col]
	t, err := dev.Submit(at, req)
	attempts := 0
	for errors.Is(err, blockdev.ErrTransient) {
		c.repair.TransientErrors++
		if attempts >= c.cfg.RetryLimit {
			c.noteDevError(col)
			return at, fmt.Errorf("%w: ssd %d still transient after %d retries", blockdev.ErrDeviceFailed, col, attempts)
		}
		at = at.Add(c.cfg.RetryDelay << attempts)
		attempts++
		c.repair.Retries++
		t, err = dev.Submit(at, req)
	}
	if attempts > 0 && err == nil {
		// Corrected after retrying: one error against the budget, md-style.
		c.noteDevError(col)
	}
	if errors.Is(err, blockdev.ErrUnreadable) {
		c.repair.UnreadableErrors++
		c.noteDevError(col)
	}
	return t, err
}

// noteDevError charges one corrected error against col's budget and
// escalates the column to fail-stop when the budget is exhausted.
func (c *Cache) noteDevError(col int) {
	c.devErrs[col]++
	if c.devErrs[col] >= c.cfg.ErrorBudget && !c.colDown[col] {
		c.colDown[col] = true
		c.repair.Escalations++
	}
}

// repairUnreadableRun repairs a latent sector error covering the run
// [off, off+n) on col: parity-protected ranges are reconstructed from the
// survivors and rewritten in place (rewriting clears the latent error);
// parityless clean ranges are dropped and refetched from primary storage.
// firstLBA is the logical address of the run's first page.
func (c *Cache) repairUnreadableRun(at vtime.Time, col int, off, n, firstLBA int64) (vtime.Time, error) {
	sg := off / c.cfg.EraseGroupSize
	seg := (off % c.cfg.EraseGroupSize) / c.cfg.SegmentColumn
	pages := n / blockdev.PageSize
	if int(c.groups[sg].segParity[seg]) < 0 {
		// Same outcome as a failed column in a parityless segment: dirty
		// data is gone; clean data is refetched.
		for p := firstLBA; p < firstLBA+pages; p++ {
			e, ok := c.mapping[p]
			if !ok {
				continue
			}
			if e.state == stateSSDDirty {
				return at, fmt.Errorf("%w: dirty page %d unreadable on ssd %d in parityless segment", ErrDataLoss, p, col)
			}
			c.dropPage(p, e)
		}
		return c.fillFromPrimary(at, firstLBA, pages)
	}
	// Reconstruct from the survivors, then rewrite the range in place;
	// the write clears the device's latent marks. The content tags were
	// never lost (unreadable, not corrupted), so only timing is charged.
	t, err := c.reconstructColumns(at, col, off, n)
	if err != nil {
		return at, err
	}
	wt, err := c.submitSSD(t, col, blockdev.Request{Op: blockdev.OpWrite, Off: off, Len: n})
	if err != nil {
		if isDeviceFailed(err) {
			// Escalated mid-repair: the data was reconstructed and the
			// degraded path keeps serving it; the rewrite just didn't land.
			return t, nil
		}
		return t, err
	}
	c.repair.RepairedPages += pages
	return wt, nil
}

// Introspection for failure harnesses.

// CachedVersion reports the version the cache holds for lba and whether lba
// is cached at all (in any state). Versions are meaningful only with
// TrackContent.
func (c *Cache) CachedVersion(lba int64) (uint64, bool) {
	if _, ok := c.mapping[lba]; !ok {
		return 0, false
	}
	return c.versions[lba], true
}

// CachedDirty reports whether lba is cached in a dirty state.
func (c *Cache) CachedDirty(lba int64) bool {
	e, ok := c.mapping[lba]
	return ok && e.state.dirty()
}

// Locate reports the SSD column and device page index of lba's on-SSD copy;
// ok is false when lba is uncached or lives in a RAM segment buffer.
func (c *Cache) Locate(lba int64) (col int, page int64, ok bool) {
	e, okm := c.mapping[lba]
	if !okm || (e.state != stateSSDClean && e.state != stateSSDDirty) {
		return 0, 0, false
	}
	col, off := c.lay.devOffset(c.cfg, e.loc)
	return col, off / blockdev.PageSize, true
}
