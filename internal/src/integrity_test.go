package src

import (
	"errors"
	"math/rand"
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// TestContentOracle drives the cache with random traffic and checks, for
// every page ever written, that the current content is correct wherever it
// lives: verified in the cache via ReadCheck, or durable in primary storage
// after destage.
func TestContentOracle(t *testing.T) {
	e := newEnv(t, nil)
	rng := rand.New(rand.NewSource(42))
	span := int64(6000)
	written := make(map[int64]uint64) // oracle: lba -> version

	for i := 0; i < 15000; i++ {
		lba := rng.Int63n(span)
		if rng.Float64() < 0.6 {
			e.write(lba, 1)
			written[lba]++
		} else {
			e.read(lba, 1)
		}
	}
	e.checkInvariants()

	for lba, version := range written {
		want := blockdev.DataTag(lba, version)
		if _, cached := e.cache.mapping[lba]; cached {
			got, _, err := e.cache.ReadCheck(e.at, lba)
			if err != nil {
				t.Fatalf("ReadCheck(%d): %v", lba, err)
			}
			if got != want {
				t.Fatalf("cached page %d tag %v, want version %d", lba, got, version)
			}
			continue
		}
		// Evicted: the latest version must have been destaged.
		got, err := e.prim.Content().ReadTag(lba)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("evicted page %d: primary has %v, want version %d", lba, got, version)
		}
	}
}

// TestRecoveryAfterCleanFlush checks that a crash immediately after Flush
// loses nothing.
func TestRecoveryAfterCleanFlush(t *testing.T) {
	e := newEnv(t, nil)
	for lba := int64(0); lba < 100; lba++ {
		e.write(lba, 1)
	}
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	// Host crash: volatile device caches drop, then recovery scans.
	for _, d := range e.ssds {
		d.Content().Crash()
	}
	segs, err := e.cache.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if segs == 0 {
		t.Fatal("recovered no segments")
	}
	e.checkInvariants()
	for lba := int64(0); lba < 100; lba++ {
		en, ok := e.cache.mapping[lba]
		if !ok {
			t.Fatalf("page %d lost after flushed crash", lba)
		}
		if en.state != stateSSDDirty {
			t.Fatalf("page %d state %v, want dirty", lba, en.state)
		}
		got, _, err := e.cache.ReadCheck(e.at, lba)
		if err != nil {
			t.Fatal(err)
		}
		if got != blockdev.DataTag(lba, 1) {
			t.Fatalf("page %d content wrong after recovery", lba)
		}
	}
}

// TestRecoveryDropsUnflushedSegments checks the loss window: segments whose
// metadata never became durable disappear, and the newest durable version
// wins for rewritten pages.
func TestRecoveryDropsUnflushedSegments(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.dirtyBuf.Cap())
	// Durable epoch: versions 1.
	for lba := int64(0); lba < 2*capPages; lba++ {
		e.write(lba, 1)
	}
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	// Volatile epoch: rewrite the first pages (versions 2), no flush.
	for lba := int64(0); lba < capPages; lba++ {
		e.write(lba, 1)
	}
	for _, d := range e.ssds {
		d.Content().Crash()
	}
	if _, err := e.cache.Recover(); err != nil {
		t.Fatal(err)
	}
	e.checkInvariants()
	// Every page must be back at version 1 — the durable epoch.
	for lba := int64(0); lba < 2*capPages; lba++ {
		if _, ok := e.cache.mapping[lba]; !ok {
			t.Fatalf("page %d lost entirely", lba)
		}
		got, _, err := e.cache.ReadCheck(e.at, lba)
		if err != nil {
			t.Fatal(err)
		}
		if got != blockdev.DataTag(lba, 1) {
			t.Fatalf("page %d recovered to %v, want version 1", lba, got)
		}
	}
}

// TestRecoveryDiscardsTornSegment corrupts one column's ME block: the torn
// column must be discarded while intact columns of the same segment
// survive.
func TestRecoveryDiscardsTornSegment(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.dirtyBuf.Cap())
	for lba := int64(0); lba < capPages; lba++ {
		e.write(lba, 1)
	}
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	// Tear column 0 of the first written segment (group 1, segment 0):
	// corrupt its ME blob so the MS/ME generation check fails.
	mePage := (testEGS + int64(3)*blockdev.PageSize) / blockdev.PageSize
	if err := e.ssds[0].Content().Corrupt(mePage); err != nil {
		t.Fatal(err)
	}
	segs, err := e.cache.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if segs == 0 {
		t.Fatal("everything discarded")
	}
	// Column 0's pages are gone; other columns' pages survive.
	recovered := len(e.cache.mapping)
	if recovered == 0 || recovered >= int(capPages)+e.cache.cleanBuf.Cap() {
		t.Fatalf("recovered %d pages, want partial survival below %d", recovered, capPages)
	}
	e.checkInvariants()
}

func TestRecoverRequiresTrackContent(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.TrackContent = false })
	if _, err := e.cache.Recover(); err == nil {
		t.Fatal("recovery without TrackContent accepted")
	}
}

// TestDegradedReadReconstructsDirty fails one SSD and checks dirty data is
// still served via parity reconstruction.
func TestDegradedReadReconstructsDirty(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.dirtyBuf.Cap())
	for lba := int64(0); lba < capPages; lba++ {
		e.write(lba, 1) // one full dirty segment on SSD
	}
	// Find a page on SSD 0 and fail that drive.
	var target int64 = -1
	for lba := int64(0); lba < capPages; lba++ {
		en := e.cache.mapping[lba]
		if col, _ := e.cache.lay.devOffset(e.cache.cfg, en.loc); col == 0 && en.state == stateSSDDirty {
			target = lba
			break
		}
	}
	if target < 0 {
		t.Fatal("no dirty page on ssd 0")
	}
	e.ssds[0].Fail()
	before := e.ssds[1].Stats().ReadOps
	e.read(target, 1)
	if e.ssds[1].Stats().ReadOps == before {
		t.Fatal("degraded read did not touch surviving SSDs")
	}
	// Content-level reconstruction agrees with the written version.
	tag, err := e.cache.ReconstructTag(e.cache.mapping[target].loc)
	if err != nil {
		t.Fatal(err)
	}
	if tag != blockdev.DataTag(target, 1) {
		t.Fatalf("reconstructed %v, want version 1", tag)
	}
	// A second failure is fatal.
	e.ssds[1].Fail()
	_, err = e.cache.Submit(e.at, blockdev.Request{Op: blockdev.OpRead, Off: target * blockdev.PageSize, Len: blockdev.PageSize})
	if !errors.Is(err, ErrDataLoss) {
		t.Fatalf("double failure err = %v", err)
	}
}

// TestDegradedCleanNPCRefetches fails one SSD and checks parityless clean
// data is transparently re-fetched from primary.
func TestDegradedCleanNPCRefetches(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.cleanBuf.Cap())
	// Fill one clean segment via read misses, then push it to SSD.
	e.read(0, capPages)
	e.read(capPages, capPages) // second segment forces the first out... same request inserts as it goes
	// Find a clean on-SSD page on SSD 2.
	var target int64 = -1
	for lba := int64(0); lba < 2*capPages; lba++ {
		en, ok := e.cache.mapping[lba]
		if !ok || en.state != stateSSDClean {
			continue
		}
		if col, _ := e.cache.lay.devOffset(e.cache.cfg, en.loc); col == 2 {
			target = lba
			break
		}
	}
	if target < 0 {
		t.Skip("no clean on-SSD page on ssd 2 at this geometry")
	}
	e.ssds[2].Fail()
	primReads := e.prim.Stats().ReadOps
	e.read(target, 1)
	if e.prim.Stats().ReadOps == primReads {
		t.Fatal("failed clean read did not refetch from primary")
	}
	e.checkInvariants()
}

// TestRebuildSSD restores a replaced drive and verifies parity-protected
// content is identical afterwards.
func TestRebuildSSD(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.dirtyBuf.Cap())
	for lba := int64(0); lba < 4*capPages; lba++ {
		e.write(lba, 1)
	}
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	// Record the dirty pages living on SSD 1, fail and "replace" it.
	var onDrive []int64
	for lba := int64(0); lba < 4*capPages; lba++ {
		en, ok := e.cache.mapping[lba]
		if !ok || en.state != stateSSDDirty {
			continue
		}
		if col, _ := e.cache.lay.devOffset(e.cache.cfg, en.loc); col == 1 {
			onDrive = append(onDrive, lba)
		}
	}
	if len(onDrive) == 0 {
		t.Fatal("nothing on ssd 1")
	}
	e.ssds[1].Fail()
	e.ssds[1].Repair()
	// Model replacement: the new drive is empty.
	if err := e.ssds[1].Content().Trim(0, testSSDCap/blockdev.PageSize); err != nil {
		t.Fatal(err)
	}
	e.ssds[1].Content().FlushContent()

	done, err := e.cache.RebuildSSD(e.at, 1)
	if err != nil {
		t.Fatal(err)
	}
	if done <= e.at {
		t.Fatal("rebuild free of charge")
	}
	for _, lba := range onDrive {
		got, _, err := e.cache.ReadCheck(done, lba)
		if err != nil {
			t.Fatalf("ReadCheck(%d) after rebuild: %v", lba, err)
		}
		if got != blockdev.DataTag(lba, 1) {
			t.Fatalf("page %d content wrong after rebuild", lba)
		}
	}
	if _, err := e.cache.RebuildSSD(e.at, 9); err == nil {
		t.Fatal("rebuild of unknown ssd accepted")
	}
	e.checkInvariants()
}

// TestReadCheckRepairsSilentCorruption corrupts an on-SSD dirty page and
// checks ReadCheck repairs it from parity (paper §4.1: checksum mismatch ->
// parity recovery).
func TestReadCheckRepairsSilentCorruption(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.dirtyBuf.Cap())
	for lba := int64(0); lba < capPages; lba++ {
		e.write(lba, 1)
	}
	target := int64(0)
	en := e.cache.mapping[target]
	if en.state != stateSSDDirty {
		t.Fatalf("page 0 state %v", en.state)
	}
	col, off := e.cache.lay.devOffset(e.cache.cfg, en.loc)
	if err := e.ssds[col].Content().Corrupt(off / blockdev.PageSize); err != nil {
		t.Fatal(err)
	}
	got, _, err := e.cache.ReadCheck(e.at, target)
	if err != nil {
		t.Fatal(err)
	}
	if got != blockdev.DataTag(target, 1) {
		t.Fatalf("repair returned %v", got)
	}
	// The repair rewrote the good tag: a second check passes without
	// parity work.
	if tag, terr := e.ssds[col].Content().ReadTag(off / blockdev.PageSize); terr != nil {
		t.Fatal(terr)
	} else if tag != got {
		t.Fatal("repair did not write back the corrected page")
	}
}

// TestReadCheckRefetchesCorruptClean corrupts a parityless clean page:
// ReadCheck must drop it and refetch from primary.
func TestReadCheckRefetchesCorruptClean(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.cleanBuf.Cap())
	e.read(0, capPages) // one clean (NPC, parityless) segment
	var target int64 = -1
	for lba := int64(0); lba < capPages; lba++ {
		if en, ok := e.cache.mapping[lba]; ok && en.state == stateSSDClean {
			target = lba
			break
		}
	}
	if target < 0 {
		t.Fatal("no on-SSD clean page")
	}
	en := e.cache.mapping[target]
	col, off := e.cache.lay.devOffset(e.cache.cfg, en.loc)
	if err := e.ssds[col].Content().Corrupt(off / blockdev.PageSize); err != nil {
		t.Fatal(err)
	}
	primReads := e.prim.Stats().ReadOps
	if _, _, err := e.cache.ReadCheck(e.at, target); err != nil {
		t.Fatal(err)
	}
	if e.prim.Stats().ReadOps == primReads {
		t.Fatal("corrupt clean page not refetched")
	}
	e.checkInvariants()
}

// TestRecoveryRoundTripUnderLoad crashes mid-workload and verifies the
// recovered state passes the invariant checks and serves correct content.
func TestRecoveryRoundTripUnderLoad(t *testing.T) {
	e := newEnv(t, nil)
	rng := rand.New(rand.NewSource(9))
	span := int64(4000)
	var flushedAt vtime.Time
	versionAtFlush := make(map[int64]uint64)
	versions := make(map[int64]uint64)
	for i := 0; i < 8000; i++ {
		lba := rng.Int63n(span)
		e.write(lba, 1)
		versions[lba]++
		if i == 6000 {
			if _, err := e.cache.Flush(e.at); err != nil {
				t.Fatal(err)
			}
			flushedAt = e.at
			for k, v := range versions {
				versionAtFlush[k] = v
			}
		}
	}
	_ = flushedAt
	for _, d := range e.ssds {
		d.Content().Crash()
	}
	if _, err := e.cache.Recover(); err != nil {
		t.Fatal(err)
	}
	e.checkInvariants()
	// Every page cached at recovery must carry a version that existed
	// at some durable point (<= its version at the final write, >= its
	// version at flush time if it was flushed while on SSD). We check the
	// weaker, precise property: the content matches the recovered version
	// bookkeeping.
	checked := 0
	for lba := range e.cache.mapping {
		got, _, err := e.cache.ReadCheck(e.at, lba)
		if err != nil {
			t.Fatalf("ReadCheck(%d): %v", lba, err)
		}
		v := e.cache.versions[lba]
		if v > 0 && got != blockdev.DataTag(lba, v) {
			t.Fatalf("page %d: content does not match recovered version %d", lba, v)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing recovered")
	}
	_ = versionAtFlush
}

// TestDegradedRunRefetchRegression guards the degraded read path against
// the location-vs-LBA confusion: a multi-page clean run on a failed drive
// must refetch cleanly even when the run's *location* numerically aliases
// some unrelated dirty page's LBA.
func TestDegradedRunRefetchRegression(t *testing.T) {
	e := newEnv(t, nil)
	// Dirty pages at low LBAs, so low location values alias dirty LBAs.
	for lba := int64(0); lba < 200; lba++ {
		e.write(lba, 1)
	}
	// Clean pages at high LBAs via a large miss fill.
	base := int64(8000)
	e.read(base, 64)
	// Find a contiguous clean run (>= 2 pages) on one column.
	var runLBA int64 = -1
	var runCol int
	for lba := base; lba < base+62; lba++ {
		a, okA := e.cache.mapping[lba]
		b, okB := e.cache.mapping[lba+1]
		if !okA || !okB || a.state != stateSSDClean || b.state != stateSSDClean {
			continue
		}
		if b.loc == a.loc+1 {
			colA, _ := e.cache.lay.devOffset(e.cache.cfg, a.loc)
			runLBA, runCol = lba, colA
			break
		}
	}
	if runLBA < 0 {
		t.Skip("no contiguous clean run at this geometry")
	}
	e.ssds[runCol].Fail()
	primReads := e.prim.Stats().ReadOps
	done, err := e.cache.Submit(e.at, blockdev.Request{
		Op: blockdev.OpRead, Off: runLBA * blockdev.PageSize, Len: 2 * blockdev.PageSize,
	})
	if err != nil {
		t.Fatalf("degraded clean run read: %v", err)
	}
	e.at = vtime.Max(e.at, done)
	if e.prim.Stats().ReadOps == primReads {
		t.Fatal("run not refetched from primary")
	}
	e.checkInvariants()
}
