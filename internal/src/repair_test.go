package src

import (
	"errors"
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// findDirtyOn locates a dirty on-SSD page whose column is col.
func findDirtyOn(e *env, col int, maxLBA int64) (lba, page int64) {
	for lba := int64(0); lba < maxLBA; lba++ {
		en, ok := e.cache.mapping[lba]
		if !ok || en.state != stateSSDDirty {
			continue
		}
		if c, off := e.cache.lay.devOffset(e.cache.cfg, en.loc); c == col {
			return lba, off / blockdev.PageSize
		}
	}
	return -1, -1
}

// fillDirtySegments writes n full dirty segments and returns the pages per
// segment.
func fillDirtySegments(e *env, n int64) int64 {
	capPages := int64(e.cache.dirtyBuf.Cap())
	for lba := int64(0); lba < n*capPages; lba++ {
		e.write(lba, 1)
	}
	return capPages
}

func TestTransientRetryCorrects(t *testing.T) {
	e := newEnv(t, nil)
	capPages := fillDirtySegments(e, 1)
	target, _ := findDirtyOn(e, 0, capPages)
	if target < 0 {
		t.Fatal("no dirty page on ssd 0")
	}
	e.ssds[0].InjectTransient(2)
	e.read(target, 1) // must succeed on the third attempt
	st := e.cache.RepairStats()
	if st.TransientErrors != 2 || st.Retries != 2 {
		t.Fatalf("stats %+v, want 2 transients corrected by 2 retries", st)
	}
	if n := e.cache.DeviceErrors(0); n != 1 {
		t.Fatalf("budget charge %d, want 1 (corrected errors count once, md-style)", n)
	}
	if e.cache.DeviceDown(0) {
		t.Fatal("corrected transient escalated the column")
	}
}

func TestTransientExhaustionFallsBackDegraded(t *testing.T) {
	e := newEnv(t, nil)
	capPages := fillDirtySegments(e, 1)
	target, _ := findDirtyOn(e, 0, capPages)
	if target < 0 {
		t.Fatal("no dirty page on ssd 0")
	}
	// RetryLimit defaults to 3: initial try + 3 retries = 4 failures.
	e.ssds[0].InjectTransient(4)
	before := e.ssds[1].Stats().ReadOps
	e.read(target, 1)
	if e.ssds[1].Stats().ReadOps == before {
		t.Fatal("exhausted retries did not fall back to parity reconstruction")
	}
	st := e.cache.RepairStats()
	if st.TransientErrors != 4 || st.Retries != 3 {
		t.Fatalf("stats %+v, want 4 transients / 3 retries", st)
	}
	if n := e.cache.DeviceErrors(0); n != 1 {
		t.Fatalf("budget charge %d, want 1", n)
	}
	e.checkInvariants()
}

func TestUnreadableRepairedInPlaceFromParity(t *testing.T) {
	e := newEnv(t, nil)
	capPages := fillDirtySegments(e, 1)
	target, page := findDirtyOn(e, 0, capPages)
	if target < 0 {
		t.Fatal("no dirty page on ssd 0")
	}
	e.ssds[0].InjectUnreadable(page)
	before := e.ssds[1].Stats().ReadOps
	e.read(target, 1)
	if e.ssds[1].Stats().ReadOps == before {
		t.Fatal("latent error repair did not read the survivors")
	}
	if n := e.ssds[0].UnreadablePages(); n != 0 {
		t.Fatalf("latent error not cleared by repair rewrite: %d pages still bad", n)
	}
	st := e.cache.RepairStats()
	if st.UnreadableErrors != 1 || st.RepairedPages != 1 {
		t.Fatalf("stats %+v, want 1 unreadable / 1 repaired", st)
	}
	// The repaired page reads directly now.
	survReads := e.ssds[1].Stats().ReadOps
	e.read(target, 1)
	if e.ssds[1].Stats().ReadOps != survReads {
		t.Fatal("repaired page still reads degraded")
	}
	// The content is still the written version.
	got, _, err := e.cache.ReadCheck(e.at, target)
	if err != nil {
		t.Fatal(err)
	}
	if got != blockdev.DataTag(target, 1) {
		t.Fatalf("repaired page tag %v, want version 1", got)
	}
	e.checkInvariants()
}

func TestUnreadableCleanNPCRefetches(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.cleanBuf.Cap())
	e.read(0, capPages)
	e.read(capPages, capPages)
	var target, page int64 = -1, -1
	for lba := int64(0); lba < 2*capPages; lba++ {
		en, ok := e.cache.mapping[lba]
		if !ok || en.state != stateSSDClean {
			continue
		}
		if col, off := e.cache.lay.devOffset(e.cache.cfg, en.loc); col == 2 {
			target, page = lba, off/blockdev.PageSize
			break
		}
	}
	if target < 0 {
		t.Skip("no clean on-SSD page on ssd 2 at this geometry")
	}
	e.ssds[2].InjectUnreadable(page)
	primReads := e.prim.Stats().ReadOps
	if lat := e.read(target, 1); lat < vtime.Millisecond {
		t.Fatalf("parityless latent-error refetch latency %v, want at least the 1 ms primary device", lat)
	}
	if e.prim.Stats().ReadOps == primReads {
		t.Fatal("parityless latent error did not refetch from primary")
	}
	e.checkInvariants()
}

func TestErrorBudgetEscalatesColumn(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.ErrorBudget = 1 })
	capPages := fillDirtySegments(e, 1)
	target, page := findDirtyOn(e, 0, capPages)
	if target < 0 {
		t.Fatal("no dirty page on ssd 0")
	}
	e.ssds[0].InjectUnreadable(page)
	e.read(target, 1) // the single budget error escalates column 0
	if !e.cache.DeviceDown(0) {
		t.Fatal("budget exhaustion did not escalate the column")
	}
	if st := e.cache.RepairStats(); st.Escalations != 1 {
		t.Fatalf("stats %+v, want 1 escalation", st)
	}
	// The physically healthy but fail-stopped column now serves degraded.
	before := e.ssds[1].Stats().ReadOps
	e.read(target, 1)
	if e.ssds[1].Stats().ReadOps == before {
		t.Fatal("fail-stopped column read did not reconstruct from survivors")
	}
	// Flush must not touch the kicked device.
	flushes := e.ssds[0].Stats().Flushes
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	if e.ssds[0].Stats().Flushes != flushes {
		t.Fatal("flush sent to a fail-stopped column")
	}
	// RebuildSSD re-admits the column with a fresh budget.
	if _, err := e.cache.RebuildSSD(e.at, 0); err != nil {
		t.Fatal(err)
	}
	if e.cache.DeviceDown(0) || e.cache.DeviceErrors(0) != 0 {
		t.Fatal("rebuild did not re-admit the column")
	}
	e.checkInvariants()
}

func TestReplaceSSDOnlineRebuild(t *testing.T) {
	e := newEnv(t, nil)
	capPages := fillDirtySegments(e, 6)
	total := 6 * capPages
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	var onDrive []int64
	for lba := int64(0); lba < total; lba++ {
		en, ok := e.cache.mapping[lba]
		if !ok || en.state != stateSSDDirty {
			continue
		}
		if col, _ := e.cache.lay.devOffset(e.cache.cfg, en.loc); col == 1 {
			onDrive = append(onDrive, lba)
		}
	}
	if len(onDrive) == 0 {
		t.Fatal("nothing on ssd 1")
	}
	e.ssds[1].Fail()

	// Capacity mismatch is rejected.
	small := blockdev.NewMemDevice(testSSDCap/2, 10*vtime.Microsecond)
	if _, err := e.cache.ReplaceSSD(e.at, 1, small); err == nil {
		t.Fatal("accepted undersized replacement")
	}
	fresh := blockdev.NewFaulty(blockdev.NewMemDevice(testSSDCap, 10*vtime.Microsecond))
	done, err := e.cache.ReplaceSSD(e.at, 1, fresh)
	if err != nil {
		t.Fatal(err)
	}
	e.at = vtime.Max(e.at, done)
	if !e.cache.Rebuilding() {
		t.Fatal("not rebuilding after ReplaceSSD")
	}
	if _, err := e.cache.ReplaceSSD(e.at, 2, blockdev.NewMemDevice(testSSDCap, 10*vtime.Microsecond)); err == nil {
		t.Fatal("accepted a second concurrent rebuild")
	}
	remaining, totalSegs := e.cache.RebuildProgress()
	if totalSegs == 0 || remaining != totalSegs {
		t.Fatalf("progress %d/%d after replace", remaining, totalSegs)
	}

	// Before any rebuild step, a not-yet-rebuilt page must verify through
	// the degraded path (the fresh device holds nothing).
	if got, _, err := e.cache.ReadCheck(e.at, onDrive[0]); err != nil || got != blockdev.DataTag(onDrive[0], 1) {
		t.Fatalf("degraded ReadCheck during rebuild: tag %v err %v", got, err)
	}

	// Interleave foreground reads with rebuild steps.
	served := 0
	for i := 0; e.cache.Rebuilding(); i++ {
		if i < len(onDrive) {
			e.read(onDrive[i], 1)
			served++
		}
		tstep, _, err := e.cache.RebuildStep(e.at)
		if err != nil {
			t.Fatal(err)
		}
		e.at = vtime.Max(e.at, tstep)
	}
	if served == 0 {
		t.Fatal("no foreground reads interleaved with the rebuild")
	}
	st := e.cache.RepairStats()
	if st.RebuiltSegments == 0 {
		t.Fatal("no segments rebuilt")
	}
	if r, tot := e.cache.RebuildProgress(); r != 0 || tot != 0 {
		t.Fatalf("progress %d/%d after convergence", r, tot)
	}
	// Every page of the replaced column verifies against its written
	// version on the new device.
	for _, lba := range onDrive {
		got, _, err := e.cache.ReadCheck(e.at, lba)
		if err != nil {
			t.Fatalf("ReadCheck(%d) after rebuild: %v", lba, err)
		}
		if got != blockdev.DataTag(lba, 1) {
			t.Fatalf("page %d content wrong after rebuild", lba)
		}
	}
	e.checkInvariants()
}

func TestScrubDetectsAndRepairsCorruption(t *testing.T) {
	e := newEnv(t, nil)
	capPages := fillDirtySegments(e, 2)
	target, page := findDirtyOn(e, 0, 2*capPages)
	if target < 0 {
		t.Fatal("no dirty page on ssd 0")
	}
	if err := e.ssds[0].Content().Corrupt(page); err != nil {
		t.Fatal(err)
	}
	done, err := e.cache.Scrub(e.at)
	if err != nil {
		t.Fatal(err)
	}
	e.at = vtime.Max(e.at, done)
	st := e.cache.RepairStats()
	if st.ScrubbedPages == 0 {
		t.Fatal("scrub verified nothing")
	}
	if st.CorruptionsDetected != 1 || st.CorruptionsRepaired != 1 {
		t.Fatalf("stats %+v, want 1 corruption detected and repaired", st)
	}
	got, _, err := e.cache.ReadCheck(e.at, target)
	if err != nil {
		t.Fatal(err)
	}
	if got != blockdev.DataTag(target, 1) {
		t.Fatalf("scrubbed page tag %v, want version 1", got)
	}
	// A second pass is quiet.
	if _, err := e.cache.Scrub(e.at); err != nil {
		t.Fatal(err)
	}
	if st := e.cache.RepairStats(); st.CorruptionsDetected != 1 {
		t.Fatalf("second scrub pass found new corruption: %+v", st)
	}
	e.checkInvariants()
}

func TestScrubRequiresTrackContent(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.TrackContent = false })
	if _, err := e.cache.ScrubStep(e.at); err == nil {
		t.Fatal("scrub without TrackContent accepted")
	}
}

// TestDegradedNPCRefetchChargesPrimaryLatency pins the satellite fix: the
// drop-and-refetch path must charge the primary fill at the degraded read's
// virtual time, so the caller sees at least the primary device latency.
func TestDegradedNPCRefetchChargesPrimaryLatency(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.cleanBuf.Cap())
	e.read(0, capPages)
	e.read(capPages, capPages)
	var target int64 = -1
	for lba := int64(0); lba < 2*capPages; lba++ {
		en, ok := e.cache.mapping[lba]
		if !ok || en.state != stateSSDClean {
			continue
		}
		if col, _ := e.cache.lay.devOffset(e.cache.cfg, en.loc); col == 2 {
			target = lba
			break
		}
	}
	if target < 0 {
		t.Skip("no clean on-SSD page on ssd 2 at this geometry")
	}
	e.ssds[2].Fail()
	if lat := e.read(target, 1); lat < vtime.Millisecond {
		t.Fatalf("degraded NPC refetch latency %v, want at least the 1 ms primary device", lat)
	}
	e.checkInvariants()
}

// TestRAID0DirtyColumnFailureIsDataLoss covers the parityless-dirty second
// half of the failure matrix: under RAID-0 every segment is parityless, so a
// column failure under dirty data is unrecoverable.
func TestRAID0DirtyColumnFailureIsDataLoss(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.Level = RAID0 })
	capPages := fillDirtySegments(e, 1)
	target, _ := findDirtyOn(e, 0, capPages)
	if target < 0 {
		t.Fatal("no dirty page on ssd 0")
	}
	e.ssds[0].Fail()
	_, err := e.cache.Submit(e.at, blockdev.Request{
		Op: blockdev.OpRead, Off: target * blockdev.PageSize, Len: blockdev.PageSize,
	})
	if !errors.Is(err, ErrDataLoss) {
		t.Fatalf("err = %v, want ErrDataLoss", err)
	}
}

// TestWriteExhaustionAbandonsSegment covers the live-column write failure
// path: a destage write that exhausts the retry budget must not leave the
// segment half-written (raw pages without a summary blob would lose
// flush-acknowledged dirty data at the next crash). The segment is
// abandoned, its pages return to the buffer, and the flush retries them on
// a fresh segment once the fault clears.
func TestWriteExhaustionAbandonsSegment(t *testing.T) {
	e := newEnv(t, nil)
	// A couple of dirty pages, still buffered (buffer not full).
	e.write(10, 1)
	e.write(11, 1)
	// RetryLimit defaults to 3: 4 armed faults exhaust one write attempt,
	// then the retried segment write finds the device healthy again.
	e.ssds[0].InjectTransient(4)
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatalf("flush after transient exhaustion: %v", err)
	}
	if e.cache.RepairStats().TransientErrors < 4 {
		t.Fatal("fault never fired: scenario did not exercise exhaustion")
	}
	for _, lba := range []int64{10, 11} {
		if en, ok := e.cache.mapping[lba]; !ok || en.state != stateSSDDirty {
			t.Fatalf("lba %d not destaged after retried flush", lba)
		}
	}
	// The acknowledged data must survive a crash.
	for _, d := range e.ssds {
		d.Content().Crash()
	}
	if _, err := e.cache.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	for _, lba := range []int64{10, 11} {
		if !e.cache.CachedDirty(lba) {
			t.Fatalf("lba %d lost across crash despite acknowledged flush", lba)
		}
	}
	e.checkInvariants()
}

// TestFlushRefusesFalseDurabilityAck: when a live device keeps rejecting
// writes past the drain's retry bound, Flush must fail rather than
// acknowledge durability it cannot provide — and the data must stay cached
// so a later flush can still land it.
func TestFlushRefusesFalseDurabilityAck(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.ErrorBudget = 1 << 30 })
	e.write(10, 1)
	// 8 abandoned attempts x 4 submissions each = 32 faults consumed per
	// flush; 40 outlasts the first flush's bound but not the second's.
	e.ssds[0].InjectTransient(40)
	if _, err := e.cache.Flush(e.at); err == nil {
		t.Fatal("flush acknowledged durability while every destage failed")
	}
	if !e.cache.CachedDirty(10) {
		t.Fatal("failed flush dropped the dirty page")
	}
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatalf("flush after faults drained: %v", err)
	}
	for _, d := range e.ssds {
		d.Content().Crash()
	}
	if _, err := e.cache.Recover(); err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !e.cache.CachedDirty(10) {
		t.Fatal("lba 10 lost across crash despite acknowledged flush")
	}
	e.checkInvariants()
}
