package src

import (
	"math/rand"
	"testing"

	"srccache/internal/blockdev"
)

// Tests for the future-work extensions (paper §6): cost-benefit victim
// selection, hot/cold separation of S2S copies, and array re-striping.

func TestCostBenefitVictimSelection(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.Victim = CostBenefit })
	rng := rand.New(rand.NewSource(21))
	span := int64(8000)
	for i := 0; i < 20000; i++ {
		e.write(rng.Int63n(span), 1)
	}
	e.checkInvariants()
	if e.cache.Counters().GCCopyBytes == 0 && e.cache.Counters().DestageBytes == 0 {
		t.Fatal("GC never ran under cost-benefit selection")
	}
}

func TestCostBenefitScoring(t *testing.T) {
	e := newEnv(t, nil)
	c := e.cache
	// Two synthetic groups: an old, mostly-empty group must outscore a
	// young, mostly-full one.
	c.seqCtr = 100
	c.groups[1].seq = 1
	c.groups[1].paycap = 100
	c.groups[1].valid = 10
	c.groups[2].seq = 99
	c.groups[2].paycap = 100
	c.groups[2].valid = 90
	if !(c.costBenefit(1) > c.costBenefit(2)) {
		t.Fatalf("cost-benefit scores %v vs %v", c.costBenefit(1), c.costBenefit(2))
	}
	// A group with no written segments scores zero.
	if c.costBenefit(3) != 0 {
		t.Fatal("empty group score nonzero")
	}
}

func TestVictimPolicyStringIncludesCostBenefit(t *testing.T) {
	if CostBenefit.String() != "Cost-Benefit" {
		t.Fatal("name wrong")
	}
}

func TestSeparateGCBufferSegregates(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.SeparateGCBuffer = true })
	if e.cache.gcBuf == nil {
		t.Fatal("gc buffer not created")
	}
	rng := rand.New(rand.NewSource(22))
	span := int64(8000)
	for i := 0; i < 20000; i++ {
		e.write(rng.Int63n(span), 1)
	}
	// GC drains its buffers before returning, so stateBufGC is never
	// observable between operations; the segment counter proves the S2S
	// copies were segregated into their own segments.
	if e.cache.counters.GCSegments == 0 {
		t.Fatal("S2S copies never used the separate buffer")
	}
	e.checkInvariants()
	// Reads of GC-buffered pages are RAM hits; rewrites promote them back
	// to the host dirty buffer.
	var gcLBA int64 = -1
	for lba, en := range e.cache.mapping {
		if en.state == stateBufGC {
			gcLBA = lba
			break
		}
	}
	if gcLBA >= 0 {
		if lat := e.read(gcLBA, 1); lat != 0 {
			t.Fatalf("gc-buffered read latency %v", lat)
		}
		e.write(gcLBA, 1)
		// The rewrite promotes the page out of the GC buffer (it may have
		// already reached SSD if the dirty buffer filled).
		if en := e.cache.mapping[gcLBA]; en.state == stateBufGC || !en.state.dirty() {
			t.Fatalf("rewrite left state %v", en.state)
		}
	}
	// Flush drains the GC buffer too.
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	if e.cache.DirtyBufferedPages() != 0 {
		t.Fatal("flush left buffered dirty pages")
	}
	e.checkInvariants()
}

func TestSeparateGCBufferContentOracle(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.SeparateGCBuffer = true })
	rng := rand.New(rand.NewSource(23))
	span := int64(6000)
	versions := make(map[int64]uint64)
	for i := 0; i < 15000; i++ {
		lba := rng.Int63n(span)
		if rng.Float64() < 0.6 {
			e.write(lba, 1)
			versions[lba]++
		} else {
			e.read(lba, 1)
		}
	}
	e.checkInvariants()
	for lba, v := range versions {
		want := blockdev.DataTag(lba, v)
		if _, cached := e.cache.mapping[lba]; cached {
			got, _, err := e.cache.ReadCheck(e.at, lba)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("page %d wrong content", lba)
			}
		} else if got, err := e.prim.Content().ReadTag(lba); err != nil {
			t.Fatal(err)
		} else if got != want {
			t.Fatalf("evicted page %d: primary content wrong", lba)
		}
	}
}

func TestResizeExpandPreservesContent(t *testing.T) {
	e := newEnv(t, nil)
	rng := rand.New(rand.NewSource(24))
	span := int64(4000)
	versions := make(map[int64]uint64)
	for i := 0; i < 8000; i++ {
		lba := rng.Int63n(span)
		e.write(lba, 1)
		versions[lba]++
	}
	cachedBefore := e.cache.CachedPages()

	// Expand from 4 to 6 drives (two fresh ones appended).
	devs := make([]blockdev.Device, 6)
	for i := 0; i < 4; i++ {
		devs[i] = e.ssds[i]
	}
	for i := 4; i < 6; i++ {
		devs[i] = blockdev.NewFaulty(blockdev.NewMemDevice(testSSDCap, 0))
	}
	done, err := e.cache.Resize(e.at, devs)
	if err != nil {
		t.Fatal(err)
	}
	if done <= e.at {
		t.Fatal("resize was free")
	}
	e.at = done
	e.checkInvariants()
	if e.cache.lay.m != 6 {
		t.Fatalf("array width %d after expand", e.cache.lay.m)
	}
	if got := e.cache.CachedPages(); got < cachedBefore {
		t.Fatalf("expand lost pages: %d -> %d", cachedBefore, got)
	}
	// Every dirty page must survive with its latest content.
	for lba, v := range versions {
		got, _, err := e.cache.ReadCheck(e.at, lba)
		if err != nil {
			t.Fatalf("page %d after expand: %v", lba, err)
		}
		if got != blockdev.DataTag(lba, v) {
			t.Fatalf("page %d content wrong after expand", lba)
		}
	}
}

func TestResizeContractDestagesOverflow(t *testing.T) {
	e := newEnv(t, nil)
	rng := rand.New(rand.NewSource(25))
	span := int64(3000)
	versions := make(map[int64]uint64)
	for i := 0; i < 6000; i++ {
		lba := rng.Int63n(span)
		e.write(lba, 1)
		versions[lba]++
	}
	// Contract from 4 to 3 drives.
	devs := []blockdev.Device{e.ssds[0], e.ssds[1], e.ssds[2]}
	done, err := e.cache.Resize(e.at, devs)
	if err != nil {
		t.Fatal(err)
	}
	e.at = done
	e.checkInvariants()
	if e.cache.lay.m != 3 {
		t.Fatalf("array width %d after contract", e.cache.lay.m)
	}
	// No data may be lost: each page is either cached with the right
	// content or destaged to primary.
	for lba, v := range versions {
		want := blockdev.DataTag(lba, v)
		if _, cached := e.cache.mapping[lba]; cached {
			got, _, err := e.cache.ReadCheck(e.at, lba)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("page %d wrong after contract", lba)
			}
		} else if got, err := e.prim.Content().ReadTag(lba); err != nil {
			t.Fatal(err)
		} else if got != want {
			t.Fatalf("page %d neither cached nor destaged correctly", lba)
		}
	}
}

func TestResizeValidation(t *testing.T) {
	e := newEnv(t, nil)
	if _, err := e.cache.Resize(0, nil); err == nil {
		t.Fatal("accepted empty array")
	}
	// RAID-5 cannot shrink below 3.
	if _, err := e.cache.Resize(0, []blockdev.Device{e.ssds[0], e.ssds[1]}); err == nil {
		t.Fatal("accepted 2-drive RAID-5")
	}
	small := blockdev.NewMemDevice(testEGS, 0) // smaller than the region
	if _, err := e.cache.Resize(0, []blockdev.Device{e.ssds[0], e.ssds[1], small}); err == nil {
		t.Fatal("accepted undersized drive")
	}
}

func TestResizeThenRecover(t *testing.T) {
	e := newEnv(t, nil)
	for lba := int64(0); lba < 500; lba++ {
		e.write(lba, 1)
	}
	devs := make([]blockdev.Device, 6)
	for i := 0; i < 4; i++ {
		devs[i] = e.ssds[i]
	}
	for i := 4; i < 6; i++ {
		devs[i] = blockdev.NewFaulty(blockdev.NewMemDevice(testSSDCap, 0))
	}
	done, err := e.cache.Resize(e.at, devs)
	if err != nil {
		t.Fatal(err)
	}
	e.at = done
	// Crash after the (flushed) resize: recovery must see the new
	// geometry with no stale old-layout segments resurrected.
	for _, d := range devs {
		d.Content().Crash()
	}
	if _, err := e.cache.Recover(); err != nil {
		t.Fatal(err)
	}
	e.checkInvariants()
	for lba := int64(0); lba < 500; lba++ {
		got, _, err := e.cache.ReadCheck(e.at, lba)
		if err != nil {
			t.Fatalf("page %d after resize+crash: %v", lba, err)
		}
		if got != blockdev.DataTag(lba, 1) {
			t.Fatalf("page %d content wrong after resize+crash", lba)
		}
	}
}
