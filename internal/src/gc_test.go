package src

import (
	"testing"

	"srccache/internal/blockdev"
)

// TestSelGCCopyBoundaryAtUMax pins the S2S/S2D switch at exactly U_MAX:
// the paper (§4.2) copies "while utilization is below U_MAX", so at the
// boundary Sel-GC must already have fallen back to S2D.
func TestSelGCCopyBoundaryAtUMax(t *testing.T) {
	e := newEnv(t, func(cfg *Config) { cfg.GC = SelGC; cfg.UMax = 0.90 })
	c := e.cache
	cases := []struct {
		valid, paycap int64
		want          bool
	}{
		{valid: 899, paycap: 1000, want: true},  // strictly below U_MAX: copy
		{valid: 900, paycap: 1000, want: false}, // exactly U_MAX: destage
		{valid: 901, paycap: 1000, want: false}, // above U_MAX: destage
		{valid: 1000, paycap: 1000, want: false},
	}
	for _, tc := range cases {
		c.totalValid, c.totalPaycap = tc.valid, tc.paycap
		if got := c.copyEligible(); got != tc.want {
			t.Errorf("utilization %d/%d: copyEligible = %v, want %v",
				tc.valid, tc.paycap, got, tc.want)
		}
	}

	// S2D never copies, whatever the utilization.
	s2d := newEnv(t, func(cfg *Config) { cfg.GC = S2D })
	s2d.cache.totalValid, s2d.cache.totalPaycap = 1, 1000
	if s2d.cache.copyEligible() {
		t.Error("S2D reported copy-eligible")
	}
}

// TestReinsertKeepsHotBitWhenSuperseded covers the S2S second-chance path:
// a hot clean page that was superseded while the victim was being gathered
// must be skipped without consuming its hot bit — the live copy keeps its
// second chance.
func TestReinsertKeepsHotBitWhenSuperseded(t *testing.T) {
	e := newEnv(t, nil)
	c := e.cache
	const lba = 5
	c.hot.Set(lba)
	superseded := entry{state: stateBufDirty, loc: 0}
	c.mapping[lba] = superseded

	cleanBefore := c.cleanBuf.Live()
	copiedBefore := c.counters.GCCopyBytes
	if err := c.reinsert(0, []liveEntry{{lba: lba, dirty: false}}, false); err != nil {
		t.Fatal(err)
	}
	if !c.hot.Get(lba) {
		t.Error("superseded hot clean page lost its hot bit")
	}
	if got := c.mapping[lba]; got != superseded {
		t.Errorf("mapping overwritten: %+v", got)
	}
	if c.cleanBuf.Live() != cleanBefore {
		t.Error("superseded page was copied into the clean buffer")
	}
	if c.counters.GCCopyBytes != copiedBefore {
		t.Error("superseded page charged a GC copy")
	}
}

// TestReinsertCopiesHotClean is the companion positive case: an
// unsuperseded hot clean page is copied into the clean buffer with its hot
// bit consumed.
func TestReinsertCopiesHotClean(t *testing.T) {
	e := newEnv(t, func(cfg *Config) { cfg.TrackContent = false })
	c := e.cache
	const lba = 7
	c.hot.Set(lba)

	cleanBefore := c.cleanBuf.Live()
	if err := c.reinsert(0, []liveEntry{{lba: lba, dirty: false}}, false); err != nil {
		t.Fatal(err)
	}
	if c.hot.Get(lba) {
		t.Error("copied page kept its hot bit (second chance not consumed)")
	}
	got, ok := c.mapping[lba]
	if !ok || got.state != stateBufClean {
		t.Fatalf("page not in clean buffer: %+v (ok=%v)", got, ok)
	}
	if c.cleanBuf.Live() != cleanBefore+1 {
		t.Error("clean buffer did not grow")
	}
	if c.counters.GCCopyBytes != blockdev.PageSize {
		t.Errorf("GCCopyBytes = %d, want one page", c.counters.GCCopyBytes)
	}

	// A cold clean page is dropped outright.
	const cold = 9
	if err := c.reinsert(0, []liveEntry{{lba: cold, dirty: false}}, false); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.mapping[cold]; ok {
		t.Error("cold clean page was copied")
	}
}
