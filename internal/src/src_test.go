package src

import (
	"math/rand"
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Test geometry: 4 SSDs of 16 MiB, 1 MiB erase groups (16 groups), 16 KiB
// segment columns (4 pages: MS + 2 payload + ME), 64 segments per group.
const (
	testSSDCap  = 16 << 20
	testEGS     = 1 << 20
	testSegCol  = 16 << 10
	testPrimCap = 64 << 20
)

type env struct {
	cache *Cache
	ssds  []*blockdev.Faulty
	prim  *blockdev.MemDevice
	at    vtime.Time
	t     *testing.T
}

func newEnv(t *testing.T, mutate func(*Config)) *env {
	t.Helper()
	ssds := make([]*blockdev.Faulty, 4)
	devs := make([]blockdev.Device, 4)
	for i := range ssds {
		ssds[i] = blockdev.NewFaulty(blockdev.NewMemDevice(testSSDCap, 10*vtime.Microsecond))
		devs[i] = ssds[i]
	}
	prim := blockdev.NewMemDevice(testPrimCap, vtime.Millisecond)
	cfg := Config{
		SSDs:           devs,
		Primary:        prim,
		EraseGroupSize: testEGS,
		SegmentColumn:  testSegCol,
		TrackContent:   true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &env{cache: c, ssds: ssds, prim: prim, t: t}
}

func (e *env) write(lba, pages int64) {
	e.t.Helper()
	done, err := e.cache.Submit(e.at, blockdev.Request{
		Op: blockdev.OpWrite, Off: lba * blockdev.PageSize, Len: pages * blockdev.PageSize,
	})
	if err != nil {
		e.t.Fatalf("write lba %d: %v", lba, err)
	}
	e.at = vtime.Max(e.at, done)
}

func (e *env) read(lba, pages int64) vtime.Duration {
	e.t.Helper()
	done, err := e.cache.Submit(e.at, blockdev.Request{
		Op: blockdev.OpRead, Off: lba * blockdev.PageSize, Len: pages * blockdev.PageSize,
	})
	if err != nil {
		e.t.Fatalf("read lba %d: %v", lba, err)
	}
	lat := done.Sub(e.at)
	e.at = vtime.Max(e.at, done)
	return lat
}

// checkInvariants verifies the accounting the cache relies on.
func (e *env) checkInvariants() {
	e.t.Helper()
	c := e.cache
	var valid int64
	for sg := range c.groups {
		g := &c.groups[sg]
		valid += g.valid
		if g.valid < 0 {
			e.t.Fatalf("group %d negative valid %d", sg, g.valid)
		}
	}
	if valid != c.totalValid {
		e.t.Fatalf("totalValid %d != sum of groups %d", c.totalValid, valid)
	}
	var onSSD int64
	for lba, en := range c.mapping {
		switch en.state {
		case stateSSDClean, stateSSDDirty:
			onSSD++
			g := &c.groups[c.lay.groupOf(en.loc)]
			if g.slots == nil {
				e.t.Fatalf("lba %d maps into group %d with no tables", lba, c.lay.groupOf(en.loc))
			}
			gotLBA, gotDirty := unpackSlot(g.slots[c.lay.localSlot(en.loc)])
			if gotLBA != lba || gotDirty != (en.state == stateSSDDirty) {
				e.t.Fatalf("lba %d: slot says (%d,%v), mapping says (%d,%v)",
					lba, gotLBA, gotDirty, lba, en.state == stateSSDDirty)
			}
		}
	}
	if onSSD != c.totalValid {
		e.t.Fatalf("mapped SSD pages %d != totalValid %d", onSSD, c.totalValid)
	}
	if u := c.Utilization(); u < 0 || u > 1.0001 {
		e.t.Fatalf("utilization %v out of range", u)
	}
}

func TestConfigDefaultsMatchTable7(t *testing.T) {
	e := newEnv(t, nil)
	cfg := e.cache.Config()
	if cfg.GC != SelGC || cfg.Victim != FIFO || cfg.UMax != 0.90 ||
		cfg.Parity != NPC || cfg.Level != RAID5 || cfg.Flush != FlushPerSegmentGroup {
		t.Fatalf("defaults %+v do not match the paper's Table 7", cfg)
	}
	if cfg.TWait != 20*vtime.Microsecond {
		t.Fatalf("TWait %v", cfg.TWait)
	}
}

func TestConfigValidation(t *testing.T) {
	prim := blockdev.NewMemDevice(testPrimCap, 0)
	dev := func() blockdev.Device { return blockdev.NewMemDevice(testSSDCap, 0) }
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no ssds", Config{Primary: prim}},
		{"no primary", Config{SSDs: []blockdev.Device{dev()}}},
		{"raid5 with 2 ssds", Config{SSDs: []blockdev.Device{dev(), dev()}, Primary: prim}},
		{"column too small", Config{SSDs: []blockdev.Device{dev(), dev(), dev(), dev()}, Primary: prim, SegmentColumn: 2 * blockdev.PageSize}},
		{"erase group not column multiple", Config{SSDs: []blockdev.Device{dev(), dev(), dev(), dev()}, Primary: prim, EraseGroupSize: 24 << 10, SegmentColumn: 16 << 10}},
		{"too few groups", Config{SSDs: []blockdev.Device{dev(), dev(), dev(), dev()}, Primary: prim, CachePerSSD: 2 << 20, EraseGroupSize: 1 << 20}},
		{"bad umax", Config{SSDs: []blockdev.Device{dev(), dev(), dev(), dev()}, Primary: prim, UMax: 1.5}},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.cfg); err == nil {
				t.Fatal("accepted invalid config")
			}
		})
	}
}

func TestEnumStrings(t *testing.T) {
	if S2D.String() != "S2D" || SelGC.String() != "Sel-GC" {
		t.Fatal("gc names")
	}
	if FIFO.String() != "FIFO" || Greedy.String() != "Greedy" {
		t.Fatal("victim names")
	}
	if PC.String() != "PC" || NPC.String() != "NPC" {
		t.Fatal("parity names")
	}
	if RAID0.String() != "RAID-0" || RAID5.String() != "RAID-5" {
		t.Fatal("raid names")
	}
	if FlushPerSegment.String() != "per-segment" || FlushPerSegmentGroup.String() != "per-segment-group" {
		t.Fatal("flush names")
	}
	if FlushPerMetadata.String() != "per-metadata" || FlushNever.String() != "never" {
		t.Fatal("flush names")
	}
}

func TestRAID0ForcesNPC(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.Level = RAID0; c.Parity = PC })
	if e.cache.Config().Parity != NPC {
		t.Fatal("RAID-0 did not degrade PC to NPC")
	}
}

func TestWriteThenReadHitsBuffer(t *testing.T) {
	e := newEnv(t, nil)
	e.write(100, 1)
	// Still in the dirty segment buffer: a read is a RAM hit.
	if lat := e.read(100, 1); lat != 0 {
		t.Fatalf("buffered read latency %v, want 0", lat)
	}
	ctr := e.cache.Counters()
	if ctr.ReadHits != 1 || ctr.Reads != 1 {
		t.Fatalf("counters %+v", ctr)
	}
}

func TestSegmentWriteAtBufferCapacity(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.dirtyBuf.Cap())
	before := bytesWritten(e)
	// One page short of capacity: nothing reaches the SSDs.
	for i := int64(0); i < capPages-1; i++ {
		e.write(i, 1)
	}
	if got := bytesWritten(e) - before; got != 0 {
		t.Fatalf("premature segment write of %d bytes", got)
	}
	// The capacity-filling write triggers a full segment: 4 columns (3
	// data + parity under RAID-5) of a full column each.
	e.write(capPages-1, 1)
	if got := bytesWritten(e) - before; got != 4*testSegCol {
		t.Fatalf("segment wrote %d bytes, want %d", got, 4*testSegCol)
	}
	if e.cache.DirtyBufferedPages() != 0 {
		t.Fatal("buffer not reset after segment write")
	}
	if e.cache.Counters().ParityBytes == 0 || e.cache.Counters().MetadataBytes == 0 {
		t.Fatalf("overhead counters %+v", e.cache.Counters())
	}
	e.checkInvariants()
}

func bytesWritten(e *env) int64 {
	var n int64
	for _, d := range e.ssds {
		n += d.Stats().WriteBytes
	}
	return n
}

func TestNPCCleanSegmentSkipsParity(t *testing.T) {
	runParityCheck := func(mode ParityMode) int64 {
		e := newEnv(t, func(c *Config) { c.Parity = mode })
		// Fill primary-backed pages into the clean buffer via read misses.
		capPages := int64(e.cache.cleanBuf.Cap())
		e.read(0, capPages) // may overfill but at least one clean segment forms
		return e.cache.Counters().ParityBytes
	}
	if p := runParityCheck(NPC); p != 0 {
		t.Fatalf("NPC clean segment wrote %d parity bytes", p)
	}
	if p := runParityCheck(PC); p == 0 {
		t.Fatal("PC clean segment wrote no parity")
	}
}

func TestRAID5ParityRotates(t *testing.T) {
	e := newEnv(t, nil)
	capPages := int64(e.cache.dirtyBuf.Cap())
	// Write enough full dirty segments to wrap the rotation.
	for s := int64(0); s < 8; s++ {
		for i := int64(0); i < capPages; i++ {
			e.write(s*capPages+i, 1)
		}
	}
	seen := map[int8]bool{}
	g := &e.cache.groups[e.cache.active]
	for seg := int64(0); seg < 8; seg++ {
		seen[g.segParity[seg]] = true
	}
	if len(seen) != 4 {
		t.Fatalf("parity visited %d columns over 8 segments, want 4", len(seen))
	}
}

func TestRAID4ParityFixed(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.Level = RAID4 })
	capPages := int64(e.cache.dirtyBuf.Cap())
	for s := int64(0); s < 4; s++ {
		for i := int64(0); i < capPages; i++ {
			e.write(s*capPages+i, 1)
		}
	}
	g := &e.cache.groups[e.cache.active]
	for seg := int64(0); seg < 4; seg++ {
		if g.segParity[seg] != 3 {
			t.Fatalf("segment %d parity on column %d, want 3", seg, g.segParity[seg])
		}
	}
}

func TestReadMissFillsCleanBuffer(t *testing.T) {
	e := newEnv(t, nil)
	lat := e.read(500, 1)
	// Miss cost includes the 1 ms primary device.
	if lat < vtime.Millisecond {
		t.Fatalf("miss latency %v, want at least primary latency", lat)
	}
	ctr := e.cache.Counters()
	if ctr.FillBytes != blockdev.PageSize || ctr.ReadHits != 0 {
		t.Fatalf("counters %+v", ctr)
	}
	// Second read is a hit (RAM or SSD).
	if lat := e.read(500, 1); lat >= vtime.Millisecond {
		t.Fatalf("re-read latency %v, should not touch primary", lat)
	}
	if e.cache.Counters().ReadHits != 1 {
		t.Fatalf("counters %+v", e.cache.Counters())
	}
}

func TestOverwriteBufferedCleanPromotesToDirty(t *testing.T) {
	e := newEnv(t, nil)
	e.read(7, 1) // clean fill, stays in clean buffer
	e.write(7, 1)
	en, ok := e.cache.mapping[7]
	if !ok || en.state != stateBufDirty {
		t.Fatalf("entry %+v, want buffered dirty", en)
	}
	if e.cache.cleanBuf.Live() != 0 {
		t.Fatal("clean buffer slot not invalidated")
	}
	e.checkInvariants()
}

func TestFlushWritesPartialSegmentAndFlushesSSDs(t *testing.T) {
	e := newEnv(t, nil)
	e.write(1, 1)
	e.write(2, 1)
	flushes := e.ssds[0].Stats().Flushes
	done, err := e.cache.Flush(e.at)
	if err != nil {
		t.Fatal(err)
	}
	if done < e.at {
		t.Fatal("flush completed in the past")
	}
	if e.cache.DirtyBufferedPages() != 0 {
		t.Fatal("dirty buffer survived flush")
	}
	if e.ssds[0].Stats().Flushes != flushes+1 {
		t.Fatal("SSDs not flushed")
	}
	// The partial segment wasted the remaining payload slots.
	if e.cache.WastedSlots() == 0 {
		t.Fatal("partial segment waste not accounted")
	}
	e.checkInvariants()
}

func TestTickHonorsTWait(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.TWait = vtime.Millisecond })
	e.write(1, 1)
	// Too soon: nothing happens.
	if _, err := e.cache.Tick(e.at); err != nil {
		t.Fatal(err)
	}
	if e.cache.DirtyBufferedPages() != 1 {
		t.Fatal("tick flushed before TWait")
	}
	// After TWait of idleness the partial segment goes out.
	if _, err := e.cache.Tick(e.at.Add(2 * vtime.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if e.cache.DirtyBufferedPages() != 0 {
		t.Fatal("tick did not flush after TWait")
	}
}

func TestFlushPolicyFrequency(t *testing.T) {
	countFlushes := func(policy FlushPolicy) int64 {
		e := newEnv(t, func(c *Config) { c.Flush = policy })
		capPages := int64(e.cache.dirtyBuf.Cap())
		// Write 8 full segments (an eighth of a segment group).
		for i := int64(0); i < 8*capPages; i++ {
			e.write(i%2000, 1)
		}
		return e.cache.Counters().SSDFlushes
	}
	perSeg := countFlushes(FlushPerSegment)
	perMeta := countFlushes(FlushPerMetadata)
	perSG := countFlushes(FlushPerSegmentGroup)
	never := countFlushes(FlushNever)
	if perSeg < 8 {
		t.Fatalf("per-segment flushes %d, want at least one per segment", perSeg)
	}
	// On SRC's layout every segment write ends in metadata (the ME blob),
	// so the Bcache-style per-metadata cadence coincides with per-segment.
	if perMeta != perSeg {
		t.Fatalf("per-metadata flushed %d times, per-segment %d; want equal on this layout", perMeta, perSeg)
	}
	if perSG != 0 {
		t.Fatalf("per-SG flushed %d times before any group filled", perSG)
	}
	if never != 0 {
		t.Fatalf("FlushNever flushed %d times", never)
	}
}

func TestTrimInvalidatesAndForwards(t *testing.T) {
	e := newEnv(t, nil)
	e.write(10, 4)
	if _, err := e.cache.Submit(e.at, blockdev.Request{Op: blockdev.OpTrim, Off: 10 * blockdev.PageSize, Len: 4 * blockdev.PageSize}); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.cache.mapping[10]; ok {
		t.Fatal("trimmed page still mapped")
	}
	if e.prim.Stats().TrimOps != 1 {
		t.Fatal("trim not forwarded to primary")
	}
	e.checkInvariants()
}

func TestGCReclaimsGroups(t *testing.T) {
	e := newEnv(t, nil)
	// Random overwrites across more than cache capacity force GC with
	// partially live victims.
	rng := rand.New(rand.NewSource(3))
	span := int64(8000)
	for i := 0; i < 20000; i++ {
		e.write(rng.Int63n(span), 1)
		if i%5000 == 0 {
			e.checkInvariants()
		}
	}
	e.checkInvariants()
	if e.cache.FreeGroups() == 0 {
		t.Fatal("no free groups after GC")
	}
	if e.cache.Counters().DestageBytes == 0 && e.cache.Counters().GCCopyBytes == 0 {
		t.Fatal("gc never moved anything")
	}
}

func TestS2DDestagesDirtyToPrimary(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.GC = S2D })
	rng := rand.New(rand.NewSource(4))
	span := int64(8000)
	for i := 0; i < 20000; i++ {
		e.write(rng.Int63n(span), 1)
	}
	ctr := e.cache.Counters()
	if ctr.DestageBytes == 0 {
		t.Fatal("S2D never destaged")
	}
	if ctr.GCCopyBytes != 0 {
		t.Fatalf("S2D copied %d bytes SSD-to-SSD", ctr.GCCopyBytes)
	}
	if e.prim.Stats().WriteBytes == 0 {
		t.Fatal("primary saw no destage writes")
	}
	e.checkInvariants()
}

func TestSelGCCopiesAndOutHitsS2D(t *testing.T) {
	run := func(gc GCPolicy) (hitRatio float64, gcCopied int64) {
		e := newEnv(t, func(c *Config) { c.GC = gc })
		rng := rand.New(rand.NewSource(11))
		span := int64(4000) // pages, larger than cache capacity
		hot := span / 5
		for i := 0; i < 30000; i++ {
			lba := hot + rng.Int63n(span-hot)
			if rng.Float64() < 0.8 {
				lba = rng.Int63n(hot)
			}
			if rng.Float64() < 0.5 {
				e.write(lba, 1)
			} else {
				e.read(lba, 1)
			}
		}
		e.checkInvariants()
		ctr := e.cache.Counters()
		return ctr.HitRatio(), ctr.GCCopyBytes
	}
	selHit, selCopied := run(SelGC)
	s2dHit, s2dCopied := run(S2D)
	if selCopied == 0 {
		t.Fatal("Sel-GC never copied SSD-to-SSD")
	}
	if s2dCopied != 0 {
		t.Fatalf("S2D copied %d bytes", s2dCopied)
	}
	// Conserving hot data via S2S copying must pay off in hit ratio
	// (paper Table 8 / Figure 7(c)).
	if selHit <= s2dHit {
		t.Fatalf("Sel-GC hit ratio %.3f not above S2D %.3f", selHit, s2dHit)
	}
}

func TestGreedyPicksLeastUtilized(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.Victim = Greedy })
	// Two closed groups with different validity: invalidate most of the
	// first group's pages by rewriting them later, then force GC and check
	// the emptier group went first.
	span := int64(4000)
	for lba := int64(0); lba < span; lba++ {
		e.write(lba, 1)
	}
	e.checkInvariants()
	if e.cache.Counters().DestageBytes == 0 && e.cache.Counters().GCCopyBytes == 0 {
		t.Skip("no GC triggered at this geometry")
	}
}

func TestUMaxForcesS2DAtHighUtilization(t *testing.T) {
	// With UMax very low, Sel-GC behaves like S2D (always above the
	// threshold).
	e := newEnv(t, func(c *Config) { c.GC = SelGC; c.UMax = 0.01 })
	rng := rand.New(rand.NewSource(6))
	span := int64(8000)
	for i := 0; i < 15000; i++ {
		e.write(rng.Int63n(span), 1)
	}
	ctr := e.cache.Counters()
	if ctr.GCCopyBytes != 0 {
		t.Fatalf("Sel-GC with tiny UMax still copied %d bytes", ctr.GCCopyBytes)
	}
	if ctr.DestageBytes == 0 {
		t.Fatal("no destaging happened")
	}
}
