package src

import (
	"math/rand"
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Additional behavioural coverage of the host-facing request paths.

func TestMultiPageWriteSpansSegments(t *testing.T) {
	e := newEnv(t, nil)
	// One request larger than several segments' payload.
	pages := int64(4 * e.cache.dirtyBuf.Cap())
	e.write(0, pages)
	e.checkInvariants()
	var onSSD, buffered int64
	for _, en := range e.cache.mapping {
		if en.state == stateSSDDirty {
			onSSD++
		} else if en.state == stateBufDirty {
			buffered++
		}
	}
	if onSSD+buffered != pages {
		t.Fatalf("cached %d of %d pages", onSSD+buffered, pages)
	}
	if onSSD == 0 {
		t.Fatal("large write never reached the SSDs")
	}
}

func TestMultiPageReadMixedHitMiss(t *testing.T) {
	e := newEnv(t, nil)
	// Cache odd pages, leave even pages to primary.
	for lba := int64(1); lba < 32; lba += 2 {
		e.write(lba, 1)
	}
	primReads := e.prim.Stats().ReadOps
	lat := e.read(0, 32)
	if lat < vtime.Millisecond {
		t.Fatalf("mixed read latency %v did not include the misses", lat)
	}
	if e.prim.Stats().ReadOps == primReads {
		t.Fatal("misses not fetched")
	}
	ctr := e.cache.Counters()
	if ctr.ReadHits != 16 {
		t.Fatalf("hits %d, want 16", ctr.ReadHits)
	}
	// Everything is cached now; a re-read stays local.
	if lat := e.read(0, 32); lat >= vtime.Millisecond {
		t.Fatalf("re-read latency %v", lat)
	}
	e.checkInvariants()
}

func TestTrimOfBufferedPages(t *testing.T) {
	e := newEnv(t, nil)
	e.write(10, 2) // buffered dirty
	e.read(40, 1)  // buffered clean
	if _, err := e.cache.Submit(e.at, blockdev.Request{
		Op: blockdev.OpTrim, Off: 10 * blockdev.PageSize, Len: 2 * blockdev.PageSize,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.cache.Submit(e.at, blockdev.Request{
		Op: blockdev.OpTrim, Off: 40 * blockdev.PageSize, Len: blockdev.PageSize,
	}); err != nil {
		t.Fatal(err)
	}
	if len(e.cache.mapping) != 0 {
		t.Fatalf("%d pages still mapped after trims", len(e.cache.mapping))
	}
	if e.cache.dirtyBuf.Live() != 0 || e.cache.cleanBuf.Live() != 0 {
		t.Fatal("buffer slots not invalidated by trim")
	}
	e.checkInvariants()
}

func TestSingleSSDRAID0Cache(t *testing.T) {
	// The paper's NVMe configuration: one drive, no parity.
	dev := blockdev.NewFaulty(blockdev.NewMemDevice(testSSDCap, 10*vtime.Microsecond))
	prim := blockdev.NewMemDevice(testPrimCap, vtime.Millisecond)
	c, err := New(Config{
		SSDs:           []blockdev.Device{dev},
		Primary:        prim,
		EraseGroupSize: testEGS,
		SegmentColumn:  testSegCol,
		Level:          RAID0,
		TrackContent:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var at vtime.Time
	rng := rand.New(rand.NewSource(41))
	for i := 0; i < 8000; i++ {
		lba := rng.Int63n(4000)
		done, err := c.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: lba * blockdev.PageSize, Len: blockdev.PageSize})
		if err != nil {
			t.Fatal(err)
		}
		at = vtime.Max(at, done)
	}
	if c.Counters().ParityBytes != 0 {
		t.Fatalf("single-drive RAID-0 wrote %d parity bytes", c.Counters().ParityBytes)
	}
	if c.Counters().DestageBytes == 0 && c.Counters().GCCopyBytes == 0 {
		t.Fatal("single-drive cache never garbage collected")
	}
}

func TestCachePerSSDSubset(t *testing.T) {
	// Use only half of each device as cache region.
	e := newEnv(t, func(c *Config) { c.CachePerSSD = testSSDCap / 2 })
	if e.cache.Groups() != int(testSSDCap/2/testEGS) {
		t.Fatalf("groups %d", e.cache.Groups())
	}
	for lba := int64(0); lba < 500; lba++ {
		e.write(lba, 1)
	}
	e.checkInvariants()
	// No device write may land past the region (the superblock and data
	// all live inside it).
	for i, d := range e.ssds {
		if got := d.Stats().WriteBytes; got == 0 {
			t.Fatalf("ssd %d idle", i)
		}
	}
}

func TestCountersCoherence(t *testing.T) {
	e := newEnv(t, nil)
	rng := rand.New(rand.NewSource(43))
	var wantReads, wantWrites, wantReadBytes, wantWriteBytes int64
	for i := 0; i < 3000; i++ {
		lba := rng.Int63n(3000)
		n := 1 + rng.Int63n(4)
		if rng.Float64() < 0.5 {
			e.write(lba, n)
			wantWrites += n
			wantWriteBytes += n * blockdev.PageSize
		} else {
			e.read(lba, n)
			wantReads += n
			wantReadBytes += n * blockdev.PageSize
		}
	}
	ctr := e.cache.Counters()
	if ctr.Reads != wantReads || ctr.Writes != wantWrites ||
		ctr.ReadBytes != wantReadBytes || ctr.WriteBytes != wantWriteBytes {
		t.Fatalf("counters %+v, want r=%d w=%d rb=%d wb=%d",
			ctr, wantReads, wantWrites, wantReadBytes, wantWriteBytes)
	}
	if ctr.ReadHits > ctr.Reads {
		t.Fatal("more hits than reads")
	}
	if ctr.ReadHitBytes != ctr.ReadHits*blockdev.PageSize {
		t.Fatal("hit bytes inconsistent with hit count")
	}
}

func TestHotBitSecondChance(t *testing.T) {
	e := newEnv(t, nil)
	e.write(5, 1)
	if e.cache.hot.Get(5) {
		t.Fatal("first write marked hot")
	}
	e.read(5, 1)
	if !e.cache.hot.Get(5) {
		t.Fatal("read hit did not mark hot")
	}
	e.write(5, 1)
	if !e.cache.hot.Get(5) {
		t.Fatal("rewrite cleared hotness")
	}
}

func TestWastedSlotsAccounting(t *testing.T) {
	e := newEnv(t, nil)
	e.write(1, 1)
	if _, err := e.cache.Flush(e.at); err != nil {
		t.Fatal(err)
	}
	want := int64(e.cache.dirtyBuf.Cap() - 1)
	if e.cache.WastedSlots() != want {
		t.Fatalf("wasted %d slots, want %d (partial segment padding)", e.cache.WastedSlots(), want)
	}
}

func TestStringDescribesConfig(t *testing.T) {
	e := newEnv(t, nil)
	s := e.cache.String()
	for _, want := range []string{"4 ssds", "RAID-5", "Sel-GC", "NPC"} {
		if !containsStr(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
