package src

import (
	"errors"
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Free-space reclamation (paper §4.2). SRC reclaims whole Segment Groups.
// S2D destages dirty data to primary storage and drops clean data; Sel-GC
// instead copies dirty data and hot clean data back into the log (S2S)
// while utilization is below U_MAX, preserving cache contents at the price
// of extra SSD traffic.

// liveEntry is one valid page gathered from a victim group.
type liveEntry struct {
	lba   int64
	loc   int64
	dirty bool
	read  bool // staged from SSD (dirty always; hot clean under S2S)
	lost  bool // unrecoverable clean page in a parityless segment: dropped
	tag   blockdev.Tag
}

// gc reclaims groups until at least two are free. Reclaimed groups are
// reused, overwriting their old summary blobs — the only durable record of
// any pages S2S moved out — so every success path must drain the dirty
// tails first, keeping destruction and replacement in one flush epoch.
//
//srclint:contract flush
func (c *Cache) gc(at vtime.Time) error {
	c.inGC = true
	defer func() { c.inGC = false }()
	for rounds := 0; len(c.freeSGs) < 2; rounds++ {
		if rounds > 2*int(c.lay.numSG) {
			return fmt.Errorf("%w: no progress after %d rounds", ErrNoFreeGroups, rounds)
		}
		victim := c.pickVictim()
		if victim < 0 {
			if len(c.freeSGs) > 0 {
				break
			}
			return ErrNoFreeGroups
		}
		g := &c.groups[victim]
		oldest := c.fifo[0]
		// Sel-GC copies while utilization is below U_MAX; S2D otherwise. A
		// fully live victim is always destaged (copying it would make no
		// space), and copy mode needs a free group to absorb the copies,
		// since the victim is now reclaimed only after they are written.
		copyMode := c.copyEligible() && g.valid < g.paycap && len(c.freeSGs) > 0
		if !copyMode && victim != oldest {
			// Destage forgets records: dirty pages move to primary and clean
			// pages are dropped, destroying the newest on-media record of
			// those LBAs. Recovery resurrects the newest surviving record,
			// so forgetting is only crash-safe from the oldest closed group,
			// where FIFO destruction order (plus the flush barrier below)
			// guarantees every older record is already durably gone. Greedy
			// and CostBenefit keep their preference for copy-mode victims
			// and fall back to the oldest group when destaging.
			victim, g = oldest, &c.groups[oldest]
			copyMode = c.copyEligible() && g.valid < g.paycap && len(c.freeSGs) > 0
		}
		// A non-oldest copy-mode victim must copy even cold clean pages:
		// dropping one forgets its newest record while stale older records
		// may survive in groups that are not yet reclaimed.
		keepCold := copyMode && victim != oldest
		live, readDone, err := c.evacuate(at, victim, copyMode, keepCold)
		if err != nil {
			return err
		}
		if copyMode {
			err = c.reinsert(readDone, live, keepCold)
		} else {
			err = c.destage(readDone, live)
		}
		if err != nil {
			return err
		}
		// Crash-ordering barrier (found by the torture engine's prefix
		// schedules): the victim's trim destroys the only on-media record of
		// everything just moved out of it. Drain the copies and flush before
		// trimming, so a persisted trim implies the replacement copies — and
		// every earlier trim — are durable. Each trim is thereby separated
		// from the previous one by at least one flush, giving the strictly
		// oldest-first durable destruction order recovery depends on.
		done, err := c.drainDirty(readDone)
		if errors.Is(err, ErrNoFreeGroups) {
			// At the no-free-groups edge a destage round is digging out of,
			// there may be no segment left to seal the tails into. The
			// barrier only needs the replacement copies durable somewhere
			// before the trim: primary storage serves, at the price of the
			// cached copies.
			done, err = c.destageBufferedDirty(readDone)
		}
		if err != nil {
			return err
		}
		if _, err := c.flushSSDs(done); err != nil {
			return err
		}
		if err := c.reclaim(at, victim); err != nil {
			return err
		}
	}
	// Destage the dirty tails before returning: pages S2S moved out of the
	// victims still sit in RAM, and once a reclaimed group is reused its
	// old summary blobs — the only durable record of those pages (and of
	// superseded versions of host-rewritten pages) — are overwritten.
	// Writing the tails now keeps the overwrite and the replacement copies
	// in the same flush epoch: a crash either reverts both or sees both.
	_, err := c.drainDirty(at)
	return err
}

// copyEligible reports whether Sel-GC may copy live data back into the log
// (S2S): strictly while utilization is below U_MAX (paper §4.2). At or
// above U_MAX the cache is too full for copying to converge, and GC falls
// back to S2D.
func (c *Cache) copyEligible() bool {
	return c.cfg.GC == SelGC && c.Utilization() < c.cfg.UMax
}

// pickVictim chooses the group to reclaim: the oldest-filled group under
// FIFO, the least-utilized under Greedy, or the best age-weighted
// space-per-copy trade under CostBenefit.
func (c *Cache) pickVictim() int64 {
	if len(c.fifo) == 0 {
		return -1
	}
	switch c.cfg.Victim {
	case Greedy:
		best := c.fifo[0]
		for _, sg := range c.fifo[1:] {
			if c.groups[sg].valid < c.groups[best].valid {
				best = sg
			}
		}
		return best
	case CostBenefit:
		best, bestScore := int64(-1), -1.0
		for _, sg := range c.fifo {
			if score := c.costBenefit(sg); score > bestScore {
				best, bestScore = sg, score
			}
		}
		return best
	default: // FIFO
		return c.fifo[0]
	}
}

// costBenefit scores a group LFS-style: freed space per copy cost, scaled
// by age (older groups are more likely done being invalidated).
func (c *Cache) costBenefit(sg int64) float64 {
	g := &c.groups[sg]
	if g.paycap == 0 {
		return 0
	}
	u := float64(g.valid) / float64(g.paycap)
	age := float64(c.seqCtr - g.seq + 1)
	return age * (1 - u) / (1 + u)
}

// evacuate gathers every valid page of the victim into RAM, charging the
// SSD reads needed to stage the pages that will move: dirty pages always
// (they are either destaged or copied), hot clean pages under S2S copy
// mode, and all clean pages when keepCold copies them forward. It clears
// the victim's slots and mapping entries.
func (c *Cache) evacuate(at vtime.Time, victim int64, copyMode, keepCold bool) ([]liveEntry, vtime.Time, error) {
	g := &c.groups[victim]
	live := make([]liveEntry, 0, g.valid)
	readDone := at

	// Pass 1: gather entries in location order and clear the slots.
	base := victim * c.lay.slotsPerSG()
	for s := int64(0); s < c.lay.slotsPerSG(); s++ {
		packed := g.slots[s]
		if packed == slotFree {
			continue
		}
		lba, dirty := unpackSlot(packed)
		loc := base + s
		e := liveEntry{
			lba: lba, loc: loc, dirty: dirty,
			read: dirty || (copyMode && (keepCold || c.hot.Get(lba))),
		}
		if c.cfg.TrackContent {
			col, off := c.lay.devOffset(c.cfg, loc)
			t, err := c.cfg.SSDs[col].Content().ReadTag(off / blockdev.PageSize)
			if err != nil {
				return nil, readDone, err
			}
			e.tag = t
			// Verify moved pages so GC never propagates silent corruption
			// into new segments (and their parity). Never-versioned pages
			// (preloaded fills) have their expected tag only on primary and
			// are skipped.
			if e.read && c.versions[lba] > 0 {
				if want := blockdev.DataTag(lba, c.versions[lba]); e.tag != want {
					c.repair.CorruptionsDetected++
					sg, seg, _, _ := c.lay.split(loc)
					switch {
					case c.groups[sg].segParity[seg] >= 0:
						fixed, rerr := c.ReconstructTag(loc)
						if rerr != nil {
							return nil, readDone, rerr
						}
						if fixed != want {
							return nil, readDone, fmt.Errorf("%w: parity repair of page %d during gc failed", ErrDataLoss, lba)
						}
						e.tag = fixed
						c.repair.CorruptionsRepaired++
					case dirty:
						return nil, readDone, fmt.Errorf("%w: dirty page %d corrupt without parity", ErrDataLoss, lba)
					default:
						e.lost = true // dropped; reloads from primary on demand
					}
				}
			}
		}
		live = append(live, e)
		g.slots[s] = slotFree
		g.valid--
		c.totalValid--
		delete(c.mapping, lba)
	}

	// Pass 2: stage the pages that move, coalescing location-contiguous
	// reads; a failed column is reconstructed from parity, or — in a
	// parityless segment — its pages are marked lost (clean data only;
	// dirty pages in parityless segments exist only under RAID-0, where
	// a failure is fatal anyway).
	run := make([]int, 0, 16)
	flushRun := func() error {
		if len(run) == 0 {
			return nil
		}
		first := live[run[0]].loc
		n := int64(len(run))
		col, off := c.lay.devOffset(c.cfg, first)
		t, err := c.submitSSD(at, col, blockdev.Request{
			Op: blockdev.OpRead, Off: off, Len: n * blockdev.PageSize,
		})
		if err != nil && (isDeviceFailed(err) || errors.Is(err, blockdev.ErrUnreadable)) {
			// The victim is being reclaimed, so an unreadable run is not
			// repaired in place; like a failed column, it is reconstructed
			// from parity or its clean pages are marked lost.
			sg, seg, _, _ := c.lay.split(first)
			if c.groups[sg].segParity[seg] >= 0 {
				t, err = c.reconstructColumns(at, col, off, n*blockdev.PageSize)
			} else {
				for _, i := range run {
					if live[i].dirty {
						return fmt.Errorf("%w: dirty page %d lost on ssd %d in parityless segment",
							ErrDataLoss, live[i].lba, col)
					}
					live[i].lost = true
				}
				run = run[:0]
				return nil
			}
		}
		if err != nil {
			return err
		}
		readDone = vtime.Max(readDone, t)
		run = run[:0]
		return nil
	}
	for i := range live {
		if !live[i].read || live[i].lost {
			continue
		}
		if len(run) > 0 {
			prev := live[run[len(run)-1]].loc
			_, _, prevCol, _ := c.lay.split(prev)
			_, _, col, _ := c.lay.split(live[i].loc)
			if col != prevCol || live[i].loc != prev+1 {
				if err := flushRun(); err != nil {
					return nil, readDone, err
				}
			}
		}
		run = append(run, i)
	}
	if err := flushRun(); err != nil {
		return nil, readDone, err
	}
	// Lost entries cannot be copied or destaged.
	kept := live[:0]
	for _, e := range live {
		if !e.lost {
			kept = append(kept, e)
		}
	}
	return kept, readDone, nil
}

// reclaim trims the victim's region on every SSD and returns it to the free
// pool.
func (c *Cache) reclaim(at vtime.Time, victim int64) error {
	g := &c.groups[victim]
	if g.valid != 0 {
		return fmt.Errorf("src: reclaiming group %d with %d valid pages", victim, g.valid)
	}
	for col := range c.cfg.SSDs {
		_, err := c.submitSSD(at, col, blockdev.Request{
			Op:  blockdev.OpTrim,
			Off: victim * c.cfg.EraseGroupSize,
			Len: c.cfg.EraseGroupSize,
		})
		if err != nil && !isDeviceFailed(err) {
			return err
		}
	}
	// Segments of a reclaimed group need no rebuild: the trim emptied them,
	// and any refill writes every column anew.
	c.rebuildForget(victim)
	c.totalPaycap -= g.paycap
	g.paycap = 0
	g.state = groupFree
	for i, sg := range c.fifo {
		if sg == victim {
			c.fifo = append(c.fifo[:i], c.fifo[i+1:]...)
			break
		}
	}
	c.freeSGs = append(c.freeSGs, victim)
	return nil
}

// reinsert implements the S2S path of Sel-GC: dirty pages re-enter the
// dirty segment buffer, hot clean pages the clean buffer (with their hot
// bit consumed — second chance), and cold clean pages are dropped — unless
// keepCold copies them too, the crash-safe mode for non-oldest victims.
func (c *Cache) reinsert(at vtime.Time, live []liveEntry, keepCold bool) error {
	for _, e := range live {
		if !e.dirty {
			if !keepCold && !c.hot.Get(e.lba) {
				continue // cold clean data: discarding it costs nothing
			}
			if _, ok := c.mapping[e.lba]; ok {
				continue // superseded while gathering: the live copy keeps the hot bit
			}
			c.hot.Clear(e.lba)
			slot := c.cleanBuf.Append(e.lba, e.tag)
			c.mapping[e.lba] = entry{state: stateBufClean, loc: int64(slot)}
			c.counters.GCCopyBytes += blockdev.PageSize
			if c.cleanBuf.Full() {
				if _, err := c.writeSegment(at, c.cleanBuf, false); err != nil &&
					!errors.Is(err, errSegmentAbandoned) {
					return err
				}
			}
			continue
		}
		if _, ok := c.mapping[e.lba]; ok {
			continue
		}
		// In SeparateGCBuffer mode, aged dirty data (GC survivors) forms
		// its own segments instead of mixing with fresh host writes.
		buf, state := c.dirtyBuf, stateBufDirty
		if c.gcBuf != nil {
			buf, state = c.gcBuf, stateBufGC
		}
		slot := buf.Append(e.lba, e.tag)
		c.mapping[e.lba] = entry{state: state, loc: int64(slot)}
		c.counters.GCCopyBytes += blockdev.PageSize
		if buf.Full() {
			if _, err := c.writeSegment(at, buf, true); err != nil &&
				!errors.Is(err, errSegmentAbandoned) {
				return err
			}
		}
	}
	return nil
}

// destageBufferedDirty empties the dirty RAM buffers by writing their pages
// back to primary storage and dropping them from the cache — gc's
// space-pressure fallback when the pre-trim drain cannot allocate a
// segment. Write-through semantics for the affected pages: they stay
// durable on primary and refetch on the next miss.
func (c *Cache) destageBufferedDirty(at vtime.Time) (vtime.Time, error) {
	var lbas []int64
	gather := func(buf *segBuffer) {
		if buf == nil {
			return
		}
		for _, s := range buf.slots {
			if s.valid {
				lbas = append(lbas, s.lba)
			}
		}
	}
	gather(c.dirtyBuf)
	gather(c.gcBuf)
	if len(lbas) == 0 {
		return at, nil
	}
	done, err := c.destageRuns(at, lbas)
	if err != nil {
		return at, err
	}
	for _, lba := range lbas {
		if e, ok := c.mapping[lba]; ok {
			c.dropPage(lba, e)
		}
	}
	return done, nil
}

// destage implements S2D: dirty pages are written back to primary storage
// (coalesced into LBA-contiguous runs) and clean pages are simply dropped.
func (c *Cache) destage(readDone vtime.Time, live []liveEntry) error {
	var lbas []int64
	for _, e := range live {
		if e.dirty {
			lbas = append(lbas, e.lba)
		}
	}
	_, err := c.destageRuns(readDone, lbas)
	return err
}

func isDeviceFailed(err error) bool {
	return errors.Is(err, blockdev.ErrDeviceFailed)
}
