package src

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// On-SSD metadata (paper §4.1, "Metadata management"): each segment column
// carries a summary block at its start (MS) and end (ME). The summary
// extends the LFS summary structure with a signature, generation number and
// checksum of itself, plus per-page LBA, version and dirty flag. Matching
// MS/ME generations prove the segment was written completely; the recovery
// scan rebuilds the mapping table from them.

// Serialized magics.
const (
	summaryMagic    uint32 = 0x5352434d // "SRCM"
	superblockMagic uint32 = 0x53524353 // "SRCS"
)

// Summary kinds.
const (
	kindMS uint8 = 1
	kindME uint8 = 2
)

// Errors from metadata parsing.
var (
	// ErrBadSummary reports a summary block that fails validation.
	ErrBadSummary = errors.New("src: invalid segment summary")
	// ErrBadSuperblock reports a superblock that fails validation.
	ErrBadSuperblock = errors.New("src: invalid superblock")
)

// summaryEntry describes one payload page of a column. Entries are
// positional: entry i describes payload page i+1 of the column, so a
// summary written for a column whose earlier slots have been invalidated
// must hold the position with a summaryFreeLBA entry rather than compact
// the list.
type summaryEntry struct {
	lba     int64
	version uint64
	dirty   bool
}

// summaryFreeLBA marks a payload slot with no live page in a rebuilt
// summary; recovery skips it without disturbing the positions of the
// entries that follow.
const summaryFreeLBA = -1

// summary is the per-column segment summary.
type summary struct {
	kind      uint8
	gen       int64
	sg, seg   int64
	col       uint8
	parityCol int8
	entries   []summaryEntry
}

// marshal serializes the summary with a trailing CRC-32.
func (s *summary) marshal() []byte {
	buf := make([]byte, 0, 40+len(s.entries)*18)
	var tmp [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:4], v)
		buf = append(buf, tmp[:4]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:8], v)
		buf = append(buf, tmp[:8]...)
	}
	put32(summaryMagic)
	buf = append(buf, s.kind, s.col, uint8(s.parityCol))
	put64(uint64(s.gen))
	put64(uint64(s.sg))
	put64(uint64(s.seg))
	put32(uint32(len(s.entries)))
	for _, e := range s.entries {
		put64(uint64(e.lba))
		put64(e.version)
		flag := uint8(0)
		if e.dirty {
			flag = 1
		}
		buf = append(buf, flag)
	}
	put32(crc32.ChecksumIEEE(buf))
	return buf
}

// parseSummary validates and decodes a summary blob.
func parseSummary(b []byte) (*summary, error) {
	if len(b) < 39 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadSummary, len(b))
	}
	body, crc := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != crc {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSummary)
	}
	if binary.LittleEndian.Uint32(body[:4]) != summaryMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSummary)
	}
	s := &summary{
		kind:      body[4],
		col:       body[5],
		parityCol: int8(body[6]),
		gen:       int64(binary.LittleEndian.Uint64(body[7:])),
		sg:        int64(binary.LittleEndian.Uint64(body[15:])),
		seg:       int64(binary.LittleEndian.Uint64(body[23:])),
	}
	if s.kind != kindMS && s.kind != kindME {
		return nil, fmt.Errorf("%w: kind %d", ErrBadSummary, s.kind)
	}
	count := binary.LittleEndian.Uint32(body[31:])
	rest := body[35:]
	if uint32(len(rest)) != count*17 {
		return nil, fmt.Errorf("%w: %d entries in %d bytes", ErrBadSummary, count, len(rest))
	}
	s.entries = make([]summaryEntry, count)
	for i := range s.entries {
		off := i * 17
		s.entries[i] = summaryEntry{
			lba:     int64(binary.LittleEndian.Uint64(rest[off:])),
			version: binary.LittleEndian.Uint64(rest[off+8:]),
			dirty:   rest[off+16] == 1,
		}
	}
	return s, nil
}

// parseSummaryLenient decodes a summary without the CRC check and with a
// clipped instead of rejected entry array — the unsafe parse the
// RecoveryHooks.SkipSummaryCRC torture hook substitutes to prove the CRC is
// load-bearing. A torn summary blob (its tail still holding a stale copy's
// bytes) decodes to garbage entries here where parseSummary refuses it.
func parseSummaryLenient(b []byte) (*summary, error) {
	if len(b) < 39 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadSummary, len(b))
	}
	body := b[:len(b)-4]
	if binary.LittleEndian.Uint32(body[:4]) != summaryMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSummary)
	}
	s := &summary{
		kind:      body[4],
		col:       body[5],
		parityCol: int8(body[6]),
		gen:       int64(binary.LittleEndian.Uint64(body[7:])),
		sg:        int64(binary.LittleEndian.Uint64(body[15:])),
		seg:       int64(binary.LittleEndian.Uint64(body[23:])),
	}
	if s.kind != kindMS && s.kind != kindME {
		return nil, fmt.Errorf("%w: kind %d", ErrBadSummary, s.kind)
	}
	count := int(binary.LittleEndian.Uint32(body[31:]))
	rest := body[35:]
	if avail := len(rest) / 17; count > avail {
		count = avail // clip: exactly the misapplication parseSummary rejects
	}
	s.entries = make([]summaryEntry, count)
	for i := range s.entries {
		off := i * 17
		s.entries[i] = summaryEntry{
			lba:     int64(binary.LittleEndian.Uint64(rest[off:])),
			version: binary.LittleEndian.Uint64(rest[off+8:]),
			dirty:   rest[off+16] == 1,
		}
	}
	return s, nil
}

// superblock describes the cache instance; it lives in Segment Group 0 and
// is written once (paper: "the very first SG is used to hold the
// superblock ... never modified").
type superblock struct {
	ssds           uint32
	eraseGroupSize int64
	segmentColumn  int64
	numSG          int64
}

func (sb *superblock) marshal() []byte {
	buf := make([]byte, 40)
	binary.LittleEndian.PutUint32(buf[0:], superblockMagic)
	binary.LittleEndian.PutUint32(buf[4:], sb.ssds)
	binary.LittleEndian.PutUint64(buf[8:], uint64(sb.eraseGroupSize))
	binary.LittleEndian.PutUint64(buf[16:], uint64(sb.segmentColumn))
	binary.LittleEndian.PutUint64(buf[24:], uint64(sb.numSG))
	binary.LittleEndian.PutUint32(buf[36:], crc32.ChecksumIEEE(buf[:36]))
	return buf
}

func parseSuperblock(b []byte) (*superblock, error) {
	if len(b) != 40 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadSuperblock, len(b))
	}
	if crc32.ChecksumIEEE(b[:36]) != binary.LittleEndian.Uint32(b[36:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSuperblock)
	}
	if binary.LittleEndian.Uint32(b[0:]) != superblockMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSuperblock)
	}
	return &superblock{
		ssds:           binary.LittleEndian.Uint32(b[4:]),
		eraseGroupSize: int64(binary.LittleEndian.Uint64(b[8:])),
		segmentColumn:  int64(binary.LittleEndian.Uint64(b[16:])),
		numSG:          int64(binary.LittleEndian.Uint64(b[24:])),
	}, nil
}
