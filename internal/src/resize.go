package src

import (
	"errors"
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Array scaling (paper §6, future work: "a stable means to expand or
// contract the number of SSDs in RAID-5"). Resize re-stripes the cache onto
// a new drive set: every live page is gathered (charging the SSD reads),
// the geometry is rebuilt for the new array width, and the pages are
// re-appended through the normal segment-write path — so parity, metadata
// blocks and content tags all come out consistent for the new layout.
// Caching service state (dirtiness, versions, hotness) is preserved;
// cold clean pages are kept too, since scaling should not empty the cache.

// Resize re-stripes the cache onto ssds (which may be more, fewer, or
// partially the same drives; each must match the configured per-drive cache
// region). It returns the virtual time the migration completes. The old
// layout's metadata is trimmed away mid-migration, so no success path may
// return before the final Flush makes the new layout durable.
//
//srclint:contract flush
func (c *Cache) Resize(at vtime.Time, ssds []blockdev.Device) (vtime.Time, error) {
	if len(ssds) < 1 {
		return at, fmt.Errorf("src: resize needs at least one SSD")
	}
	if (c.cfg.Level == RAID4 || c.cfg.Level == RAID5) && len(ssds) < 3 {
		return at, fmt.Errorf("src: %v needs at least 3 SSDs, resize to %d", c.cfg.Level, len(ssds))
	}
	for i, d := range ssds {
		if d.Capacity() < c.cfg.CachePerSSD {
			return at, fmt.Errorf("src: resize ssd %d capacity %d below cache region %d",
				i, d.Capacity(), c.cfg.CachePerSSD)
		}
	}

	// Gather every live page: buffered ones from the segment buffers,
	// on-SSD ones group by group (charging reads).
	var live []liveEntry
	gatherBuf := func(buf *segBuffer, dirty bool) {
		if buf == nil {
			return
		}
		for i := 0; i < buf.Len(); i++ {
			s := buf.Slot(i)
			if s.valid {
				live = append(live, liveEntry{lba: s.lba, dirty: dirty, tag: s.tag})
				delete(c.mapping, s.lba)
			}
		}
		buf.Reset()
	}
	gatherBuf(c.dirtyBuf, true)
	gatherBuf(c.gcBuf, true)
	gatherBuf(c.cleanBuf, false)

	readDone := at
	for sg := int64(1); sg < c.lay.numSG; sg++ {
		st := c.groups[sg].state
		if st != groupClosed && st != groupActive {
			continue
		}
		entries, t, err := c.evacuate(at, sg, true, true)
		if err != nil {
			return at, err
		}
		readDone = vtime.Max(readDone, t)
		live = append(live, entries...)
	}

	// Capacity sanity: the dirty set must fit the new array (clean pages
	// can always be dropped under pressure by GC, dirty cannot without
	// destage — which the reinsertion below may still do via S2D).
	newCfg := c.cfg
	newCfg.SSDs = ssds
	newCfg, err := newCfg.Validate()
	if err != nil {
		return at, err
	}

	// Rebuild the geometry for the new width. Trim the whole cache region
	// on every member first: reused drives must not keep stale segment
	// metadata from the old layout (recovery would resurrect it).
	for _, d := range ssds {
		if _, err := d.Submit(readDone, blockdev.Request{
			Op: blockdev.OpTrim, Off: 0, Len: newCfg.CachePerSSD,
		}); err != nil {
			return at, err
		}
	}
	c.cfg = newCfg
	c.lay = newLayout(newCfg)
	// Per-device failure-handling state restarts with the new member set.
	c.devErrs = make([]int64, c.lay.m)
	c.colDown = make([]bool, c.lay.m)
	c.rebuild = nil
	c.scrub = scrubCursor{sg: 1}
	c.groups = make([]group, c.lay.numSG)
	c.groups[0].state = groupSuperblock
	c.freeSGs = nil
	c.fifo = nil
	c.active = -1
	c.nextSeg = 0
	c.totalValid = 0
	c.totalPaycap = 0
	c.dirtyBuf = newSegBuffer(c.bufCapacity(true))
	c.cleanBuf = newSegBuffer(c.bufCapacity(false))
	if c.cfg.SeparateGCBuffer {
		c.gcBuf = newSegBuffer(c.bufCapacity(true))
	} else {
		c.gcBuf = nil
	}
	if err := c.writeSuperblock(); err != nil {
		return at, err
	}
	for sg := int64(1); sg < c.lay.numSG; sg++ {
		c.groups[sg].state = groupFree
		c.freeSGs = append(c.freeSGs, sg)
	}

	// Re-append everything through the normal write path: dirty pages into
	// the dirty buffer, clean pages into the clean buffer. GC engages
	// automatically if the new array is smaller than the live set.
	for _, e := range live {
		if _, ok := c.mapping[e.lba]; ok {
			continue
		}
		if e.dirty {
			slot := c.dirtyBuf.Append(e.lba, e.tag)
			c.mapping[e.lba] = entry{state: stateBufDirty, loc: int64(slot)}
			if c.dirtyBuf.Full() {
				if _, err := c.writeSegment(readDone, c.dirtyBuf, true); err != nil &&
					!errors.Is(err, errSegmentAbandoned) {
					return at, err
				}
			}
			continue
		}
		slot := c.cleanBuf.Append(e.lba, e.tag)
		c.mapping[e.lba] = entry{state: stateBufClean, loc: int64(slot)}
		if c.cleanBuf.Full() {
			if _, err := c.writeSegment(readDone, c.cleanBuf, false); err != nil &&
				!errors.Is(err, errSegmentAbandoned) {
				return at, err
			}
		}
	}
	// Write out the partial tails and make the new layout durable.
	if !c.cleanBuf.Empty() {
		if _, err := c.writeSegment(readDone, c.cleanBuf, false); err != nil &&
			!errors.Is(err, errSegmentAbandoned) {
			return at, err
		}
	}
	return c.Flush(readDone)
}
