package src

import (
	"testing"
	"testing/quick"

	"srccache/internal/blockdev"
)

func testLayout(t *testing.T) (layout, Config) {
	t.Helper()
	devs := make([]blockdev.Device, 4)
	for i := range devs {
		devs[i] = blockdev.NewMemDevice(testSSDCap, 0)
	}
	cfg, err := Config{
		SSDs:           devs,
		Primary:        blockdev.NewMemDevice(testPrimCap, 0),
		EraseGroupSize: testEGS,
		SegmentColumn:  testSegCol,
	}.Validate()
	if err != nil {
		t.Fatal(err)
	}
	return newLayout(cfg), cfg
}

func TestLayoutLocSplitRoundTrip(t *testing.T) {
	lay, _ := testLayout(t)
	f := func(rawSG, rawSeg uint8, rawCol uint8, rawPic uint8) bool {
		sg := int64(rawSG) % lay.numSG
		seg := int64(rawSeg) % lay.segsPerSG
		col := int(rawCol) % lay.m
		pic := int64(rawPic) % lay.pagesPerCol
		loc := lay.loc(sg, seg, col, pic)
		gsg, gseg, gcol, gpic := lay.split(loc)
		return gsg == sg && gseg == seg && gcol == col && gpic == pic &&
			lay.groupOf(loc) == sg &&
			lay.localSlot(loc) == loc-sg*lay.slotsPerSG()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutDevOffsetsAreUniquePerColumn(t *testing.T) {
	lay, cfg := testLayout(t)
	seen := make(map[[2]int64]bool)
	for sg := int64(0); sg < 2; sg++ {
		for seg := int64(0); seg < lay.segsPerSG; seg++ {
			for col := 0; col < lay.m; col++ {
				for pic := int64(0); pic < lay.pagesPerCol; pic++ {
					loc := lay.loc(sg, seg, col, pic)
					gotCol, off := lay.devOffset(cfg, loc)
					if gotCol != col {
						t.Fatalf("loc %d on col %d, want %d", loc, gotCol, col)
					}
					if off%blockdev.PageSize != 0 || off >= cfg.CachePerSSD {
						t.Fatalf("offset %d out of region", off)
					}
					key := [2]int64{int64(col), off}
					if seen[key] {
						t.Fatalf("offset collision at col %d off %d", col, off)
					}
					seen[key] = true
				}
			}
		}
	}
}

func TestLayoutColumnOffsetsContiguous(t *testing.T) {
	lay, cfg := testLayout(t)
	// Consecutive payload pages within a column map to consecutive device
	// offsets — what makes SRC's reads and writes coalesce.
	for pic := int64(1); pic < lay.pagesPerCol-1; pic++ {
		_, a := lay.devOffset(cfg, lay.loc(1, 3, 2, pic))
		_, b := lay.devOffset(cfg, lay.loc(1, 3, 2, pic+1))
		if b != a+blockdev.PageSize {
			t.Fatalf("pages %d and %d not adjacent (%d, %d)", pic, pic+1, a, b)
		}
	}
	// And the segment's column starts exactly at colOffset.
	_, first := lay.devOffset(cfg, lay.loc(1, 3, 2, 0))
	if first != lay.colOffset(cfg, 1, 3) {
		t.Fatalf("column base %d != colOffset %d", first, lay.colOffset(cfg, 1, 3))
	}
}

func TestPackSlotRoundTrip(t *testing.T) {
	f := func(rawLBA int64, dirty bool) bool {
		lba := rawLBA & ((1 << 62) - 1) // representable range
		gotLBA, gotDirty := unpackSlot(packSlot(lba, dirty))
		return gotLBA == lba && gotDirty == dirty && packSlot(lba, dirty) != slotFree
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParityColProperties(t *testing.T) {
	const m = 4
	// RAID-4: fixed last column. RAID-5: rotates through all columns with
	// period m. RAID-0: none.
	for abs := int64(0); abs < 3*m; abs++ {
		if got := parityCol(RAID4, m, abs); got != m-1 {
			t.Fatalf("RAID4 parity %d at seg %d", got, abs)
		}
		if got := parityCol(RAID0, m, abs); got != -1 {
			t.Fatalf("RAID0 parity %d", got)
		}
		p := parityCol(RAID5, m, abs)
		if p < 0 || p >= m {
			t.Fatalf("RAID5 parity %d out of range", p)
		}
		if parityCol(RAID5, m, abs) != parityCol(RAID5, m, abs+m) {
			t.Fatal("RAID5 rotation period wrong")
		}
	}
	seen := map[int]bool{}
	for abs := int64(0); abs < m; abs++ {
		seen[parityCol(RAID5, m, abs)] = true
	}
	if len(seen) != m {
		t.Fatalf("RAID5 parity covers %d of %d columns", len(seen), m)
	}
}

func TestSummaryMarshalRoundTrip(t *testing.T) {
	s := &summary{
		kind: kindMS, gen: 42, sg: 3, seg: 17, col: 2, parityCol: 1,
		entries: []summaryEntry{
			{lba: 100, version: 7, dirty: true},
			{lba: 200, version: 1, dirty: false},
		},
	}
	got, err := parseSummary(s.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.gen != s.gen || got.sg != s.sg || got.seg != s.seg ||
		got.col != s.col || got.parityCol != s.parityCol || len(got.entries) != 2 {
		t.Fatalf("round trip %+v", got)
	}
	for i := range s.entries {
		if got.entries[i] != s.entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got.entries[i], s.entries[i])
		}
	}
}

func TestSummaryRejectsCorruption(t *testing.T) {
	s := &summary{kind: kindME, gen: 1, entries: []summaryEntry{{lba: 5, version: 1, dirty: true}}}
	blob := s.marshal()
	for _, mutate := range []func([]byte){
		func(b []byte) { b[0] ^= 0xff },        // magic
		func(b []byte) { b[10] ^= 0x01 },       // body bit flip
		func(b []byte) { b[len(b)-1] ^= 0xff }, // crc
		func(b []byte) { b[4] = 99 },           // kind
	} {
		bad := append([]byte(nil), blob...)
		mutate(bad)
		if _, err := parseSummary(bad); err == nil {
			t.Fatal("corrupt summary accepted")
		}
	}
	if _, err := parseSummary(blob[:10]); err == nil {
		t.Fatal("truncated summary accepted")
	}
	if _, err := parseSummary(blob[:len(blob)-8]); err == nil {
		t.Fatal("entry-truncated summary accepted")
	}
}

func TestSuperblockMarshalRoundTrip(t *testing.T) {
	sb := &superblock{ssds: 4, eraseGroupSize: testEGS, segmentColumn: testSegCol, numSG: 16}
	got, err := parseSuperblock(sb.marshal())
	if err != nil {
		t.Fatal(err)
	}
	if *got != *sb {
		t.Fatalf("round trip %+v != %+v", got, sb)
	}
	blob := sb.marshal()
	blob[8] ^= 0x01
	if _, err := parseSuperblock(blob); err == nil {
		t.Fatal("corrupt superblock accepted")
	}
	if _, err := parseSuperblock(blob[:10]); err == nil {
		t.Fatal("short superblock accepted")
	}
}
