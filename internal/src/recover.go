package src

import (
	"errors"
	"fmt"
	"sort"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Crash recovery (paper §4.1, "Failure Handling"): after a power failure,
// SRC scans the on-SSD metadata blocks. A segment column whose MS and ME
// generation numbers match is consistent; mismatched or missing summaries
// mean a torn segment, which is discarded. Consistent summaries are applied
// in generation order to rebuild the in-memory mapping table. Requires
// TrackContent (the summaries live in the device content stores).

// recoveredSeg groups the consistent column summaries of one segment.
type recoveredSeg struct {
	gen     int64
	sg, seg int64
	parity  int8
	cols    []*summary
}

// Recover rebuilds the cache's in-memory state from the SSDs' durable
// metadata, as after a host crash or power failure. Unflushed segments
// (whose summaries were lost with the devices' volatile caches) are
// discarded — the data-loss window the flush policy bounds.
//
// It returns the number of segments recovered.
func (c *Cache) Recover() (int, error) {
	if !c.cfg.TrackContent {
		return 0, errors.New("src: recovery requires TrackContent")
	}
	if err := c.checkSuperblock(); err != nil {
		return 0, err
	}

	// Reset in-memory state.
	c.mapping = make(map[int64]entry)
	c.versions = make(map[int64]uint64)
	c.dirtyBuf.Reset()
	c.cleanBuf.Reset()
	if c.gcBuf != nil {
		c.gcBuf.Reset()
	}
	c.hot.Reset()
	c.active = -1
	c.nextSeg = 0
	c.fifo = nil
	c.freeSGs = nil
	c.totalValid = 0
	c.totalPaycap = 0
	// Runtime failure-handling state does not survive a restart: error
	// budgets restart fresh, and an interrupted rebuild must be restarted
	// by the operator (the replacement device's rebuilt segments were
	// recovered from its own durable summaries).
	for i := range c.devErrs {
		c.devErrs[i] = 0
		c.colDown[i] = false
	}
	c.rebuild = nil
	c.scrub = scrubCursor{sg: 1}
	for sg := int64(1); sg < c.lay.numSG; sg++ {
		g := &c.groups[sg]
		g.state = groupFree
		g.valid = 0
		g.paycap = 0
		if g.slots != nil {
			for i := range g.slots {
				g.slots[i] = slotFree
			}
			for i := range g.segParity {
				g.segParity[i] = -1
				g.segGens[i] = 0
			}
		}
	}

	segs, err := c.scanSummaries()
	if err != nil {
		return 0, err
	}
	// Apply in generation order so the newest copy of each LBA wins.
	sort.Slice(segs, func(i, j int) bool { return segs[i].gen < segs[j].gen })
	if c.cfg.Recovery.OldestWins {
		for i, j := 0, len(segs)-1; i < j; i, j = i+1, j-1 {
			segs[i], segs[j] = segs[j], segs[i]
		}
	}
	maxGen := int64(0)
	for _, rs := range segs {
		c.applySegment(rs)
		if rs.gen > maxGen {
			maxGen = rs.gen
		}
	}
	c.segGen = maxGen
	c.seqCtr = 0

	// Groups with recovered segments are closed (ordered by their oldest
	// generation for FIFO); the rest are free.
	firstGen := make(map[int64]int64)
	for _, rs := range segs {
		if g, ok := firstGen[rs.sg]; !ok || rs.gen < g {
			firstGen[rs.sg] = rs.gen
		}
	}
	var used []int64
	for sg := range firstGen {
		used = append(used, sg)
	}
	sort.Slice(used, func(i, j int) bool { return firstGen[used[i]] < firstGen[used[j]] })
	for _, sg := range used {
		c.groups[sg].state = groupClosed
		c.seqCtr++
		c.groups[sg].seq = c.seqCtr
		c.fifo = append(c.fifo, sg)
	}
	for sg := int64(1); sg < c.lay.numSG; sg++ {
		if c.groups[sg].state == groupFree {
			c.freeSGs = append(c.freeSGs, sg)
		}
	}

	// A crash can cut independent drive caches at different points, leaving
	// a recovered segment whose columns persisted unevenly: each applied
	// column's own pages are intact (its MS/ME sandwich vouches for them),
	// but the parity page — written by a different device — may be stale,
	// so a later device failure could not reconstruct the recovered pages,
	// and a rebuild would refuse to resurrect them. Recompute every
	// recovered segment's parity from the live mapping (expected tags for
	// mapped slots, whatever the media holds for stale ones) and rewrite
	// where it differs. The writes stay volatile: a repeat crash reverts
	// them and the next recovery derives the same repair from the same
	// committed state.
	if err := c.repairRecoveredParity(segs); err != nil {
		return 0, err
	}
	return len(segs), nil
}

// repairRecoveredParity restores the parity stripes of recovered segments.
// Mapped slots contribute their expected tag — repairing silently corrupted
// pages into a reconstructable stripe rather than baking the corruption in —
// and free slots contribute the media tag as-is, so stale remnants of torn
// columns stay XOR-consistent without being trusted.
func (c *Cache) repairRecoveredParity(segs []recoveredSeg) error {
	for _, rs := range segs {
		pcol := int(c.groups[rs.sg].segParity[rs.seg])
		if pcol < 0 {
			continue
		}
		for pic := int64(1); pic <= c.lay.payloadPages; pic++ {
			var want blockdev.Tag
			for col := 0; col < c.lay.m; col++ {
				if col == pcol {
					continue
				}
				loc := c.lay.loc(rs.sg, rs.seg, col, pic)
				_, off := c.lay.devOffset(c.cfg, loc)
				if slot := c.groups[rs.sg].slots[c.lay.localSlot(loc)]; slot != slotFree {
					lba, _ := unpackSlot(slot)
					if v := c.versions[lba]; v > 0 {
						want = want.XOR(blockdev.DataTag(lba, v))
						continue
					}
				}
				t, err := c.cfg.SSDs[col].Content().ReadTag(off / blockdev.PageSize)
				if err != nil {
					return err
				}
				want = want.XOR(t)
			}
			ploc := c.lay.loc(rs.sg, rs.seg, pcol, pic)
			_, poff := c.lay.devOffset(c.cfg, ploc)
			pcont := c.cfg.SSDs[pcol].Content()
			got, err := pcont.ReadTag(poff / blockdev.PageSize)
			if err != nil {
				return err
			}
			if got != want {
				if err := pcont.WriteTag(poff/blockdev.PageSize, want); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// checkSuperblock validates the instance superblock against the
// configuration.
func (c *Cache) checkSuperblock() error {
	blob, err := c.cfg.SSDs[0].Content().ReadBlob(0)
	if err != nil {
		return err
	}
	if blob == nil {
		return fmt.Errorf("%w: missing", ErrBadSuperblock)
	}
	sb, err := parseSuperblock(blob)
	if err != nil {
		return err
	}
	if int(sb.ssds) != c.lay.m || sb.eraseGroupSize != c.cfg.EraseGroupSize ||
		sb.segmentColumn != c.cfg.SegmentColumn || sb.numSG != c.lay.numSG {
		return fmt.Errorf("%w: geometry mismatch", ErrBadSuperblock)
	}
	return nil
}

// scanSummaries walks every potential segment position and collects the
// column summaries whose MS/ME generations match.
func (c *Cache) scanSummaries() ([]recoveredSeg, error) {
	parse := parseSummary
	if c.cfg.Recovery.SkipSummaryCRC {
		parse = parseSummaryLenient
	}
	var out []recoveredSeg
	for sg := int64(1); sg < c.lay.numSG; sg++ {
		for seg := int64(0); seg < c.lay.segsPerSG; seg++ {
			basePage := c.lay.colOffset(c.cfg, sg, seg) / blockdev.PageSize
			var rs *recoveredSeg
			for col := 0; col < c.lay.m; col++ {
				cont := c.cfg.SSDs[col].Content()
				msBlob, err := cont.ReadBlob(basePage)
				if err != nil || msBlob == nil {
					continue
				}
				ms, err := parse(msBlob)
				if err != nil {
					continue // torn or corrupt MS: skip the column
				}
				meBlob, err := cont.ReadBlob(basePage + c.lay.pagesPerCol - 1)
				if err != nil || meBlob == nil {
					continue
				}
				me, err := parse(meBlob)
				if err != nil {
					continue
				}
				if me.gen != ms.gen && !c.cfg.Recovery.SkipGenerationCheck {
					continue // generation mismatch: torn segment column
				}
				if n := int(c.lay.payloadPages); len(ms.entries) > n {
					// Only the lenient parse can produce an oversized entry
					// array; clip so the misapplication stays in bounds.
					ms.entries = ms.entries[:n]
				}
				if ms.sg != sg || ms.seg != seg || int(ms.col) != col {
					continue // stale summary from an address mix-up
				}
				// Columns can disagree on the generation when the segment's
				// coordinates were trimmed and resealed and the crash kept the
				// trim on some devices but not others: the cut-early device
				// still holds the previous seal's summary. The newest seal
				// wins — gc submits a trim only after the replacement copies
				// of everything the trim destroys are drained and flushed, so
				// the stale remnant's records are superseded by durable copies
				// elsewhere and dropping it loses nothing, while keeping it
				// would discard the newest seal's only record.
				if rs == nil || ms.gen > rs.gen {
					rs = &recoveredSeg{gen: ms.gen, sg: sg, seg: seg, parity: ms.parityCol}
				}
				if ms.gen == rs.gen {
					rs.cols = append(rs.cols, ms)
				}
			}
			if rs != nil && len(rs.cols) > 0 {
				out = append(out, *rs)
			}
		}
	}
	return out, nil
}

// applySegment replays one recovered segment into the mapping.
func (c *Cache) applySegment(rs recoveredSeg) {
	g := &c.groups[rs.sg]
	g.ensureTablesIfNeeded(c.lay)
	g.segParity[rs.seg] = rs.parity
	g.segGens[rs.seg] = rs.gen
	// Capacity: payload columns of this segment kind.
	nPayload := c.lay.m
	if rs.parity >= 0 {
		nPayload--
	}
	capacity := int64(nPayload) * c.lay.payloadPages
	g.paycap += capacity
	c.totalPaycap += capacity

	for _, sum := range rs.cols {
		for i, e := range sum.entries {
			if e.lba == summaryFreeLBA {
				continue // rebuilt summary holding an invalidated slot's place
			}
			loc := c.lay.loc(rs.sg, rs.seg, int(sum.col), int64(i)+1)
			if old, ok := c.mapping[e.lba]; ok {
				// A newer generation supersedes; generations are applied
				// ascending, so the existing entry is older.
				c.invalidateSSD(old.loc)
			}
			c.mapping[e.lba] = entry{state: ssdState(e.dirty), loc: loc}
			g.slots[c.lay.localSlot(loc)] = packSlot(e.lba, e.dirty)
			g.valid++
			c.totalValid++
			if e.version > c.versions[e.lba] {
				c.versions[e.lba] = e.version
			}
		}
	}
}

func (g *group) ensureTablesIfNeeded(l layout) {
	if g.slots == nil {
		g.slots = make([]int64, l.slotsPerSG())
		for i := range g.slots {
			g.slots[i] = slotFree
		}
		g.segParity = make([]int8, l.segsPerSG)
		for i := range g.segParity {
			g.segParity[i] = -1
		}
		g.segGens = make([]int64, l.segsPerSG)
	}
}

// ReadCheck reads one cached page and verifies its content tag against the
// expected value (paper §4.1: "SRC compares the original and calculated
// checksums when reading data"). A mismatch — silent corruption — is
// repaired from parity when the segment has it, or by re-fetching from
// primary storage for clean data. It returns the verified tag. Requires
// TrackContent.
func (c *Cache) ReadCheck(at vtime.Time, lba int64) (blockdev.Tag, vtime.Time, error) {
	if !c.cfg.TrackContent {
		return blockdev.ZeroTag, at, errors.New("src: ReadCheck requires TrackContent")
	}
	e, ok := c.mapping[lba]
	if !ok {
		return blockdev.ZeroTag, at, fmt.Errorf("src: page %d not cached", lba)
	}
	want := c.tagFor(lba)
	if c.versions[lba] == 0 {
		// Never written through the cache: the expected content is
		// whatever primary storage holds (clean fill of preloaded data).
		t, terr := c.cfg.Primary.Content().ReadTag(lba)
		if terr != nil {
			return blockdev.ZeroTag, at, terr
		}
		want = t
	}
	switch e.state {
	case stateBufClean, stateBufDirty, stateBufGC:
		return want, at, nil // RAM copies cannot silently corrupt here
	}
	col, off := c.lay.devOffset(c.cfg, e.loc)
	done, err := c.submitSSD(at, col, blockdev.Request{Op: blockdev.OpRead, Off: off, Len: blockdev.PageSize})
	switch {
	case err == nil:
	case errors.Is(err, blockdev.ErrUnreadable):
		// Latent sector error: repair in place (or drop + refetch when
		// parityless), then re-verify. The recursion terminates: the page
		// is now readable, has moved into a RAM buffer, or its column has
		// escalated to fail-stop.
		t, rerr := c.repairUnreadableRun(at, col, off, blockdev.PageSize, lba)
		if rerr != nil {
			return blockdev.ZeroTag, at, rerr
		}
		return c.ReadCheck(t, lba)
	case errors.Is(err, blockdev.ErrDeviceFailed):
		// Failed, fail-stopped, or awaiting rebuild: verify through the
		// degraded path.
		sg, seg, _, _ := c.lay.split(e.loc)
		if int(c.groups[sg].segParity[seg]) >= 0 {
			t, derr := c.degradedRead(at, col, off, blockdev.PageSize, lba)
			if derr != nil {
				return blockdev.ZeroTag, at, derr
			}
			fixed, rerr := c.ReconstructTag(e.loc)
			if rerr != nil {
				return blockdev.ZeroTag, t, rerr
			}
			if fixed != want {
				return fixed, t, fmt.Errorf("%w: degraded read of page %d does not verify", ErrDataLoss, lba)
			}
			return fixed, t, nil
		}
		if e.state == stateSSDDirty {
			return blockdev.ZeroTag, at, fmt.Errorf("%w: dirty page %d on failed ssd %d in parityless segment", ErrDataLoss, lba, col)
		}
		c.dropPage(lba, e)
		t, ferr := c.fillFromPrimary(at, lba, 1)
		if ferr != nil {
			return blockdev.ZeroTag, at, ferr
		}
		return want, t, nil
	default:
		return blockdev.ZeroTag, at, err
	}
	got, err := c.cfg.SSDs[col].Content().ReadTag(off / blockdev.PageSize)
	if err != nil {
		return blockdev.ZeroTag, done, err
	}
	if got == want {
		return got, done, nil
	}

	// Silent corruption: repair from parity or primary.
	c.repair.CorruptionsDetected++
	sg, seg, _, _ := c.lay.split(e.loc)
	if int(c.groups[sg].segParity[seg]) >= 0 {
		t, derr := c.degradedRead(done, col, off, blockdev.PageSize, lba)
		if derr != nil {
			return blockdev.ZeroTag, done, derr
		}
		fixed, rerr := c.ReconstructTag(e.loc)
		if rerr != nil {
			return blockdev.ZeroTag, t, rerr
		}
		if fixed != want {
			return fixed, t, fmt.Errorf("%w: parity repair of page %d failed", ErrDataLoss, lba)
		}
		if err := c.cfg.SSDs[col].Content().WriteTag(off/blockdev.PageSize, fixed); err != nil {
			return fixed, t, err
		}
		// Commit the rewrite at once. If it stayed volatile, a crash would
		// revert the page to its corrupted committed copy, and resurrected
		// corruptions could accumulate until two share a parity stripe —
		// which single-parity reconstruction cannot survive. The barrier
		// spans the whole array, not just the repaired member: a
		// single-member flush would commit that member's pending trims
		// while its siblings' stayed volatile, and a crash would then
		// resurrect a segment group on some columns only. (FlushNever keeps
		// its no-barriers contract: flushSSDs is a no-op there, and the
		// policy accepts the resurrection exposure.)
		if ft, ferr := c.flushSSDs(t); ferr == nil {
			t = ft
		} else {
			return fixed, t, ferr
		}
		c.repair.CorruptionsRepaired++
		return fixed, t, nil
	}
	if e.state == stateSSDDirty {
		return got, done, fmt.Errorf("%w: dirty page %d corrupt without parity", ErrDataLoss, lba)
	}
	// Clean without parity: drop and refetch.
	c.dropPage(lba, e)
	t, ferr := c.fillFromPrimary(done, lba, 1)
	if ferr != nil {
		return blockdev.ZeroTag, done, ferr
	}
	c.repair.CorruptionsRepaired++
	return want, t, nil
}
