package src

import "srccache/internal/blockdev"

// bufSlot is one page waiting in a segment buffer.
type bufSlot struct {
	lba   int64
	tag   blockdev.Tag // content tag (TrackContent only)
	valid bool
}

// segBuffer is an in-RAM segment buffer (paper §4.1): SRC keeps one for
// dirty data and one for clean data. Appending past capacity is the
// caller's signal to write the buffer out as a segment.
type segBuffer struct {
	slots []bufSlot
	live  int
}

func newSegBuffer(capacity int64) *segBuffer {
	return &segBuffer{slots: make([]bufSlot, 0, capacity)}
}

// Cap reports the buffer capacity in pages.
func (b *segBuffer) Cap() int { return cap(b.slots) }

// Len reports appended slots including invalidated ones.
func (b *segBuffer) Len() int { return len(b.slots) }

// Live reports slots still valid.
func (b *segBuffer) Live() int { return b.live }

// Full reports whether the buffer has no room for another append.
func (b *segBuffer) Full() bool { return len(b.slots) == cap(b.slots) }

// Empty reports whether nothing (valid) is buffered.
func (b *segBuffer) Empty() bool { return b.live == 0 }

// Append adds a page and returns its slot index. The caller must check
// Full first.
func (b *segBuffer) Append(lba int64, tag blockdev.Tag) int {
	b.slots = append(b.slots, bufSlot{lba: lba, tag: tag, valid: true})
	b.live++
	return len(b.slots) - 1
}

// Invalidate kills a previously appended slot (its page was overwritten or
// superseded before the buffer was written out).
func (b *segBuffer) Invalidate(i int) {
	if i >= 0 && i < len(b.slots) && b.slots[i].valid {
		b.slots[i].valid = false
		b.live--
	}
}

// Slot returns slot i.
func (b *segBuffer) Slot(i int) bufSlot { return b.slots[i] }

// SetTag updates the content tag of a live slot (rewrite of a buffered
// dirty page).
func (b *segBuffer) SetTag(i int, tag blockdev.Tag) {
	if i >= 0 && i < len(b.slots) {
		b.slots[i].tag = tag
	}
}

// Reset empties the buffer, retaining capacity.
func (b *segBuffer) Reset() {
	b.slots = b.slots[:0]
	b.live = 0
}
