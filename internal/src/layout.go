package src

import "srccache/internal/blockdev"

// Cache-space geometry (Figure 3):
//
//	cache region per SSD = numSG columns of EraseGroupSize
//	Segment Group (SG)   = one column per SSD, segsPerSG segments
//	segment              = one column of SegmentColumn bytes per SSD
//	column               = [MS][payload pages...][ME]
//
// A location addresses one page slot inside the cache region as
// ((sg*segsPerSG+seg)*M + col)*pagesPerCol + pageInCol.

// layout precomputes the geometry derived from a validated Config.
type layout struct {
	m            int   // SSDs in the array
	pagesPerCol  int64 // pages per segment column, including MS/ME
	payloadPages int64 // pagesPerCol - 2
	segsPerSG    int64
	numSG        int64 // including the superblock group 0
}

func newLayout(cfg Config) layout {
	ppc := cfg.SegmentColumn / blockdev.PageSize
	return layout{
		m:            len(cfg.SSDs),
		pagesPerCol:  ppc,
		payloadPages: ppc - 2,
		segsPerSG:    cfg.EraseGroupSize / cfg.SegmentColumn,
		numSG:        cfg.CachePerSSD / cfg.EraseGroupSize,
	}
}

// segPerCacheCol is the number of page slots in one segment across all
// columns.
func (l layout) slotsPerSeg() int64 { return int64(l.m) * l.pagesPerCol }

// slotsPerSG is the number of page slots (all kinds) in one Segment Group.
func (l layout) slotsPerSG() int64 { return l.segsPerSG * l.slotsPerSeg() }

// loc builds a location from coordinates.
func (l layout) loc(sg, seg int64, col int, pageInCol int64) int64 {
	return ((sg*l.segsPerSG+seg)*int64(l.m)+int64(col))*l.pagesPerCol + pageInCol
}

// split decomposes a location.
func (l layout) split(loc int64) (sg, seg int64, col int, pageInCol int64) {
	pageInCol = loc % l.pagesPerCol
	rest := loc / l.pagesPerCol
	col = int(rest % int64(l.m))
	rest /= int64(l.m)
	seg = rest % l.segsPerSG
	sg = rest / l.segsPerSG
	return sg, seg, col, pageInCol
}

// devOffset maps a location to its byte offset on its SSD.
func (l layout) devOffset(cfg Config, loc int64) (col int, off int64) {
	sg, seg, col, pageInCol := l.split(loc)
	off = sg*cfg.EraseGroupSize + seg*cfg.SegmentColumn + pageInCol*blockdev.PageSize
	return col, off
}

// colOffset is the byte offset of a segment's column on every SSD.
func (l layout) colOffset(cfg Config, sg, seg int64) int64 {
	return sg*cfg.EraseGroupSize + seg*cfg.SegmentColumn
}

// localSlot maps a location to its index within its group's slot table.
func (l layout) localSlot(loc int64) int64 { return loc % l.slotsPerSG() }

// groupOf reports which Segment Group a location belongs to.
func (l layout) groupOf(loc int64) int64 { return loc / l.slotsPerSG() }

// parityCol reports which column holds parity for the absolute segment
// number (sg*segsPerSG+seg): fixed last column under RAID-4, rotating under
// RAID-5, none (-1) under RAID-0.
func parityCol(level RAIDLevel, m int, absSeg int64) int {
	switch level {
	case RAID4:
		return m - 1
	case RAID5:
		return m - 1 - int(absSeg%int64(m))
	default:
		return -1
	}
}

// groupState tracks a Segment Group's lifecycle.
type groupState uint8

const (
	groupFree groupState = iota + 1
	groupActive
	groupClosed
	groupSuperblock
)

// slotEntry packs (lba, dirty) for one occupied page slot; slotFree marks
// empty/metadata/parity slots.
const slotFree int64 = -1

func packSlot(lba int64, dirty bool) int64 {
	v := lba << 1
	if dirty {
		v |= 1
	}
	return v
}

func unpackSlot(v int64) (lba int64, dirty bool) { return v >> 1, v&1 == 1 }

// group is the in-memory state of one Segment Group.
type group struct {
	state  groupState
	valid  int64 // occupied payload slots
	paycap int64 // payload capacity of segments written so far
	seq    int64 // fill order, for FIFO victim selection
	// slots holds packSlot values per local slot, slotFree when empty.
	// Allocated lazily and reused across free/fill cycles.
	slots []int64
	// segParity records, per segment, which column held parity (-1 for
	// parityless segments); needed for reconstruction and recovery.
	segParity []int8
	// segGens records, per segment, the generation it was sealed or
	// recovered with (0 when empty). A rebuild consults it when the column
	// being rebuilt held the only surviving summary of a segment: the
	// in-memory cache still vouches for the segment, and the rebuilt
	// column's fresh MS/ME must carry the original generation so newest-
	// wins ordering holds at the next recovery.
	segGens []int64
}

func (g *group) ensureTables(l layout) {
	if g.slots == nil {
		g.slots = make([]int64, l.slotsPerSG())
		g.segParity = make([]int8, l.segsPerSG)
		g.segGens = make([]int64, l.segsPerSG)
	}
	for i := range g.slots {
		g.slots[i] = slotFree
	}
	for i := range g.segParity {
		g.segParity[i] = -1
		g.segGens[i] = 0
	}
}

// pageState classifies where a cached page currently lives.
type pageState uint8

const (
	stateSSDClean pageState = iota + 1
	stateSSDDirty
	stateBufClean
	stateBufDirty
	// stateBufGC marks dirty pages waiting in the separate GC segment
	// buffer (SeparateGCBuffer mode).
	stateBufGC
)

func (s pageState) dirty() bool {
	return s == stateSSDDirty || s == stateBufDirty || s == stateBufGC
}

// entry is the mapping-table value for one cached logical page: an SSD
// location or a segment-buffer slot index.
type entry struct {
	state pageState
	loc   int64
}
