package src

import (
	"errors"
	"fmt"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Online repair. ReplaceSSD installs a fresh device in place of a failed
// column and arms a background rebuild walker; RebuildStep reconstructs one
// segment column at a time from the survivors plus parity, so foreground
// traffic interleaves with the rebuild in virtual time. Until a segment is
// rebuilt, reads of its replaced column are routed through the degraded path
// (the fresh device holds no data there). Parityless clean segments cannot be
// reconstructed; their pages on the lost column are dropped and reload from
// primary storage on demand.

// rebuildState tracks an in-progress column rebuild.
type rebuildState struct {
	col    int
	queue  []int64        // absolute segment numbers still to rebuild, in order
	needed map[int64]bool // same set, for O(1) degraded-routing checks
	total  int
}

// Rebuilding reports whether a column rebuild is in progress.
func (c *Cache) Rebuilding() bool { return c.rebuild != nil }

// RebuildProgress reports how many segments remain to rebuild out of the
// total enumerated when the rebuild started (0, 0 when idle).
func (c *Cache) RebuildProgress() (remaining, total int) {
	if c.rebuild == nil {
		return 0, 0
	}
	return len(c.rebuild.needed), c.rebuild.total
}

// awaitingRebuild reports whether the byte offset on col falls in a segment
// that has not been rebuilt yet — its data must come from the degraded path.
func (c *Cache) awaitingRebuild(col int, off int64) bool {
	if c.rebuild == nil || c.rebuild.col != col {
		return false
	}
	sg := off / c.cfg.EraseGroupSize
	seg := (off % c.cfg.EraseGroupSize) / c.cfg.SegmentColumn
	return c.rebuild.needed[sg*c.lay.segsPerSG+seg]
}

// rebuildForget drops a reclaimed group's segments from the rebuild set:
// trimmed segments hold no data, and any refill writes to all columns anew.
func (c *Cache) rebuildForget(sg int64) {
	if c.rebuild == nil {
		return
	}
	for seg := int64(0); seg < c.lay.segsPerSG; seg++ {
		delete(c.rebuild.needed, sg*c.lay.segsPerSG+seg)
	}
}

// ReplaceSSD installs fresh in place of column col's device (hot spare
// insertion after a drive failure) and starts a background rebuild. The
// caller drives the rebuild with RebuildStep, interleaved with foreground
// traffic; reads of not-yet-rebuilt ranges are served degraded meanwhile.
// The stamped superblock must be flushed before the member counts as
// installed: a crash before the flush must revert to the pre-replacement
// array, not see a half-initialized member.
//
//srclint:contract flush
func (c *Cache) ReplaceSSD(at vtime.Time, col int, fresh blockdev.Device) (vtime.Time, error) {
	if col < 0 || col >= c.lay.m {
		return at, fmt.Errorf("src: replace of unknown ssd %d", col)
	}
	if c.rebuild != nil {
		return at, fmt.Errorf("src: rebuild of ssd %d already in progress", c.rebuild.col)
	}
	if fresh.Capacity() != c.cfg.SSDs[col].Capacity() {
		return at, fmt.Errorf("src: replacement capacity %d != member capacity %d",
			fresh.Capacity(), c.cfg.SSDs[col].Capacity())
	}
	c.cfg.SSDs[col] = fresh
	c.devErrs[col] = 0
	c.colDown[col] = false
	// Stamp the superblock so the new member is recognized after a crash.
	done, err := fresh.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: 0, Len: blockdev.PageSize})
	if err != nil {
		return at, fmt.Errorf("superblock write: %w", err)
	}
	if c.cfg.TrackContent {
		sb := &superblock{
			ssds:           uint32(c.lay.m),
			eraseGroupSize: c.cfg.EraseGroupSize,
			segmentColumn:  c.cfg.SegmentColumn,
			numSG:          c.lay.numSG,
		}
		if err := fresh.Content().WriteBlob(0, sb.marshal()); err != nil {
			return done, err
		}
	}
	t, err := fresh.Flush(done)
	if err != nil {
		return done, fmt.Errorf("superblock flush: %w", err)
	}
	c.startRebuild(col)
	return t, nil
}

// startRebuild enumerates the segments that currently hold data on col and
// arms degraded routing for them until each is rebuilt.
func (c *Cache) startRebuild(col int) {
	rs := &rebuildState{col: col, needed: make(map[int64]bool)}
	for sg := int64(1); sg < c.lay.numSG; sg++ {
		g := &c.groups[sg]
		if g.state != groupClosed && g.state != groupActive {
			continue
		}
		segs := c.lay.segsPerSG
		if g.state == groupActive {
			segs = c.nextSeg
		}
		for seg := int64(0); seg < segs; seg++ {
			abs := sg*c.lay.segsPerSG + seg
			rs.queue = append(rs.queue, abs)
			rs.needed[abs] = true
		}
	}
	rs.total = len(rs.queue)
	if rs.total > 0 {
		c.rebuild = rs
	}
}

// RebuildStep reconstructs the next pending segment column and reports
// whether more remain. Callers interleave steps with foreground traffic;
// the returned time is when the step's I/O completed.
func (c *Cache) RebuildStep(at vtime.Time) (done vtime.Time, pending bool, err error) {
	rs := c.rebuild
	if rs == nil {
		return at, false, nil
	}
	done = at
	for len(rs.queue) > 0 {
		abs := rs.queue[0]
		if !rs.needed[abs] {
			rs.queue = rs.queue[1:]
			continue // forgotten: its group was reclaimed mid-rebuild
		}
		sg, seg := abs/c.lay.segsPerSG, abs%c.lay.segsPerSG
		if st := c.groups[sg].state; st != groupClosed && st != groupActive {
			delete(rs.needed, abs)
			rs.queue = rs.queue[1:]
			continue
		}
		t, err := c.rebuildSegment(at, sg, seg, rs.col)
		if err != nil {
			return at, true, err
		}
		delete(rs.needed, abs)
		rs.queue = rs.queue[1:]
		c.repair.RebuiltSegments++
		done = t
		break
	}
	if len(rs.needed) == 0 {
		// c.rebuild must be cleared before the barrier: writeSegment
		// suppresses per-segment flushes while a rebuild is in flight.
		c.rebuild = nil
		t, err := c.finishRebuild(done)
		return t, false, err
	}
	return done, true, nil
}

// finishRebuild is the rebuild completion barrier: flush every member
// before declaring the rebuild converged. The reconstructed column (and any
// segments GC moved while the rebuild ran) is volatile until flushed — a
// crash would revert the fresh device to empty and recovery would drop that
// column from every segment. Dirty buffers drain first: a rebuilt summary
// reflects the RAM view, in which pages rewritten since the last flush are
// holes — their replacement copies must reach the log before the barrier
// commits those holes.
//
//srclint:contract flush
func (c *Cache) finishRebuild(done vtime.Time) (vtime.Time, error) {
	t, err := c.drainDirty(done)
	if err != nil {
		return done, err
	}
	t, err = c.flushSSDs(vtime.Max(done, t))
	if err != nil {
		return done, err
	}
	return vtime.Max(done, t), nil
}

// rebuildSegment reconstructs one segment's column col: parity-protected
// segments are rebuilt from the survivors; a parityless clean segment's
// pages on col are dropped from the mapping (they reload from primary on
// demand, no device I/O).
func (c *Cache) rebuildSegment(at vtime.Time, sg, seg int64, col int) (vtime.Time, error) {
	g := &c.groups[sg]
	colBase := c.lay.colOffset(c.cfg, sg, seg)
	if int(g.segParity[seg]) < 0 {
		for pic := int64(1); pic <= c.lay.payloadPages; pic++ {
			loc := c.lay.loc(sg, seg, col, pic)
			s := c.lay.localSlot(loc)
			if g.slots[s] == slotFree {
				continue
			}
			lba, _ := unpackSlot(g.slots[s])
			if e, ok := c.mapping[lba]; ok && e.loc == loc {
				c.dropPage(lba, e)
			}
		}
		return at, nil
	}
	readDone := at
	for other := 0; other < c.lay.m; other++ {
		if other == col {
			continue
		}
		t, err := c.submitSSD(at, other, blockdev.Request{
			Op: blockdev.OpRead, Off: colBase, Len: c.cfg.SegmentColumn,
		})
		if err != nil {
			return at, fmt.Errorf("rebuild source %d: %w", other, err)
		}
		readDone = vtime.Max(readDone, t)
	}
	t, err := c.submitSSD(readDone, col, blockdev.Request{
		Op: blockdev.OpWrite, Off: colBase, Len: c.cfg.SegmentColumn,
	})
	if err != nil {
		return at, fmt.Errorf("rebuild target: %w", err)
	}
	if c.cfg.TrackContent {
		if err := c.rebuildColumnContent(sg, seg, col); err != nil {
			return at, err
		}
	}
	return t, nil
}

// Scrubbing (paper §4.1's checksum verification, made proactive): ScrubStep
// walks written segments in a round-robin cursor and verifies every mapped
// page's content tag via ReadCheck, repairing silent corruption in place.

// scrubCursor is the round-robin scrub position.
type scrubCursor struct {
	sg, seg int64
}

// ScrubStep verifies the mapped pages of the next written segment in the
// scrub rotation, repairing any corruption it finds, and advances the
// cursor. Segments awaiting rebuild are skipped (the rebuild restores them
// first). Requires TrackContent.
func (c *Cache) ScrubStep(at vtime.Time) (vtime.Time, error) {
	if !c.cfg.TrackContent {
		return at, errors.New("src: scrubbing requires TrackContent")
	}
	total := (c.lay.numSG - 1) * c.lay.segsPerSG
	done := at
	for step := int64(0); step < total; step++ {
		sg, seg := c.scrub.sg, c.scrub.seg
		c.scrubAdvance()
		g := &c.groups[sg]
		if g.state != groupClosed && g.state != groupActive {
			continue
		}
		if g.state == groupActive && sg == c.active && seg >= c.nextSeg {
			continue // not written yet
		}
		if c.rebuild != nil && c.rebuild.needed[sg*c.lay.segsPerSG+seg] {
			continue
		}
		// Snapshot the segment's mapped pages first: a repair can move
		// pages (drop + refetch) and even trigger segment writes and GC.
		type target struct{ lba, loc int64 }
		baseLoc := (sg*c.lay.segsPerSG + seg) * c.lay.slotsPerSeg()
		var targets []target
		for s := int64(0); s < c.lay.slotsPerSeg(); s++ {
			loc := baseLoc + s
			if packed := g.slots[c.lay.localSlot(loc)]; packed != slotFree {
				lba, _ := unpackSlot(packed)
				targets = append(targets, target{lba: lba, loc: loc})
			}
		}
		for _, tg := range targets {
			e, ok := c.mapping[tg.lba]
			if !ok || e.loc != tg.loc || (e.state != stateSSDClean && e.state != stateSSDDirty) {
				continue // moved or dropped since the snapshot
			}
			_, t, err := c.ReadCheck(done, tg.lba)
			if err != nil {
				return done, err
			}
			c.repair.ScrubbedPages++
			done = t
		}
		return done, nil
	}
	return done, nil
}

// Scrub performs one full scrub pass over every written segment.
func (c *Cache) Scrub(at vtime.Time) (vtime.Time, error) {
	total := (c.lay.numSG - 1) * c.lay.segsPerSG
	done := at
	for i := int64(0); i < total; i++ {
		t, err := c.ScrubStep(done)
		if err != nil {
			return done, err
		}
		done = t
	}
	return done, nil
}

func (c *Cache) scrubAdvance() {
	c.scrub.seg++
	if c.scrub.seg >= c.lay.segsPerSG {
		c.scrub.seg = 0
		c.scrub.sg++
		if c.scrub.sg >= c.lay.numSG {
			c.scrub.sg = 1
		}
	}
}
