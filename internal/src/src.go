package src

import (
	"errors"
	"fmt"
	"sort"

	"srccache/internal/bench"
	"srccache/internal/bitmap"
	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// Errors reported by the cache.
var (
	// ErrNoFreeGroups reports that garbage collection could not produce a
	// free Segment Group.
	ErrNoFreeGroups = errors.New("src: no reclaimable segment groups")
	// ErrDataLoss reports unrecoverable data (an SSD failure with no
	// redundancy covering the lost pages).
	ErrDataLoss = errors.New("src: unrecoverable data loss")
)

// Cache is an SRC cache instance. It implements bench.Cache.
type Cache struct {
	cfg Config
	lay layout

	groups      []group
	freeSGs     []int64 // FIFO queue of free groups
	fifo        []int64 // closed groups in fill order
	active      int64
	nextSeg     int64
	seqCtr      int64
	segGen      int64 // global segment generation for metadata summaries
	inGC        bool
	totalValid  int64
	totalPaycap int64

	mapping  map[int64]entry
	dirtyBuf *segBuffer
	cleanBuf *segBuffer
	gcBuf    *segBuffer // S2S dirty copies (SeparateGCBuffer mode), else nil
	hot      *bitmap.Bitmap
	versions map[int64]uint64

	counters    bench.Counters
	lastWriteAt vtime.Time
	wastedSlots int64 // padding from partial segments and dead buffer slots

	devErrs []int64 // corrected errors charged per SSD (md-style budget)
	colDown []bool  // columns escalated to fail-stop by the error budget
	rebuild *rebuildState
	scrub   scrubCursor
	repair  RepairStats
}

var _ bench.Cache = (*Cache)(nil)

// New assembles an SRC cache over the configured SSD array and writes the
// superblock group.
func New(cfg Config) (*Cache, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	lay := newLayout(cfg)
	c := &Cache{
		cfg:     cfg,
		lay:     lay,
		groups:  make([]group, lay.numSG),
		active:  -1,
		mapping: make(map[int64]entry),
		hot:     bitmap.New(cfg.Primary.Capacity() / blockdev.PageSize),
		devErrs: make([]int64, lay.m),
		colDown: make([]bool, lay.m),
		scrub:   scrubCursor{sg: 1},
	}
	if cfg.TrackContent {
		c.versions = make(map[int64]uint64)
	}
	c.dirtyBuf = newSegBuffer(c.bufCapacity(true))
	c.cleanBuf = newSegBuffer(c.bufCapacity(false))
	if cfg.SeparateGCBuffer {
		c.gcBuf = newSegBuffer(c.bufCapacity(true))
	}

	// Group 0 holds the superblock (paper §4.1): written once, read-only.
	c.groups[0].state = groupSuperblock
	if err := c.writeSuperblock(); err != nil {
		return nil, err
	}
	for sg := int64(1); sg < lay.numSG; sg++ {
		c.groups[sg].state = groupFree
		c.freeSGs = append(c.freeSGs, sg)
	}
	return c, nil
}

// Config returns the effective configuration.
func (c *Cache) Config() Config { return c.cfg }

// Counters implements bench.Cache.
func (c *Cache) Counters() bench.Counters { return c.counters }

// CacheDevices implements bench.Cache.
func (c *Cache) CacheDevices() []blockdev.Device { return c.cfg.SSDs }

// Primary returns the backing store.
func (c *Cache) Primary() blockdev.Device { return c.cfg.Primary }

// payloadCols lists the columns that carry payload in a segment of the
// given kind at the given absolute segment number, and the parity column
// (-1 when parityless).
func (c *Cache) payloadCols(absSeg int64, dirty bool) (cols []int, parity int) {
	parity = -1
	if dirty || c.cfg.Parity == PC {
		parity = parityCol(c.cfg.Level, c.lay.m, absSeg)
	}
	cols = make([]int, 0, c.lay.m)
	for col := 0; col < c.lay.m; col++ {
		if col != parity {
			cols = append(cols, col)
		}
	}
	return cols, parity
}

// bufCapacity is the payload capacity of one segment of the given kind —
// the size of the corresponding segment buffer.
func (c *Cache) bufCapacity(dirty bool) int64 {
	cols, _ := c.payloadCols(0, dirty)
	return int64(len(cols)) * c.lay.payloadPages
}

// Utilization reports live payload pages over the payload capacity of all
// written (active + closed) segments — the quantity Sel-GC compares with
// U_MAX.
func (c *Cache) Utilization() float64 {
	if c.totalPaycap == 0 {
		return 0
	}
	return float64(c.totalValid) / float64(c.totalPaycap)
}

// FreeGroups reports the number of free Segment Groups.
func (c *Cache) FreeGroups() int { return len(c.freeSGs) }

// Groups reports the total number of Segment Groups including the
// superblock.
func (c *Cache) Groups() int { return int(c.lay.numSG) }

// CachedPages reports the number of logical pages currently cached (any
// state).
func (c *Cache) CachedPages() int { return len(c.mapping) }

// DirtyBufferedPages reports pages waiting in the dirty segment buffers
// (host writes plus, in SeparateGCBuffer mode, S2S copies).
func (c *Cache) DirtyBufferedPages() int {
	n := c.dirtyBuf.Live()
	if c.gcBuf != nil {
		n += c.gcBuf.Live()
	}
	return n
}

// WastedSlots reports payload slots lost to partial segments and
// invalidated buffer entries.
func (c *Cache) WastedSlots() int64 { return c.wastedSlots }

// tagFor derives the content tag for the current version of lba.
func (c *Cache) tagFor(lba int64) blockdev.Tag {
	if !c.cfg.TrackContent {
		return blockdev.ZeroTag
	}
	return blockdev.DataTag(lba, c.versions[lba])
}

// invalidateSSD drops an on-SSD mapping entry's slot accounting.
func (c *Cache) invalidateSSD(loc int64) {
	g := &c.groups[c.lay.groupOf(loc)]
	s := c.lay.localSlot(loc)
	if g.slots[s] != slotFree {
		g.slots[s] = slotFree
		g.valid--
		c.totalValid--
	}
}

// dropPage removes lba from the cache entirely.
func (c *Cache) dropPage(lba int64, e entry) {
	switch e.state {
	case stateBufClean:
		c.cleanBuf.Invalidate(int(e.loc))
	case stateBufDirty:
		c.dirtyBuf.Invalidate(int(e.loc))
	case stateBufGC:
		c.gcBuf.Invalidate(int(e.loc))
	default:
		c.invalidateSSD(e.loc)
	}
	delete(c.mapping, lba)
}

// Submit implements the host-facing block interface of the cache volume
// (the primary storage's address space). It is the cache's per-request
// entry point — the write/read hot path — so it anchors the
// allocation-free hot-path contract (DESIGN.md §8 rule 13); maintenance
// work it can trigger (GC, repair, degraded reads) is fenced off behind
// //srclint:coldpath boundaries.
//
//srclint:hotpath
func (c *Cache) Submit(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	if err := req.Validate(c.cfg.Primary.Capacity()); err != nil {
		return at, err
	}
	switch req.Op {
	case blockdev.OpWrite:
		return c.hostWrite(at, req)
	case blockdev.OpRead:
		return c.hostRead(at, req)
	default: // trim: invalidate cached copies, forward to primary
		first := req.Off / blockdev.PageSize
		for p := first; p < first+req.Pages(); p++ {
			if e, ok := c.mapping[p]; ok {
				c.dropPage(p, e)
			}
		}
		return c.cfg.Primary.Submit(at, req)
	}
}

// hostWrite buffers each page in the dirty segment buffer, writing full
// segments out as they form. The acknowledgement is immediate for buffered
// pages and follows the segment write when one is triggered (write-back
// with natural SSD back-pressure).
func (c *Cache) hostWrite(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	c.lastWriteAt = at
	first := req.Off / blockdev.PageSize
	pages := req.Pages()
	c.counters.Writes += pages
	c.counters.WriteBytes += req.Len
	ack := at
	for p := first; p < first+pages; p++ {
		if c.cfg.TrackContent {
			c.versions[p]++
		}
		if e, ok := c.mapping[p]; ok {
			c.hot.Set(p) // a rewrite is a re-reference
			if e.state == stateBufDirty {
				c.dirtyBuf.SetTag(int(e.loc), c.tagFor(p))
				continue // already buffered dirty: updated in place
			}
			c.dropPage(p, e)
		}
		slot := c.dirtyBuf.Append(p, c.tagFor(p))
		c.mapping[p] = entry{state: stateBufDirty, loc: int64(slot)}
		if c.dirtyBuf.Full() {
			done, err := c.writeSegment(ack, c.dirtyBuf, true)
			if err != nil {
				if !errors.Is(err, errSegmentAbandoned) {
					return ack, err
				}
				continue // still buffered; a later destage retries
			}
			ack = done
		}
	}
	return ack, nil
}

// hostRead serves hits from the segment buffers (RAM) and the SSDs, and
// misses from primary storage; miss data is staged and then collected in
// the clean segment buffer (paper §4.1).
func (c *Cache) hostRead(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	first := req.Off / blockdev.PageSize
	pages := req.Pages()
	c.counters.Reads += pages
	c.counters.ReadBytes += req.Len

	done := at
	// SSD hit runs are coalesced into per-device contiguous reads; misses
	// into contiguous primary reads.
	runStart := int64(-1) // first lba of the current miss run
	var ssdRunLoc, ssdRunFirst int64 = -1, -1

	flushSSDRun := func(endLBA int64) error {
		if ssdRunFirst < 0 {
			return nil
		}
		n := endLBA - ssdRunFirst
		col, off := c.lay.devOffset(c.cfg, ssdRunLoc)
		t, err := c.readSSD(at, col, off, n*blockdev.PageSize, ssdRunFirst)
		if err != nil {
			return err
		}
		done = vtime.Max(done, t)
		ssdRunFirst, ssdRunLoc = -1, -1
		return nil
	}
	flushMissRun := func(endLBA int64) error {
		if runStart < 0 {
			return nil
		}
		t, err := c.fillFromPrimary(at, runStart, endLBA-runStart)
		if err != nil {
			return err
		}
		done = vtime.Max(done, t)
		runStart = -1
		return nil
	}

	for p := first; p < first+pages; p++ {
		e, ok := c.mapping[p]
		if !ok {
			if err := flushSSDRun(p); err != nil {
				return done, err
			}
			if runStart < 0 {
				runStart = p
			}
			continue
		}
		if err := flushMissRun(p); err != nil {
			return done, err
		}
		c.counters.ReadHits++
		c.counters.ReadHitBytes += blockdev.PageSize
		c.hot.Set(p)
		switch e.state {
		case stateBufClean, stateBufDirty, stateBufGC:
			// Served from RAM at no device cost.
			if err := flushSSDRun(p); err != nil {
				return done, err
			}
		default:
			if ssdRunFirst >= 0 && e.loc == ssdRunLoc+(p-ssdRunFirst) {
				continue // extends the current run
			}
			if err := flushSSDRun(p); err != nil {
				return done, err
			}
			ssdRunFirst, ssdRunLoc = p, e.loc
		}
	}
	if err := flushSSDRun(first + pages); err != nil {
		return done, err
	}
	if err := flushMissRun(first + pages); err != nil {
		return done, err
	}
	return done, nil
}

// readSSD reads a contiguous run from one SSD: latent sector errors are
// repaired in place from redundancy, and failed (or fail-stopped, or
// not-yet-rebuilt) columns fall back to reconstruction (parity) or primary
// refetch (parityless clean).
func (c *Cache) readSSD(at vtime.Time, col int, off, n int64, loc int64) (vtime.Time, error) {
	t, err := c.submitSSD(at, col, blockdev.Request{Op: blockdev.OpRead, Off: off, Len: n})
	if err == nil {
		return t, nil
	}
	if errors.Is(err, blockdev.ErrUnreadable) {
		return c.repairUnreadableRun(at, col, off, n, loc)
	}
	if !errors.Is(err, blockdev.ErrDeviceFailed) {
		return at, err
	}
	return c.degradedRead(at, col, off, n, loc)
}

// fillFromPrimary fetches a miss run into the staging buffer (the returned
// completion time) and inserts the pages into the clean segment buffer.
func (c *Cache) fillFromPrimary(at vtime.Time, lba, pages int64) (vtime.Time, error) {
	done, err := c.cfg.Primary.Submit(at, blockdev.Request{
		Op: blockdev.OpRead, Off: lba * blockdev.PageSize, Len: pages * blockdev.PageSize,
	})
	if err != nil {
		return at, err
	}
	c.counters.FillBytes += pages * blockdev.PageSize
	for p := lba; p < lba+pages; p++ {
		var tag blockdev.Tag
		if c.cfg.TrackContent {
			t, err := c.cfg.Primary.Content().ReadTag(p)
			if err != nil {
				return done, err
			}
			tag = t
		}
		if _, ok := c.mapping[p]; ok {
			continue // raced with a concurrent insert in this request
		}
		slot := c.cleanBuf.Append(p, tag)
		c.mapping[p] = entry{state: stateBufClean, loc: int64(slot)}
		if c.cleanBuf.Full() {
			// Clean segment writes happen off the acknowledgement path:
			// the staging buffer already answered the host. An abandoned
			// write keeps the fills buffered for a later retry.
			if _, err := c.writeSegment(done, c.cleanBuf, false); err != nil &&
				!errors.Is(err, errSegmentAbandoned) {
				return done, err
			}
		}
	}
	return done, nil
}

// Flush implements the upper layer's flush: the dirty buffer is written out
// as a (possibly partial) segment and every SSD is flushed. Because dirty
// data is parity-protected on the SSD array, primary storage need not be
// touched (the design point distinguishing SRC from flush-through caches).
//
//srclint:contract flush
func (c *Cache) Flush(at vtime.Time) (vtime.Time, error) {
	done, err := c.drainDirty(at)
	if err != nil {
		return at, err
	}
	t, err := c.flushSSDs(done)
	if err != nil {
		return at, err
	}
	return vtime.Max(done, t), nil
}

// drainDirty destages the dirty buffers completely: a buffer can hold more
// than one segment's payload after an abandoned destage re-buffered its
// pages. Abandoned writes are retried on fresh segments — every retry
// consumes the failing device's transient faults or error budget, so the
// write either lands or the column escalates to fail-stop and the degraded
// write path takes over. The bound keeps a persistently rejecting live
// device from stalling the drain; the caller then sees the device error
// instead of a false durability acknowledgement.
func (c *Cache) drainDirty(at vtime.Time) (vtime.Time, error) {
	done := at
	for attempts := 0; ; {
		buf := c.dirtyBuf
		if buf.Empty() {
			if c.gcBuf == nil || c.gcBuf.Empty() {
				return done, nil
			}
			buf = c.gcBuf
		}
		t, err := c.writeSegment(done, buf, true)
		if errors.Is(err, errSegmentAbandoned) {
			attempts++
			if attempts >= 8 {
				return at, fmt.Errorf("src: cannot destage dirty data: %w", err)
			}
			continue
		}
		if err != nil {
			return at, err
		}
		done = vtime.Max(done, t)
	}
}

// Tick implements the partial-segment timeout (paper §4.1): when no write
// has arrived for TWait, the dirty buffer is written out as a partial
// segment to bound the unprotected window.
func (c *Cache) Tick(at vtime.Time) (vtime.Time, error) {
	if c.dirtyBuf.Empty() || at.Sub(c.lastWriteAt) < c.cfg.TWait {
		return at, nil
	}
	done, err := c.writeSegment(at, c.dirtyBuf, true)
	if errors.Is(err, errSegmentAbandoned) {
		return at, nil // still buffered; the next tick or flush retries
	}
	return done, err
}

// flushSSDs issues the flush command to every SSD and returns the last
// completion. Fail-stopped columns are skipped. Under FlushNever the
// command is suppressed entirely — the Flashcache-style baseline whose
// data-loss window the torture engine measures.
func (c *Cache) flushSSDs(at vtime.Time) (vtime.Time, error) {
	if c.cfg.Flush == FlushNever {
		return at, nil
	}
	done := at
	for col, d := range c.cfg.SSDs {
		if c.colDown[col] {
			continue
		}
		t, err := d.Flush(at)
		if err != nil {
			if errors.Is(err, blockdev.ErrDeviceFailed) {
				continue
			}
			return at, err
		}
		done = vtime.Max(done, t)
	}
	c.counters.SSDFlushes++
	return done, nil
}

// destageRuns writes a set of dirty pages to primary storage, coalescing
// LBA-contiguous pages into single writes. Reads from the SSDs must have
// completed by `ready`.
func (c *Cache) destageRuns(ready vtime.Time, lbas []int64) (vtime.Time, error) {
	if len(lbas) == 0 {
		return ready, nil
	}
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })
	done := ready
	runStart := lbas[0]
	prev := lbas[0]
	flush := func(endExclusive int64) error {
		n := (endExclusive - runStart) * blockdev.PageSize
		t, err := c.cfg.Primary.Submit(ready, blockdev.Request{
			Op: blockdev.OpWrite, Off: runStart * blockdev.PageSize, Len: n,
		})
		if err != nil {
			return err
		}
		c.counters.DestageBytes += n
		done = vtime.Max(done, t)
		return nil
	}
	for _, lba := range lbas[1:] {
		if lba == prev+1 {
			prev = lba
			continue
		}
		if err := flush(prev + 1); err != nil {
			return done, err
		}
		runStart, prev = lba, lba
	}
	if err := flush(prev + 1); err != nil {
		return done, err
	}
	if c.cfg.TrackContent {
		for _, lba := range lbas {
			if err := c.cfg.Primary.Content().WriteTag(lba, c.tagFor(lba)); err != nil {
				return done, err
			}
		}
	}
	return done, nil
}

func (c *Cache) String() string {
	return fmt.Sprintf("src(%d ssds, %v, %v/%v, %v, %v)",
		c.lay.m, c.cfg.Level, c.cfg.GC, c.cfg.Victim, c.cfg.Parity, c.cfg.Flush)
}
