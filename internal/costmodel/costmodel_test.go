package costmodel

import (
	"math"
	"testing"

	"srccache/internal/ssd"
)

func TestCatalogMatchesTable12(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("%d products", len(cat))
	}
	checks := []struct {
		label string
		price float64
		gbUSD float64
	}{
		{"A-MLC(SATA)", 418, 1.22},
		{"A-TLC(SATA)", 272, 1.76},
		{"B-MLC(SATA)", 374, 1.36},
		{"B-TLC(SATA)", 225, 2.27},
		{"C-MLC(NVMe)", 469, 0.85},
	}
	for _, c := range checks {
		p, err := CatalogProduct(c.label)
		if err != nil {
			t.Fatal(err)
		}
		if p.PriceUSD != c.price {
			t.Fatalf("%s price %v, want %v", c.label, p.PriceUSD, c.price)
		}
		// GB/$ matches the published row to two decimals.
		if math.Abs(p.GBPerDollar()-c.gbUSD) > 0.01 {
			t.Fatalf("%s GB/$ %.3f, want %.2f", c.label, p.GBPerDollar(), c.gbUSD)
		}
	}
	if _, err := CatalogProduct("nope"); err == nil {
		t.Fatal("unknown product accepted")
	}
}

func TestTLCCheaperButShorterLived(t *testing.T) {
	aMLC, _ := CatalogProduct("A-MLC(SATA)")
	aTLC, _ := CatalogProduct("A-TLC(SATA)")
	if !(aTLC.GBPerDollar() > aMLC.GBPerDollar()) {
		t.Fatal("TLC should win on GB/$")
	}
	if !(aTLC.Endurance < aMLC.Endurance) {
		t.Fatal("TLC should lose on endurance")
	}
}

func TestDeviceConfigReflectsProduct(t *testing.T) {
	nvme, _ := CatalogProduct("C-MLC(NVMe)")
	sata, _ := CatalogProduct("A-MLC(SATA)")
	tlc, _ := CatalogProduct("B-TLC(SATA)")
	cfgN := nvme.DeviceConfig("n", 1<<30)
	cfgS := sata.DeviceConfig("s", 1<<30)
	cfgT := tlc.DeviceConfig("t", 1<<30)
	if !(cfgN.LinkBandwidth > cfgS.LinkBandwidth) {
		t.Fatal("NVMe link not faster")
	}
	if cfgT.Cell != ssd.TLC || cfgT.EnduranceCycles != 1000 {
		t.Fatalf("TLC config %+v", cfgT)
	}
	// Company B penalty.
	bMLC, _ := CatalogProduct("B-MLC(SATA)")
	if !(bMLC.DeviceConfig("b", 1<<30).ProgramLatency > cfgS.ProgramLatency) {
		t.Fatal("company B not slower than A")
	}
}

func TestLifetimeDays(t *testing.T) {
	// The paper's example: A-MLC with 512 GB/day at WAF ~1.4 lives ~2140
	// days. Exact value at WAF 1.402: 3000*512e9/(512e9*1.402) = 2139.8.
	p, _ := CatalogProduct("A-MLC(SATA)")
	days := LifetimeDays(p.Endurance, p.TotalBytes(), DefaultDailyWriteBytes, 1.402)
	if math.Abs(days-2140) > 1 {
		t.Fatalf("lifetime %v days, want ~2140", days)
	}
	// Figure 6(d) example: 2140 days / $418 = 5.12.
	if got := LifetimePerDollar(2140, 418); math.Abs(got-5.12) > 0.01 {
		t.Fatalf("lifetime/$ %v, want 5.12", got)
	}
	if LifetimeDays(3000, 1, 0, 1) != 0 || LifetimeDays(3000, 1, 1, 0) != 0 {
		t.Fatal("degenerate inputs should yield zero")
	}
	if LifetimePerDollar(100, 0) != 0 {
		t.Fatal("zero price should yield zero")
	}
}

func TestTable4Shape(t *testing.T) {
	rows := Table4()
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	// Price scales with capacity within a family; NVMe costs more per GB.
	if !(rows[1].PriceUSD > rows[0].PriceUSD) {
		t.Fatal("SATA price not increasing with capacity")
	}
	sataPerGB := rows[0].PriceUSD / float64(rows[0].CapacityGB)
	nvmePerGB := rows[3].PriceUSD / float64(rows[3].CapacityGB)
	if !(nvmePerGB > sataPerGB) {
		t.Fatal("NVMe not more expensive per GB")
	}
}
