// Package costmodel carries the paper's device-economics data (Tables 4
// and 12) and the lifetime estimator used for the cost-effectiveness study
// (Figure 6): expected days to live from per-block endurance, capacity,
// daily write volume, and measured write amplification (after Jeong et
// al.'s lifetime estimation).
package costmodel

import (
	"fmt"

	"srccache/internal/ssd"
)

// Interface is the host interface class.
type Interface uint8

// Host interfaces.
const (
	SATA Interface = iota + 1
	NVMe
)

// String names the interface.
func (i Interface) String() string {
	if i == NVMe {
		return "NVMe"
	}
	return "SATA 3.0"
}

// Product is one purchasable configuration from Table 12: a set of
// identical drives and their street price.
type Product struct {
	// Label is the paper's legend name, e.g. "A-MLC(SATA)".
	Label string
	// Company is the manufacturer anonymization letter.
	Company string
	// Cell is the NAND technology.
	Cell ssd.CellType
	// Iface is the host interface.
	Iface Interface
	// Units and UnitGB describe the drive count and per-drive capacity.
	Units  int
	UnitGB int
	// PriceUSD is the total cost of all units.
	PriceUSD float64
	// Endurance is the per-block P/E budget (3K MLC, 1K TLC).
	Endurance int64
	// Year is the release year.
	Year int
}

// TotalBytes is the raw capacity of all units (decimal GB as marketed).
func (p Product) TotalBytes() int64 { return int64(p.Units) * int64(p.UnitGB) * 1e9 }

// GBPerDollar is Table 12's capacity-per-dollar metric.
func (p Product) GBPerDollar() float64 {
	return float64(p.Units*p.UnitGB) / p.PriceUSD
}

// DeviceConfig builds the simulated-drive configuration for one unit of
// this product with the given per-drive capacity (experiments scale
// capacities down; price and endurance describe the real product).
func (p Product) DeviceConfig(name string, capacity int64) ssd.Config {
	var cfg ssd.Config
	switch {
	case p.Iface == NVMe:
		cfg = ssd.NVMeMLCConfig(name, capacity)
	case p.Cell == ssd.TLC:
		cfg = ssd.SATATLCConfig(name, capacity)
	default:
		cfg = ssd.SATAMLCConfig(name, capacity)
	}
	cfg.EnduranceCycles = p.Endurance
	// Company B's drives are a hair slower than A's at the same cell type
	// (Table 12 shows them cheaper, Figure 6 slightly slower).
	if p.Company == "B" {
		cfg.ProgramLatency += cfg.ProgramLatency / 10
	}
	return cfg
}

// Catalog returns the five Table 12 configurations.
func Catalog() []Product {
	return []Product{
		{Label: "A-MLC(SATA)", Company: "A", Cell: ssd.MLC, Iface: SATA, Units: 4, UnitGB: 128, PriceUSD: 418, Endurance: 3000, Year: 2012},
		{Label: "A-TLC(SATA)", Company: "A", Cell: ssd.TLC, Iface: SATA, Units: 4, UnitGB: 120, PriceUSD: 272, Endurance: 1000, Year: 2013},
		{Label: "B-MLC(SATA)", Company: "B", Cell: ssd.MLC, Iface: SATA, Units: 4, UnitGB: 128, PriceUSD: 374, Endurance: 3000, Year: 2014},
		{Label: "B-TLC(SATA)", Company: "B", Cell: ssd.TLC, Iface: SATA, Units: 4, UnitGB: 128, PriceUSD: 225, Endurance: 1000, Year: 2014},
		{Label: "C-MLC(NVMe)", Company: "C", Cell: ssd.MLC, Iface: NVMe, Units: 1, UnitGB: 400, PriceUSD: 469, Endurance: 3000, Year: 2015},
	}
}

// CatalogProduct looks a product up by label.
func CatalogProduct(label string) (Product, error) {
	for _, p := range Catalog() {
		if p.Label == label {
			return p, nil
		}
	}
	return Product{}, fmt.Errorf("costmodel: unknown product %q", label)
}

// Table4Device is one column of the paper's Table 4 price/performance
// comparison.
type Table4Device struct {
	Family     string
	Iface      Interface
	CapacityGB int
	PriceUSD   float64
	SeqReadMB  int
	SeqWriteMB int
	RandReadK  int
	RandWriteK int
}

// Table4 returns the device comparison data (SSD-A SATA line, SSD-B NVMe
// line).
func Table4() []Table4Device {
	return []Table4Device{
		{"SSD-A", SATA, 128, 129, 530, 390, 97, 90},
		{"SSD-A", SATA, 256, 206, 540, 520, 100, 90},
		{"SSD-A", SATA, 512, 435, 540, 520, 100, 90},
		{"SSD-B", NVMe, 400, 922, 2700, 1080, 450, 75},
		{"SSD-B", NVMe, 800, 1398, 2800, 1900, 460, 90},
		{"SSD-B", NVMe, 1600, 3796, 2800, 1900, 450, 150},
		{"SSD-B", NVMe, 2000, 4250, 2800, 2000, 450, 175},
	}
}

// DefaultDailyWriteBytes is the paper's Figure 6 assumption: 512 GB of
// workload writes processed per day.
const DefaultDailyWriteBytes = 512e9

// LifetimeDays estimates expected days to live: the total erase budget
// (endurance × capacity) divided by the daily flash wear (daily host
// writes × write amplification).
func LifetimeDays(endurance, totalBytes int64, dailyWriteBytes, waf float64) float64 {
	if dailyWriteBytes <= 0 || waf <= 0 {
		return 0
	}
	return float64(endurance) * float64(totalBytes) / (dailyWriteBytes * waf)
}

// LifetimePerDollar is Figure 6(d): lifetime days per dollar spent.
func LifetimePerDollar(days, priceUSD float64) float64 {
	if priceUSD <= 0 {
		return 0
	}
	return days / priceUSD
}
