package bitmap

import (
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130)
	if b.Get(0) || b.Get(129) {
		t.Fatal("fresh bitmap has set bits")
	}
	b.Set(0)
	b.Set(129)
	b.Set(64)
	if !b.Get(0) || !b.Get(129) || !b.Get(64) {
		t.Fatal("set bits not readable")
	}
	if b.PopCount() != 3 {
		t.Fatalf("popcount %d", b.PopCount())
	}
	b.Set(64) // idempotent
	if b.PopCount() != 3 {
		t.Fatalf("double set changed popcount to %d", b.PopCount())
	}
	b.Clear(64)
	if b.Get(64) || b.PopCount() != 2 {
		t.Fatalf("clear failed: popcount %d", b.PopCount())
	}
	b.Clear(64) // idempotent
	if b.PopCount() != 2 {
		t.Fatalf("double clear changed popcount to %d", b.PopCount())
	}
	b.Reset()
	if b.PopCount() != 0 || b.Get(0) {
		t.Fatal("reset failed")
	}
}

func TestOutOfRangeIgnored(t *testing.T) {
	b := New(10)
	b.Set(-1)
	b.Set(10)
	b.Clear(99)
	if b.Get(-1) || b.Get(10) {
		t.Fatal("out of range reads true")
	}
	if b.PopCount() != 0 {
		t.Fatalf("out of range set changed popcount to %d", b.PopCount())
	}
	if b.Len() != 10 {
		t.Fatalf("len %d", b.Len())
	}
}

func TestPopCountMatchesNaive(t *testing.T) {
	f := func(idxs []uint16) bool {
		b := New(1 << 16)
		ref := make(map[int64]bool)
		for _, i := range idxs {
			b.Set(int64(i))
			ref[int64(i)] = true
		}
		if b.PopCount() != int64(len(ref)) {
			return false
		}
		for i := range ref {
			if !b.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
