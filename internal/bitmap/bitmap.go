// Package bitmap provides a dense bitset. SRC uses one bit per cache page
// to track data hotness (paper §4.2: "Hotness of data is determined by a
// per-page based bitmap stored in RAM").
package bitmap

// Bitmap is a fixed-size bitset.
type Bitmap struct {
	words []uint64
	n     int64
	set   int64
}

// New creates a bitmap of n bits, all clear.
func New(n int64) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len reports the number of bits.
func (b *Bitmap) Len() int64 { return b.n }

// PopCount reports the number of set bits.
func (b *Bitmap) PopCount() int64 { return b.set }

// Get reports bit i. Out-of-range indices read as false.
func (b *Bitmap) Get(i int64) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i. Out-of-range indices are ignored.
func (b *Bitmap) Set(i int64) {
	if i < 0 || i >= b.n {
		return
	}
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.set++
	}
}

// Clear clears bit i. Out-of-range indices are ignored.
func (b *Bitmap) Clear(i int64) {
	if i < 0 || i >= b.n {
		return
	}
	w, m := i>>6, uint64(1)<<uint(i&63)
	if b.words[w]&m != 0 {
		b.words[w] &^= m
		b.set--
	}
}

// Reset clears every bit.
func (b *Bitmap) Reset() {
	clear(b.words)
	b.set = 0
}
