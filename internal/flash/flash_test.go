package flash

import (
	"errors"
	"testing"
)

func newTestArray(t *testing.T, blocks, pages int, endurance int64) *Array {
	t.Helper()
	a, err := New(Geometry{Blocks: blocks, PagesPerBlock: pages, PageSize: 4096}, endurance)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestGeometryMath(t *testing.T) {
	g := Geometry{Blocks: 10, PagesPerBlock: 256, PageSize: 4096}
	if g.BlockBytes() != 256*4096 {
		t.Fatalf("BlockBytes = %d", g.BlockBytes())
	}
	if g.TotalBytes() != 10*256*4096 {
		t.Fatalf("TotalBytes = %d", g.TotalBytes())
	}
}

func TestNewRejectsInvalidGeometry(t *testing.T) {
	for _, g := range []Geometry{
		{Blocks: 0, PagesPerBlock: 1, PageSize: 1},
		{Blocks: 1, PagesPerBlock: 0, PageSize: 1},
		{Blocks: 1, PagesPerBlock: 1, PageSize: 0},
	} {
		if _, err := New(g, 0); err == nil {
			t.Fatalf("New(%+v) accepted invalid geometry", g)
		}
	}
}

func TestProgramOrderEnforced(t *testing.T) {
	a := newTestArray(t, 2, 4, 0)
	if err := a.Program(0, 0); err != nil {
		t.Fatal(err)
	}
	// Skipping ahead violates program order.
	if err := a.Program(0, 2); !errors.Is(err, ErrProgramOrder) {
		t.Fatalf("skip program err = %v", err)
	}
	// Reprogramming without erase is rejected.
	if err := a.Program(0, 0); !errors.Is(err, ErrNotErased) {
		t.Fatalf("double program err = %v", err)
	}
	if err := a.Program(0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestEraseResetsProgramOrder(t *testing.T) {
	a := newTestArray(t, 1, 2, 0)
	for p := 0; p < 2; p++ {
		if err := a.Program(0, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Erase(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Program(0, 0); err != nil {
		t.Fatalf("program after erase: %v", err)
	}
	blk, err := a.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	if blk.EraseCount != 1 || blk.Programmed != 1 {
		t.Fatalf("block state %+v", blk)
	}
}

func TestWearOutGrowsBadBlock(t *testing.T) {
	a := newTestArray(t, 1, 1, 2)
	if err := a.Erase(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Erase(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Erase(0); !errors.Is(err, ErrWornOut) {
		t.Fatalf("third erase err = %v, want ErrWornOut", err)
	}
	if !a.IsBad(0) {
		t.Fatal("worn block not marked bad")
	}
	if err := a.Program(0, 0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("program on bad block err = %v", err)
	}
	if err := a.Erase(0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("erase on bad block err = %v", err)
	}
	if err := a.Read(0, 0); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("read on bad block err = %v", err)
	}
}

func TestFactoryBadBlocks(t *testing.T) {
	a := newTestArray(t, 1000, 4, 0)
	marked := a.MarkFactoryBadBlocks(0.02, 42)
	if marked == 0 || marked > 100 {
		t.Fatalf("marked %d of 1000 blocks bad, expected around 20", marked)
	}
	// Deterministic for the same seed.
	b := newTestArray(t, 1000, 4, 0)
	if again := b.MarkFactoryBadBlocks(0.02, 42); again != marked {
		t.Fatalf("non-deterministic bad-block marking: %d vs %d", marked, again)
	}
	if a.MarkFactoryBadBlocks(0, 1) != 0 {
		t.Fatal("zero fraction marked blocks")
	}
}

func TestStatsCounting(t *testing.T) {
	a := newTestArray(t, 2, 4, 0)
	if err := a.Program(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Read(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := a.Erase(0); err != nil {
		t.Fatal(err)
	}
	s := a.Stats()
	if s.PagesProgrammed != 1 || s.PagesRead != 1 || s.Erases != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestOutOfRangeOps(t *testing.T) {
	a := newTestArray(t, 2, 4, 0)
	if err := a.Program(2, 0); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("program err = %v", err)
	}
	if err := a.Read(0, 4); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("read err = %v", err)
	}
	if err := a.Erase(-1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("erase err = %v", err)
	}
	if _, err := a.Block(99); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("block err = %v", err)
	}
}

func TestWearMetrics(t *testing.T) {
	a := newTestArray(t, 4, 1, 0)
	for i := 0; i < 3; i++ {
		if err := a.Erase(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Erase(1); err != nil {
		t.Fatal(err)
	}
	if a.MaxEraseCount() != 3 {
		t.Fatalf("MaxEraseCount = %d", a.MaxEraseCount())
	}
	if got := a.MeanEraseCount(); got != 1.0 {
		t.Fatalf("MeanEraseCount = %v, want 1.0", got)
	}
}
