// Package flash models raw NAND flash: blocks of pages with the physical
// constraints real flash imposes — pages program in order within a block, a
// block must be erased before any page is reprogrammed, and blocks wear out
// after a bounded number of program/erase cycles. The SSD FTL
// (internal/ssd) is a client of this package; keeping the physics here lets
// tests assert that the FTL never violates them.
package flash

import (
	"errors"
	"fmt"
	"math/rand"
)

// Errors reported by the array.
var (
	// ErrProgramOrder reports an out-of-order or double program of a page.
	ErrProgramOrder = errors.New("flash: page program violates in-block order")
	// ErrNotErased reports a program to a block that still holds data.
	ErrNotErased = errors.New("flash: program to unerased page")
	// ErrBadBlock reports an operation on a block marked bad.
	ErrBadBlock = errors.New("flash: operation on bad block")
	// ErrWornOut reports an erase beyond the block's endurance budget.
	ErrWornOut = errors.New("flash: block worn out")
	// ErrOutOfRange reports a block or page index outside the geometry.
	ErrOutOfRange = errors.New("flash: index out of range")
)

// Geometry describes the NAND layout of one device.
type Geometry struct {
	Blocks        int   // number of physical blocks
	PagesPerBlock int   // pages per block (paper: 32–512)
	PageSize      int64 // bytes per page
}

// BlockBytes reports the size of one erase block in bytes.
func (g Geometry) BlockBytes() int64 { return int64(g.PagesPerBlock) * g.PageSize }

// TotalBytes reports the raw capacity of the array.
func (g Geometry) TotalBytes() int64 { return int64(g.Blocks) * g.BlockBytes() }

// BlockState tracks one erase block.
type BlockState struct {
	// Programmed is the number of pages programmed since the last erase;
	// the next programmable page index equals this value.
	Programmed int
	// EraseCount is the lifetime number of erases.
	EraseCount int64
	// Bad marks the block unusable (factory-marked or grown).
	Bad bool
}

// Stats counts lifetime flash operations; the FTL derives write
// amplification and wear from these.
type Stats struct {
	PagesRead       int64
	PagesProgrammed int64
	Erases          int64
}

// Array is one device's worth of NAND flash.
type Array struct {
	geo       Geometry
	endurance int64 // erases per block before ErrWornOut; 0 = unlimited
	blocks    []BlockState
	stats     Stats
}

// New creates an Array with the given geometry and per-block endurance
// budget (0 disables wear-out errors).
func New(geo Geometry, endurance int64) (*Array, error) {
	if geo.Blocks <= 0 || geo.PagesPerBlock <= 0 || geo.PageSize <= 0 {
		return nil, fmt.Errorf("flash: invalid geometry %+v", geo)
	}
	return &Array{
		geo:       geo,
		endurance: endurance,
		blocks:    make([]BlockState, geo.Blocks),
	}, nil
}

// MarkFactoryBadBlocks marks approximately frac of blocks bad, chosen
// deterministically from seed, modelling factory-marked bad blocks the FTL
// must skip.
func (a *Array) MarkFactoryBadBlocks(frac float64, seed int64) int {
	if frac <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	marked := 0
	for i := range a.blocks {
		if rng.Float64() < frac {
			a.blocks[i].Bad = true
			marked++
		}
	}
	return marked
}

// Geometry returns the array geometry.
func (a *Array) Geometry() Geometry { return a.geo }

// Stats returns accumulated operation counters.
func (a *Array) Stats() Stats { return a.stats }

// Block returns the state of block b.
func (a *Array) Block(b int) (BlockState, error) {
	if b < 0 || b >= a.geo.Blocks {
		return BlockState{}, fmt.Errorf("%w: block %d", ErrOutOfRange, b)
	}
	return a.blocks[b], nil
}

// IsBad reports whether block b is marked bad.
func (a *Array) IsBad(b int) bool {
	return b >= 0 && b < a.geo.Blocks && a.blocks[b].Bad
}

// Program writes page p of block b. Pages must be programmed strictly in
// order within an erased block.
func (a *Array) Program(b, p int) error {
	if b < 0 || b >= a.geo.Blocks || p < 0 || p >= a.geo.PagesPerBlock {
		return fmt.Errorf("%w: block %d page %d", ErrOutOfRange, b, p)
	}
	blk := &a.blocks[b]
	if blk.Bad {
		return fmt.Errorf("%w: block %d", ErrBadBlock, b)
	}
	if p != blk.Programmed {
		if p < blk.Programmed {
			return fmt.Errorf("%w: block %d page %d already programmed", ErrNotErased, b, p)
		}
		return fmt.Errorf("%w: block %d page %d, next programmable is %d", ErrProgramOrder, b, p, blk.Programmed)
	}
	blk.Programmed++
	a.stats.PagesProgrammed++
	return nil
}

// Read reads page p of block b. Reading unprogrammed pages is permitted
// (returns erased content in a real device) but still counted.
func (a *Array) Read(b, p int) error {
	if b < 0 || b >= a.geo.Blocks || p < 0 || p >= a.geo.PagesPerBlock {
		return fmt.Errorf("%w: block %d page %d", ErrOutOfRange, b, p)
	}
	if a.blocks[b].Bad {
		return fmt.Errorf("%w: block %d", ErrBadBlock, b)
	}
	a.stats.PagesRead++
	return nil
}

// Erase erases block b, making all its pages programmable again. Once the
// endurance budget is exceeded the block grows bad and ErrWornOut is
// returned; the FTL is expected to retire it.
func (a *Array) Erase(b int) error {
	if b < 0 || b >= a.geo.Blocks {
		return fmt.Errorf("%w: block %d", ErrOutOfRange, b)
	}
	blk := &a.blocks[b]
	if blk.Bad {
		return fmt.Errorf("%w: block %d", ErrBadBlock, b)
	}
	blk.EraseCount++
	blk.Programmed = 0
	a.stats.Erases++
	if a.endurance > 0 && blk.EraseCount > a.endurance {
		blk.Bad = true
		return fmt.Errorf("%w: block %d after %d erases", ErrWornOut, b, blk.EraseCount)
	}
	return nil
}

// AccountCopies records n page copies (read+program) plus the amortized
// erases they imply, without binding them to specific blocks. The FTL's
// hybrid-merge path uses this for data-block rewrites that bypass the
// page-mapped log (per-block wear for that path is tracked in aggregate
// only).
func (a *Array) AccountCopies(n int64) {
	if n <= 0 {
		return
	}
	a.stats.PagesRead += n
	a.stats.PagesProgrammed += n
	a.stats.Erases += (n + int64(a.geo.PagesPerBlock) - 1) / int64(a.geo.PagesPerBlock)
}

// MaxEraseCount reports the highest erase count across blocks — the wear
// hot-spot metric.
func (a *Array) MaxEraseCount() int64 {
	var m int64
	for i := range a.blocks {
		if a.blocks[i].EraseCount > m {
			m = a.blocks[i].EraseCount
		}
	}
	return m
}

// MeanEraseCount reports the average erase count across non-bad blocks.
func (a *Array) MeanEraseCount() float64 {
	var sum int64
	n := 0
	for i := range a.blocks {
		if a.blocks[i].Bad {
			continue
		}
		sum += a.blocks[i].EraseCount
		n++
	}
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
