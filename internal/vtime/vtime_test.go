package vtime

import (
	"testing"
	"time"
)

func TestAddSub(t *testing.T) {
	t0 := Time(0)
	t1 := t0.Add(5 * Millisecond)
	if got, want := t1, Time(5_000_000); got != want {
		t.Fatalf("Add = %v, want %v", got, want)
	}
	if got, want := t1.Sub(t0), 5*Millisecond; got != want {
		t.Fatalf("Sub = %v, want %v", got, want)
	}
}

func TestMaxMin(t *testing.T) {
	tests := []struct {
		a, b     Time
		max, min Time
	}{
		{0, 0, 0, 0},
		{1, 2, 2, 1},
		{7, 3, 7, 3},
		{-1, 1, 1, -1},
	}
	for _, tt := range tests {
		if got := Max(tt.a, tt.b); got != tt.max {
			t.Errorf("Max(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.max)
		}
		if got := Min(tt.a, tt.b); got != tt.min {
			t.Errorf("Min(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.min)
		}
	}
}

func TestTransferTime(t *testing.T) {
	tests := []struct {
		name string
		n    int64
		rate float64
		want Duration
	}{
		{"1MB at 1MB/s", 1e6, 1e6, Second},
		{"zero bytes", 0, 1e6, 0},
		{"zero rate means free", 1e6, 0, 0},
		{"negative rate means free", 1e6, -5, 0},
		{"half rate", 5e5, 1e6, 500 * Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := TransferTime(tt.n, tt.rate); got != tt.want {
				t.Fatalf("TransferTime(%d, %v) = %v, want %v", tt.n, tt.rate, got, tt.want)
			}
		})
	}
}

func TestRate(t *testing.T) {
	if got := Rate(2e6, 2*Second); got != 1e6 {
		t.Fatalf("Rate = %v, want 1e6", got)
	}
	if got := Rate(2e6, 0); got != 0 {
		t.Fatalf("Rate with zero elapsed = %v, want 0", got)
	}
	if got := MBPerSec(100e6, Second); got != 100 {
		t.Fatalf("MBPerSec = %v, want 100", got)
	}
}

func TestStdConversion(t *testing.T) {
	d := FromStd(3 * time.Millisecond)
	if d != 3*Millisecond {
		t.Fatalf("FromStd = %v", d)
	}
	if d.Std() != 3*time.Millisecond {
		t.Fatalf("Std = %v", d.Std())
	}
	if d.Seconds() != 0.003 {
		t.Fatalf("Seconds = %v", d.Seconds())
	}
}

func TestStringFormats(t *testing.T) {
	if got := Time(5 * Millisecond).String(); got != "t+5ms" {
		t.Fatalf("Time.String = %q", got)
	}
	if got := (3 * Second).String(); got != "3s" {
		t.Fatalf("Duration.String = %q", got)
	}
	if got := MaxDuration(Second, Millisecond); got != Second {
		t.Fatalf("MaxDuration = %v", got)
	}
	if got := MaxDuration(Millisecond, Second); got != Second {
		t.Fatalf("MaxDuration = %v", got)
	}
	if Time(2*Second).Seconds() != 2 {
		t.Fatal("Time.Seconds wrong")
	}
	if TransferTime(-5, 100) != 0 {
		t.Fatal("negative bytes should transfer free")
	}
}
