// Package vtime provides the virtual-time primitives used by the storage
// simulation. All device models and cache layers operate on Time values
// rather than wall-clock time, which makes every experiment deterministic
// and independent of host hardware.
package vtime

import (
	"fmt"
	"time"
)

// Time is an instant in virtual time, expressed in nanoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It deliberately mirrors
// time.Duration so the familiar constants (time.Millisecond etc.) convert
// directly.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// FromStd converts a time.Duration into a virtual Duration.
func FromStd(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a virtual Duration into a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration using the time package conventions.
func (d Duration) String() string { return time.Duration(d).String() }

// Add advances t by d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub reports the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as seconds since simulation start.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the instant as an offset from simulation start.
func (t Time) String() string { return fmt.Sprintf("t+%s", time.Duration(t)) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// MaxDuration returns the longer of a and b.
func MaxDuration(a, b Duration) Duration {
	if a > b {
		return a
	}
	return b
}

// TransferTime reports how long moving n bytes takes at bytesPerSec. A
// non-positive rate means "infinitely fast" and yields zero, which lets
// callers disable a bandwidth constraint without special-casing.
func TransferTime(n int64, bytesPerSec float64) Duration {
	if bytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return Duration(float64(n) / bytesPerSec * float64(Second))
}

// Rate reports the throughput, in bytes per second, of moving n bytes over
// elapsed. A non-positive elapsed yields zero.
func Rate(n int64, elapsed Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed.Seconds()
}

// MBPerSec reports the throughput of moving n bytes over elapsed in MB/s
// (decimal megabytes, as used throughout the paper).
func MBPerSec(n int64, elapsed Duration) float64 {
	return Rate(n, elapsed) / 1e6
}
