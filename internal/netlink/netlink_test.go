package netlink

import (
	"testing"

	"srccache/internal/vtime"
)

func TestDefaults(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Config().Bandwidth != 125e6 || l.Config().RTT != 200*vtime.Microsecond {
		t.Fatalf("defaults %+v", l.Config())
	}
	if _, err := New(Config{Bandwidth: -1}); err == nil {
		t.Fatal("accepted negative bandwidth")
	}
	if _, err := New(Config{RTT: -1}); err == nil {
		t.Fatal("accepted negative rtt")
	}
}

func TestTransferTimeAndSerialization(t *testing.T) {
	l, err := New(Config{Bandwidth: 1e6, RTT: 2 * vtime.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB at 1 MB/s = 1 s + half RTT propagation.
	done := l.Send(0, 1e6)
	want := vtime.Time(vtime.Second + vtime.Millisecond)
	if done != want {
		t.Fatalf("send done %v, want %v", done, want)
	}
	// Second transfer in the same direction queues behind the first.
	done2 := l.Send(0, 1e6)
	if done2 != want.Add(vtime.Second) {
		t.Fatalf("queued send done %v", done2)
	}
	if l.SentBytes() != 2e6 {
		t.Fatalf("sent bytes %d", l.SentBytes())
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	cfg := Config{Bandwidth: 1e6, RTT: 2 * vtime.Millisecond, Jitter: vtime.Millisecond, Seed: 42}
	sequence := func() []vtime.Time {
		l, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var out []vtime.Time
		for i := 0; i < 32; i++ {
			out = append(out, l.Send(0, 1000), l.Recv(0, 1000))
		}
		return out
	}
	a, b := sequence(), sequence()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// The per-send queueing deltas must not all be equal: a constant delta
	// would mean the jitter draw never varied anything.
	varied := false
	for i := 4; i < len(a); i += 2 {
		if a[i]-a[i-2] != a[2]-a[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never varied the completion times")
	}
	smooth, err := New(Config{Bandwidth: 1e6, RTT: 2 * vtime.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	jittered, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := smooth.Send(0, 1000)
	got := jittered.Send(0, 1000)
	if got < base || got > base.Add(cfg.Jitter) {
		t.Fatalf("jittered completion %v outside [%v, %v]", got, base, base.Add(cfg.Jitter))
	}
	if _, err := New(Config{Jitter: -1}); err == nil {
		t.Fatal("accepted negative jitter")
	}
}

func TestDegradeStretchesTransfers(t *testing.T) {
	l, err := New(Config{Bandwidth: 1e6, RTT: 2 * vtime.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	healthy := l.Send(0, 1e6) // 1s transfer + 1ms propagation
	l.Degrade(3)
	if l.Degraded() != 3 {
		t.Fatalf("Degraded() = %v", l.Degraded())
	}
	slow := l.Send(healthy, 1e6)
	if want := healthy.Add(3*vtime.Second + 3*vtime.Millisecond); slow != want {
		t.Fatalf("degraded send done %v, want %v", slow, want)
	}
	// Restoring health (factor clamps below 1) returns to the smooth rate.
	l.Degrade(0)
	restored := l.Send(slow, 1e6)
	if want := slow.Add(vtime.Second + vtime.Millisecond); restored != want {
		t.Fatalf("restored send done %v, want %v", restored, want)
	}
}

func TestFullDuplexIndependence(t *testing.T) {
	l, err := New(Config{Bandwidth: 1e6, RTT: 2 * vtime.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	l.Send(0, 1e6)
	// The receive direction is idle: a simultaneous Recv is not queued
	// behind the Send.
	done := l.Recv(0, 1e6)
	if done != vtime.Time(vtime.Second+vtime.Nanosecond) {
		t.Fatalf("recv done %v, want ~1s", done)
	}
	if l.RecvBytes() != 1e6 {
		t.Fatalf("recv bytes %d", l.RecvBytes())
	}
}
