package netlink

import (
	"testing"

	"srccache/internal/vtime"
)

func TestDefaults(t *testing.T) {
	l, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Config().Bandwidth != 125e6 || l.Config().RTT != 200*vtime.Microsecond {
		t.Fatalf("defaults %+v", l.Config())
	}
	if _, err := New(Config{Bandwidth: -1}); err == nil {
		t.Fatal("accepted negative bandwidth")
	}
	if _, err := New(Config{RTT: -1}); err == nil {
		t.Fatal("accepted negative rtt")
	}
}

func TestTransferTimeAndSerialization(t *testing.T) {
	l, err := New(Config{Bandwidth: 1e6, RTT: 2 * vtime.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// 1 MB at 1 MB/s = 1 s + half RTT propagation.
	done := l.Send(0, 1e6)
	want := vtime.Time(vtime.Second + vtime.Millisecond)
	if done != want {
		t.Fatalf("send done %v, want %v", done, want)
	}
	// Second transfer in the same direction queues behind the first.
	done2 := l.Send(0, 1e6)
	if done2 != want.Add(vtime.Second) {
		t.Fatalf("queued send done %v", done2)
	}
	if l.SentBytes() != 2e6 {
		t.Fatalf("sent bytes %d", l.SentBytes())
	}
}

func TestFullDuplexIndependence(t *testing.T) {
	l, err := New(Config{Bandwidth: 1e6, RTT: 2 * vtime.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	l.Send(0, 1e6)
	// The receive direction is idle: a simultaneous Recv is not queued
	// behind the Send.
	done := l.Recv(0, 1e6)
	if done != vtime.Time(vtime.Second+vtime.Nanosecond) {
		t.Fatalf("recv done %v, want ~1s", done)
	}
	if l.RecvBytes() != 1e6 {
		t.Fatalf("recv bytes %d", l.RecvBytes())
	}
}
