// Package netlink models a full-duplex network pipe with fixed bandwidth
// and round-trip latency — the simulation's stand-in for the 1 Gbps iSCSI
// path between the host and primary storage, and for the node-to-node
// links of the cluster layer. Optional seeded jitter and a fail-slow
// Degrade knob let the cluster chaos harness model degraded links without
// leaving virtual time.
package netlink

import (
	"fmt"
	"math/rand"

	"srccache/internal/vtime"
)

// Config describes a link.
type Config struct {
	// Bandwidth is per-direction bandwidth in bytes/s (default 1 Gbps =
	// 125 MB/s).
	Bandwidth float64
	// RTT is the round-trip latency (default 200 µs).
	RTT vtime.Duration
	// Jitter, when positive, adds a uniformly distributed extra delay in
	// [0, Jitter] to every transfer, drawn from a rand seeded with Seed —
	// the per-packet variance a shared switch fabric exhibits. Zero keeps
	// the link perfectly smooth (the pre-cluster behavior).
	Jitter vtime.Duration
	// Seed selects the jitter sequence. Two links with equal Config produce
	// identical delay sequences for identical call sequences.
	Seed int64
}

// Validate fills defaults.
func (c Config) Validate() (Config, error) {
	if c.Bandwidth == 0 {
		c.Bandwidth = 125e6
	}
	if c.Bandwidth < 0 {
		return c, fmt.Errorf("netlink: negative bandwidth %v", c.Bandwidth)
	}
	if c.RTT == 0 {
		c.RTT = 200 * vtime.Microsecond
	}
	if c.RTT < 0 {
		return c, fmt.Errorf("netlink: negative rtt %v", c.RTT)
	}
	if c.Jitter < 0 {
		return c, fmt.Errorf("netlink: negative jitter %v", c.Jitter)
	}
	return c, nil
}

// Link is a full-duplex pipe. Send models host→storage transfers (writes),
// Recv models storage→host transfers (read payloads); the two directions
// contend independently.
type Link struct {
	cfg      Config
	rng      *rand.Rand // non-nil iff Jitter > 0
	factor   float64    // fail-slow multiplier, 1 = healthy
	upBusy   vtime.Time
	downBusy vtime.Time

	sentBytes int64
	recvBytes int64
}

// New builds a link from cfg.
func New(cfg Config) (*Link, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	l := &Link{cfg: cfg, factor: 1}
	if cfg.Jitter > 0 {
		l.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return l, nil
}

// Config returns the effective configuration.
func (l *Link) Config() Config { return l.cfg }

// Degrade sets the fail-slow multiplier applied to transfer and propagation
// times — the link-level twin of blockdev.FaultPlan.SetSlowdown. Values
// below 1 restore healthy speed; the zero Link state is healthy.
func (l *Link) Degrade(factor float64) {
	if factor < 1 {
		factor = 1
	}
	l.factor = factor
}

// Degraded reports the current fail-slow multiplier (1 = healthy).
func (l *Link) Degraded() float64 { return l.factor }

// delay computes one transfer's service time: bandwidth time and half-RTT
// propagation stretched by the fail-slow factor, plus the seeded jitter
// draw. The jitter rand advances exactly once per transfer, so the delay
// sequence is a pure function of (Config, call sequence).
func (l *Link) delay(n int64) (xfer, prop vtime.Duration) {
	xfer = vtime.TransferTime(n, l.cfg.Bandwidth)
	prop = l.cfg.RTT / 2
	if l.factor > 1 {
		xfer = vtime.Duration(float64(xfer) * l.factor)
		prop = vtime.Duration(float64(prop) * l.factor)
	}
	if l.rng != nil {
		xfer += vtime.Duration(l.rng.Int63n(int64(l.cfg.Jitter) + 1))
	}
	return xfer, prop
}

// Send transfers n bytes host→storage starting no earlier than at and
// returns the arrival time at the far end (propagation included).
func (l *Link) Send(at vtime.Time, n int64) vtime.Time {
	xfer, prop := l.delay(n)
	start := vtime.Max(at, l.upBusy)
	l.upBusy = start.Add(xfer)
	l.sentBytes += n
	return l.upBusy.Add(prop)
}

// Recv transfers n bytes storage→host starting no earlier than at and
// returns the arrival time at the host.
func (l *Link) Recv(at vtime.Time, n int64) vtime.Time {
	xfer, prop := l.delay(n)
	start := vtime.Max(at, l.downBusy)
	l.downBusy = start.Add(xfer)
	l.recvBytes += n
	return l.downBusy.Add(prop)
}

// SentBytes reports cumulative host→storage traffic.
func (l *Link) SentBytes() int64 { return l.sentBytes }

// RecvBytes reports cumulative storage→host traffic.
func (l *Link) RecvBytes() int64 { return l.recvBytes }
