// Package netlink models a full-duplex network pipe with fixed bandwidth
// and round-trip latency — the simulation's stand-in for the 1 Gbps iSCSI
// path between the host and primary storage.
package netlink

import (
	"fmt"

	"srccache/internal/vtime"
)

// Config describes a link.
type Config struct {
	// Bandwidth is per-direction bandwidth in bytes/s (default 1 Gbps =
	// 125 MB/s).
	Bandwidth float64
	// RTT is the round-trip latency (default 200 µs).
	RTT vtime.Duration
}

// Validate fills defaults.
func (c Config) Validate() (Config, error) {
	if c.Bandwidth == 0 {
		c.Bandwidth = 125e6
	}
	if c.Bandwidth < 0 {
		return c, fmt.Errorf("netlink: negative bandwidth %v", c.Bandwidth)
	}
	if c.RTT == 0 {
		c.RTT = 200 * vtime.Microsecond
	}
	if c.RTT < 0 {
		return c, fmt.Errorf("netlink: negative rtt %v", c.RTT)
	}
	return c, nil
}

// Link is a full-duplex pipe. Send models host→storage transfers (writes),
// Recv models storage→host transfers (read payloads); the two directions
// contend independently.
type Link struct {
	cfg      Config
	upBusy   vtime.Time
	downBusy vtime.Time

	sentBytes int64
	recvBytes int64
}

// New builds a link from cfg.
func New(cfg Config) (*Link, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	return &Link{cfg: cfg}, nil
}

// Config returns the effective configuration.
func (l *Link) Config() Config { return l.cfg }

// Send transfers n bytes host→storage starting no earlier than at and
// returns the arrival time at the far end (propagation included).
func (l *Link) Send(at vtime.Time, n int64) vtime.Time {
	start := vtime.Max(at, l.upBusy)
	l.upBusy = start.Add(vtime.TransferTime(n, l.cfg.Bandwidth))
	l.sentBytes += n
	return l.upBusy.Add(l.cfg.RTT / 2)
}

// Recv transfers n bytes storage→host starting no earlier than at and
// returns the arrival time at the host.
func (l *Link) Recv(at vtime.Time, n int64) vtime.Time {
	start := vtime.Max(at, l.downBusy)
	l.downBusy = start.Add(vtime.TransferTime(n, l.cfg.Bandwidth))
	l.recvBytes += n
	return l.downBusy.Add(l.cfg.RTT / 2)
}

// SentBytes reports cumulative host→storage traffic.
func (l *Link) SentBytes() int64 { return l.sentBytes }

// RecvBytes reports cumulative storage→host traffic.
func (l *Link) RecvBytes() int64 { return l.recvBytes }
