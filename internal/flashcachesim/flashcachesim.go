// Package flashcachesim reproduces the behaviours of Facebook's Flashcache
// that the paper measures (Section 3.1): a set-associative block cache with
// 2 MB sets of 4 KB blocks, per-dirty-block metadata writes to the SSD,
// in-memory-only metadata for clean data, a dirty_thresh_pct background
// destager, and — crucially — flush commands from the upper layer are
// always ignored and acknowledged immediately.
//
// Deployed over a RAID-5 cache volume ("Flashcache5"), its random 4 KB
// in-place writes suffer the read-modify-write small-write penalty the
// paper demonstrates in Figure 1.
package flashcachesim

import (
	"fmt"

	"srccache/internal/bench"
	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

// WriteMode selects write-through or write-back caching.
type WriteMode int

// Write modes.
const (
	WriteBack WriteMode = iota + 1
	WriteThrough
)

// String names the mode.
func (m WriteMode) String() string {
	if m == WriteThrough {
		return "write-through"
	}
	return "write-back"
}

// Config assembles a cache.
type Config struct {
	// Cache is the caching volume (one SSD, or a RAID array of them).
	Cache blockdev.Device
	// SSDs lists the physical devices behind Cache for traffic accounting
	// (defaults to [Cache]).
	SSDs []blockdev.Device
	// Primary is the backing store.
	Primary blockdev.Device
	// SetBytes is the set size (default 2 MiB, Flashcache's default).
	SetBytes int64
	// DirtyThreshPct is the per-set dirty percentage above which
	// background destaging kicks in (default 20, Flashcache's default;
	// the paper's experiments raise it to 90).
	DirtyThreshPct float64
	// Mode selects write-back (default, as the paper benchmarks) or
	// write-through (Flashcache's recommended default).
	Mode WriteMode
}

// Validate fills defaults.
func (c Config) Validate() (Config, error) {
	if c.Cache == nil || c.Primary == nil {
		return c, fmt.Errorf("flashcachesim: cache and primary devices required")
	}
	if len(c.SSDs) == 0 {
		c.SSDs = []blockdev.Device{c.Cache}
	}
	if c.SetBytes == 0 {
		c.SetBytes = 2 << 20
	}
	if c.SetBytes%blockdev.PageSize != 0 || c.SetBytes <= 0 {
		return c, fmt.Errorf("flashcachesim: set size %d must be a positive page multiple", c.SetBytes)
	}
	if c.Cache.Capacity()%c.SetBytes != 0 {
		return c, fmt.Errorf("flashcachesim: cache capacity %d not a multiple of set size %d", c.Cache.Capacity(), c.SetBytes)
	}
	if c.DirtyThreshPct == 0 {
		c.DirtyThreshPct = 20
	}
	if c.DirtyThreshPct < 0 || c.DirtyThreshPct > 100 {
		return c, fmt.Errorf("flashcachesim: dirty threshold %v out of [0,100]", c.DirtyThreshPct)
	}
	if c.Mode == 0 {
		c.Mode = WriteBack
	}
	return c, nil
}

// slot is one cache block.
type slot struct {
	lba   int64 // -1 when free
	dirty bool
}

// Cache is a Flashcache-like set-associative cache implementing
// bench.Cache.
type Cache struct {
	cfg      Config
	setPages int64
	numSets  int64
	slots    []slot
	fifoPtr  []int64 // per-set replacement cursor (Flashcache's FIFO)
	dirtyCnt []int64 // per-set dirty slots
	index    map[int64]int64
	counters bench.Counters
}

var _ bench.Cache = (*Cache)(nil)

// New builds the cache.
func New(cfg Config) (*Cache, error) {
	cfg, err := cfg.Validate()
	if err != nil {
		return nil, err
	}
	setPages := cfg.SetBytes / blockdev.PageSize
	numSets := cfg.Cache.Capacity() / cfg.SetBytes
	c := &Cache{
		cfg:      cfg,
		setPages: setPages,
		numSets:  numSets,
		slots:    make([]slot, setPages*numSets),
		fifoPtr:  make([]int64, numSets),
		dirtyCnt: make([]int64, numSets),
		index:    make(map[int64]int64),
	}
	for i := range c.slots {
		c.slots[i].lba = -1
	}
	return c, nil
}

// Config returns the effective configuration.
func (c *Cache) Config() Config { return c.cfg }

// Counters implements bench.Cache.
func (c *Cache) Counters() bench.Counters { return c.counters }

// CacheDevices implements bench.Cache.
func (c *Cache) CacheDevices() []blockdev.Device { return c.cfg.SSDs }

// setOf hashes an LBA to its set.
func (c *Cache) setOf(lba int64) int64 {
	x := uint64(lba) * 0x9e3779b97f4a7c15
	x ^= x >> 29
	return int64(x % uint64(c.numSets))
}

// cacheOff is the byte offset of slot i on the cache volume.
func (c *Cache) cacheOff(i int64) int64 { return i * blockdev.PageSize }

// metadataWrite charges one 4 KB metadata block write (Flashcache persists
// metadata for dirty blocks only).
func (c *Cache) metadataWrite(at vtime.Time, set int64) (vtime.Time, error) {
	// Metadata blocks live in a separate partition; model it at the set's
	// start offset region.
	off := set * blockdev.PageSize
	done, err := c.cfg.Cache.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: off % c.cfg.Cache.Capacity(), Len: blockdev.PageSize})
	if err != nil {
		return at, err
	}
	c.counters.MetadataBytes += blockdev.PageSize
	return done, nil
}

// allocSlot picks the replacement victim in a set, destaging it first if
// dirty. It returns the slot index and the time the slot became free.
func (c *Cache) allocSlot(at vtime.Time, set int64) (int64, vtime.Time, error) {
	base := set * c.setPages
	// Prefer a free slot.
	for i := base; i < base+c.setPages; i++ {
		if c.slots[i].lba < 0 {
			return i, at, nil
		}
	}
	// FIFO replacement within the set.
	i := base + c.fifoPtr[set]
	c.fifoPtr[set] = (c.fifoPtr[set] + 1) % c.setPages
	ready := at
	if c.slots[i].dirty {
		t, err := c.destageSlot(at, i)
		if err != nil {
			return 0, at, err
		}
		ready = t
	}
	delete(c.index, c.slots[i].lba)
	c.slots[i] = slot{lba: -1}
	return i, ready, nil
}

// destageSlot writes one dirty block back to primary storage.
func (c *Cache) destageSlot(at vtime.Time, i int64) (vtime.Time, error) {
	readDone, err := c.cfg.Cache.Submit(at, blockdev.Request{Op: blockdev.OpRead, Off: c.cacheOff(i), Len: blockdev.PageSize})
	if err != nil {
		return at, err
	}
	done, err := c.cfg.Primary.Submit(readDone, blockdev.Request{
		Op: blockdev.OpWrite, Off: c.slots[i].lba * blockdev.PageSize, Len: blockdev.PageSize,
	})
	if err != nil {
		return at, err
	}
	c.counters.DestageBytes += blockdev.PageSize
	c.slots[i].dirty = false
	c.dirtyCnt[i/c.setPages]--
	return done, nil
}

// backgroundDestage enforces dirty_thresh_pct: sets above the threshold are
// destaged down to it. The work is charged to the devices but not to the
// acknowledgement path (Flashcache destages from a background thread).
func (c *Cache) backgroundDestage(at vtime.Time, set int64) error {
	limit := int64(c.cfg.DirtyThreshPct / 100 * float64(c.setPages))
	base := set * c.setPages
	for i := base; i < base+c.setPages && c.dirtyCnt[set] > limit; i++ {
		if c.slots[i].dirty {
			if _, err := c.destageSlot(at, i); err != nil {
				return err
			}
		}
	}
	return nil
}

// Submit serves one host request.
func (c *Cache) Submit(at vtime.Time, req blockdev.Request) (vtime.Time, error) {
	if err := req.Validate(c.cfg.Primary.Capacity()); err != nil {
		return at, err
	}
	first := req.Off / blockdev.PageSize
	pages := req.Pages()
	done := at
	switch req.Op {
	case blockdev.OpWrite:
		c.counters.Writes += pages
		c.counters.WriteBytes += req.Len
		for p := first; p < first+pages; p++ {
			t, err := c.writePage(at, p)
			if err != nil {
				return done, err
			}
			done = vtime.Max(done, t)
		}
	case blockdev.OpRead:
		c.counters.Reads += pages
		c.counters.ReadBytes += req.Len
		for p := first; p < first+pages; p++ {
			t, err := c.readPage(at, p)
			if err != nil {
				return done, err
			}
			done = vtime.Max(done, t)
		}
	default:
		return c.cfg.Primary.Submit(at, req)
	}
	return done, nil
}

func (c *Cache) writePage(at vtime.Time, lba int64) (vtime.Time, error) {
	set := c.setOf(lba)
	if c.cfg.Mode == WriteThrough {
		return c.writeThrough(at, lba, set)
	}
	i, ready, hit := int64(0), at, false
	if idx, ok := c.index[lba]; ok {
		i, hit = idx, true
	} else {
		var err error
		i, ready, err = c.allocSlot(at, set)
		if err != nil {
			return at, err
		}
	}
	dataDone, err := c.cfg.Cache.Submit(ready, blockdev.Request{Op: blockdev.OpWrite, Off: c.cacheOff(i), Len: blockdev.PageSize})
	if err != nil {
		return at, err
	}
	done := dataDone
	if !hit || !c.slots[i].dirty {
		// New dirty block: its metadata must be persisted.
		mdDone, err := c.metadataWrite(ready, set)
		if err != nil {
			return at, err
		}
		done = vtime.Max(done, mdDone)
	}
	if !c.slots[i].dirty {
		c.dirtyCnt[set]++
	}
	c.slots[i] = slot{lba: lba, dirty: true}
	c.index[lba] = i
	if err := c.backgroundDestage(done, set); err != nil {
		return done, err
	}
	return done, nil
}

func (c *Cache) writeThrough(at vtime.Time, lba, set int64) (vtime.Time, error) {
	primDone, err := c.cfg.Primary.Submit(at, blockdev.Request{Op: blockdev.OpWrite, Off: lba * blockdev.PageSize, Len: blockdev.PageSize})
	if err != nil {
		return at, err
	}
	i, ready, ok := int64(0), at, false
	if idx, hit := c.index[lba]; hit {
		i, ok = idx, true
	} else {
		i, ready, err = c.allocSlot(at, set)
		if err != nil {
			return at, err
		}
	}
	cacheDone, err := c.cfg.Cache.Submit(ready, blockdev.Request{Op: blockdev.OpWrite, Off: c.cacheOff(i), Len: blockdev.PageSize})
	if err != nil {
		return at, err
	}
	if ok && c.slots[i].dirty {
		c.dirtyCnt[set]--
	}
	c.slots[i] = slot{lba: lba, dirty: false}
	c.index[lba] = i
	return vtime.Max(primDone, cacheDone), nil
}

func (c *Cache) readPage(at vtime.Time, lba int64) (vtime.Time, error) {
	if i, ok := c.index[lba]; ok {
		c.counters.ReadHits++
		c.counters.ReadHitBytes += blockdev.PageSize
		return c.cfg.Cache.Submit(at, blockdev.Request{Op: blockdev.OpRead, Off: c.cacheOff(i), Len: blockdev.PageSize})
	}
	done, err := c.cfg.Primary.Submit(at, blockdev.Request{Op: blockdev.OpRead, Off: lba * blockdev.PageSize, Len: blockdev.PageSize})
	if err != nil {
		return at, err
	}
	c.counters.FillBytes += blockdev.PageSize
	// Insert as clean: data write to cache, metadata stays in memory only
	// (clean data is lost on power failure — paper Table 5).
	set := c.setOf(lba)
	i, ready, err := c.allocSlot(done, set)
	if err != nil {
		return done, err
	}
	if _, err := c.cfg.Cache.Submit(ready, blockdev.Request{Op: blockdev.OpWrite, Off: c.cacheOff(i), Len: blockdev.PageSize}); err != nil {
		return done, err
	}
	c.slots[i] = slot{lba: lba, dirty: false}
	c.index[lba] = i
	return done, nil
}

// Flush ignores the flush command and acknowledges immediately —
// Flashcache's documented behaviour ("always ignores flush commands from
// the upper layer ... vulnerable to file system inconsistency").
func (c *Cache) Flush(at vtime.Time) (vtime.Time, error) {
	return at, nil
}

// DirtyPages reports the number of dirty cached blocks.
func (c *Cache) DirtyPages() int64 {
	var n int64
	for _, d := range c.dirtyCnt {
		n += d
	}
	return n
}
