package flashcachesim

import (
	"math/rand"
	"testing"

	"srccache/internal/blockdev"
	"srccache/internal/vtime"
)

const (
	cacheCap = 8 << 20
	primCap  = 64 << 20
	setBytes = 64 << 10 // 16 pages per set for fast tests
)

type env struct {
	cache *Cache
	dev   *blockdev.MemDevice
	prim  *blockdev.MemDevice
	at    vtime.Time
	t     *testing.T
}

func newEnv(t *testing.T, mutate func(*Config)) *env {
	t.Helper()
	dev := blockdev.NewMemDevice(cacheCap, 10*vtime.Microsecond)
	prim := blockdev.NewMemDevice(primCap, vtime.Millisecond)
	cfg := Config{Cache: dev, Primary: prim, SetBytes: setBytes, DirtyThreshPct: 90}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &env{cache: c, dev: dev, prim: prim, t: t}
}

func (e *env) submit(op blockdev.Op, lba, pages int64) vtime.Duration {
	e.t.Helper()
	done, err := e.cache.Submit(e.at, blockdev.Request{Op: op, Off: lba * blockdev.PageSize, Len: pages * blockdev.PageSize})
	if err != nil {
		e.t.Fatalf("%v lba %d: %v", op, lba, err)
	}
	lat := done.Sub(e.at)
	e.at = vtime.Max(e.at, done)
	return lat
}

func TestValidation(t *testing.T) {
	dev := blockdev.NewMemDevice(cacheCap, 0)
	prim := blockdev.NewMemDevice(primCap, 0)
	if _, err := New(Config{Primary: prim}); err == nil {
		t.Fatal("accepted missing cache")
	}
	if _, err := New(Config{Cache: dev, Primary: prim, SetBytes: 100}); err == nil {
		t.Fatal("accepted unaligned set")
	}
	if _, err := New(Config{Cache: dev, Primary: prim, SetBytes: 3 << 20}); err == nil {
		t.Fatal("accepted non-dividing set size")
	}
	if _, err := New(Config{Cache: dev, Primary: prim, DirtyThreshPct: 150}); err == nil {
		t.Fatal("accepted bad threshold")
	}
	c, err := New(Config{Cache: dev, Primary: prim})
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().SetBytes != 2<<20 || c.Config().DirtyThreshPct != 20 || c.Config().Mode != WriteBack {
		t.Fatalf("defaults %+v", c.Config())
	}
}

func TestWriteBackWriteGoesToCacheOnly(t *testing.T) {
	e := newEnv(t, nil)
	e.submit(blockdev.OpWrite, 5, 1)
	if e.prim.Stats().WriteOps != 0 {
		t.Fatal("write-back write touched primary")
	}
	// Data write + metadata write.
	if e.dev.Stats().WriteOps != 2 {
		t.Fatalf("cache writes %d, want data+metadata", e.dev.Stats().WriteOps)
	}
	if e.cache.DirtyPages() != 1 {
		t.Fatalf("dirty pages %d", e.cache.DirtyPages())
	}
}

func TestRewriteOfDirtySkipsMetadata(t *testing.T) {
	e := newEnv(t, nil)
	e.submit(blockdev.OpWrite, 5, 1)
	writes := e.dev.Stats().WriteOps
	e.submit(blockdev.OpWrite, 5, 1)
	if e.dev.Stats().WriteOps != writes+1 {
		t.Fatalf("rewrite issued %d cache writes, want 1 (data only)", e.dev.Stats().WriteOps-writes)
	}
}

func TestWriteThroughHitsPrimarySynchronously(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.Mode = WriteThrough })
	lat := e.submit(blockdev.OpWrite, 5, 1)
	if lat < vtime.Millisecond {
		t.Fatalf("write-through latency %v did not include primary", lat)
	}
	if e.prim.Stats().WriteOps != 1 {
		t.Fatal("primary not written")
	}
	if e.cache.DirtyPages() != 0 {
		t.Fatal("write-through left dirty data")
	}
}

func TestReadMissFillsReadHitServes(t *testing.T) {
	e := newEnv(t, nil)
	if lat := e.submit(blockdev.OpRead, 9, 1); lat < vtime.Millisecond {
		t.Fatalf("miss latency %v", lat)
	}
	if lat := e.submit(blockdev.OpRead, 9, 1); lat >= vtime.Millisecond {
		t.Fatalf("hit latency %v went to primary", lat)
	}
	ctr := e.cache.Counters()
	if ctr.Reads != 2 || ctr.ReadHits != 1 || ctr.FillBytes != blockdev.PageSize {
		t.Fatalf("counters %+v", ctr)
	}
}

func TestEvictionDestagesDirtyVictim(t *testing.T) {
	e := newEnv(t, nil)
	// Fill one set beyond its associativity with dirty blocks: find LBAs
	// hashing to set 0.
	setPages := setBytes / blockdev.PageSize
	var lbas []int64
	for lba := int64(0); len(lbas) < int(setPages)+1; lba++ {
		if e.cache.setOf(lba) == 0 {
			lbas = append(lbas, lba)
		}
	}
	for _, lba := range lbas {
		e.submit(blockdev.OpWrite, lba, 1)
	}
	if e.prim.Stats().WriteOps == 0 {
		t.Fatal("set overflow did not destage")
	}
	if e.cache.Counters().DestageBytes == 0 {
		t.Fatal("destage not accounted")
	}
}

func TestDirtyThresholdDestages(t *testing.T) {
	e := newEnv(t, func(c *Config) { c.DirtyThreshPct = 10 })
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		e.submit(blockdev.OpWrite, rng.Int63n(4096), 1)
	}
	totalPages := float64(int64(cacheCap) / blockdev.PageSize)
	limitTotal := int64(totalPages * 0.10)
	// Allow slack: the threshold is enforced per set.
	if e.cache.DirtyPages() > 2*limitTotal {
		t.Fatalf("dirty pages %d far above 10%% threshold %d", e.cache.DirtyPages(), limitTotal)
	}
}

func TestFlushIsIgnored(t *testing.T) {
	e := newEnv(t, nil)
	e.submit(blockdev.OpWrite, 1, 1)
	done, err := e.cache.Flush(e.at)
	if err != nil {
		t.Fatal(err)
	}
	if done != e.at {
		t.Fatalf("flush took %v, Flashcache ignores flushes", done.Sub(e.at))
	}
	if e.dev.Stats().Flushes != 0 {
		t.Fatal("flush forwarded to device")
	}
}

func TestTrimForwarded(t *testing.T) {
	e := newEnv(t, nil)
	e.submit(blockdev.OpTrim, 0, 4)
	if e.prim.Stats().TrimOps != 1 {
		t.Fatal("trim not forwarded")
	}
}

func TestWriteBackOutperformsWriteThrough(t *testing.T) {
	// The Table 2 relationship, in miniature: random 4K writes are far
	// faster under write-back than write-through.
	run := func(mode WriteMode) vtime.Time {
		e := newEnv(t, func(c *Config) { c.Mode = mode })
		rng := rand.New(rand.NewSource(2))
		for i := 0; i < 500; i++ {
			e.submit(blockdev.OpWrite, rng.Int63n(1024), 1)
		}
		return e.at
	}
	wb, wt := run(WriteBack), run(WriteThrough)
	if !(wt > 2*wb) {
		t.Fatalf("write-through (%v) not much slower than write-back (%v)", wt, wb)
	}
}
