package driver

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"srccache/internal/analysis"
	"srccache/internal/analysis/errpath"
	"srccache/internal/analysis/flushepoch"
	"srccache/internal/analysis/ioerr"
	"srccache/internal/analysis/lockheld"
	"srccache/internal/analysis/maprange"
	"srccache/internal/analysis/seededrand"
	"srccache/internal/analysis/wallclock"
)

// allAnalyzers mirrors cmd/srclint's registration list.
var allAnalyzers = []*analysis.Analyzer{
	wallclock.Analyzer,
	seededrand.Analyzer,
	maprange.Analyzer,
	ioerr.Analyzer,
	errpath.Analyzer,
	lockheld.Analyzer,
	flushepoch.Analyzer,
}

// TestJSONSchema pins the -json wire format: one object per line with
// exactly the fields {analyzer, file, line, message}, paths relative to the
// given root.
func TestJSONSchema(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("/repo/internal/src/gc.go", -1, 1000)
	f.SetLines([]int{0, 100, 200, 300})
	pos := f.LineStart(3)

	var buf bytes.Buffer
	diags := []analysis.Diagnostic{
		{Pos: pos, Category: "flushepoch", Message: "return without drain/flush"},
	}
	if err := writeJSONDiags(&buf, fset, "/repo", diags); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 NDJSON line, got %d: %q", len(lines), buf.String())
	}
	var got map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("line is not valid JSON: %v", err)
	}
	var keys []string
	for k := range got {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if want := []string{"analyzer", "file", "line", "message"}; strings.Join(keys, ",") != strings.Join(want, ",") {
		t.Errorf("field set = %v, want %v", keys, want)
	}
	if got["analyzer"] != "flushepoch" {
		t.Errorf("analyzer = %v", got["analyzer"])
	}
	if got["file"] != "internal/src/gc.go" {
		t.Errorf("file = %v, want repo-relative internal/src/gc.go", got["file"])
	}
	if got["line"] != float64(3) {
		t.Errorf("line = %v, want 3", got["line"])
	}
	if got["message"] != "return without drain/flush" {
		t.Errorf("message = %v", got["message"])
	}
}

// loadSrcPackage lists srccache/internal/src with export data and returns
// its file list plus an importer over the dependency closure.
func loadSrcPackage(t *testing.T) (files []string, packageFile map[string]string) {
	t.Helper()
	pkgs, err := goList([]string{"srccache/internal/src"})
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	packageFile = make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if p.ImportPath == "srccache/internal/src" {
			for _, f := range p.GoFiles {
				files = append(files, filepath.Join(p.Dir, f))
			}
		}
	}
	if len(files) == 0 {
		t.Fatal("srccache/internal/src not found in go list output")
	}
	return files, packageFile
}

// TestSrcSelfClean asserts the real internal/src package is clean under all
// seven analyzers (including stale-suppression detection) — the tree-wide
// self-clean gate in miniature.
func TestSrcSelfClean(t *testing.T) {
	files, packageFile := loadSrcPackage(t)
	fset := token.NewFileSet()
	imp := exportImporter(fset, nil, packageFile)
	diags, err := checkPackage(allAnalyzers, fset, imp, "srccache/internal/src", "", files)
	if err != nil {
		t.Fatalf("checkPackage: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %v: [%s] %s", fset.Position(d.Pos), d.Category, d.Message)
	}
}

// TestSeedingRemoval is the sanity check that flushepoch really guards the
// annotated contract sites: deleting the drain call from gc's return path
// must produce a flushepoch finding. The mutation happens on a copy in a
// temp dir; the tree is untouched.
func TestSeedingRemoval(t *testing.T) {
	files, packageFile := loadSrcPackage(t)

	var gcFile string
	for _, f := range files {
		if filepath.Base(f) == "gc.go" {
			gcFile = f
		}
	}
	if gcFile == "" {
		t.Fatal("gc.go not in srccache/internal/src file list")
	}
	src, err := os.ReadFile(gcFile)
	if err != nil {
		t.Fatal(err)
	}
	const drainTail = "_, err := c.drainDirty(at)\n\treturn err"
	if !strings.Contains(string(src), drainTail) {
		t.Fatalf("gc.go no longer contains the expected drain tail %q; update this test", drainTail)
	}
	mutated := strings.Replace(string(src), drainTail, "return nil", 1)
	mutatedFile := filepath.Join(t.TempDir(), "gc.go")
	if err := os.WriteFile(mutatedFile, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	for i, f := range files {
		if f == gcFile {
			files[i] = mutatedFile
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, nil, packageFile)
	diags, err := checkPackage(allAnalyzers, fset, imp, "srccache/internal/src", "", files)
	if err != nil {
		t.Fatalf("checkPackage on mutated source: %v", err)
	}
	var flushDiags []analysis.Diagnostic
	for _, d := range diags {
		if d.Category == "flushepoch" {
			flushDiags = append(flushDiags, d)
		}
	}
	if len(flushDiags) != 1 {
		t.Fatalf("want exactly 1 flushepoch diagnostic after removing gc's drain, got %d (all: %v)",
			len(flushDiags), diags)
	}
	posn := fset.Position(flushDiags[0].Pos)
	if filepath.Base(posn.Filename) != "gc.go" {
		t.Errorf("diagnostic at %v, want in gc.go", posn)
	}
	if !strings.Contains(flushDiags[0].Message, "gc") {
		t.Errorf("message does not name the function: %s", flushDiags[0].Message)
	}
}
