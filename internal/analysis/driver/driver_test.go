package driver

import (
	"bytes"
	"encoding/json"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"srccache/internal/analysis"
	"srccache/internal/analysis/atomicfreeze"
	"srccache/internal/analysis/boundedretry"
	"srccache/internal/analysis/chandisc"
	"srccache/internal/analysis/confined"
	"srccache/internal/analysis/errpath"
	"srccache/internal/analysis/flushepoch"
	"srccache/internal/analysis/hotpath"
	"srccache/internal/analysis/ioerr"
	"srccache/internal/analysis/lockheld"
	"srccache/internal/analysis/maprange"
	"srccache/internal/analysis/seededrand"
	"srccache/internal/analysis/staleepoch"
	"srccache/internal/analysis/wallclock"
)

// allAnalyzers mirrors cmd/srclint's registration list: all thirteen
// checks.
var allAnalyzers = []*analysis.Analyzer{
	wallclock.Analyzer,
	seededrand.Analyzer,
	maprange.Analyzer,
	ioerr.Analyzer,
	errpath.Analyzer,
	lockheld.Analyzer,
	flushepoch.Analyzer,
	confined.Analyzer,
	atomicfreeze.Analyzer,
	chandisc.Analyzer,
	staleepoch.Analyzer,
	boundedretry.Analyzer,
	hotpath.Analyzer,
}

// TestJSONSchema pins the -json wire format: one object per line with
// exactly the fields {analyzer, file, line, message}, paths relative to the
// given root. Every registered analyzer name must survive the round trip —
// the CI lint job greps these names out of the NDJSON stream.
func TestJSONSchema(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("/repo/internal/src/gc.go", -1, 1000)
	f.SetLines([]int{0, 100, 200, 300})
	pos := f.LineStart(3)

	var diags []analysis.Diagnostic
	for _, a := range allAnalyzers {
		diags = append(diags, analysis.Diagnostic{
			Pos: pos, Category: a.Name, Message: "finding from " + a.Name,
		})
	}
	var buf bytes.Buffer
	if err := writeJSONDiags(&buf, fset, "/repo", diags); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(allAnalyzers) {
		t.Fatalf("want %d NDJSON lines, got %d: %q", len(allAnalyzers), len(lines), buf.String())
	}
	for i, line := range lines {
		var got map[string]any
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		var keys []string
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if want := []string{"analyzer", "file", "line", "message"}; strings.Join(keys, ",") != strings.Join(want, ",") {
			t.Errorf("line %d field set = %v, want %v", i, keys, want)
		}
		if got["analyzer"] != allAnalyzers[i].Name {
			t.Errorf("line %d analyzer = %v, want %s", i, got["analyzer"], allAnalyzers[i].Name)
		}
		if got["file"] != "internal/src/gc.go" {
			t.Errorf("line %d file = %v, want repo-relative internal/src/gc.go", i, got["file"])
		}
		if got["line"] != float64(3) {
			t.Errorf("line %d line = %v, want 3", i, got["line"])
		}
	}
}

// listPackageFiles lists one srccache package with export data and returns
// its non-test file list, the export-data table of the dependency closure,
// and the full listing (for dependency-facts resolution).
func listPackageFiles(t *testing.T, importPath string) (files []string, packageFile map[string]string, pkgs []*listPackage) {
	t.Helper()
	pkgs, err := goList([]string{importPath})
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	packageFile = make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if p.ImportPath == importPath {
			for _, f := range p.GoFiles {
				files = append(files, filepath.Join(p.Dir, f))
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("%s not found in go list output", importPath)
	}
	return files, packageFile, pkgs
}

// depFactsOver builds the standalone-mode dependency-facts resolver for a
// listing.
func depFactsOver(fset *token.FileSet, imp types.Importer, pkgs []*listPackage) func(string) *analysis.PackageFacts {
	byPath := make(map[string]*listPackage)
	for _, p := range pkgs {
		if byPath[p.ImportPath] == nil {
			byPath[p.ImportPath] = p
		}
	}
	fl := &factsLoader{fset: fset, imp: imp, byPath: byPath, cache: make(map[string]*analysis.PackageFacts)}
	return fl.facts
}

// checkClean runs all thirteen analyzers (including stale-suppression
// detection) over one package and reports every diagnostic as an error.
func checkClean(t *testing.T, importPath string) {
	t.Helper()
	files, packageFile, pkgs := listPackageFiles(t, importPath)
	fset := token.NewFileSet()
	imp := exportImporter(fset, nil, packageFile)
	diags, _, err := checkPackage(allAnalyzers, fset, imp, importPath, "", files, depFactsOver(fset, imp, pkgs), nil, nil)
	if err != nil {
		t.Fatalf("checkPackage: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %v: [%s] %s", fset.Position(d.Pos), d.Category, d.Message)
	}
}

// TestSrcSelfClean asserts the real internal/src package is clean under
// all ten analyzers — the tree-wide self-clean gate in miniature.
func TestSrcSelfClean(t *testing.T) { checkClean(t, "srccache/internal/src") }

// TestEngineSelfClean covers the package the concurrency analyzers were
// built for: the sharded engine's confined fields, handoff guards, sealed
// routing table, and completion channel must all verify.
func TestEngineSelfClean(t *testing.T) { checkClean(t, "srccache/internal/engine") }

// TestNetblockSelfClean covers the shutdown-channel ownership annotations.
func TestNetblockSelfClean(t *testing.T) { checkClean(t, "srccache/internal/netblock") }

// TestStatsSelfClean audits the package newly added to vet coverage; a
// stale //srclint:allow here would fail as a diagnostic.
func TestStatsSelfClean(t *testing.T) { checkClean(t, "srccache/internal/stats") }

// TestClusterSelfClean holds the replicated-fleet layer to the determinism
// contract it was added to SimPackages under: the ring, nodes, detector,
// and churn harness must be vtime-pure (no wall clock, no global rand).
func TestClusterSelfClean(t *testing.T) { checkClean(t, "srccache/internal/cluster") }

// TestSupervisorSelfClean holds the autonomous control plane to the
// routing-protocol and retry contracts it joined ClusterPackages under:
// its repair retry loops must consult their attempt budget on every back
// edge (boundedretry), and every call that can surface a stale-epoch
// error must reach a handler (staleepoch). The wallclock daemon is
// deliberately NOT in SimPackages — it owns real timers and latencies.
func TestSupervisorSelfClean(t *testing.T) {
	checkClean(t, "srccache/internal/cluster/supervisor")
}

// mutatePackage replaces old with new in the named file of a package copy
// (the original tree is untouched) and returns the all-analyzer
// diagnostics for the mutated package.
func mutatePackage(t *testing.T, importPath, base, oldSrc, newSrc string) ([]analysis.Diagnostic, *token.FileSet) {
	t.Helper()
	files, packageFile, pkgs := listPackageFiles(t, importPath)
	var target string
	for _, f := range files {
		if filepath.Base(f) == base {
			target = f
		}
	}
	if target == "" {
		t.Fatalf("%s not in %s file list", base, importPath)
	}
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), oldSrc) {
		t.Fatalf("%s no longer contains the expected seed site %q; update this test", base, oldSrc)
	}
	mutated := strings.Replace(string(src), oldSrc, newSrc, 1)
	mutatedFile := filepath.Join(t.TempDir(), base)
	if err := os.WriteFile(mutatedFile, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	for i, f := range files {
		if f == target {
			files[i] = mutatedFile
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, nil, packageFile)
	diags, _, err := checkPackage(allAnalyzers, fset, imp, importPath, "", files, depFactsOver(fset, imp, pkgs), nil, nil)
	if err != nil {
		t.Fatalf("checkPackage on mutated source: %v", err)
	}
	return diags, fset
}

// ofCategory filters diagnostics by analyzer name.
func ofCategory(diags []analysis.Diagnostic, category string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if d.Category == category {
			out = append(out, d)
		}
	}
	return out
}

// TestSeedingRemoval is the sanity check that flushepoch really guards the
// annotated contract sites: deleting the drain call from gc's return path
// must produce a flushepoch finding. The mutation happens on a copy in a
// temp dir; the tree is untouched.
func TestSeedingRemoval(t *testing.T) {
	diags, fset := mutatePackage(t, "srccache/internal/src", "gc.go",
		"_, err := c.drainDirty(at)\n\treturn err", "return nil")
	flushDiags := ofCategory(diags, "flushepoch")
	if len(flushDiags) != 1 {
		t.Fatalf("want exactly 1 flushepoch diagnostic after removing gc's drain, got %d (all: %v)",
			len(flushDiags), diags)
	}
	posn := fset.Position(flushDiags[0].Pos)
	if filepath.Base(posn.Filename) != "gc.go" {
		t.Errorf("diagnostic at %v, want in gc.go", posn)
	}
	if !strings.Contains(flushDiags[0].Message, "gc") {
		t.Errorf("message does not name the function: %s", flushDiags[0].Message)
	}
}

// TestConfinedSeedingRemoval deletes the handoff guard from
// Serial.Counters on a copy of internal/engine: the confined analyzer
// must report exactly that function, once.
func TestConfinedSeedingRemoval(t *testing.T) {
	diags, fset := mutatePackage(t, "srccache/internal/engine", "serial.go",
		"\tif s.e.started.Load() {\n\t\tpanic(\"engine: Serial.Counters after Start; use Engine.Counters\")\n\t}\n", "")
	confinedDiags := ofCategory(diags, "confined")
	if len(confinedDiags) != 1 {
		t.Fatalf("want exactly 1 confined diagnostic after removing the Counters guard, got %d (all: %v)",
			len(confinedDiags), diags)
	}
	posn := fset.Position(confinedDiags[0].Pos)
	if filepath.Base(posn.Filename) != "serial.go" {
		t.Errorf("diagnostic at %v, want in serial.go", posn)
	}
	if !strings.Contains(confinedDiags[0].Message, "Serial.Counters") {
		t.Errorf("message does not name Serial.Counters: %s", confinedDiags[0].Message)
	}
}

// TestAtomicFreezeSeedingRemoval replaces Close's copy-on-write seal of
// the routing table with an in-place write on a copy of internal/engine:
// the atomicfreeze analyzer must report exactly that write, once.
func TestAtomicFreezeSeedingRemoval(t *testing.T) {
	diags, fset := mutatePackage(t, "srccache/internal/engine", "engine.go",
		"e.tab.Store(&table{shards: old.shards, stripeBytes: old.stripeBytes, shardBytes: old.shardBytes, sealed: true})",
		"old.sealed = true")
	freezeDiags := ofCategory(diags, "atomicfreeze")
	if len(freezeDiags) != 1 {
		t.Fatalf("want exactly 1 atomicfreeze diagnostic after unsealing Close, got %d (all: %v)",
			len(freezeDiags), diags)
	}
	posn := fset.Position(freezeDiags[0].Pos)
	if filepath.Base(posn.Filename) != "engine.go" {
		t.Errorf("diagnostic at %v, want in engine.go", posn)
	}
	if !strings.Contains(freezeDiags[0].Message, "published via atomic Store") {
		t.Errorf("message does not explain the freeze contract: %s", freezeDiags[0].Message)
	}
}

// TestFleetSelfClean holds the TCP fleet — the package the staleepoch
// contract was built around — clean under all thirteen analyzers,
// including the handles-annotation rot verification.
func TestFleetSelfClean(t *testing.T) { checkClean(t, "srccache/internal/cluster/fleet") }

// TestStaleEpochSeedingRemoval rots the fleet's stale-epoch handler on a
// copy: tryOwners keeps its //srclint:handles annotation and its errors.Is
// guard but loses the refetch call, so the handles verification must
// report exactly that declaration, once. This is the acceptance check that
// the netblock contract is demonstrably enforced against a violating
// caller — rule 3 trusts the annotation only because this verification
// exists.
func TestStaleEpochSeedingRemoval(t *testing.T) {
	diags, fset := mutatePackage(t, "srccache/internal/cluster/fleet", "fleet.go",
		"if stale && f.refetchRing() {\n\t\t\tf.refetches.Add(1)\n\t\t\tcontinue\n\t\t}",
		"if stale {\n\t\t\tcontinue\n\t\t}")
	staleDiags := ofCategory(diags, "staleepoch")
	if len(staleDiags) != 1 {
		t.Fatalf("want exactly 1 staleepoch diagnostic after removing tryOwners' refetch, got %d (all: %v)",
			len(staleDiags), diags)
	}
	posn := fset.Position(staleDiags[0].Pos)
	if filepath.Base(posn.Filename) != "fleet.go" {
		t.Errorf("diagnostic at %v, want in fleet.go", posn)
	}
	if !strings.Contains(staleDiags[0].Message, "tryOwners") || !strings.Contains(staleDiags[0].Message, "rotted") {
		t.Errorf("message does not name the rotted handler: %s", staleDiags[0].Message)
	}
}

// TestBoundedRetrySeedingRemoval strips the documented sanction from
// netblock's accept loop on a copy: the loop's success back edge (Accept
// returned a connection) consults no budget by design and is allowed by
// annotation, so deleting the //srclint:allow must make boundedretry
// report exactly that loop, once. This also proves the allow is load-
// bearing rather than rotted.
func TestBoundedRetrySeedingRemoval(t *testing.T) {
	diags, fset := mutatePackage(t, "srccache/internal/netblock", "server.go",
		"\t//srclint:allow boundedretry accept loop lives as long as the server\n", "")
	retryDiags := ofCategory(diags, "boundedretry")
	if len(retryDiags) != 1 {
		t.Fatalf("want exactly 1 boundedretry diagnostic after removing the accept-loop allow, got %d (all: %v)",
			len(retryDiags), diags)
	}
	posn := fset.Position(retryDiags[0].Pos)
	if filepath.Base(posn.Filename) != "server.go" {
		t.Errorf("diagnostic at %v, want in server.go", posn)
	}
	if !strings.Contains(retryDiags[0].Message, "Accept") {
		t.Errorf("message does not name the accept call: %s", retryDiags[0].Message)
	}
}

// TestHotpathSeedingRemoval re-introduces the allocation the hot-path
// sweep originally caught on a copy of internal/src: the segment write
// column list built through a `[]int{}` composite literal inside the
// //srclint:hotpath write path. hotpath must report exactly that literal,
// once.
func TestHotpathSeedingRemoval(t *testing.T) {
	diags, fset := mutatePackage(t, "srccache/internal/src", "segment.go",
		"wc := make([]int, 0, len(cols)+1)\n\t\twc = append(wc, cols...)\n\t\twriteCols = append(wc, parity)",
		"writeCols = append(append([]int{}, cols...), parity)")
	hotDiags := ofCategory(diags, "hotpath")
	if len(hotDiags) != 1 {
		t.Fatalf("want exactly 1 hotpath diagnostic after re-introducing the slice literal, got %d (all: %v)",
			len(hotDiags), diags)
	}
	posn := fset.Position(hotDiags[0].Pos)
	if filepath.Base(posn.Filename) != "segment.go" {
		t.Errorf("diagnostic at %v, want in segment.go", posn)
	}
	if !strings.Contains(hotDiags[0].Message, "slice composite literal") {
		t.Errorf("message does not name the allocation: %s", hotDiags[0].Message)
	}
}

// TestFactsDeterminism pins the modular-facts serialization: analyzing the
// same package with its files in reversed order and its dependency
// listing shuffled must produce byte-identical encoded facts. The CI facts
// cache and the vetx files both depend on this.
func TestFactsDeterminism(t *testing.T) {
	const importPath = "srccache/internal/cluster/fleet"
	files, packageFile, pkgs := listPackageFiles(t, importPath)

	encode := func(files []string, pkgs []*listPackage) []byte {
		t.Helper()
		fset := token.NewFileSet()
		imp := exportImporter(fset, nil, packageFile)
		_, facts, err := checkPackage(allAnalyzers, fset, imp, importPath, "", files, depFactsOver(fset, imp, pkgs), nil, nil)
		if err != nil {
			t.Fatalf("checkPackage: %v", err)
		}
		data, err := facts.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		return data
	}

	base := encode(files, pkgs)
	if len(base) == 0 || base[len(base)-1] != '\n' {
		t.Fatalf("encoded facts must be non-empty and newline-terminated, got %d bytes", len(base))
	}

	revFiles := make([]string, len(files))
	for i, f := range files {
		revFiles[len(files)-1-i] = f
	}
	revPkgs := make([]*listPackage, len(pkgs))
	for i, p := range pkgs {
		revPkgs[len(pkgs)-1-i] = p
	}
	if got := encode(revFiles, revPkgs); !bytes.Equal(base, got) {
		t.Errorf("facts differ under reversed file and package order:\nbase: %s\ngot:  %s", base, got)
	}

	if decoded, err := analysis.DecodeFacts(base); err != nil || decoded == nil {
		t.Fatalf("DecodeFacts round trip failed: %v", err)
	} else if redo, err := decoded.Encode(); err != nil || !bytes.Equal(base, redo) {
		t.Errorf("Encode(Decode(x)) != x: %v", err)
	}
}

// TestSelectAnalyzers pins the -checks/-exclude semantics: keep-list,
// drop-list, order preservation, and the unknown-name error naming the
// valid checks.
func TestSelectAnalyzers(t *testing.T) {
	sel, err := SelectAnalyzers(allAnalyzers, "", "")
	if err != nil || len(sel) != len(allAnalyzers) {
		t.Fatalf("no flags: got %d analyzers, err %v; want all %d", len(sel), err, len(allAnalyzers))
	}

	sel, err = SelectAnalyzers(allAnalyzers, "hotpath,wallclock", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Name != "wallclock" || sel[1].Name != "hotpath" {
		t.Errorf("-checks=hotpath,wallclock must keep registration order: got %v", names(sel))
	}

	sel, err = SelectAnalyzers(allAnalyzers, "", "hotpath, boundedretry")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != len(allAnalyzers)-2 {
		t.Errorf("-exclude dropped %d, want 2", len(allAnalyzers)-len(sel))
	}
	for _, a := range sel {
		if a.Name == "hotpath" || a.Name == "boundedretry" {
			t.Errorf("excluded analyzer %s survived", a.Name)
		}
	}

	sel, err = SelectAnalyzers(allAnalyzers, "staleepoch", "staleepoch")
	if err != nil || len(sel) != 0 {
		t.Errorf("keep-then-drop of the same name: got %v, err %v; want empty", names(sel), err)
	}

	// Empty list elements (trailing or doubled commas) are tolerated.
	if sel, err := SelectAnalyzers(allAnalyzers, "hotpath,,wallclock,", ""); err != nil || len(sel) != 2 {
		t.Errorf("empty elements must be skipped: got %v, err %v", names(sel), err)
	}

	for _, tc := range []struct{ checks, exclude string }{
		{"hotpaths", ""}, {"", "nosuch"},
	} {
		if _, err := SelectAnalyzers(allAnalyzers, tc.checks, tc.exclude); err == nil {
			t.Errorf("checks=%q exclude=%q: want unknown-name error", tc.checks, tc.exclude)
		} else if !strings.Contains(err.Error(), "valid checks") || !strings.Contains(err.Error(), "wallclock") {
			t.Errorf("error must list the valid checks: %v", err)
		}
	}
}

// TestSelectionFiltersDiagnostics asserts a -checks subset actually
// changes what checkPackage reports: the hotpath seeding mutation fires
// under -checks=hotpath and is silent under -checks=wallclock, and the
// NDJSON stream only ever carries selected analyzer names.
func TestSelectionFiltersDiagnostics(t *testing.T) {
	mutate := func(selected []*analysis.Analyzer) []analysis.Diagnostic {
		t.Helper()
		const importPath = "srccache/internal/src"
		files, packageFile, pkgs := listPackageFiles(t, importPath)
		var target string
		for _, f := range files {
			if filepath.Base(f) == "segment.go" {
				target = f
			}
		}
		src, err := os.ReadFile(target)
		if err != nil {
			t.Fatal(err)
		}
		mutated := strings.Replace(string(src),
			"wc := make([]int, 0, len(cols)+1)\n\t\twc = append(wc, cols...)\n\t\twriteCols = append(wc, parity)",
			"writeCols = append(append([]int{}, cols...), parity)", 1)
		if mutated == string(src) {
			t.Fatal("seed site missing from segment.go; update this test")
		}
		mutatedFile := filepath.Join(t.TempDir(), "segment.go")
		if err := os.WriteFile(mutatedFile, []byte(mutated), 0o644); err != nil {
			t.Fatal(err)
		}
		for i, f := range files {
			if f == target {
				files[i] = mutatedFile
			}
		}
		fset := token.NewFileSet()
		imp := exportImporter(fset, nil, packageFile)
		staleSkip := staleSkipFor(allAnalyzers, selected)
		diags, _, err := checkPackage(selected, fset, imp, importPath, "", files, depFactsOver(fset, imp, pkgs), staleSkip, nil)
		if err != nil {
			t.Fatal(err)
		}
		return diags
	}

	on, err := SelectAnalyzers(allAnalyzers, "hotpath", "")
	if err != nil {
		t.Fatal(err)
	}
	diags := mutate(on)
	if len(ofCategory(diags, "hotpath")) != 1 {
		t.Errorf("-checks=hotpath must still catch the seeded allocation: %v", diags)
	}

	var buf bytes.Buffer
	fset := token.NewFileSet()
	f := fset.AddFile("x.go", -1, 100)
	f.SetLines([]int{0})
	for i := range diags {
		diags[i].Pos = f.LineStart(1)
	}
	if err := writeJSONDiags(&buf, fset, ".", diags); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var got map[string]any
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatal(err)
		}
		if got["analyzer"] != "hotpath" {
			t.Errorf("NDJSON carries unselected analyzer %v", got["analyzer"])
		}
	}

	off, err := SelectAnalyzers(allAnalyzers, "wallclock", "")
	if err != nil {
		t.Fatal(err)
	}
	if diags := mutate(off); len(diags) != 0 {
		t.Errorf("-checks=wallclock must not report the hotpath seed (or stale allows): %v", diags)
	}
}

func names(as []*analysis.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}
