package driver

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"srccache/internal/analysis"
	"srccache/internal/analysis/atomicfreeze"
	"srccache/internal/analysis/chandisc"
	"srccache/internal/analysis/confined"
	"srccache/internal/analysis/errpath"
	"srccache/internal/analysis/flushepoch"
	"srccache/internal/analysis/ioerr"
	"srccache/internal/analysis/lockheld"
	"srccache/internal/analysis/maprange"
	"srccache/internal/analysis/seededrand"
	"srccache/internal/analysis/wallclock"
)

// allAnalyzers mirrors cmd/srclint's registration list: all ten checks.
var allAnalyzers = []*analysis.Analyzer{
	wallclock.Analyzer,
	seededrand.Analyzer,
	maprange.Analyzer,
	ioerr.Analyzer,
	errpath.Analyzer,
	lockheld.Analyzer,
	flushepoch.Analyzer,
	confined.Analyzer,
	atomicfreeze.Analyzer,
	chandisc.Analyzer,
}

// TestJSONSchema pins the -json wire format: one object per line with
// exactly the fields {analyzer, file, line, message}, paths relative to the
// given root. Every registered analyzer name must survive the round trip —
// the CI lint job greps these names out of the NDJSON stream.
func TestJSONSchema(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("/repo/internal/src/gc.go", -1, 1000)
	f.SetLines([]int{0, 100, 200, 300})
	pos := f.LineStart(3)

	var diags []analysis.Diagnostic
	for _, a := range allAnalyzers {
		diags = append(diags, analysis.Diagnostic{
			Pos: pos, Category: a.Name, Message: "finding from " + a.Name,
		})
	}
	var buf bytes.Buffer
	if err := writeJSONDiags(&buf, fset, "/repo", diags); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(allAnalyzers) {
		t.Fatalf("want %d NDJSON lines, got %d: %q", len(allAnalyzers), len(lines), buf.String())
	}
	for i, line := range lines {
		var got map[string]any
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d is not valid JSON: %v", i, err)
		}
		var keys []string
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		if want := []string{"analyzer", "file", "line", "message"}; strings.Join(keys, ",") != strings.Join(want, ",") {
			t.Errorf("line %d field set = %v, want %v", i, keys, want)
		}
		if got["analyzer"] != allAnalyzers[i].Name {
			t.Errorf("line %d analyzer = %v, want %s", i, got["analyzer"], allAnalyzers[i].Name)
		}
		if got["file"] != "internal/src/gc.go" {
			t.Errorf("line %d file = %v, want repo-relative internal/src/gc.go", i, got["file"])
		}
		if got["line"] != float64(3) {
			t.Errorf("line %d line = %v, want 3", i, got["line"])
		}
	}
}

// loadPackage lists one srccache package with export data and returns its
// non-test file list plus an importer over the dependency closure.
func loadPackage(t *testing.T, importPath string) (files []string, packageFile map[string]string) {
	t.Helper()
	pkgs, err := goList([]string{importPath})
	if err != nil {
		t.Fatalf("go list: %v", err)
	}
	packageFile = make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if p.ImportPath == importPath {
			for _, f := range p.GoFiles {
				files = append(files, filepath.Join(p.Dir, f))
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("%s not found in go list output", importPath)
	}
	return files, packageFile
}

// checkClean runs all ten analyzers (including stale-suppression
// detection) over one package and reports every diagnostic as an error.
func checkClean(t *testing.T, importPath string) {
	t.Helper()
	files, packageFile := loadPackage(t, importPath)
	fset := token.NewFileSet()
	imp := exportImporter(fset, nil, packageFile)
	diags, err := checkPackage(allAnalyzers, fset, imp, importPath, "", files)
	if err != nil {
		t.Fatalf("checkPackage: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %v: [%s] %s", fset.Position(d.Pos), d.Category, d.Message)
	}
}

// TestSrcSelfClean asserts the real internal/src package is clean under
// all ten analyzers — the tree-wide self-clean gate in miniature.
func TestSrcSelfClean(t *testing.T) { checkClean(t, "srccache/internal/src") }

// TestEngineSelfClean covers the package the concurrency analyzers were
// built for: the sharded engine's confined fields, handoff guards, sealed
// routing table, and completion channel must all verify.
func TestEngineSelfClean(t *testing.T) { checkClean(t, "srccache/internal/engine") }

// TestNetblockSelfClean covers the shutdown-channel ownership annotations.
func TestNetblockSelfClean(t *testing.T) { checkClean(t, "srccache/internal/netblock") }

// TestStatsSelfClean audits the package newly added to vet coverage; a
// stale //srclint:allow here would fail as a diagnostic.
func TestStatsSelfClean(t *testing.T) { checkClean(t, "srccache/internal/stats") }

// TestClusterSelfClean holds the replicated-fleet layer to the determinism
// contract it was added to SimPackages under: the ring, nodes, detector,
// and churn harness must be vtime-pure (no wall clock, no global rand).
func TestClusterSelfClean(t *testing.T) { checkClean(t, "srccache/internal/cluster") }

// mutatePackage replaces old with new in the named file of a package copy
// (the original tree is untouched) and returns the all-analyzer
// diagnostics for the mutated package.
func mutatePackage(t *testing.T, importPath, base, oldSrc, newSrc string) ([]analysis.Diagnostic, *token.FileSet) {
	t.Helper()
	files, packageFile := loadPackage(t, importPath)
	var target string
	for _, f := range files {
		if filepath.Base(f) == base {
			target = f
		}
	}
	if target == "" {
		t.Fatalf("%s not in %s file list", base, importPath)
	}
	src, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), oldSrc) {
		t.Fatalf("%s no longer contains the expected seed site %q; update this test", base, oldSrc)
	}
	mutated := strings.Replace(string(src), oldSrc, newSrc, 1)
	mutatedFile := filepath.Join(t.TempDir(), base)
	if err := os.WriteFile(mutatedFile, []byte(mutated), 0o644); err != nil {
		t.Fatal(err)
	}
	for i, f := range files {
		if f == target {
			files[i] = mutatedFile
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, nil, packageFile)
	diags, err := checkPackage(allAnalyzers, fset, imp, importPath, "", files)
	if err != nil {
		t.Fatalf("checkPackage on mutated source: %v", err)
	}
	return diags, fset
}

// ofCategory filters diagnostics by analyzer name.
func ofCategory(diags []analysis.Diagnostic, category string) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range diags {
		if d.Category == category {
			out = append(out, d)
		}
	}
	return out
}

// TestSeedingRemoval is the sanity check that flushepoch really guards the
// annotated contract sites: deleting the drain call from gc's return path
// must produce a flushepoch finding. The mutation happens on a copy in a
// temp dir; the tree is untouched.
func TestSeedingRemoval(t *testing.T) {
	diags, fset := mutatePackage(t, "srccache/internal/src", "gc.go",
		"_, err := c.drainDirty(at)\n\treturn err", "return nil")
	flushDiags := ofCategory(diags, "flushepoch")
	if len(flushDiags) != 1 {
		t.Fatalf("want exactly 1 flushepoch diagnostic after removing gc's drain, got %d (all: %v)",
			len(flushDiags), diags)
	}
	posn := fset.Position(flushDiags[0].Pos)
	if filepath.Base(posn.Filename) != "gc.go" {
		t.Errorf("diagnostic at %v, want in gc.go", posn)
	}
	if !strings.Contains(flushDiags[0].Message, "gc") {
		t.Errorf("message does not name the function: %s", flushDiags[0].Message)
	}
}

// TestConfinedSeedingRemoval deletes the handoff guard from
// Serial.Counters on a copy of internal/engine: the confined analyzer
// must report exactly that function, once.
func TestConfinedSeedingRemoval(t *testing.T) {
	diags, fset := mutatePackage(t, "srccache/internal/engine", "serial.go",
		"\tif s.e.started.Load() {\n\t\tpanic(\"engine: Serial.Counters after Start; use Engine.Counters\")\n\t}\n", "")
	confinedDiags := ofCategory(diags, "confined")
	if len(confinedDiags) != 1 {
		t.Fatalf("want exactly 1 confined diagnostic after removing the Counters guard, got %d (all: %v)",
			len(confinedDiags), diags)
	}
	posn := fset.Position(confinedDiags[0].Pos)
	if filepath.Base(posn.Filename) != "serial.go" {
		t.Errorf("diagnostic at %v, want in serial.go", posn)
	}
	if !strings.Contains(confinedDiags[0].Message, "Serial.Counters") {
		t.Errorf("message does not name Serial.Counters: %s", confinedDiags[0].Message)
	}
}

// TestAtomicFreezeSeedingRemoval replaces Close's copy-on-write seal of
// the routing table with an in-place write on a copy of internal/engine:
// the atomicfreeze analyzer must report exactly that write, once.
func TestAtomicFreezeSeedingRemoval(t *testing.T) {
	diags, fset := mutatePackage(t, "srccache/internal/engine", "engine.go",
		"e.tab.Store(&table{shards: old.shards, stripeBytes: old.stripeBytes, shardBytes: old.shardBytes, sealed: true})",
		"old.sealed = true")
	freezeDiags := ofCategory(diags, "atomicfreeze")
	if len(freezeDiags) != 1 {
		t.Fatalf("want exactly 1 atomicfreeze diagnostic after unsealing Close, got %d (all: %v)",
			len(freezeDiags), diags)
	}
	posn := fset.Position(freezeDiags[0].Pos)
	if filepath.Base(posn.Filename) != "engine.go" {
		t.Errorf("diagnostic at %v, want in engine.go", posn)
	}
	if !strings.Contains(freezeDiags[0].Message, "published via atomic Store") {
		t.Errorf("message does not explain the freeze contract: %s", freezeDiags[0].Message)
	}
}
