// Package driver runs srclint's analyzers over type-checked packages.
//
// Two modes share the same analysis core:
//
//   - Standalone: `srclint ./...` shells out to `go list -export -deps
//     -json`, type-checks each listed target from source against the
//     compiler's export data, and prints findings. No network and no
//     third-party modules are involved.
//
//   - Vet tool: when invoked by `go vet -vettool=srclint`, the go command
//     drives the unitchecker protocol — a -V=full version query, a -flags
//     query, then one invocation per package with a JSON *.cfg file
//     describing sources and export data. This is the mode CI gates on.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"srccache/internal/analysis"
	"srccache/internal/analysis/modfacts"
)

// modulePrefix identifies in-module packages: only these get facts
// computed from source (the standard library gets none, and DecodeFacts
// treats its empty placeholders as "no facts").
const modulePrefix = "srccache"

func inModule(path string) bool {
	return path == modulePrefix || strings.HasPrefix(path, modulePrefix+"/")
}

// Main implements the srclint command line and returns the process exit
// code: 0 clean, 1 operational failure, 2 findings.
func Main(analyzers []*analysis.Analyzer) int {
	args := os.Args[1:]
	jsonMode := false
	timings := false
	var checks, exclude string
	kept := args[:0:0]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion(true)
			return 0
		case a == "-V" || a == "--V":
			printVersion(false)
			return 0
		case a == "-flags" || a == "--flags":
			// The go command queries the tool's flag set; srclint has no
			// tool-level flags beyond the protocol ones handled here.
			fmt.Println("[]")
			return 0
		case a == "-h" || a == "--help" || a == "-help":
			usage(analyzers)
			return 0
		case a == "-json" || a == "--json":
			// Machine-readable findings: one JSON object per line on
			// stdout (CI turns them into GitHub annotations). Standalone
			// mode only; the vet protocol owns the output format there.
			jsonMode = true
		case a == "-timings" || a == "--timings":
			// Per-analyzer wall time across the whole run, printed to
			// stderr at the end (CI appends it to the job summary).
			timings = true
		case strings.HasPrefix(a, "-checks=") || strings.HasPrefix(a, "--checks="):
			checks = a[strings.Index(a, "=")+1:]
		case strings.HasPrefix(a, "-exclude=") || strings.HasPrefix(a, "--exclude="):
			exclude = a[strings.Index(a, "=")+1:]
		default:
			kept = append(kept, a)
		}
	}
	args = kept
	selected, err := SelectAnalyzers(analyzers, checks, exclude)
	if err != nil {
		fmt.Fprintf(os.Stderr, "srclint: %v\n", err)
		return 1
	}
	staleSkip := staleSkipFor(analyzers, selected)
	if !jsonMode && len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetMode(selected, staleSkip, args[0])
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	return standalone(selected, staleSkip, args, jsonMode, timings)
}

// staleSkipFor builds the stale-suppression exemption for a -checks/
// -exclude subset: //srclint:allow entries naming a registered but
// unselected check are not reported stale (the run never let their check
// fire). A full selection returns nil so unknown-name entries still rot
// loudly.
func staleSkipFor(all, selected []*analysis.Analyzer) func(string) bool {
	if len(selected) == len(all) {
		return nil
	}
	on := make(map[string]bool, len(selected))
	for _, a := range selected {
		on[a.Name] = true
	}
	known := make(map[string]bool, len(all))
	for _, a := range all {
		known[a.Name] = true
	}
	return func(name string) bool { return known[name] && !on[name] }
}

// SelectAnalyzers applies the -checks/-exclude flags: checks (when
// non-empty) keeps only the named analyzers, exclude then drops names;
// both are comma-separated and an unknown name is an error listing the
// valid ones. Registration order is preserved.
func SelectAnalyzers(all []*analysis.Analyzer, checks, exclude string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer, len(all))
	names := make([]string, 0, len(all))
	for _, a := range all {
		byName[a.Name] = a
		names = append(names, a.Name)
	}
	parse := func(list, flag string) (map[string]bool, error) {
		if list == "" {
			return nil, nil
		}
		set := make(map[string]bool)
		for _, n := range strings.Split(list, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("-%s: unknown check %q (valid checks: %s)", flag, n, strings.Join(names, ", "))
			}
			set[n] = true
		}
		return set, nil
	}
	want, err := parse(checks, "checks")
	if err != nil {
		return nil, err
	}
	drop, err := parse(exclude, "exclude")
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range all {
		if want != nil && !want[a.Name] {
			continue
		}
		if drop[a.Name] {
			continue
		}
		out = append(out, a)
	}
	return out, nil
}

func usage(analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "srclint: determinism and I/O-error lints for this repository\n\n")
	fmt.Fprintf(os.Stderr, "usage: srclint [packages]           (standalone, defaults to ./...)\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which srclint) ./...\n\nchecks:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding with `//srclint:allow <check> [reason]` on or above the line\n")
}

// printVersion emits the version line the go command uses as the tool's
// build ID; the full form hashes the binary so rebuilt tools invalidate
// vet's result cache.
func printVersion(full bool) {
	name := filepath.Base(os.Args[0])
	if !full {
		fmt.Printf("%s version devel\n", name)
		return
	}
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}

// loadPackage parses and type-checks one package from source against its
// dependencies' export data.
func loadPackage(fset *token.FileSet, imp types.Importer, pkgPath, goVersion string, filenames []string) ([]*ast.File, *types.Package, *types.Info, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, nil, err
	}
	return files, pkg, info, nil
}

// packageFactsFor computes an in-module package's facts from source (the
// dependency-only path: no analyzers run, just the modular summary).
func packageFactsFor(fset *token.FileSet, imp types.Importer, pkgPath, goVersion string, filenames []string, depFacts func(string) *analysis.PackageFacts) (*analysis.PackageFacts, error) {
	files, pkg, info, err := loadPackage(fset, imp, pkgPath, goVersion, filenames)
	if err != nil {
		return nil, err
	}
	dirs := analysis.ParseDirectives(fset, files)
	return modfacts.Compute(fset, files, info, pkg, dirs, depFacts), nil
}

// checkPackage parses and type-checks one package, computes its facts, and
// applies every analyzer, returning the diagnostics and the facts (for the
// caller to persist or cache). depFacts resolves dependency facts and may
// be nil; staleSkip exempts allow-directives for unselected checks from
// stale reporting (nil on full runs); timings, when non-nil, accumulates
// per-analyzer wall time.
func checkPackage(analyzers []*analysis.Analyzer, fset *token.FileSet, imp types.Importer, pkgPath, goVersion string, filenames []string, depFacts func(string) *analysis.PackageFacts, staleSkip func(string) bool, timings map[string]time.Duration) ([]analysis.Diagnostic, *analysis.PackageFacts, error) {
	files, pkg, info, err := loadPackage(fset, imp, pkgPath, goVersion, filenames)
	if err != nil {
		return nil, nil, err
	}
	var diags []analysis.Diagnostic
	// One Directives set is shared by the facts computation and every
	// analyzer so that, after they all ran, suppressions which fired for
	// none of them can be reported as stale instead of silently rotting.
	dirs := analysis.ParseDirectives(fset, files)
	start := time.Now()
	own := modfacts.Compute(fset, files, info, pkg, dirs, depFacts)
	if timings != nil {
		timings["(facts)"] += time.Since(start)
	}
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			Dirs:      dirs,
			OwnFacts:  own,
			DepFacts:  depFacts,
		}
		start := time.Now()
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		if timings != nil {
			timings[a.Name] += time.Since(start)
		}
	}
	diags = append(diags, dirs.Stale(staleSkip)...)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, own, nil
}

// printTimings writes the accumulated per-analyzer wall time to stderr,
// longest first, in a fixed "srclint-timing" format CI greps into the job
// summary.
func printTimings(timings map[string]time.Duration) {
	names := make([]string, 0, len(timings))
	for n := range timings {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		if timings[names[i]] != timings[names[j]] {
			return timings[names[i]] > timings[names[j]]
		}
		return names[i] < names[j]
	})
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "srclint-timing %-14s %v\n", n, timings[n].Round(time.Millisecond))
	}
}

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%v: %s\n", fset.Position(d.Pos), d.Message)
	}
}

// jsonDiag is the -json wire format: exactly one object per finding, one
// finding per line (NDJSON). CI feeds these to jq to emit GitHub
// annotations; the field set is part of srclint's interface.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

// writeJSONDiags emits diags as NDJSON. File paths are made relative to dir
// (the repo root in practice) when they lie under it, so annotations attach
// to checkout-relative paths.
func writeJSONDiags(w io.Writer, fset *token.FileSet, dir string, diags []analysis.Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		file := posn.Filename
		if dir != "" {
			if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		if err := enc.Encode(jsonDiag{
			Analyzer: d.Category,
			File:     file,
			Line:     posn.Line,
			Message:  d.Message,
		}); err != nil {
			return err
		}
	}
	return nil
}

// exportImporter builds a types.Importer that reads gc export data through
// lookup tables produced either by `go list -export` or a vet.cfg.
// importMap translates source-level import paths to canonical package
// paths (identity when nil); packageFile locates each canonical path's
// export data.
func exportImporter(fset *token.FileSet, importMap map[string]string, packageFile map[string]string) types.Importer {
	compiler := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compiler.(types.ImporterFrom).ImportFrom(path, "", 0)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ---- vet tool mode -------------------------------------------------------

// vetConfig mirrors the subset of the go command's vet config JSON that
// srclint needs (see cmd/go/internal/work's buildVetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetxFacts resolves dependency facts from the .vetx files the go command
// hands over in the vet config, memoized per path. Missing files, empty
// placeholders (standard library), and version mismatches all read as "no
// facts".
func vetxFacts(vetx map[string]string) func(string) *analysis.PackageFacts {
	cache := make(map[string]*analysis.PackageFacts)
	return func(path string) *analysis.PackageFacts {
		if f, ok := cache[path]; ok {
			return f
		}
		var f *analysis.PackageFacts
		if file, ok := vetx[path]; ok {
			if data, err := os.ReadFile(file); err == nil {
				f, _ = analysis.DecodeFacts(data)
			}
		}
		cache[path] = f
		return f
	}
}

// writeVetx persists facts (or, with nil facts, the empty placeholder the
// go command requires) to the configured output.
func writeVetx(cfg *vetConfig, facts *analysis.PackageFacts) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	var data []byte
	if facts != nil {
		var err error
		if data, err = facts.Encode(); err != nil {
			return err
		}
	}
	return os.WriteFile(cfg.VetxOutput, data, 0o666)
}

func vetMode(analyzers []*analysis.Analyzer, staleSkip func(string) bool, cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "srclint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "srclint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	goVersion := cfg.GoVersion
	if goVersion != "" && !strings.HasPrefix(goVersion, "go") {
		goVersion = "go" + goVersion
	}
	depFacts := vetxFacts(cfg.PackageVetx)
	if cfg.VetxOnly {
		// Dependency-only visit: compute and persist this package's facts
		// so dependents see its contracts; the standard library (and any
		// package that fails to type-check) gets the empty placeholder —
		// dependents fall back to no facts, never wrong facts.
		var facts *analysis.PackageFacts
		if inModule(analysis.NormalizePkgPath(cfg.ImportPath)) {
			facts, _ = packageFactsFor(fset, imp, cfg.ImportPath, goVersion, cfg.GoFiles, depFacts)
		}
		if err := writeVetx(&cfg, facts); err != nil {
			fmt.Fprintf(os.Stderr, "srclint: %v\n", err)
			return 1
		}
		return 0
	}
	diags, facts, err := checkPackage(analyzers, fset, imp, cfg.ImportPath, goVersion, cfg.GoFiles, depFacts, staleSkip, nil)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			if werr := writeVetx(&cfg, nil); werr != nil {
				fmt.Fprintf(os.Stderr, "srclint: %v\n", werr)
				return 1
			}
			return 0
		}
		fmt.Fprintf(os.Stderr, "srclint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if err := writeVetx(&cfg, facts); err != nil {
		fmt.Fprintf(os.Stderr, "srclint: %v\n", err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	printDiags(fset, diags)
	return 2
}

// ---- standalone mode -----------------------------------------------------

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Incomplete bool
	Error      *struct{ Err string }
}

func standalone(analyzers []*analysis.Analyzer, staleSkip func(string) bool, patterns []string, jsonMode, timings bool) int {
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "srclint: %v\n", err)
		return 1
	}
	cwd, _ := os.Getwd()
	packageFile := make(map[string]string)
	byPath := make(map[string]*listPackage)
	for _, p := range pkgs {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
		if byPath[p.ImportPath] == nil {
			byPath[p.ImportPath] = p
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, nil, packageFile)
	fl := &factsLoader{fset: fset, imp: imp, byPath: byPath, cache: make(map[string]*analysis.PackageFacts)}

	var timing map[string]time.Duration
	if timings {
		timing = make(map[string]time.Duration)
	}
	exit := 0
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "srclint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 1
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		diags, facts, err := checkPackage(analyzers, fset, imp, p.ImportPath, "", files, fl.facts, staleSkip, timing)
		if err != nil {
			fmt.Fprintf(os.Stderr, "srclint: %s: %v\n", p.ImportPath, err)
			return 1
		}
		fl.cache[p.ImportPath] = facts
		if len(diags) > 0 {
			if jsonMode {
				if err := writeJSONDiags(os.Stdout, fset, cwd, diags); err != nil {
					fmt.Fprintf(os.Stderr, "srclint: %v\n", err)
					return 1
				}
			} else {
				printDiags(fset, diags)
			}
			exit = 2
		}
	}
	if timing != nil {
		printTimings(timing)
	}
	return exit
}

// factsLoader computes dependency facts from source on demand and memoizes
// them over a `go list -deps` result set. Dependencies list before
// dependents, and standalone seeds the cache with each checked package's
// facts, so a tree-wide run computes every package's facts exactly once.
type factsLoader struct {
	fset   *token.FileSet
	imp    types.Importer
	byPath map[string]*listPackage
	cache  map[string]*analysis.PackageFacts
}

func (l *factsLoader) facts(path string) *analysis.PackageFacts {
	if f, ok := l.cache[path]; ok {
		return f
	}
	l.cache[path] = nil // cycle guard; overwritten on success
	p := l.byPath[path]
	if p == nil || p.Standard || len(p.GoFiles) == 0 || !inModule(path) {
		return nil
	}
	var files []string
	for _, f := range p.GoFiles {
		files = append(files, filepath.Join(p.Dir, f))
	}
	f, err := packageFactsFor(l.fset, l.imp, p.ImportPath, "", files, l.facts)
	if err != nil {
		return nil
	}
	l.cache[path] = f
	return f
}

func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(out)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v", strings.Join(patterns, " "), err)
	}
	return pkgs, nil
}
