// Package driver runs srclint's analyzers over type-checked packages.
//
// Two modes share the same analysis core:
//
//   - Standalone: `srclint ./...` shells out to `go list -export -deps
//     -json`, type-checks each listed target from source against the
//     compiler's export data, and prints findings. No network and no
//     third-party modules are involved.
//
//   - Vet tool: when invoked by `go vet -vettool=srclint`, the go command
//     drives the unitchecker protocol — a -V=full version query, a -flags
//     query, then one invocation per package with a JSON *.cfg file
//     describing sources and export data. This is the mode CI gates on.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"srccache/internal/analysis"
)

// Main implements the srclint command line and returns the process exit
// code: 0 clean, 1 operational failure, 2 findings.
func Main(analyzers []*analysis.Analyzer) int {
	args := os.Args[1:]
	jsonMode := false
	kept := args[:0:0]
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion(true)
			return 0
		case a == "-V" || a == "--V":
			printVersion(false)
			return 0
		case a == "-flags" || a == "--flags":
			// The go command queries the tool's flag set; srclint has no
			// tool-level flags beyond the protocol ones handled here.
			fmt.Println("[]")
			return 0
		case a == "-h" || a == "--help" || a == "-help":
			usage(analyzers)
			return 0
		case a == "-json" || a == "--json":
			// Machine-readable findings: one JSON object per line on
			// stdout (CI turns them into GitHub annotations). Standalone
			// mode only; the vet protocol owns the output format there.
			jsonMode = true
		default:
			kept = append(kept, a)
		}
	}
	args = kept
	if !jsonMode && len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		return vetMode(analyzers, args[0])
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	return standalone(analyzers, args, jsonMode)
}

func usage(analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "srclint: determinism and I/O-error lints for this repository\n\n")
	fmt.Fprintf(os.Stderr, "usage: srclint [packages]           (standalone, defaults to ./...)\n")
	fmt.Fprintf(os.Stderr, "       go vet -vettool=$(which srclint) ./...\n\nchecks:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding with `//srclint:allow <check> [reason]` on or above the line\n")
}

// printVersion emits the version line the go command uses as the tool's
// build ID; the full form hashes the binary so rebuilt tools invalidate
// vet's result cache.
func printVersion(full bool) {
	name := filepath.Base(os.Args[0])
	if !full {
		fmt.Printf("%s version devel\n", name)
		return
	}
	h := sha256.New()
	if f, err := os.Open(os.Args[0]); err == nil {
		io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}

// checkPackage parses and type-checks one package and applies every
// analyzer, returning the diagnostics.
func checkPackage(analyzers []*analysis.Analyzer, fset *token.FileSet, imp types.Importer, pkgPath, goVersion string, filenames []string) ([]analysis.Diagnostic, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	var diags []analysis.Diagnostic
	// One Directives set is shared by every analyzer so that, after they
	// all ran, suppressions which fired for none of them can be reported as
	// stale instead of silently rotting.
	dirs := analysis.ParseDirectives(fset, files)
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			Dirs:      dirs,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
	}
	diags = append(diags, dirs.Stale()...)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%v: %s\n", fset.Position(d.Pos), d.Message)
	}
}

// jsonDiag is the -json wire format: exactly one object per finding, one
// finding per line (NDJSON). CI feeds these to jq to emit GitHub
// annotations; the field set is part of srclint's interface.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Message  string `json:"message"`
}

// writeJSONDiags emits diags as NDJSON. File paths are made relative to dir
// (the repo root in practice) when they lie under it, so annotations attach
// to checkout-relative paths.
func writeJSONDiags(w io.Writer, fset *token.FileSet, dir string, diags []analysis.Diagnostic) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		posn := fset.Position(d.Pos)
		file := posn.Filename
		if dir != "" {
			if rel, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
		}
		if err := enc.Encode(jsonDiag{
			Analyzer: d.Category,
			File:     file,
			Line:     posn.Line,
			Message:  d.Message,
		}); err != nil {
			return err
		}
	}
	return nil
}

// exportImporter builds a types.Importer that reads gc export data through
// lookup tables produced either by `go list -export` or a vet.cfg.
// importMap translates source-level import paths to canonical package
// paths (identity when nil); packageFile locates each canonical path's
// export data.
func exportImporter(fset *token.FileSet, importMap map[string]string, packageFile map[string]string) types.Importer {
	compiler := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(path string) (*types.Package, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compiler.(types.ImporterFrom).ImportFrom(path, "", 0)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// ---- vet tool mode -------------------------------------------------------

// vetConfig mirrors the subset of the go command's vet config JSON that
// srclint needs (see cmd/go/internal/work's buildVetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func vetMode(analyzers []*analysis.Analyzer, cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "srclint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "srclint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The go command requires the facts output to exist even though
	// srclint's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "srclint: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg.ImportMap, cfg.PackageFile)
	goVersion := cfg.GoVersion
	if goVersion != "" && !strings.HasPrefix(goVersion, "go") {
		goVersion = "go" + goVersion
	}
	diags, err := checkPackage(analyzers, fset, imp, cfg.ImportPath, goVersion, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "srclint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	if len(diags) == 0 {
		return 0
	}
	printDiags(fset, diags)
	return 2
}

// ---- standalone mode -----------------------------------------------------

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ForTest    string
	Incomplete bool
	Error      *struct{ Err string }
}

func standalone(analyzers []*analysis.Analyzer, patterns []string, jsonMode bool) int {
	pkgs, err := goList(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "srclint: %v\n", err)
		return 1
	}
	cwd, _ := os.Getwd()
	packageFile := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			packageFile[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, nil, packageFile)
	exit := 0
	for _, p := range pkgs {
		if p.DepOnly || p.Standard || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "srclint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 1
		}
		var files []string
		for _, f := range p.GoFiles {
			files = append(files, filepath.Join(p.Dir, f))
		}
		diags, err := checkPackage(analyzers, fset, imp, p.ImportPath, "", files)
		if err != nil {
			fmt.Fprintf(os.Stderr, "srclint: %s: %v\n", p.ImportPath, err)
			return 1
		}
		if len(diags) > 0 {
			if jsonMode {
				if err := writeJSONDiags(os.Stdout, fset, cwd, diags); err != nil {
					fmt.Fprintf(os.Stderr, "srclint: %v\n", err)
					return 1
				}
			} else {
				printDiags(fset, diags)
			}
			exit = 2
		}
	}
	return exit
}

func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(out)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v", strings.Join(patterns, " "), err)
	}
	return pkgs, nil
}
