// Package af exercises the atomicfreeze analyzer: publish via
// atomic.Pointer/atomic.Value, aliasing locals, frozen returns, mutating
// callees, and the copy-on-write idiom that must stay clean.
package af

import "sync/atomic"

type table struct {
	shards []int
	sealed bool
}

type engine struct {
	tab atomic.Pointer[table]
}

// swapClean is copy-on-write: build fresh, publish, never touch again.
func (e *engine) swapClean(n int) {
	t := &table{shards: make([]int, n)}
	t.sealed = true // not yet published: clean
	e.tab.Store(t)
}

// mutateAfterStore writes through the pointer it just published.
func (e *engine) mutateAfterStore(n int) {
	t := &table{shards: make([]int, n)}
	e.tab.Store(t)
	t.sealed = true // want `write through t, which holds a value published via atomic Store`
}

// mutateLoaded writes through a local bound from Load.
func (e *engine) mutateLoaded() {
	t := e.tab.Load()
	t.sealed = true // want `write through t, which holds a value published via atomic Store`
}

// mutateLoadDirect writes through the Load call itself.
func (e *engine) mutateLoadDirect() {
	e.tab.Load().sealed = true // want `write through the result of an atomic Load`
}

// copyInto mutates the published slice with a builtin.
func (e *engine) copyInto(src []int) {
	t := e.tab.Load()
	copy(t.shards, src) // want `write through t, which holds a value published via atomic Store`
}

// seal writes through its parameter; on its own that is fine.
func seal(t *table) {
	t.sealed = true
}

// sealPublished hands a published table to a mutating callee.
func (e *engine) sealPublished() {
	t := e.tab.Load()
	seal(t) // want `t is passed to seal, which writes through this parameter`
}

// current returns the published table, freezing its callers' bindings.
func (e *engine) current() *table {
	return e.tab.Load()
}

// mutateViaReturn writes through a value frozen one call away.
func (e *engine) mutateViaReturn() {
	t := e.current()
	t.sealed = true // want `write through t, which holds a value published via atomic Store`
}

// mutateOnOnePath publishes on one branch only; the write after the join
// may hit the published value (may-analysis).
func (e *engine) mutateOnOnePath(pub bool, t *table) {
	if pub {
		e.tab.Store(t)
	}
	t.sealed = true // want `write through t, which holds a value published via atomic Store`
}

// rebindClean re-points t at a fresh table before writing: the rebinding
// kills the frozen fact.
func (e *engine) rebindClean(n int) {
	t := &table{}
	e.tab.Store(t)
	t = &table{shards: make([]int, n)}
	t.sealed = true // rebound to an unpublished value: clean
}

type box struct {
	v atomic.Value
}

// mutateValue covers the atomic.Value idiom: Load().(*T) is frozen.
func (b *box) mutateValue() {
	t := b.v.Load().(*table)
	t.sealed = true // want `write through t, which holds a value published via atomic Store`
}

type counter struct{ n atomic.Int64 }

// bump: scalar atomics hold copies, nothing to freeze.
func (c *counter) bump(buf []int) {
	c.n.Store(5)
	buf[0] = 1 // clean
}
