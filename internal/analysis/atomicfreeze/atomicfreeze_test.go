package atomicfreeze_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/atomicfreeze"
)

func TestAtomicFreeze(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), atomicfreeze.Analyzer, "af")
}
