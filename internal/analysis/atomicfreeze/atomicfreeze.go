// Package atomicfreeze defines an srclint analyzer enforcing the
// publish-then-freeze contract on sync/atomic.Pointer[T] and atomic.Value:
// a value is published the moment it is passed to Store / Swap /
// CompareAndSwap, and observed via Load — from then on it is immutable.
// Writes through the published pointer, or through locals that alias it on
// any CFG path after the publish, are findings. The correct idiom is
// copy-on-write: build a fresh value, then swap the pointer (the engine's
// routing-table seal at Close is the canonical site).
//
// The check is interprocedural in both directions: a local bound from a
// function that *returns* a published value is frozen too, and passing a
// frozen value to a package-local function that writes through that
// parameter (per the callgraph mutation summaries) is a finding at the
// call site.
//
// Freezing is shallow: it covers the published allocation reached through
// the pointer (field writes, element writes, copy/clear/delete through
// it), not values obtained by loading *further* pointers out of it —
// goroutine confinement of such inner state is the confined analyzer's
// contract.
package atomicfreeze

import (
	"go/ast"
	"go/token"
	"go/types"

	"srccache/internal/analysis"
	"srccache/internal/analysis/callgraph"
	"srccache/internal/analysis/cfg"
)

// Analyzer is the publish-then-freeze check.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfreeze",
	Doc:  "values published via atomic.Pointer/atomic.Value must not be written through afterwards",
	Run:  run,
}

// atomicKind classifies a call to a sync/atomic publish/observe method.
type atomicKind int

const (
	notAtomic atomicKind = iota
	atomicLoad
	atomicPublish // Store / Swap / CompareAndSwap
)

// classify recognizes method calls on atomic.Pointer[T] and atomic.Value
// and returns the argument expression being published (nil for Load).
func classify(info *types.Info, call *ast.CallExpr) (atomicKind, ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return notAtomic, nil
	}
	var fn *types.Func
	if s := info.Selections[sel]; s != nil {
		fn, _ = s.Obj().(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return notAtomic, nil
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return notAtomic, nil
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return notAtomic, nil
	}
	switch named.Obj().Name() {
	case "Pointer", "Value":
	default:
		return notAtomic, nil // Int32/Bool/... hold value copies, nothing to freeze
	}
	switch fn.Name() {
	case "Load":
		return atomicLoad, nil
	case "Store", "Swap":
		if len(call.Args) == 1 {
			return atomicPublish, call.Args[0]
		}
	case "CompareAndSwap":
		if len(call.Args) == 2 {
			return atomicPublish, call.Args[1]
		}
	}
	return notAtomic, nil
}

type freezeChecker struct {
	pass    *analysis.Pass
	graph   *callgraph.Graph
	returns map[*callgraph.Node]bool // node may return a frozen value
}

func run(pass *analysis.Pass) error {
	g := callgraph.Build(pass.Fset, pass.Files, pass.TypesInfo)
	g.ComputeSummaries()
	c := &freezeChecker{pass: pass, graph: g, returns: make(map[*callgraph.Node]bool)}

	// Pass 1: which functions may return a frozen value? SCC order,
	// fixpoint within each component, so f() { return g() } converges.
	for _, scc := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				if c.returns[n] {
					continue
				}
				if c.returnsFrozen(n) {
					c.returns[n] = true
					changed = true
				}
			}
		}
	}
	// Pass 2: report writes through frozen values.
	for _, n := range g.Nodes {
		c.checkNode(n)
	}
	return nil
}

// solve runs the alias dataflow for one node: facts are the types.Objects
// of locals currently holding a published value. May-analysis: a write
// through a value frozen on any path is a finding.
func (c *freezeChecker) solve(n *callgraph.Node) (*cfg.Graph, cfg.Problem, map[*cfg.Block]cfg.Facts) {
	body := n.Body()
	if body == nil {
		return nil, cfg.Problem{}, nil
	}
	p := cfg.Problem{Transfer: func(x ast.Node, facts cfg.Facts) {
		c.transfer(x, facts)
	}}
	g := cfg.New(body)
	return g, p, cfg.Solve(g, p)
}

// transfer applies one statement's gen/kill effects.
func (c *freezeChecker) transfer(x ast.Node, facts cfg.Facts) {
	switch s := x.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				c.assign(lhs, c.frozenExpr(s.Rhs[i], facts), facts)
			}
		} else if len(s.Rhs) == 1 {
			// a, b := f() — every binding inherits the call's frozen-ness.
			frozen := c.frozenExpr(s.Rhs[0], facts)
			for _, lhs := range s.Lhs {
				c.assign(lhs, frozen, facts)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						c.assignObj(c.pass.TypesInfo.Defs[name], c.frozenExpr(vs.Values[i], facts), facts)
					}
				}
			}
		}
	}
	// Publish sites gen their argument object wherever they appear.
	stmtCalls(x, func(call *ast.CallExpr) {
		if kind, arg := classify(c.pass.TypesInfo, call); kind == atomicPublish {
			if obj := c.graph.ValueObj(arg); obj != nil {
				facts[obj] = true
			}
		}
	})
}

func (c *freezeChecker) assign(lhs ast.Expr, frozen bool, facts cfg.Facts) {
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		c.assignObj(obj, frozen, facts)
	}
}

func (c *freezeChecker) assignObj(obj types.Object, frozen bool, facts cfg.Facts) {
	if obj == nil {
		return
	}
	if frozen {
		facts[obj] = true
	} else {
		delete(facts, obj)
	}
}

// frozenExpr reports whether evaluating e yields a published value: a
// frozen local, a direct atomic Load, or a call to a function that returns
// a frozen value.
func (c *freezeChecker) frozenExpr(e ast.Expr, facts cfg.Facts) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.graph.ValueObj(e); obj != nil {
			return facts[obj]
		}
	case *ast.TypeAssertExpr: // v.Load().(*T) — the atomic.Value idiom
		return c.frozenExpr(e.X, facts)
	case *ast.CallExpr:
		if kind, _ := classify(c.pass.TypesInfo, e); kind == atomicLoad {
			return true
		}
		for _, callee := range c.graph.Callees(e) {
			if c.returns[callee] {
				return true
			}
		}
	}
	return false
}

// returnsFrozen reports whether any return statement of n may return a
// frozen value under the current returns map.
func (c *freezeChecker) returnsFrozen(n *callgraph.Node) bool {
	g, p, ins := c.solve(n)
	if g == nil {
		return false
	}
	found := false
	cfg.Visit(g, p, ins, func(x ast.Node, before cfg.Facts) {
		ret, ok := x.(*ast.ReturnStmt)
		if !ok || found {
			return
		}
		for _, res := range ret.Results {
			if c.frozenExpr(res, before) {
				found = true
			}
		}
	})
	return found
}

// checkNode reports every write through a frozen value in n.
func (c *freezeChecker) checkNode(n *callgraph.Node) {
	g, p, ins := c.solve(n)
	if g == nil {
		return
	}
	cfg.Visit(g, p, ins, func(x ast.Node, before cfg.Facts) {
		switch s := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				c.checkWrite(lhs, before)
			}
		case *ast.IncDecStmt:
			c.checkWrite(s.X, before)
		}
		stmtCalls(x, func(call *ast.CallExpr) {
			c.checkCall(call, before)
		})
	})
}

// checkWrite flags an lvalue that writes through a frozen root.
func (c *freezeChecker) checkWrite(lhs ast.Expr, facts cfg.Facts) {
	root, through := lvalueRoot(lhs)
	if !through {
		return // plain rebinding; transfer handles the kill
	}
	switch r := root.(type) {
	case *ast.Ident:
		obj := c.graph.ValueObj(r)
		if obj != nil && facts[obj] {
			c.pass.Reportf(lhs.Pos(),
				"write through %s, which holds a value published via atomic Store: published values are frozen — build a new value and swap the pointer (//srclint:allow atomicfreeze to override)",
				r.Name)
		}
	case *ast.CallExpr:
		if kind, _ := classify(c.pass.TypesInfo, r); kind == atomicLoad {
			c.pass.Reportf(lhs.Pos(),
				"write through the result of an atomic Load: published values are frozen — build a new value and swap the pointer (//srclint:allow atomicfreeze to override)")
		}
	}
}

// checkCall flags passing a frozen value to a mutating builtin or to a
// package-local function that writes through that parameter.
func (c *freezeChecker) checkCall(call *ast.CallExpr, facts cfg.Facts) {
	info := c.pass.TypesInfo
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "copy", "clear", "delete":
				if len(call.Args) > 0 {
					c.checkWrite(call.Args[0], facts)
				}
			}
			return
		}
	}
	callees := c.graph.Callees(call)
	if len(callees) == 0 {
		return
	}
	args := callgraph.CallArgs(info, call)
	for _, callee := range callees {
		for i, mutates := range callee.Summary.MutatesParam {
			if !mutates || i >= len(args) {
				continue
			}
			root, _ := lvalueRoot(args[i])
			id, ok := root.(*ast.Ident)
			if !ok {
				continue
			}
			if obj := c.graph.ValueObj(id); obj != nil && facts[obj] {
				c.pass.Reportf(args[i].Pos(),
					"%s is passed to %s, which writes through this parameter, but it holds a value published via atomic Store (//srclint:allow atomicfreeze to override)",
					id.Name, callee.Name)
			}
		}
	}
}

// lvalueRoot peels selectors, indexes, derefs and & off an expression and
// reports whether the access goes through the root.
func lvalueRoot(e ast.Expr) (root ast.Expr, through bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			e, through = x.X, true
		case *ast.IndexExpr:
			e, through = x.X, true
		case *ast.StarExpr:
			e, through = x.X, true
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return ast.Unparen(e), through
			}
			e = x.X
		default:
			return ast.Unparen(e), through
		}
	}
}

// stmtCalls visits every call expression within one statement/expression
// node, not descending into function literals.
func stmtCalls(x ast.Node, fn func(*ast.CallExpr)) {
	if x == nil {
		return
	}
	ast.Inspect(x, func(y ast.Node) bool {
		if _, ok := y.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := y.(*ast.CallExpr); ok {
			fn(call)
		}
		return true
	})
}
