// Package modfacts computes analysis.PackageFacts: the serialized
// per-package summaries that make srclint's contracts modular. The driver
// runs Compute over every in-module dependency (from source in standalone
// mode, cached through the vet .vetx files in vet-tool mode) and feeds the
// results to analyzers via Pass.DepFacts, so a contract declared in
// internal/netblock binds a caller in internal/cluster/fleet without either
// package's author wiring anything.
//
// Facts are a pure function of the package source: every list is sorted,
// positions inside descriptions are basename:line, and no token.Pos or
// absolute path leaks into the output, so Encode is byte-identical across
// file parse order and package load order (pinned by TestFactsDeterminism).
package modfacts

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"srccache/internal/analysis"
	"srccache/internal/analysis/callgraph"
)

// Compute builds the facts of one type-checked package. dirs carries the
// package's //srclint:allow directives (suppressed hot-path violations do
// not poison a function's exported HotUnsafe fact); dep resolves dependency
// facts for cross-package propagation and may be nil.
func Compute(fset *token.FileSet, files []*ast.File, info *types.Info, pkg *types.Package, dirs *analysis.Directives, dep func(string) *analysis.PackageFacts) *analysis.PackageFacts {
	if dirs == nil {
		dirs = analysis.ParseDirectives(fset, files)
	}
	if dep == nil {
		dep = func(string) *analysis.PackageFacts { return nil }
	}
	g := callgraph.Build(fset, files, info)
	g.ComputeSummaries()

	out := &analysis.PackageFacts{
		Path:    analysis.NormalizePkgPath(pkg.Path()),
		Version: analysis.FactsVersion,
	}

	contracts := ContractErrorVars(files, info)
	for _, v := range contracts.vars {
		out.ContractErrors = append(out.ContractErrors, analysis.ContractError{
			Name: v.obj.Name(), Contract: v.contract,
		})
	}

	facts := make([]analysis.FuncFact, len(g.Nodes))
	for _, n := range g.Nodes {
		facts[n.Index] = directFacts(fset, info, pkg, n, contracts, dep, dirs)
	}
	propagateDials(g, facts)
	propagateHotUnsafe(fset, info, pkg, g, facts, dirs, dep)

	out.Funcs = append(out.Funcs, facts...)
	out.Normalize()
	return out
}

// directFacts fills everything about one function that does not require
// the package callgraph fixpoint: annotations, surfaces inference, budget
// consultation, cross-package call edges, and the channel/mutation
// summaries from the callgraph package.
func directFacts(fset *token.FileSet, info *types.Info, pkg *types.Package, n *callgraph.Node, contracts *ContractVars, dep func(string) *analysis.PackageFacts, dirs *analysis.Directives) analysis.FuncFact {
	ff := analysis.FuncFact{Name: n.Name, Exported: nodeExported(n)}

	if n.Decl != nil {
		if args, ok := analysis.Directive(n.Decl.Doc, "surfaces"); ok {
			ff.Surfaces = append(ff.Surfaces, strings.Fields(args)...)
		}
		if args, ok := analysis.Directive(n.Decl.Doc, "handles"); ok {
			ff.Handles = append(ff.Handles, strings.Fields(args)...)
		}
		if _, ok := analysis.Directive(n.Decl.Doc, "hotpath"); ok {
			ff.Hotpath = true
		}
		if _, ok := analysis.Directive(n.Decl.Doc, "coldpath"); ok {
			ff.Coldpath = true
		}
	}

	// Surfaces inference: constructing or returning a contract error
	// (outside an errors.Is/As classification) means callers can see it.
	surfaced := map[string]bool{}
	for _, c := range ff.Surfaces {
		surfaced[c] = true
	}
	for _, c := range SurfacedContracts(info, pkg, n, contracts, dep) {
		if !surfaced[c] {
			surfaced[c] = true
			ff.Surfaces = append(ff.Surfaces, c)
		}
	}

	base := lastNamePart(n.Name)
	ff.Dials = dialishName(base)
	ff.ConsultsBudget = budgetishName(base)
	seenCalls := map[string]bool{}
	n.Walk(func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(info, call)
		if fn == nil {
			return true
		}
		if dialishName(fn.Name()) {
			ff.Dials = true
		}
		if budgetishName(fn.Name()) {
			ff.ConsultsBudget = true
		}
		if fn.Pkg() != nil && fn.Pkg() != pkg {
			path := analysis.NormalizePkgPath(fn.Pkg().Path())
			if dep(path) != nil {
				edge := path + "." + FuncName(fn)
				if !seenCalls[edge] {
					seenCalls[edge] = true
					ff.Calls = append(ff.Calls, edge)
				}
			}
		}
		return true
	})

	for i, m := range n.Summary.MutatesParam {
		if m {
			ff.MutatesParams = append(ff.MutatesParams, i)
		}
	}
	for i, m := range n.Summary.SendsOnParam {
		if m {
			ff.SendsOnParams = append(ff.SendsOnParams, i)
		}
	}
	for i, m := range n.Summary.ClosesOnParam {
		if m {
			ff.ClosesOnParams = append(ff.ClosesOnParams, i)
		}
	}
	return ff
}

// nodeExported reports whether a function is reachable from another
// package: exported package function, or exported method on an exported
// type. Literals never are.
func nodeExported(n *callgraph.Node) bool {
	if n.Decl == nil || !n.Decl.Name.IsExported() {
		return false
	}
	if n.Decl.Recv == nil || len(n.Decl.Recv.List) == 0 {
		return true
	}
	recv, _, _ := strings.Cut(n.Name, ".")
	return token.IsExported(recv)
}

// lastNamePart strips the receiver ("Client.DialOptions" -> "DialOptions")
// and any literal suffix ("run$1" -> "run").
func lastNamePart(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		name = name[i+1:]
	}
	if i := strings.IndexByte(name, '$'); i >= 0 {
		name = name[:i]
	}
	return name
}

func dialishName(name string) bool {
	l := strings.ToLower(name)
	for _, p := range []string{"dial", "connect", "redial", "reconnect", "accept"} {
		if strings.HasPrefix(l, p) {
			return true
		}
	}
	return false
}

func budgetishName(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "budget") || strings.Contains(l, "deadline")
}

// FuncName renders a declared function object in the callgraph package's
// node-name convention ("Func", "Recv.Method"), the key facts are stored
// under.
func FuncName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	if iface, ok := t.(*types.Interface); ok {
		_ = iface // interface method with anonymous receiver type
	}
	return fn.Name()
}

// ---- contract errors -----------------------------------------------------

// ContractVars maps a package's contract-error variables (package-level
// error vars annotated //srclint:contracterr <contract>) to their contract
// names.
type ContractVars struct {
	byObj map[types.Object]string
	vars  []contractVar
}

type contractVar struct {
	obj      types.Object
	contract string
}

// Contract returns the contract obj is bound to, or "".
func (c *ContractVars) Contract(obj types.Object) string {
	if c == nil {
		return ""
	}
	return c.byObj[obj]
}

// ContractErrorVars scans package-level var declarations for
// //srclint:contracterr annotations (on the var spec's doc or trailing
// comment).
func ContractErrorVars(files []*ast.File, info *types.Info) *ContractVars {
	c := &ContractVars{byObj: make(map[types.Object]string)}
	for _, f := range files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				contract, ok := specDirective(gd, vs, "contracterr")
				if !ok || contract == "" {
					continue
				}
				for _, name := range vs.Names {
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					c.byObj[obj] = contract
					c.vars = append(c.vars, contractVar{obj: obj, contract: contract})
				}
			}
		}
	}
	return c
}

// specDirective finds a //srclint:<name> marker on a var spec: its own doc
// or line comment, or the enclosing single-spec declaration's doc.
func specDirective(gd *ast.GenDecl, vs *ast.ValueSpec, name string) (string, bool) {
	if args, ok := analysis.Directive(vs.Doc, name); ok {
		return args, true
	}
	if args, ok := analysis.Directive(vs.Comment, name); ok {
		return args, true
	}
	if len(gd.Specs) == 1 {
		return analysis.Directive(gd.Doc, name)
	}
	return "", false
}

// contractOf resolves an identifier to the contract it names, checking the
// package's own contract vars first, then imported packages' facts.
func contractOf(info *types.Info, pkg *types.Package, id *ast.Ident, contracts *ContractVars, dep func(string) *analysis.PackageFacts) string {
	obj := info.Uses[id]
	if obj == nil {
		return ""
	}
	if c := contracts.Contract(obj); c != "" {
		return c
	}
	if obj.Pkg() != nil && obj.Pkg() != pkg {
		return dep(analysis.NormalizePkgPath(obj.Pkg().Path())).Contract(obj.Name())
	}
	return ""
}

// SurfacedContracts reports the contracts whose error a function's body
// references outside an errors.Is / errors.As classification — the
// inference that a function constructing fmt.Errorf("...%w", ErrStaleEpoch)
// surfaces the staleepoch contract even without an annotation.
func SurfacedContracts(info *types.Info, pkg *types.Package, n *callgraph.Node, contracts *ContractVars, dep func(string) *analysis.PackageFacts) []string {
	var out []string
	seen := map[string]bool{}
	n.Walk(func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok && IsErrorsClassify(info, call) {
			return false // errors.Is(err, ErrX) is a guard, not a construction
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		if c := contractOf(info, pkg, id, contracts, dep); c != "" && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
		return true
	})
	return out
}

// IsErrorsClassify reports whether call is errors.Is or errors.As.
func IsErrorsClassify(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.Callee(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "errors" &&
		(fn.Name() == "Is" || fn.Name() == "As")
}

// ---- hot-path scanning ---------------------------------------------------

// A HotViolation is one construct forbidden on a //srclint:hotpath path.
type HotViolation struct {
	Pos  token.Pos
	What string
}

// HotScan walks one function and returns its direct hot-path violations
// plus its hot call sites, both in source order. Excluded from both lists:
//
//   - go-launched calls (concurrent work is off the caller's critical path)
//   - anything inside an error-guarded branch (`if err != nil`, or a
//     condition using errors.Is/As): error handling is declared cold
//   - anything inside the trailing error operand of a return in a function
//     whose last result is an error: constructing the failure report is
//     cold even when the return statement itself is hot. The exemption is
//     positional — it applies only when the return lists every result
//     individually, so `return c.next(x)` (one multi-value passthrough
//     call producing all the results) stays hot: that call IS the hot
//     continuation, not an error being built
//
// Violations suppressed by //srclint:allow hotpath are filtered by the
// callers (Reportf in the analyzer, Covers in Compute), not here.
func HotScan(info *types.Info, n *callgraph.Node) (viols []HotViolation, calls []*ast.CallExpr) {
	body := n.Body()
	if body == nil {
		return nil, nil
	}
	trailingErr := hasTrailingErrorResult(info, n)
	numResults := resultCount(n)
	var stack []ast.Node
	cold := func(x ast.Node) bool { return inColdContext(info, stack, x, trailingErr, numResults) }
	loopDepth := func() int {
		d := 0
		for _, a := range stack {
			switch a.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				d++
			}
		}
		return d
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if x == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := true
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // its statements belong to its own node
		case *ast.GoStmt:
			return false
		case *ast.CompositeLit:
			if cold(x) {
				break
			}
			switch info.TypeOf(x).Underlying().(type) {
			case *types.Slice:
				viols = append(viols, HotViolation{x.Pos(), "slice composite literal allocates"})
				descend = false
			case *types.Map:
				viols = append(viols, HotViolation{x.Pos(), "map composite literal allocates"})
				descend = false
			default:
				if len(stack) > 0 {
					if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND && u.X == x {
						viols = append(viols, HotViolation{u.Pos(), "composite literal escapes to the heap"})
						descend = false
					}
				}
			}
		case *ast.CallExpr:
			fn := analysis.Callee(info, x)
			if fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "fmt":
					if !cold(x) {
						viols = append(viols, HotViolation{x.Pos(), "calls fmt." + fn.Name() + " (formatting allocates)"})
					}
				case "reflect":
					if !cold(x) {
						viols = append(viols, HotViolation{x.Pos(), "calls reflect." + fn.Name()})
					}
				default:
					if !cold(x) {
						calls = append(calls, x)
					}
				}
			} else if !cold(x) {
				calls = append(calls, x)
			}
		case *ast.RangeStmt:
			if _, isMap := info.TypeOf(x.X).Underlying().(*types.Map); isMap && !cold(x) {
				viols = append(viols, HotViolation{x.Pos(), "iterates a map (allocation and nondeterministic order)"})
			}
		case *ast.DeferStmt:
			if loopDepth() > 0 && !cold(x) {
				viols = append(viols, HotViolation{x.Pos(), "defer inside a loop accumulates until return"})
			}
		}
		if descend {
			stack = append(stack, x)
		}
		return descend
	})
	return viols, calls
}

// hasTrailingErrorResult reports whether the function's last result is an
// error.
func hasTrailingErrorResult(info *types.Info, n *callgraph.Node) bool {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return false
	}
	last := ft.Results.List[len(ft.Results.List)-1]
	t := info.TypeOf(last.Type)
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// resultCount counts the function's declared results, expanding grouped
// names ((a, b int) counts two).
func resultCount(n *callgraph.Node) int {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
	} else {
		ft = n.Lit.Type
	}
	if ft.Results == nil {
		return 0
	}
	count := 0
	for _, f := range ft.Results.List {
		if len(f.Names) > 0 {
			count += len(f.Names)
		} else {
			count++
		}
	}
	return count
}

// inColdContext reports whether node x (whose ancestors, innermost last,
// are on stack) sits in error-handling territory: inside a branch of an
// error-guard if (the guarded body/else, NOT the init or condition — those
// run on the hot path), or inside the trailing error operand of a return.
// The return-operand exemption requires the return to list every result
// positionally (len(Results) == numResults): a lone multi-value call
// produces the hot results too, so it is not an error operand.
func inColdContext(info *types.Info, stack []ast.Node, x ast.Node, trailingErr bool, numResults int) bool {
	child := x
	for i := len(stack) - 1; i >= 0; i-- {
		switch a := stack[i].(type) {
		case *ast.IfStmt:
			if condIsErrorGuard(info, a.Cond) && (within(child, a.Body) || (a.Else != nil && within(child, a.Else))) {
				return true
			}
		case *ast.ReturnStmt:
			if trailingErr && len(a.Results) == numResults && len(a.Results) > 0 && within(child, a.Results[len(a.Results)-1]) {
				return true
			}
		case *ast.CaseClause:
			for _, cond := range a.List {
				if condIsErrorGuard(info, cond) {
					return true
				}
			}
		case *ast.SwitchStmt:
			if a.Tag != nil && exprMentionsError(info, a.Tag) && within(child, a.Body) {
				return true
			}
		case *ast.TypeSwitchStmt:
			if within(child, a.Body) {
				return true // type switches are classification, not hot work
			}
		}
		child = stack[i]
	}
	return false
}

// within reports lexical containment of node in container.
func within(node, container ast.Node) bool {
	return node.Pos() >= container.Pos() && node.End() <= container.End()
}

// condIsErrorGuard reports whether an if condition classifies an error:
// it compares an error-typed operand against nil, or calls errors.Is/As.
func condIsErrorGuard(info *types.Info, cond ast.Expr) bool {
	guard := false
	ast.Inspect(cond, func(x ast.Node) bool {
		if guard {
			return false
		}
		switch x := x.(type) {
		case *ast.BinaryExpr:
			if x.Op == token.NEQ || x.Op == token.EQL {
				if isErrorExpr(info, x.X) || isErrorExpr(info, x.Y) {
					guard = true
					return false
				}
			}
		case *ast.CallExpr:
			if IsErrorsClassify(info, x) {
				guard = true
				return false
			}
		}
		return true
	})
	return guard
}

func exprMentionsError(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if ex, ok := x.(ast.Expr); ok && isErrorExpr(info, ex) {
			found = true
			return false
		}
		return !found
	})
	return found
}

func isErrorExpr(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// ---- hot-unsafe propagation ----------------------------------------------

// ColdpathNode reports whether a declaration is annotated
// //srclint:coldpath. Literals are never cold themselves — they are cold
// only when every call site that reaches them is.
func ColdpathNode(n *callgraph.Node) bool {
	if n.Decl == nil {
		return false
	}
	_, ok := analysis.Directive(n.Decl.Doc, "coldpath")
	return ok
}

// propagateDials spreads the dial property one extra hop through the
// package-local callgraph: a helper whose body calls a dial-ish named
// function already got Dials in directFacts; this marks wrappers that call
// that helper through a function value.
func propagateDials(g *callgraph.Graph, facts []analysis.FuncFact) {
	for _, n := range g.Nodes {
		if facts[n.Index].Dials {
			continue
		}
		for _, e := range n.Out {
			if e.Kind != callgraph.Call {
				continue
			}
			if dialishName(lastNamePart(e.Callee.Name)) {
				facts[n.Index].Dials = true
				break
			}
		}
	}
}

// propagateHotUnsafe computes every function's HotUnsafe description:
// its first direct violation, else the first hot (non-cold, non-go) call
// site whose callee — package-local via the callgraph, cross-package via
// dependency facts — is itself hot-unsafe. Coldpath-annotated functions
// are pruned: they are never hot-unsafe and calls to them carry nothing.
func propagateHotUnsafe(fset *token.FileSet, info *types.Info, pkg *types.Package, g *callgraph.Graph, facts []analysis.FuncFact, dirs *analysis.Directives, dep func(string) *analysis.PackageFacts) {
	hotCalls := make([][]*ast.CallExpr, len(g.Nodes))
	for _, n := range g.Nodes {
		if facts[n.Index].Coldpath {
			continue
		}
		viols, calls := HotScan(info, n)
		hotCalls[n.Index] = calls
		for _, v := range viols {
			posn := fset.Position(v.Pos)
			if dirs.Covers("hotpath", posn) {
				continue
			}
			facts[n.Index].HotUnsafe = fmt.Sprintf("%s (%s:%d)", v.What, filepath.Base(posn.Filename), posn.Line)
			break
		}
	}
	// SCCs come callee-first; re-run each component to a fixpoint so
	// recursion converges. Call sites are examined in source order, so the
	// winning description is deterministic under file-order shuffles.
	for _, scc := range g.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, n := range scc {
				i := n.Index
				if facts[i].HotUnsafe != "" || facts[i].Coldpath {
					continue
				}
				for _, call := range hotCalls[i] {
					if desc := callHotUnsafe(info, pkg, g, facts, call, dep); desc != "" {
						facts[i].HotUnsafe = desc
						changed = true
						break
					}
				}
			}
		}
	}
}

// callHotUnsafe describes the hot-unsafety a call site inherits from its
// callee, or "".
func callHotUnsafe(info *types.Info, pkg *types.Package, g *callgraph.Graph, facts []analysis.FuncFact, call *ast.CallExpr, dep func(string) *analysis.PackageFacts) string {
	for _, callee := range g.Callees(call) {
		if facts[callee.Index].Coldpath {
			continue
		}
		if d := facts[callee.Index].HotUnsafe; d != "" {
			return fmt.Sprintf("calls %s: %s", callee.Name, d)
		}
	}
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg() == pkg {
		return ""
	}
	path := analysis.NormalizePkgPath(fn.Pkg().Path())
	ff := dep(path).Func(FuncName(fn))
	if ff == nil || ff.Coldpath || ff.HotUnsafe == "" {
		return ""
	}
	return fmt.Sprintf("calls %s.%s: %s", path, FuncName(fn), ff.HotUnsafe)
}
