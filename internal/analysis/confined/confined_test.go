package confined_test

import (
	"testing"

	"srccache/internal/analysis/analysistest"
	"srccache/internal/analysis/confined"
)

func TestConfined(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), confined.Analyzer, "cf")
}
