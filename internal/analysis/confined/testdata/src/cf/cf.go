// Package cf exercises the confined analyzer: owner loops, handoff
// guards, recursion among owner-only helpers, method values, and `go
// func` closures.
package cf

import "sync/atomic"

type item struct{ v int }

type worker struct {
	q int

	// cache belongs to the goroutine running run.
	cache map[int]*item //srclint:confined run

	started atomic.Bool //srclint:handoff (flipped once when run is launched)
}

// run is the declared owner loop: unrestricted access.
func (w *worker) run() {
	for k := 0; k < w.q; k++ {
		w.cache[k] = &item{v: k}
		w.helper(k)
		w.evict(k)
	}
}

// helper is reachable only from the owner loop: cleared.
func (w *worker) helper(k int) {
	delete(w.cache, k)
}

// evict recurses; it and its recursive call stay cleared because every
// synchronous caller is the owner loop or itself.
func (w *worker) evict(k int) {
	if k <= 0 {
		return
	}
	delete(w.cache, k)
	w.evict(k - 1)
}

// Seed runs in the setup phase: the handoff guard dominates the access.
func (w *worker) Seed(k int) {
	if w.started.Load() {
		panic("seed after start")
	}
	w.cache[k] = &item{v: k}
}

// Peek is exported and unguarded: any goroutine could call it.
func (w *worker) Peek(k int) *item { // want `worker\.Peek reaches confined field\(s\) worker\.cache`
	return w.cache[k]
}

// SeedRacy checks the handoff on only one path, so the guard does not
// dominate the access.
func (w *worker) SeedRacy(k int) { // want `worker\.SeedRacy reaches confined field\(s\) worker\.cache`
	if k > 0 {
		if w.started.Load() {
			return
		}
	}
	w.cache[k] = &item{v: k}
}

// sample touches the cache and exists only to be go-launched below; the
// finding lands on the launch site, not here.
func (w *worker) sample() {
	_ = w.cache[1]
}

// Start launches the owner loop (clean) and a rogue closure that reads
// the cache from a second goroutine (finding at the launch site).
func Start(w *worker) {
	w.started.Store(true)
	go w.run()
	go func() { // want `goroutine launched here reaches confined field\(s\) worker\.cache`
		_ = w.cache[0]
	}()
}

// StartSampler launches a non-owner accessor through a method value: the
// function-value flow still resolves the target.
func StartSampler(w *worker) {
	f := w.sample
	go f() // want `goroutine launched here reaches confined field\(s\) worker\.cache`
}
